/** @file Tests for parallel consolidation replays (core/consolidation). */
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/consolidation.h"
#include "core/identify.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

using tests::ToyApp;

struct Pipeline
{
    ToyApp app;
    KnobTable table;
    ResponseModel model;
    qos::OutputAbstraction baseline;
    std::size_t input = 0;
};

Pipeline
makePipeline()
{
    ToyApp::Config config;
    config.units = 300;
    Pipeline p{ToyApp(config), {}, {}, {}, 0};
    auto ident = identifyKnobs(p.app);
    EXPECT_TRUE(ident.analysis.accepted);
    p.table = std::move(ident.table);
    p.model = calibrate(p.app, p.app.trainingInputs()).model;
    p.input = p.app.productionInputs().front();
    p.baseline =
        runFixed(p.app, p.input, p.app.defaultCombination()).output;
    return p;
}

std::vector<ReplayCase>
sampleCases()
{
    return {{1.0, 1.0}, {0.5, 1.0}, {0.25, 1.0}, {0.125, 0.5}};
}

TEST(ConsolidationReplay, OversubscribedSharesHoldTargetAtQosCost)
{
    auto p = makePipeline();
    ConsolidationReplayOptions options;
    options.input = p.input;
    const auto outcomes = replayConsolidation(
        p.app, p.table, p.model, p.baseline, sampleCases(), options);
    ASSERT_EQ(outcomes.size(), 4u);
    // Dedicated core: on target, no QoS loss.
    EXPECT_NEAR(outcomes[0].tail_mean_perf, 1.0, 0.05);
    EXPECT_NEAR(outcomes[0].qos_loss_measured, 0.0, 0.005);
    // Oversubscribed: still on target, growing QoS loss.
    EXPECT_NEAR(outcomes[1].tail_mean_perf, 1.0, 0.1);
    EXPECT_GT(outcomes[1].qos_loss_measured, 0.0);
    EXPECT_NEAR(outcomes[2].tail_mean_perf, 1.0, 0.1);
    EXPECT_GT(outcomes[2].qos_loss_measured,
              outcomes[1].qos_loss_measured);
    for (const auto &o : outcomes) {
        EXPECT_GT(o.seconds, 0.0);
        EXPECT_GT(o.energy_j, 0.0);
        EXPECT_GT(o.mean_watts, 0.0);
    }
}

TEST(ConsolidationReplay, ParallelBitIdenticalToSerial)
{
    auto p = makePipeline();
    const auto cases = sampleCases();

    ConsolidationReplayOptions serial;
    serial.input = p.input;
    serial.threads = 1;
    const auto expected = replayConsolidation(
        p.app, p.table, p.model, p.baseline, cases, serial);

    for (const std::size_t threads : {2u, 4u, 0u}) {
        ConsolidationReplayOptions parallel = serial;
        parallel.threads = threads;
        const auto actual = replayConsolidation(
            p.app, p.table, p.model, p.baseline, cases, parallel);
        ASSERT_EQ(actual.size(), expected.size());
        for (std::size_t i = 0; i < actual.size(); ++i) {
            EXPECT_EQ(actual[i].tail_mean_perf,
                      expected[i].tail_mean_perf)
                << "case " << i << " threads " << threads;
            EXPECT_EQ(actual[i].qos_loss_measured,
                      expected[i].qos_loss_measured);
            EXPECT_EQ(actual[i].qos_loss_estimate,
                      expected[i].qos_loss_estimate);
            EXPECT_EQ(actual[i].seconds, expected[i].seconds);
            EXPECT_EQ(actual[i].energy_j, expected[i].energy_j);
            EXPECT_EQ(actual[i].mean_watts, expected[i].mean_watts);
        }
    }
}

TEST(ConsolidationReplay, OriginalAppStateUntouched)
{
    auto p = makePipeline();
    p.app.configure({2.0});
    const double k_before = p.app.k();
    ConsolidationReplayOptions options;
    options.input = p.input;
    replayConsolidation(p.app, p.table, p.model, p.baseline,
                        sampleCases(), options);
    // Replays ran on clones; the caller's instance kept its knob.
    EXPECT_EQ(p.app.k(), k_before);
}

TEST(ConsolidationReplay, EmptyCasesReturnEmpty)
{
    auto p = makePipeline();
    ConsolidationReplayOptions options;
    options.input = p.input;
    const auto outcomes = replayConsolidation(
        p.app, p.table, p.model, p.baseline, {}, options);
    EXPECT_TRUE(outcomes.empty());
}

TEST(ConsolidationReplay, SessionOptionsComposeIntoReplays)
{
    // The replay batch inherits the session composition: a QoS-budget
    // strategy with a zero budget pins replays at the baseline knob,
    // so an oversubscribed share cannot recover the target.
    auto p = makePipeline();
    ConsolidationReplayOptions options;
    options.input = p.input;
    options.session.withStrategy(makeQosBudgetStrategy(0.0));
    const auto outcomes = replayConsolidation(
        p.app, p.table, p.model, p.baseline, {{0.5, 1.0}}, options);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_LT(outcomes[0].tail_mean_perf, 0.75);
    EXPECT_NEAR(outcomes[0].qos_loss_measured, 0.0, 1e-9);
}

} // namespace
} // namespace powerdial::core
