/** @file Unit tests for sim::EnergyMeter. */
#include <gtest/gtest.h>

#include "sim/energy_meter.h"

namespace powerdial::sim {
namespace {

TEST(EnergyMeter, SamplesAtFixedInterval)
{
    Machine m;
    m.idleFor(5.0);
    EnergyMeter meter(1.0);
    const auto samples = meter.sample(m);
    ASSERT_EQ(samples.size(), 5u);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        EXPECT_NEAR(samples[i].time_s, static_cast<double>(i + 1), 1e-9);
        EXPECT_NEAR(samples[i].watts, m.powerModel().idleWatts(), 1e-9);
    }
}

TEST(EnergyMeter, MeanOfSamplesMatchesMeanPower)
{
    Machine m;
    m.setUtilization(1.0);
    m.execute(2.4e9 * 2.0); // 2 s busy.
    m.idleFor(2.0);         // 2 s idle.
    EnergyMeter meter(1.0);
    const auto samples = meter.sample(m);
    EXPECT_NEAR(EnergyMeter::meanWatts(samples), m.meanWatts(0.0, 4.0),
                1e-9);
}

TEST(EnergyMeter, PartialTrailingBinIsDropped)
{
    Machine m;
    m.idleFor(2.5);
    EnergyMeter meter(1.0);
    EXPECT_EQ(meter.sample(m).size(), 2u);
}

TEST(EnergyMeter, SubIntervalSampling)
{
    Machine m;
    m.idleFor(1.0);
    EnergyMeter meter(0.25);
    EXPECT_EQ(meter.sample(m).size(), 4u);
}

TEST(EnergyMeter, MeanOfNoSamplesIsZero)
{
    EXPECT_DOUBLE_EQ(EnergyMeter::meanWatts({}), 0.0);
}

TEST(EnergyMeter, RejectsNonPositiveInterval)
{
    EXPECT_THROW(EnergyMeter{0.0}, std::invalid_argument);
    EXPECT_THROW(EnergyMeter{-1.0}, std::invalid_argument);
}

TEST(EnergyMeter, WindowedSampling)
{
    Machine m;
    m.setUtilization(1.0);
    m.execute(2.4e9); // [0,1) busy
    m.idleFor(1.0);   // [1,2) idle
    EnergyMeter meter(1.0);
    const auto idle_only = meter.sample(m, 1.0, 2.0);
    ASSERT_EQ(idle_only.size(), 1u);
    EXPECT_NEAR(idle_only[0].watts, m.powerModel().idleWatts(), 1e-9);
}

} // namespace
} // namespace powerdial::sim
