/**
 * @file
 * Edge cases of the CSV beat-trace exporters (core/trace_export.h):
 * decimation strides past the beat count, empty series, and streamed
 * vs batch equivalence while a DVFS governor changes the P-state
 * mid-run (so the decimated rows straddle a pstate column change).
 */
#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "core/trace_export.h"
#include "sim/dvfs_governor.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

using tests::ToyApp;

std::size_t
countLines(const std::string &text)
{
    return static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n'));
}

TEST(TraceExportEdges, DecimateBeyondBeatCountKeepsOnlyBeatZero)
{
    std::vector<BeatTrace> beats(5);
    for (std::size_t i = 0; i < beats.size(); ++i)
        beats[i].time_s = static_cast<double>(i);
    std::ostringstream os;
    writeBeatsCsv(os, beats, 100);
    // Beat 0 is always on the decimation grid; nothing else is.
    EXPECT_EQ(countLines(os.str()), 2u);
    EXPECT_NE(os.str().find("\n0,0,"), std::string::npos);
}

TEST(TraceExportEdges, EmptySeriesIsHeaderOnly)
{
    std::ostringstream os;
    writeBeatsCsv(os, {}, 7);
    EXPECT_EQ(countLines(os.str()), 1u);
    EXPECT_EQ(os.str().rfind("beat,time_s,", 0), 0u);
}

struct GovernedRun
{
    std::vector<BeatTrace> beats;
    std::string streamed_csv;
};

/**
 * One controlled run whose machine drops to the deepest P-state
 * mid-run and recovers near the end, recorded and streamed at
 * @p decimate simultaneously.
 */
GovernedRun
governedRun(std::size_t decimate)
{
    ToyApp::Config config;
    config.units = 60;
    ToyApp app(config);
    auto ident = identifyKnobs(app);
    EXPECT_TRUE(ident.analysis.accepted);
    const auto cal = calibrate(app, app.trainingInputs());

    sim::Machine probe;
    const double baseline_s = cal.model.baselineSeconds();
    SessionOptions options;
    options.governor = sim::DvfsGovernor::powerCap(
        probe, baseline_s * 0.3, baseline_s * 0.8);

    Session session(app, ident.table, cal.model, options);
    auto &recorder = session.attach<BeatTraceRecorder>();
    std::ostringstream stream;
    session.attach<CsvTraceObserver>(stream, decimate);
    sim::Machine machine;
    session.run(0, machine);
    return {recorder.beats(), stream.str()};
}

TEST(TraceExportEdges, MidRunPStateChangeSurvivesDecimation)
{
    const auto run = governedRun(7);

    // The scenario did change P-state mid-run (else this test pins
    // nothing): some beat ran capped, some uncapped.
    std::vector<std::size_t> pstates;
    for (const auto &beat : run.beats)
        pstates.push_back(beat.pstate);
    EXPECT_GT(*std::max_element(pstates.begin(), pstates.end()), 0u);
    EXPECT_EQ(*std::min_element(pstates.begin(), pstates.end()), 0u);

    // Streamed-at-decimate-7 equals batch-at-decimate-7: the stride
    // counter does not reset or slip when the pstate column changes
    // between kept rows.
    std::ostringstream batch;
    writeBeatsCsv(batch, run.beats, 7);
    EXPECT_EQ(run.streamed_csv, batch.str());

    // And the decimated rows still expose the change: both a capped
    // and an uncapped pstate value appear among the kept rows.
    bool saw_capped = false;
    bool saw_uncapped = false;
    for (std::size_t i = 0; i < run.beats.size(); i += 7) {
        saw_capped = saw_capped || run.beats[i].pstate > 0;
        saw_uncapped = saw_uncapped || run.beats[i].pstate == 0;
    }
    EXPECT_TRUE(saw_capped);
    EXPECT_TRUE(saw_uncapped);
}

TEST(TraceExportEdges, DecimateBeyondRunLengthStreamsOneRow)
{
    const auto run = governedRun(1000);
    EXPECT_EQ(run.beats.size(), 60u);
    // Header plus the single on-grid row (beat 0).
    EXPECT_EQ(countLines(run.streamed_csv), 2u);
    std::ostringstream batch;
    writeBeatsCsv(batch, run.beats, 1000);
    EXPECT_EQ(run.streamed_csv, batch.str());
}

} // namespace
} // namespace powerdial::core
