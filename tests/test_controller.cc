/** @file Unit and property tests for the heart-rate controller. */
#include <cmath>

#include <gtest/gtest.h>

#include "core/controller.h"

namespace powerdial::core {
namespace {

ControllerConfig
config(double gain = 1.0)
{
    ControllerConfig cc;
    cc.baseline_rate = 10.0;
    cc.target_rate = 10.0;
    cc.gain = gain;
    cc.min_speedup = 1.0;
    cc.max_speedup = 100.0;
    return cc;
}

/**
 * Simulate the closed loop of paper Equation 2: the plant responds
 * with h(t+1) = b_effective * s(t). Returns the heart-rate series.
 */
std::vector<double>
simulateLoop(HeartRateController &controller, double b_effective,
             int steps, double h0)
{
    std::vector<double> rates{h0};
    double h = h0;
    for (int t = 0; t < steps; ++t) {
        const double s = controller.update(h);
        h = b_effective * s;
        rates.push_back(h);
    }
    return rates;
}

TEST(Controller, DeadbeatConvergesInOneStepWithExactModel)
{
    // Paper section 2.3.2: F_loop(z) = 1/z — with an exact model of b
    // the loop lands on target in a single control period. The plant
    // starts at its honest baseline output (h = b * s = 10) and the
    // target is raised to 15.
    auto cc = config();
    cc.target_rate = 15.0;
    auto controller = HeartRateController(cc);
    const auto rates = simulateLoop(controller, 10.0, 5, 10.0);
    for (std::size_t t = 1; t < rates.size(); ++t)
        EXPECT_NEAR(rates[t], 15.0, 1e-9);
}

TEST(Controller, GeometricConvergenceUnderModelMismatch)
{
    // Under a 2.4 -> 1.6 GHz cap the true gain is b_eff = (2/3) b, so
    // the closed-loop pole moves from 0 to 1 - b_eff/b = 1/3: the
    // error must decay by that ratio each period and still converge.
    auto controller = HeartRateController(config());
    const double b_eff = 10.0 * (1.6 / 2.4);
    const auto rates = simulateLoop(controller, b_eff, 40, b_eff);
    for (std::size_t t = 2; t + 1 < rates.size(); ++t) {
        const double e0 = std::abs(rates[t] - 10.0);
        const double e1 = std::abs(rates[t + 1] - 10.0);
        if (e0 < 1e-8)
            break; // Below floating-point resolution of the ratio.
        EXPECT_NEAR(e1 / e0, 1.0 / 3.0, 1e-3);
    }
    EXPECT_NEAR(rates.back(), 10.0, 1e-9);
}

TEST(Controller, ConvergesFromAboveTarget)
{
    // Cap lifted: the platform is faster than the integrator expects.
    auto controller = HeartRateController(config());
    // Drive the integrator up first.
    controller.update(6.0);
    controller.update(10.0);
    const auto rates = simulateLoop(controller, 10.0, 5, 15.0);
    EXPECT_NEAR(rates.back(), 10.0, 1e-9);
}

TEST(Controller, SpeedupClampedToActuationRange)
{
    auto cc = config();
    cc.max_speedup = 2.0;
    auto controller = HeartRateController(cc);
    // Persistent large error: the integrator must saturate at
    // max_speedup instead of winding up.
    controller.update(0.5);
    controller.update(0.5);
    EXPECT_DOUBLE_EQ(controller.update(0.5), 2.0);
    // Rate far above target: clamped at the baseline floor.
    auto controller2 = HeartRateController(cc);
    EXPECT_DOUBLE_EQ(controller2.update(100.0), 1.0);
}

TEST(Controller, ResetReturnsToBaseline)
{
    auto controller = HeartRateController(config());
    controller.update(2.0);
    EXPECT_GT(controller.speedup(), 1.0);
    controller.reset();
    EXPECT_DOUBLE_EQ(controller.speedup(), 1.0);
}

TEST(Controller, SetTargetReaims)
{
    auto controller = HeartRateController(config());
    controller.setTarget(20.0);
    const auto rates = simulateLoop(controller, 10.0, 6, 10.0);
    EXPECT_NEAR(rates.back(), 20.0, 1e-9);
    EXPECT_THROW(controller.setTarget(0.0), std::invalid_argument);
}

TEST(Controller, PoleLocationFormula)
{
    EXPECT_DOUBLE_EQ(HeartRateController::closedLoopPole(1.0), 0.0);
    EXPECT_DOUBLE_EQ(HeartRateController::closedLoopPole(0.5), 0.5);
    EXPECT_DOUBLE_EQ(HeartRateController::closedLoopPole(2.0), -1.0);
}

TEST(Controller, ConvergencePeriodsFormula)
{
    // Deadbeat pole at the origin: immediate convergence.
    EXPECT_DOUBLE_EQ(HeartRateController::convergencePeriods(1.0), 0.0);
    // Pole 0.5: t_c = -4 / log10(0.5) ~ 13.3 periods.
    EXPECT_NEAR(HeartRateController::convergencePeriods(0.5),
                -4.0 / std::log10(0.5), 1e-9);
    // |pole| >= 1: never converges.
    EXPECT_TRUE(std::isinf(HeartRateController::convergencePeriods(2.0)));
}

TEST(Controller, Validation)
{
    auto bad = config();
    bad.baseline_rate = 0.0;
    EXPECT_THROW(HeartRateController{bad}, std::invalid_argument);
    bad = config();
    bad.target_rate = -1.0;
    EXPECT_THROW(HeartRateController{bad}, std::invalid_argument);
    bad = config();
    bad.max_speedup = 0.5;
    EXPECT_THROW(HeartRateController{bad}, std::invalid_argument);
    bad = config();
    bad.gain = 0.0;
    EXPECT_THROW(HeartRateController{bad}, std::invalid_argument);
}

/**
 * Property: for stable gains (0 < k < 2) the loop converges to the
 * target under a capacity disturbance; the error decays as |1 - k|^t.
 */
class StableGains : public ::testing::TestWithParam<double>
{
};

TEST_P(StableGains, LoopConvergesUnderDisturbance)
{
    const double gain = GetParam();
    auto controller = HeartRateController(config(gain));
    const double b_eff = 10.0 * (1.6 / 2.4);
    const auto rates = simulateLoop(controller, b_eff, 80, b_eff);
    EXPECT_NEAR(rates.back(), 10.0, 1e-3)
        << "gain " << gain << " failed to converge";
}

INSTANTIATE_TEST_SUITE_P(Gains, StableGains,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.25,
                                           1.5, 1.9));

/** Property: gains beyond 2 oscillate without converging. */
TEST(Controller, UnstableGainDiverges)
{
    // Pole at 1 - k = -1.5 when the plant matches the model: |z| > 1.
    auto cc = config(2.5);
    cc.max_speedup = 1e9;  // Remove the saturation safety net.
    cc.min_speedup = -1e9; // And the floor.
    cc.initial_speedup = 1.0;
    auto controller = HeartRateController(cc);
    const auto rates = simulateLoop(controller, 10.0, 6, 12.0);
    // Error grows geometrically (|pole| = 1.5) rather than decaying.
    EXPECT_GT(std::abs(rates[3] - 10.0), std::abs(rates[1] - 10.0));
    EXPECT_GT(std::abs(rates[5] - 10.0), std::abs(rates[3] - 10.0));
}

} // namespace
} // namespace powerdial::core
