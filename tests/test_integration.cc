/**
 * @file
 * End-to-end integration tests: the full PowerDial pipeline —
 * identification, calibration, closed-loop control under a power cap —
 * on each real benchmark application (scaled-down configurations).
 */
#include <algorithm>

#include <gtest/gtest.h>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "sim/energy_meter.h"

namespace powerdial {
namespace {

/** Session run with a beat-trace recorder attached. */
struct TracedRun
{
    core::ControlledRun run;
    std::vector<core::BeatTrace> beats;
};

TracedRun
runTraced(core::Session &session, std::size_t input,
          sim::Machine &machine)
{
    // Owned (attach) rather than borrowed: the recorder must outlive
    // the session in case the caller runs it again later.
    auto &recorder = session.attach<core::BeatTraceRecorder>();
    TracedRun out;
    out.run = session.run(input, machine);
    out.beats = recorder.beats();
    return out;
}

/**
 * Run the section 5.4 power-cap scenario on an app and check the
 * signature behaviours of Figure 7: recovery to target under the cap
 * with knob gain > 1, and return to baseline knobs after the lift.
 */
void
powerCapScenario(core::App &app, double tolerance)
{
    auto ident = core::identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted) << ident.report;
    const auto cal = core::calibrate(app, app.trainingInputs());

    // Paper section 5.4: "We instruct the PowerDial control system to
    // maintain the observed performance" — the target is this input's
    // own baseline rate, not the training mean.
    const auto input = app.productionInputs().front();
    const auto baseline_run =
        core::runFixed(app, input, app.defaultCombination());
    app.loadInput(input);
    const double observed_rate =
        static_cast<double>(app.unitCount()) / baseline_run.seconds;
    sim::Machine machine;
    const double expected = baseline_run.seconds;
    core::Session session(
        app, ident.table, cal.model,
        core::SessionOptions()
            .withTargetRate(observed_rate)
            .withGovernor(sim::DvfsGovernor::powerCap(
                machine, 0.25 * expected, 0.75 * expected)));
    const auto traced = runTraced(session, input, machine);
    const auto &beats = traced.beats;

    // Mid-run (capped): performance recovered to target. Applications
    // with noisy per-unit work (the paper singles out swish++) need
    // the same sliding-window averaging the paper's figures use, so
    // check the mean over the middle fifth of the run.
    const std::size_t lo = beats.size() * 2 / 5;
    const std::size_t hi = beats.size() * 3 / 5;
    double perf = 0.0;
    double max_gain = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
        perf += beats[i].normalized_perf;
        max_gain = std::max(max_gain, beats[i].knob_gain);
    }
    perf /= static_cast<double>(hi - lo);
    EXPECT_EQ(beats[(lo + hi) / 2].pstate,
              machine.scale().lowestState());
    EXPECT_NEAR(perf, 1.0, tolerance);
    EXPECT_GT(max_gain, 1.0);

    // End of run (cap lifted): back at the baseline setting.
    EXPECT_EQ(beats.back().combination,
              cal.model.baselineCombination());
}

TEST(Integration, SwaptionsPowerCap)
{
    apps::swaptions::SwaptionsConfig config;
    config.sim_values = apps::swaptions::SwaptionsConfig::makeRange(
        250, 4000, 250);
    config.inputs = 4;
    config.swaptions_per_input = 400;
    apps::swaptions::SwaptionsApp app(config);
    powerCapScenario(app, 0.10);
}

TEST(Integration, SearchxPowerCap)
{
    apps::searchx::SearchxConfig config;
    config.corpus.documents = 400;
    config.corpus.words_per_doc = 150;
    config.inputs = 4;
    config.queries_per_input = 500;
    apps::searchx::SearchxApp app(config);
    powerCapScenario(app, 0.15);
}

TEST(Integration, VidencPowerCap)
{
    apps::videnc::VidencConfig config;
    config.subme_values = {1, 3, 5, 7};
    config.merange_values = {1, 4, 16};
    config.ref_values = {1, 3};
    config.inputs = 2;
    config.video.width = 48;
    config.video.height = 32;
    config.video.frames = 300;
    apps::videnc::VidencApp app(config);
    // Calibrate on the real inputs: short training clips make the
    // default setting spuriously dominated (low-effort search is free
    // when motion has not accumulated), which legitimately moves the
    // control floor off the default.
    auto ident = core::identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted);
    const auto cal = core::calibrate(app, app.trainingInputs());

    const auto input = app.productionInputs().front();
    const auto baseline =
        core::runFixed(app, input, app.defaultCombination());
    app.loadInput(input);
    sim::Machine machine;
    core::Session session(
        app, ident.table, cal.model,
        core::SessionOptions()
            .withTargetRate(static_cast<double>(app.unitCount()) /
                            baseline.seconds)
            .withGovernor(sim::DvfsGovernor::powerCap(
                machine, 0.25 * baseline.seconds,
                0.75 * baseline.seconds)));
    const auto traced = runTraced(session, input, machine);
    const auto &beats = traced.beats;

    const std::size_t lo = beats.size() * 2 / 5;
    const std::size_t hi = beats.size() * 3 / 5;
    double perf = 0.0, max_gain = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
        perf += beats[i].normalized_perf;
        max_gain = std::max(max_gain, beats[i].knob_gain);
    }
    perf /= static_cast<double>(hi - lo);
    EXPECT_NEAR(perf, 1.0, 0.15);
    EXPECT_GT(max_gain, 1.0);
    EXPECT_EQ(beats.back().combination,
              cal.model.baselineCombination());
}

TEST(Integration, BodytrackPowerCap)
{
    apps::bodytrack::BodytrackConfig config;
    config.particle_values = {100, 200, 400, 800};
    config.layer_values = {1, 2, 3, 5};
    config.inputs = 2;
    config.frames = 400;
    apps::bodytrack::BodytrackApp app(config);
    apps::bodytrack::BodytrackConfig short_config = config;
    short_config.frames = 20;
    apps::bodytrack::BodytrackApp trainer(short_config);
    auto ident = core::identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted);
    const auto cal = core::calibrate(trainer, trainer.trainingInputs());

    const auto input = app.productionInputs().front();
    const auto baseline =
        core::runFixed(app, input, app.defaultCombination());
    app.loadInput(input);
    sim::Machine machine;
    core::Session session(
        app, ident.table, cal.model,
        core::SessionOptions()
            .withTargetRate(static_cast<double>(app.unitCount()) /
                            baseline.seconds)
            .withGovernor(sim::DvfsGovernor::powerCap(
                machine, 0.25 * baseline.seconds,
                0.75 * baseline.seconds)));
    const auto traced = runTraced(session, input, machine);
    const auto &beats = traced.beats;

    const std::size_t lo = beats.size() * 2 / 5;
    const std::size_t hi = beats.size() * 3 / 5;
    double perf = 0.0, max_gain = 0.0;
    for (std::size_t i = lo; i < hi; ++i) {
        perf += beats[i].normalized_perf;
        max_gain = std::max(max_gain, beats[i].knob_gain);
    }
    perf /= static_cast<double>(hi - lo);
    EXPECT_NEAR(perf, 1.0, 0.12);
    EXPECT_GT(max_gain, 1.0);
    // The vector control variables must have been swapped mid-run:
    // the schedules always match the layer count.
    EXPECT_EQ(app.filterParams().betas.size(),
              app.filterParams().layers);
}

TEST(Integration, Figure6ProtocolHoldsPerformanceAtLowFrequency)
{
    // Pin the machine at 1.6 GHz; PowerDial must hold the 2.4 GHz
    // baseline heart rate (within the paper's 5%) at some QoS cost.
    apps::swaptions::SwaptionsConfig config;
    config.sim_values = apps::swaptions::SwaptionsConfig::makeRange(
        250, 4000, 250);
    config.inputs = 4;
    config.swaptions_per_input = 400;
    apps::swaptions::SwaptionsApp app(config);

    auto ident = core::identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted);
    const auto cal = core::calibrate(app, app.trainingInputs());

    core::Session session(app, ident.table, cal.model);
    sim::Machine machine;
    machine.setPState(machine.scale().lowestState());
    const auto traced =
        runTraced(session, app.productionInputs().front(), machine);

    const std::size_t tail = traced.beats.size() / 2;
    double perf = 0.0;
    for (std::size_t i = tail; i < traced.beats.size(); ++i)
        perf += traced.beats[i].normalized_perf;
    perf /= static_cast<double>(traced.beats.size() - tail);
    EXPECT_NEAR(perf, 1.0, 0.05);
    EXPECT_GT(traced.run.mean_qos_loss_estimate, 0.0);
}

TEST(Integration, LowerFrequencyWithControlUsesLessPower)
{
    // The power half of Figure 6: holding performance at a lower
    // frequency must reduce mean power draw.
    apps::swaptions::SwaptionsConfig config;
    config.sim_values = apps::swaptions::SwaptionsConfig::makeRange(
        500, 4000, 500);
    config.inputs = 2;
    config.swaptions_per_input = 200;
    apps::swaptions::SwaptionsApp app(config);
    auto ident = core::identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted);
    const auto cal = core::calibrate(app, app.trainingInputs());
    core::Session session(app, ident.table, cal.model);

    auto meanPowerAt = [&](std::size_t pstate) {
        sim::Machine machine;
        machine.setPState(pstate);
        machine.setUtilization(1.0);
        session.run(app.productionInputs().front(), machine);
        return machine.meanWatts();
    };
    EXPECT_LT(meanPowerAt(6), meanPowerAt(0));
}

TEST(Integration, ConsolidatedMachineHoldsRateWhenOversubscribed)
{
    // Section 5.5 in miniature: an instance receiving a quarter of a
    // core's throughput must still meet the baseline rate by trading
    // QoS.
    apps::swaptions::SwaptionsConfig config;
    config.sim_values = apps::swaptions::SwaptionsConfig::makeRange(
        250, 4000, 250);
    config.inputs = 2;
    config.swaptions_per_input = 400;
    apps::swaptions::SwaptionsApp app(config);
    auto ident = core::identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted);
    const auto cal = core::calibrate(app, app.trainingInputs());
    core::Session session(app, ident.table, cal.model);

    sim::Machine machine;
    machine.setShare(0.25); // 32 instances on 8 cores.
    machine.setUtilization(1.0);
    const auto traced =
        runTraced(session, app.productionInputs().front(), machine);
    const std::size_t tail = traced.beats.size() / 2;
    double perf = 0.0;
    for (std::size_t i = tail; i < traced.beats.size(); ++i)
        perf += traced.beats[i].normalized_perf;
    perf /= static_cast<double>(traced.beats.size() - tail);
    EXPECT_NEAR(perf, 1.0, 0.1);
    EXPECT_GT(traced.run.mean_qos_loss_estimate, 0.0);
}

TEST(Integration, ControlOverheadInsignificant)
{
    // Section 5.1: "The overhead of the PowerDial control system is
    // insignificant." Compare controlled vs uncontrolled virtual time
    // on an undisturbed machine — with no observers attached, like a
    // production deployment.
    apps::swaptions::SwaptionsConfig config;
    config.sim_values = apps::swaptions::SwaptionsConfig::makeRange(
        500, 2000, 500);
    config.inputs = 2;
    config.swaptions_per_input = 100;
    apps::swaptions::SwaptionsApp app(config);
    auto ident = core::identifyKnobs(app);
    const auto cal = core::calibrate(app, app.trainingInputs());
    core::Session session(app, ident.table, cal.model);

    const auto input = app.productionInputs().front();
    sim::Machine controlled;
    const auto run = session.run(input, controlled);
    const auto fixed =
        core::runFixed(app, input, app.defaultCombination());
    EXPECT_NEAR(run.seconds, fixed.seconds, 0.02 * fixed.seconds);
}

} // namespace
} // namespace powerdial
