/**
 * @file
 * Parallel calibration determinism: calibrate(threads = N) must be
 * bit-identical to calibrate(threads = 1) for every application,
 * because the parallel path only reorders *when* the independent
 * (combination, input) runs execute — each run is deterministic and
 * the merge is fixed serial arithmetic in combination-then-input
 * order.
 *
 * The thread count under test comes from POWERDIAL_TEST_THREADS
 * (default 4); CI runs the suite with both =1 and =4 so the serial
 * and parallel code paths are each exercised as the "N" side.
 */
#include <cstdlib>
#include <stdexcept>

#include <gtest/gtest.h>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "core/thread_pool.h"
#include "sample_apps.h"
#include "toy_app.h"

namespace powerdial {
namespace {

/** Thread count for the parallel side (POWERDIAL_TEST_THREADS). */
std::size_t
testThreads()
{
    const char *env = std::getenv("POWERDIAL_TEST_THREADS");
    if (env != nullptr) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return 4;
}

core::CalibrationResult
calibrateWith(core::App &app, const std::vector<std::size_t> &inputs,
              std::size_t threads)
{
    core::CalibrationOptions options;
    options.threads = threads;
    return core::calibrate(app, inputs, options);
}

/**
 * Assert every number in @p parallel equals the one in @p serial.
 * EXPECT_EQ on doubles is exact equality — the bit-identity contract.
 */
void
expectIdentical(const core::CalibrationResult &serial,
                const core::CalibrationResult &parallel)
{
    EXPECT_EQ(serial.data.speedups, parallel.data.speedups);
    EXPECT_EQ(serial.data.qos_losses, parallel.data.qos_losses);

    const auto &sp = serial.model.allPoints();
    const auto &pp = parallel.model.allPoints();
    ASSERT_EQ(sp.size(), pp.size());
    for (std::size_t c = 0; c < sp.size(); ++c) {
        EXPECT_EQ(sp[c].combination, pp[c].combination);
        EXPECT_EQ(sp[c].speedup, pp[c].speedup);
        EXPECT_EQ(sp[c].qos_loss, pp[c].qos_loss);
    }
    ASSERT_EQ(serial.model.pareto().size(),
              parallel.model.pareto().size());
    EXPECT_EQ(serial.model.baselineCombination(),
              parallel.model.baselineCombination());
    EXPECT_EQ(serial.model.baselineSeconds(),
              parallel.model.baselineSeconds());
    EXPECT_EQ(serial.model.baselineRate(),
              parallel.model.baselineRate());
}

/** Parameterised over the four benchmark applications. */
class ParallelCalibration : public ::testing::TestWithParam<int>
{
};

TEST_P(ParallelCalibration, BitIdenticalToSerial)
{
    auto app = tests::makeSampleApp(GetParam());
    const auto inputs = app->trainingInputs();
    const auto serial = calibrateWith(*app, inputs, 1);
    const auto parallel = calibrateWith(*app, inputs, testThreads());
    expectIdentical(serial, parallel);
}

TEST_P(ParallelCalibration, HardwareConcurrencyMatchesSerial)
{
    // threads = 0 resolves to hardware concurrency.
    auto app = tests::makeSampleApp(GetParam());
    const auto inputs = app->trainingInputs();
    const auto serial = calibrateWith(*app, inputs, 1);
    const auto parallel = calibrateWith(*app, inputs, 0);
    expectIdentical(serial, parallel);
}

TEST_P(ParallelCalibration, SingleTrainingInput)
{
    auto app = tests::makeSampleApp(GetParam());
    const std::vector<std::size_t> one = {0};
    const auto serial = calibrateWith(*app, one, 1);
    const auto parallel = calibrateWith(*app, one, testThreads());
    expectIdentical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(AllApps, ParallelCalibration,
                         ::testing::Values(0, 1, 2, 3));

TEST(ParallelCalibrationEdge, MoreThreadsThanCombinations)
{
    // ToyApp has 4 combinations; 32 workers mostly idle, result is
    // still bit-identical.
    tests::ToyApp serial_app, parallel_app;
    const auto inputs = serial_app.trainingInputs();
    const auto serial = calibrateWith(serial_app, inputs, 1);
    const auto parallel = calibrateWith(parallel_app, inputs, 32);
    expectIdentical(serial, parallel);
}

TEST(ParallelCalibrationEdge, EmptyInputsThrowRegardlessOfThreads)
{
    tests::ToyApp app;
    core::CalibrationOptions options;
    options.threads = testThreads();
    EXPECT_THROW(core::calibrate(app, {}, options),
                 std::invalid_argument);
}

/** An app whose processUnit throws on one specific combination. */
class ThrowingApp final : public core::App
{
  public:
    explicit ThrowingApp(std::size_t bad_combination)
        : bad_(bad_combination)
    {
    }

    std::string name() const override { return "throwing"; }

    std::unique_ptr<core::App>
    clone() const override
    {
        return std::make_unique<ThrowingApp>(*this);
    }

    const core::KnobSpace &knobSpace() const override
    {
        return inner_.knobSpace();
    }
    std::size_t defaultCombination() const override { return 0; }

    void
    configure(const std::vector<double> &params) override
    {
        current_combination_ =
            inner_.knobSpace().findCombination(params);
        inner_.configure(params);
    }

    void
    traceRun(influence::TraceRun &trace,
             const std::vector<double> &params) override
    {
        inner_.traceRun(trace, params);
    }

    void
    bindControlVariables(core::KnobTable &table) override
    {
        inner_.bindControlVariables(table);
    }

    std::size_t inputCount() const override
    {
        return inner_.inputCount();
    }
    std::vector<std::size_t> trainingInputs() const override
    {
        return inner_.trainingInputs();
    }
    std::vector<std::size_t> productionInputs() const override
    {
        return inner_.productionInputs();
    }
    void loadInput(std::size_t index) override
    {
        inner_.loadInput(index);
    }
    std::size_t unitCount() const override
    {
        return inner_.unitCount();
    }

    void
    processUnit(std::size_t unit, sim::Machine &machine) override
    {
        if (current_combination_ == bad_)
            throw std::runtime_error("injected processUnit failure");
        inner_.processUnit(unit, machine);
    }

    qos::OutputAbstraction output() const override
    {
        return inner_.output();
    }

  private:
    tests::ToyApp inner_;
    std::size_t bad_;
    std::size_t current_combination_ = 0;
};

TEST(ParallelCalibrationEdge, ExceptionPropagatesAndPoolDrains)
{
    // A failure in any worker's processUnit must surface from
    // calibrate() (not deadlock, not terminate). The test finishing
    // at all is the no-hang assertion.
    ThrowingApp app(2);
    core::CalibrationOptions options;
    options.threads = testThreads();
    EXPECT_THROW(core::calibrate(app, app.trainingInputs(), options),
                 std::runtime_error);
    // Serial path surfaces the same failure.
    options.threads = 1;
    EXPECT_THROW(core::calibrate(app, app.trainingInputs(), options),
                 std::runtime_error);
}

TEST(ParallelCalibrationEdge, BaselineFailurePropagates)
{
    // The baseline pass (combination 0 here) also fans out; a failure
    // there must surface too.
    ThrowingApp app(0);
    core::CalibrationOptions options;
    options.threads = testThreads();
    EXPECT_THROW(core::calibrate(app, app.trainingInputs(), options),
                 std::runtime_error);
}

TEST(ThreadPoolUnit, RunsEveryTaskExactlyOnce)
{
    core::ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<int> hits(100, 0);
    pool.parallelFor(hits.size(), [&](std::size_t t, std::size_t w) {
        ASSERT_LT(w, pool.size());
        ++hits[t];
    });
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolUnit, ReusableAcrossJobsAndAfterFailure)
{
    core::ThreadPool pool(3);
    EXPECT_THROW(
        pool.parallelFor(50,
                         [](std::size_t t, std::size_t) {
                             if (t == 7)
                                 throw std::logic_error("boom");
                         }),
        std::logic_error);
    // The pool survives the failed job and runs the next one fully.
    std::vector<int> hits(20, 0);
    pool.parallelFor(hits.size(), [&](std::size_t t, std::size_t) {
        ++hits[t];
    });
    for (const int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPoolUnit, ZeroTasksIsANoOp)
{
    core::ThreadPool pool(2);
    bool ran = false;
    pool.parallelFor(0, [&](std::size_t, std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

} // namespace
} // namespace powerdial
