/** @file Unit tests for dynamic knob calibration. */
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

using tests::ToyApp;

TEST(RunFixed, DeterministicAcrossRepeats)
{
    ToyApp app;
    const auto a = runFixed(app, 0, 1);
    const auto b = runFixed(app, 0, 1);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.output.components, b.output.components);
}

TEST(RunFixed, FasterKnobShortensRun)
{
    ToyApp app;
    const auto slow = runFixed(app, 0, 0); // k = 1.
    const auto fast = runFixed(app, 0, 3); // k = 8.
    EXPECT_NEAR(slow.seconds / fast.seconds, 8.0, 1e-9);
}

TEST(Calibrate, SpeedupsMatchKnobExactly)
{
    ToyApp app;
    const auto result = calibrate(app, app.trainingInputs());
    const auto &points = result.model.allPoints();
    ASSERT_EQ(points.size(), 4u);
    EXPECT_NEAR(points[0].speedup, 1.0, 1e-9);
    EXPECT_NEAR(points[1].speedup, 2.0, 1e-9);
    EXPECT_NEAR(points[2].speedup, 4.0, 1e-9);
    EXPECT_NEAR(points[3].speedup, 8.0, 1e-9);
}

TEST(Calibrate, QosLossMatchesModelExactly)
{
    ToyApp app;
    const auto result = calibrate(app, app.trainingInputs());
    const auto &points = result.model.allPoints();
    EXPECT_NEAR(points[0].qos_loss, 0.0, 1e-12);
    EXPECT_NEAR(points[1].qos_loss, 0.01, 1e-9);
    EXPECT_NEAR(points[2].qos_loss, 0.03, 1e-9);
    EXPECT_NEAR(points[3].qos_loss, 0.07, 1e-9);
}

TEST(Calibrate, BaselineRateIsUnitsPerSecond)
{
    ToyApp::Config config;
    config.base_cycles = 2.4e6; // 1 ms per unit at 2.4 GHz.
    ToyApp app(config);
    const auto result = calibrate(app, app.trainingInputs());
    EXPECT_NEAR(result.model.baselineRate(), 1000.0, 1e-6);
}

TEST(Calibrate, RawDataHasPerInputEntries)
{
    ToyApp app;
    const auto inputs = app.trainingInputs();
    const auto result = calibrate(app, inputs);
    ASSERT_EQ(result.data.speedups.size(), 4u);
    for (const auto &row : result.data.speedups)
        EXPECT_EQ(row.size(), inputs.size());
}

TEST(Calibrate, QosCapFiltersFrontier)
{
    ToyApp app;
    CalibrationOptions options;
    options.qos_cap = 0.05;
    const auto result = calibrate(app, app.trainingInputs(), options);
    EXPECT_NEAR(result.model.maxSpeedup(), 4.0, 1e-9);
}

TEST(Calibrate, EmptyInputsThrow)
{
    ToyApp app;
    EXPECT_THROW(calibrate(app, {}), std::invalid_argument);
}

TEST(Correlation, PerfectAndInverse)
{
    EXPECT_NEAR(correlation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(correlation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(Correlation, UncorrelatedNearZero)
{
    EXPECT_NEAR(correlation({1, 2, 1, 2}, {1, 1, 2, 2}), 0.0, 1e-12);
}

TEST(Correlation, DegenerateConstantSeries)
{
    EXPECT_DOUBLE_EQ(correlation({2, 2, 2}, {2, 2, 2}), 1.0);
    EXPECT_DOUBLE_EQ(correlation({2, 2, 2}, {3, 3, 3}), 0.0);
}

TEST(Correlation, Validation)
{
    EXPECT_THROW(correlation({}, {}), std::invalid_argument);
    EXPECT_THROW(correlation({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Correlation, SingleElementIsDegenerate)
{
    // One sample has zero variance on both sides, so it falls into
    // the degenerate branch: correlated iff the means (the elements)
    // are equal.
    EXPECT_DOUBLE_EQ(correlation({5.0}, {5.0}), 1.0);
    EXPECT_DOUBLE_EQ(correlation({5.0}, {7.0}), 0.0);
}

TEST(Correlation, NegativePartialCorrelation)
{
    // Not perfectly anti-correlated; Pearson r must land strictly
    // between -1 and 0 (hand-computed: r = -0.6 for these samples).
    EXPECT_NEAR(correlation({1, 2, 3, 4}, {3, 4, 1, 2}), -0.6, 1e-12);
}

TEST(Correlation, OneSideConstantIsDegenerate)
{
    // Only one series is constant: its variance is zero, so Pearson r
    // is undefined; the implementation resolves the degenerate branch
    // by comparing means (calibration.cc).
    EXPECT_DOUBLE_EQ(correlation({2, 2, 2}, {1, 2, 3}), 1.0);
    EXPECT_DOUBLE_EQ(correlation({2, 2, 2}, {4, 5, 6}), 0.0);
    EXPECT_DOUBLE_EQ(correlation({1, 2, 3}, {2, 2, 2}), 1.0);
}

TEST(Correlation, DegenerateIgnoresNearMiss)
{
    // A tiny perturbation takes the pair out of the degenerate branch
    // entirely (nonzero variance on both sides -> finite r).
    const double r = correlation({2.0, 2.0, 2.0 + 1e-9},
                                 {3.0, 3.0, 3.0 + 1e-9});
    EXPECT_NEAR(r, 1.0, 1e-9);
}

TEST(Calibrate, TrainingPredictsProductionOnToyApp)
{
    // The Table 2 property in miniature: training means should
    // correlate near-perfectly with production means when behaviour is
    // input-independent.
    ToyApp app;
    const auto train = calibrate(app, app.trainingInputs());
    const auto prod = calibrate(app, app.productionInputs());
    std::vector<double> ts, ps;
    for (std::size_t c = 0; c < train.model.allPoints().size(); ++c) {
        ts.push_back(train.model.allPoints()[c].speedup);
        ps.push_back(prod.model.allPoints()[c].speedup);
    }
    EXPECT_NEAR(correlation(ts, ps), 1.0, 1e-9);
}

} // namespace
} // namespace powerdial::core
