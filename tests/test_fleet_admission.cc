/**
 * @file
 * Admission-control seam tests.
 *
 * Three pins, mirroring the seam's contract (fleet/admission.h):
 *
 *   1. *Compatibility*: routing admission through an explicit
 *      QueueDepthAdmission is bit-identical to the Scheduler's default
 *      across the seeded scenario sweep, on both engines and at both
 *      thread counts — the seam itself changes nothing.
 *   2. *Overflow follows the policy*: when the placement policy's pick
 *      is at the queue-depth bound, overflow re-asks the policy
 *      restricted to machines with room instead of silently reverting
 *      to least-loaded (the PR's bug fix), pinned by a scenario where
 *      the two rules demonstrably diverge.
 *   3. *Predictive properties*: the SLO-aware policy never sheds when
 *      every deadline is feasible, sheds the lowest-priority class
 *      first under overload, degenerates to queue-depth behaviour for
 *      deadline-free traffic, and stays bit-identical across engines
 *      and thread counts (the margin feedback is replay-safe).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "fleet/server.h"
#include "fleet_scenarios.h"
#include "workload/traffic_mix.h"

namespace powerdial::fleet {
namespace {

using tests::FleetScenario;
using tests::expectReportsIdentical;
using tests::makeFleetScenario;
using tests::makePipeline;

FleetReport
serveScenario(const tests::Pipeline &p, const FleetScenario &scenario,
              EngineMode engine, bool epoch_compat = false,
              std::size_t threads = 1)
{
    ServerOptions options = scenario.options;
    options.engine = engine;
    options.event.epoch_compat = epoch_compat;
    options.threads = threads;
    Server server(p.app, p.table, p.model, options);
    return server.serve(scenario.arrivals);
}

// ---------------------------------------------------------------------
// 1. The seam is invisible: explicit QueueDepthAdmission == default.
// ---------------------------------------------------------------------

TEST(AdmissionSeam, ExplicitQueueDepthMatchesDefaultAcrossSweep)
{
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    const auto inputs = p.app.productionInputs();
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE(::testing::Message()
                     << "reproduce with makeFleetScenario(seed="
                     << seed << ")");
        const FleetScenario scenario =
            makeFleetScenario(seed, baseline_s, inputs);
        FleetScenario explicit_policy = scenario;
        explicit_policy.options.admission = makeQueueDepthAdmission();

        const FleetReport base =
            serveScenario(p, scenario, EngineMode::Epoch);
        expectReportsIdentical(
            base, serveScenario(p, explicit_policy, EngineMode::Epoch));
        expectReportsIdentical(
            base, serveScenario(p, explicit_policy, EngineMode::Epoch,
                                false, 4));
        expectReportsIdentical(
            base, serveScenario(p, explicit_policy, EngineMode::Event,
                                true));
        expectReportsIdentical(
            base, serveScenario(p, explicit_policy, EngineMode::Event,
                                true, 4));
        if (::testing::Test::HasFailure())
            break; // One seed's full diff is enough output.
    }
}

// ---------------------------------------------------------------------
// 2. Overflow keeps following the placement policy's criterion.
// ---------------------------------------------------------------------

TEST(Scheduler, OverflowFollowsThePolicyCriterionNotLeastLoaded)
{
    // Three 2-core machines, queue depth 4. Machine 0 is saturated
    // (util 1.0, so its marginal watt cost is zero) AND at the bound;
    // machine 2 is also saturated (marginal cost zero) but has room;
    // machine 1 is empty (least loaded, but its first instance costs
    // real watts). The power-aware pick is machine 0 (zero cost,
    // lowest index) — full, so admission overflows. The historical
    // rule would revert to least-loaded and choose machine 1; the
    // policy's own criterion among machines with room chooses 2.
    sim::Machine::Config config;
    config.cores = 2;
    sim::Cluster cluster(3, config);
    Scheduler scheduler(
        cluster,
        SchedulerOptions{makePowerAwarePlacement(), 4, {}, nullptr});
    for (int i = 0; i < 4; ++i)
        cluster.place(0);
    cluster.place(2);
    cluster.place(2);

    const auto machine = scheduler.tryAdmit();
    ASSERT_TRUE(machine.has_value());
    EXPECT_EQ(*machine, 2u);
    EXPECT_EQ(scheduler.shedCount(), 0u);

    // The default rule is unchanged where no candidate is cheaper:
    // least-loaded-among picks the emptier machine 1.
    EXPECT_EQ(scheduler.policy().name(), "power-aware");
    sim::Cluster fresh(3, config);
    Scheduler least(fresh, SchedulerOptions{nullptr, 4, {}, nullptr});
    for (int i = 0; i < 4; ++i)
        fresh.place(0);
    fresh.place(2);
    fresh.place(2);
    const auto fallback = least.tryAdmit();
    ASSERT_TRUE(fallback.has_value());
    EXPECT_EQ(*fallback, 1u);
}

// ---------------------------------------------------------------------
// 3. Predictive-policy properties.
// ---------------------------------------------------------------------

TEST(PredictiveAdmission, NeverShedsWhenEveryDeadlineIsFeasible)
{
    // Two 8-core machines, depth 16: occupancy can at most double the
    // per-instance runtime, well within the response model's catch-up
    // range, and every deadline is far beyond the baseline. The
    // predictive policy must admit everything the cluster has room
    // for — SLO shedding only fires on *predicted violations*.
    auto p = makePipeline();
    sim::Cluster cluster(2, {});
    Scheduler scheduler(
        cluster, SchedulerOptions{nullptr, 16,
                                  makePredictiveAdmission(), &p.model});
    EXPECT_EQ(scheduler.admissionPolicy().name(), "predictive-slo");

    const double loose = p.model.baselineSeconds() * 1e6;
    for (std::size_t i = 0; i < 32; ++i) {
        const auto admission =
            scheduler.tryAdmit(OfferedJob{0, i % 3, loose});
        ASSERT_TRUE(admission.has_value()) << "job " << i;
        EXPECT_GT(admission->predicted_s, 0.0);
    }
    EXPECT_EQ(scheduler.shedCount(), 0u);

    // The 33rd arrival is a *capacity* shed (no machine with room),
    // exactly as under queue-depth admission.
    EXPECT_FALSE(scheduler.tryAdmit(OfferedJob{0, 0, loose}));
    EXPECT_EQ(scheduler.shedCount(), 1u);
}

TEST(PredictiveAdmission, ShedsLowestPriorityClassFirstUnderOverload)
{
    // One single-core machine with a deep queue: each admission
    // shrinks every instance's core share, so predicted latency climbs
    // monotonically with occupancy. All three classes share one
    // deadline; the class-headroom scaling means class 2 crosses its
    // (scaled) threshold at a lower occupancy than class 1, and class
    // 1 before class 0 — so sheds must concentrate in the tail.
    auto p = makePipeline();
    sim::Machine::Config config;
    config.cores = 1;
    sim::Cluster cluster(1, config);
    Scheduler scheduler(
        cluster, SchedulerOptions{nullptr, 32,
                                  makePredictiveAdmission(), &p.model});

    const double deadline = p.model.baselineSeconds() * 2.0;
    for (std::size_t i = 0; i < 60; ++i)
        scheduler.tryAdmit(OfferedJob{0, i % 3, deadline});

    const auto &shed = scheduler.shedByClass();
    ASSERT_EQ(shed.size(), 3u);
    EXPECT_GT(shed[0], 0u); // Even the top class sheds eventually...
    EXPECT_GT(shed[1], shed[0]); // ...but strictly later...
    EXPECT_GT(shed[2], shed[1]); // ...and the tail class first of all.
    EXPECT_GT(cluster.activeOn(0), 0u);
    EXPECT_LT(cluster.activeOn(0), 32u) << "SLO sheds, not capacity";
    EXPECT_EQ(shed[0] + shed[1] + shed[2] + cluster.activeOn(0), 60u);
}

TEST(PredictiveAdmission, DeadlineFreeTrafficReproducesQueueDepth)
{
    // Legacy count-based traffic carries deadline 0 (= no SLO), so the
    // predictive policy must shed exactly when queue-depth admission
    // does; only the per-job predictions differ (predictive records
    // one, queue-depth records 0).
    auto p = makePipeline();
    FleetScenario scenario = makeFleetScenario(
        7, p.model.baselineSeconds(), p.app.productionInputs());
    scenario.options.machines = 1;
    scenario.options.queue_depth = 3;
    scenario.arrivals = {6, 6, 0, 6, 1, 0, 0};

    FleetScenario predictive = scenario;
    predictive.options.admission = makePredictiveAdmission();

    const FleetReport blind =
        serveScenario(p, scenario, EngineMode::Epoch);
    const FleetReport slo =
        serveScenario(p, predictive, EngineMode::Epoch);

    ASSERT_GT(blind.total_shed, 0u);
    EXPECT_EQ(blind.total_shed, slo.total_shed);
    EXPECT_EQ(blind.shed_by_machine, slo.shed_by_machine);
    EXPECT_EQ(blind.shed_by_class, slo.shed_by_class);
    ASSERT_EQ(blind.jobs.size(), slo.jobs.size());
    for (std::size_t i = 0; i < blind.jobs.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "job " << i);
        EXPECT_EQ(blind.jobs[i].machine, slo.jobs[i].machine);
        EXPECT_EQ(blind.jobs[i].tenant, slo.jobs[i].tenant);
        EXPECT_EQ(blind.jobs[i].epoch, slo.jobs[i].epoch);
        EXPECT_EQ(blind.jobs[i].latency_s, slo.jobs[i].latency_s);
        EXPECT_EQ(blind.jobs[i].predicted_s, 0.0);
        EXPECT_GT(slo.jobs[i].predicted_s, 0.0);
    }
}

/** A flash-crowd TrafficMix schedule over the pipeline's inputs. */
std::vector<std::vector<workload::OfferedJob>>
makeOverloadSchedule(const tests::Pipeline &p)
{
    const auto inputs = p.app.productionInputs();
    std::vector<workload::TenantProfile> profiles;
    for (std::size_t rank = 0; rank < inputs.size(); ++rank)
        profiles.push_back({inputs[rank % inputs.size()], rank % 3,
                            p.model.baselineSeconds() *
                                (2.0 + static_cast<double>(rank))});
    workload::TrafficMixParams params;
    params.steps = 24;
    params.trace.base_utilization = 0.5;
    params.trace.seed = 11;
    params.flash_crowds = {{8, 6, 0.9}};
    params.peak_rate = 5.0;
    params.seed = 12;
    return workload::makeTrafficMix(params, profiles).offers;
}

TEST(PredictiveAdmission, BitIdenticalAcrossThreadsAndEngines)
{
    // The margin feedback (noteCompletion) and lease context
    // (noteArbitration) are fed serially in virtual-time order by both
    // engines, so an SLO-aware serve over a flash-crowd schedule must
    // replay bit-identically at any thread count and across the
    // epoch/event-compat pair.
    auto p = makePipeline();
    const auto offers = makeOverloadSchedule(p);

    ServerOptions options;
    options.machines = 2;
    options.queue_depth = 4;
    options.epoch_seconds = p.model.baselineSeconds() * 0.5;
    options.admission = makePredictiveAdmission();
    options.arbiter.cluster_cap_watts = 130.0;

    auto serve = [&](EngineMode engine, bool compat,
                     std::size_t threads) {
        ServerOptions o = options;
        o.engine = engine;
        o.event.epoch_compat = compat;
        o.threads = threads;
        Server server(p.app, p.table, p.model, o);
        return server.serve(offers);
    };

    const FleetReport base = serve(EngineMode::Epoch, false, 1);
    ASSERT_GT(base.total_jobs, 0u);
    ASSERT_GT(base.total_shed, 0u) << "flash crowd must overload";
    expectReportsIdentical(base, serve(EngineMode::Epoch, false, 4));
    expectReportsIdentical(base, serve(EngineMode::Event, true, 1));
    expectReportsIdentical(base, serve(EngineMode::Event, true, 4));
}

} // namespace
} // namespace powerdial::fleet
