/** @file Tests for the PowerDial Session control runtime. */
#include <gtest/gtest.h>

#include <limits>

#include "core/calibration.h"
#include "core/fanout.h"
#include "core/identify.h"
#include "core/session.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

using tests::ToyApp;

struct Pipeline
{
    ToyApp app;
    KnobTable table;
    ResponseModel model;
};

Pipeline
makePipeline(const ToyApp::Config &config = {})
{
    Pipeline p{ToyApp(config), {}, {}};
    auto ident = identifyKnobs(p.app);
    EXPECT_TRUE(ident.analysis.accepted);
    p.table = std::move(ident.table);
    p.model = calibrate(p.app, p.app.trainingInputs()).model;
    return p;
}

/** Run with a trace recorder attached, returning run + beats. */
struct TracedRun
{
    ControlledRun run;
    std::vector<BeatTrace> beats;
};

TracedRun
runTraced(Session &session, std::size_t input, sim::Machine &machine)
{
    // Owned (attach) rather than borrowed: the recorder must outlive
    // the session in case the caller runs it again later.
    auto &recorder = session.attach<BeatTraceRecorder>();
    TracedRun out;
    out.run = session.run(input, machine);
    out.beats = recorder.beats();
    return out;
}

TEST(Session, HoldsTargetOnUnloadedMachine)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    sim::Machine machine;
    const auto traced = runTraced(session, 2, machine);
    // No disturbance: the app should stay at the baseline setting and
    // the observed rate should sit at the target.
    const auto &last = traced.beats.back();
    EXPECT_NEAR(last.normalized_perf, 1.0, 0.05);
    EXPECT_NEAR(traced.run.mean_qos_loss_estimate, 0.0, 0.005);
}

TEST(Session, RecoversPerformanceUnderPowerCap)
{
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    sim::Machine machine;
    // Cap at one quarter of the expected run, lift at three quarters
    // (the paper's section 5.4 scenario). The calibrated baseline time
    // already reflects the 600-unit inputs. The governor is an owned
    // component of the options now.
    const double expected = p.model.baselineSeconds();
    Session session(p.app, p.table, p.model,
                    SessionOptions().withGovernor(
                        sim::DvfsGovernor::powerCap(
                            machine, 0.25 * expected, 0.75 * expected)));
    const auto traced = runTraced(session, 2, machine);
    const auto &beats = traced.beats;

    // While capped (middle of the run), performance must return to
    // within 10% of target after the controller reacts.
    const std::size_t mid = beats.size() / 2;
    EXPECT_NEAR(beats[mid].normalized_perf, 1.0, 0.1);
    // The knob gain must exceed 1 while the cap is in force.
    EXPECT_GT(beats[mid].knob_gain, 1.0);
    // And the machine must really have been capped at that point.
    EXPECT_EQ(beats[mid].pstate, machine.scale().lowestState());
    // After the cap lifts, the app must return to the baseline knobs.
    EXPECT_EQ(beats.back().combination, p.model.baselineCombination());
}

TEST(Session, GovernorResetsBetweenRuns)
{
    // The owned governor replays its schedule on every run: both runs
    // must see the capped region, not just the first.
    ToyApp::Config config;
    config.units = 400;
    auto p = makePipeline(config);
    const double expected = p.model.baselineSeconds();

    sim::Machine probe;
    Session session(p.app, p.table, p.model,
                    SessionOptions().withGovernor(
                        sim::DvfsGovernor::powerCap(
                            probe, 0.25 * expected, 0.75 * expected)));

    BeatTraceRecorder recorder; // Resets itself at each run start.
    session.observe(recorder);
    auto cappedBeats = [&session, &recorder](sim::Machine &machine) {
        session.run(2, machine);
        std::size_t capped = 0;
        for (const auto &b : recorder.beats())
            capped += b.pstate != 0 ? 1u : 0u;
        return capped;
    };

    sim::Machine m1, m2;
    const std::size_t first = cappedBeats(m1);
    const std::size_t second = cappedBeats(m2);
    EXPECT_GT(first, 0u);
    EXPECT_EQ(first, second);

    // The schedule is re-anchored at each run's start time, so even a
    // machine that carries virtual time over from the previous run
    // sees the same capped region (not an instantly-expired schedule).
    const std::size_t reused = cappedBeats(m1);
    EXPECT_EQ(reused, first);
}

TEST(Session, WithoutKnobsPerformanceDegradesUnderCap)
{
    ToyApp::Config config;
    config.units = 400;
    auto p = makePipeline(config);
    sim::Machine machine;
    Session session(p.app, p.table, p.model,
                    SessionOptions()
                        .withKnobsEnabled(false)
                        .withGovernor(sim::DvfsGovernor::powerCap(
                            machine, 0.05, 1e9)));
    const auto traced = runTraced(session, 2, machine);
    // The ~x markers of Figure 7: performance settles at f_low/f_high.
    const auto &last = traced.beats.back();
    EXPECT_NEAR(last.normalized_perf, 1.6 / 2.4, 0.05);
}

TEST(Session, RaceToIdleInsertsIdleTime)
{
    ToyApp::Config config;
    config.units = 400;
    auto p = makePipeline(config);
    sim::Machine machine;
    Session session(p.app, p.table, p.model,
                    SessionOptions()
                        .withStrategy(makeRaceToIdleStrategy())
                        .withGovernor(sim::DvfsGovernor::powerCap(
                            machine, 0.05, 1e9)));
    const auto traced = runTraced(session, 2, machine);
    // Performance still near target under the cap...
    EXPECT_NEAR(traced.beats.back().normalized_perf, 1.0, 0.1);
    // ...but the trace must contain idle (low-power) segments.
    bool saw_idle = false;
    for (const auto &seg : machine.powerTrace())
        saw_idle |= seg.watts == machine.powerModel().idleWatts();
    EXPECT_TRUE(saw_idle);
}

TEST(Session, HigherTargetForcesQosSacrifice)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model,
                    SessionOptions().withTargetRate(
                        p.model.baselineRate() * 3.0));
    sim::Machine machine;
    const auto traced = runTraced(session, 2, machine);
    EXPECT_GT(traced.run.mean_qos_loss_estimate, 0.0);
    EXPECT_NEAR(traced.beats.back().normalized_perf, 1.0, 0.15);
}

TEST(Session, BeatTraceIsComplete)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    sim::Machine machine;
    const auto traced = runTraced(session, 0, machine);
    EXPECT_EQ(traced.beats.size(), 200u);
    EXPECT_EQ(traced.run.beat_count, 200u);
    EXPECT_GT(traced.run.seconds, 0.0);
    ASSERT_EQ(traced.run.output.components.size(), 1u);
    // Timestamps must be monotone.
    for (std::size_t i = 1; i < traced.beats.size(); ++i)
        EXPECT_GE(traced.beats[i].time_s, traced.beats[i - 1].time_s);
}

TEST(Session, RunWithoutObserversStillReportsCounts)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    sim::Machine machine;
    const auto run = session.run(0, machine);
    EXPECT_EQ(run.beat_count, 200u);
    EXPECT_GT(run.seconds, 0.0);
}

TEST(Session, OptionValidation)
{
    auto p = makePipeline();
    EXPECT_THROW(Session(p.app, p.table, p.model,
                         SessionOptions().withQuantum(0)),
                 std::invalid_argument);
    EXPECT_THROW(Session(p.app, p.table, p.model,
                         SessionOptions().withWindow(0)),
                 std::invalid_argument);
    EXPECT_THROW(
        Session(p.app, p.table, p.model,
                SessionOptions().withPolicy(
                    [] { return std::unique_ptr<ControlPolicy>(); })),
        std::invalid_argument);
    EXPECT_THROW(
        Session(p.app, p.table, p.model,
                SessionOptions().withStrategy(
                    [] { return std::unique_ptr<ActuationStrategy>(); })),
        std::invalid_argument);
}

TEST(Session, CustomPoliciesHoldTargetUnderCap)
{
    // The new control laws must also ride through the section 5.4
    // power cap on the toy plant.
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    const double expected = p.model.baselineSeconds();

    for (const auto &factory :
         {makePidPolicy(), makeGainScheduledPolicy()}) {
        sim::Machine machine;
        Session session(p.app, p.table, p.model,
                        SessionOptions()
                            .withPolicy(factory)
                            .withGovernor(sim::DvfsGovernor::powerCap(
                                machine, 0.25 * expected,
                                0.75 * expected)));
        const auto traced = runTraced(session, 2, machine);
        const auto &beats = traced.beats;
        const std::size_t lo = beats.size() * 2 / 5;
        const std::size_t hi = beats.size() * 3 / 5;
        double perf = 0.0;
        for (std::size_t i = lo; i < hi; ++i)
            perf += beats[i].normalized_perf;
        perf /= static_cast<double>(hi - lo);
        EXPECT_NEAR(perf, 1.0, 0.12)
            << session.policy().name() << " failed under the cap";
    }
}

TEST(Session, RebindKnobTableDrivesClone)
{
    auto p = makePipeline();
    auto clone = p.app.clone();
    KnobTable rebound = rebindKnobTable(p.table, *clone);
    ASSERT_EQ(rebound.variableCount(), p.table.variableCount());
    // Applying a combination through the rebound table must move the
    // *clone's* control variable, not the original's.
    const double original_k = p.app.k();
    rebound.apply(3);
    auto *toy = dynamic_cast<ToyApp *>(clone.get());
    ASSERT_NE(toy, nullptr);
    EXPECT_EQ(toy->k(), p.app.knobSpace().valuesOf(3)[0]);
    EXPECT_EQ(p.app.k(), original_k);
}

/** Property: the controller holds target across all seven P-states. */
class SessionAtFrequency : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(SessionAtFrequency, HoldsBaselineRate)
{
    // The Figure 6 protocol: pin the machine at a P-state and ask
    // PowerDial to hold the 2.4 GHz baseline rate. The paper verifies
    // delivered performance within 5% of target at every state.
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    Session session(p.app, p.table, p.model);
    sim::Machine machine;
    machine.setPState(GetParam());
    const auto traced = runTraced(session, 2, machine);
    const std::size_t tail = traced.beats.size() * 3 / 4;
    double perf = 0.0;
    for (std::size_t i = tail; i < traced.beats.size(); ++i)
        perf += traced.beats[i].normalized_perf;
    perf /= static_cast<double>(traced.beats.size() - tail);
    EXPECT_NEAR(perf, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(PStates, SessionAtFrequency,
                         ::testing::Range<std::size_t>(0, 7));

TEST(SessionGate, CalledOncePerBeat)
{
    auto p = makePipeline();
    std::size_t calls = 0;
    std::size_t last_beat = 0;
    Session session(p.app, p.table, p.model,
                    SessionOptions().withGate(
                        [&](BeatGateContext &ctx) {
                            ++calls;
                            last_beat = ctx.beat;
                        }));
    sim::Machine machine;
    const auto run = session.run(2, machine);
    EXPECT_EQ(calls, run.beat_count);
    EXPECT_EQ(last_beat, run.beat_count - 1);
}

TEST(SessionGate, PauseSlowsTheRunAndKnobsCompensate)
{
    // An arbitration pause every beat is a capacity disturbance like
    // any other: the run takes idle time, and the control loop dials
    // knobs up to recover the target rate.
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    sim::Machine plain_machine;
    Session plain(p.app, p.table, p.model);
    const auto base = runTraced(plain, 2, plain_machine);

    const double beat_s = 1.0 / p.model.baselineRate();
    sim::Machine paused_machine;
    Session paused(p.app, p.table, p.model,
                   SessionOptions().withGate(
                       [beat_s](BeatGateContext &ctx) {
                           ctx.pause_seconds = 0.5 * beat_s;
                       }));
    const auto throttled = runTraced(paused, 2, paused_machine);

    // The paused run pays idle time but claws rate back with knobs:
    // QoS loss appears, and tail performance recovers near target.
    EXPECT_GT(throttled.run.seconds, base.run.seconds);
    EXPECT_GT(throttled.run.mean_qos_loss_estimate,
              base.run.mean_qos_loss_estimate);
    const auto &beats = throttled.beats;
    const std::size_t tail = beats.size() * 3 / 4;
    double perf = 0.0;
    for (std::size_t i = tail; i < beats.size(); ++i)
        perf += beats[i].normalized_perf;
    perf /= static_cast<double>(beats.size() - tail);
    EXPECT_NEAR(perf, 1.0, 0.10);
}

TEST(SessionGate, PausePerBusyMeetsAnAveragePowerBudget)
{
    // Duty-cycling through the gate's per-busy ratio holds the
    // machine at (W_busy + r * W_idle) / (1 + r) watts on average —
    // the contract the fleet power arbiter relies on to meet a
    // budget below the slowest P-state's draw. Knobs off so busy
    // power is constant.
    auto p = makePipeline();
    const double r = 2.0;
    Session session(p.app, p.table, p.model,
                    SessionOptions()
                        .withKnobsEnabled(false)
                        .withGate([r](BeatGateContext &ctx) {
                            ctx.pause_per_busy = r;
                        }));
    sim::Machine machine;
    machine.setUtilization(1.0);
    session.run(2, machine);
    const auto &power = machine.powerModel();
    const double busy_watts =
        power.watts(machine.frequencyHz(), 1.0);
    const double expected =
        (busy_watts + r * power.idleWatts()) / (1.0 + r);
    EXPECT_NEAR(machine.meanWatts(), expected, 1e-9);
}

// ---------------------------------------------------------------------
// Gate composition helpers.
// ---------------------------------------------------------------------

TEST(GateHelpers, ComposeRunsEveryGateInOrderOnOneContext)
{
    std::vector<int> order;
    BeatGate composed = composeGates(
        {[&order](BeatGateContext &ctx) {
             order.push_back(1);
             ctx.pause_per_busy += 0.25;
         },
         [&order](BeatGateContext &ctx) {
             order.push_back(2);
             ctx.pause_per_busy += 0.5;
         }});
    ASSERT_TRUE(static_cast<bool>(composed));
    sim::Machine machine;
    BeatGateContext ctx{0, machine};
    composed(ctx);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_DOUBLE_EQ(ctx.pause_per_busy, 0.75);
}

TEST(GateHelpers, ComposeSkipsNullGates)
{
    std::size_t calls = 0;
    BeatGate composed = composeGates(
        nullptr, [&calls](BeatGateContext &) { ++calls; });
    ASSERT_TRUE(static_cast<bool>(composed));
    sim::Machine machine;
    BeatGateContext ctx{0, machine};
    composed(ctx);
    EXPECT_EQ(calls, 1u);

    // All-null composition collapses to "no gate".
    EXPECT_FALSE(static_cast<bool>(composeGates(nullptr, nullptr)));
    EXPECT_FALSE(static_cast<bool>(composeGates({})));
}

TEST(GateHelpers, DutyCycleGateAddsFixedRatio)
{
    BeatGate gate = makeDutyCycleGate(0.4);
    ASSERT_TRUE(static_cast<bool>(gate));
    sim::Machine machine;
    BeatGateContext ctx{0, machine};
    ctx.pause_per_busy = 0.1; // Composes additively with prior gates.
    gate(ctx);
    EXPECT_DOUBLE_EQ(ctx.pause_per_busy, 0.5);

    // A zero ratio is "no gate"; a negative one is a caller bug.
    EXPECT_FALSE(static_cast<bool>(makeDutyCycleGate(0.0)));
    EXPECT_THROW(makeDutyCycleGate(-0.1), std::invalid_argument);
    EXPECT_THROW(makeDutyCycleGate(std::function<double()>{}),
                 std::invalid_argument);
}

TEST(GateHelpers, DynamicDutyCycleGateSamplesEveryBeat)
{
    // The lease-driven form: an external agent retunes the ratio
    // between beats and the next beat already honours it.
    double ratio = 0.0;
    BeatGate gate = makeDutyCycleGate([&ratio]() { return ratio; });
    sim::Machine machine;
    BeatGateContext first{0, machine};
    gate(first);
    EXPECT_DOUBLE_EQ(first.pause_per_busy, 0.0);
    ratio = 0.3;
    BeatGateContext second{1, machine};
    gate(second);
    EXPECT_DOUBLE_EQ(second.pause_per_busy, 0.3);
}

TEST(GateHelpers, ComposedDutyCycleGatesSlowARunTogether)
{
    // End to end: two composed duty-cycle gates behave like one gate
    // with the summed ratio (knobs off isolates the pause effect).
    auto p = makePipeline();
    const auto timedRun = [&p](BeatGate gate) {
        auto clone = p.app.clone();
        KnobTable table = rebindKnobTable(p.table, *clone);
        Session session(*clone, table, p.model,
                        SessionOptions()
                            .withKnobsEnabled(false)
                            .withGate(std::move(gate)));
        sim::Machine machine;
        return session.run(2, machine).seconds;
    };
    const double plain = timedRun(nullptr);
    const double composed = timedRun(composeGates(
        makeDutyCycleGate(0.25), makeDutyCycleGate(0.25)));
    const double summed = timedRun(makeDutyCycleGate(0.5));
    EXPECT_DOUBLE_EQ(composed, summed);
    EXPECT_NEAR(composed / plain, 1.5, 1e-9);
}

// ---------------------------------------------------------------------
// Epoch-sliced stepping (the persistent-tenant entry points).
// ---------------------------------------------------------------------

TEST(SessionStepping, SlicedRunIsBitIdenticalToOneShotRun)
{
    // advanceUntil with deadlines must execute the identical beat
    // sequence as run(): slicing only changes when (in host time) the
    // beats execute, never what they compute.
    auto p = makePipeline();
    auto one_shot_app = p.app.clone();
    KnobTable one_shot_table = rebindKnobTable(p.table, *one_shot_app);
    Session one_shot(*one_shot_app, one_shot_table, p.model);
    auto &one_shot_trace = one_shot.attach<BeatTraceRecorder>();
    sim::Machine one_shot_machine;
    const auto reference = one_shot.run(2, one_shot_machine);

    auto sliced_app = p.app.clone();
    KnobTable sliced_table = rebindKnobTable(p.table, *sliced_app);
    Session sliced(*sliced_app, sliced_table, p.model);
    auto &sliced_trace = sliced.attach<BeatTraceRecorder>();
    sim::Machine sliced_machine;
    sliced.start(2, sliced_machine);
    EXPECT_TRUE(sliced.active());
    const double quarter = reference.seconds / 4.0;
    std::optional<ControlledRun> done;
    std::size_t slices = 0;
    for (std::size_t k = 1; !done.has_value(); ++k) {
        done = sliced.advanceUntil(static_cast<double>(k) * quarter);
        ++slices;
    }
    EXPECT_GE(slices, 4u);
    EXPECT_FALSE(sliced.active());

    EXPECT_EQ(done->beat_count, reference.beat_count);
    EXPECT_EQ(done->seconds, reference.seconds);
    EXPECT_EQ(done->mean_qos_loss_estimate,
              reference.mean_qos_loss_estimate);
    ASSERT_EQ(sliced_trace.beats().size(), one_shot_trace.beats().size());
    for (std::size_t i = 0; i < sliced_trace.beats().size(); ++i) {
        const BeatTrace &a = sliced_trace.beats()[i];
        const BeatTrace &b = one_shot_trace.beats()[i];
        EXPECT_EQ(a.time_s, b.time_s) << "beat " << i;
        EXPECT_EQ(a.window_rate, b.window_rate) << "beat " << i;
        EXPECT_EQ(a.combination, b.combination) << "beat " << i;
        EXPECT_EQ(a.pstate, b.pstate) << "beat " << i;
    }
}

TEST(SessionStepping, DeadlineInThePastRunsNoBeats)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    sim::Machine machine;
    session.start(2, machine);
    EXPECT_FALSE(session.advanceUntil(0.0).has_value());
    EXPECT_EQ(session.unitsProcessed(), 0u);
    EXPECT_TRUE(session.active());
    const auto done = session.advanceUntil(
        std::numeric_limits<double>::infinity());
    ASSERT_TRUE(done.has_value());
    EXPECT_EQ(done->beat_count, p.app.unitCount());
}

TEST(SessionStepping, MisuseThrows)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    EXPECT_THROW(session.advanceUntil(1.0), std::logic_error);
    sim::Machine machine;
    session.start(2, machine);
    EXPECT_THROW(session.start(2, machine), std::logic_error);
    // run() on a session with a run in flight is the same misuse.
    EXPECT_THROW(session.run(2, machine), std::logic_error);
}

TEST(SessionGate, GateCanActuateTheMachine)
{
    // External arbitration mid-run: the gate installs a frequency cap
    // halfway through, and the remaining beats run slower.
    auto p = makePipeline();
    const std::size_t half = p.app.unitCount() / 2;
    Session session(
        p.app, p.table, p.model,
        SessionOptions().withGate([half](BeatGateContext &ctx) {
            if (ctx.beat == half)
                ctx.machine.setPStateCap(
                    ctx.machine.scale().lowestState());
        }));
    sim::Machine machine;
    const auto traced = runTraced(session, 2, machine);
    EXPECT_EQ(traced.beats.front().pstate, 0u);
    EXPECT_EQ(traced.beats.back().pstate,
              machine.scale().lowestState());
}

} // namespace
} // namespace powerdial::core
