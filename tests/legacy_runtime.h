/**
 * @file
 * Test-only reference implementation of the pre-Session monolithic
 * runtime (core::Runtime::run as of PR 2), kept verbatim so the
 * equivalence suite can prove that the redesigned Session with the
 * deadbeat ControlPolicy and the ported ActuationStrategies produces
 * bit-identical beat traces. Not part of the library.
 */
#ifndef POWERDIAL_TESTS_LEGACY_RUNTIME_H
#define POWERDIAL_TESTS_LEGACY_RUNTIME_H

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/app.h"
#include "core/controller.h"
#include "core/response_model.h"
#include "core/run_observer.h"
#include "heartbeats/heartbeat.h"
#include "sim/dvfs_governor.h"

namespace powerdial::tests::legacy {

/** The old closed two-value actuation enum. */
enum class ActuationPolicy
{
    MinimalSpeedup,
    RaceToIdle,
};

/** The old RuntimeOptions struct. */
struct RuntimeOptions
{
    ActuationPolicy policy = ActuationPolicy::MinimalSpeedup;
    std::size_t quantum_beats = 20;
    double gain = 1.0;
    std::size_t window = 20;
    double target_rate = 0.0;
    bool knobs_enabled = true;
};

/** The old per-run result (beats baked in). */
struct ControlledRun
{
    std::vector<core::BeatTrace> beats;
    qos::OutputAbstraction output;
    double seconds = 0.0;
    double mean_qos_loss_estimate = 0.0;
};

struct ActuationSlice
{
    std::size_t combination;
    double fraction;
    double speedup;
    double qos_loss;
};

struct ActuationPlan
{
    std::vector<ActuationSlice> slices;
    double idle_fraction = 0.0;
};

/** The old Actuator, inlined. */
class Actuator
{
  public:
    Actuator(const core::ResponseModel &model, ActuationPolicy policy,
             std::size_t quantum_beats)
        : model_(&model), policy_(policy), quantum_beats_(quantum_beats)
    {
    }

    ActuationPlan
    plan(double speedup) const
    {
        ActuationPlan out;
        const auto &base = model_->baselinePoint();
        const double s_cmd = std::max(speedup, base.speedup);

        if (policy_ == ActuationPolicy::RaceToIdle) {
            const auto &fast = model_->fastest();
            const double frac = std::min(1.0, s_cmd / fast.speedup);
            out.slices.push_back(
                {fast.combination, frac, fast.speedup, fast.qos_loss});
            out.idle_fraction = 1.0 - frac;
            return out;
        }

        const auto &hi = model_->atLeast(s_cmd);
        if (hi.speedup <= s_cmd || hi.combination == base.combination) {
            out.slices.push_back(
                {hi.combination, 1.0, hi.speedup, hi.qos_loss});
            return out;
        }
        if (s_cmd <= base.speedup) {
            out.slices.push_back(
                {base.combination, 1.0, base.speedup, base.qos_loss});
            return out;
        }
        const double t_min =
            (s_cmd - base.speedup) / (hi.speedup - base.speedup);
        const double t_default = 1.0 - t_min;
        if (t_min > 0.0)
            out.slices.push_back(
                {hi.combination, t_min, hi.speedup, hi.qos_loss});
        if (t_default > 0.0)
            out.slices.push_back({base.combination, t_default,
                                  base.speedup, base.qos_loss});
        return out;
    }

    std::size_t
    combinationForBeat(const ActuationPlan &plan, std::size_t beat) const
    {
        const double pos =
            (static_cast<double>(beat % quantum_beats_) + 0.5) /
            static_cast<double>(quantum_beats_);
        const double busy = 1.0 - plan.idle_fraction;
        double acc = 0.0;
        for (const auto &s : plan.slices) {
            acc += s.fraction / (busy > 0.0 ? busy : 1.0);
            if (pos * 1.0 <= acc * 1.0 + 1e-12)
                return s.combination;
        }
        return plan.slices.back().combination;
    }

    double
    idlePerBusySecond(const ActuationPlan &plan) const
    {
        const double busy = 1.0 - plan.idle_fraction;
        if (busy <= 0.0)
            return 0.0;
        return plan.idle_fraction / busy;
    }

  private:
    const core::ResponseModel *model_;
    ActuationPolicy policy_;
    std::size_t quantum_beats_;
};

/** The old Runtime::run loop, verbatim. */
inline ControlledRun
run(core::App &app, const core::KnobTable &table,
    const core::ResponseModel &model, const RuntimeOptions &options,
    std::size_t input, sim::Machine &machine,
    sim::DvfsGovernor *governor = nullptr)
{
    const double target = options.target_rate > 0.0
        ? options.target_rate
        : model.baselineRate();

    hb::Monitor monitor(options.window, {target, target});

    core::ControllerConfig cc;
    cc.baseline_rate = model.baselineRate();
    cc.target_rate = target;
    cc.gain = options.gain;
    cc.min_speedup = model.baselinePoint().speedup;
    cc.max_speedup = model.maxSpeedup();
    core::HeartRateController controller(cc);

    Actuator actuator(model, options.policy, options.quantum_beats);

    const std::size_t baseline = model.baselineCombination();
    app.configure(app.knobSpace().valuesOf(baseline));
    app.loadInput(input);

    ActuationPlan plan;
    plan.slices.push_back({baseline, 1.0, model.baselinePoint().speedup,
                           model.baselinePoint().qos_loss});

    ControlledRun result;
    const double start = machine.now();
    const std::size_t units = app.unitCount();
    result.beats.reserve(units);

    std::size_t applied = baseline;
    double commanded = cc.min_speedup;
    double qos_weighted = 0.0;
    double qos_work = 0.0;

    for (std::size_t u = 0; u < units; ++u) {
        monitor.beat(machine.now());
        if (governor != nullptr)
            governor->poll(machine);

        if (options.knobs_enabled && u > 0 &&
            u % options.quantum_beats == 0) {
            const double rate = monitor.windowRate();
            if (rate > 0.0) {
                commanded = controller.update(rate);
                plan = actuator.plan(commanded);
            }
        }

        const std::size_t combo = options.knobs_enabled
            ? actuator.combinationForBeat(plan,
                                          u % options.quantum_beats)
            : baseline;
        if (combo != applied) {
            table.apply(combo);
            applied = combo;
        }

        const double before = machine.now();
        app.processUnit(u, machine);
        const double busy = machine.now() - before;

        const double idle_ratio = options.knobs_enabled
            ? actuator.idlePerBusySecond(plan)
            : 0.0;
        if (idle_ratio > 0.0)
            machine.idleFor(idle_ratio * busy);

        double combo_qos = 0.0;
        double combo_speedup = 1.0;
        for (const auto &p : model.allPoints()) {
            if (p.combination == applied) {
                combo_qos = p.qos_loss;
                combo_speedup = p.speedup;
                break;
            }
        }
        qos_weighted += combo_qos;
        qos_work += 1.0;

        core::BeatTrace bt;
        bt.time_s = machine.now();
        bt.window_rate = monitor.windowRate();
        bt.normalized_perf =
            target > 0.0 ? bt.window_rate / target : 0.0;
        bt.commanded_speedup = commanded;
        bt.knob_gain = combo_speedup;
        bt.combination = applied;
        bt.pstate = machine.pstate();
        result.beats.push_back(bt);
    }

    result.seconds = machine.now() - start;
    result.output = app.output();
    result.mean_qos_loss_estimate =
        qos_work > 0.0 ? qos_weighted / qos_work : 0.0;
    return result;
}

} // namespace powerdial::tests::legacy

#endif // POWERDIAL_TESTS_LEGACY_RUNTIME_H
