/** @file Unit and property tests for the PowerDial actuator. */
#include <gtest/gtest.h>

#include "core/actuator.h"

namespace powerdial::core {
namespace {

ResponseModel
model()
{
    // Frontier: (1, 0), (2, 0.01), (4, 0.05), (8, 0.2).
    return ResponseModel({{0, 1.0, 0.00},
                          {1, 2.0, 0.01},
                          {2, 4.0, 0.05},
                          {3, 8.0, 0.20}},
                         0, 10.0, 5.0);
}

TEST(Actuator, PaperExampleSpeedupOneAndAHalf)
{
    // Paper section 2.3.3: command 1.5 with available speedups {1, 2}
    // -> half the quantum at 2, half at the default.
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup, 20);
    const auto plan = act.plan(1.5);
    ASSERT_EQ(plan.slices.size(), 2u);
    EXPECT_EQ(plan.slices[0].combination, 1u);
    EXPECT_NEAR(plan.slices[0].fraction, 0.5, 1e-12);
    EXPECT_EQ(plan.slices[1].combination, 0u);
    EXPECT_NEAR(plan.slices[1].fraction, 0.5, 1e-12);
    EXPECT_NEAR(plan.averageSpeedup(), 1.5, 1e-12);
    EXPECT_DOUBLE_EQ(plan.idle_fraction, 0.0);
}

TEST(Actuator, MinimalSpeedupUsesSlowestSufficientSetting)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup);
    // Command 3: s_min = 4 (slowest Pareto speedup >= 3), mixed with
    // the default, not with s_max = 8.
    const auto plan = act.plan(3.0);
    for (const auto &s : plan.slices)
        EXPECT_NE(s.combination, 3u);
    EXPECT_NEAR(plan.averageSpeedup(), 3.0, 1e-12);
}

TEST(Actuator, CommandAtBaselineRunsDefaultOnly)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup);
    const auto plan = act.plan(1.0);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 0u);
    EXPECT_DOUBLE_EQ(plan.slices[0].fraction, 1.0);
}

TEST(Actuator, CommandBelowBaselineClamps)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup);
    const auto plan = act.plan(0.25);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 0u);
}

TEST(Actuator, CommandBeyondMaxRunsFlatOut)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup);
    const auto plan = act.plan(50.0);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 3u);
    EXPECT_NEAR(plan.averageSpeedup(), 8.0, 1e-12);
}

TEST(Actuator, RaceToIdleSprintsThenIdles)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::RaceToIdle);
    // Command 2 with s_max = 8: run the fastest setting for 1/4 of the
    // quantum, idle 3/4.
    const auto plan = act.plan(2.0);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 3u);
    EXPECT_NEAR(plan.slices[0].fraction, 0.25, 1e-12);
    EXPECT_NEAR(plan.idle_fraction, 0.75, 1e-12);
    // Idle per busy second: 0.75 / 0.25 = 3.
    EXPECT_NEAR(act.idlePerBusySecond(plan), 3.0, 1e-12);
}

TEST(Actuator, RaceToIdleNeverExceedsQuantum)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::RaceToIdle);
    const auto plan = act.plan(100.0);
    EXPECT_NEAR(plan.slices[0].fraction, 1.0, 1e-12);
    EXPECT_NEAR(plan.idle_fraction, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(act.idlePerBusySecond(plan), 0.0);
}

TEST(Actuator, BeatScheduleLaysSlicesContiguously)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup, 20);
    const auto plan = act.plan(1.5);
    // First half of the quantum at the fast setting, rest at default.
    std::size_t fast_beats = 0;
    for (std::size_t beat = 0; beat < 20; ++beat) {
        const auto combo = act.combinationForBeat(plan, beat);
        if (combo == 1u)
            ++fast_beats;
        if (beat >= 10) {
            EXPECT_EQ(combo, 0u);
        }
    }
    EXPECT_EQ(fast_beats, 10u);
}

TEST(Actuator, AverageQosLossIsWorkWeighted)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup);
    const auto plan = act.plan(1.5);
    // Slices: (s=2, qos=0.01) at 0.5, (s=1, qos=0) at 0.5.
    // Work weights: 1.0 vs 0.5 -> loss = 0.01 * (1.0 / 1.5).
    EXPECT_NEAR(plan.averageQosLoss(), 0.01 * (1.0 / 1.5), 1e-12);
}

TEST(Actuator, Validation)
{
    const auto m = model();
    EXPECT_THROW(Actuator(m, ActuationPolicy::MinimalSpeedup, 0),
                 std::invalid_argument);
    Actuator act(m, ActuationPolicy::MinimalSpeedup);
    ActuationPlan empty;
    EXPECT_THROW(act.combinationForBeat(empty, 0), std::logic_error);
}

/**
 * Property: for any achievable command, the minimal-speedup plan's
 * quantum-average speedup equals the command exactly, and the plan
 * never uses a setting faster than the slowest sufficient one.
 */
class PlanAccuracy : public ::testing::TestWithParam<double>
{
};

TEST_P(PlanAccuracy, AverageEqualsCommand)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::MinimalSpeedup);
    const double cmd = GetParam();
    const auto plan = act.plan(cmd);
    EXPECT_NEAR(plan.averageSpeedup(), cmd, 1e-9);
    double fractions = plan.idle_fraction;
    for (const auto &s : plan.slices)
        fractions += s.fraction;
    EXPECT_NEAR(fractions, 1.0, 1e-9); // Equation 10 at equality.
}

INSTANTIATE_TEST_SUITE_P(Commands, PlanAccuracy,
                         ::testing::Values(1.0, 1.1, 1.5, 1.9, 2.0, 2.7,
                                           3.9, 4.0, 5.5, 7.9, 8.0));

/** Property: race-to-idle also meets the command on average. */
class RaceAccuracy : public ::testing::TestWithParam<double>
{
};

TEST_P(RaceAccuracy, WorkMatchesCommand)
{
    const auto m = model();
    Actuator act(m, ActuationPolicy::RaceToIdle);
    const double cmd = GetParam();
    const auto plan = act.plan(cmd);
    // Work produced = s_max * busy fraction = command.
    EXPECT_NEAR(plan.averageSpeedup(), cmd, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Commands, RaceAccuracy,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0, 6.0, 8.0));

} // namespace
} // namespace powerdial::core
