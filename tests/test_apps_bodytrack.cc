/** @file Tests for the bodytrack benchmark. */
#include <cmath>

#include <gtest/gtest.h>

#include "apps/bodytrack/bodytrack_app.h"
#include "core/calibration.h"

namespace powerdial::apps::bodytrack {
namespace {

TEST(Schedules, BetaIncreasesSigmaDecreases)
{
    std::vector<double> betas, sigmas;
    makeSchedules(5, betas, sigmas);
    ASSERT_EQ(betas.size(), 5u);
    ASSERT_EQ(sigmas.size(), 5u);
    for (std::size_t l = 0; l + 1 < 5; ++l) {
        EXPECT_LT(betas[l], betas[l + 1]);
        EXPECT_GT(sigmas[l], sigmas[l + 1]);
    }
}

TEST(Schedules, SingleLayerIsSharpest)
{
    std::vector<double> betas, sigmas;
    makeSchedules(1, betas, sigmas);
    ASSERT_EQ(betas.size(), 1u);
    EXPECT_NEAR(betas[0], 4.0, 1e-9);
    EXPECT_THROW(makeSchedules(0, betas, sigmas), std::invalid_argument);
}

FilterParams
params(std::size_t particles, std::size_t layers)
{
    FilterParams p;
    p.particles = particles;
    p.layers = layers;
    makeSchedules(layers, p.betas, p.sigmas);
    return p;
}

double
trackingError(std::size_t particles, std::size_t layers,
              std::uint64_t seed)
{
    workload::BodyMotionParams mp;
    mp.frames = 40;
    mp.seed = 0xfeed;
    workload::BodyDimensions dims;
    const auto seq = workload::makeBodySequence(mp, dims);

    AnnealedParticleFilter filter(dims, seed);
    const auto fp = params(particles, layers);
    filter.initialize(seq.front().truth, fp);
    double err = 0.0;
    for (const auto &frame : seq) {
        const auto r = filter.step(frame.observation, fp);
        const auto est = workload::forwardKinematics(r.estimate, dims);
        const auto truth =
            workload::forwardKinematics(frame.truth, dims);
        for (std::size_t p = 0; p < workload::kBodyParts; ++p) {
            const double dx = est.x[p] - truth.x[p];
            const double dy = est.y[p] - truth.y[p];
            err += std::sqrt(dx * dx + dy * dy);
        }
    }
    return err / static_cast<double>(seq.size() * workload::kBodyParts);
}

TEST(Filter, TracksSyntheticWalk)
{
    // A well-provisioned filter must stay within a small multiple of
    // the observation noise.
    EXPECT_LT(trackingError(600, 4, 1), 0.35);
}

TEST(Filter, MoreResourcesTrackBetter)
{
    double rich = 0.0, poor = 0.0;
    for (std::uint64_t seed = 0; seed < 3; ++seed) {
        rich += trackingError(500, 4, seed);
        poor += trackingError(20, 1, seed);
    }
    EXPECT_LT(rich, poor);
}

TEST(Filter, WorkScalesWithParticlesAndLayers)
{
    workload::BodyDimensions dims;
    workload::BodyMotionParams mp;
    mp.frames = 2;
    const auto seq = workload::makeBodySequence(mp, dims);

    AnnealedParticleFilter f1(dims, 1);
    const auto p1 = params(100, 1);
    f1.initialize(seq[0].truth, p1);
    const auto w1 = f1.step(seq[1].observation, p1).work_ops;

    AnnealedParticleFilter f2(dims, 1);
    const auto p2 = params(200, 3);
    f2.initialize(seq[0].truth, p2);
    const auto w2 = f2.step(seq[1].observation, p2).work_ops;

    EXPECT_NEAR(static_cast<double>(w2) / static_cast<double>(w1), 6.0,
                1e-9);
}

TEST(Filter, AdaptsCloudSizeWhenKnobChanges)
{
    workload::BodyDimensions dims;
    workload::BodyMotionParams mp;
    mp.frames = 3;
    const auto seq = workload::makeBodySequence(mp, dims);
    AnnealedParticleFilter filter(dims, 2);
    auto fp = params(100, 2);
    filter.initialize(seq[0].truth, fp);
    filter.step(seq[1].observation, fp);
    EXPECT_EQ(filter.particles().size(), 100u);
    fp = params(40, 2); // Dynamic knob moved mid-run.
    filter.step(seq[2].observation, fp);
    EXPECT_EQ(filter.particles().size(), 40u);
}

TEST(Filter, Validation)
{
    workload::BodyDimensions dims;
    AnnealedParticleFilter filter(dims, 1);
    FilterParams bad = params(10, 2);
    bad.betas.pop_back();
    workload::BodyObservation obs{};
    EXPECT_THROW(filter.step(obs, bad), std::logic_error);
    filter.initialize({}, params(10, 2));
    EXPECT_THROW(filter.step(obs, bad), std::invalid_argument);
    EXPECT_THROW(filter.initialize({}, params(0, 1)),
                 std::invalid_argument);
}

BodytrackConfig
smallConfig()
{
    BodytrackConfig config;
    config.particle_values = {50, 100, 200, 400};
    config.layer_values = {1, 2, 4};
    config.inputs = 2;
    config.frames = 12;
    return config;
}

TEST(BodytrackApp, KnobSpaceAndDefault)
{
    BodytrackApp app(smallConfig());
    EXPECT_EQ(app.knobSpace().combinations(), 12u);
    EXPECT_EQ(app.knobSpace().valuesOf(app.defaultCombination()),
              (std::vector<double>{400, 4}));
}

TEST(BodytrackApp, ConfigureBuildsSchedules)
{
    BodytrackApp app(smallConfig());
    app.configure({100, 2});
    EXPECT_EQ(app.filterParams().particles, 100u);
    EXPECT_EQ(app.filterParams().layers, 2u);
    EXPECT_EQ(app.filterParams().betas.size(), 2u);
    EXPECT_THROW(app.configure({100}), std::invalid_argument);
}

TEST(BodytrackApp, CalibrationSpeedupBounded)
{
    // With the fixed per-frame preprocessing cost, speedup must stay
    // far below the raw knob-work ratio (the paper's ~7x, not ~30x).
    BodytrackApp app(smallConfig());
    const auto result = core::calibrate(app, app.trainingInputs());
    const double raw_ratio = (400.0 * 4.0) / (50.0 * 1.0);
    EXPECT_LT(result.model.maxSpeedup(), raw_ratio / 2.0);
    EXPECT_GT(result.model.maxSpeedup(), 2.0);
}

TEST(BodytrackApp, OutputWeightsProportionalToMagnitude)
{
    BodytrackApp app(smallConfig());
    app.configure({400, 4});
    app.loadInput(0);
    sim::Machine machine;
    for (std::size_t u = 0; u < app.unitCount(); ++u)
        app.processUnit(u, machine);
    const auto out = app.output();
    ASSERT_EQ(out.components.size(), 3u * workload::kBodyParts);
    ASSERT_EQ(out.weights.size(), out.components.size());
    // Bigger components carry bigger weights.
    for (std::size_t i = 0; i < out.components.size(); ++i)
        for (std::size_t j = 0; j < out.components.size(); ++j)
            if (std::abs(out.components[i]) >
                std::abs(out.components[j])) {
                EXPECT_GE(out.weights[i], out.weights[j]);
            }
}

TEST(BodytrackApp, Validation)
{
    BodytrackApp app(smallConfig());
    EXPECT_THROW(app.loadInput(99), std::out_of_range);
}

} // namespace
} // namespace powerdial::apps::bodytrack
