/** @file Unit tests for core::ResponseModel. */
#include <gtest/gtest.h>

#include "core/response_model.h"

namespace powerdial::core {
namespace {

std::vector<OperatingPoint>
samplePoints()
{
    return {
        {0, 1.0, 0.00}, // Baseline.
        {1, 2.0, 0.01},
        {2, 1.5, 0.08}, // Dominated.
        {3, 4.0, 0.05},
        {4, 8.0, 0.20},
    };
}

ResponseModel
sampleModel(double qos_cap = -1.0)
{
    return ResponseModel(samplePoints(), 0, 10.0, 5.0, qos_cap);
}

TEST(ResponseModel, ParetoExcludesDominated)
{
    const auto model = sampleModel();
    EXPECT_EQ(model.pareto().size(), 4u);
    for (const auto &p : model.pareto())
        EXPECT_NE(p.combination, 2u);
}

TEST(ResponseModel, BaselineAccessors)
{
    const auto model = sampleModel();
    EXPECT_EQ(model.baselineCombination(), 0u);
    EXPECT_DOUBLE_EQ(model.baselineSeconds(), 10.0);
    EXPECT_DOUBLE_EQ(model.baselineRate(), 5.0);
    EXPECT_DOUBLE_EQ(model.baselinePoint().speedup, 1.0);
}

TEST(ResponseModel, MaxSpeedupAndFastest)
{
    const auto model = sampleModel();
    EXPECT_DOUBLE_EQ(model.maxSpeedup(), 8.0);
    EXPECT_EQ(model.fastest().combination, 4u);
}

TEST(ResponseModel, AtLeastReturnsSlowestSufficientPoint)
{
    const auto model = sampleModel();
    EXPECT_EQ(model.atLeast(1.0).combination, 0u);
    EXPECT_EQ(model.atLeast(1.2).combination, 1u);
    EXPECT_EQ(model.atLeast(2.0).combination, 1u);
    EXPECT_EQ(model.atLeast(2.5).combination, 3u);
    EXPECT_EQ(model.atLeast(5.0).combination, 4u);
    // Beyond s_max: the fastest point.
    EXPECT_EQ(model.atLeast(100.0).combination, 4u);
}

TEST(ResponseModel, BestWithinQoS)
{
    const auto model = sampleModel();
    EXPECT_EQ(model.bestWithinQoS(0.0).combination, 0u);
    EXPECT_EQ(model.bestWithinQoS(0.01).combination, 1u);
    EXPECT_EQ(model.bestWithinQoS(0.05).combination, 3u);
    EXPECT_EQ(model.bestWithinQoS(1.0).combination, 4u);
}

TEST(ResponseModel, QosCapExcludesExpensivePoints)
{
    // Paper section 2.2: settings above the QoS-loss cap are excluded.
    const auto model = sampleModel(0.05);
    EXPECT_DOUBLE_EQ(model.maxSpeedup(), 4.0);
    for (const auto &p : model.pareto())
        EXPECT_LE(p.qos_loss, 0.05);
}

TEST(ResponseModel, QosCapNeverExcludesBaseline)
{
    const auto model = sampleModel(0.0);
    EXPECT_EQ(model.baselinePoint().combination, 0u);
    EXPECT_DOUBLE_EQ(model.maxSpeedup(), 1.0);
}

TEST(ResponseModel, QosLossInterpolation)
{
    const auto model = sampleModel();
    // Frontier: (1, 0), (2, 0.01), (4, 0.05), (8, 0.2).
    EXPECT_DOUBLE_EQ(model.qosLossAtSpeedup(1.0), 0.0);
    EXPECT_NEAR(model.qosLossAtSpeedup(1.5), 0.005, 1e-12);
    EXPECT_NEAR(model.qosLossAtSpeedup(3.0), 0.03, 1e-12);
    EXPECT_NEAR(model.qosLossAtSpeedup(6.0), 0.125, 1e-12);
    // Clamped at the ends.
    EXPECT_DOUBLE_EQ(model.qosLossAtSpeedup(0.5), 0.0);
    EXPECT_DOUBLE_EQ(model.qosLossAtSpeedup(20.0), 0.2);
}

TEST(ResponseModel, Validation)
{
    EXPECT_THROW(ResponseModel({}, 0, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(ResponseModel(samplePoints(), 99, 1.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(ResponseModel(samplePoints(), 0, 0.0, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(ResponseModel(samplePoints(), 0, 1.0, -1.0),
                 std::invalid_argument);
}

} // namespace
} // namespace powerdial::core
