/** @file Unit tests for sim::FrequencyScale. */
#include <gtest/gtest.h>

#include "sim/frequency.h"

namespace powerdial::sim {
namespace {

TEST(FrequencyScale, XeonHasSevenStates)
{
    const auto scale = FrequencyScale::xeonE5530();
    EXPECT_EQ(scale.states(), 7u);
    EXPECT_DOUBLE_EQ(scale.maxHz(), 2.4e9);
    EXPECT_DOUBLE_EQ(scale.minHz(), 1.6e9);
    EXPECT_EQ(scale.lowestState(), 6u);
}

TEST(FrequencyScale, StatesAreStrictlyDecreasing)
{
    const auto scale = FrequencyScale::xeonE5530();
    for (std::size_t i = 0; i + 1 < scale.states(); ++i)
        EXPECT_GT(scale.frequencyHz(i), scale.frequencyHz(i + 1));
}

TEST(FrequencyScale, MatchesPaperFigure6Axis)
{
    // 2.4, 2.26, 2.13, 2, 1.86, 1.73, 1.6 GHz.
    const auto scale = FrequencyScale::xeonE5530();
    EXPECT_NEAR(scale.frequencyHz(1), 2.26e9, 1e6);
    EXPECT_NEAR(scale.frequencyHz(2), 2.13e9, 1e6);
    EXPECT_NEAR(scale.frequencyHz(3), 2.00e9, 1e6);
    EXPECT_NEAR(scale.frequencyHz(4), 1.86e9, 1e6);
    EXPECT_NEAR(scale.frequencyHz(5), 1.73e9, 1e6);
}

TEST(FrequencyScale, RejectsEmptyList)
{
    EXPECT_THROW(FrequencyScale({}), std::invalid_argument);
}

TEST(FrequencyScale, RejectsNonDecreasingList)
{
    EXPECT_THROW(FrequencyScale({1e9, 2e9}), std::invalid_argument);
    EXPECT_THROW(FrequencyScale({2e9, 2e9}), std::invalid_argument);
}

TEST(FrequencyScale, RejectsNonPositiveFrequency)
{
    EXPECT_THROW(FrequencyScale({1e9, 0.0}), std::invalid_argument);
}

TEST(FrequencyScale, FrequencyHzBoundsChecked)
{
    const auto scale = FrequencyScale::xeonE5530();
    EXPECT_THROW(scale.frequencyHz(7), std::out_of_range);
}

TEST(FrequencyScale, ClosestStateExactMatches)
{
    const auto scale = FrequencyScale::xeonE5530();
    for (std::size_t i = 0; i < scale.states(); ++i)
        EXPECT_EQ(scale.closestState(scale.frequencyHz(i)), i);
}

TEST(FrequencyScale, ClosestStateRoundsToNearest)
{
    const auto scale = FrequencyScale::xeonE5530();
    EXPECT_EQ(scale.closestState(2.39e9), 0u);
    EXPECT_EQ(scale.closestState(1.0e9), scale.lowestState());
    EXPECT_EQ(scale.closestState(3.0e9), 0u);
}

/** Property sweep: closestState returns the true argmin over states. */
class ClosestStateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ClosestStateSweep, IsArgmin)
{
    const auto scale = FrequencyScale::xeonE5530();
    const double hz = GetParam();
    const std::size_t got = scale.closestState(hz);
    for (std::size_t i = 0; i < scale.states(); ++i) {
        EXPECT_LE(std::abs(scale.frequencyHz(got) - hz),
                  std::abs(scale.frequencyHz(i) - hz) + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ClosestStateSweep,
                         ::testing::Values(1.0e9, 1.65e9, 1.795e9, 1.93e9,
                                           2.065e9, 2.195e9, 2.33e9,
                                           2.5e9));

} // namespace
} // namespace powerdial::sim
