/** @file Tests for the PowerDial runtime control system. */
#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/identify.h"
#include "core/runtime.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

using tests::ToyApp;

struct Pipeline
{
    ToyApp app;
    KnobTable table;
    ResponseModel model;
};

Pipeline
makePipeline(const ToyApp::Config &config = {})
{
    Pipeline p{ToyApp(config), {}, {}};
    auto ident = identifyKnobs(p.app);
    EXPECT_TRUE(ident.analysis.accepted);
    p.table = std::move(ident.table);
    p.model = calibrate(p.app, p.app.trainingInputs()).model;
    return p;
}

TEST(Runtime, HoldsTargetOnUnloadedMachine)
{
    auto p = makePipeline();
    Runtime runtime(p.app, p.table, p.model);
    sim::Machine machine;
    const auto run = runtime.run(2, machine);
    // No disturbance: the app should stay at the baseline setting and
    // the observed rate should sit at the target.
    const auto &last = run.beats.back();
    EXPECT_NEAR(last.normalized_perf, 1.0, 0.05);
    EXPECT_NEAR(run.mean_qos_loss_estimate, 0.0, 0.005);
}

TEST(Runtime, RecoversPerformanceUnderPowerCap)
{
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    Runtime runtime(p.app, p.table, p.model);
    sim::Machine machine;
    // Cap at one quarter of the expected run, lift at three quarters
    // (the paper's section 5.4 scenario). The calibrated baseline time
    // already reflects the 600-unit inputs.
    const double expected = p.model.baselineSeconds();
    auto governor =
        sim::DvfsGovernor::powerCap(machine, 0.25 * expected,
                                    0.75 * expected);
    const auto run = runtime.run(2, machine, &governor);

    // While capped (middle of the run), performance must return to
    // within 10% of target after the controller reacts.
    const std::size_t mid = run.beats.size() / 2;
    EXPECT_NEAR(run.beats[mid].normalized_perf, 1.0, 0.1);
    // The knob gain must exceed 1 while the cap is in force.
    EXPECT_GT(run.beats[mid].knob_gain, 1.0);
    // And the machine must really have been capped at that point.
    EXPECT_EQ(run.beats[mid].pstate, machine.scale().lowestState());
    // After the cap lifts, the app must return to the baseline knobs.
    EXPECT_EQ(run.beats.back().combination,
              p.model.baselineCombination());
}

TEST(Runtime, WithoutKnobsPerformanceDegradesUnderCap)
{
    ToyApp::Config config;
    config.units = 400;
    auto p = makePipeline(config);
    RuntimeOptions options;
    options.knobs_enabled = false;
    Runtime runtime(p.app, p.table, p.model, options);
    sim::Machine machine;
    auto governor = sim::DvfsGovernor::powerCap(machine, 0.05, 1e9);
    const auto run = runtime.run(2, machine, &governor);
    // The ~x markers of Figure 7: performance settles at f_low/f_high.
    const auto &last = run.beats.back();
    EXPECT_NEAR(last.normalized_perf, 1.6 / 2.4, 0.05);
}

TEST(Runtime, RaceToIdleInsertsIdleTime)
{
    ToyApp::Config config;
    config.units = 400;
    auto p = makePipeline(config);
    RuntimeOptions options;
    options.policy = ActuationPolicy::RaceToIdle;
    Runtime runtime(p.app, p.table, p.model, options);
    sim::Machine machine;
    auto governor = sim::DvfsGovernor::powerCap(machine, 0.05, 1e9);
    const auto run = runtime.run(2, machine, &governor);
    // Performance still near target under the cap...
    EXPECT_NEAR(run.beats.back().normalized_perf, 1.0, 0.1);
    // ...but the trace must contain idle (low-power) segments.
    bool saw_idle = false;
    for (const auto &seg : machine.powerTrace())
        saw_idle |= seg.watts == machine.powerModel().idleWatts();
    EXPECT_TRUE(saw_idle);
}

TEST(Runtime, HigherTargetForcesQosSacrifice)
{
    auto p = makePipeline();
    RuntimeOptions options;
    options.target_rate = p.model.baselineRate() * 3.0;
    Runtime runtime(p.app, p.table, p.model, options);
    sim::Machine machine;
    const auto run = runtime.run(2, machine);
    EXPECT_GT(run.mean_qos_loss_estimate, 0.0);
    EXPECT_NEAR(run.beats.back().normalized_perf, 1.0, 0.15);
}

TEST(Runtime, BeatTraceIsComplete)
{
    auto p = makePipeline();
    Runtime runtime(p.app, p.table, p.model);
    sim::Machine machine;
    const auto run = runtime.run(0, machine);
    EXPECT_EQ(run.beats.size(), 200u);
    EXPECT_GT(run.seconds, 0.0);
    ASSERT_EQ(run.output.components.size(), 1u);
    // Timestamps must be monotone.
    for (std::size_t i = 1; i < run.beats.size(); ++i)
        EXPECT_GE(run.beats[i].time_s, run.beats[i - 1].time_s);
}

TEST(Runtime, OptionValidation)
{
    auto p = makePipeline();
    RuntimeOptions bad;
    bad.quantum_beats = 0;
    EXPECT_THROW(Runtime(p.app, p.table, p.model, bad),
                 std::invalid_argument);
    bad = RuntimeOptions{};
    bad.window = 0;
    EXPECT_THROW(Runtime(p.app, p.table, p.model, bad),
                 std::invalid_argument);
}

/** Property: the controller holds target across all seven P-states. */
class RuntimeAtFrequency : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RuntimeAtFrequency, HoldsBaselineRate)
{
    // The Figure 6 protocol: pin the machine at a P-state and ask
    // PowerDial to hold the 2.4 GHz baseline rate. The paper verifies
    // delivered performance within 5% of target at every state.
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    Runtime runtime(p.app, p.table, p.model);
    sim::Machine machine;
    machine.setPState(GetParam());
    const auto run = runtime.run(2, machine);
    const std::size_t tail = run.beats.size() * 3 / 4;
    double perf = 0.0;
    for (std::size_t i = tail; i < run.beats.size(); ++i)
        perf += run.beats[i].normalized_perf;
    perf /= static_cast<double>(run.beats.size() - tail);
    EXPECT_NEAR(perf, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(PStates, RuntimeAtFrequency,
                         ::testing::Range<std::size_t>(0, 7));

} // namespace
} // namespace powerdial::core
