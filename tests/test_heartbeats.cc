/** @file Unit tests for the Application Heartbeats framework. */
#include <gtest/gtest.h>

#include "heartbeats/heartbeat.h"
#include "heartbeats/reader.h"

namespace powerdial::hb {
namespace {

TEST(Monitor, FirstBeatHasNoLatency)
{
    Monitor monitor(20, {1.0, 1.0});
    const auto &rec = monitor.beat(5.0);
    EXPECT_EQ(rec.tag, 0u);
    EXPECT_DOUBLE_EQ(rec.latency, 0.0);
    EXPECT_DOUBLE_EQ(rec.instant_rate, 0.0);
}

TEST(Monitor, TagsIncrement)
{
    Monitor monitor(20, {1.0, 1.0});
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(monitor.beat(static_cast<double>(i)).tag,
                  static_cast<std::uint64_t>(i));
    EXPECT_EQ(monitor.count(), 5u);
}

TEST(Monitor, InstantRateIsInverseLatency)
{
    Monitor monitor(20, {1.0, 1.0});
    monitor.beat(0.0);
    const auto &rec = monitor.beat(0.25);
    EXPECT_DOUBLE_EQ(rec.latency, 0.25);
    EXPECT_DOUBLE_EQ(rec.instant_rate, 4.0);
}

TEST(Monitor, WindowRateIsMeanOverWindow)
{
    Monitor monitor(4, {1.0, 1.0});
    // Latencies: 1, 1, 2, 2 -> window rate = 4 / 6.
    double t = 0.0;
    monitor.beat(t);
    for (const double lat : {1.0, 1.0, 2.0, 2.0}) {
        t += lat;
        monitor.beat(t);
    }
    EXPECT_NEAR(monitor.windowRate(), 4.0 / 6.0, 1e-12);
}

TEST(Monitor, WindowSlidesForward)
{
    Monitor monitor(2, {1.0, 1.0});
    monitor.beat(0.0);
    monitor.beat(10.0); // latency 10
    monitor.beat(11.0); // latency 1
    monitor.beat(12.0); // latency 1 -> window {1, 1}
    EXPECT_NEAR(monitor.windowRate(), 1.0, 1e-12);
}

TEST(Monitor, GlobalRateSpansWholeRun)
{
    Monitor monitor(2, {1.0, 1.0});
    monitor.beat(0.0);
    monitor.beat(1.0);
    monitor.beat(4.0);
    // 2 intervals over 4 seconds.
    EXPECT_NEAR(monitor.globalRate(), 0.5, 1e-12);
}

TEST(Monitor, RatesZeroBeforeTwoBeats)
{
    Monitor monitor(4, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(monitor.windowRate(), 0.0);
    EXPECT_DOUBLE_EQ(monitor.globalRate(), 0.0);
    monitor.beat(1.0);
    EXPECT_DOUBLE_EQ(monitor.windowRate(), 0.0);
    EXPECT_DOUBLE_EQ(monitor.globalRate(), 0.0);
}

TEST(Monitor, BackwardsTimeThrows)
{
    Monitor monitor(4, {1.0, 1.0});
    monitor.beat(2.0);
    EXPECT_THROW(monitor.beat(1.0), std::invalid_argument);
}

TEST(Monitor, LatestThrowsWhenEmpty)
{
    Monitor monitor(4, {1.0, 1.0});
    EXPECT_THROW(monitor.latest(), std::logic_error);
}

TEST(Monitor, TargetValidation)
{
    EXPECT_THROW(Monitor(0, {1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Monitor(4, {2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Monitor(4, {-1.0, 1.0}), std::invalid_argument);
}

TEST(Monitor, SetTargetReplacesRange)
{
    Monitor monitor(4, {1.0, 2.0});
    EXPECT_DOUBLE_EQ(monitor.target().midpoint(), 1.5);
    monitor.setTarget({3.0, 5.0});
    EXPECT_DOUBLE_EQ(monitor.target().midpoint(), 4.0);
    EXPECT_THROW(monitor.setTarget({5.0, 3.0}), std::invalid_argument);
}

TEST(Monitor, RecordedRatesMatchQueryAtBeatTime)
{
    Monitor monitor(3, {1.0, 1.0});
    double t = 0.0;
    for (int i = 0; i < 6; ++i) {
        t += 0.5;
        const auto &rec = monitor.beat(t);
        EXPECT_DOUBLE_EQ(rec.window_rate, monitor.windowRate());
        EXPECT_DOUBLE_EQ(rec.global_rate, monitor.globalRate());
    }
}

TEST(Reader, ExposesMonitorState)
{
    Monitor monitor(4, {2.0, 3.0});
    Reader reader(monitor);
    EXPECT_EQ(reader.currentTag(), -1);
    monitor.beat(0.0);
    monitor.beat(0.5);
    EXPECT_EQ(reader.currentTag(), 1);
    EXPECT_DOUBLE_EQ(reader.windowRate(), monitor.windowRate());
    EXPECT_DOUBLE_EQ(reader.globalRate(), monitor.globalRate());
    EXPECT_DOUBLE_EQ(reader.minTarget(), 2.0);
    EXPECT_DOUBLE_EQ(reader.maxTarget(), 3.0);
    EXPECT_DOUBLE_EQ(reader.record(1).latency, 0.5);
}

/** Property: constant-latency streams report rate = 1/latency. */
class ConstantRate : public ::testing::TestWithParam<double>
{
};

TEST_P(ConstantRate, WindowAndGlobalAgree)
{
    const double latency = GetParam();
    Monitor monitor(20, {1.0, 1.0});
    double t = 0.0;
    for (int i = 0; i < 50; ++i) {
        monitor.beat(t);
        t += latency;
    }
    EXPECT_NEAR(monitor.windowRate(), 1.0 / latency, 1e-9);
    EXPECT_NEAR(monitor.globalRate(), 1.0 / latency, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Latencies, ConstantRate,
                         ::testing::Values(0.001, 0.01, 0.1, 0.5, 1.0,
                                           2.0));

} // namespace
} // namespace powerdial::hb
