/** @file Unit tests for the workload generators. */
#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "workload/arrivals.h"
#include "workload/body_motion.h"
#include "workload/corpus.h"
#include "workload/load_trace.h"
#include "workload/rng.h"
#include "workload/traffic_mix.h"
#include "workload/video_source.h"
#include "workload/zipf.h"

namespace powerdial::workload {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    bool differed = false;
    for (int i = 0; i < 10; ++i)
        differed |= a.next() != b.next();
    EXPECT_TRUE(differed);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, GaussianMomentsApproximatelyStandard)
{
    Rng rng(11);
    const int n = 20000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.03);
    EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.below(7), 7u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsUnbiasedAcrossBuckets)
{
    // Regression for the modulo-biased reduction: `next() % n` favours
    // low values for n not a power of two. The rejection reduction
    // must land each bucket of n = 6 within a few percent of uniform.
    Rng rng(2024);
    constexpr std::size_t kBuckets = 6;
    constexpr std::size_t kDraws = 60000;
    std::size_t counts[kBuckets] = {};
    for (std::size_t i = 0; i < kDraws; ++i)
        ++counts[rng.below(kBuckets)];
    const double expected =
        static_cast<double>(kDraws) / kBuckets;
    for (std::size_t b = 0; b < kBuckets; ++b)
        EXPECT_NEAR(static_cast<double>(counts[b]), expected,
                    0.05 * expected)
            << "bucket " << b;
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler zipf(100, 1.0);
    double total = 0.0;
    for (std::size_t k = 0; k < zipf.size(); ++k)
        total += zipf.pmf(k);
    EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, PmfDecreasesWithRank)
{
    ZipfSampler zipf(50, 1.2);
    for (std::size_t k = 0; k + 1 < zipf.size(); ++k)
        EXPECT_GT(zipf.pmf(k), zipf.pmf(k + 1));
}

TEST(Zipf, SampleFrequenciesTrackPmf)
{
    ZipfSampler zipf(20, 1.0);
    Rng rng(5);
    std::vector<int> counts(20, 0);
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    // Head ranks should appear roughly per their pmf.
    for (std::size_t k = 0; k < 3; ++k) {
        const double freq = static_cast<double>(counts[k]) / n;
        EXPECT_NEAR(freq, zipf.pmf(k), 0.02);
    }
}

TEST(Zipf, Validation)
{
    EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
    EXPECT_THROW(ZipfSampler(10, -0.5), std::invalid_argument);
    ZipfSampler z(10, 1.0);
    EXPECT_THROW(z.pmf(10), std::out_of_range);
}

TEST(Zipf, EmpiricalCdfTracksAnalyticCdf)
{
    // Distribution shape against the analytic CDF: the normalised
    // partial sums of 1/(k+1)^s. Checked at every rank, not just the
    // head, so a mis-normalised tail cannot hide.
    const std::size_t n = 30;
    const double s = 1.1;
    ZipfSampler zipf(n, s);
    double h = 0.0;
    std::vector<double> analytic(n, 0.0);
    for (std::size_t k = 0; k < n; ++k)
        h += 1.0 / std::pow(static_cast<double>(k + 1), s);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        analytic[k] = acc / h;
    }

    Rng rng(11);
    const int draws = 200000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < draws; ++i)
        ++counts[zipf.sample(rng)];
    double empirical = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        empirical += static_cast<double>(counts[k]) / draws;
        EXPECT_NEAR(empirical, analytic[k], 0.01) << "rank " << k;
    }
}

TEST(Zipf, ZeroSkewIsUniform)
{
    // s = 0 makes every 1/(k+1)^0 term 1: the uniform distribution.
    ZipfSampler zipf(16, 0.0);
    for (std::size_t k = 0; k < zipf.size(); ++k)
        EXPECT_NEAR(zipf.pmf(k), 1.0 / 16.0, 1e-12) << "rank " << k;

    Rng rng(3);
    std::vector<int> counts(16, 0);
    const int draws = 160000;
    for (int i = 0; i < draws; ++i)
        ++counts[zipf.sample(rng)];
    for (std::size_t k = 0; k < counts.size(); ++k)
        EXPECT_NEAR(static_cast<double>(counts[k]), draws / 16.0,
                    0.05 * draws / 16.0)
            << "rank " << k;
}

TEST(Zipf, SamplingDeterministicAcrossThreadCounts)
{
    // The sampler is shared, read-only state; each stream owns its
    // Rng. Drawing the streams concurrently must reproduce the
    // serial per-stream sequences exactly, at any thread count.
    const ZipfSampler zipf(64, 1.0);
    const std::size_t streams = 8, per_stream = 2000;

    const auto draw = [&](std::size_t stream) {
        Rng rng(1000 + stream);
        std::vector<std::size_t> out(per_stream);
        for (std::size_t i = 0; i < per_stream; ++i)
            out[i] = zipf.sample(rng);
        return out;
    };

    std::vector<std::vector<std::size_t>> serial(streams);
    for (std::size_t s = 0; s < streams; ++s)
        serial[s] = draw(s);

    for (const std::size_t workers : {2u, 4u}) {
        std::vector<std::vector<std::size_t>> parallel(streams);
        std::vector<std::thread> pool;
        for (std::size_t w = 0; w < workers; ++w)
            pool.emplace_back([&, w]() {
                for (std::size_t s = w; s < streams; s += workers)
                    parallel[s] = draw(s);
            });
        for (auto &t : pool)
            t.join();
        EXPECT_EQ(parallel, serial) << workers << " workers";
    }
}

TEST(Corpus, GeneratesRequestedDocuments)
{
    CorpusParams params;
    params.documents = 50;
    params.words_per_doc = 100;
    Corpus corpus(params);
    EXPECT_EQ(corpus.documents().size(), 50u);
    for (const auto &doc : corpus.documents()) {
        EXPECT_GE(doc.words.size(), 75u);
        EXPECT_LE(doc.words.size(), 125u);
    }
}

TEST(Corpus, QueriesExcludeStopWords)
{
    CorpusParams params;
    params.documents = 10;
    Corpus corpus(params);
    const auto queries = corpus.makeQueries(100, 3, 99);
    for (const auto &q : queries) {
        EXPECT_EQ(q.terms.size(), 3u);
        for (const auto w : q.terms)
            EXPECT_FALSE(corpus.isStopWord(w));
    }
}

TEST(Corpus, QueryTermsAreDistinctWithinQuery)
{
    CorpusParams params;
    params.documents = 10;
    Corpus corpus(params);
    for (const auto &q : corpus.makeQueries(50, 3, 7)) {
        std::set<WordId> unique(q.terms.begin(), q.terms.end());
        EXPECT_EQ(unique.size(), q.terms.size());
    }
}

TEST(Corpus, Deterministic)
{
    CorpusParams params;
    params.documents = 5;
    Corpus a(params), b(params);
    for (std::size_t d = 0; d < 5; ++d)
        EXPECT_EQ(a.documents()[d].words, b.documents()[d].words);
}

TEST(Corpus, RejectsTinyVocabulary)
{
    CorpusParams params;
    params.vocabulary = 10;
    params.stop_words = 10;
    EXPECT_THROW(Corpus{params}, std::invalid_argument);
}

TEST(InputSplit, PartitionsEvenly)
{
    const auto split = splitInputs(100, 3);
    EXPECT_EQ(split.training.size(), 50u);
    EXPECT_EQ(split.production.size(), 50u);
    std::set<std::size_t> all(split.training.begin(),
                              split.training.end());
    all.insert(split.production.begin(), split.production.end());
    EXPECT_EQ(all.size(), 100u); // Disjoint and covering.
}

TEST(InputSplit, DeterministicPerSeed)
{
    EXPECT_EQ(splitInputs(20, 1).training, splitInputs(20, 1).training);
    EXPECT_NE(splitInputs(20, 1).training, splitInputs(20, 2).training);
}

TEST(VideoSource, FramesHaveRequestedGeometry)
{
    VideoParams params;
    params.width = 32;
    params.height = 16;
    params.frames = 4;
    const auto clip = VideoSource(params).frames();
    ASSERT_EQ(clip.size(), 4u);
    for (const auto &f : clip) {
        EXPECT_EQ(f.width, 32);
        EXPECT_EQ(f.height, 16);
        EXPECT_EQ(f.pixels.size(), 32u * 16u);
    }
}

TEST(VideoSource, Deterministic)
{
    VideoParams params;
    params.width = 32;
    params.height = 16;
    params.frames = 3;
    const auto a = VideoSource(params).frames();
    const auto b = VideoSource(params).frames();
    for (std::size_t f = 0; f < a.size(); ++f)
        EXPECT_EQ(a[f].pixels, b[f].pixels);
}

TEST(VideoSource, FramesContainMotion)
{
    VideoParams params;
    params.width = 64;
    params.height = 48;
    params.frames = 2;
    const auto clip = VideoSource(params).frames();
    std::size_t changed = 0;
    for (std::size_t i = 0; i < clip[0].pixels.size(); ++i)
        changed += clip[0].pixels[i] != clip[1].pixels[i];
    // Motion + noise: a nontrivial fraction of pixels must change.
    EXPECT_GT(changed, clip[0].pixels.size() / 10);
}

TEST(VideoSource, Validation)
{
    VideoParams params;
    params.width = 0;
    EXPECT_THROW(VideoSource{params}, std::invalid_argument);
}

TEST(BodyMotion, ForwardKinematicsRespectsLimbLengths)
{
    BodyDimensions dims;
    BodyPose pose;
    pose.root_x = 1.0;
    pose.root_y = 2.0;
    const auto obs = forwardKinematics(pose, dims);
    // Torso top directly above the root.
    EXPECT_DOUBLE_EQ(obs.x[0], 1.0);
    EXPECT_DOUBLE_EQ(obs.y[0], 2.0 + dims.torso);
    // Arm endpoint at arm-length from the shoulder.
    const double dx = obs.x[2] - obs.x[0];
    const double dy = obs.y[2] - obs.y[0];
    EXPECT_NEAR(std::sqrt(dx * dx + dy * dy), dims.arm, 1e-9);
    // Leg endpoint at leg-length from the root.
    const double lx = obs.x[4] - pose.root_x;
    const double ly = obs.y[4] - pose.root_y;
    EXPECT_NEAR(std::sqrt(lx * lx + ly * ly), dims.leg, 1e-9);
}

TEST(BodyMotion, SequenceWalksForward)
{
    BodyMotionParams params;
    params.frames = 50;
    const auto seq = makeBodySequence(params);
    ASSERT_EQ(seq.size(), 50u);
    EXPECT_GT(seq.back().truth.root_x, seq.front().truth.root_x);
}

TEST(BodyMotion, ObservationsAreNoisyTruth)
{
    BodyMotionParams params;
    params.frames = 200;
    params.observation_noise = 0.1;
    const auto seq = makeBodySequence(params);
    double err_sum = 0.0;
    std::size_t n = 0;
    BodyDimensions dims;
    for (const auto &frame : seq) {
        const auto clean = forwardKinematics(frame.truth, dims);
        for (std::size_t p = 0; p < kBodyParts; ++p) {
            err_sum += std::abs(frame.observation.x[p] - clean.x[p]);
            ++n;
        }
    }
    const double mean_abs = err_sum / static_cast<double>(n);
    // Mean |N(0, 0.1)| = 0.1 * sqrt(2/pi) ~ 0.08.
    EXPECT_NEAR(mean_abs, 0.08, 0.03);
}

TEST(LoadTrace, BoundedInUnitInterval)
{
    LoadTraceParams params;
    params.steps = 500;
    const auto trace = makeLoadTrace(params);
    ASSERT_EQ(trace.size(), 500u);
    for (const double u : trace) {
        EXPECT_GE(u, 0.0);
        EXPECT_LE(u, 1.0);
    }
}

TEST(LoadTrace, ContainsSpikesAboveBase)
{
    LoadTraceParams params;
    params.steps = 500;
    params.spike_probability = 0.05;
    const auto trace = makeLoadTrace(params);
    const std::size_t spikes = static_cast<std::size_t>(
        std::count(trace.begin(), trace.end(),
                   params.spike_utilization));
    EXPECT_GT(spikes, 0u);
    // Spikes must remain intermittent, not the common case.
    EXPECT_LT(spikes, trace.size() / 2);
}

TEST(LoadTrace, InstancesAtScalesByPeak)
{
    EXPECT_EQ(instancesAt(0.0, 32), 0u);
    EXPECT_EQ(instancesAt(0.5, 32), 16u);
    EXPECT_EQ(instancesAt(1.0, 32), 32u);
}

TEST(LoadTrace, InstancesAtClampsToProvisionedPeak)
{
    // Regression: a utilisation above 1.0 — exactly what flash-crowd
    // superposition produces — used to provision phantom instances
    // beyond the fleet's peak. The answer is the provisioned peak.
    EXPECT_EQ(instancesAt(1.4, 32), 32u);
    EXPECT_EQ(instancesAt(2.0, 8), 8u);
    EXPECT_EQ(instancesAt(100.0, 1), 1u);
    // The lower clamp still holds.
    EXPECT_EQ(instancesAt(-0.3, 32), 0u);
}

TEST(LoadTrace, ExtendingTheHorizonKeepsEarlierSteps)
{
    // Regression for the sequential-stream defect: per-step substreams
    // mean a longer horizon never perturbs steps already generated.
    LoadTraceParams long_params;
    long_params.steps = 300;
    const auto full = makeLoadTrace(long_params);
    for (const std::size_t cut : {1u, 37u, 150u, 299u}) {
        LoadTraceParams params = long_params;
        params.steps = cut;
        const auto shorter = makeLoadTrace(params);
        ASSERT_EQ(shorter.size(), cut);
        for (std::size_t t = 0; t < cut; ++t)
            EXPECT_EQ(shorter[t], full[t])
                << "cut=" << cut << " t=" << t;
    }
}

TEST(LoadTrace, PerStepAccessorMatchesFullGeneration)
{
    // Random access: any window of the trace regenerates independently
    // through loadLevelAt, with no draw-order coupling to neighbours.
    LoadTraceParams params;
    params.steps = 200;
    const auto trace = makeLoadTrace(params);
    for (std::size_t t = 0; t < trace.size(); ++t)
        EXPECT_EQ(loadLevelAt(params, t), trace[t]) << "t=" << t;
}

TEST(LoadTrace, SpikeLengthOnlyAffectsSpikeMembership)
{
    // The historical bug skipped jitter draws during spike steps, so
    // changing spike_length rewrote the whole downstream trace. Now a
    // step outside the spike cover of BOTH lengths must be identical.
    LoadTraceParams short_spikes;
    short_spikes.steps = 400;
    short_spikes.spike_length = 2;
    LoadTraceParams long_spikes = short_spikes;
    long_spikes.spike_length = 10;
    const auto a = makeLoadTrace(short_spikes);
    const auto b = makeLoadTrace(long_spikes);
    std::size_t compared = 0;
    for (std::size_t t = 0; t < a.size(); ++t) {
        const bool spiky_a =
            a[t] == short_spikes.spike_utilization;
        const bool spiky_b = b[t] == long_spikes.spike_utilization;
        if (spiky_a || spiky_b)
            continue;
        EXPECT_EQ(a[t], b[t]) << "t=" << t;
        ++compared;
    }
    EXPECT_GT(compared, a.size() / 2);
}

TEST(LoadTrace, DiurnalSwellModulatesBaseLoad)
{
    LoadTraceParams params;
    params.steps = 96;
    params.base_utilization = 0.5;
    params.spike_probability = 0.0;
    params.jitter = 0.0;
    params.diurnal_amplitude = 0.3;
    params.diurnal_period = 96;
    const auto trace = makeLoadTrace(params);
    EXPECT_NEAR(trace[24], 0.8, 1e-9);  // sin peak.
    EXPECT_NEAR(trace[72], 0.2, 1e-9);  // sin trough.
    EXPECT_NEAR(trace[0], 0.5, 1e-9);   // Phase zero.
}

TEST(PoissonArrivals, Deterministic)
{
    const auto trace = makeLoadTrace({});
    PoissonArrivalParams params;
    const auto a = makePoissonArrivals(trace, params);
    const auto b = makePoissonArrivals(trace, params);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), trace.size());
}

TEST(PoissonArrivals, PrefixTraceYieldsPrefixArrivals)
{
    // Each step draws from its own counter-derived substream, so
    // truncating the trace truncates the arrivals without disturbing
    // the kept prefix.
    const auto trace = makeLoadTrace({});
    const auto full = makePoissonArrivals(trace, {});
    const std::vector<double> half(trace.begin(),
                                   trace.begin() + trace.size() / 2);
    const auto prefix = makePoissonArrivals(half, {});
    ASSERT_EQ(prefix.size(), half.size());
    for (std::size_t t = 0; t < prefix.size(); ++t)
        EXPECT_EQ(prefix[t], full[t]);
}

TEST(PoissonArrivals, ExtendingTheHorizonKeepsEarlierArrivals)
{
    // The converse regression: generating a LONGER trace must not
    // perturb the steps already generated — the event engine relies
    // on extension-safe arrival streams when a serve's horizon grows.
    LoadTraceParams long_params;
    long_params.steps = 300;
    const auto long_trace = makeLoadTrace(long_params);
    const auto full = makePoissonArrivals(long_trace, {});
    for (const std::size_t cut : {1u, 37u, 150u, 299u}) {
        const std::vector<double> shorter(long_trace.begin(),
                                          long_trace.begin() + cut);
        const auto arrivals = makePoissonArrivals(shorter, {});
        ASSERT_EQ(arrivals.size(), cut);
        for (std::size_t t = 0; t < cut; ++t)
            EXPECT_EQ(arrivals[t], full[t]) << "cut=" << cut
                                            << " t=" << t;
    }
}

TEST(PoissonArrivals, WindowedGenerationMatchesFullGeneration)
{
    // Random access: a window generated on its own (first_step = w)
    // reproduces the same window of the full generation, and the
    // per-step accessor agrees with both.
    const auto trace = makeLoadTrace({});
    PoissonArrivalParams params;
    const auto full = makePoissonArrivals(trace, params);
    const std::size_t w = trace.size() / 3;
    const std::vector<double> window(trace.begin() + w, trace.end());
    const auto suffix = makePoissonArrivals(window, params, w);
    ASSERT_EQ(suffix.size(), trace.size() - w);
    for (std::size_t i = 0; i < suffix.size(); ++i)
        EXPECT_EQ(suffix[i], full[w + i]) << "i=" << i;
    for (std::size_t t = 0; t < trace.size(); ++t)
        EXPECT_EQ(poissonArrivalAt(params, t, trace[t]), full[t])
            << "t=" << t;
}

TEST(PoissonArrivals, StepSubstreamsAreDecorrelated)
{
    // Neighbouring steps share a level but must not share a stream:
    // a flat trace's counts should not be constant (they would be if
    // adjacent substreams collapsed onto each other).
    const std::vector<double> flat(64, 0.5);
    PoissonArrivalParams params;
    params.peak_rate = 8.0;
    const auto arrivals = makePoissonArrivals(flat, params);
    const bool all_equal = std::all_of(
        arrivals.begin(), arrivals.end(),
        [&](std::size_t c) { return c == arrivals.front(); });
    EXPECT_FALSE(all_equal);
}

TEST(PoissonArrivals, ZeroLoadOffersNoJobs)
{
    const std::vector<double> idle(50, 0.0);
    for (const std::size_t count : makePoissonArrivals(idle, {}))
        EXPECT_EQ(count, 0u);
}

TEST(PoissonArrivals, MeanTracksOfferedLoad)
{
    // Sample mean over a long flat trace lands near lambda (law of
    // large numbers; the tolerance is ~4 sigma).
    const std::vector<double> flat(4000, 0.5);
    PoissonArrivalParams params;
    params.peak_rate = 8.0; // lambda = 4 per step.
    const auto arrivals = makePoissonArrivals(flat, params);
    double sum = 0.0;
    for (const std::size_t count : arrivals)
        sum += static_cast<double>(count);
    const double mean = sum / static_cast<double>(arrivals.size());
    EXPECT_NEAR(mean, 4.0, 4.0 * std::sqrt(4.0 / 4000.0));
}

TEST(PoissonArrivals, DeviateEdgeCases)
{
    Rng rng(7);
    EXPECT_EQ(poissonDeviate(rng, 0.0), 0u);
    EXPECT_THROW(poissonDeviate(rng, -1.0), std::invalid_argument);
    EXPECT_THROW(makePoissonArrivals({0.5}, {-1.0, 1}),
                 std::invalid_argument);
}

TEST(PoissonArrivals, LargeMeansUseTheNormalApproximation)
{
    // Past ~708 exp(-lambda) underflows and Knuth's method would
    // silently saturate; the generator switches to the rounded
    // N(lambda, lambda) approximation there instead of rejecting
    // (scale-bench traces run thousands of arrivals per step).
    const double lambda = 4000.0;
    Rng rng(7);
    double sum = 0.0;
    const std::size_t draws = 400;
    for (std::size_t i = 0; i < draws; ++i)
        sum += static_cast<double>(poissonDeviate(rng, lambda));
    const double mean = sum / static_cast<double>(draws);
    // 4 sigma of the sample mean: 4 * sqrt(lambda / draws).
    EXPECT_NEAR(mean, lambda,
                4.0 * std::sqrt(lambda / static_cast<double>(draws)));

    // Per-step stability holds across the threshold too.
    PoissonArrivalParams params;
    params.peak_rate = 8000.0;
    const std::vector<double> flat(8, 0.5);
    const auto full = makePoissonArrivals(flat, params);
    const std::vector<double> tail(flat.begin() + 3, flat.end());
    const auto window = makePoissonArrivals(tail, params, 3);
    for (std::size_t i = 0; i < window.size(); ++i)
        EXPECT_EQ(window[i], full[3 + i]) << "step " << 3 + i;
}

// ---------------------------------------------------------------------
// Composed production-shaped traffic.
// ---------------------------------------------------------------------

namespace {

TrafficMixParams
flatMixParams()
{
    TrafficMixParams params;
    params.steps = 50;
    params.trace.base_utilization = 0.5;
    params.trace.spike_probability = 0.0;
    params.trace.jitter = 0.0;
    return params;
}

} // namespace

TEST(TrafficMix, FlashCrowdsSuperimposeWithoutClamping)
{
    TrafficMixParams params = flatMixParams();
    params.flash_crowds = {{10, 5, 0.8}};
    const auto mix =
        makeTrafficMix(params, {{0, 0, 0.0}});
    ASSERT_EQ(mix.levels.size(), params.steps);
    for (std::size_t t = 0; t < params.steps; ++t) {
        const bool in_crowd = t >= 10 && t < 15;
        EXPECT_NEAR(mix.levels[t], in_crowd ? 1.3 : 0.5, 1e-9)
            << "t=" << t;
    }
    // Offered load past 1.0 is the point: more demand than the fleet
    // is provisioned for, undistorted by a clamp.
    EXPECT_GT(*std::max_element(mix.levels.begin(), mix.levels.end()),
              1.0);
}

TEST(TrafficMix, DeterministicAndAccountedFor)
{
    TrafficMixParams params = flatMixParams();
    params.flash_crowds = {{5, 3, 0.6}};
    const std::vector<TenantProfile> profiles = {
        {0, 0, 9.0}, {1, 1, 6.0}, {2, 2, 3.0}};
    const auto a = makeTrafficMix(params, profiles);
    const auto b = makeTrafficMix(params, profiles);
    ASSERT_EQ(a.offers.size(), b.offers.size());
    std::size_t total = 0;
    for (std::size_t t = 0; t < a.offers.size(); ++t) {
        ASSERT_EQ(a.offers[t].size(), b.offers[t].size());
        total += a.offers[t].size();
        for (std::size_t i = 0; i < a.offers[t].size(); ++i) {
            EXPECT_EQ(a.offers[t][i].tenant, b.offers[t][i].tenant);
            EXPECT_EQ(a.offers[t][i].job_class,
                      b.offers[t][i].job_class);
            EXPECT_EQ(a.offers[t][i].deadline_s,
                      b.offers[t][i].deadline_s);
        }
    }
    EXPECT_EQ(a.total_offered, total);
    EXPECT_GT(total, 0u);
}

TEST(TrafficMix, OffersCarryTheirProfilesMetadata)
{
    TrafficMixParams params = flatMixParams();
    const std::vector<TenantProfile> profiles = {
        {7, 0, 12.0}, {3, 1, 6.0}};
    const auto mix = makeTrafficMix(params, profiles);
    for (const auto &step : mix.offers)
        for (const OfferedJob &job : step) {
            const bool first =
                job.tenant == 7 && job.job_class == 0 &&
                job.deadline_s == 12.0;
            const bool second =
                job.tenant == 3 && job.job_class == 1 &&
                job.deadline_s == 6.0;
            EXPECT_TRUE(first || second);
        }
}

TEST(TrafficMix, ZipfSkewsPopularityTowardRankZero)
{
    TrafficMixParams params = flatMixParams();
    params.steps = 200;
    params.peak_rate = 20.0;
    params.zipf_skew = 1.2;
    const std::vector<TenantProfile> profiles = {
        {0, 0, 0.0}, {1, 0, 0.0}, {2, 0, 0.0}, {3, 0, 0.0}};
    const auto mix = makeTrafficMix(params, profiles);
    std::size_t counts[4] = {};
    for (const auto &step : mix.offers)
        for (const OfferedJob &job : step)
            ++counts[job.tenant];
    EXPECT_GT(counts[0], counts[3] * 2);
}

TEST(TrafficMix, LevelAccessorMatchesFullComposition)
{
    TrafficMixParams params = flatMixParams();
    params.trace.jitter = 0.05;
    params.trace.diurnal_amplitude = 0.2;
    params.flash_crowds = {{3, 4, 0.5}, {20, 2, 1.0}};
    const auto mix = makeTrafficMix(params, {{0, 0, 0.0}});
    for (std::size_t t = 0; t < params.steps; ++t)
        EXPECT_EQ(trafficLevelAt(params, t), mix.levels[t])
            << "t=" << t;
}

} // namespace
} // namespace powerdial::workload
