/** @file Unit tests for the influence-tracing substrate. */
#include <gtest/gtest.h>

#include "influence/analysis.h"
#include "influence/trace_run.h"
#include "influence/value.h"

namespace powerdial::influence {
namespace {

TEST(Value, ConstantsAreUntainted)
{
    Value<double> c(3.0);
    EXPECT_FALSE(c.influenced());
    EXPECT_EQ(c.mask(), 0u);
}

TEST(Value, ParamBitTagsValue)
{
    Value<int> p(7, paramBit(3));
    EXPECT_TRUE(p.influenced());
    EXPECT_EQ(p.mask(), 1u << 3);
}

TEST(Value, ArithmeticUnionsMasks)
{
    Value<double> a(2.0, paramBit(0));
    Value<double> b(3.0, paramBit(1));
    const auto sum = a + b;
    EXPECT_DOUBLE_EQ(sum.raw(), 5.0);
    EXPECT_EQ(sum.mask(), paramBit(0) | paramBit(1));
    EXPECT_EQ((a * b).mask(), paramBit(0) | paramBit(1));
    EXPECT_EQ((a - b).mask(), paramBit(0) | paramBit(1));
    EXPECT_EQ((a / b).mask(), paramBit(0) | paramBit(1));
}

TEST(Value, ConstantDoesNotAddInfluence)
{
    Value<double> p(2.0, paramBit(0));
    const auto scaled = p * Value<double>(10.0);
    EXPECT_DOUBLE_EQ(scaled.raw(), 20.0);
    EXPECT_EQ(scaled.mask(), paramBit(0));
}

TEST(Value, CompoundAssignmentPropagates)
{
    Value<double> acc(0.0);
    acc += Value<double>(1.0, paramBit(2));
    acc *= Value<double>(2.0, paramBit(4));
    EXPECT_DOUBLE_EQ(acc.raw(), 2.0);
    EXPECT_EQ(acc.mask(), paramBit(2) | paramBit(4));
}

TEST(Value, ComparisonsUntracked)
{
    // The paper's tracer does not track control-flow influence.
    Value<int> a(1, paramBit(0));
    Value<int> b(2);
    EXPECT_TRUE(a < b);
    EXPECT_FALSE(a == b);
    EXPECT_TRUE(a <= b);
    EXPECT_FALSE(a >= b);
}

TEST(TraceRun, InitStoreRecordsMaskAndValue)
{
    TraceRun run;
    run.store("knob_var", Value<double>(42.0, paramBit(0)), "f.cc:1");
    const auto &var = run.variable("knob_var");
    EXPECT_EQ(var.mask, paramBit(0));
    ASSERT_EQ(var.value.size(), 1u);
    EXPECT_DOUBLE_EQ(var.value[0], 42.0);
    EXPECT_FALSE(var.read_in_loop);
    EXPECT_TRUE(var.access_sites.count("f.cc:1"));
}

TEST(TraceRun, LoopPhaseTracksReadsAndWrites)
{
    TraceRun run;
    run.store("v", Value<double>(1.0, paramBit(0)));
    run.firstHeartbeat();
    EXPECT_TRUE(run.inMainLoop());
    run.read("v");
    run.store("v", Value<double>(2.0, paramBit(0)));
    const auto &var = run.variable("v");
    EXPECT_TRUE(var.read_in_loop);
    EXPECT_TRUE(var.written_in_loop);
    // The loop-phase store must not overwrite the init value.
    EXPECT_DOUBLE_EQ(var.value[0], 1.0);
}

TEST(TraceRun, UnknownVariableThrows)
{
    TraceRun run;
    EXPECT_THROW(run.variable("nope"), std::out_of_range);
}

/** Build a well-formed pair of traces with one knob parameter. */
std::vector<TraceRun>
goodTraces()
{
    std::vector<TraceRun> runs;
    for (const double setting : {10.0, 20.0}) {
        TraceRun run;
        run.store("cv", Value<double>(setting, paramBit(0)));
        run.store("untainted", Value<double>(5.0));
        run.firstHeartbeat();
        run.read("cv");
        run.read("untainted");
        runs.push_back(std::move(run));
    }
    return runs;
}

TEST(Analysis, AcceptsWellFormedTraces)
{
    const auto result =
        identifyControlVariables(goodTraces(), paramBit(0));
    EXPECT_TRUE(result.accepted);
    ASSERT_EQ(result.control_variables.size(), 1u);
    EXPECT_EQ(result.control_variables[0].name, "cv");
    ASSERT_EQ(result.control_variables[0].values_per_combination.size(),
              2u);
    EXPECT_DOUBLE_EQ(
        result.control_variables[0].values_per_combination[0][0], 10.0);
    EXPECT_DOUBLE_EQ(
        result.control_variables[0].values_per_combination[1][0], 20.0);
}

TEST(Analysis, UntaintedVariablesExcluded)
{
    const auto result =
        identifyControlVariables(goodTraces(), paramBit(0));
    EXPECT_EQ(result.indexOf("untainted"), -1);
    EXPECT_EQ(result.indexOf("cv"), 0);
}

TEST(Analysis, RelevanceFilterDropsUnreadVariables)
{
    std::vector<TraceRun> runs;
    for (const double setting : {1.0, 2.0}) {
        TraceRun run;
        run.store("cv", Value<double>(setting, paramBit(0)));
        run.store("unused", Value<double>(setting * 2.0, paramBit(0)));
        run.firstHeartbeat();
        run.read("cv"); // "unused" never read in the loop.
        runs.push_back(std::move(run));
    }
    const auto result = identifyControlVariables(runs, paramBit(0));
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.control_variables.size(), 1u);
    EXPECT_EQ(result.indexOf("unused"), -1);
}

TEST(Analysis, PureCheckRejectsForeignInfluence)
{
    std::vector<TraceRun> runs;
    for (const double setting : {1.0, 2.0}) {
        TraceRun run;
        // Influenced by parameter bit 1, which the user did not specify.
        run.store("cv", Value<double>(setting,
                                      paramBit(0) | paramBit(1)));
        run.firstHeartbeat();
        run.read("cv");
        runs.push_back(std::move(run));
    }
    const auto result = identifyControlVariables(runs, paramBit(0));
    EXPECT_FALSE(result.accepted);
    ASSERT_FALSE(result.failures.empty());
    EXPECT_EQ(result.failures[0].check, "pure");
}

TEST(Analysis, ConstantCheckRejectsLoopWrites)
{
    std::vector<TraceRun> runs;
    for (const double setting : {1.0, 2.0}) {
        TraceRun run;
        run.store("cv", Value<double>(setting, paramBit(0)));
        run.firstHeartbeat();
        run.read("cv");
        run.store("cv", Value<double>(setting + 1.0, paramBit(0)));
        runs.push_back(std::move(run));
    }
    const auto result = identifyControlVariables(runs, paramBit(0));
    EXPECT_FALSE(result.accepted);
    bool saw_constant = false;
    for (const auto &f : result.failures)
        saw_constant |= f.check == "constant";
    EXPECT_TRUE(saw_constant);
}

TEST(Analysis, ConsistencyCheckRejectsDivergentSets)
{
    std::vector<TraceRun> runs;
    {
        TraceRun run;
        run.store("cv", Value<double>(1.0, paramBit(0)));
        run.firstHeartbeat();
        run.read("cv");
        runs.push_back(std::move(run));
    }
    {
        TraceRun run; // Second combination produces an extra variable.
        run.store("cv", Value<double>(2.0, paramBit(0)));
        run.store("extra", Value<double>(9.0, paramBit(0)));
        run.firstHeartbeat();
        run.read("cv");
        run.read("extra");
        runs.push_back(std::move(run));
    }
    const auto result = identifyControlVariables(runs, paramBit(0));
    EXPECT_FALSE(result.accepted);
    bool saw_consistent = false;
    for (const auto &f : result.failures)
        saw_consistent |= f.check == "consistent";
    EXPECT_TRUE(saw_consistent);
}

TEST(Analysis, VectorControlVariables)
{
    std::vector<TraceRun> runs;
    for (const double layers : {2.0, 3.0}) {
        TraceRun run;
        std::vector<double> schedule;
        for (int i = 0; i < static_cast<int>(layers); ++i)
            schedule.push_back(0.5 * (i + 1));
        run.storeVector("schedule", schedule, paramBit(0));
        run.firstHeartbeat();
        run.read("schedule");
        runs.push_back(std::move(run));
    }
    const auto result = identifyControlVariables(runs, paramBit(0));
    ASSERT_TRUE(result.accepted);
    ASSERT_EQ(result.control_variables.size(), 1u);
    EXPECT_EQ(
        result.control_variables[0].values_per_combination[0].size(), 2u);
    EXPECT_EQ(
        result.control_variables[0].values_per_combination[1].size(), 3u);
}

TEST(Analysis, EmptyTracesThrow)
{
    EXPECT_THROW(identifyControlVariables({}, paramBit(0)),
                 std::invalid_argument);
}

TEST(Report, ListsVariablesParamsAndSites)
{
    auto runs = goodTraces();
    const auto result = identifyControlVariables(runs, paramBit(0));
    const auto report = renderReport(result, {"-sm"});
    EXPECT_NE(report.find("ACCEPTED"), std::string::npos);
    EXPECT_NE(report.find("cv"), std::string::npos);
    EXPECT_NE(report.find("-sm"), std::string::npos);
}

TEST(Report, ShowsFailures)
{
    std::vector<TraceRun> runs;
    TraceRun run;
    run.store("cv", Value<double>(1.0, paramBit(0) | paramBit(5)));
    run.firstHeartbeat();
    run.read("cv");
    runs.push_back(std::move(run));
    const auto result = identifyControlVariables(runs, paramBit(0));
    const auto report = renderReport(result, {"-sm"});
    EXPECT_NE(report.find("REJECTED"), std::string::npos);
    EXPECT_NE(report.find("pure"), std::string::npos);
}

} // namespace
} // namespace powerdial::influence
