/** @file Unit tests for the QoS metrics (distortion, PSNR, retrieval). */
#include <cmath>

#include <gtest/gtest.h>

#include "qos/distortion.h"
#include "qos/psnr.h"
#include "qos/retrieval.h"

namespace powerdial::qos {
namespace {

TEST(Distortion, ZeroForIdenticalOutputs)
{
    EXPECT_DOUBLE_EQ(distortion({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(Distortion, Equation1HandComputed)
{
    // qos = (1/2) * (|10-9|/10 + |20-22|/20) = (0.1 + 0.1) / 2 = 0.1.
    EXPECT_NEAR(distortion({10.0, 20.0}, {9.0, 22.0}), 0.1, 1e-12);
}

TEST(Distortion, WeightsScaleComponents)
{
    OutputAbstraction base{{10.0, 20.0}, {2.0, 0.0}};
    OutputAbstraction test{{9.0, 22.0}, {}};
    // (2*0.1 + 0*0.1) / 2 = 0.1.
    EXPECT_NEAR(distortion(base, test), 0.1, 1e-12);
}

TEST(Distortion, SymmetricErrorsDoNotCancel)
{
    // Absolute values: +10% and -10% errors accumulate.
    EXPECT_NEAR(distortion({10.0, 10.0}, {11.0, 9.0}), 0.1, 1e-12);
}

TEST(Distortion, ZeroBaselineFallsBackToAbsolute)
{
    EXPECT_NEAR(distortion({0.0}, {0.5}), 0.5, 1e-12);
}

TEST(Distortion, Validation)
{
    EXPECT_THROW(distortion(std::vector<double>{},
                            std::vector<double>{}),
                 std::invalid_argument);
    EXPECT_THROW(distortion({1.0}, {1.0, 2.0}), std::invalid_argument);
    OutputAbstraction base{{1.0, 2.0}, {1.0}}; // Bad weight arity.
    OutputAbstraction test{{1.0, 2.0}, {}};
    EXPECT_THROW(distortion(base, test), std::invalid_argument);
}

/** Property: distortion is non-negative and zero iff identical. */
class DistortionScale : public ::testing::TestWithParam<double>
{
};

TEST_P(DistortionScale, RelativeErrorMatchesScale)
{
    const double eps = GetParam();
    const std::vector<double> base{5.0, 50.0, 500.0};
    std::vector<double> test;
    for (const double b : base)
        test.push_back(b * (1.0 + eps));
    EXPECT_NEAR(distortion(base, test), std::abs(eps), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, DistortionScale,
                         ::testing::Values(-0.5, -0.1, -0.01, 0.0, 0.01,
                                           0.1, 0.5, 1.0));

TEST(Psnr, IdenticalPlanesHitCap)
{
    std::vector<std::uint8_t> plane(64, 100);
    EXPECT_DOUBLE_EQ(psnr(plane, plane), 99.0);
    EXPECT_DOUBLE_EQ(psnr(plane, plane, 50.0), 50.0);
}

TEST(Psnr, KnownMse)
{
    // Every sample off by 16: MSE = 256, PSNR = 10*log10(255^2/256).
    std::vector<std::uint8_t> a(100, 100), b(100, 116);
    EXPECT_NEAR(meanSquaredError(a, b), 256.0, 1e-12);
    EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 256.0),
                1e-9);
}

TEST(Psnr, MoreNoiseLowerPsnr)
{
    std::vector<std::uint8_t> ref(100, 100);
    std::vector<std::uint8_t> small(100, 102), big(100, 110);
    EXPECT_GT(psnr(ref, small), psnr(ref, big));
}

TEST(Psnr, Validation)
{
    std::vector<std::uint8_t> a(4, 0), b(5, 0);
    EXPECT_THROW(meanSquaredError(a, b), std::invalid_argument);
    EXPECT_THROW(meanSquaredError({}, {}), std::invalid_argument);
}

TEST(Retrieval, PerfectRetrieval)
{
    const std::vector<DocId> docs{1, 2, 3};
    const auto s = score(docs, docs);
    EXPECT_DOUBLE_EQ(s.precision, 1.0);
    EXPECT_DOUBLE_EQ(s.recall, 1.0);
    EXPECT_DOUBLE_EQ(s.f_measure, 1.0);
}

TEST(Retrieval, HandComputedPrecisionRecall)
{
    // Returned {1,2,9,10}; relevant {1,2,3,4}: P = 0.5, R = 0.5.
    const auto s = score({1, 2, 9, 10}, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(s.precision, 0.5);
    EXPECT_DOUBLE_EQ(s.recall, 0.5);
    EXPECT_DOUBLE_EQ(s.f_measure, 0.5);
}

TEST(Retrieval, FMeasureIsHarmonicMean)
{
    EXPECT_NEAR(fMeasure(0.5, 1.0), 2.0 * 0.5 / 1.5, 1e-12);
    EXPECT_DOUBLE_EQ(fMeasure(0.0, 0.0), 0.0);
}

TEST(Retrieval, CutoffLimitsEvaluation)
{
    // 20 relevant docs; return the first 5 only. At P@10 the recall
    // denominator is min(10, 20) = 10.
    std::vector<DocId> relevant;
    for (DocId d = 0; d < 20; ++d)
        relevant.push_back(d);
    const std::vector<DocId> returned{0, 1, 2, 3, 4};
    const auto s10 = score(returned, relevant, 10);
    EXPECT_DOUBLE_EQ(s10.precision, 1.0);
    EXPECT_DOUBLE_EQ(s10.recall, 0.5);
}

TEST(Retrieval, TruncationLosesRecallNotPrecision)
{
    // The paper's observation: max-results "simply drops lower-priority
    // search results" — precision of the top-k is unaffected.
    std::vector<DocId> relevant;
    for (DocId d = 0; d < 100; ++d)
        relevant.push_back(d);
    std::vector<DocId> full, truncated;
    for (DocId d = 0; d < 100; ++d)
        full.push_back(d);
    for (DocId d = 0; d < 5; ++d)
        truncated.push_back(d);
    const auto s_full = score(full, relevant, 100);
    const auto s_trunc = score(truncated, relevant, 100);
    EXPECT_DOUBLE_EQ(s_full.precision, s_trunc.precision);
    EXPECT_GT(s_full.recall, s_trunc.recall);
}

TEST(Retrieval, EmptyCases)
{
    EXPECT_DOUBLE_EQ(score({}, {1, 2}).f_measure, 0.0);
    EXPECT_DOUBLE_EQ(score({1, 2}, {}).f_measure, 0.0);
}

} // namespace
} // namespace powerdial::qos
