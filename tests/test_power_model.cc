/** @file Unit and property tests for sim::PowerModel. */
#include <gtest/gtest.h>

#include "sim/power_model.h"

namespace powerdial::sim {
namespace {

TEST(PowerModel, IdleFloorIndependentOfFrequency)
{
    PowerModel pm;
    for (const double f : {1.6e9, 2.0e9, 2.4e9})
        EXPECT_DOUBLE_EQ(pm.watts(f, 0.0), pm.idleWatts());
}

TEST(PowerModel, PeakAtMaxFrequencyFullLoad)
{
    PowerModel pm;
    EXPECT_NEAR(pm.watts(2.4e9, 1.0), pm.peakWatts(), 1e-9);
}

TEST(PowerModel, DefaultsMatchPaperPlatform)
{
    // Paper section 5.1: idle ~90 W, full load 220 W.
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.idleWatts(), 90.0);
    EXPECT_DOUBLE_EQ(pm.peakWatts(), 220.0);
}

TEST(PowerModel, UtilizationIsClamped)
{
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.watts(2.4e9, -0.5), pm.idleWatts());
    EXPECT_NEAR(pm.watts(2.4e9, 2.0), pm.peakWatts(), 1e-9);
}

TEST(PowerModel, VoltageRampIsClampedAtEnds)
{
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.voltage(1.0e9), pm.params().v_min);
    EXPECT_DOUBLE_EQ(pm.voltage(3.0e9), pm.params().v_max);
}

TEST(PowerModel, VoltageIsLinearInsideRamp)
{
    PowerModel pm;
    const double mid = 0.5 * (1.6e9 + 2.4e9);
    EXPECT_NEAR(pm.voltage(mid),
                0.5 * (pm.params().v_min + pm.params().v_max), 1e-12);
}

TEST(PowerModel, RejectsBadParameters)
{
    PowerModelParams bad;
    bad.peak_watts = bad.idle_watts; // peak must exceed idle
    EXPECT_THROW(PowerModel{bad}, std::invalid_argument);

    PowerModelParams bad2;
    bad2.f_min_hz = 2.4e9;
    bad2.f_max_hz = 1.6e9;
    EXPECT_THROW(PowerModel{bad2}, std::invalid_argument);

    PowerModelParams bad3;
    bad3.v_min = 0.0;
    EXPECT_THROW(PowerModel{bad3}, std::invalid_argument);
}

/** Property: power is monotone in utilisation at every frequency. */
class PowerMonotoneUtil : public ::testing::TestWithParam<double>
{
};

TEST_P(PowerMonotoneUtil, MonotoneInUtilization)
{
    PowerModel pm;
    const double f = GetParam();
    double prev = -1.0;
    for (double u = 0.0; u <= 1.0; u += 0.05) {
        const double w = pm.watts(f, u);
        EXPECT_GE(w, prev);
        prev = w;
    }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, PowerMonotoneUtil,
                         ::testing::Values(1.6e9, 1.73e9, 1.86e9, 2.0e9,
                                           2.13e9, 2.26e9, 2.4e9));

/** Property: power is monotone in frequency at every utilisation. */
class PowerMonotoneFreq : public ::testing::TestWithParam<double>
{
};

TEST_P(PowerMonotoneFreq, MonotoneInFrequency)
{
    PowerModel pm;
    const double u = GetParam();
    double prev = -1.0;
    for (double f = 1.6e9; f <= 2.4e9; f += 0.05e9) {
        const double w = pm.watts(f, u);
        EXPECT_GE(w, prev - 1e-12);
        prev = w;
    }
}

INSTANTIATE_TEST_SUITE_P(Utilizations, PowerMonotoneFreq,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75,
                                           1.0));

TEST(PowerModel, DvfsSavesPowerAtFullLoad)
{
    // The premise of the power-cap experiments: dropping 2.4 -> 1.6 GHz
    // at full load must reduce full-system power noticeably (paper
    // Figure 6 shows 16-21% reductions).
    PowerModel pm;
    const double hi = pm.watts(2.4e9, 1.0);
    const double lo = pm.watts(1.6e9, 1.0);
    const double reduction = (hi - lo) / hi;
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.40);
}

} // namespace
} // namespace powerdial::sim
