/**
 * @file
 * Tests for the heterogeneity subsystem: machine catalogs, mixed-fleet
 * clusters, class-aware placement/arbitration/admission, and the
 * bit-identity guarantee for homogeneous catalogs.
 */
#include <gtest/gtest.h>

#include <numeric>

#include "fleet/admission.h"
#include "fleet/scheduler.h"
#include "fleet/server.h"
#include "fleet_scenarios.h"
#include "sim/cluster.h"
#include "sim/machine_catalog.h"

namespace powerdial::fleet {
namespace {

using tests::FleetScenario;
using tests::expectReportsIdentical;
using tests::makeFleetScenario;
using tests::makePipeline;

// ---------------------------------------------------------------------
// Catalog and machine units.
// ---------------------------------------------------------------------

TEST(MachineCatalog, Validation)
{
    EXPECT_THROW(
        sim::MachineCatalog(std::vector<sim::MachineClass>{}),
        std::invalid_argument);

    sim::Machine::Config config;
    EXPECT_THROW(
        sim::MachineCatalog({{"a", config}, {"a", config}}),
        std::invalid_argument);

    sim::Machine::Config zero_speed = config;
    zero_speed.speed_factor = 0.0;
    EXPECT_THROW(sim::MachineCatalog({{"a", zero_speed}}),
                 std::invalid_argument);

    const auto catalog = sim::MachineCatalog::bigLittle();
    EXPECT_EQ(catalog.indexOf("big"), 0u);
    EXPECT_EQ(catalog.indexOf("little"), 1u);
    EXPECT_THROW(catalog.indexOf("absent"), std::invalid_argument);
}

TEST(MachineCatalog, BigLittleShape)
{
    const auto catalog = sim::MachineCatalog::bigLittle();
    ASSERT_EQ(catalog.size(), 2u);
    const auto &big = catalog.at(0);
    const auto &little = catalog.at(1);
    EXPECT_EQ(big.name, "big");
    EXPECT_EQ(little.name, "little");
    EXPECT_DOUBLE_EQ(big.config.speed_factor, 1.0);
    EXPECT_DOUBLE_EQ(little.config.speed_factor, 0.6);
    EXPECT_LT(little.config.cores, big.config.cores);

    // The reference speed is the big class's top effective rate: the
    // little class is slower in clock and in per-cycle throughput.
    const sim::Machine big_machine(big.config);
    const sim::Machine little_machine(little.config);
    EXPECT_DOUBLE_EQ(catalog.referenceEffectiveHz(),
                     big_machine.effectiveHz());
    EXPECT_LT(little_machine.effectiveHz(), big_machine.effectiveHz());
}

TEST(Machine, SpeedFactorStretchesVirtualTime)
{
    sim::Machine::Config fast_config;
    sim::Machine::Config slow_config = fast_config;
    slow_config.speed_factor = 0.5;

    sim::Machine fast(fast_config);
    sim::Machine slow(slow_config);
    const double cycles = 4.8e9;
    // Half the per-cycle throughput means exactly twice the virtual
    // seconds for the same work (an IEEE-exact ratio).
    EXPECT_DOUBLE_EQ(slow.execute(cycles), 2.0 * fast.execute(cycles));

    sim::Machine::Config bad = fast_config;
    bad.speed_factor = 0.0;
    EXPECT_THROW(sim::Machine{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------
// Heterogeneous cluster provisioning.
// ---------------------------------------------------------------------

TEST(HeteroCluster, ProvisionsClassMixInClassOrder)
{
    const auto catalog = sim::MachineCatalog::bigLittle();
    sim::Cluster cluster(catalog, {1, 2});
    ASSERT_EQ(cluster.size(), 3u);
    EXPECT_EQ(cluster.classOf(0), 0u);
    EXPECT_EQ(cluster.classOf(1), 1u);
    EXPECT_EQ(cluster.classOf(2), 1u);
    EXPECT_EQ(cluster.coresOf(0), catalog.at(0).config.cores);
    EXPECT_EQ(cluster.coresOf(1), catalog.at(1).config.cores);
    EXPECT_TRUE(cluster.heterogeneous());
    EXPECT_EQ(cluster.totalCores(),
              catalog.at(0).config.cores +
                  2 * catalog.at(1).config.cores);
    EXPECT_DOUBLE_EQ(cluster.referenceEffectiveHz(),
                     catalog.referenceEffectiveHz());

    // A one-class mix is not heterogeneous, even through the catalog.
    sim::Cluster littles_only(catalog, {0, 2});
    EXPECT_EQ(littles_only.size(), 2u);
    EXPECT_FALSE(littles_only.heterogeneous());

    EXPECT_THROW(sim::Cluster(catalog, {1}), std::invalid_argument);
    EXPECT_THROW(sim::Cluster(catalog, {0, 0}), std::invalid_argument);
}

TEST(HeteroCluster, PerMachineLoadUsesClassCores)
{
    const auto catalog = sim::MachineCatalog::bigLittle();
    sim::Cluster cluster(catalog, {1, 1});
    const std::size_t big_cores = catalog.at(0).config.cores;

    // Big machine at its core count: every instance gets a full core.
    const auto big_load = cluster.loadOf(0, big_cores);
    EXPECT_DOUBLE_EQ(big_load.per_instance_share, 1.0);
    // The little machine has fewer cores, so the same instance count
    // oversubscribes it.
    const auto little_load = cluster.loadOf(1, big_cores);
    EXPECT_LT(little_load.per_instance_share, 1.0);
    EXPECT_GT(little_load.required_speedup, 1.0);
}

TEST(HeteroCluster, TwoArgLoadMatchesOneArgOnHomogeneous)
{
    sim::Cluster cluster(3, sim::Machine::Config{});
    for (std::size_t n = 0; n <= 12; ++n) {
        const auto a = cluster.loadOf(n);
        for (std::size_t m = 0; m < cluster.size(); ++m) {
            const auto b = cluster.loadOf(m, n);
            EXPECT_EQ(a.instances, b.instances);
            EXPECT_EQ(a.utilization, b.utilization);
            EXPECT_EQ(a.per_instance_share, b.per_instance_share);
            EXPECT_EQ(a.required_speedup, b.required_speedup);
        }
    }
}

// ---------------------------------------------------------------------
// Power arbitration on mixed fleets.
// ---------------------------------------------------------------------

TEST(HeteroArbiter, BudgetsSumToCapWithPerClassFloors)
{
    const auto catalog = sim::MachineCatalog::bigLittle();
    sim::Cluster cluster(catalog, {1, 2});
    cluster.place(0);
    cluster.place(0);
    cluster.place(1);

    double floor_sum = 0.0;
    for (std::size_t i = 0; i < cluster.size(); ++i)
        floor_sum += cluster.machine(i).powerModel().idleWatts();

    ArbiterOptions options;
    options.policy = ArbiterPolicy::UtilizationProportional;
    options.cluster_cap_watts = floor_sum + 90.0;
    PowerArbiter arbiter(options);
    const auto decision = arbiter.arbitrate(cluster, {});

    ASSERT_EQ(decision.budget_watts.size(), cluster.size());
    const double sum =
        std::accumulate(decision.budget_watts.begin(),
                        decision.budget_watts.end(), 0.0);
    EXPECT_NEAR(sum, options.cluster_cap_watts,
                1e-9 * options.cluster_cap_watts);
    // Every machine keeps at least its own class's idle floor; the
    // idle little machine gets no share of the dynamic headroom.
    for (std::size_t i = 0; i < cluster.size(); ++i)
        EXPECT_GE(decision.budget_watts[i],
                  cluster.machine(i).powerModel().idleWatts() - 1e-9);
    EXPECT_NEAR(decision.budget_watts[2],
                cluster.machine(2).powerModel().idleWatts(), 1e-9);
    EXPECT_GT(decision.budget_watts[0], decision.budget_watts[2]);
}

TEST(HeteroArbiter, QosFeedbackConservesTheCap)
{
    const auto catalog = sim::MachineCatalog::bigLittle();
    sim::Cluster cluster(catalog, {2, 2});
    for (std::size_t i = 0; i < cluster.size(); ++i)
        cluster.place(i);

    ArbiterOptions options;
    options.policy = ArbiterPolicy::QosFeedback;
    options.cluster_cap_watts = 500.0;
    PowerArbiter arbiter(options);
    const auto decision =
        arbiter.arbitrate(cluster, {0.02, 0.0, 0.3, 0.1});
    const double sum =
        std::accumulate(decision.budget_watts.begin(),
                        decision.budget_watts.end(), 0.0);
    EXPECT_NEAR(sum, options.cluster_cap_watts, 1e-9 * sum);
    for (const double b : decision.budget_watts)
        EXPECT_GT(b, 0.0);
}

// ---------------------------------------------------------------------
// Affinity-aware placement.
// ---------------------------------------------------------------------

TEST(AffinityPlacement, EqualsLeastLoadedOnHomogeneousFleet)
{
    // Same admit/release sequence against two identical homogeneous
    // clusters: the affinity policy's pick sequence must be exactly
    // least-loaded's (equal costs everywhere, tie-break by occupancy
    // then index).
    sim::Cluster cluster_ll(4, sim::Machine::Config{});
    sim::Cluster cluster_aa(4, sim::Machine::Config{});
    Scheduler least_loaded(cluster_ll, makeLeastLoadedPlacement());
    Scheduler affinity(cluster_aa, makeAffinityAwarePlacement());
    EXPECT_EQ(affinity.policy().name(), "affinity-aware");

    for (int round = 0; round < 12; ++round) {
        const std::size_t a = least_loaded.admit();
        const std::size_t b = affinity.admit();
        EXPECT_EQ(a, b) << "admit round " << round;
        if (round % 3 == 2) {
            least_loaded.release(a);
            affinity.release(b);
        }
    }
}

TEST(AffinityPlacement, PrefersTheBigClassOnAnIdleMixedFleet)
{
    // Little machines first in the catalog, so index order (the
    // class-blind least-loaded pick on an idle fleet) and class
    // preference disagree.
    const auto big_little = sim::MachineCatalog::bigLittle();
    const sim::MachineCatalog catalog(
        {{"little", big_little.at(1).config},
         {"big", big_little.at(0).config}});
    sim::Cluster cluster_ll(catalog, {2, 1});
    sim::Cluster cluster_aa(catalog, {2, 1});

    Scheduler least_loaded(cluster_ll, makeLeastLoadedPlacement());
    Scheduler affinity(cluster_aa, makeAffinityAwarePlacement());
    EXPECT_EQ(least_loaded.admit(), 0u); // class-blind: lowest index.
    EXPECT_EQ(affinity.admit(), 2u);     // class-aware: the big box.
}

TEST(AffinityPlacement, OverflowFollowsTheSameCost)
{
    // With the big machine at the queue-depth bound, pickAmong must
    // keep pricing the little candidates by class tables (both little
    // machines idle: lowest index wins).
    const auto big_little = sim::MachineCatalog::bigLittle();
    const sim::MachineCatalog catalog(
        {{"little", big_little.at(1).config},
         {"big", big_little.at(0).config}});
    sim::Cluster cluster(catalog, {2, 1});
    SchedulerOptions options;
    options.placement = makeAffinityAwarePlacement();
    options.queue_depth = 2;
    Scheduler scheduler(cluster, options);

    auto first = scheduler.tryAdmit();
    auto second = scheduler.tryAdmit();
    ASSERT_TRUE(first && second);
    EXPECT_EQ(*first, 2u);
    EXPECT_EQ(*second, 2u);
    auto overflow = scheduler.tryAdmit();
    ASSERT_TRUE(overflow.has_value());
    EXPECT_EQ(*overflow, 0u);
}

// ---------------------------------------------------------------------
// Class-aware admission pricing.
// ---------------------------------------------------------------------

TEST(HeteroAdmission, PredictionIsSlowerOnTheLittleClass)
{
    // A weak knob (max speedup 1.5x) cannot absorb the little class's
    // effective-speed deficit, so the class tables must show through
    // the prediction. (With a strong enough knob the controller wins
    // the deficit back and both classes price at the baseline — the
    // catch-up credit is deliberate.)
    powerdial::tests::ToyApp::Config weak;
    weak.k_values = {1.0, 1.5};
    auto p = makePipeline(weak);
    const auto catalog = sim::MachineCatalog::bigLittle();
    sim::Cluster cluster(catalog, {1, 1});
    SchedulerOptions options;
    options.placement = makeLeastLoadedPlacement();
    options.admission = makePredictiveAdmission();
    options.model = &p.model;
    Scheduler scheduler(cluster, options);

    // Least-loaded fills index order: job 1 lands on the big machine,
    // job 2 on the little one. Same model, same occupancy — the only
    // difference is the host class's tables.
    const OfferedJob job{0, 0, 0.0};
    const auto on_big = scheduler.tryAdmit(job);
    const auto on_little = scheduler.tryAdmit(job);
    ASSERT_TRUE(on_big && on_little);
    ASSERT_EQ(on_big->machine, 0u);
    ASSERT_EQ(on_little->machine, 1u);
    EXPECT_GT(on_big->predicted_s, 0.0);
    EXPECT_GT(on_little->predicted_s, on_big->predicted_s);
}

// ---------------------------------------------------------------------
// Bit-identity: homogeneous fleets through the catalog seam.
// ---------------------------------------------------------------------

FleetReport
serveScenario(const tests::Pipeline &p, FleetScenario scenario,
              EngineMode engine, bool through_catalog,
              std::size_t threads = 1)
{
    ServerOptions options = scenario.options;
    options.engine = engine;
    options.event.epoch_compat = engine == EngineMode::Event;
    options.threads = threads;
    if (through_catalog) {
        options.catalog =
            sim::MachineCatalog::homogeneous(options.machine);
        options.class_mix = {options.machines};
    }
    Server server(p.app, p.table, p.model, options);
    return server.serve(scenario.arrivals);
}

TEST(HomogeneousCatalog, BitIdenticalAcrossSeededSweep)
{
    // The catalog seam must be invisible for one-class fleets: every
    // report field bit-identical to the legacy configuration, under
    // both engines and at more than one thread count.
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    const auto inputs = p.app.productionInputs();
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        SCOPED_TRACE(::testing::Message()
                     << "reproduce with makeFleetScenario(seed="
                     << seed << ")");
        const FleetScenario scenario =
            makeFleetScenario(seed, baseline_s, inputs);
        expectReportsIdentical(
            serveScenario(p, scenario, EngineMode::Epoch, false),
            serveScenario(p, scenario, EngineMode::Epoch, true));
        expectReportsIdentical(
            serveScenario(p, scenario, EngineMode::Event, false),
            serveScenario(p, scenario, EngineMode::Event, true));
        expectReportsIdentical(
            serveScenario(p, scenario, EngineMode::Epoch, true),
            serveScenario(p, scenario, EngineMode::Epoch, true, 4));
        if (::testing::Test::HasFailure())
            break; // One seed's full diff is enough output.
    }
}

TEST(HomogeneousCatalog, AffinityPlacementKeepsLegacyReports)
{
    // On a homogeneous fleet the affinity policy must not merely pick
    // the same machines — the whole report must be bit-identical to
    // least-loaded's.
    auto p = makePipeline();
    const FleetScenario scenario = makeFleetScenario(
        7, p.model.baselineSeconds(), p.app.productionInputs());

    ServerOptions least_loaded = scenario.options;
    least_loaded.placement = makeLeastLoadedPlacement();
    ServerOptions affinity = scenario.options;
    affinity.placement = makeAffinityAwarePlacement();

    Server a(p.app, p.table, p.model, least_loaded);
    Server b(p.app, p.table, p.model, affinity);
    expectReportsIdentical(a.serve(scenario.arrivals),
                           b.serve(scenario.arrivals));
}

// ---------------------------------------------------------------------
// Shed accounting on heterogeneous fleets (per-machine vs per-class).
// ---------------------------------------------------------------------

TEST(HeteroFleet, ShedAccountingIsConsistentAcrossEngines)
{
    auto p = makePipeline();
    ServerOptions options;
    options.catalog = sim::MachineCatalog::bigLittle();
    options.class_mix = {1, 2};
    options.queue_depth = 2;
    options.placement = makeAffinityAwarePlacement();
    options.tenants = p.app.productionInputs();
    // Offered load far past the 3 * queue_depth active bound.
    const std::vector<std::size_t> arrivals = {9, 9, 9, 6, 0, 0};

    for (const EngineMode engine :
         {EngineMode::Epoch, EngineMode::Event}) {
        SCOPED_TRACE(engine == EngineMode::Epoch ? "epoch" : "event");
        ServerOptions run = options;
        run.engine = engine;
        Server server(p.app, p.table, p.model, run);
        const FleetReport report = server.serve(arrivals);

        ASSERT_GT(report.total_shed, 0u);
        ASSERT_EQ(report.machines.size(), 3u);

        // Per-machine sheds account for every shed exactly once, and
        // the per-machine report rows carry the same attribution.
        const std::size_t by_machine = std::accumulate(
            report.shed_by_machine.begin(),
            report.shed_by_machine.end(), std::size_t{0});
        EXPECT_EQ(by_machine, report.total_shed);
        std::size_t row_shed = 0, row_jobs = 0;
        for (std::size_t i = 0; i < report.machines.size(); ++i) {
            EXPECT_EQ(report.machines[i].machine, i);
            EXPECT_EQ(report.machines[i].shed,
                      report.shed_by_machine[i]);
            row_shed += report.machines[i].shed;
            row_jobs += report.machines[i].jobs;
        }
        EXPECT_EQ(row_shed, report.total_shed);
        EXPECT_EQ(row_jobs, report.total_jobs);
        EXPECT_EQ(report.machines[0].machine_class, 0u);
        EXPECT_EQ(report.machines[1].machine_class, 1u);
        EXPECT_EQ(report.machines[2].machine_class, 1u);

        // Per-class sheds partition the same total.
        const std::size_t by_class = std::accumulate(
            report.shed_by_class.begin(), report.shed_by_class.end(),
            std::size_t{0});
        EXPECT_EQ(by_class, report.total_shed);
        std::size_t class_rows = 0;
        for (const ClassStats &row : report.classes)
            class_rows += row.shed;
        EXPECT_EQ(class_rows, report.total_shed);
    }
}

} // namespace
} // namespace powerdial::fleet
