/** @file Tests for the swaptions benchmark. */
#include <gtest/gtest.h>

#include "apps/swaptions/swaptions_app.h"
#include "core/calibration.h"

namespace powerdial::apps::swaptions {
namespace {

Swaption
sampleSwaption()
{
    Swaption s;
    s.forward_rate = 0.05;
    s.strike = 0.045;
    s.volatility = 0.2;
    s.maturity = 2.0;
    s.tenor = 5.0;
    s.discount_rate = 0.03;
    s.notional = 100.0;
    return s;
}

TEST(Pricer, ConvergesTowardBlackPrice)
{
    const auto s = sampleSwaption();
    const double black = blackPrice(s);
    const double mc = price(s, 200000, 42).price;
    EXPECT_NEAR(mc, black, 0.02 * black);
}

TEST(Pricer, ErrorShrinksWithPaths)
{
    // The paper's premise: accuracy approaches an asymptote as
    // simulations increase. Mean |error| over several seeds must
    // shrink when paths grow 16x (expect ~4x by CLT).
    const auto s = sampleSwaption();
    const double black = blackPrice(s);
    double err_small = 0.0, err_large = 0.0;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
        err_small += std::abs(price(s, 500, seed).price - black);
        err_large += std::abs(price(s, 8000, seed).price - black);
    }
    EXPECT_LT(err_large, err_small / 2.0);
}

TEST(Pricer, DeterministicPerSeed)
{
    const auto s = sampleSwaption();
    EXPECT_DOUBLE_EQ(price(s, 1000, 7).price, price(s, 1000, 7).price);
    EXPECT_NE(price(s, 1000, 7).price, price(s, 1000, 8).price);
}

TEST(Pricer, WorkLinearInPaths)
{
    const auto s = sampleSwaption();
    const auto a = price(s, 1000, 1);
    const auto b = price(s, 2000, 1);
    EXPECT_NEAR(static_cast<double>(b.work_ops) /
                    static_cast<double>(a.work_ops),
                2.0, 1e-9);
}

TEST(Pricer, StdErrorPositiveAndShrinking)
{
    const auto s = sampleSwaption();
    const auto small = price(s, 500, 3);
    const auto large = price(s, 50000, 3);
    EXPECT_GT(small.std_error, 0.0);
    EXPECT_LT(large.std_error, small.std_error);
}

TEST(Pricer, Validation)
{
    EXPECT_THROW(price(sampleSwaption(), 0, 1), std::invalid_argument);
    auto bad = sampleSwaption();
    bad.volatility = 0.0;
    EXPECT_THROW(price(bad, 100, 1), std::invalid_argument);
}

SwaptionsConfig
smallConfig()
{
    SwaptionsConfig config;
    config.sim_values = {250, 500, 1000, 2000, 4000};
    config.inputs = 4;
    config.swaptions_per_input = 6;
    return config;
}

TEST(SwaptionsApp, KnobSpaceMatchesConfig)
{
    SwaptionsApp app(smallConfig());
    EXPECT_EQ(app.knobSpace().combinations(), 5u);
    EXPECT_EQ(app.knobSpace().parameter(0).name, "-sm");
    EXPECT_EQ(app.defaultCombination(), 4u);
}

TEST(SwaptionsApp, ConfigureSetsControlVariable)
{
    SwaptionsApp app(smallConfig());
    app.configure({1000});
    EXPECT_EQ(app.numTrials(), 1000u);
    EXPECT_THROW(app.configure({1.0, 2.0}), std::invalid_argument);
}

TEST(SwaptionsApp, SpeedupTracksSimulationRatio)
{
    SwaptionsApp app(smallConfig());
    const auto result =
        core::calibrate(app, app.trainingInputs());
    // Work is linear in -sm: speedup of the smallest setting is the
    // ratio of the defaults (4000 / 250 = 16).
    EXPECT_NEAR(result.model.allPoints()[0].speedup, 16.0, 0.01);
}

TEST(SwaptionsApp, QosLossDecreasesWithSimulations)
{
    SwaptionsApp app(smallConfig());
    const auto result = core::calibrate(app, app.trainingInputs());
    const auto &points = result.model.allPoints();
    // Baseline has zero loss; the smallest setting the largest.
    EXPECT_DOUBLE_EQ(points.back().qos_loss, 0.0);
    EXPECT_GT(points.front().qos_loss, points[2].qos_loss);
}

TEST(SwaptionsApp, TradeOffShapeMatchesPaper)
{
    // Figure 5a: large speedups at small QoS loss. With the scaled
    // default range the frontier must reach >= 20x under 10% loss.
    SwaptionsConfig config;
    config.inputs = 2;
    config.swaptions_per_input = 6;
    SwaptionsApp app(config);
    const auto result = core::calibrate(app, app.trainingInputs());
    EXPECT_GE(result.model.maxSpeedup(), 20.0);
    EXPECT_LE(result.model.fastest().qos_loss, 0.10);
}

TEST(SwaptionsApp, InputSplitDisjoint)
{
    SwaptionsApp app(smallConfig());
    const auto train = app.trainingInputs();
    const auto prod = app.productionInputs();
    EXPECT_EQ(train.size() + prod.size(), app.inputCount());
    for (const auto t : train)
        for (const auto p : prod)
            EXPECT_NE(t, p);
}

TEST(SwaptionsApp, OutputIsPriceVector)
{
    SwaptionsApp app(smallConfig());
    app.configure({500});
    app.loadInput(0);
    sim::Machine machine;
    for (std::size_t u = 0; u < app.unitCount(); ++u)
        app.processUnit(u, machine);
    const auto out = app.output();
    EXPECT_EQ(out.components.size(), 6u);
    for (const double price : out.components)
        EXPECT_GT(price, 0.0);
}

TEST(SwaptionsApp, BadInputIndexThrows)
{
    SwaptionsApp app(smallConfig());
    EXPECT_THROW(app.loadInput(99), std::out_of_range);
}

} // namespace
} // namespace powerdial::apps::swaptions
