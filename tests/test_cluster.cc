/** @file Unit tests for sim::Cluster. */
#include <gtest/gtest.h>

#include "sim/cluster.h"

namespace powerdial::sim {
namespace {

Machine::Config
config8()
{
    return Machine::Config{};
}

TEST(Cluster, PaperBaselineProvisioning)
{
    // Paper section 5.5: four 8-core machines -> peak 32 instances.
    Cluster cluster(4, config8());
    EXPECT_EQ(cluster.size(), 4u);
    EXPECT_EQ(cluster.totalCores(), 32u);
    EXPECT_EQ(cluster.peakInstances(), 32u);
}

TEST(Cluster, BalanceSpreadsEvenly)
{
    Cluster cluster(4, config8());
    const auto p = cluster.balance(32);
    for (const auto count : p)
        EXPECT_EQ(count, 8u);
}

TEST(Cluster, BalanceDistributesRemainder)
{
    Cluster cluster(4, config8());
    const auto p = cluster.balance(10);
    EXPECT_EQ(p[0], 3u);
    EXPECT_EQ(p[1], 3u);
    EXPECT_EQ(p[2], 2u);
    EXPECT_EQ(p[3], 2u);
    std::size_t total = 0;
    for (const auto c : p)
        total += c;
    EXPECT_EQ(total, 10u);
}

TEST(Cluster, LoadOfUndersubscribed)
{
    Cluster cluster(1, config8());
    const auto load = cluster.loadOf(4);
    EXPECT_DOUBLE_EQ(load.utilization, 0.5);
    EXPECT_DOUBLE_EQ(load.per_instance_share, 1.0);
    EXPECT_DOUBLE_EQ(load.required_speedup, 1.0);
}

TEST(Cluster, LoadOfOversubscribed)
{
    // 32 instances on one 8-core machine: the consolidated system at
    // peak load needs a 4x knob speedup (paper: 3/4 machine reduction).
    Cluster cluster(1, config8());
    const auto load = cluster.loadOf(32);
    EXPECT_DOUBLE_EQ(load.utilization, 1.0);
    EXPECT_DOUBLE_EQ(load.per_instance_share, 0.25);
    EXPECT_DOUBLE_EQ(load.required_speedup, 4.0);
}

TEST(Cluster, LoadOfEmpty)
{
    Cluster cluster(1, config8());
    const auto load = cluster.loadOf(0);
    EXPECT_DOUBLE_EQ(load.utilization, 0.0);
    EXPECT_DOUBLE_EQ(load.required_speedup, 1.0);
}

TEST(Cluster, IdleMachinesDrawIdlePower)
{
    Cluster cluster(4, config8());
    const double watts = cluster.steadyStateWatts(0u);
    const double idle =
        cluster.machine(0).powerModel().idleWatts();
    EXPECT_NEAR(watts, 4.0 * idle, 1e-9);
}

TEST(Cluster, FullLoadDrawsPeakPower)
{
    Cluster cluster(4, config8());
    const double watts = cluster.steadyStateWatts(32u);
    const double peak =
        cluster.machine(0).powerModel().peakWatts();
    EXPECT_NEAR(watts, 4.0 * peak, 1e-9);
}

TEST(Cluster, PowerMonotoneInLoad)
{
    Cluster cluster(4, config8());
    double prev = -1.0;
    for (std::size_t load = 0; load <= 32; ++load) {
        const double watts = cluster.steadyStateWatts(load);
        EXPECT_GE(watts, prev - 1e-12);
        prev = watts;
    }
}

TEST(Cluster, ConsolidatedClusterUsesLessPowerAtEqualLoad)
{
    // The headline of Figure 8: fewer machines, same offered load,
    // less total power.
    Cluster original(4, config8());
    Cluster consolidated(1, config8());
    for (std::size_t load : {4u, 8u, 16u, 32u}) {
        EXPECT_LT(consolidated.steadyStateWatts(std::min<std::size_t>(
                      load, consolidated.peakInstances() * 4)),
                  original.steadyStateWatts(load));
    }
}

TEST(Cluster, MaxRequiredSpeedup)
{
    Cluster cluster(1, config8());
    EXPECT_DOUBLE_EQ(cluster.maxRequiredSpeedup(cluster.balance(32)),
                     4.0);
    EXPECT_DOUBLE_EQ(cluster.maxRequiredSpeedup(cluster.balance(8)),
                     1.0);
}

TEST(Cluster, LowerPStateReducesLoadedPower)
{
    Cluster cluster(2, config8());
    const auto placement = cluster.balance(16);
    EXPECT_LT(cluster.steadyStateWatts(placement, 6),
              cluster.steadyStateWatts(placement, 0));
}

TEST(Cluster, Validation)
{
    EXPECT_THROW(Cluster(0, config8()), std::invalid_argument);
    Cluster cluster(2, config8());
    EXPECT_THROW(cluster.steadyStateWatts({1u, 2u, 3u}),
                 std::invalid_argument);
}

TEST(Cluster, BalanceEqualsSequentialLeastLoadedPlacement)
{
    // cluster.h claims least-loaded placement is "equivalent to an
    // even split". Pin that: placing instances one at a time on the
    // currently least-loaded machine (lowest index on ties) must land
    // on exactly balance()'s distribution — including non-divisible
    // counts — for every load up to 2x peak.
    for (const std::size_t machines : {1u, 3u, 4u, 5u}) {
        Cluster cluster(machines, config8());
        for (std::size_t n = 0; n <= 2 * cluster.peakInstances();
             ++n) {
            std::vector<std::size_t> sequential(machines, 0);
            for (std::size_t k = 0; k < n; ++k) {
                std::size_t least = 0;
                for (std::size_t i = 1; i < machines; ++i)
                    if (sequential[i] < sequential[least])
                        least = i;
                ++sequential[least];
            }
            EXPECT_EQ(cluster.balance(n), sequential)
                << machines << " machines, " << n << " instances";
        }
    }
}

TEST(Cluster, DynamicPlacementTracksOccupancy)
{
    Cluster cluster(3, config8());
    EXPECT_EQ(cluster.totalActive(), 0u);
    cluster.place(1);
    cluster.place(1);
    cluster.place(2);
    EXPECT_EQ(cluster.activeOn(0), 0u);
    EXPECT_EQ(cluster.activeOn(1), 2u);
    EXPECT_EQ(cluster.activeOn(2), 1u);
    EXPECT_EQ(cluster.totalActive(), 3u);
    cluster.release(1);
    EXPECT_EQ(cluster.activeOn(1), 1u);
    cluster.clearPlacement();
    EXPECT_EQ(cluster.totalActive(), 0u);
    EXPECT_THROW(cluster.release(0), std::logic_error);
    EXPECT_THROW(cluster.place(9), std::out_of_range);
}

TEST(Cluster, DynamicWattsMatchesAnalyticAtUniformState)
{
    // With every machine at the same P-state, the dynamic view must
    // agree with the analytic steady-state model for the same
    // placement.
    Cluster cluster(4, config8());
    const auto placement = cluster.balance(10);
    for (std::size_t i = 0; i < cluster.size(); ++i)
        for (std::size_t k = 0; k < placement[i]; ++k)
            cluster.place(i);
    EXPECT_NEAR(cluster.dynamicWatts(),
                cluster.steadyStateWatts(placement), 1e-9);
}

TEST(Cluster, DynamicWattsSeesPerMachineCaps)
{
    // Unlike steadyStateWatts (one common P-state), the dynamic view
    // accounts each machine at its own, possibly capped, frequency.
    Cluster cluster(2, config8());
    cluster.place(0);
    cluster.place(1);
    const double uncapped = cluster.dynamicWatts();
    cluster.machine(1).setPStateCap(
        cluster.machine(1).scale().lowestState());
    EXPECT_LT(cluster.dynamicWatts(), uncapped);
}

} // namespace
} // namespace powerdial::sim
