/** @file Tests for the deterministic clone fan-out engine. */
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/fanout.h"
#include "core/identify.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

using tests::ToyApp;

// ---------------------------------------------------------------------
// Dispatch and merge order.
// ---------------------------------------------------------------------

TEST(FanoutEngine, SerialModeRunsAscendingOnWorkerZero)
{
    FanoutEngine engine(1);
    EXPECT_TRUE(engine.serial());
    EXPECT_EQ(engine.workers(), 1u);
    std::vector<std::size_t> order;
    engine.run(5, [&](std::size_t task, std::size_t worker) {
        EXPECT_EQ(worker, 0u);
        order.push_back(task);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(FanoutEngine, MapMergesInTaskOrderRegardlessOfThreads)
{
    // Whatever order the workers claim tasks in, each result lands in
    // its task's slot — the fixed-order merge of the convention.
    for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
        FanoutEngine engine(threads);
        const auto results = engine.map(
            32, [](std::size_t task, std::size_t /*worker*/) {
                return 10 * task + 1;
            });
        ASSERT_EQ(results.size(), 32u) << "threads=" << threads;
        for (std::size_t i = 0; i < results.size(); ++i)
            EXPECT_EQ(results[i], 10 * i + 1) << "threads=" << threads;
    }
}

TEST(FanoutEngine, PooledOutputMatchesSerialOutput)
{
    const auto job = [](std::size_t task, std::size_t /*worker*/) {
        double acc = 0.0;
        for (std::size_t i = 0; i <= task; ++i)
            acc += static_cast<double>(i * task) / 3.0;
        return acc;
    };
    FanoutEngine serial(1);
    FanoutEngine pooled(4);
    EXPECT_EQ(serial.map(20, job), pooled.map(20, job));
}

TEST(FanoutEngine, ThreadsCappedByMaxTasks)
{
    // No point in more workers (each typically owning a full app
    // clone) than there are tasks to claim.
    FanoutEngine engine(8, 3);
    EXPECT_FALSE(engine.serial());
    EXPECT_EQ(engine.workers(), 3u);

    FanoutEngine one(8, 1);
    EXPECT_TRUE(one.serial());
    EXPECT_EQ(one.workers(), 1u);
}

TEST(FanoutEngine, MoreWorkersThanTasksInOneJobStillCompletes)
{
    // A pooled engine dispatching fewer tasks than workers must not
    // hang or drop tasks (calibration's baseline pass is smaller than
    // its sweep, on the same engine).
    FanoutEngine engine(4);
    std::atomic<std::size_t> ran{0};
    engine.run(2, [&](std::size_t, std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 2u);
    // tasks <= 1 short-circuits to the caller's thread.
    engine.run(1, [&](std::size_t task, std::size_t worker) {
        EXPECT_EQ(task, 0u);
        EXPECT_EQ(worker, 0u);
        ++ran;
    });
    EXPECT_EQ(ran.load(), 3u);
    engine.run(0, [&](std::size_t, std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 3u);
}

TEST(FanoutEngine, ZeroThreadsResolvesToHardwareConcurrency)
{
    FanoutEngine engine(0);
    EXPECT_GE(engine.workers(), 1u);
}

// ---------------------------------------------------------------------
// Exception propagation.
// ---------------------------------------------------------------------

TEST(FanoutEngine, ExceptionPropagatesSeriallyAndPooled)
{
    for (const std::size_t threads : {1u, 4u}) {
        FanoutEngine engine(threads);
        EXPECT_THROW(
            engine.run(8,
                       [](std::size_t task, std::size_t) {
                           if (task == 5)
                               throw std::runtime_error("task 5");
                       }),
            std::runtime_error)
            << "threads=" << threads;
        // The engine stays usable for the next job.
        std::atomic<std::size_t> ran{0};
        engine.run(4, [&](std::size_t, std::size_t) { ++ran; });
        EXPECT_EQ(ran.load(), 4u) << "threads=" << threads;
    }
}

// ---------------------------------------------------------------------
// Clone preamble helpers.
// ---------------------------------------------------------------------

TEST(FanoutEngine, CloneBoundRebindsTablesOntoPrivateClones)
{
    ToyApp app;
    auto ident = identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted);

    auto bound = FanoutEngine::cloneBound(app, ident.table, 3);
    ASSERT_EQ(bound.size(), 3u);
    ASSERT_EQ(bound.apps.size(), 3u);
    ASSERT_EQ(bound.tables.size(), 3u);

    // Applying through table i moves clone i's control variable and
    // nothing else.
    const double original_k = app.k();
    bound.tables[1].apply(3);
    const auto *moved = dynamic_cast<ToyApp *>(bound.apps[1].get());
    const auto *still = dynamic_cast<ToyApp *>(bound.apps[0].get());
    ASSERT_NE(moved, nullptr);
    ASSERT_NE(still, nullptr);
    EXPECT_EQ(moved->k(), app.knobSpace().valuesOf(3)[0]);
    EXPECT_EQ(still->k(), original_k);
    EXPECT_EQ(app.k(), original_k);
}

TEST(FanoutEngine, WorkerClonesMatchesWorkerCount)
{
    ToyApp app;
    FanoutEngine pooled(3);
    EXPECT_EQ(pooled.workerClones(app).size(), 3u);
    FanoutEngine serial(1);
    EXPECT_EQ(serial.workerClones(app).size(), 1u);
}

} // namespace
} // namespace powerdial::core
