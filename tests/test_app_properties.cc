/**
 * @file
 * Cross-application property suites: the structural invariants the
 * PowerDial approach relies on, checked per knob dimension.
 *
 *  - Work monotonicity: raising any single effort knob never reduces
 *    the virtual execution time (more effort = more cycles).
 *  - Determinism: a fixed (input, combination) pair always produces
 *    the identical output abstraction and time.
 *  - Baseline optimality: the default combination has QoS loss 0 by
 *    construction and maximal execution time among its column/row.
 */
#include <gtest/gtest.h>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/spmv/spmv_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"

namespace powerdial {
namespace {

apps::swaptions::SwaptionsConfig
swaptionsConfig()
{
    apps::swaptions::SwaptionsConfig config;
    config.sim_values = {200, 400, 800, 1600};
    config.inputs = 2;
    config.swaptions_per_input = 4;
    return config;
}

apps::videnc::VidencConfig
videncConfig()
{
    apps::videnc::VidencConfig config;
    config.subme_values = {1, 4, 7};
    config.merange_values = {1, 4, 16};
    config.ref_values = {1, 3};
    config.inputs = 2;
    config.video.width = 48;
    config.video.height = 32;
    config.video.frames = 4;
    return config;
}

apps::bodytrack::BodytrackConfig
bodytrackConfig()
{
    apps::bodytrack::BodytrackConfig config;
    config.particle_values = {50, 100, 200};
    config.layer_values = {1, 3, 5};
    config.inputs = 2;
    config.frames = 8;
    return config;
}

apps::searchx::SearchxConfig
searchxConfig()
{
    apps::searchx::SearchxConfig config;
    config.corpus.documents = 150;
    config.corpus.words_per_doc = 120;
    config.inputs = 2;
    config.queries_per_input = 8;
    return config;
}

apps::spmv::SpmvConfig
spmvConfig()
{
    apps::spmv::SpmvConfig config;
    config.rows = 48;
    config.band = 12;
    config.inputs = 2;
    return config;
}

/** The app under a suite's integer id (shared by every suite here). */
std::unique_ptr<core::App>
makeApp(int app_id)
{
    switch (app_id) {
      case 0:
        return std::make_unique<apps::swaptions::SwaptionsApp>(
            swaptionsConfig());
      case 1:
        return std::make_unique<apps::videnc::VidencApp>(videncConfig());
      case 2:
        return std::make_unique<apps::bodytrack::BodytrackApp>(
            bodytrackConfig());
      case 3:
        return std::make_unique<apps::searchx::SearchxApp>(
            searchxConfig());
      default:
        return std::make_unique<apps::spmv::SpmvApp>(spmvConfig());
    }
}

/**
 * For @p app, walk one knob dimension @p param with all others at
 * their defaults and return the fixed-run seconds per value.
 */
std::vector<double>
timesAlongKnob(core::App &app, std::size_t param)
{
    const auto &space = app.knobSpace();
    auto values = space.valuesOf(app.defaultCombination());
    std::vector<double> seconds;
    for (const double v : space.parameter(param).values) {
        auto probe = values;
        probe[param] = v;
        const auto combo = space.findCombination(probe);
        seconds.push_back(core::runFixed(app, 0, combo).seconds);
    }
    return seconds;
}

/** Parameterised over (app id, knob dimension). */
class KnobMonotonicity
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(KnobMonotonicity, MoreEffortNeverRunsFaster)
{
    const int app_id = std::get<0>(GetParam());
    const int param = std::get<1>(GetParam());

    std::unique_ptr<core::App> app = makeApp(app_id);
    // The instantiation below enumerates exactly the (app, knob)
    // pairs that exist, so an out-of-range dimension is a hard error
    // (it used to be a blanket GTEST_SKIP over a padded 4x3 grid).
    ASSERT_LT(static_cast<std::size_t>(param),
              app->knobSpace().parameterCount())
        << app->name() << " has no knob dimension " << param
        << " — update the AllAppsAllKnobs instantiation list";
    const auto seconds =
        timesAlongKnob(*app, static_cast<std::size_t>(param));
    for (std::size_t i = 0; i + 1 < seconds.size(); ++i) {
        EXPECT_LE(seconds[i], seconds[i + 1] * (1.0 + 1e-9))
            << app->name() << " knob "
            << app->knobSpace().parameter(param).name << " value index "
            << i;
    }
}

/**
 * Exactly the knob dimensions each app has — swaptions {-sm},
 * videnc {subme, merange, ref}, bodytrack {particles, layers},
 * searchx {-m}, spmv {bits, keep} — with no exemptions: every knob of
 * every app is an effort knob and must be monotone.
 * KnobDimensionInventory below fails if an app grows or loses a
 * dimension without this list being updated.
 */
INSTANTIATE_TEST_SUITE_P(
    AllAppsAllKnobs, KnobMonotonicity,
    ::testing::Values(std::make_tuple(0, 0), // swaptions: -sm
                      std::make_tuple(1, 0), // videnc: subme
                      std::make_tuple(1, 1), // videnc: merange
                      std::make_tuple(1, 2), // videnc: ref
                      std::make_tuple(2, 0), // bodytrack: particles
                      std::make_tuple(2, 1), // bodytrack: layers
                      std::make_tuple(3, 0), // searchx: -m
                      std::make_tuple(4, 0), // spmv: bits
                      std::make_tuple(4, 1))); // spmv: keep

/** Guard for the enumeration above: per-app knob dimension counts. */
TEST(KnobDimensionInventory, MatchesMonotonicityInstantiation)
{
    EXPECT_EQ(apps::swaptions::SwaptionsApp(swaptionsConfig())
                  .knobSpace()
                  .parameterCount(),
              1u);
    EXPECT_EQ(apps::videnc::VidencApp(videncConfig())
                  .knobSpace()
                  .parameterCount(),
              3u);
    EXPECT_EQ(apps::bodytrack::BodytrackApp(bodytrackConfig())
                  .knobSpace()
                  .parameterCount(),
              2u);
    EXPECT_EQ(apps::searchx::SearchxApp(searchxConfig())
                  .knobSpace()
                  .parameterCount(),
              1u);
    EXPECT_EQ(apps::spmv::SpmvApp(spmvConfig())
                  .knobSpace()
                  .parameterCount(),
              2u);
}

/** Parameterised determinism check per app. */
class AppDeterminism : public ::testing::TestWithParam<int>
{
};

TEST_P(AppDeterminism, FixedRunsAreBitStable)
{
    std::unique_ptr<core::App> app = makeApp(GetParam());
    const auto combo = app->knobSpace().combinations() / 2;
    const auto a = core::runFixed(*app, 1, combo);
    const auto b = core::runFixed(*app, 1, combo);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    ASSERT_EQ(a.output.components.size(), b.output.components.size());
    for (std::size_t i = 0; i < a.output.components.size(); ++i)
        EXPECT_DOUBLE_EQ(a.output.components[i],
                         b.output.components[i]);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppDeterminism,
                         ::testing::Values(0, 1, 2, 3, 4));

/** The default combination is the slowest (highest-effort) setting. */
class BaselineIsSlowest : public ::testing::TestWithParam<int>
{
};

TEST_P(BaselineIsSlowest, DefaultHasZeroLossAndMaxTime)
{
    std::unique_ptr<core::App> app = makeApp(GetParam());
    auto train = app->trainingInputs();
    const auto result = core::calibrate(*app, train);
    const auto &points = result.model.allPoints();
    const auto baseline = app->defaultCombination();
    EXPECT_DOUBLE_EQ(points[baseline].qos_loss, 0.0);
    EXPECT_DOUBLE_EQ(points[baseline].speedup, 1.0);
    // Every other combination is at least as fast (speedup >= 1).
    for (const auto &p : points)
        EXPECT_GE(p.speedup, 1.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllApps, BaselineIsSlowest,
                         ::testing::Values(0, 1, 2, 3, 4));

} // namespace
} // namespace powerdial
