/** @file Unit tests for sim::Machine. */
#include <gtest/gtest.h>

#include "sim/machine.h"

namespace powerdial::sim {
namespace {

TEST(Machine, ExecuteAdvancesTimeByCyclesOverFrequency)
{
    Machine m;
    const double dt = m.execute(2.4e9); // One second at 2.4 GHz.
    EXPECT_NEAR(dt, 1.0, 1e-12);
    EXPECT_NEAR(m.now(), 1.0, 1e-12);
}

TEST(Machine, LowerPStateSlowsExecution)
{
    Machine m;
    m.setPState(m.scale().lowestState());
    const double dt = m.execute(1.6e9);
    EXPECT_NEAR(dt, 1.0, 1e-12);
}

TEST(Machine, FrequencyDropStretchesWorkByRatio)
{
    // The DVFS premise: same work, 2.4/1.6 = 1.5x longer.
    Machine a, b;
    const double cycles = 1e9;
    const double t_fast = a.execute(cycles);
    b.setPState(b.scale().lowestState());
    const double t_slow = b.execute(cycles);
    EXPECT_NEAR(t_slow / t_fast, 2.4 / 1.6, 1e-9);
}

TEST(Machine, ShareScalesThroughput)
{
    Machine m;
    m.setShare(0.25);
    const double dt = m.execute(2.4e9);
    EXPECT_NEAR(dt, 4.0, 1e-9);
}

TEST(Machine, ShareValidation)
{
    Machine m;
    EXPECT_THROW(m.setShare(0.0), std::invalid_argument);
    EXPECT_THROW(m.setShare(1.5), std::invalid_argument);
    m.setShare(1.0); // OK.
}

TEST(Machine, NegativeWorkThrows)
{
    Machine m;
    EXPECT_THROW(m.execute(-1.0), std::invalid_argument);
}

TEST(Machine, ZeroWorkIsFree)
{
    Machine m;
    EXPECT_DOUBLE_EQ(m.execute(0.0), 0.0);
    EXPECT_DOUBLE_EQ(m.now(), 0.0);
    EXPECT_DOUBLE_EQ(m.energyJoules(), 0.0);
}

TEST(Machine, IdleDrawsIdlePower)
{
    Machine m;
    m.idleFor(10.0);
    EXPECT_NEAR(m.energyJoules(),
                10.0 * m.powerModel().idleWatts(), 1e-9);
}

TEST(Machine, IdleUntilIsAbsolute)
{
    Machine m;
    m.idleUntil(2.0);
    m.idleUntil(1.0); // No-op, in the past.
    EXPECT_DOUBLE_EQ(m.now(), 2.0);
}

TEST(Machine, EnergyIntegratesPowerOverTime)
{
    Machine m;
    m.setUtilization(1.0);
    m.execute(2.4e9); // 1 s at peak power.
    EXPECT_NEAR(m.energyJoules(), m.powerModel().peakWatts(), 1e-6);
}

TEST(Machine, DefaultUtilizationIsOneCore)
{
    Machine m; // 8 cores.
    m.execute(2.4e9);
    const double expected =
        m.powerModel().watts(2.4e9, 1.0 / 8.0);
    EXPECT_NEAR(m.energyJoules(), expected, 1e-6);
}

TEST(Machine, MeanWattsOverWindow)
{
    Machine m;
    m.setUtilization(1.0);
    m.execute(2.4e9); // [0, 1): peak.
    m.idleFor(1.0);   // [1, 2): idle.
    const double peak = m.powerModel().peakWatts();
    const double idle = m.powerModel().idleWatts();
    EXPECT_NEAR(m.meanWatts(0.0, 1.0), peak, 1e-9);
    EXPECT_NEAR(m.meanWatts(1.0, 2.0), idle, 1e-9);
    EXPECT_NEAR(m.meanWatts(0.0, 2.0), 0.5 * (peak + idle), 1e-9);
    EXPECT_NEAR(m.meanWatts(), 0.5 * (peak + idle), 1e-9);
}

TEST(Machine, MeanWattsEmptyWindowIsZero)
{
    Machine m;
    EXPECT_DOUBLE_EQ(m.meanWatts(1.0, 1.0), 0.0);
    EXPECT_DOUBLE_EQ(m.meanWatts(2.0, 1.0), 0.0);
}

TEST(Machine, PowerTraceCoalescesEqualPowerSegments)
{
    Machine m;
    m.setUtilization(1.0);
    m.execute(1e9);
    m.execute(1e9); // Same power: should extend the same segment.
    EXPECT_EQ(m.powerTrace().size(), 1u);
}

TEST(Machine, PowerTraceSplitsOnPowerChange)
{
    Machine m;
    m.setUtilization(1.0);
    m.execute(1e9);
    m.idleFor(0.5);
    EXPECT_EQ(m.powerTrace().size(), 2u);
    EXPECT_GT(m.powerTrace()[0].watts, m.powerTrace()[1].watts);
}

TEST(Machine, BadPStateThrows)
{
    Machine m;
    EXPECT_THROW(m.setPState(99), std::out_of_range);
}

TEST(Machine, ZeroCoresRejected)
{
    Machine::Config config;
    config.cores = 0;
    EXPECT_THROW(Machine{config}, std::invalid_argument);
}

TEST(Machine, NegativeIdleThrows)
{
    Machine m;
    EXPECT_THROW(m.idleFor(-1.0), std::invalid_argument);
}

TEST(Machine, PStateCapClampsRequests)
{
    Machine m;
    m.setPStateCap(3);
    // Installing the cap slows the machine immediately...
    EXPECT_EQ(m.pstate(), 3u);
    // ...and later requests for faster states clamp against it.
    m.setPState(0);
    EXPECT_EQ(m.pstate(), 3u);
    m.setPState(5); // Slower than the cap stays allowed.
    EXPECT_EQ(m.pstate(), 5u);
}

TEST(Machine, PStateCapIsRemovable)
{
    Machine m;
    m.setPStateCap(3);
    m.setPStateCap(0);
    EXPECT_EQ(m.pstateCap(), 0u);
    // Removing the cap does not speed the machine up by itself.
    EXPECT_EQ(m.pstate(), 3u);
    m.setPState(0);
    EXPECT_EQ(m.pstate(), 0u);
}

TEST(Machine, PStateCapSettableMidRun)
{
    // The fleet arbiter re-caps machines between control epochs while
    // work is in flight; the new cap governs subsequent work only.
    Machine m;
    const double t_fast = m.execute(2.4e9);
    m.setPStateCap(m.scale().lowestState());
    const double t_slow = m.execute(1.6e9);
    EXPECT_NEAR(t_fast, 1.0, 1e-12);
    EXPECT_NEAR(t_slow, 1.0, 1e-12);
}

TEST(Machine, BadPStateCapThrows)
{
    Machine m;
    EXPECT_THROW(m.setPStateCap(99), std::out_of_range);
}

} // namespace
} // namespace powerdial::sim
