/**
 * @file
 * ODR/include-guard smoke test, translation unit 1 of 2.
 *
 * Both TUs include the umbrella header `powerdial.h`; linking them into
 * one binary fails if any header defines a non-inline symbol or is
 * missing an include guard. Each TU also instantiates a few types so
 * the headers are actually used, not just preprocessed.
 */
#include <gtest/gtest.h>

#include "powerdial.h"

namespace powerdial {

// Defined in test_umbrella_tu2.cc; proves both TUs link together.
std::size_t umbrellaCombinationsTu2();

namespace {

TEST(UmbrellaHeader, UsableFromFirstTranslationUnit)
{
    core::KnobSpace space({{"k", {1, 2, 3}}});
    EXPECT_EQ(space.combinations(), 3u);
    sim::VirtualClock clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(UmbrellaHeader, BothTranslationUnitsLink)
{
    EXPECT_EQ(umbrellaCombinationsTu2(), 6u);
}

} // namespace
} // namespace powerdial
