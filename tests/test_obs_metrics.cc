/**
 * @file
 * The deterministic metrics registry (obs/metrics.h): counter and
 * histogram semantics — log-scale bucket boundaries with inclusive
 * (Prometheus `le`) edges, under/overflow routing — plus registry
 * dedup, type-mismatch rejection, and a byte-exact golden of the
 * Prometheus text exposition.
 */
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace powerdial::obs {
namespace {

TEST(Counter, AddsAndIncrements)
{
    Counter counter;
    EXPECT_EQ(counter.value(), 0.0);
    counter.increment();
    counter.add(2.5);
    EXPECT_EQ(counter.value(), 3.5);
}

TEST(MetricsRegistry, SameNameAndLabelsIsTheSameCounter)
{
    MetricsRegistry registry;
    Counter &a = registry.counter("jobs_total", "jobs");
    Counter &b = registry.counter("jobs_total", "jobs");
    EXPECT_EQ(&a, &b);
    Counter &labeled =
        registry.counter("jobs_total", "jobs", "class=\"0\"");
    EXPECT_NE(&a, &labeled);
    a.increment();
    EXPECT_EQ(b.value(), 1.0);
    EXPECT_EQ(labeled.value(), 0.0);
}

TEST(MetricsRegistry, TypeMismatchThrows)
{
    MetricsRegistry registry;
    registry.counter("latency", "latency");
    EXPECT_THROW(registry.histogram("latency", "latency", {}),
                 std::logic_error);
    registry.histogram("watts", "watts", {});
    EXPECT_THROW(registry.counter("watts", "watts"),
                 std::logic_error);
}

TEST(Histogram, RejectsDegenerateSpecs)
{
    EXPECT_THROW(Histogram(HistogramSpec{0.0, 3, 6}),
                 std::invalid_argument);
    EXPECT_THROW(Histogram(HistogramSpec{-1.0, 3, 6}),
                 std::invalid_argument);
    EXPECT_THROW(Histogram(HistogramSpec{1e-3, 0, 6}),
                 std::invalid_argument);
}

TEST(Histogram, LogScaleBounds)
{
    const Histogram histogram(HistogramSpec{1e-3, 3, 6});
    const auto &bounds = histogram.bounds();
    ASSERT_EQ(bounds.size(), 19u); // 3 per decade * 6 decades + 1.
    EXPECT_DOUBLE_EQ(bounds.front(), 1e-3);
    EXPECT_DOUBLE_EQ(bounds.back(), 1e3);
    // One decade apart every buckets_per_decade steps.
    for (std::size_t i = 3; i < bounds.size(); ++i)
        EXPECT_NEAR(bounds[i] / bounds[i - 3], 10.0, 1e-9);
    // Counts: one slot per bound plus the +Inf overflow.
    EXPECT_EQ(histogram.counts().size(), bounds.size() + 1);
}

TEST(Histogram, ExactEdgeIsInclusive)
{
    Histogram histogram(HistogramSpec{1.0, 1, 3});
    const auto &bounds = histogram.bounds(); // 1, 10, 100, 1000.
    ASSERT_EQ(bounds.size(), 4u);

    // A value exactly on a bound lands in that bound's bucket
    // (le="10" counts values <= 10), and the next representable
    // value above it lands in the next.
    histogram.observe(bounds[1]);
    EXPECT_EQ(histogram.counts()[1], 1u);
    histogram.observe(std::nextafter(bounds[1], 1e300));
    EXPECT_EQ(histogram.counts()[2], 1u);
    histogram.observe(std::nextafter(bounds[1], 0.0));
    EXPECT_EQ(histogram.counts()[1], 2u);
}

TEST(Histogram, UnderflowAndOverflow)
{
    Histogram histogram(HistogramSpec{1.0, 1, 3});
    // Below the smallest bound: the first bucket (le="1").
    histogram.observe(0.0);
    histogram.observe(1e-12);
    EXPECT_EQ(histogram.counts().front(), 2u);
    // Above the largest bound: the +Inf overflow slot.
    histogram.observe(1000.0); // Exactly the last bound: still in.
    EXPECT_EQ(histogram.counts()[3], 1u);
    histogram.observe(1001.0);
    EXPECT_EQ(histogram.counts().back(), 1u);
    EXPECT_EQ(histogram.total(), 4u);
    EXPECT_DOUBLE_EQ(histogram.sum(), 1e-12 + 1000.0 + 1001.0);
}

TEST(MetricsRegistry, PrometheusGolden)
{
    MetricsRegistry registry;
    registry.counter("powerdial_jobs_total", "Jobs served").add(7.0);
    registry
        .counter("powerdial_sheds_total", "Jobs shed per class",
                 "job_class=\"0\"")
        .add(2.0);
    registry
        .counter("powerdial_sheds_total", "Jobs shed per class",
                 "job_class=\"1\"")
        .add(3.0);
    Histogram &latency = registry.histogram(
        "powerdial_latency_seconds", "Job latency",
        HistogramSpec{0.1, 1, 2});
    latency.observe(0.05); // le="0.1"
    latency.observe(1.0);  // le="1" (exact edge, inclusive).
    latency.observe(25.0); // +Inf overflow.

    std::ostringstream out;
    registry.writePrometheus(out);
    const std::string expected =
        "# HELP powerdial_jobs_total Jobs served\n"
        "# TYPE powerdial_jobs_total counter\n"
        "powerdial_jobs_total 7\n"
        "# HELP powerdial_latency_seconds Job latency\n"
        "# TYPE powerdial_latency_seconds histogram\n"
        "powerdial_latency_seconds_bucket{le=\"0.1\"} 1\n"
        "powerdial_latency_seconds_bucket{le=\"1\"} 2\n"
        "powerdial_latency_seconds_bucket{le=\"10\"} 2\n"
        "powerdial_latency_seconds_bucket{le=\"+Inf\"} 3\n"
        "powerdial_latency_seconds_sum 26.05\n"
        "powerdial_latency_seconds_count 3\n"
        "# HELP powerdial_sheds_total Jobs shed per class\n"
        "# TYPE powerdial_sheds_total counter\n"
        "powerdial_sheds_total{job_class=\"0\"} 2\n"
        "powerdial_sheds_total{job_class=\"1\"} 3\n";
    EXPECT_EQ(out.str(), expected);
}

TEST(MetricsRegistry, ExpositionIsDeterministic)
{
    // Registration order must not leak into the output: families are
    // emitted in name order, series in label order.
    const auto render = [](bool reversed) {
        MetricsRegistry registry;
        if (reversed) {
            registry.counter("b_total", "b", "x=\"1\"").add(1.0);
            registry.counter("b_total", "b", "x=\"0\"").add(2.0);
            registry.counter("a_total", "a").add(3.0);
        } else {
            registry.counter("a_total", "a").add(3.0);
            registry.counter("b_total", "b", "x=\"0\"").add(2.0);
            registry.counter("b_total", "b", "x=\"1\"").add(1.0);
        }
        std::ostringstream out;
        registry.writePrometheus(out);
        return out.str();
    };
    EXPECT_EQ(render(false), render(true));
}

} // namespace
} // namespace powerdial::obs
