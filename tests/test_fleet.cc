/** @file Tests for the fleet serving subsystem. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "fleet/metrics_hub.h"
#include "fleet/power_arbiter.h"
#include "fleet/scheduler.h"
#include "fleet/server.h"
#include "fleet_scenarios.h"
#include "workload/arrivals.h"
#include "workload/load_trace.h"

namespace powerdial::fleet {
namespace {

using powerdial::tests::ToyApp;
using tests::expectReportsIdentical;
using tests::makePipeline;

// ---------------------------------------------------------------------
// Scheduler placement properties.
// ---------------------------------------------------------------------

TEST(Scheduler, LeastLoadedMatchesAnalyticBalance)
{
    // Incremental least-loaded placement of k jobs must land on the
    // same per-machine counts as the analytic proportional balancer,
    // including non-divisible counts.
    for (const std::size_t jobs : {0u, 1u, 7u, 10u, 32u, 37u}) {
        sim::Cluster cluster(4, sim::Machine::Config{});
        Scheduler scheduler(cluster);
        for (std::size_t k = 0; k < jobs; ++k)
            scheduler.admit();
        EXPECT_EQ(cluster.activeCounts(), cluster.balance(jobs))
            << "jobs=" << jobs;
    }
}

TEST(Scheduler, LeastLoadedNeverOversubscribesBelowCapacity)
{
    sim::Cluster cluster(4, sim::Machine::Config{});
    Scheduler scheduler(cluster);
    for (std::size_t k = 0; k < cluster.peakInstances(); ++k) {
        scheduler.admit();
        for (std::size_t i = 0; i < cluster.size(); ++i)
            EXPECT_LE(cluster.activeOn(i),
                      cluster.machine(i).cores());
    }
}

TEST(Scheduler, LeastLoadedTieBreaksTowardLowestIndex)
{
    sim::Cluster cluster(3, sim::Machine::Config{});
    Scheduler scheduler(cluster);
    EXPECT_EQ(scheduler.admit(), 0u);
    EXPECT_EQ(scheduler.admit(), 1u);
    EXPECT_EQ(scheduler.admit(), 2u);
    EXPECT_EQ(scheduler.admit(), 0u); // All equal again.
}

TEST(Scheduler, ReleaseReopensTheMachine)
{
    sim::Cluster cluster(2, sim::Machine::Config{});
    Scheduler scheduler(cluster);
    EXPECT_EQ(scheduler.admit(), 0u);
    EXPECT_EQ(scheduler.admit(), 1u);
    scheduler.release(0);
    EXPECT_EQ(scheduler.admit(), 0u);
}

TEST(Scheduler, PowerAwarePacksSaturatedMachines)
{
    // The power model is linear in utilisation below saturation and
    // flat above it, so an already-saturated machine has zero
    // marginal power cost: power-aware placement packs it while
    // least-loaded would spread.
    sim::Cluster cluster(2, sim::Machine::Config{});
    Scheduler scheduler(cluster, makePowerAwarePlacement());
    const std::size_t cores = cluster.machine(0).cores();
    for (std::size_t k = 0; k < cores; ++k)
        cluster.place(0); // Saturate machine 0 by hand.
    EXPECT_EQ(scheduler.admit(), 0u);
    EXPECT_EQ(cluster.activeOn(0), cores + 1);
    EXPECT_EQ(cluster.activeOn(1), 0u);
}

TEST(Scheduler, PowerAwarePrefersCappedMachines)
{
    // A frequency-capped machine burns fewer watts per marginal job.
    sim::Cluster cluster(2, sim::Machine::Config{});
    const std::size_t slowest =
        cluster.machine(1).scale().states() - 1;
    cluster.machine(1).setPStateCap(slowest);
    Scheduler scheduler(cluster, makePowerAwarePlacement());
    EXPECT_EQ(scheduler.admit(), 1u);
}

// ---------------------------------------------------------------------
// Bounded run queues and admission control.
// ---------------------------------------------------------------------

TEST(Scheduler, ShedsWhenEveryMachineIsAtTheBound)
{
    sim::Cluster cluster(2, sim::Machine::Config{});
    Scheduler scheduler(cluster, SchedulerOptions{nullptr, 3, {}, nullptr});
    for (std::size_t k = 0; k < 6; ++k)
        EXPECT_TRUE(scheduler.tryAdmit().has_value()) << "k=" << k;
    EXPECT_FALSE(scheduler.tryAdmit().has_value());
    EXPECT_FALSE(scheduler.tryAdmit().has_value());
    EXPECT_EQ(scheduler.shedCount(), 2u);
    // A release reopens exactly one slot.
    scheduler.release(1);
    const auto machine = scheduler.tryAdmit();
    ASSERT_TRUE(machine.has_value());
    EXPECT_EQ(*machine, 1u);
    EXPECT_EQ(scheduler.shedCount(), 2u);
}

TEST(Scheduler, FullPolicyPickOverflowsToMachineWithRoom)
{
    // Power-aware placement packs machine 0 (saturated = zero
    // marginal watts); with a depth bound the overflow must land on
    // the emptier machine instead of being shed.
    sim::Cluster cluster(2, sim::Machine::Config{});
    const std::size_t cores = cluster.machine(0).cores();
    Scheduler scheduler(cluster,
                        SchedulerOptions{
                            makePowerAwarePlacement(), cores + 1,
                            {}, nullptr});
    for (std::size_t k = 0; k < cores + 1; ++k)
        cluster.place(0); // Fill machine 0 to the bound by hand.
    const auto machine = scheduler.tryAdmit();
    ASSERT_TRUE(machine.has_value());
    EXPECT_EQ(*machine, 1u);
    EXPECT_EQ(scheduler.shedCount(), 0u);
}

TEST(Scheduler, UnboundedAdmitNeverSheds)
{
    sim::Cluster cluster(1, sim::Machine::Config{});
    Scheduler scheduler(cluster);
    EXPECT_EQ(scheduler.queueDepth(), 0u);
    for (std::size_t k = 0; k < 4 * cluster.peakInstances(); ++k)
        scheduler.admit();
    EXPECT_EQ(scheduler.shedCount(), 0u);
}

TEST(Scheduler, AdmitThrowsInsteadOfSheddingSilently)
{
    sim::Cluster cluster(1, sim::Machine::Config{});
    Scheduler scheduler(cluster, SchedulerOptions{nullptr, 1, {}, nullptr});
    scheduler.admit();
    EXPECT_THROW(scheduler.admit(), std::logic_error);
    // The rejection surfaced as an exception, not as a shed event:
    // the counter tracks only tryAdmit()-path admission control.
    EXPECT_EQ(scheduler.shedCount(), 0u);
    for (const std::size_t count : scheduler.shedByMachine())
        EXPECT_EQ(count, 0u);
}

TEST(Scheduler, ShedsAreChargedToThePolicyPick)
{
    // Least-loaded on a full cluster ties toward machine 0, so every
    // shed job is charged there: the count says which host demand was
    // aimed at when it was turned away.
    sim::Cluster cluster(2, sim::Machine::Config{});
    Scheduler scheduler(cluster, SchedulerOptions{nullptr, 1, {}, nullptr});
    EXPECT_TRUE(scheduler.tryAdmit().has_value());
    EXPECT_TRUE(scheduler.tryAdmit().has_value());
    for (std::size_t k = 0; k < 3; ++k)
        EXPECT_FALSE(scheduler.tryAdmit().has_value());
    EXPECT_EQ(scheduler.shedCount(), 3u);
    EXPECT_EQ(scheduler.shedByMachine(),
              (std::vector<std::size_t>{3, 0}));
}

TEST(Scheduler, ShedAttributionFollowsThePlacementPolicy)
{
    // Power-aware placement prefers the frequency-capped machine 1;
    // with the whole cluster at the bound, the sheds land on machine
    // 1's ledger, not machine 0's.
    sim::Cluster cluster(2, sim::Machine::Config{});
    cluster.machine(1).setPStateCap(
        cluster.machine(1).scale().states() - 1);
    Scheduler scheduler(
        cluster, SchedulerOptions{makePowerAwarePlacement(), 2, {}, nullptr});
    cluster.place(0);
    cluster.place(0);
    cluster.place(1);
    cluster.place(1); // Both machines at the bound, by hand.
    EXPECT_FALSE(scheduler.tryAdmit().has_value());
    EXPECT_EQ(scheduler.shedByMachine(),
              (std::vector<std::size_t>{0, 1}));
}

TEST(Scheduler, ShedAttributionSumsToShedCount)
{
    sim::Cluster cluster(3, sim::Machine::Config{});
    Scheduler scheduler(cluster, SchedulerOptions{nullptr, 2, {}, nullptr});
    std::size_t admitted = 0;
    for (std::size_t k = 0; k < 11; ++k)
        if (scheduler.tryAdmit().has_value())
            ++admitted;
    EXPECT_EQ(admitted, 6u);
    EXPECT_EQ(scheduler.shedCount(), 5u);
    std::size_t attributed = 0;
    for (const std::size_t count : scheduler.shedByMachine())
        attributed += count;
    EXPECT_EQ(attributed, scheduler.shedCount());
    // A release reopens a slot; the next admit does not shed and the
    // attribution stays frozen.
    scheduler.release(2);
    EXPECT_TRUE(scheduler.tryAdmit().has_value());
    EXPECT_EQ(scheduler.shedCount(), 5u);
}

// ---------------------------------------------------------------------
// Power arbiter: budget conservation and cap translation.
// ---------------------------------------------------------------------

void
placeSome(sim::Cluster &cluster, const std::vector<std::size_t> &counts)
{
    for (std::size_t i = 0; i < counts.size(); ++i)
        for (std::size_t k = 0; k < counts[i]; ++k)
            cluster.place(i);
}

TEST(PowerArbiter, BudgetsConserveTheCapUnderEveryPolicy)
{
    for (const ArbiterPolicy policy :
         {ArbiterPolicy::Uniform, ArbiterPolicy::UtilizationProportional,
          ArbiterPolicy::QosFeedback}) {
        sim::Cluster cluster(4, sim::Machine::Config{});
        placeSome(cluster, {9, 3, 0, 1});
        ArbiterOptions options;
        options.cluster_cap_watts = 520.0;
        options.policy = policy;
        PowerArbiter arbiter(options);
        const auto decision =
            arbiter.arbitrate(cluster, {0.05, 0.01, 0.0, 0.02});
        double total = 0.0;
        for (const double watts : decision.budget_watts)
            total += watts;
        EXPECT_LE(total, options.cluster_cap_watts + 1e-9)
            << arbiterPolicyName(policy);
        // Nothing is thrown away either: the split is exhaustive.
        EXPECT_NEAR(total, options.cluster_cap_watts, 1e-9)
            << arbiterPolicyName(policy);
    }
}

TEST(PowerArbiter, UniformSplitsEqually)
{
    sim::Cluster cluster(4, sim::Machine::Config{});
    placeSome(cluster, {8, 0, 0, 0});
    PowerArbiter arbiter({800.0, ArbiterPolicy::Uniform, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    for (const double watts : decision.budget_watts)
        EXPECT_DOUBLE_EQ(watts, 200.0);
}

TEST(PowerArbiter, UtilizationProportionalFavorsLoadedMachines)
{
    sim::Cluster cluster(2, sim::Machine::Config{});
    placeSome(cluster, {6, 2});
    PowerArbiter arbiter(
        {400.0, ArbiterPolicy::UtilizationProportional, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    EXPECT_GT(decision.budget_watts[0], decision.budget_watts[1]);
}

TEST(PowerArbiter, QosFeedbackShiftsBudgetTowardLossyMachines)
{
    // Same occupancy on both machines; the one reporting more tenant
    // QoS loss gets the bigger slice.
    sim::Cluster cluster(2, sim::Machine::Config{});
    placeSome(cluster, {4, 4});
    PowerArbiter arbiter({380.0, ArbiterPolicy::QosFeedback, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {0.08, 0.01});
    EXPECT_GT(decision.budget_watts[0], decision.budget_watts[1]);
    const double total =
        decision.budget_watts[0] + decision.budget_watts[1];
    EXPECT_NEAR(total, 380.0, 1e-9);
}

TEST(PowerArbiter, PstateCapMapsBudgetToFrequency)
{
    sim::Machine machine;
    const auto &model = machine.powerModel();
    // A budget covering peak power leaves the machine uncapped.
    EXPECT_EQ(PowerArbiter::pstateCapFor(machine,
                                         model.peakWatts() + 1.0, 1.0),
              0u);
    // A budget below even the slowest state's draw returns the
    // slowest state (duty-cycling covers the rest).
    EXPECT_EQ(PowerArbiter::pstateCapFor(machine,
                                         model.idleWatts() - 5.0, 1.0),
              machine.scale().states() - 1);
}

TEST(PowerArbiter, UncappedLeavesMachinesAtFullFrequency)
{
    sim::Cluster cluster(2, sim::Machine::Config{});
    cluster.machine(0).setPStateCap(3); // Stale cap from a prior epoch.
    PowerArbiter arbiter({0.0, ArbiterPolicy::QosFeedback, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    EXPECT_EQ(decision.pstate_cap[0], 0u);
    EXPECT_EQ(cluster.machine(0).pstate(), 0u);
    EXPECT_EQ(cluster.machine(0).pstateCap(), 0u);
    EXPECT_DOUBLE_EQ(decision.pause_ratio[0], 0.0);
}

TEST(PowerArbiter, TightBudgetInducesDutyCyclePauses)
{
    sim::Cluster cluster(1, sim::Machine::Config{});
    placeSome(cluster, {8});
    const double idle =
        cluster.machine(0).powerModel().idleWatts();
    // Between idle and the slowest state's loaded draw: the cap can
    // only be met on average by pausing tenants part of the time.
    PowerArbiter arbiter({idle + 10.0, ArbiterPolicy::Uniform, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    EXPECT_EQ(decision.pstate_cap[0],
              cluster.machine(0).scale().states() - 1);
    EXPECT_GT(decision.pause_ratio[0], 0.0);
}

TEST(PowerArbiter, RejectsBadFeedbackGain)
{
    EXPECT_THROW(PowerArbiter({100.0, ArbiterPolicy::QosFeedback, 1.5}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// MetricsHub: lock-free fan-in, deterministic drain.
// ---------------------------------------------------------------------

TEST(MetricsHub, DrainMergesShardsSortedByJobId)
{
    MetricsHub hub(3);
    // Commit out of order across shards, as pool workers would.
    for (const auto &[worker, job] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 4}, {0, 1}, {1, 3}, {0, 0}, {2, 2}}) {
        JobRecord seed;
        seed.job = job;
        auto probe = hub.probe(worker, seed);
        probe.onRunStart({});
        probe.onRunEnd({});
        sim::Machine machine;
        probe.finish(machine);
    }
    EXPECT_EQ(hub.committed(), 5u);
    const auto records = hub.drain();
    ASSERT_EQ(records.size(), 5u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].job, i);
    EXPECT_EQ(hub.committed(), 0u);
}

TEST(MetricsHub, FinishBeforeRunEndThrows)
{
    MetricsHub hub(1);
    auto probe = hub.probe(0, JobRecord{});
    sim::Machine machine;
    EXPECT_THROW(probe.finish(machine), std::logic_error);
}

TEST(MetricsHub, BadWorkerIndexThrows)
{
    MetricsHub hub(2);
    EXPECT_THROW(hub.probe(2, JobRecord{}), std::out_of_range);
    // The commit side checks too: finishOn with a worker the hub
    // never sharded for must not write out of bounds.
    auto probe = hub.probe(0, JobRecord{});
    probe.onRunStart({});
    probe.onRunEnd({});
    sim::Machine machine;
    EXPECT_THROW(probe.finishOn(2, machine), std::out_of_range);
}

TEST(MetricsHub, PercentileNearestRank)
{
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentileOf(sorted, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentileOf(sorted, 95.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileOf(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf({}, 50.0), 0.0);
}

// ---------------------------------------------------------------------
// End-to-end serves.
// ---------------------------------------------------------------------

ServerOptions
serveOptions(std::size_t machines, double cap_watts,
             ArbiterPolicy policy, std::size_t threads)
{
    ServerOptions options;
    options.machines = machines;
    options.threads = threads;
    options.arbiter.cluster_cap_watts = cap_watts;
    options.arbiter.policy = policy;
    return options;
}

std::vector<std::size_t>
spikeArrivals(std::size_t peak)
{
    workload::LoadTraceParams trace_params;
    trace_params.steps = 12;
    trace_params.spike_probability = 0.2;
    workload::PoissonArrivalParams arrival_params;
    arrival_params.peak_rate = static_cast<double>(peak);
    return workload::makePoissonArrivals(
        workload::makeLoadTrace(trace_params), arrival_params);
}

TEST(Server, ReportIsBitIdenticalAcrossThreadCounts)
{
    auto p = makePipeline();
    const auto arrivals = spikeArrivals(6);
    Server serial(p.app, p.table, p.model,
                  serveOptions(2, 350.0, ArbiterPolicy::QosFeedback, 1));
    Server pooled(p.app, p.table, p.model,
                  serveOptions(2, 350.0, ArbiterPolicy::QosFeedback, 4));
    expectReportsIdentical(serial.serve(arrivals),
                           pooled.serve(arrivals));
}

TEST(Server, ServesEveryArrivalAndAggregates)
{
    auto p = makePipeline();
    const std::vector<std::size_t> arrivals{3, 0, 5, 1};
    Server server(p.app, p.table, p.model,
                  serveOptions(2, 0.0, ArbiterPolicy::Uniform, 1));
    const auto report = server.serve(arrivals);
    EXPECT_EQ(report.total_jobs, 9u);
    EXPECT_EQ(report.jobs.size(), 9u);
    ASSERT_EQ(report.epochs.size(), 4u);
    EXPECT_EQ(report.epochs[0].arrivals, 3u);
    EXPECT_EQ(report.epochs[1].arrivals, 0u);
    EXPECT_GT(report.mean_watts, 0.0);
    EXPECT_GT(report.p95_latency_s, 0.0);
    EXPECT_GE(report.p95_latency_s, report.p50_latency_s);
    EXPECT_GE(report.p99_latency_s, report.p95_latency_s);
    // Tenants round-robin over the production inputs.
    EXPECT_EQ(report.tenants.size(),
              p.app.productionInputs().size());
}

TEST(Server, ConsolidatedFleetAbsorbsSpikeWithinQosEnvelope)
{
    // The paper's provisioning claim (section 3, 5.5): a consolidated
    // fleet rides a load spike by trading a little QoS instead of
    // adding machines. Baseline: enough machines that every job gets
    // a dedicated core. Consolidated: one machine, 4x oversubscribed
    // at the spike, uncapped. Dynamic knobs must hold per-job latency
    // near baseline while paying bounded calibrated QoS loss (ToyApp's
    // frontier tops out at 7% loss for an 8x speedup). 600-unit jobs
    // amortise each tenant's cold-start control transient (one
    // quantum at baseline knobs before the first re-plan).
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    const std::vector<std::size_t> arrivals{4, 4,  16, 16, 16, 16,
                                            16, 16, 4,  4,  4,  4};

    Server baseline(p.app, p.table, p.model,
                    serveOptions(4, 0.0, ArbiterPolicy::Uniform, 1));
    Server consolidated(
        p.app, p.table, p.model,
        serveOptions(1, 0.0, ArbiterPolicy::Uniform, 1));
    const auto base = baseline.serve(arrivals);
    const auto cons = consolidated.serve(arrivals);

    ASSERT_GT(base.total_jobs, 0u);
    EXPECT_EQ(base.total_jobs, cons.total_jobs);
    // The over-provisioned baseline serves everything at the
    // calibrated baseline latency with no QoS loss.
    EXPECT_NEAR(base.p95_latency_s, p.model.baselineSeconds(),
                0.01 * p.model.baselineSeconds());
    EXPECT_NEAR(base.mean_qos_loss, 0.0, 1e-6);
    // Latency envelope: the consolidated fleet holds p95 job latency
    // within 50% of baseline even while 4x oversubscribed (observed
    // ~1.26x; the slack above that is the cold-start transient).
    EXPECT_LE(cons.p95_latency_s, 1.5 * base.p95_latency_s);
    // The speedup came from somewhere: calibrated QoS loss is paid,
    // but stays within the response model's admissible range.
    EXPECT_GT(cons.mean_qos_loss, base.mean_qos_loss);
    EXPECT_LE(cons.mean_qos_loss, 0.07 + 1e-9);
    // And the headline: fewer machines, much less power (Figure 8).
    EXPECT_LT(cons.mean_watts, 0.5 * base.mean_watts);
}

TEST(Server, CallerGateComposesWithArbitrationPauses)
{
    // A user-supplied session gate must keep firing even on tenants
    // the arbiter duty-cycles (the server composes the two gates
    // rather than replacing one with the other).
    auto p = makePipeline();
    const double idle =
        sim::Machine().powerModel().idleWatts();
    // One machine, budget between idle and the slowest state's
    // loaded draw: every epoch needs pauses.
    ServerOptions options =
        serveOptions(1, idle + 10.0, ArbiterPolicy::Uniform, 1);
    auto calls = std::make_shared<std::size_t>(0);
    options.session.withGate(
        [calls](core::BeatGateContext &) { ++*calls; });
    Server server(p.app, p.table, p.model, options);
    const auto report = server.serve(std::vector<std::size_t>{2, 2});
    ASSERT_EQ(report.total_jobs, 4u);
    double max_pause = 0.0;
    for (const auto &epoch : report.epochs)
        max_pause = std::max(max_pause, epoch.max_pause_ratio);
    EXPECT_GT(max_pause, 0.0);
    // Every beat of every tenant saw the user gate.
    std::size_t beats = 0;
    for (const auto &job : report.jobs)
        beats += job.beats;
    EXPECT_EQ(*calls, beats);
}

// ---------------------------------------------------------------------
// Cross-epoch arbitration: leases reach in-flight tenants mid-run.
// ---------------------------------------------------------------------

/**
 * Per-beat snapshot of one tenant's machine, recorded by a caller
 * gate. The caller gate runs *before* the lease gate each beat, so a
 * snapshot shows the terms in force when the beat began; a lease
 * rewritten at an epoch boundary is therefore visible from the next
 * beat on.
 */
struct GateSnapshot
{
    const sim::Machine *machine;
    std::size_t beat;
    double now;
    double share;
    std::size_t pstate_cap;
};

core::BeatGate
snapshotGate(std::shared_ptr<std::vector<GateSnapshot>> log)
{
    return [log](core::BeatGateContext &ctx) {
        log->push_back({&ctx.machine, ctx.beat, ctx.machine.now(),
                        ctx.machine.share(), ctx.machine.pstateCap()});
    };
}

/** The snapshots of the machine that logged first (job 0). */
std::vector<GateSnapshot>
firstMachineTrace(const std::vector<GateSnapshot> &log)
{
    std::vector<GateSnapshot> trace;
    if (log.empty())
        return trace;
    const sim::Machine *machine = log.front().machine;
    for (const GateSnapshot &snap : log)
        if (snap.machine == machine)
            trace.push_back(snap);
    return trace;
}

TEST(Server, InFlightTenantAdoptsUpdatedShareWithinOneBeat)
{
    // One machine; a lone tenant arrives at epoch 0 with the machine
    // to itself, then 8 more tenants land at epoch 1. Epochs are a
    // quarter of the job duration, so the first tenant is mid-run
    // when the epoch-1 arbitration recomputes its core share — under
    // the frozen-lease model it would keep share 1.0 forever.
    auto p = makePipeline();
    ServerOptions options =
        serveOptions(1, 0.0, ArbiterPolicy::Uniform, 1);
    const double epoch_s = p.model.baselineSeconds() / 4.0;
    options.epoch_seconds = epoch_s;
    auto log = std::make_shared<std::vector<GateSnapshot>>();
    options.session.withGate(snapshotGate(log));
    Server server(p.app, p.table, p.model, options);

    std::vector<std::size_t> arrivals(10, 0);
    arrivals[0] = 1;
    arrivals[1] = 8;
    const auto report = server.serve(arrivals);
    ASSERT_EQ(report.total_jobs, 9u);

    const auto trace = firstMachineTrace(*log);
    ASSERT_GT(trace.size(), 2u);
    const std::size_t cores = sim::Machine().cores();
    const double crowded_share =
        static_cast<double>(cores) / static_cast<double>(cores + 1);

    // Alone in epoch 0: full share at every beat before the boundary.
    EXPECT_DOUBLE_EQ(trace.front().share, 1.0);
    for (const GateSnapshot &snap : trace) {
        if (snap.now < epoch_s) {
            EXPECT_DOUBLE_EQ(snap.share, 1.0)
                << "beat " << snap.beat;
        }
    }

    // The new share lands within one beat of the boundary: the first
    // beat at/after the boundary still began under the old lease, the
    // next one runs under the new terms.
    std::size_t boundary = trace.size();
    std::size_t adopted = trace.size();
    for (std::size_t i = 0; i < trace.size(); ++i) {
        if (boundary == trace.size() && trace[i].now >= epoch_s)
            boundary = i;
        if (adopted == trace.size() && trace[i].share != 1.0)
            adopted = i;
    }
    ASSERT_LT(boundary, trace.size());
    ASSERT_LT(adopted, trace.size()) << "share never re-read mid-run";
    EXPECT_LE(adopted - boundary, 1u)
        << "lease adopted " << (adopted - boundary)
        << " beats after the epoch boundary";
    EXPECT_NEAR(trace[adopted].share, crowded_share, 1e-12);

    // The spanning tenant felt one lease rewrite per epoch it
    // crossed (its record is tagged with the count and generation).
    ASSERT_FALSE(report.jobs.empty());
    const JobRecord &job0 = report.jobs.front();
    EXPECT_EQ(job0.job, 0u);
    EXPECT_GE(job0.lease_updates, 3u);
    EXPECT_GE(job0.lease_generation, 3u);
}

TEST(Server, InFlightTenantAdoptsUpdatedArbiterCapMidRun)
{
    // Two machines under a tight cluster cap with the utilisation-
    // proportional split. A lone tenant starts at epoch 0 (lightly
    // loaded cluster: generous budget, no DVFS cap); at epoch 1 a
    // crowd arrives and the re-split shrinks every machine's budget,
    // capping the P-state. The in-flight tenant must adopt the new
    // cap mid-run: with frozen launch-time leases its run (and its
    // latency) would be identical with and without the crowd.
    auto p = makePipeline();
    const auto makeOptions = [&](std::shared_ptr<std::vector<
                                     GateSnapshot>> log) {
        ServerOptions options = serveOptions(
            2, 280.0, ArbiterPolicy::UtilizationProportional, 1);
        options.epoch_seconds = p.model.baselineSeconds() / 4.0;
        if (log != nullptr)
            options.session.withGate(snapshotGate(log));
        return options;
    };

    std::vector<std::size_t> calm(12, 0);
    calm[0] = 1;
    std::vector<std::size_t> crowded = calm;
    crowded[1] = 20;

    Server calm_server(p.app, p.table, p.model, makeOptions(nullptr));
    auto log = std::make_shared<std::vector<GateSnapshot>>();
    Server crowded_server(p.app, p.table, p.model, makeOptions(log));
    const auto calm_report = calm_server.serve(calm);
    const auto crowded_report = crowded_server.serve(crowded);

    const JobRecord &calm_job = calm_report.jobs.front();
    const JobRecord &crowded_job = crowded_report.jobs.front();
    ASSERT_EQ(calm_job.job, 0u);
    ASSERT_EQ(crowded_job.job, 0u);

    // Job 0 launched identically in both serves (same epoch-0 state),
    // so any difference can only have reached it *mid-run* through
    // the lease. The crowd's arrival slows it down.
    EXPECT_GT(crowded_job.latency_s, calm_job.latency_s);
    EXPECT_GE(crowded_job.lease_updates, 3u);

    // And the mechanism is visible on its machine: uncapped while
    // alone, a nonzero DVFS cap after the crowd arrives.
    const auto trace = firstMachineTrace(*log);
    ASSERT_FALSE(trace.empty());
    EXPECT_EQ(trace.front().pstate_cap, 0u);
    bool saw_cap = false;
    for (const GateSnapshot &snap : trace) {
        if (snap.pstate_cap > 0) {
            saw_cap = true;
            EXPECT_GE(snap.now, crowded_server.options().epoch_seconds)
                << "capped before the epoch-1 arbitration";
        }
    }
    EXPECT_TRUE(saw_cap) << "arbiter cap never reached the tenant";
}

TEST(Server, CrossEpochServeIsBitIdenticalAcrossThreadCounts)
{
    // The persistent-tenant loop must stay deterministic when jobs
    // span many epochs and slices run on a pool: epochs are a third
    // of the job duration, so most tenants cross >= 3 boundaries.
    auto p = makePipeline();
    const auto arrivals = spikeArrivals(5);
    ServerOptions serial_options =
        serveOptions(2, 300.0, ArbiterPolicy::QosFeedback, 1);
    serial_options.epoch_seconds = p.model.baselineSeconds() / 3.0;
    serial_options.queue_depth = 12;
    ServerOptions pooled_options = serial_options;
    pooled_options.threads = 4;
    Server serial(p.app, p.table, p.model, serial_options);
    Server pooled(p.app, p.table, p.model, pooled_options);
    expectReportsIdentical(serial.serve(arrivals),
                           pooled.serve(arrivals));
}

TEST(Server, QueueDepthShedsAndCountsOverload)
{
    // One machine bounded at 4 in-flight jobs: a 6-job burst admits
    // 4 and sheds 2, and the shed count lands in the report.
    auto p = makePipeline();
    ServerOptions options =
        serveOptions(1, 0.0, ArbiterPolicy::Uniform, 1);
    options.queue_depth = 4;
    Server server(p.app, p.table, p.model, options);
    const auto report = server.serve(std::vector<std::size_t>{6, 0});
    EXPECT_EQ(report.total_jobs, 4u);
    EXPECT_EQ(report.total_shed, 2u);
    ASSERT_EQ(report.epochs.size(), 2u);
    EXPECT_EQ(report.epochs[0].arrivals, 4u);
    EXPECT_EQ(report.epochs[0].shed, 2u);
    EXPECT_EQ(report.jobs.size(), 4u);
    // The report carries the per-machine shed attribution too.
    EXPECT_EQ(report.shed_by_machine,
              (std::vector<std::size_t>{2}));
}

TEST(Server, TenantMachinesUseTheConfiguredMachineModel)
{
    // ServerOptions::machine must reach the per-tenant simulated
    // machines, not just the cluster's accounting: a single-core
    // host runs a lone tenant at full utilisation (1/1), the default
    // eight-core host at 1/8, so the recorded job energy differs.
    auto p = makePipeline();
    ServerOptions default_options =
        serveOptions(1, 0.0, ArbiterPolicy::Uniform, 1);
    ServerOptions small_options = default_options;
    small_options.machine.cores = 1;
    Server default_server(p.app, p.table, p.model, default_options);
    Server small_server(p.app, p.table, p.model, small_options);
    const auto default_report = default_server.serve(std::vector<std::size_t>{1});
    const auto small_report = small_server.serve(std::vector<std::size_t>{1});
    ASSERT_EQ(default_report.jobs.size(), 1u);
    ASSERT_EQ(small_report.jobs.size(), 1u);
    EXPECT_GT(small_report.jobs.front().energy_j,
              default_report.jobs.front().energy_j);
}

TEST(Server, PowerCapReducesFleetPower)
{
    // Long epochs (every job completes within its arrival epoch) keep
    // the occupancy identical between the capped and uncapped serves,
    // isolating the arbiter's effect on power.
    auto p = makePipeline();
    const std::vector<std::size_t> arrivals(8, 6);
    ServerOptions uncapped_options =
        serveOptions(2, 0.0, ArbiterPolicy::Uniform, 1);
    uncapped_options.epoch_seconds = 1.0;
    ServerOptions capped_options =
        serveOptions(2, 260.0, ArbiterPolicy::UtilizationProportional,
                     1);
    capped_options.epoch_seconds = 1.0;
    Server uncapped(p.app, p.table, p.model, uncapped_options);
    Server capped(p.app, p.table, p.model, capped_options);
    const auto base = uncapped.serve(arrivals);
    const auto shaved = capped.serve(arrivals);
    EXPECT_LT(shaved.mean_watts, base.mean_watts);
    // The per-epoch cluster power respects the cap whenever DVFS
    // alone could meet it (epochs that needed duty-cycle pauses meet
    // the cap on average, which the instantaneous stat can't show).
    for (const auto &epoch : shaved.epochs) {
        if (epoch.max_pause_ratio == 0.0) {
            EXPECT_LE(epoch.watts, 260.0 + 1e-9);
        }
    }
}

} // namespace
} // namespace powerdial::fleet
