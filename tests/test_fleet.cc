/** @file Tests for the fleet serving subsystem. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/calibration.h"
#include "core/identify.h"
#include "fleet/metrics_hub.h"
#include "fleet/power_arbiter.h"
#include "fleet/scheduler.h"
#include "fleet/server.h"
#include "toy_app.h"
#include "workload/arrivals.h"
#include "workload/load_trace.h"

namespace powerdial::fleet {
namespace {

using tests::ToyApp;

struct Pipeline
{
    ToyApp app;
    core::KnobTable table;
    core::ResponseModel model;
};

Pipeline
makePipeline(const ToyApp::Config &config = {})
{
    Pipeline p{ToyApp(config), {}, {}};
    auto ident = core::identifyKnobs(p.app);
    EXPECT_TRUE(ident.analysis.accepted);
    p.table = std::move(ident.table);
    p.model = core::calibrate(p.app, p.app.trainingInputs()).model;
    return p;
}

// ---------------------------------------------------------------------
// Scheduler placement properties.
// ---------------------------------------------------------------------

TEST(Scheduler, LeastLoadedMatchesAnalyticBalance)
{
    // Incremental least-loaded placement of k jobs must land on the
    // same per-machine counts as the analytic proportional balancer,
    // including non-divisible counts.
    for (const std::size_t jobs : {0u, 1u, 7u, 10u, 32u, 37u}) {
        sim::Cluster cluster(4, sim::Machine::Config{});
        Scheduler scheduler(cluster);
        for (std::size_t k = 0; k < jobs; ++k)
            scheduler.admit();
        EXPECT_EQ(cluster.activeCounts(), cluster.balance(jobs))
            << "jobs=" << jobs;
    }
}

TEST(Scheduler, LeastLoadedNeverOversubscribesBelowCapacity)
{
    sim::Cluster cluster(4, sim::Machine::Config{});
    Scheduler scheduler(cluster);
    for (std::size_t k = 0; k < cluster.peakInstances(); ++k) {
        scheduler.admit();
        for (std::size_t i = 0; i < cluster.size(); ++i)
            EXPECT_LE(cluster.activeOn(i),
                      cluster.machine(i).cores());
    }
}

TEST(Scheduler, LeastLoadedTieBreaksTowardLowestIndex)
{
    sim::Cluster cluster(3, sim::Machine::Config{});
    Scheduler scheduler(cluster);
    EXPECT_EQ(scheduler.admit(), 0u);
    EXPECT_EQ(scheduler.admit(), 1u);
    EXPECT_EQ(scheduler.admit(), 2u);
    EXPECT_EQ(scheduler.admit(), 0u); // All equal again.
}

TEST(Scheduler, ReleaseReopensTheMachine)
{
    sim::Cluster cluster(2, sim::Machine::Config{});
    Scheduler scheduler(cluster);
    EXPECT_EQ(scheduler.admit(), 0u);
    EXPECT_EQ(scheduler.admit(), 1u);
    scheduler.release(0);
    EXPECT_EQ(scheduler.admit(), 0u);
}

TEST(Scheduler, PowerAwarePacksSaturatedMachines)
{
    // The power model is linear in utilisation below saturation and
    // flat above it, so an already-saturated machine has zero
    // marginal power cost: power-aware placement packs it while
    // least-loaded would spread.
    sim::Cluster cluster(2, sim::Machine::Config{});
    Scheduler scheduler(cluster, makePowerAwarePlacement());
    const std::size_t cores = cluster.machine(0).cores();
    for (std::size_t k = 0; k < cores; ++k)
        cluster.place(0); // Saturate machine 0 by hand.
    EXPECT_EQ(scheduler.admit(), 0u);
    EXPECT_EQ(cluster.activeOn(0), cores + 1);
    EXPECT_EQ(cluster.activeOn(1), 0u);
}

TEST(Scheduler, PowerAwarePrefersCappedMachines)
{
    // A frequency-capped machine burns fewer watts per marginal job.
    sim::Cluster cluster(2, sim::Machine::Config{});
    const std::size_t slowest =
        cluster.machine(1).scale().states() - 1;
    cluster.machine(1).setPStateCap(slowest);
    Scheduler scheduler(cluster, makePowerAwarePlacement());
    EXPECT_EQ(scheduler.admit(), 1u);
}

// ---------------------------------------------------------------------
// Power arbiter: budget conservation and cap translation.
// ---------------------------------------------------------------------

void
placeSome(sim::Cluster &cluster, const std::vector<std::size_t> &counts)
{
    for (std::size_t i = 0; i < counts.size(); ++i)
        for (std::size_t k = 0; k < counts[i]; ++k)
            cluster.place(i);
}

TEST(PowerArbiter, BudgetsConserveTheCapUnderEveryPolicy)
{
    for (const ArbiterPolicy policy :
         {ArbiterPolicy::Uniform, ArbiterPolicy::UtilizationProportional,
          ArbiterPolicy::QosFeedback}) {
        sim::Cluster cluster(4, sim::Machine::Config{});
        placeSome(cluster, {9, 3, 0, 1});
        ArbiterOptions options;
        options.cluster_cap_watts = 520.0;
        options.policy = policy;
        PowerArbiter arbiter(options);
        const auto decision =
            arbiter.arbitrate(cluster, {0.05, 0.01, 0.0, 0.02});
        double total = 0.0;
        for (const double watts : decision.budget_watts)
            total += watts;
        EXPECT_LE(total, options.cluster_cap_watts + 1e-9)
            << arbiterPolicyName(policy);
        // Nothing is thrown away either: the split is exhaustive.
        EXPECT_NEAR(total, options.cluster_cap_watts, 1e-9)
            << arbiterPolicyName(policy);
    }
}

TEST(PowerArbiter, UniformSplitsEqually)
{
    sim::Cluster cluster(4, sim::Machine::Config{});
    placeSome(cluster, {8, 0, 0, 0});
    PowerArbiter arbiter({800.0, ArbiterPolicy::Uniform, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    for (const double watts : decision.budget_watts)
        EXPECT_DOUBLE_EQ(watts, 200.0);
}

TEST(PowerArbiter, UtilizationProportionalFavorsLoadedMachines)
{
    sim::Cluster cluster(2, sim::Machine::Config{});
    placeSome(cluster, {6, 2});
    PowerArbiter arbiter(
        {400.0, ArbiterPolicy::UtilizationProportional, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    EXPECT_GT(decision.budget_watts[0], decision.budget_watts[1]);
}

TEST(PowerArbiter, QosFeedbackShiftsBudgetTowardLossyMachines)
{
    // Same occupancy on both machines; the one reporting more tenant
    // QoS loss gets the bigger slice.
    sim::Cluster cluster(2, sim::Machine::Config{});
    placeSome(cluster, {4, 4});
    PowerArbiter arbiter({380.0, ArbiterPolicy::QosFeedback, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {0.08, 0.01});
    EXPECT_GT(decision.budget_watts[0], decision.budget_watts[1]);
    const double total =
        decision.budget_watts[0] + decision.budget_watts[1];
    EXPECT_NEAR(total, 380.0, 1e-9);
}

TEST(PowerArbiter, PstateCapMapsBudgetToFrequency)
{
    sim::Machine machine;
    const auto &model = machine.powerModel();
    // A budget covering peak power leaves the machine uncapped.
    EXPECT_EQ(PowerArbiter::pstateCapFor(machine,
                                         model.peakWatts() + 1.0, 1.0),
              0u);
    // A budget below even the slowest state's draw returns the
    // slowest state (duty-cycling covers the rest).
    EXPECT_EQ(PowerArbiter::pstateCapFor(machine,
                                         model.idleWatts() - 5.0, 1.0),
              machine.scale().states() - 1);
}

TEST(PowerArbiter, UncappedLeavesMachinesAtFullFrequency)
{
    sim::Cluster cluster(2, sim::Machine::Config{});
    cluster.machine(0).setPStateCap(3); // Stale cap from a prior epoch.
    PowerArbiter arbiter({0.0, ArbiterPolicy::QosFeedback, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    EXPECT_EQ(decision.pstate_cap[0], 0u);
    EXPECT_EQ(cluster.machine(0).pstate(), 0u);
    EXPECT_EQ(cluster.machine(0).pstateCap(), 0u);
    EXPECT_DOUBLE_EQ(decision.pause_ratio[0], 0.0);
}

TEST(PowerArbiter, TightBudgetInducesDutyCyclePauses)
{
    sim::Cluster cluster(1, sim::Machine::Config{});
    placeSome(cluster, {8});
    const double idle =
        cluster.machine(0).powerModel().idleWatts();
    // Between idle and the slowest state's loaded draw: the cap can
    // only be met on average by pausing tenants part of the time.
    PowerArbiter arbiter({idle + 10.0, ArbiterPolicy::Uniform, 0.5});
    const auto decision = arbiter.arbitrate(cluster, {});
    EXPECT_EQ(decision.pstate_cap[0],
              cluster.machine(0).scale().states() - 1);
    EXPECT_GT(decision.pause_ratio[0], 0.0);
}

TEST(PowerArbiter, RejectsBadFeedbackGain)
{
    EXPECT_THROW(PowerArbiter({100.0, ArbiterPolicy::QosFeedback, 1.5}),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// MetricsHub: lock-free fan-in, deterministic drain.
// ---------------------------------------------------------------------

TEST(MetricsHub, DrainMergesShardsSortedByJobId)
{
    MetricsHub hub(3);
    // Commit out of order across shards, as pool workers would.
    for (const auto &[worker, job] :
         std::vector<std::pair<std::size_t, std::size_t>>{
             {2, 4}, {0, 1}, {1, 3}, {0, 0}, {2, 2}}) {
        JobRecord seed;
        seed.job = job;
        auto probe = hub.probe(worker, seed);
        probe.onRunStart({});
        probe.onRunEnd({});
        sim::Machine machine;
        probe.finish(machine);
    }
    EXPECT_EQ(hub.committed(), 5u);
    const auto records = hub.drain();
    ASSERT_EQ(records.size(), 5u);
    for (std::size_t i = 0; i < records.size(); ++i)
        EXPECT_EQ(records[i].job, i);
    EXPECT_EQ(hub.committed(), 0u);
}

TEST(MetricsHub, FinishBeforeRunEndThrows)
{
    MetricsHub hub(1);
    auto probe = hub.probe(0, JobRecord{});
    sim::Machine machine;
    EXPECT_THROW(probe.finish(machine), std::logic_error);
}

TEST(MetricsHub, BadWorkerIndexThrows)
{
    MetricsHub hub(2);
    EXPECT_THROW(hub.probe(2, JobRecord{}), std::out_of_range);
}

TEST(MetricsHub, PercentileNearestRank)
{
    const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
    EXPECT_DOUBLE_EQ(percentileOf(sorted, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentileOf(sorted, 95.0), 5.0);
    EXPECT_DOUBLE_EQ(percentileOf(sorted, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentileOf({}, 50.0), 0.0);
}

// ---------------------------------------------------------------------
// End-to-end serves.
// ---------------------------------------------------------------------

ServerOptions
serveOptions(std::size_t machines, double cap_watts,
             ArbiterPolicy policy, std::size_t threads)
{
    ServerOptions options;
    options.machines = machines;
    options.threads = threads;
    options.arbiter.cluster_cap_watts = cap_watts;
    options.arbiter.policy = policy;
    return options;
}

std::vector<std::size_t>
spikeArrivals(std::size_t peak)
{
    workload::LoadTraceParams trace_params;
    trace_params.steps = 12;
    trace_params.spike_probability = 0.2;
    workload::PoissonArrivalParams arrival_params;
    arrival_params.peak_rate = static_cast<double>(peak);
    return workload::makePoissonArrivals(
        workload::makeLoadTrace(trace_params), arrival_params);
}

void
expectReportsIdentical(const FleetReport &a, const FleetReport &b)
{
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
        EXPECT_EQ(a.epochs[e].arrivals, b.epochs[e].arrivals);
        EXPECT_EQ(a.epochs[e].completed, b.epochs[e].completed);
        EXPECT_EQ(a.epochs[e].active, b.epochs[e].active);
        EXPECT_EQ(a.epochs[e].watts, b.epochs[e].watts);
        EXPECT_EQ(a.epochs[e].fleet_rate, b.epochs[e].fleet_rate);
        EXPECT_EQ(a.epochs[e].mean_qos_loss, b.epochs[e].mean_qos_loss);
    }
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].job, b.jobs[i].job);
        EXPECT_EQ(a.jobs[i].tenant, b.jobs[i].tenant);
        EXPECT_EQ(a.jobs[i].machine, b.jobs[i].machine);
        EXPECT_EQ(a.jobs[i].latency_s, b.jobs[i].latency_s);
        EXPECT_EQ(a.jobs[i].mean_rate, b.jobs[i].mean_rate);
        EXPECT_EQ(a.jobs[i].qos_loss, b.jobs[i].qos_loss);
        EXPECT_EQ(a.jobs[i].energy_j, b.jobs[i].energy_j);
        EXPECT_EQ(a.jobs[i].beats, b.jobs[i].beats);
    }
    EXPECT_EQ(a.mean_watts, b.mean_watts);
    EXPECT_EQ(a.mean_fleet_rate, b.mean_fleet_rate);
    EXPECT_EQ(a.mean_qos_loss, b.mean_qos_loss);
    EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
}

TEST(Server, ReportIsBitIdenticalAcrossThreadCounts)
{
    auto p = makePipeline();
    const auto arrivals = spikeArrivals(6);
    Server serial(p.app, p.table, p.model,
                  serveOptions(2, 350.0, ArbiterPolicy::QosFeedback, 1));
    Server pooled(p.app, p.table, p.model,
                  serveOptions(2, 350.0, ArbiterPolicy::QosFeedback, 4));
    expectReportsIdentical(serial.serve(arrivals),
                           pooled.serve(arrivals));
}

TEST(Server, ServesEveryArrivalAndAggregates)
{
    auto p = makePipeline();
    const std::vector<std::size_t> arrivals{3, 0, 5, 1};
    Server server(p.app, p.table, p.model,
                  serveOptions(2, 0.0, ArbiterPolicy::Uniform, 1));
    const auto report = server.serve(arrivals);
    EXPECT_EQ(report.total_jobs, 9u);
    EXPECT_EQ(report.jobs.size(), 9u);
    ASSERT_EQ(report.epochs.size(), 4u);
    EXPECT_EQ(report.epochs[0].arrivals, 3u);
    EXPECT_EQ(report.epochs[1].arrivals, 0u);
    EXPECT_GT(report.mean_watts, 0.0);
    EXPECT_GT(report.p95_latency_s, 0.0);
    EXPECT_GE(report.p95_latency_s, report.p50_latency_s);
    EXPECT_GE(report.p99_latency_s, report.p95_latency_s);
    // Tenants round-robin over the production inputs.
    EXPECT_EQ(report.tenants.size(),
              p.app.productionInputs().size());
}

TEST(Server, ConsolidatedFleetAbsorbsSpikeWithinQosEnvelope)
{
    // The paper's provisioning claim (section 3, 5.5): a consolidated
    // fleet rides a load spike by trading a little QoS instead of
    // adding machines. Baseline: enough machines that every job gets
    // a dedicated core. Consolidated: one machine, 4x oversubscribed
    // at the spike, uncapped. Dynamic knobs must hold per-job latency
    // near baseline while paying bounded calibrated QoS loss (ToyApp's
    // frontier tops out at 7% loss for an 8x speedup). 600-unit jobs
    // amortise each tenant's cold-start control transient (one
    // quantum at baseline knobs before the first re-plan).
    ToyApp::Config config;
    config.units = 600;
    auto p = makePipeline(config);
    const std::vector<std::size_t> arrivals{4, 4,  16, 16, 16, 16,
                                            16, 16, 4,  4,  4,  4};

    Server baseline(p.app, p.table, p.model,
                    serveOptions(4, 0.0, ArbiterPolicy::Uniform, 1));
    Server consolidated(
        p.app, p.table, p.model,
        serveOptions(1, 0.0, ArbiterPolicy::Uniform, 1));
    const auto base = baseline.serve(arrivals);
    const auto cons = consolidated.serve(arrivals);

    ASSERT_GT(base.total_jobs, 0u);
    EXPECT_EQ(base.total_jobs, cons.total_jobs);
    // The over-provisioned baseline serves everything at the
    // calibrated baseline latency with no QoS loss.
    EXPECT_NEAR(base.p95_latency_s, p.model.baselineSeconds(),
                0.01 * p.model.baselineSeconds());
    EXPECT_NEAR(base.mean_qos_loss, 0.0, 1e-6);
    // Latency envelope: the consolidated fleet holds p95 job latency
    // within 50% of baseline even while 4x oversubscribed (observed
    // ~1.26x; the slack above that is the cold-start transient).
    EXPECT_LE(cons.p95_latency_s, 1.5 * base.p95_latency_s);
    // The speedup came from somewhere: calibrated QoS loss is paid,
    // but stays within the response model's admissible range.
    EXPECT_GT(cons.mean_qos_loss, base.mean_qos_loss);
    EXPECT_LE(cons.mean_qos_loss, 0.07 + 1e-9);
    // And the headline: fewer machines, much less power (Figure 8).
    EXPECT_LT(cons.mean_watts, 0.5 * base.mean_watts);
}

TEST(Server, CallerGateComposesWithArbitrationPauses)
{
    // A user-supplied session gate must keep firing even on tenants
    // the arbiter duty-cycles (the server composes the two gates
    // rather than replacing one with the other).
    auto p = makePipeline();
    const double idle =
        sim::Machine().powerModel().idleWatts();
    // One machine, budget between idle and the slowest state's
    // loaded draw: every epoch needs pauses.
    ServerOptions options =
        serveOptions(1, idle + 10.0, ArbiterPolicy::Uniform, 1);
    auto calls = std::make_shared<std::size_t>(0);
    options.session.withGate(
        [calls](core::BeatGateContext &) { ++*calls; });
    Server server(p.app, p.table, p.model, options);
    const auto report = server.serve({2, 2});
    ASSERT_EQ(report.total_jobs, 4u);
    double max_pause = 0.0;
    for (const auto &epoch : report.epochs)
        max_pause = std::max(max_pause, epoch.max_pause_ratio);
    EXPECT_GT(max_pause, 0.0);
    // Every beat of every tenant saw the user gate.
    std::size_t beats = 0;
    for (const auto &job : report.jobs)
        beats += job.beats;
    EXPECT_EQ(*calls, beats);
}

TEST(Server, PowerCapReducesFleetPower)
{
    // Long epochs (every job completes within its arrival epoch) keep
    // the occupancy identical between the capped and uncapped serves,
    // isolating the arbiter's effect on power.
    auto p = makePipeline();
    const std::vector<std::size_t> arrivals(8, 6);
    ServerOptions uncapped_options =
        serveOptions(2, 0.0, ArbiterPolicy::Uniform, 1);
    uncapped_options.epoch_seconds = 1.0;
    ServerOptions capped_options =
        serveOptions(2, 260.0, ArbiterPolicy::UtilizationProportional,
                     1);
    capped_options.epoch_seconds = 1.0;
    Server uncapped(p.app, p.table, p.model, uncapped_options);
    Server capped(p.app, p.table, p.model, capped_options);
    const auto base = uncapped.serve(arrivals);
    const auto shaved = capped.serve(arrivals);
    EXPECT_LT(shaved.mean_watts, base.mean_watts);
    // The per-epoch cluster power respects the cap whenever DVFS
    // alone could meet it (epochs that needed duty-cycle pauses meet
    // the cap on average, which the instantaneous stat can't show).
    for (const auto &epoch : shaved.epochs) {
        if (epoch.max_pause_ratio == 0.0) {
            EXPECT_LE(epoch.watts, 260.0 + 1e-9);
        }
    }
}

} // namespace
} // namespace powerdial::fleet
