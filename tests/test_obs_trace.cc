/**
 * @file
 * The structured-trace subsystem (src/obs): sink fan-in determinism,
 * category/severity filtering, ring bounds, exporter well-formedness,
 * and the fleet differential — the trace byte stream out of a served
 * fleet must be identical at any thread count and across the epoch
 * and epoch-compat engines, and must carry enough decision context to
 * answer "why was job N shed?" from the file alone.
 *
 * The thread count for the parallel side comes from
 * POWERDIAL_TEST_THREADS (default 4), mirroring the calibration and
 * fleet differential suites.
 */
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/admission.h"
#include "fleet_scenarios.h"
#include "obs/trace_json.h"
#include "obs/trace_sink.h"
#include "workload/traffic_mix.h"

namespace powerdial::fleet::tests {
namespace {

std::size_t
testThreads()
{
    const char *env = std::getenv("POWERDIAL_TEST_THREADS");
    if (env != nullptr) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0)
            return static_cast<std::size_t>(n);
    }
    return 4;
}

// -------------------------------------------------------------------
// A minimal JSON validity checker (recursive descent over the full
// grammar minus unicode escapes' codepoint semantics). The CI smoke
// job re-validates with python's json module; this keeps the property
// inside the test suite with no interpreter dependency.
// -------------------------------------------------------------------
class JsonChecker
{
  public:
    static bool
    valid(const std::string &text)
    {
        JsonChecker checker(text);
        checker.skipWs();
        if (!checker.value())
            return false;
        checker.skipWs();
        return checker.pos_ == text.size();
    }

  private:
    explicit JsonChecker(const std::string &text) : text_(&text) {}

    char
    peek() const
    {
        return pos_ < text_->size() ? (*text_)[pos_] : '\0';
    }
    bool
    consume(char c)
    {
        if (peek() != c)
            return false;
        ++pos_;
        return true;
    }
    void
    skipWs()
    {
        while (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
               peek() == '\r')
            ++pos_;
    }
    bool
    literal(const char *word)
    {
        for (const char *p = word; *p != '\0'; ++p)
            if (!consume(*p))
                return false;
        return true;
    }
    bool
    string()
    {
        if (!consume('"'))
            return false;
        while (pos_ < text_->size()) {
            const char c = (*text_)[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_->size())
                    return false;
                ++pos_;
            }
        }
        return false;
    }
    bool
    number()
    {
        consume('-');
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            return false;
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++pos_;
        if (consume('.')) {
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                return false;
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++pos_;
        }
        return true;
    }
    bool
    object()
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            if (!value())
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }
    bool
    array()
    {
        if (!consume('['))
            return false;
        skipWs();
        if (consume(']'))
            return true;
        for (;;) {
            if (!value())
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }
    bool
    value()
    {
        skipWs();
        switch (peek()) {
        case '{':
            return object();
        case '[':
            return array();
        case '"':
            return string();
        case 't':
            return literal("true");
        case 'f':
            return literal("false");
        case 'n':
            return literal("null");
        default:
            return number();
        }
    }

    const std::string *text_;
    std::size_t pos_ = 0;
};

// -------------------------------------------------------------------
// Sink unit tests.
// -------------------------------------------------------------------

obs::TraceRecord
stamped(double time_s, std::size_t stream, std::size_t seq)
{
    obs::TraceRecord record;
    record.kind = obs::TraceKind::Beat;
    record.time_s = time_s;
    record.stream = stream;
    record.seq = seq;
    return record;
}

TEST(TraceSink, DrainMergesShardsByTimeStreamSeq)
{
    obs::TraceSink sink;
    sink.beginServe(3);
    // Interleave records across workers out of time order; the drain
    // order must depend only on (time_s, stream, seq).
    sink.emit(2, stamped(3.0, 5, 0));
    sink.emit(0, stamped(1.0, 7, 0));
    sink.emit(1, stamped(2.0, 5, 1));
    sink.emit(0, stamped(2.0, 5, 0));
    sink.emit(1, stamped(1.0, 2, 0));
    EXPECT_EQ(sink.recorded(), 5u);

    const auto records = sink.drain();
    ASSERT_EQ(records.size(), 5u);
    EXPECT_EQ(records[0].stream, 2u); // (1.0, 2, 0)
    EXPECT_EQ(records[1].stream, 7u); // (1.0, 7, 0)
    EXPECT_EQ(records[2].seq, 0u);    // (2.0, 5, 0)
    EXPECT_EQ(records[3].seq, 1u);    // (2.0, 5, 1)
    EXPECT_EQ(records[4].time_s, 3.0);
    EXPECT_EQ(sink.recorded(), 0u); // Drain clears.
}

TEST(TraceSink, FleetPlaneAssignsStreamZeroAndMonotoneSeq)
{
    obs::TraceSink sink;
    sink.beginServe(2);
    obs::TraceRecord record;
    record.kind = obs::TraceKind::Admit;
    record.time_s = 1.0;
    sink.emitFleet(record);
    record.time_s = 2.0;
    sink.emitFleet(record);
    const auto records = sink.drain();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].stream, 0u);
    EXPECT_EQ(records[1].stream, 0u);
    EXPECT_EQ(records[0].seq, 0u);
    EXPECT_EQ(records[1].seq, 1u);
}

TEST(TraceSink, RingKeepsNewestAndCountsDropped)
{
    obs::TraceConfig config;
    config.ring_capacity = 3;
    obs::TraceSink sink(config);
    sink.beginServe(1);
    for (std::size_t i = 0; i < 7; ++i)
        sink.emit(0, stamped(static_cast<double>(i), 1, i));
    EXPECT_EQ(sink.recorded(), 3u);
    EXPECT_EQ(sink.dropped(), 4u);
    const auto records = sink.drain();
    ASSERT_EQ(records.size(), 3u);
    // The newest three, oldest-first after the ring unwrap + sort.
    EXPECT_EQ(records[0].seq, 4u);
    EXPECT_EQ(records[1].seq, 5u);
    EXPECT_EQ(records[2].seq, 6u);
}

TEST(TraceSink, WantsFiltersByCategoryAndSeverity)
{
    obs::TraceConfig config;
    config.categories = obs::kCatAdmission | obs::kCatControl;
    config.min_severity = obs::Severity::Info;
    obs::TraceSink sink(config);
    EXPECT_TRUE(sink.wants(obs::kCatAdmission, obs::Severity::Warn));
    EXPECT_TRUE(sink.wants(obs::kCatControl, obs::Severity::Info));
    EXPECT_FALSE(sink.wants(obs::kCatBeat, obs::Severity::Warn));
    EXPECT_FALSE(sink.wants(obs::kCatControl, obs::Severity::Debug));
}

TEST(TraceSink, ParseCategories)
{
    EXPECT_EQ(obs::parseCategories("all"), obs::kCatAll);
    EXPECT_EQ(obs::parseCategories("none"), 0u);
    EXPECT_EQ(obs::parseCategories("control,beat"),
              obs::kCatControl | obs::kCatBeat);
    EXPECT_EQ(obs::parseCategories("fleet"),
              obs::kCatAdmission | obs::kCatPlacement |
                  obs::kCatArbitration);
    EXPECT_EQ(obs::parseCategories("lifecycle,admission"),
              obs::kCatLifecycle | obs::kCatAdmission);
    EXPECT_FALSE(obs::parseCategories("bogus").has_value());
    EXPECT_FALSE(obs::parseCategories("control,").has_value());
}

// -------------------------------------------------------------------
// Fleet differential: a served scenario's trace bytes must not depend
// on the thread count or on which engine replays the epoch schedule.
// -------------------------------------------------------------------

struct TracedServe
{
    FleetReport report;
    std::vector<obs::TraceRecord> records;
    std::string chrome;
    std::string jsonl;
};

TracedServe
serveTraced(Pipeline &p, const FleetScenario &scenario,
            EngineMode engine, bool epoch_compat, std::size_t threads)
{
    obs::TraceSink sink;
    ServerOptions options = scenario.options;
    options.engine = engine;
    options.event.epoch_compat = epoch_compat;
    options.threads = threads;
    options.trace = &sink;
    Server server(p.app, p.table, p.model, options);
    TracedServe out;
    out.report = server.serve(scenario.arrivals);
    out.records = sink.drain();
    std::ostringstream chrome;
    obs::writeChromeTrace(chrome, out.records);
    out.chrome = chrome.str();
    std::ostringstream jsonl;
    obs::writeJsonl(jsonl, out.records);
    out.jsonl = jsonl.str();
    return out;
}

TEST(TraceDifferential, BytesIdenticalAcrossThreadCounts)
{
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    const std::size_t threads = testThreads();
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed " << seed);
        const auto scenario = makeFleetScenario(
            seed, baseline_s, p.app.productionInputs());
        for (const bool compat : {false, true}) {
            SCOPED_TRACE(::testing::Message()
                         << (compat ? "event-compat" : "event"));
            const auto serial = serveTraced(
                p, scenario, EngineMode::Event, compat, 1);
            const auto parallel = serveTraced(
                p, scenario, EngineMode::Event, compat, threads);
            EXPECT_EQ(serial.chrome, parallel.chrome);
            EXPECT_EQ(serial.jsonl, parallel.jsonl);
            expectReportsIdentical(serial.report, parallel.report);
        }
        const auto serial =
            serveTraced(p, scenario, EngineMode::Epoch, false, 1);
        const auto parallel = serveTraced(p, scenario,
                                          EngineMode::Epoch, false,
                                          threads);
        EXPECT_EQ(serial.chrome, parallel.chrome);
        EXPECT_EQ(serial.jsonl, parallel.jsonl);
    }
}

TEST(TraceDifferential, EpochAndCompatEnginesEmitIdenticalTraces)
{
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    for (std::uint64_t seed = 5; seed <= 8; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed " << seed);
        const auto scenario = makeFleetScenario(
            seed, baseline_s, p.app.productionInputs());
        const auto epoch =
            serveTraced(p, scenario, EngineMode::Epoch, false, 1);
        const auto compat =
            serveTraced(p, scenario, EngineMode::Event, true, 1);
        EXPECT_EQ(epoch.chrome, compat.chrome);
        EXPECT_EQ(epoch.jsonl, compat.jsonl);
        expectReportsIdentical(epoch.report, compat.report);
    }
}

TEST(TraceDifferential, ExportsAreWellFormed)
{
    auto p = makePipeline();
    const auto scenario = makeFleetScenario(
        11, p.model.baselineSeconds(), p.app.productionInputs());
    const auto traced =
        serveTraced(p, scenario, EngineMode::Event, false, 1);
    ASSERT_FALSE(traced.records.empty());
    EXPECT_TRUE(JsonChecker::valid(traced.chrome));

    // JSONL: every line is one standalone JSON object.
    std::istringstream lines(traced.jsonl);
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        SCOPED_TRACE(::testing::Message() << "line " << count);
        EXPECT_TRUE(JsonChecker::valid(line));
        ++count;
    }
    EXPECT_EQ(count, traced.records.size());
}

TEST(TraceDifferential, StreamsAreMonotoneAndDrainIsSorted)
{
    auto p = makePipeline();
    const auto scenario = makeFleetScenario(
        12, p.model.baselineSeconds(), p.app.productionInputs());
    const auto traced =
        serveTraced(p, scenario, EngineMode::Epoch, false, 1);
    ASSERT_FALSE(traced.records.empty());

    // Global drain order: sorted by (time_s, stream, seq), no ties.
    for (std::size_t i = 1; i < traced.records.size(); ++i) {
        const auto &a = traced.records[i - 1];
        const auto &b = traced.records[i];
        const bool ordered = a.time_s < b.time_s ||
            (a.time_s == b.time_s &&
             (a.stream < b.stream ||
              (a.stream == b.stream && a.seq < b.seq)));
        EXPECT_TRUE(ordered) << "records " << i - 1 << ", " << i;
    }

    // Per stream: timestamps non-decreasing, seq dense from zero.
    std::map<std::size_t, std::pair<double, std::size_t>> last;
    for (const auto &record : traced.records) {
        const auto it = last.find(record.stream);
        if (it == last.end()) {
            EXPECT_EQ(record.seq, 0u)
                << "stream " << record.stream;
        } else {
            EXPECT_GE(record.time_s, it->second.first)
                << "stream " << record.stream;
            EXPECT_EQ(record.seq, it->second.second + 1)
                << "stream " << record.stream;
        }
        last[record.stream] = {record.time_s, record.seq};
    }
}

// -------------------------------------------------------------------
// Decision attribution: the shed records alone must answer "why was
// this offer turned away" — cause, the admission math, and the class.
// -------------------------------------------------------------------

TEST(TraceAttribution, CapacityShedsCarryCauseAndContext)
{
    auto p = makePipeline();
    obs::TraceSink sink;
    ServerOptions options;
    options.machines = 1;
    options.queue_depth = 1;
    options.threads = 1;
    options.epoch_seconds = p.model.baselineSeconds();
    options.trace = &sink;
    Server server(p.app, p.table, p.model, options);
    // Four arrivals into a one-slot machine: sheds guaranteed.
    const auto report = server.serve({4, 4});
    ASSERT_GT(report.total_shed, 0u);

    const auto records = sink.drain();
    std::size_t sheds = 0;
    std::vector<std::size_t> admitted_offers;
    for (const auto &record : records)
        if (record.kind == obs::TraceKind::Admit)
            admitted_offers.push_back(record.offer);
    for (const auto &record : records) {
        if (record.kind != obs::TraceKind::Shed)
            continue;
        ++sheds;
        ASSERT_NE(record.cause, nullptr);
        EXPECT_STREQ(record.cause, "capacity");
        EXPECT_EQ(record.severity, obs::Severity::Warn);
        EXPECT_NE(record.offer, obs::kNoIndex);
        EXPECT_EQ(record.job_class, 0u);
        // A shed offer never also appears as an admit.
        EXPECT_EQ(std::count(admitted_offers.begin(),
                             admitted_offers.end(), record.offer),
                  0);
    }
    EXPECT_EQ(sheds, report.total_shed);
    EXPECT_EQ(admitted_offers.size(), report.total_jobs);
}

TEST(TraceAttribution, SloShedsNamePredictedLatencyAndMargin)
{
    auto p = makePipeline();
    obs::TraceSink sink;
    ServerOptions options;
    options.machines = 1;
    options.queue_depth = 4;
    options.threads = 1;
    options.epoch_seconds = p.model.baselineSeconds();
    options.admission = makePredictiveAdmission();
    options.trace = &sink;
    Server server(p.app, p.table, p.model, options);
    // Deadlines far below the baseline duration: every offer is a
    // predicted SLO violation.
    workload::OfferedJob job;
    job.tenant = 0;
    job.job_class = 1;
    job.deadline_s = p.model.baselineSeconds() * 0.01;
    const auto report = server.serve(
        std::vector<std::vector<workload::OfferedJob>>{{job, job}});
    ASSERT_GT(report.total_shed, 0u);

    std::size_t sheds = 0;
    for (const auto &record : sink.drain()) {
        if (record.kind != obs::TraceKind::Shed)
            continue;
        ++sheds;
        ASSERT_NE(record.cause, nullptr);
        EXPECT_STREQ(record.cause, "slo");
        EXPECT_EQ(record.job_class, 1u);
        EXPECT_EQ(record.deadline_s, job.deadline_s);
        // The math that justified the verdict rides along.
        EXPECT_GT(record.predicted_s, 0.0);
        EXPECT_GT(record.predicted_s * record.margin,
                  record.deadline_s);
    }
    EXPECT_EQ(sheds, report.total_shed);
}

// -------------------------------------------------------------------
// Latency breakdown: the per-job components must reconstruct the
// job's latency (up to float accumulation order).
// -------------------------------------------------------------------

TEST(TraceBreakdown, ComponentsSumToLatency)
{
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    std::size_t jobs_checked = 0;
    for (std::uint64_t seed = 21; seed <= 24; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed " << seed);
        const auto scenario = makeFleetScenario(
            seed, baseline_s, p.app.productionInputs());
        Server server(p.app, p.table, p.model, scenario.options);
        const auto report = server.serve(scenario.arrivals);
        for (const auto &job : report.jobs) {
            SCOPED_TRACE(::testing::Message() << "job " << job.job);
            const double sum = job.service_s + job.queue_share_s +
                job.class_deficit_s + job.pause_s;
            EXPECT_NEAR(job.latency_s, sum,
                        1e-7 * std::max(1.0, job.latency_s));
            EXPECT_GE(job.service_s, 0.0);
            EXPECT_GE(job.queue_share_s, 0.0);
            EXPECT_GE(job.class_deficit_s, 0.0);
            EXPECT_GE(job.pause_s, 0.0);
            ++jobs_checked;
        }
    }
    EXPECT_GT(jobs_checked, 0u);
}

} // namespace
} // namespace powerdial::fleet::tests
