/** @file Tests for the dynamic knob identification pipeline. */
#include <gtest/gtest.h>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/identify.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

TEST(Identify, ToyAppAccepted)
{
    tests::ToyApp app;
    const auto result = identifyKnobs(app);
    ASSERT_TRUE(result.analysis.accepted);
    ASSERT_EQ(result.analysis.control_variables.size(), 1u);
    EXPECT_EQ(result.analysis.control_variables[0].name, "k");
}

TEST(Identify, TableAppliesRecordedValues)
{
    tests::ToyApp app;
    auto result = identifyKnobs(app);
    ASSERT_TRUE(result.analysis.accepted);
    // Applying combination 2 must install k = 4 in the app.
    result.table.apply(2);
    EXPECT_DOUBLE_EQ(app.k(), 4.0);
    result.table.apply(0);
    EXPECT_DOUBLE_EQ(app.k(), 1.0);
}

TEST(Identify, ReportNamesParameters)
{
    tests::ToyApp app;
    const auto result = identifyKnobs(app);
    EXPECT_NE(result.report.find("ACCEPTED"), std::string::npos);
    EXPECT_NE(result.report.find("k"), std::string::npos);
}

/** Small app configurations for the per-benchmark pipeline checks. */
apps::swaptions::SwaptionsConfig
smallSwaptions()
{
    apps::swaptions::SwaptionsConfig config;
    config.sim_values = {100, 200, 400};
    config.inputs = 2;
    config.swaptions_per_input = 4;
    return config;
}

TEST(Identify, SwaptionsControlVariables)
{
    apps::swaptions::SwaptionsApp app(smallSwaptions());
    auto result = identifyKnobs(app);
    ASSERT_TRUE(result.analysis.accepted);
    // num_trials identified; the untainted seed_base excluded.
    EXPECT_GE(result.analysis.indexOf("num_trials"), 0);
    EXPECT_EQ(result.analysis.indexOf("seed_base"), -1);
    result.table.apply(1);
    EXPECT_EQ(app.numTrials(), 200u);
}

TEST(Identify, VidencControlVariables)
{
    apps::videnc::VidencConfig config;
    config.subme_values = {1, 4, 7};
    config.merange_values = {1, 16};
    config.ref_values = {1, 3};
    config.inputs = 2;
    config.video.width = 32;
    config.video.height = 32;
    config.video.frames = 2;
    apps::videnc::VidencApp app(config);
    auto result = identifyKnobs(app);
    ASSERT_TRUE(result.analysis.accepted);
    EXPECT_EQ(result.analysis.control_variables.size(), 3u);
    EXPECT_EQ(result.analysis.indexOf("qstep"), -1); // Untainted.
    // Combination {subme=7, merange=16, ref=3} is the last one.
    result.table.apply(app.knobSpace().combinations() - 1);
    EXPECT_EQ(app.effort().subpel_rounds, 6);
    EXPECT_EQ(app.effort().merange, 16);
    EXPECT_EQ(app.effort().refs, 3);
}

TEST(Identify, BodytrackVectorControlVariables)
{
    apps::bodytrack::BodytrackConfig config;
    config.particle_values = {50, 100};
    config.layer_values = {1, 3};
    config.inputs = 2;
    config.frames = 4;
    apps::bodytrack::BodytrackApp app(config);
    auto result = identifyKnobs(app);
    ASSERT_TRUE(result.analysis.accepted);
    EXPECT_GE(result.analysis.indexOf("anneal_betas"), 0);
    // Applying a 3-layer combination installs 3-entry schedules.
    const auto combo = app.knobSpace().findCombination({100, 3});
    result.table.apply(combo);
    EXPECT_EQ(app.filterParams().layers, 3u);
    EXPECT_EQ(app.filterParams().betas.size(), 3u);
    EXPECT_EQ(app.filterParams().sigmas.size(), 3u);
    // And a 1-layer combination shrinks them.
    result.table.apply(app.knobSpace().findCombination({50, 1}));
    EXPECT_EQ(app.filterParams().betas.size(), 1u);
}

TEST(Identify, SearchxControlVariables)
{
    apps::searchx::SearchxConfig config;
    config.corpus.documents = 40;
    config.corpus.words_per_doc = 60;
    config.inputs = 2;
    config.queries_per_input = 4;
    apps::searchx::SearchxApp app(config);
    auto result = identifyKnobs(app);
    ASSERT_TRUE(result.analysis.accepted);
    result.table.apply(0);
    EXPECT_EQ(app.maxResults(), 5u);
}

TEST(Identify, AllBenchmarkReportsAreAuditable)
{
    // The paper's workflow: a developer reads the control-variable
    // report to audit the analysis. Every benchmark must produce one
    // that names each control variable and its source parameter.
    apps::swaptions::SwaptionsApp app(smallSwaptions());
    const auto result = identifyKnobs(app);
    EXPECT_NE(result.report.find("num_trials"), std::string::npos);
    EXPECT_NE(result.report.find("-sm"), std::string::npos);
    EXPECT_NE(result.report.find("pricer.cc"), std::string::npos);
}

} // namespace
} // namespace powerdial::core
