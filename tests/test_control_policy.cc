/** @file Unit and property tests for the ControlPolicy seam. */
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/control_policy.h"

namespace powerdial::core {
namespace {

ControlSetup
setup(double target = 10.0)
{
    ControlSetup s;
    s.baseline_rate = 10.0;
    s.target_rate = target;
    s.min_speedup = 1.0;
    s.max_speedup = 100.0;
    return s;
}

/**
 * Simulate the closed loop of paper Equation 2: the plant responds
 * with h(t+1) = b_effective * s(t). Returns the heart-rate series.
 */
std::vector<double>
simulateLoop(ControlPolicy &policy, double b_effective, int steps,
             double h0)
{
    std::vector<double> rates{h0};
    double h = h0;
    for (int t = 0; t < steps; ++t) {
        const double s = policy.update(h);
        h = b_effective * s;
        rates.push_back(h);
    }
    return rates;
}

// ---------------------------------------------------------------------------
// DeadbeatPolicy
// ---------------------------------------------------------------------------

TEST(DeadbeatPolicy, MatchesHeartRateControllerStepForStep)
{
    // The policy is a seam over the paper's law: every update must
    // return the exact bits HeartRateController produces.
    DeadbeatPolicy policy(0.75);
    auto s = setup(14.0);
    policy.begin(s);

    ControllerConfig cc;
    cc.baseline_rate = s.baseline_rate;
    cc.target_rate = s.target_rate;
    cc.gain = 0.75;
    cc.min_speedup = s.min_speedup;
    cc.max_speedup = s.max_speedup;
    HeartRateController reference(cc);

    double h = 6.0;
    for (int t = 0; t < 50; ++t) {
        EXPECT_EQ(policy.update(h), reference.update(h));
        h = 3.0 + 1.7 * static_cast<double>(t % 7);
    }
}

TEST(DeadbeatPolicy, DeadbeatConvergesInOneStepWithExactModel)
{
    DeadbeatPolicy policy;
    auto s = setup(15.0);
    policy.begin(s);
    const auto rates = simulateLoop(policy, 10.0, 5, 10.0);
    for (std::size_t t = 1; t < rates.size(); ++t)
        EXPECT_NEAR(rates[t], 15.0, 1e-9);
}

TEST(DeadbeatPolicy, BeginResetsIntegrator)
{
    DeadbeatPolicy policy;
    policy.begin(setup());
    policy.update(2.0); // Wind the integrator up.
    policy.begin(setup());
    // Fresh integrator: first command from the floor again.
    const double first = policy.update(10.0);
    EXPECT_DOUBLE_EQ(first, 1.0);
}

TEST(DeadbeatPolicy, Validation)
{
    EXPECT_THROW(DeadbeatPolicy{0.0}, std::invalid_argument);
    EXPECT_THROW(DeadbeatPolicy{-1.0}, std::invalid_argument);
    DeadbeatPolicy fresh;
    EXPECT_THROW(fresh.update(1.0), std::logic_error);
    EXPECT_EQ(DeadbeatPolicy().name(), "deadbeat");
    EXPECT_EQ(DeadbeatPolicy(0.5).name(), "integral");
}

// ---------------------------------------------------------------------------
// PidPolicy
// ---------------------------------------------------------------------------

TEST(PidPolicy, PureIntegralReducesToDeadbeat)
{
    // kp = kd = 0, ki = 1: the PID law degenerates to the paper's
    // deadbeat integral law.
    PidGains gains;
    gains.kp = 0.0;
    gains.ki = 1.0;
    gains.kd = 0.0;
    PidPolicy pid(gains);
    pid.begin(setup(15.0));
    DeadbeatPolicy deadbeat;
    deadbeat.begin(setup(15.0));
    double h = 10.0;
    for (int t = 0; t < 20; ++t) {
        EXPECT_NEAR(pid.update(h), deadbeat.update(h), 1e-12);
        h = 5.0 + static_cast<double>(t);
    }
}

TEST(PidPolicy, ConvergesUnderCapacityDisturbance)
{
    // 2.4 -> 1.6 GHz cap: b_eff = (2/3) b. The loop must converge to
    // the target with zero steady-state error (the integral term).
    PidPolicy policy;
    policy.begin(setup());
    const double b_eff = 10.0 * (1.6 / 2.4);
    const auto rates = simulateLoop(policy, b_eff, 120, b_eff);
    EXPECT_NEAR(rates.back(), 10.0, 1e-6);
}

TEST(PidPolicy, ConvergesFromAboveTarget)
{
    PidPolicy policy;
    policy.begin(setup());
    const auto rates = simulateLoop(policy, 10.0, 60, 15.0);
    EXPECT_NEAR(rates.back(), 10.0, 1e-6);
}

TEST(PidPolicy, AntiWindupKeepsCommandInRange)
{
    auto s = setup();
    s.max_speedup = 2.0;
    PidPolicy policy;
    policy.begin(s);
    // Persistent large error: the command must saturate, not wind up.
    for (int t = 0; t < 50; ++t) {
        const double cmd = policy.update(0.5);
        EXPECT_GE(cmd, s.min_speedup);
        EXPECT_LE(cmd, s.max_speedup);
    }
    // After the disturbance clears, recovery must be prompt (no
    // accumulated windup to burn off): within a few periods the
    // command leaves the rail.
    double cmd = 0.0;
    for (int t = 0; t < 5; ++t)
        cmd = policy.update(25.0); // Far above target.
    EXPECT_LT(cmd, 2.0);
}

TEST(PidPolicy, DerivativeDampsStep)
{
    // A derivative term must not destabilise the loop on a target
    // step; the loop still converges. (Gains checked stable by the
    // Jury criterion: poles {0.5, 0.29, -0.69} at r = 1.)
    PidGains gains;
    gains.kp = 0.2;
    gains.ki = 0.6;
    gains.kd = 0.1;
    PidPolicy policy(gains);
    policy.begin(setup(20.0));
    const auto rates = simulateLoop(policy, 10.0, 120, 10.0);
    EXPECT_NEAR(rates.back(), 20.0, 1e-6);
}

TEST(PidPolicy, Validation)
{
    PidGains bad;
    bad.ki = 0.0;
    EXPECT_THROW(PidPolicy{bad}, std::invalid_argument);
    bad = PidGains{};
    bad.kp = -0.1;
    EXPECT_THROW(PidPolicy{bad}, std::invalid_argument);
    PidPolicy fresh;
    EXPECT_THROW(fresh.update(1.0), std::logic_error);
    auto s = setup();
    s.baseline_rate = 0.0;
    PidPolicy policy;
    EXPECT_THROW(policy.begin(s), std::invalid_argument);
    EXPECT_EQ(PidPolicy().name(), "pid");
}

/** Property: the PID loop converges for a range of plant gains. */
class PidStability : public ::testing::TestWithParam<double>
{
};

TEST_P(PidStability, ConvergesAcrossPlantGains)
{
    const double b_eff = 10.0 * GetParam();
    // The actuation floor (min_speedup = 1) makes any target below
    // b_eff unreachable, so for fast plants aim 20% above the floor
    // output instead; the loop dynamics (and the Jury analysis) are
    // identical for any reachable setpoint.
    const double target = std::max(10.0, 1.2 * b_eff);
    PidPolicy policy;
    policy.begin(setup(target));
    const auto rates = simulateLoop(policy, b_eff, 200, b_eff);
    EXPECT_NEAR(rates.back(), target, 1e-3)
        << "plant scale " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PlantScales, PidStability,
                         ::testing::Values(0.4, 2.0 / 3.0, 1.0, 1.5));

// ---------------------------------------------------------------------------
// GainScheduledPolicy
// ---------------------------------------------------------------------------

TEST(GainScheduledPolicy, ConvergesDeadbeatWithExactModel)
{
    GainScheduledPolicy policy;
    policy.begin(setup(15.0));
    const auto rates = simulateLoop(policy, 10.0, 10, 10.0);
    EXPECT_NEAR(rates.back(), 15.0, 1e-6);
}

TEST(GainScheduledPolicy, EstimatesPlantGainUnderDisturbance)
{
    // Under the 2.4 -> 1.6 GHz cap the true plant gain is (2/3) b;
    // the online estimate must converge to it and the loop must hold
    // the target.
    GainScheduledPolicy policy;
    policy.begin(setup());
    const double b_eff = 10.0 * (1.6 / 2.4);
    const auto rates = simulateLoop(policy, b_eff, 80, b_eff);
    EXPECT_NEAR(rates.back(), 10.0, 1e-6);
    EXPECT_NEAR(policy.estimatedBaseline(), b_eff, 0.05 * b_eff);
}

TEST(GainScheduledPolicy, AdaptsFasterThanMismatchedDeadbeat)
{
    // With the plant at (2/3) b the fixed deadbeat law has pole 1/3
    // (geometric error decay); the adaptive law re-estimates b and
    // should be closer to target after the same number of periods.
    const double b_eff = 10.0 * (1.6 / 2.4);

    GainScheduledPolicy adaptive;
    adaptive.begin(setup());
    const auto adaptive_rates = simulateLoop(adaptive, b_eff, 8, b_eff);

    DeadbeatPolicy fixed;
    fixed.begin(setup());
    const auto fixed_rates = simulateLoop(fixed, b_eff, 8, b_eff);

    EXPECT_LT(std::abs(adaptive_rates.back() - 10.0),
              std::abs(fixed_rates.back() - 10.0));
}

TEST(GainScheduledPolicy, EstimateClampedAgainstDegenerateSamples)
{
    GainScheduleConfig config;
    config.min_scale = 0.5;
    config.max_scale = 2.0;
    GainScheduledPolicy policy(config);
    policy.begin(setup());
    // Feed absurd rates; the estimate must stay inside the clamp.
    for (int t = 0; t < 20; ++t)
        policy.update(t % 2 == 0 ? 1e6 : 1e-6);
    EXPECT_GE(policy.estimatedBaseline(), 0.5 * 10.0);
    EXPECT_LE(policy.estimatedBaseline(), 2.0 * 10.0);
}

TEST(GainScheduledPolicy, Validation)
{
    GainScheduleConfig bad;
    bad.estimate_alpha = 0.0;
    EXPECT_THROW(GainScheduledPolicy{bad}, std::invalid_argument);
    bad = GainScheduleConfig{};
    bad.gain = 0.0;
    EXPECT_THROW(GainScheduledPolicy{bad}, std::invalid_argument);
    bad = GainScheduleConfig{};
    bad.min_scale = 2.0;
    bad.max_scale = 1.0;
    EXPECT_THROW(GainScheduledPolicy{bad}, std::invalid_argument);
    GainScheduledPolicy fresh;
    EXPECT_THROW(fresh.update(1.0), std::logic_error);
    EXPECT_EQ(GainScheduledPolicy().name(), "gain-scheduled");
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

TEST(PolicyFactories, MintFreshInstances)
{
    const auto factory = makeDeadbeatPolicy(0.5);
    auto a = factory();
    auto b = factory();
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(a->name(), "integral");
    EXPECT_EQ(makePidPolicy()()->name(), "pid");
    EXPECT_EQ(makeGainScheduledPolicy()()->name(), "gain-scheduled");
}

} // namespace
} // namespace powerdial::core
