/**
 * @file
 * Shared small-instance factory for the four benchmark applications,
 * used by the cross-app suites (parallel calibration, clone
 * equivalence). Every knob dimension is present and the sweeps stay
 * seconds-scale. One definition so the instances under test cannot
 * drift between suites.
 */
#ifndef POWERDIAL_TESTS_SAMPLE_APPS_H
#define POWERDIAL_TESTS_SAMPLE_APPS_H

#include <memory>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"

namespace powerdial::tests {

/** App ids 0..3: swaptions, videnc, bodytrack, searchx. */
inline std::unique_ptr<core::App>
makeSampleApp(int id)
{
    switch (id) {
      case 0: {
        apps::swaptions::SwaptionsConfig config;
        config.sim_values = {200, 400, 800, 1600};
        config.inputs = 4;
        config.swaptions_per_input = 4;
        return std::make_unique<apps::swaptions::SwaptionsApp>(config);
      }
      case 1: {
        apps::videnc::VidencConfig config;
        config.subme_values = {1, 4, 7};
        config.merange_values = {1, 4, 16};
        config.ref_values = {1, 3};
        config.inputs = 4;
        config.video.width = 48;
        config.video.height = 32;
        config.video.frames = 4;
        return std::make_unique<apps::videnc::VidencApp>(config);
      }
      case 2: {
        apps::bodytrack::BodytrackConfig config;
        config.particle_values = {50, 100, 200};
        config.layer_values = {1, 3, 5};
        config.inputs = 4;
        config.frames = 8;
        return std::make_unique<apps::bodytrack::BodytrackApp>(config);
      }
      default: {
        apps::searchx::SearchxConfig config;
        config.corpus.documents = 150;
        config.corpus.words_per_doc = 120;
        config.inputs = 4;
        config.queries_per_input = 8;
        return std::make_unique<apps::searchx::SearchxApp>(config);
      }
    }
}

} // namespace powerdial::tests

#endif // POWERDIAL_TESTS_SAMPLE_APPS_H
