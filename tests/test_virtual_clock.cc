/** @file Unit tests for sim::VirtualClock. */
#include <gtest/gtest.h>

#include "sim/virtual_clock.h"

namespace powerdial::sim {
namespace {

TEST(VirtualClock, StartsAtZero)
{
    VirtualClock clock;
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(VirtualClock, AdvanceAccumulates)
{
    VirtualClock clock;
    clock.advance(1.5);
    clock.advance(0.25);
    EXPECT_DOUBLE_EQ(clock.now(), 1.75);
}

TEST(VirtualClock, ZeroAdvanceIsAllowed)
{
    VirtualClock clock;
    clock.advance(0.0);
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

TEST(VirtualClock, NegativeAdvanceThrows)
{
    VirtualClock clock;
    EXPECT_THROW(clock.advance(-1e-9), std::invalid_argument);
}

TEST(VirtualClock, AdvanceToMovesForward)
{
    VirtualClock clock;
    clock.advanceTo(3.0);
    EXPECT_DOUBLE_EQ(clock.now(), 3.0);
}

TEST(VirtualClock, AdvanceToPastIsNoOp)
{
    VirtualClock clock;
    clock.advance(5.0);
    clock.advanceTo(2.0);
    EXPECT_DOUBLE_EQ(clock.now(), 5.0);
}

TEST(VirtualClock, AdvanceToReportsWhetherTheClockMoved)
{
    // The event engine distinguishes "a later event time" (tenants
    // must advance) from "another event at the current time" by this
    // return value alone.
    VirtualClock clock;
    EXPECT_TRUE(clock.advanceTo(1.0));
    EXPECT_FALSE(clock.advanceTo(1.0)); // Same time: no move.
    EXPECT_FALSE(clock.advanceTo(0.5)); // Past: no move.
    EXPECT_TRUE(clock.advanceTo(2.0));
    EXPECT_DOUBLE_EQ(clock.now(), 2.0);
    EXPECT_FALSE(clock.advanceTo(0.0));
}

TEST(VirtualClock, ResetRewindsToZero)
{
    VirtualClock clock;
    clock.advance(7.5);
    clock.reset();
    EXPECT_DOUBLE_EQ(clock.now(), 0.0);
    EXPECT_TRUE(clock.advanceTo(1.0));
}

} // namespace
} // namespace powerdial::sim
