/**
 * @file
 * App::clone() equivalence: a clone must behave bit-identically to the
 * original (same knob space, same fixed-run results on every sampled
 * combination) and must share no mutable state with it — running or
 * reconfiguring one instance must not perturb the other. Parallel
 * calibration's determinism guarantee rests on exactly these two
 * properties.
 */
#include <gtest/gtest.h>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "sample_apps.h"
#include "toy_app.h"

namespace powerdial {
namespace {

/** A sampled spread of the combination space: first, middle, last. */
std::vector<std::size_t>
sampledCombinations(const core::App &app)
{
    const std::size_t combos = app.knobSpace().combinations();
    return {0, combos / 2, combos - 1};
}

void
expectSameRun(const core::RunMeasurement &a,
              const core::RunMeasurement &b)
{
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.output.components, b.output.components);
    EXPECT_EQ(a.output.weights, b.output.weights);
}

/** Parameterised over the four benchmark applications. */
class CloneEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(CloneEquivalence, SameInterfaceSurface)
{
    auto app = tests::makeSampleApp(GetParam());
    auto clone = app->clone();
    ASSERT_NE(clone, nullptr);
    EXPECT_NE(clone.get(), app.get());
    EXPECT_EQ(clone->name(), app->name());
    EXPECT_EQ(clone->knobSpace().combinations(),
              app->knobSpace().combinations());
    EXPECT_EQ(clone->knobSpace().parameterCount(),
              app->knobSpace().parameterCount());
    EXPECT_EQ(clone->defaultCombination(), app->defaultCombination());
    EXPECT_EQ(clone->inputCount(), app->inputCount());
    EXPECT_EQ(clone->trainingInputs(), app->trainingInputs());
    EXPECT_EQ(clone->productionInputs(), app->productionInputs());
}

TEST_P(CloneEquivalence, RunFixedMatchesOriginal)
{
    auto app = tests::makeSampleApp(GetParam());
    auto clone = app->clone();
    for (const std::size_t combo : sampledCombinations(*app)) {
        for (std::size_t input = 0; input < 2; ++input) {
            const auto original =
                core::runFixed(*app, input, combo);
            const auto cloned =
                core::runFixed(*clone, input, combo);
            expectSameRun(original, cloned);
        }
    }
}

TEST_P(CloneEquivalence, CloneAfterConfigureAndLoadInput)
{
    // Clone mid-lifecycle: after the original has been configured to
    // a non-default combination and has an input loaded. The clone
    // must still reproduce the original's runs exactly.
    auto app = tests::makeSampleApp(GetParam());
    const std::size_t combo = app->knobSpace().combinations() / 2;
    app->configure(app->knobSpace().valuesOf(combo));
    app->loadInput(1);
    auto clone = app->clone();
    EXPECT_EQ(clone->unitCount(), app->unitCount());

    const auto original = core::runFixed(*app, 0, combo);
    const auto cloned = core::runFixed(*clone, 0, combo);
    expectSameRun(original, cloned);
}

TEST_P(CloneEquivalence, NoStateLeaksBetweenInstances)
{
    // Reference result from a fresh instance.
    auto reference_app = tests::makeSampleApp(GetParam());
    const std::size_t combos =
        reference_app->knobSpace().combinations();
    const auto reference =
        core::runFixed(*reference_app, 0, combos - 1);

    // Run the clone hard on a *different* (input, combination) pair;
    // the original must still produce the reference result...
    auto app = tests::makeSampleApp(GetParam());
    auto clone = app->clone();
    (void)core::runFixed(*clone, 1, 0);
    const auto original_after = core::runFixed(*app, 0, combos - 1);
    expectSameRun(reference, original_after);

    // ...and running the original must not perturb the clone either.
    auto app2 = tests::makeSampleApp(GetParam());
    auto clone2 = app2->clone();
    (void)core::runFixed(*app2, 1, 0);
    const auto clone_after = core::runFixed(*clone2, 0, combos - 1);
    expectSameRun(reference, clone_after);
}

INSTANTIATE_TEST_SUITE_P(AllApps, CloneEquivalence,
                         ::testing::Values(0, 1, 2, 3));

TEST(CloneEquivalenceToy, ToyAppCloneMatches)
{
    tests::ToyApp app;
    auto clone = app.clone();
    const auto a = core::runFixed(app, 0, 2);
    const auto b = core::runFixed(*clone, 0, 2);
    EXPECT_EQ(a.seconds, b.seconds);
    EXPECT_EQ(a.output.components, b.output.components);
}

} // namespace
} // namespace powerdial
