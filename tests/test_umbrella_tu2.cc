/**
 * @file
 * ODR/include-guard smoke test, translation unit 2 of 2.
 *
 * Includes the umbrella header a second time in the same binary as
 * test_umbrella_tu1.cc. See that file for the full rationale.
 */
#include "powerdial.h"

namespace powerdial {

std::size_t
umbrellaCombinationsTu2()
{
    core::KnobSpace space({{"a", {1, 2}}, {"b", {1, 2, 3}}});
    return space.combinations();
}

} // namespace powerdial
