/** @file Unit and property tests for the actuation strategies. */
#include <gtest/gtest.h>

#include "core/actuation_strategy.h"

namespace powerdial::core {
namespace {

ResponseModel
model()
{
    // Frontier: (1, 0), (2, 0.01), (4, 0.05), (8, 0.2).
    return ResponseModel({{0, 1.0, 0.00},
                          {1, 2.0, 0.01},
                          {2, 4.0, 0.05},
                          {3, 8.0, 0.20}},
                         0, 10.0, 5.0);
}

MinimalSpeedupStrategy
minimal(const ResponseModel &m, std::size_t quantum = 20)
{
    MinimalSpeedupStrategy s;
    s.begin(m, quantum);
    return s;
}

RaceToIdleStrategy
race(const ResponseModel &m, std::size_t quantum = 20)
{
    RaceToIdleStrategy s;
    s.begin(m, quantum);
    return s;
}

TEST(ActuationStrategy, PaperExampleSpeedupOneAndAHalf)
{
    // Paper section 2.3.3: command 1.5 with available speedups {1, 2}
    // -> half the quantum at 2, half at the default.
    const auto m = model();
    auto act = minimal(m);
    const auto plan = act.plan(1.5);
    ASSERT_EQ(plan.slices.size(), 2u);
    EXPECT_EQ(plan.slices[0].combination, 1u);
    EXPECT_NEAR(plan.slices[0].fraction, 0.5, 1e-12);
    EXPECT_EQ(plan.slices[1].combination, 0u);
    EXPECT_NEAR(plan.slices[1].fraction, 0.5, 1e-12);
    EXPECT_NEAR(plan.averageSpeedup(), 1.5, 1e-12);
    EXPECT_DOUBLE_EQ(plan.idle_fraction, 0.0);
}

TEST(ActuationStrategy, MinimalSpeedupUsesSlowestSufficientSetting)
{
    const auto m = model();
    auto act = minimal(m);
    // Command 3: s_min = 4 (slowest Pareto speedup >= 3), mixed with
    // the default, not with s_max = 8.
    const auto plan = act.plan(3.0);
    for (const auto &s : plan.slices)
        EXPECT_NE(s.combination, 3u);
    EXPECT_NEAR(plan.averageSpeedup(), 3.0, 1e-12);
}

TEST(ActuationStrategy, CommandAtBaselineRunsDefaultOnly)
{
    const auto m = model();
    auto act = minimal(m);
    const auto plan = act.plan(1.0);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 0u);
    EXPECT_DOUBLE_EQ(plan.slices[0].fraction, 1.0);
}

TEST(ActuationStrategy, CommandBelowBaselineClamps)
{
    const auto m = model();
    auto act = minimal(m);
    const auto plan = act.plan(0.25);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 0u);
}

TEST(ActuationStrategy, CommandBeyondMaxRunsFlatOut)
{
    const auto m = model();
    auto act = minimal(m);
    const auto plan = act.plan(50.0);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 3u);
    EXPECT_NEAR(plan.averageSpeedup(), 8.0, 1e-12);
}

TEST(ActuationStrategy, RaceToIdleSprintsThenIdles)
{
    const auto m = model();
    auto act = race(m);
    // Command 2 with s_max = 8: run the fastest setting for 1/4 of the
    // quantum, idle 3/4.
    const auto plan = act.plan(2.0);
    ASSERT_EQ(plan.slices.size(), 1u);
    EXPECT_EQ(plan.slices[0].combination, 3u);
    EXPECT_NEAR(plan.slices[0].fraction, 0.25, 1e-12);
    EXPECT_NEAR(plan.idle_fraction, 0.75, 1e-12);
    // Idle per busy second: 0.75 / 0.25 = 3.
    EXPECT_NEAR(plan.idlePerBusySecond(), 3.0, 1e-12);
}

TEST(ActuationStrategy, RaceToIdleNeverExceedsQuantum)
{
    const auto m = model();
    auto act = race(m);
    const auto plan = act.plan(100.0);
    EXPECT_NEAR(plan.slices[0].fraction, 1.0, 1e-12);
    EXPECT_NEAR(plan.idle_fraction, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(plan.idlePerBusySecond(), 0.0);
}

TEST(ActuationStrategy, BeatScheduleLaysSlicesContiguously)
{
    const auto m = model();
    auto act = minimal(m, 20);
    const auto plan = act.plan(1.5);
    // First half of the quantum at the fast setting, rest at default.
    std::size_t fast_beats = 0;
    for (std::size_t beat = 0; beat < 20; ++beat) {
        const auto combo = plan.combinationAtBeat(beat, 20);
        if (combo == 1u)
            ++fast_beats;
        if (beat >= 10) {
            EXPECT_EQ(combo, 0u);
        }
    }
    EXPECT_EQ(fast_beats, 10u);
}

TEST(ActuationStrategy, AverageQosLossIsWorkWeighted)
{
    const auto m = model();
    auto act = minimal(m);
    const auto plan = act.plan(1.5);
    // Slices: (s=2, qos=0.01) at 0.5, (s=1, qos=0) at 0.5.
    // Work weights: 1.0 vs 0.5 -> loss = 0.01 * (1.0 / 1.5).
    EXPECT_NEAR(plan.averageQosLoss(), 0.01 * (1.0 / 1.5), 1e-12);
}

TEST(ActuationStrategy, Validation)
{
    const auto m = model();
    MinimalSpeedupStrategy strategy;
    EXPECT_THROW(strategy.begin(m, 0), std::invalid_argument);
    EXPECT_THROW(strategy.plan(1.0), std::logic_error);
    ActuationPlan empty;
    EXPECT_THROW(empty.combinationAtBeat(0, 20), std::logic_error);
    EXPECT_THROW(QosBudgetStrategy{-0.1}, std::invalid_argument);
}

TEST(ActuationStrategy, Names)
{
    EXPECT_EQ(MinimalSpeedupStrategy().name(), "minimal-speedup");
    EXPECT_EQ(RaceToIdleStrategy().name(), "race-to-idle");
    EXPECT_EQ(QosBudgetStrategy(0.01).name(), "qos-budget");
}

// ---------------------------------------------------------------------------
// QosBudgetStrategy
// ---------------------------------------------------------------------------

TEST(QosBudget, LargeBudgetMatchesMinimalSpeedup)
{
    const auto m = model();
    QosBudgetStrategy budget(1.0); // Never binding.
    budget.begin(m, 20);
    auto act = minimal(m);
    for (const double cmd : {1.0, 1.5, 2.7, 4.0, 8.0}) {
        const auto a = budget.plan(cmd);
        const auto b = act.plan(cmd);
        ASSERT_EQ(a.slices.size(), b.slices.size());
        for (std::size_t i = 0; i < a.slices.size(); ++i) {
            EXPECT_EQ(a.slices[i].combination, b.slices[i].combination);
            EXPECT_DOUBLE_EQ(a.slices[i].fraction, b.slices[i].fraction);
        }
    }
}

TEST(QosBudget, ZeroBudgetPinsBaseline)
{
    const auto m = model();
    QosBudgetStrategy budget(0.0);
    budget.begin(m, 20);
    for (const double cmd : {1.0, 2.0, 8.0}) {
        const auto plan = budget.plan(cmd);
        ASSERT_EQ(plan.slices.size(), 1u);
        EXPECT_EQ(plan.slices[0].combination, 0u);
        EXPECT_DOUBLE_EQ(plan.averageQosLoss(), 0.0);
    }
    EXPECT_DOUBLE_EQ(budget.meanSpent(), 0.0);
}

TEST(QosBudget, RunningMeanNeverExceedsBudget)
{
    const auto m = model();
    const double cap = 0.02;
    QosBudgetStrategy budget(cap);
    budget.begin(m, 20);
    // Hammer the strategy with expensive commands; the running mean
    // of spent QoS loss must stay within the budget at every quantum.
    for (int q = 0; q < 200; ++q) {
        budget.plan(8.0);
        EXPECT_LE(budget.meanSpent(), cap + 1e-12)
            << "quantum " << q;
    }
    // And the strategy must still be *spending* the budget, not just
    // sitting at the baseline: the mean should approach the cap.
    EXPECT_GT(budget.meanSpent(), 0.5 * cap);
}

TEST(QosBudget, BanksUnspentAllowance)
{
    const auto m = model();
    QosBudgetStrategy budget(0.01);
    budget.begin(m, 20);
    // Ten cheap quanta bank allowance...
    for (int q = 0; q < 10; ++q) {
        const auto plan = budget.plan(1.0);
        EXPECT_DOUBLE_EQ(plan.averageQosLoss(), 0.0);
    }
    // ...so the next expensive quantum may exceed the per-quantum rate
    // while the running mean stays under the cap.
    const auto plan = budget.plan(8.0);
    EXPECT_GT(plan.averageQosLoss(), 0.01);
    EXPECT_LE(budget.meanSpent(), 0.01 + 1e-12);
}

TEST(QosBudget, BeginResetsSpend)
{
    const auto m = model();
    QosBudgetStrategy budget(0.01);
    budget.begin(m, 20);
    for (int q = 0; q < 5; ++q)
        budget.plan(8.0);
    EXPECT_GT(budget.meanSpent(), 0.0);
    budget.begin(m, 20);
    EXPECT_DOUBLE_EQ(budget.meanSpent(), 0.0);
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/**
 * Property: for any achievable command, the minimal-speedup plan's
 * quantum-average speedup equals the command exactly, and the plan
 * never uses a setting faster than the slowest sufficient one.
 */
class PlanAccuracy : public ::testing::TestWithParam<double>
{
};

TEST_P(PlanAccuracy, AverageEqualsCommand)
{
    const auto m = model();
    auto act = minimal(m);
    const double cmd = GetParam();
    const auto plan = act.plan(cmd);
    EXPECT_NEAR(plan.averageSpeedup(), cmd, 1e-9);
    double fractions = plan.idle_fraction;
    for (const auto &s : plan.slices)
        fractions += s.fraction;
    EXPECT_NEAR(fractions, 1.0, 1e-9); // Equation 10 at equality.
}

INSTANTIATE_TEST_SUITE_P(Commands, PlanAccuracy,
                         ::testing::Values(1.0, 1.1, 1.5, 1.9, 2.0, 2.7,
                                           3.9, 4.0, 5.5, 7.9, 8.0));

/** Property: race-to-idle also meets the command on average. */
class RaceAccuracy : public ::testing::TestWithParam<double>
{
};

TEST_P(RaceAccuracy, WorkMatchesCommand)
{
    const auto m = model();
    auto act = race(m);
    const double cmd = GetParam();
    const auto plan = act.plan(cmd);
    // Work produced = s_max * busy fraction = command.
    EXPECT_NEAR(plan.averageSpeedup(), cmd, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Commands, RaceAccuracy,
                         ::testing::Values(1.0, 1.5, 2.0, 4.0, 6.0, 8.0));

/**
 * Property: whatever the command sequence, the QoS-budget strategy's
 * running mean stays within budget while delivering no more speedup
 * than the unconstrained minimal-speedup plan.
 */
class BudgetCompliance : public ::testing::TestWithParam<double>
{
};

TEST_P(BudgetCompliance, MeanWithinCap)
{
    const auto m = model();
    const double cap = GetParam();
    QosBudgetStrategy budget(cap);
    budget.begin(m, 20);
    auto act = minimal(m);
    double cmd = 1.0;
    for (int q = 0; q < 150; ++q) {
        cmd = cmd > 7.5 ? 1.0 : cmd + 0.61;
        const auto constrained = budget.plan(cmd);
        const auto free = act.plan(cmd);
        EXPECT_LE(constrained.averageSpeedup(),
                  free.averageSpeedup() + 1e-9);
        EXPECT_LE(budget.meanSpent(), cap + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetCompliance,
                         ::testing::Values(0.0, 0.005, 0.02, 0.1, 0.5));

} // namespace
} // namespace powerdial::core
