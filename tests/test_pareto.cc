/** @file Unit and property tests for the Pareto frontier. */
#include <gtest/gtest.h>

#include "core/pareto.h"
#include "workload/rng.h"

namespace powerdial::core {
namespace {

TEST(Dominates, StrictAndWeakCases)
{
    const OperatingPoint fast_clean{0, 2.0, 0.1};
    const OperatingPoint slow_dirty{1, 1.0, 0.2};
    const OperatingPoint equal{2, 2.0, 0.1};
    EXPECT_TRUE(dominates(fast_clean, slow_dirty));
    EXPECT_FALSE(dominates(slow_dirty, fast_clean));
    EXPECT_FALSE(dominates(fast_clean, equal)); // No strict advantage.
}

TEST(ParetoFrontier, KeepsOnlyNonDominated)
{
    const std::vector<OperatingPoint> points{
        {0, 1.0, 0.00}, // Baseline.
        {1, 2.0, 0.01},
        {2, 1.5, 0.05}, // Dominated by 1.
        {3, 4.0, 0.03},
        {4, 3.0, 0.10}, // Dominated by 3.
    };
    const auto frontier = paretoFrontier(points);
    ASSERT_EQ(frontier.size(), 3u);
    EXPECT_EQ(frontier[0].combination, 0u);
    EXPECT_EQ(frontier[1].combination, 1u);
    EXPECT_EQ(frontier[2].combination, 3u);
}

TEST(ParetoFrontier, SortedByAscendingSpeedup)
{
    const std::vector<OperatingPoint> points{
        {0, 3.0, 0.3}, {1, 1.0, 0.0}, {2, 2.0, 0.1}};
    const auto frontier = paretoFrontier(points);
    for (std::size_t i = 0; i + 1 < frontier.size(); ++i)
        EXPECT_LT(frontier[i].speedup, frontier[i + 1].speedup);
}

TEST(ParetoFrontier, DuplicatePointsCollapse)
{
    const std::vector<OperatingPoint> points{
        {0, 1.0, 0.0}, {1, 1.0, 0.0}, {2, 2.0, 0.5}};
    EXPECT_EQ(paretoFrontier(points).size(), 2u);
}

TEST(ParetoFrontier, EmptyInput)
{
    EXPECT_TRUE(paretoFrontier({}).empty());
}

TEST(ParetoFrontier, SinglePoint)
{
    const auto frontier = paretoFrontier({{7, 1.0, 0.0}});
    ASSERT_EQ(frontier.size(), 1u);
    EXPECT_EQ(frontier[0].combination, 7u);
}

/**
 * Property suite over random point clouds: the frontier must be
 * mutually non-dominating, and every excluded point must be dominated
 * by some frontier point.
 */
class ParetoProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ParetoProperty, FrontierIsCorrect)
{
    workload::Rng rng(GetParam());
    std::vector<OperatingPoint> points;
    for (std::size_t i = 0; i < 60; ++i)
        points.push_back({i, rng.uniform(1.0, 10.0),
                          rng.uniform(0.0, 0.5)});
    const auto frontier = paretoFrontier(points);
    ASSERT_FALSE(frontier.empty());

    // Mutually non-dominating.
    for (const auto &a : frontier)
        for (const auto &b : frontier)
            if (a.combination != b.combination) {
                EXPECT_FALSE(dominates(a, b));
            }

    // Every non-frontier point is dominated by some frontier point.
    for (const auto &p : points) {
        bool on_frontier = false;
        for (const auto &f : frontier)
            on_frontier |= f.combination == p.combination;
        if (on_frontier)
            continue;
        bool covered = false;
        for (const auto &f : frontier)
            covered |= dominates(f, p);
        EXPECT_TRUE(covered) << "point " << p.combination
                             << " neither on frontier nor dominated";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParetoProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
} // namespace powerdial::core
