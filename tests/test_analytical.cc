/** @file Tests for the analytical models of paper section 3. */
#include <gtest/gtest.h>

#include "core/analytical.h"

namespace powerdial::core::analytical {
namespace {

DvfsPowers
paperPowers()
{
    // Representative of the paper's platform: active 205 W at 2.4 GHz,
    // 165 W at 1.6 GHz, 90 W idle.
    return {205.0, 165.0, 90.0};
}

TEST(DvfsModel, Equation12HandComputed)
{
    // Task: 10 s at speed, 5 s slack.
    const DvfsPowers p = paperPowers();
    const TaskTiming t{10.0, 5.0};
    const double no_dvfs = 205.0 * 10.0 + 90.0 * 5.0; // 2500 J.
    const double dvfs = 165.0 * 15.0;                 // 2475 J.
    EXPECT_NEAR(energyNoDvfs(p, t), no_dvfs, 1e-9);
    EXPECT_NEAR(energyDvfs(p, t), dvfs, 1e-9);
    EXPECT_NEAR(dvfsSavings(p, t), no_dvfs - dvfs, 1e-9);
}

TEST(DvfsModel, StretchedTimeByFrequencyRatio)
{
    EXPECT_NEAR(stretchedTime(10.0, 2.4e9, 1.6e9), 15.0, 1e-9);
    EXPECT_THROW(stretchedTime(10.0, 0.0, 1.0), std::invalid_argument);
}

TEST(DvfsModel, IdlePowerDecidesWhetherDvfsWins)
{
    // Figure 3's tension: with high idle power, stretching the task at
    // low power beats racing and idling; with very low idle power the
    // race-to-idle side wins and DVFS "savings" go negative.
    const TaskTiming t{10.0, 5.0};
    const DvfsPowers high_idle{205.0, 165.0, 90.0};
    EXPECT_GT(dvfsSavings(high_idle, t), 0.0);
    const DvfsPowers low_idle{205.0, 165.0, 10.0};
    EXPECT_LT(dvfsSavings(low_idle, t), 0.0);
}

TEST(ElasticModel, SpeedupOneMatchesPlainDvfs)
{
    const DvfsPowers p = paperPowers();
    const TaskTiming t{10.0, 5.0};
    const double plain =
        std::min(energyNoDvfs(p, t), energyDvfs(p, t));
    EXPECT_NEAR(energyElasticDvfs(p, t, 1.0), plain, 1e-9);
    EXPECT_NEAR(elasticSavings(p, t, 1.0), 0.0, 1e-9);
}

TEST(ElasticModel, KnobSpeedupAlwaysSaves)
{
    const DvfsPowers p = paperPowers();
    const TaskTiming t{10.0, 5.0};
    double prev = 0.0;
    for (const double speedup : {1.5, 2.0, 4.0, 8.0}) {
        const double save = elasticSavings(p, t, speedup);
        EXPECT_GT(save, prev);
        prev = save;
    }
}

TEST(ElasticModel, RaceToIdleWinsWithLowIdlePower)
{
    // Paper Figure 4(a): with small P_idle, racing at high power then
    // idling beats stretching at the low-power state.
    const DvfsPowers low_idle{205.0, 165.0, 10.0};
    const TaskTiming t{10.0, 0.0};
    const double speedup = 2.0;
    // E1 (race): 205*5 + 10*5 = 1075. E2 (stretch): 165*5 + 10*5 = 875.
    // With these numbers E2 still wins; verify the min is taken.
    EXPECT_NEAR(energyElasticDvfs(low_idle, t, speedup), 875.0, 1e-9);
}

TEST(ElasticModel, HighIdlePowerFavoursLowPowerState)
{
    // Paper Figure 4(b): with server-class idle power the low-power
    // state strategy is selected.
    const DvfsPowers high_idle{205.0, 165.0, 130.0};
    const TaskTiming t{10.0, 0.0};
    const double e = energyElasticDvfs(high_idle, t, 2.0);
    const double e2 = 165.0 * 5.0 + 130.0 * 5.0;
    EXPECT_NEAR(e, e2, 1e-9);
}

TEST(ElasticModel, Validation)
{
    EXPECT_THROW(energyElasticDvfs(paperPowers(), {1.0, 0.0}, 0.5),
                 std::invalid_argument);
}

TEST(Consolidation, PaperParsecProvisioning)
{
    // Four machines, 4x speedup at peak: consolidate to one machine
    // (the paper's 3/4 reduction for the PARSEC benchmarks).
    ConsolidationModel m;
    m.n_orig = 4;
    m.work_per_machine = 8.0;
    m.speedup = 4.0;
    m.u_orig = 0.25;
    m.p_load = 220.0;
    m.p_idle = 90.0;
    const auto r = consolidate(m);
    EXPECT_EQ(r.n_new, 1u);
    EXPECT_DOUBLE_EQ(r.u_new, 1.0);
    // Equation 22: 4 * (0.25*220 + 0.75*90) = 490 W.
    EXPECT_NEAR(r.p_orig_watts, 490.0, 1e-9);
    // Equation 23: 1 * 220 = 220 W.
    EXPECT_NEAR(r.p_new_watts, 220.0, 1e-9);
    EXPECT_NEAR(r.p_save_watts, 270.0, 1e-9);
}

TEST(Consolidation, PaperSearchProvisioning)
{
    // swish++: 1.5x speedup over three machines -> two machines
    // (the paper's 1/3 reduction).
    ConsolidationModel m;
    m.n_orig = 3;
    m.work_per_machine = 8.0;
    m.speedup = 1.5;
    m.u_orig = 0.2;
    m.p_load = 220.0;
    m.p_idle = 90.0;
    const auto r = consolidate(m);
    EXPECT_EQ(r.n_new, 2u);
}

TEST(Consolidation, SpeedupOneKeepsAllMachines)
{
    ConsolidationModel m;
    m.n_orig = 4;
    m.work_per_machine = 8.0;
    m.speedup = 1.0;
    m.u_orig = 0.5;
    m.p_load = 220.0;
    m.p_idle = 90.0;
    EXPECT_EQ(consolidate(m).n_new, 4u);
    EXPECT_NEAR(consolidate(m).p_save_watts, 0.0, 1e-9);
}

TEST(Consolidation, CeilingRoundsUp)
{
    // Equation 21 uses a ceiling: 4 machines at 1.9x -> ceil(2.1) = 3.
    ConsolidationModel m;
    m.n_orig = 4;
    m.work_per_machine = 8.0;
    m.speedup = 1.9;
    m.u_orig = 0.25;
    m.p_load = 220.0;
    m.p_idle = 90.0;
    EXPECT_EQ(consolidate(m).n_new, 3u);
}

TEST(Consolidation, SavingsGrowWithSpeedup)
{
    ConsolidationModel m;
    m.n_orig = 4;
    m.work_per_machine = 8.0;
    m.u_orig = 0.25;
    m.p_load = 220.0;
    m.p_idle = 90.0;
    double prev = -1.0;
    for (const double speedup : {1.0, 2.0, 4.0}) {
        m.speedup = speedup;
        const double save = consolidate(m).p_save_watts;
        EXPECT_GE(save, prev);
        prev = save;
    }
}

TEST(Consolidation, Validation)
{
    ConsolidationModel m;
    m.n_orig = 0;
    m.work_per_machine = 1.0;
    m.speedup = 1.0;
    m.u_orig = 0.5;
    m.p_load = 1.0;
    m.p_idle = 0.5;
    EXPECT_THROW(consolidate(m), std::invalid_argument);
    m.n_orig = 2;
    m.speedup = 0.5;
    EXPECT_THROW(consolidate(m), std::invalid_argument);
    m.speedup = 1.0;
    m.u_orig = 1.5;
    EXPECT_THROW(consolidate(m), std::invalid_argument);
}

} // namespace
} // namespace powerdial::core::analytical
