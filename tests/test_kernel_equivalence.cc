/**
 * @file
 * Differential bit-exactness sweep for the optimized app kernels.
 *
 * Every kernel optimized in PR 10 retains its naive pre-optimization
 * implementation in a `reference` namespace; these tests run both over
 * seeded inputs crossed with the knob grids and require *bitwise*
 * identical outputs (EXPECT_EQ on doubles, not EXPECT_NEAR). The lone
 * exception is the opt-in KernelTuning::fast_math path, which is
 * allowed to reassociate and is instead pinned to its documented
 * relative-error bound.
 */
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "apps/bodytrack/particle_filter.h"
#include "apps/searchx/index.h"
#include "apps/spmv/spmv_kernel.h"
#include "apps/videnc/encoder.h"
#include "qos/psnr.h"
#include "workload/body_motion.h"
#include "workload/corpus.h"
#include "workload/rng.h"
#include "workload/video_source.h"

namespace powerdial {
namespace {

// ---------------------------------------------------------------------------
// DCT
// ---------------------------------------------------------------------------

apps::videnc::ResidualBlock
randomBlock(workload::Rng &rng, double scale)
{
    apps::videnc::ResidualBlock block{};
    for (auto &v : block)
        v = rng.uniform(-scale, scale);
    return block;
}

TEST(KernelEquivalence, ForwardDctBitExact)
{
    using namespace apps::videnc;
    workload::Rng rng(0xD07001);
    for (int trial = 0; trial < 200; ++trial) {
        const auto block = randomBlock(rng, trial % 2 ? 255.0 : 4.0);
        const auto opt = forwardDct(block);
        const auto ref = reference::forwardDct(block);
        for (std::size_t i = 0; i < opt.size(); ++i)
            EXPECT_EQ(opt[i], ref[i]) << "coef " << i;
    }
}

TEST(KernelEquivalence, InverseDctBitExact)
{
    using namespace apps::videnc;
    workload::Rng rng(0xD07002);
    for (int trial = 0; trial < 200; ++trial) {
        // Both raw random blocks and genuine spectra.
        const auto block = randomBlock(rng, 200.0);
        const auto freq =
            trial % 2 ? reference::forwardDct(block) : block;
        const auto opt = inverseDct(freq);
        const auto ref = reference::inverseDct(freq);
        for (std::size_t i = 0; i < opt.size(); ++i)
            EXPECT_EQ(opt[i], ref[i]) << "sample " << i;
    }
}

TEST(KernelEquivalence, FastMathDctWithinDocumentedBound)
{
    using namespace apps::videnc;
    const KernelTuning fast{true};
    workload::Rng rng(0xD07003);
    for (int trial = 0; trial < 200; ++trial) {
        const auto block = randomBlock(rng, 255.0);
        for (const bool forward : {true, false}) {
            const auto ref = forward ? reference::forwardDct(block)
                                     : reference::inverseDct(block);
            const auto opt =
                forward ? forwardDct(block, fast) : inverseDct(block, fast);
            double norm = 0.0;
            for (const auto &v : ref)
                norm = std::max(norm, std::abs(v));
            for (std::size_t i = 0; i < opt.size(); ++i)
                EXPECT_NEAR(opt[i], ref[i], 1e-12 * std::max(norm, 1.0));
        }
    }
}

// ---------------------------------------------------------------------------
// Motion estimation
// ---------------------------------------------------------------------------

std::vector<workload::Frame>
testClip()
{
    workload::VideoParams params;
    params.width = 64;
    params.height = 48;
    params.frames = 4;
    params.seed = 0x717E57;
    return workload::VideoSource(params).frames();
}

TEST(KernelEquivalence, BlockSadBitExactAcrossPhasesAndBorders)
{
    using namespace apps::videnc;
    const auto clip = testClip();
    const auto &cur = clip[0];
    const auto &ref = clip[1];
    // Interior and border blocks x all quarter-pel phases, including
    // vectors that push the reference window out of the frame.
    for (const int bx : {0, 16, 48}) {
        for (const int by : {0, 16, 32}) {
            for (const int mvx : {-70, -9, -4, -1, 0, 1, 2, 3, 5, 8, 70}) {
                for (const int mvy : {-70, -5, 0, 1, 3, 4, 70}) {
                    const MotionVector mv{mvx, mvy};
                    EXPECT_EQ(blockSad(cur, bx, by, ref, mv),
                              reference::blockSad(cur, bx, by, ref, mv))
                        << "bx=" << bx << " by=" << by << " mv=(" << mvx
                        << "," << mvy << ")";
                }
            }
        }
    }
}

TEST(KernelEquivalence, BlockSadBoundedHonoursContract)
{
    using namespace apps::videnc;
    const auto clip = testClip();
    const auto &cur = clip[0];
    const auto &ref = clip[2];
    workload::Rng rng(0xB07D);
    for (int trial = 0; trial < 300; ++trial) {
        const int bx = 16 * static_cast<int>(rng.uniform(0.0, 4.0));
        const int by = 16 * static_cast<int>(rng.uniform(0.0, 3.0));
        const MotionVector mv{
            static_cast<int>(rng.uniform(-40.0, 40.0)),
            static_cast<int>(rng.uniform(-40.0, 40.0))};
        const std::uint64_t exact = reference::blockSad(cur, bx, by, ref, mv);
        // Limits below, at, and above the exact SAD.
        const std::uint64_t limits[] = {
            0, exact / 2, exact, exact + 1, exact * 2 + 1,
            std::numeric_limits<std::uint64_t>::max()};
        for (const std::uint64_t limit : limits) {
            const std::uint64_t got =
                blockSadBounded(cur, bx, by, ref, mv, limit);
            if (exact < limit)
                EXPECT_EQ(got, exact);
            else
                EXPECT_GE(got, limit);
        }
    }
}

TEST(KernelEquivalence, SearchMotionBitExactAcrossKnobGrid)
{
    using namespace apps::videnc;
    const auto clip = testClip();
    const std::vector<workload::Frame> refs(clip.begin() + 1, clip.end());
    const auto &cur = clip[0];
    for (const int merange : {1, 4, 16}) {
        for (const int subpel : {0, 2, 6}) {
            for (const int nrefs : {1, 3}) {
                SearchParams params;
                params.merange = merange;
                params.subpel_rounds = subpel;
                params.refs = nrefs;
                for (int by = 0; by < cur.height; by += kMacroblock) {
                    for (int bx = 0; bx < cur.width; bx += kMacroblock) {
                        const auto opt =
                            searchMotion(cur, bx, by, refs, params);
                        const auto ref = reference::searchMotion(
                            cur, bx, by, refs, params);
                        EXPECT_EQ(opt.mv.x, ref.mv.x);
                        EXPECT_EQ(opt.mv.y, ref.mv.y);
                        EXPECT_EQ(opt.reference, ref.reference);
                        EXPECT_EQ(opt.sad, ref.sad);
                        EXPECT_EQ(opt.work_ops, ref.work_ops);
                    }
                }
            }
        }
    }
}

TEST(KernelEquivalence, PredictBlockBitExactAndBufferReusable)
{
    using namespace apps::videnc;
    const auto clip = testClip();
    const auto &ref = clip[1];
    std::vector<double> reused; // Deliberately shared across calls.
    for (const int bx : {0, 16, 48}) {
        for (const int by : {0, 32}) {
            for (const int mvx : {-70, -3, 0, 1, 4, 70}) {
                for (const int mvy : {-70, 0, 2, 3, 70}) {
                    const MotionVector mv{mvx, mvy};
                    const auto expect =
                        reference::predictBlock(ref, bx, by, mv);
                    const auto fresh = predictBlock(ref, bx, by, mv);
                    predictBlockInto(ref, bx, by, mv, reused);
                    ASSERT_EQ(fresh.size(), expect.size());
                    ASSERT_EQ(reused.size(), expect.size());
                    for (std::size_t i = 0; i < expect.size(); ++i) {
                        EXPECT_EQ(fresh[i], expect[i]);
                        EXPECT_EQ(reused[i], expect[i]);
                    }
                }
            }
        }
    }
}

/**
 * End-to-end pin: a test-local naive encoder built purely from the
 * reference kernels must reproduce Encoder::encodeFrame bit-for-bit —
 * bits, work_ops, PSNR, and the reconstructed reference frames.
 */
TEST(KernelEquivalence, EncoderMatchesReferenceKernelPipeline)
{
    using namespace apps::videnc;
    const auto clip = testClip();
    const EncoderConfig config;
    Encoder encoder(config);

    std::deque<workload::Frame> naive_refs;
    SearchParams effort;
    effort.merange = 4;
    effort.subpel_rounds = 2;
    effort.refs = 2;

    for (const auto &frame : clip) {
        FrameStats naive;
        workload::Frame recon = frame;
        const std::vector<workload::Frame> refs(naive_refs.begin(),
                                                naive_refs.end());
        const bool intra = refs.empty();
        for (int by = 0; by < frame.height; by += kMacroblock) {
            for (int bx = 0; bx < frame.width; bx += kMacroblock) {
                std::vector<double> pred;
                if (intra) {
                    pred.assign(kMacroblock * kMacroblock, 128.0);
                } else {
                    const MotionResult mr = reference::searchMotion(
                        frame, bx, by, refs, effort);
                    naive.work_ops += mr.work_ops;
                    pred = reference::predictBlock(refs[mr.reference],
                                                   bx, by, mr.mv);
                    naive.bits += 12;
                }
                for (int sy = 0; sy < kMacroblock; sy += kBlock) {
                    for (int sx = 0; sx < kMacroblock; sx += kBlock) {
                        ResidualBlock residual{};
                        for (int y = 0; y < kBlock; ++y) {
                            for (int x = 0; x < kBlock; ++x) {
                                const int px = std::min(bx + sx + x,
                                                        frame.width - 1);
                                const int py = std::min(by + sy + y,
                                                        frame.height - 1);
                                residual[y * kBlock + x] =
                                    static_cast<double>(
                                        frame.at(px, py)) -
                                    pred[static_cast<std::size_t>(sy + y) *
                                             kMacroblock +
                                         sx + x];
                            }
                        }
                        const ResidualBlock freq =
                            reference::forwardDct(residual);
                        const CoeffBlock q =
                            quantize(freq, config.qstep);
                        naive.bits += bitCost(q);
                        naive.work_ops += kDctOps;
                        const ResidualBlock rec_res =
                            reference::inverseDct(
                                dequantize(q, config.qstep));
                        for (int y = 0; y < kBlock; ++y) {
                            for (int x = 0; x < kBlock; ++x) {
                                const int px = bx + sx + x;
                                const int py = by + sy + y;
                                if (px >= frame.width ||
                                    py >= frame.height)
                                    continue;
                                const double value =
                                    pred[static_cast<std::size_t>(sy +
                                                                  y) *
                                             kMacroblock +
                                         sx + x] +
                                    rec_res[y * kBlock + x];
                                recon.pixels
                                    [static_cast<std::size_t>(py) *
                                         frame.width +
                                     px] =
                                    static_cast<std::uint8_t>(
                                        std::clamp(value, 0.0, 255.0));
                            }
                        }
                    }
                }
                naive.work_ops += 64;
            }
        }
        naive.psnr_db = qos::psnr(frame.pixels, recon.pixels);
        naive_refs.push_front(recon);
        while (naive_refs.size() > config.max_refs)
            naive_refs.pop_back();

        const FrameStats actual = encoder.encodeFrame(frame, effort);
        EXPECT_EQ(actual.bits, naive.bits);
        EXPECT_EQ(actual.work_ops, naive.work_ops);
        EXPECT_EQ(actual.psnr_db, naive.psnr_db);
        ASSERT_EQ(encoder.references().front().pixels, recon.pixels);
    }
}

// ---------------------------------------------------------------------------
// Particle-filter resampling
// ---------------------------------------------------------------------------

std::vector<apps::bodytrack::Particle>
randomCloud(workload::Rng &rng, std::size_t n)
{
    std::vector<apps::bodytrack::Particle> cloud(n);
    for (auto &p : cloud) {
        p.pose.root_x = rng.gaussian(0.0, 2.0);
        p.pose.root_y = rng.gaussian(0.0, 2.0);
        for (auto &a : p.pose.angles)
            a = rng.gaussian(0.0, 0.5);
        p.weight = std::exp(rng.gaussian(-2.0, 1.5)); // Skewed weights.
    }
    return cloud;
}

TEST(KernelEquivalence, SystematicResampleBitExactAndScratchReusable)
{
    using namespace apps::bodytrack;
    workload::Rng rng(0x9E5A);
    std::vector<Particle> scratch; // Shared across every call below.
    for (const std::size_t in_count : {std::size_t{1}, std::size_t{7},
                                       std::size_t{100}, std::size_t{999}}) {
        const auto cloud = randomCloud(rng, in_count);
        double total = 0.0;
        for (const auto &p : cloud)
            total += p.weight;
        for (const std::size_t out_count :
             {std::size_t{1}, std::size_t{13}, std::size_t{100},
              std::size_t{1500}}) {
            const double u01 = rng.uniform();
            const auto expect =
                reference::systematicResample(cloud, out_count, total, u01);
            systematicResampleInto(cloud, out_count, total, u01, scratch);
            ASSERT_EQ(scratch.size(), expect.size());
            for (std::size_t i = 0; i < expect.size(); ++i) {
                EXPECT_EQ(scratch[i].weight, expect[i].weight);
                EXPECT_EQ(scratch[i].pose.root_x, expect[i].pose.root_x);
                EXPECT_EQ(scratch[i].pose.root_y, expect[i].pose.root_y);
                for (std::size_t a = 0; a < expect[i].pose.angles.size();
                     ++a)
                    EXPECT_EQ(scratch[i].pose.angles[a],
                              expect[i].pose.angles[a]);
            }
        }
    }
}

TEST(KernelEquivalence, FilterStepUnchangedByScratchResampling)
{
    // The filter's observable trajectory (estimates across frames,
    // including a mid-run particle-count change) is pinned against
    // itself run twice — the RNG stream, and thus every estimate, must
    // be deterministic with the reused scratch buffer.
    using namespace apps::bodytrack;
    const auto sequence = workload::makeBodySequence({});
    for (int run = 0; run < 2; ++run) {
        FilterParams params;
        params.particles = 300;
        params.layers = 3;
        makeSchedules(params.layers, params.betas, params.sigmas);
        AnnealedParticleFilter filter({}, 0xF117);
        filter.initialize(sequence.front().truth, params);
        double checksum = 0.0;
        for (std::size_t f = 0; f < 6; ++f) {
            if (f == 3)
                params.particles = 450; // Knob change mid-run.
            const auto r = filter.step(sequence[f].observation, params);
            checksum += r.estimate.root_x + r.estimate.root_y;
        }
        static double first_checksum = 0.0;
        if (run == 0)
            first_checksum = checksum;
        else
            EXPECT_EQ(checksum, first_checksum);
    }
}

// ---------------------------------------------------------------------------
// Search scoring
// ---------------------------------------------------------------------------

TEST(KernelEquivalence, SearchScoringBitExactAcrossQueriesAndKnob)
{
    using namespace apps::searchx;
    workload::CorpusParams cp;
    cp.documents = 150;
    cp.vocabulary = 600;
    cp.words_per_doc = 80;
    cp.seed = 0x5EA7C4;
    const workload::Corpus corpus(cp);
    const InvertedIndex index(corpus.documents());
    const auto queries = corpus.makeQueries(25, 3, 0xA5A5);
    for (const std::size_t max_results :
         {std::size_t{0}, std::size_t{1}, std::size_t{10},
          std::size_t{100}}) {
        for (const auto &query : queries) {
            const auto expect =
                reference::search(index, query, max_results);
            // Run the optimized path twice: the second pass catches a
            // dirty score/touched scratch left behind by the first.
            for (int pass = 0; pass < 2; ++pass) {
                const auto got = index.search(query, max_results);
                EXPECT_EQ(got.work_ops, expect.work_ops);
                ASSERT_EQ(got.results.size(), expect.results.size());
                for (std::size_t i = 0; i < expect.results.size(); ++i) {
                    EXPECT_EQ(got.results[i].doc, expect.results[i].doc);
                    EXPECT_EQ(got.results[i].score,
                              expect.results[i].score);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SpMV
// ---------------------------------------------------------------------------

TEST(KernelEquivalence, SpmvRowDotBitExactAcrossKnobGrid)
{
    using namespace apps::spmv;
    const auto rows = makeBandedRows(48, 12, 0.5, 0x5937C0FF);
    const auto csr = CsrMatrix::fromRows(rows);
    ASSERT_EQ(csr.rowCount(), rows.size());
    workload::Rng rng(0x11AC);
    std::vector<double> x(rows.size());
    for (auto &v : x)
        v = 0.1 + 0.9 * rng.uniform();
    for (const int bits : {8, 16, 24, 32, 56, 64}) {
        for (const double keep : {0.1, 0.25, 0.5, 0.75, 1.0}) {
            for (std::size_t r = 0; r < rows.size(); ++r) {
                const std::size_t nnz = rows[r].values.size();
                ASSERT_EQ(csr.nnzOf(r), nnz);
                const auto kept = std::min(
                    std::max<std::size_t>(
                        static_cast<std::size_t>(std::ceil(
                            keep * static_cast<double>(nnz))),
                        1),
                    nnz);
                EXPECT_EQ(rowDot(csr, r, x, kept, bits),
                          reference::rowDot(rows[r], x, kept, bits))
                    << "row " << r << " bits " << bits << " keep "
                    << keep;
            }
        }
    }
}

TEST(KernelEquivalence, CsrFlatteningPreservesMagnitudeOrder)
{
    using namespace apps::spmv;
    const auto rows = makeBandedRows(32, 8, 0.6, 0xC0FFEE);
    const auto csr = CsrMatrix::fromRows(rows);
    for (std::size_t r = 0; r < rows.size(); ++r) {
        const std::size_t base = csr.row_ptr[r];
        for (std::size_t i = 0; i < rows[r].by_magnitude.size(); ++i) {
            const std::size_t e = rows[r].by_magnitude[i];
            EXPECT_EQ(csr.values[base + i], rows[r].values[e]);
            EXPECT_EQ(csr.cols[base + i],
                      static_cast<std::uint32_t>(rows[r].cols[e]));
        }
    }
}

} // namespace
} // namespace powerdial
