/** @file Tests for the extension features: strategy advisor, CSV trace
 *  export (batch + streaming), and heartbeat window statistics. */
#include <algorithm>
#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "core/policy_advisor.h"
#include "core/trace_export.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "heartbeats/heartbeat.h"
#include "toy_app.h"

namespace powerdial {
namespace {

TEST(PolicyAdvisor, ServerClassIdlePowerPrefersMinimalSpeedup)
{
    // Paper section 3: "high idle power consumption ... common in
    // current server class machines" favours the low-power-state
    // strategy.
    sim::PowerModel server; // Idle 90 W of 220 W peak (~41%).
    const auto advice = core::advisePolicy(
        server, sim::FrequencyScale::xeonE5530(), 2.0);
    EXPECT_FALSE(advice.race_to_idle_wins);
    EXPECT_EQ(advice.strategy_name, "minimal-speedup");
    EXPECT_GT(advice.race_energy_j, advice.stretch_energy_j);
    // The factory must mint the winning strategy.
    EXPECT_EQ(advice.makeStrategy()()->name(), "minimal-speedup");
}

TEST(PolicyAdvisor, CheapSleepAndFlatVoltagePreferRaceToIdle)
{
    // Race-to-idle wins where DVFS has no voltage headroom (frequency
    // scaling saves no energy per cycle) and the platform can park in
    // a cheap sleep state — the paper's "sufficiently low idle power".
    sim::PowerModelParams params;
    params.v_min = params.v_max = 1.0; // No voltage scaling.
    sim::PowerModel flat(params);
    const auto advice = core::advisePolicy(
        flat, sim::FrequencyScale::xeonE5530(), 2.0,
        /*sleep_watts=*/5.0);
    EXPECT_TRUE(advice.race_to_idle_wins);
    EXPECT_EQ(advice.strategy_name, "race-to-idle");
    EXPECT_LT(advice.race_energy_j, advice.stretch_energy_j);
    // The break-even sits between the sleep power and idle power.
    EXPECT_GT(advice.breakeven_sleep_watts, 5.0);
    EXPECT_EQ(advice.makeStrategy()()->name(), "race-to-idle");
}

TEST(PolicyAdvisor, ServerIdlePowerAboveBreakevenPrefersStretch)
{
    // The paper's server platform: idle ~90 W with no deeper sleep.
    // Its break-even sleep power sits far below that, so the
    // low-power-state (minimal-speedup) solution wins — section 3's
    // "high idle power consumption ... common in current server class
    // machines" case.
    sim::PowerModel pm;
    const auto scale = sim::FrequencyScale::xeonE5530();
    const auto at_idle = core::advisePolicy(pm, scale, 2.0);
    EXPECT_FALSE(at_idle.race_to_idle_wins);
    EXPECT_GT(at_idle.breakeven_sleep_watts, 0.0);
    EXPECT_LT(at_idle.breakeven_sleep_watts, pm.idleWatts());

    // An energy-proportional platform (deep sleep below break-even)
    // flips the decision — section 3's race-to-idle case.
    const auto deep_sleep = core::advisePolicy(
        pm, scale, 2.0,
        /*sleep_watts=*/0.5 * at_idle.breakeven_sleep_watts);
    EXPECT_TRUE(deep_sleep.race_to_idle_wins);
}

TEST(PolicyAdvisor, Validation)
{
    sim::PowerModel pm;
    EXPECT_THROW(core::advisePolicy(
                     pm, sim::FrequencyScale::xeonE5530(), 0.5),
                 std::invalid_argument);
}

/** A sample controlled run with both batch and streaming exports. */
struct Sample
{
    core::ControlledRun run;
    std::vector<core::BeatTrace> beats;
    std::string streamed_csv;
};

Sample
sampleRun(std::size_t decimate = 1)
{
    tests::ToyApp app;
    auto ident = core::identifyKnobs(app);
    const auto cal = core::calibrate(app, app.trainingInputs());
    core::Session session(app, ident.table, cal.model);
    auto &recorder = session.attach<core::BeatTraceRecorder>();
    std::ostringstream stream;
    auto &csv = session.attach<core::CsvTraceObserver>(stream, decimate);
    (void)csv;
    sim::Machine machine;
    Sample out;
    out.run = session.run(0, machine);
    out.beats = recorder.beats();
    out.streamed_csv = stream.str();
    return out;
}

TEST(TraceExport, BeatsCsvHasHeaderAndRows)
{
    const auto sample = sampleRun();
    std::ostringstream os;
    core::writeBeatsCsv(os, sample.beats);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("beat,time_s,window_rate"), std::string::npos);
    // Header + one line per beat.
    const auto lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(),
                                            '\n'));
    EXPECT_EQ(lines, sample.beats.size() + 1);
}

TEST(TraceExport, StreamingObserverMatchesBatchExport)
{
    // The CsvTraceObserver streamed during the run must produce the
    // same bytes as the batch export of the recorded series.
    const auto sample = sampleRun();
    std::ostringstream batch;
    core::writeBeatsCsv(batch, sample.beats);
    EXPECT_EQ(sample.streamed_csv, batch.str());
}

TEST(TraceExport, StreamingObserverDecimates)
{
    const auto sample = sampleRun(10);
    std::ostringstream batch;
    core::writeBeatsCsv(batch, sample.beats, 10);
    EXPECT_EQ(sample.streamed_csv, batch.str());
}

TEST(TraceExport, DecimationKeepsEveryNth)
{
    const auto sample = sampleRun();
    std::ostringstream os;
    core::writeBeatsCsv(os, sample.beats, 10);
    const std::string csv = os.str();
    const auto lines =
        static_cast<std::size_t>(std::count(csv.begin(), csv.end(),
                                            '\n'));
    EXPECT_EQ(lines, (sample.beats.size() + 9) / 10 + 1);
    EXPECT_THROW(core::writeBeatsCsv(os, sample.beats, 0),
                 std::invalid_argument);
    std::ostringstream sink;
    EXPECT_THROW(core::CsvTraceObserver(sink, 0),
                 std::invalid_argument);
}

TEST(TraceExport, PowerCsv)
{
    sim::Machine machine;
    machine.idleFor(3.0);
    sim::EnergyMeter meter(1.0);
    std::ostringstream os;
    core::writePowerCsv(os, meter.sample(machine));
    const std::string csv = os.str();
    EXPECT_NE(csv.find("time_s,watts"), std::string::npos);
    EXPECT_NE(csv.find("90"), std::string::npos); // Idle watts.
}

TEST(WindowStats, SummarisesLatencies)
{
    hb::Monitor monitor(4, {1.0, 1.0});
    double t = 0.0;
    monitor.beat(t);
    for (const double lat : {1.0, 2.0, 3.0, 2.0}) {
        t += lat;
        monitor.beat(t);
    }
    const auto stats = monitor.windowStats();
    EXPECT_DOUBLE_EQ(stats.min_latency, 1.0);
    EXPECT_DOUBLE_EQ(stats.max_latency, 3.0);
    EXPECT_DOUBLE_EQ(stats.mean_latency, 2.0);
    EXPECT_NEAR(stats.stddev_latency, std::sqrt(0.5), 1e-12);
}

TEST(WindowStats, EmptyWindowIsZeros)
{
    hb::Monitor monitor(4, {1.0, 1.0});
    const auto stats = monitor.windowStats();
    EXPECT_DOUBLE_EQ(stats.mean_latency, 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev_latency, 0.0);
}

} // namespace
} // namespace powerdial
