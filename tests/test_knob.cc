/** @file Unit tests for core::KnobSpace and core::KnobTable. */
#include <gtest/gtest.h>

#include "core/knob.h"

namespace powerdial::core {
namespace {

KnobSpace
x264Space()
{
    return KnobSpace({{"subme", {1, 2, 3}},
                      {"merange", {1, 4, 16}},
                      {"ref", {1, 5}}});
}

TEST(KnobSpace, CombinationCountIsProduct)
{
    EXPECT_EQ(x264Space().combinations(), 3u * 3u * 2u);
}

TEST(KnobSpace, RowMajorLayout)
{
    const auto space = x264Space();
    // Last parameter varies fastest.
    EXPECT_EQ(space.valuesOf(0), (std::vector<double>{1, 1, 1}));
    EXPECT_EQ(space.valuesOf(1), (std::vector<double>{1, 1, 5}));
    EXPECT_EQ(space.valuesOf(2), (std::vector<double>{1, 4, 1}));
    EXPECT_EQ(space.valuesOf(space.combinations() - 1),
              (std::vector<double>{3, 16, 5}));
}

TEST(KnobSpace, IndexRoundTrip)
{
    const auto space = x264Space();
    for (std::size_t c = 0; c < space.combinations(); ++c)
        EXPECT_EQ(space.combinationOf(space.indicesOf(c)), c);
}

TEST(KnobSpace, FindCombinationByValues)
{
    const auto space = x264Space();
    EXPECT_EQ(space.findCombination({3, 16, 5}),
              space.combinations() - 1);
    EXPECT_EQ(space.findCombination({1, 1, 1}), 0u);
    EXPECT_THROW(space.findCombination({2, 2, 2}),
                 std::invalid_argument);
    EXPECT_THROW(space.findCombination({1, 1}), std::invalid_argument);
}

TEST(KnobSpace, Validation)
{
    EXPECT_THROW(KnobSpace(std::vector<KnobParameter>{}),
                 std::invalid_argument);
    EXPECT_THROW(KnobSpace({KnobParameter{"empty", {}}}),
                 std::invalid_argument);
    const auto space = x264Space();
    EXPECT_THROW(space.valuesOf(space.combinations()),
                 std::out_of_range);
    EXPECT_THROW(space.parameter(3), std::out_of_range);
    EXPECT_THROW(space.combinationOf({0, 0}), std::invalid_argument);
    EXPECT_THROW(space.combinationOf({0, 0, 9}), std::out_of_range);
}

/** Property: every combination has in-range per-parameter indices. */
class KnobSpaceSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(KnobSpaceSweep, IndicesInRange)
{
    const auto space = x264Space();
    const auto idx = space.indicesOf(GetParam());
    ASSERT_EQ(idx.size(), space.parameterCount());
    for (std::size_t p = 0; p < idx.size(); ++p)
        EXPECT_LT(idx[p], space.parameter(p).values.size());
}

INSTANTIATE_TEST_SUITE_P(AllCombinations, KnobSpaceSweep,
                         ::testing::Range<std::size_t>(0, 18));

TEST(KnobTable, ApplyWritesThroughBindings)
{
    double a = 0.0;
    std::vector<double> b;
    KnobTable table;
    table.bind({"a", [&](const std::vector<double> &v) { a = v[0]; }});
    table.bind({"b", [&](const std::vector<double> &v) { b = v; }});
    table.record(0, 0, {1.5});
    table.record(0, 1, {2.0, 3.0});
    table.record(1, 0, {9.0});
    table.record(1, 1, {8.0});

    table.apply(0);
    EXPECT_DOUBLE_EQ(a, 1.5);
    EXPECT_EQ(b, (std::vector<double>{2.0, 3.0}));
    table.apply(1);
    EXPECT_DOUBLE_EQ(a, 9.0);
    EXPECT_EQ(b, (std::vector<double>{8.0}));
}

TEST(KnobTable, RecordOutOfOrderIsFine)
{
    double a = 0.0;
    KnobTable table;
    table.bind({"a", [&](const std::vector<double> &v) { a = v[0]; }});
    table.record(5, 0, {7.0});
    table.apply(5);
    EXPECT_DOUBLE_EQ(a, 7.0);
}

TEST(KnobTable, MissingValueThrows)
{
    double a = 0.0;
    KnobTable table;
    table.bind({"a", [&](const std::vector<double> &v) { a = v[0]; }});
    EXPECT_THROW(table.apply(0), std::out_of_range);
    table.record(1, 0, {1.0});
    EXPECT_THROW(table.apply(0), std::logic_error);
}

TEST(KnobTable, Validation)
{
    KnobTable table;
    EXPECT_THROW(table.bind({"x", nullptr}), std::invalid_argument);
    EXPECT_THROW(table.record(0, 0, {1.0}), std::out_of_range);
    EXPECT_THROW(table.binding(0), std::out_of_range);
    EXPECT_THROW(table.value(0, 0), std::out_of_range);
}

TEST(KnobTable, ValueAccessor)
{
    KnobTable table;
    table.bind({"a", [](const std::vector<double> &) {}});
    table.record(2, 0, {4.0, 5.0});
    EXPECT_EQ(table.value(2, 0), (std::vector<double>{4.0, 5.0}));
}

} // namespace
} // namespace powerdial::core
