/** @file Tests for the sparse matrix-vector multiply benchmark. */
#include <gtest/gtest.h>

#include <cmath>

#include "apps/spmv/spmv_app.h"
#include "core/calibration.h"
#include "core/identify.h"

namespace powerdial::apps::spmv {
namespace {

SpmvConfig
smallConfig()
{
    SpmvConfig config;
    config.rows = 48;
    config.band = 12;
    config.inputs = 2;
    return config;
}

TEST(SpmvApp, KnobsArePrecisionAndCompression)
{
    SpmvApp app(smallConfig());
    EXPECT_EQ(app.knobSpace().combinations(), 16u);
    EXPECT_EQ(app.knobSpace().parameter(0).name, "bits");
    EXPECT_EQ(app.knobSpace().parameter(1).name, "keep");
    app.configure({16, 0.5});
    EXPECT_EQ(app.bits(), 16);
    EXPECT_DOUBLE_EQ(app.keepFraction(), 0.5);
    // The default is the exact kernel: fp64 over every nonzero.
    const auto defaults =
        app.knobSpace().valuesOf(app.defaultCombination());
    EXPECT_DOUBLE_EQ(defaults[0], 64.0);
    EXPECT_DOUBLE_EQ(defaults[1], 1.0);
}

TEST(SpmvApp, BaselineMatchesDenseReference)
{
    // At {64, 1.0} the kernel is exact: block sums of A x computed
    // here from the same public row structure must match bit-for-bit.
    SpmvConfig config = smallConfig();
    SpmvApp app(config);
    app.configure({64, 1.0});
    app.loadInput(0);
    sim::Machine machine;
    for (std::size_t u = 0; u < app.unitCount(); ++u)
        app.processUnit(u, machine);
    const auto out = app.output();
    ASSERT_EQ(out.components.size(), config.blocks);
    for (const double c : out.components)
        EXPECT_GT(c, 0.0); // positive values, positive inputs.
}

TEST(SpmvApp, CompressionChangesOutput)
{
    // Dropping nonzeros must actually perturb the abstraction —
    // otherwise the keep knob would be QoS-free and the calibration
    // degenerate.
    SpmvApp app(smallConfig());
    sim::Machine machine;

    app.configure({64, 1.0});
    app.loadInput(0);
    for (std::size_t u = 0; u < app.unitCount(); ++u)
        app.processUnit(u, machine);
    const auto full = app.output();

    app.configure({64, 0.25});
    app.loadInput(0);
    for (std::size_t u = 0; u < app.unitCount(); ++u)
        app.processUnit(u, machine);
    const auto cut = app.output();

    ASSERT_EQ(full.components.size(), cut.components.size());
    bool differs = false;
    for (std::size_t i = 0; i < full.components.size(); ++i) {
        // Truncation drops positive terms, so block sums only shrink.
        EXPECT_LE(cut.components[i], full.components[i] + 1e-12);
        if (cut.components[i] != full.components[i])
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(SpmvApp, QuantisationErrorShrinksWithWidth)
{
    // Narrower arithmetic perturbs the output more; fp64 is exact.
    SpmvApp app(smallConfig());
    sim::Machine machine;
    auto blocksAt = [&app, &machine](double bits) {
        app.configure({bits, 1.0});
        app.loadInput(0);
        for (std::size_t u = 0; u < app.unitCount(); ++u)
            app.processUnit(u, machine);
        return app.output().components;
    };
    const auto exact = blocksAt(64);
    auto errorOf = [&exact](const std::vector<double> &blocks) {
        double err = 0.0;
        for (std::size_t i = 0; i < blocks.size(); ++i)
            err += std::abs(blocks[i] - exact[i]);
        return err;
    };
    const double err32 = errorOf(blocksAt(32));
    const double err8 = errorOf(blocksAt(8));
    EXPECT_GT(err32, 0.0);
    EXPECT_GT(err8, err32);
}

TEST(SpmvApp, QosLossZeroAtBaselineAndBoundedElsewhere)
{
    SpmvApp app(smallConfig());
    const auto result = core::calibrate(app, app.trainingInputs());
    const auto &points = result.model.allPoints();
    const auto baseline = app.defaultCombination();
    EXPECT_DOUBLE_EQ(points[baseline].qos_loss, 0.0);
    EXPECT_DOUBLE_EQ(points[baseline].speedup, 1.0);
    for (const auto &p : points) {
        EXPECT_GE(p.speedup, 1.0 - 1e-9);
        EXPECT_GE(p.qos_loss, 0.0);
    }
}

TEST(SpmvApp, QosLossMonotoneAlongEachKnob)
{
    // With the other knob at its default, walking one knob towards the
    // baseline must not increase loss (more precision or more
    // retained nonzeros never hurts fidelity).
    SpmvApp app(smallConfig());
    const auto result = core::calibrate(app, app.trainingInputs());
    const auto &points = result.model.allPoints();
    const auto &space = app.knobSpace();
    const auto defaults = space.valuesOf(app.defaultCombination());
    for (std::size_t param = 0; param < 2; ++param) {
        const auto &values = space.parameter(param).values;
        double prev_loss = -1.0;
        for (std::size_t i = values.size(); i-- > 0;) {
            auto probe = defaults;
            probe[param] = values[i];
            const double loss =
                points[space.findCombination(probe)].qos_loss;
            EXPECT_GE(loss, prev_loss - 1e-9)
                << "knob " << space.parameter(param).name
                << " value index " << i;
            prev_loss = loss;
        }
    }
}

TEST(SpmvApp, SpeedupSpansTheQuantisedCorner)
{
    // Cost per row is kept * bits cycles: the {8, 0.25} corner does
    // roughly 1/32 of the baseline work (ceil() on tiny rows keeps it
    // below the analytic bound).
    SpmvApp app(smallConfig());
    const auto result = core::calibrate(app, app.trainingInputs());
    EXPECT_GT(result.model.maxSpeedup(), 8.0);
    EXPECT_LT(result.model.maxSpeedup(), 40.0);
}

TEST(SpmvApp, IdentificationAcceptsBothKnobs)
{
    // The influence pipeline must accept mac_bits and keep_frac as
    // control variables and exclude the untainted matrix geometry.
    SpmvApp app(smallConfig());
    const auto result = core::identifyKnobs(app);
    ASSERT_TRUE(result.analysis.accepted) << result.report;
    EXPECT_GE(result.analysis.indexOf("mac_bits"), 0);
    EXPECT_GE(result.analysis.indexOf("keep_frac"), 0);
    EXPECT_EQ(result.analysis.indexOf("row_count"), -1);
}

TEST(SpmvApp, CloneRunsIdentically)
{
    SpmvApp app(smallConfig());
    auto copy = app.clone();
    const auto combo = app.knobSpace().combinations() / 2;
    const auto a = core::runFixed(app, 1, combo);
    const auto b = core::runFixed(*copy, 1, combo);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
    ASSERT_EQ(a.output.components.size(), b.output.components.size());
    for (std::size_t i = 0; i < a.output.components.size(); ++i)
        EXPECT_DOUBLE_EQ(a.output.components[i],
                         b.output.components[i]);
}

TEST(SpmvApp, Validation)
{
    SpmvApp app(smallConfig());
    EXPECT_THROW(app.configure({64.0}), std::invalid_argument);
    EXPECT_THROW(app.loadInput(99), std::out_of_range);

    SpmvConfig bad = smallConfig();
    bad.rows = 0;
    EXPECT_THROW(SpmvApp{bad}, std::invalid_argument);
    bad = smallConfig();
    bad.fill = 0.0;
    EXPECT_THROW(SpmvApp{bad}, std::invalid_argument);
    bad = smallConfig();
    bad.blocks = bad.rows + 1;
    EXPECT_THROW(SpmvApp{bad}, std::invalid_argument);
    bad = smallConfig();
    bad.inputs = 0;
    EXPECT_THROW(SpmvApp{bad}, std::invalid_argument);
}

} // namespace
} // namespace powerdial::apps::spmv
