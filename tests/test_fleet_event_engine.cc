/**
 * @file
 * Differential harness for the discrete-event fleet engine.
 *
 * The engine's correctness story has two legs, both pinned here:
 *
 *   1. *Differential*: in epoch-compat mode the event engine must
 *      reproduce the legacy epoch loop's FleetReport bit for bit —
 *      every epoch row, every job record, every aggregate — across a
 *      randomized sweep of seeded scenarios (machines, tenant mixes,
 *      Poisson rates, queue depths, epoch fractions, all three
 *      arbiter policies). Failures print the reproducing seed.
 *
 *   2. *Invariants*: in full event mode (where reports legitimately
 *      differ from the epoch loop) every serve must still conserve
 *      jobs (admitted = completed + drained), keep per-machine power
 *      budgets summing to the cluster cap after every arbitration
 *      event, fire arbitrations at monotone non-decreasing times with
 *      strictly increasing lease generations, and stay bit-identical
 *      across thread counts.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "fleet/server.h"
#include "fleet_scenarios.h"

namespace powerdial::fleet {
namespace {

using tests::FleetScenario;
using tests::expectReportsIdentical;
using tests::makeFleetScenario;
using tests::makePipeline;

/** Serve one scenario under the given engine mode. */
FleetReport
serveScenario(const tests::Pipeline &p, const FleetScenario &scenario,
              EngineMode engine, bool epoch_compat = false,
              std::size_t threads = 1)
{
    ServerOptions options = scenario.options;
    options.engine = engine;
    options.event.epoch_compat = epoch_compat;
    options.threads = threads;
    Server server(p.app, p.table, p.model, options);
    return server.serve(scenario.arrivals);
}

std::size_t
completedAcrossEpochs(const FleetReport &report)
{
    std::size_t completed = 0;
    for (const EpochStats &row : report.epochs)
        completed += row.completed;
    return completed;
}

// ---------------------------------------------------------------------
// Differential: epoch loop vs event engine in epoch-compat mode.
// ---------------------------------------------------------------------

TEST(EventEngineDifferential, CompatMatchesEpochOnSpikeScenario)
{
    auto p = makePipeline();
    const FleetScenario scenario = makeFleetScenario(
        42, p.model.baselineSeconds(), p.app.productionInputs());
    expectReportsIdentical(
        serveScenario(p, scenario, EngineMode::Epoch),
        serveScenario(p, scenario, EngineMode::Event, true));
}

TEST(EventEngineDifferential, RandomizedSweepFiftySeeds)
{
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    const auto inputs = p.app.productionInputs();
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        SCOPED_TRACE(::testing::Message()
                     << "reproduce with makeFleetScenario(seed="
                     << seed << ")");
        const FleetScenario scenario =
            makeFleetScenario(seed, baseline_s, inputs);
        expectReportsIdentical(
            serveScenario(p, scenario, EngineMode::Epoch),
            serveScenario(p, scenario, EngineMode::Event, true));
        if (::testing::Test::HasFailure())
            break; // One seed's full diff is enough output.
    }
}

TEST(EventEngineDifferential, CompatShedAccountingMatchesEpochEngine)
{
    // Satellite: shed accounting under pressure. A 1-machine fleet
    // with a tight queue bound and a hot trace must shed, and the
    // sheds must agree between engines in total, per machine, per
    // epoch row, and in lease-generation context (the full row
    // comparison covers generation tags).
    auto p = makePipeline();
    FleetScenario scenario = makeFleetScenario(
        7, p.model.baselineSeconds(), p.app.productionInputs());
    scenario.options.machines = 1;
    scenario.options.queue_depth = 3;
    scenario.options.epoch_seconds = p.model.baselineSeconds() * 0.5;
    scenario.arrivals = {6, 6, 0, 6, 1, 0, 0};

    const FleetReport epoch =
        serveScenario(p, scenario, EngineMode::Epoch);
    const FleetReport compat =
        serveScenario(p, scenario, EngineMode::Event, true);
    ASSERT_GT(epoch.total_shed, 0u);
    EXPECT_EQ(epoch.total_shed, compat.total_shed);
    EXPECT_EQ(epoch.shed_by_machine, compat.shed_by_machine);
    expectReportsIdentical(epoch, compat);

    // Attribution is complete: per-machine sheds sum to the total.
    const std::size_t attributed =
        std::accumulate(epoch.shed_by_machine.begin(),
                        epoch.shed_by_machine.end(), std::size_t{0});
    EXPECT_EQ(attributed, epoch.total_shed);
}

TEST(EventEngineDifferential, CompatIsBitIdenticalAcrossThreadCounts)
{
    auto p = makePipeline();
    const FleetScenario scenario = makeFleetScenario(
        11, p.model.baselineSeconds(), p.app.productionInputs());
    expectReportsIdentical(
        serveScenario(p, scenario, EngineMode::Event, true, 1),
        serveScenario(p, scenario, EngineMode::Event, true, 4));
}

// ---------------------------------------------------------------------
// Event-mode invariants (reports may differ from the epoch loop, but
// these properties must hold on every serve).
// ---------------------------------------------------------------------

TEST(EventEngineInvariants, ConservesJobsAcrossSeeds)
{
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    const auto inputs = p.app.productionInputs();
    for (std::uint64_t seed = 100; seed < 120; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        const FleetScenario scenario =
            makeFleetScenario(seed, baseline_s, inputs);
        const FleetReport report =
            serveScenario(p, scenario, EngineMode::Event);

        // Admitted = completed inside the horizon + in flight at the
        // horizon; every admitted job has exactly one record; offered
        // = admitted + shed.
        EXPECT_EQ(report.total_jobs,
                  completedAcrossEpochs(report) + report.drained_jobs);
        EXPECT_EQ(report.jobs.size(), report.total_jobs);
        std::size_t offered = 0;
        for (const std::size_t n : scenario.arrivals)
            offered += n;
        EXPECT_EQ(offered, report.total_jobs + report.total_shed);
        const std::size_t attributed = std::accumulate(
            report.shed_by_machine.begin(),
            report.shed_by_machine.end(), std::size_t{0});
        EXPECT_EQ(attributed, report.total_shed);
    }
}

TEST(EventEngineInvariants, BudgetsSumToCapAfterEveryArbitration)
{
    auto p = makePipeline();
    const double baseline_s = p.model.baselineSeconds();
    const auto inputs = p.app.productionInputs();
    std::size_t capped_scenarios = 0;
    for (std::uint64_t seed = 200; seed < 215; ++seed) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        FleetScenario scenario =
            makeFleetScenario(seed, baseline_s, inputs);
        const double cap = scenario.options.arbiter.cluster_cap_watts;
        if (cap <= 0.0)
            continue;
        ++capped_scenarios;
        std::size_t rounds = 0;
        scenario.options.arbitration_probe =
            [&](const ArbitrationSample &sample) {
                ++rounds;
                double total = 0.0;
                for (const double watts :
                     sample.decision.budget_watts)
                    total += watts;
                EXPECT_NEAR(total, cap, 1e-9)
                    << "arbitration at t=" << sample.time_s
                    << " generation " << sample.generation;
            };
        ServerOptions options = scenario.options;
        options.engine = EngineMode::Event;
        Server server(p.app, p.table, p.model, options);
        const FleetReport report = server.serve(scenario.arrivals);
        if (report.total_jobs > 0) {
            EXPECT_GT(rounds, 0u);
        }
    }
    // The sweep range must actually exercise capped arbitration.
    EXPECT_GT(capped_scenarios, 3u);
}

TEST(EventEngineInvariants, ArbitrationEventsAreMonotone)
{
    // Event timestamps never run backwards and every arbitration
    // installs a fresh, strictly increasing lease generation — in
    // both engine modes.
    auto p = makePipeline();
    const auto inputs = p.app.productionInputs();
    for (const bool compat : {false, true}) {
        SCOPED_TRACE(::testing::Message() << "compat=" << compat);
        FleetScenario scenario = makeFleetScenario(
            21, p.model.baselineSeconds(), inputs);
        double last_time = -1.0;
        std::size_t last_generation = 0;
        std::size_t rounds = 0;
        scenario.options.arbitration_probe =
            [&](const ArbitrationSample &sample) {
                ++rounds;
                EXPECT_GE(sample.time_s, last_time);
                EXPECT_GT(sample.generation, last_generation);
                last_time = sample.time_s;
                last_generation = sample.generation;
            };
        ServerOptions options = scenario.options;
        options.engine = EngineMode::Event;
        options.event.epoch_compat = compat;
        Server server(p.app, p.table, p.model, options);
        server.serve(scenario.arrivals);
        EXPECT_GT(rounds, 0u);
    }
}

TEST(EventEngineInvariants, EventModeIsBitIdenticalAcrossThreadCounts)
{
    auto p = makePipeline();
    const auto inputs = p.app.productionInputs();
    for (const std::uint64_t seed : {5ULL, 23ULL, 31ULL}) {
        SCOPED_TRACE(::testing::Message() << "seed=" << seed);
        const FleetScenario scenario = makeFleetScenario(
            seed, p.model.baselineSeconds(), inputs);
        expectReportsIdentical(
            serveScenario(p, scenario, EngineMode::Event, false, 1),
            serveScenario(p, scenario, EngineMode::Event, false, 4));
    }
}

// ---------------------------------------------------------------------
// Event-mode behaviour: sampling, quanta, validation.
// ---------------------------------------------------------------------

TEST(EventEngine, SampleStrideCoarsensTheReport)
{
    auto p = makePipeline();
    FleetScenario scenario = makeFleetScenario(
        3, p.model.baselineSeconds(), p.app.productionInputs());
    ServerOptions options = scenario.options;
    options.engine = EngineMode::Event;
    options.event.sample_stride = 4;
    Server server(p.app, p.table, p.model, options);
    const FleetReport report = server.serve(scenario.arrivals);

    const std::size_t n = scenario.arrivals.size();
    EXPECT_EQ(report.epochs.size(), (n + 3) / 4);
    for (std::size_t w = 0; w < report.epochs.size(); ++w)
        EXPECT_EQ(report.epochs[w].epoch, w * 4);
    // Coarser rows lose no jobs.
    EXPECT_EQ(report.total_jobs,
              completedAcrossEpochs(report) + report.drained_jobs);
    EXPECT_EQ(report.jobs.size(), report.total_jobs);
}

TEST(EventEngine, SubEpochQuantumStillConservesJobs)
{
    auto p = makePipeline();
    const FleetScenario scenario = makeFleetScenario(
        13, p.model.baselineSeconds(), p.app.productionInputs());
    ServerOptions options = scenario.options;
    options.engine = EngineMode::Event;
    options.event.quantum_seconds = options.epoch_seconds / 3.0;
    Server server(p.app, p.table, p.model, options);
    const FleetReport report = server.serve(scenario.arrivals);
    EXPECT_EQ(report.total_jobs,
              completedAcrossEpochs(report) + report.drained_jobs);
    EXPECT_EQ(report.jobs.size(), report.total_jobs);
}

TEST(EventEngine, QuantumBoundsCompletionDiscoveryLatency)
{
    // One machine, one job, epochs twice the job duration: the job
    // finishes mid-epoch. Its completion-triggered arbitration fires
    // at the first quantum tick past the finish — so a finer quantum
    // must discover it strictly earlier than the default one-epoch
    // quantum, which cannot notice it before the epoch ends.
    auto p = makePipeline();
    const double epoch_s = p.model.baselineSeconds() * 2.0;
    const auto discoveryTime = [&](double quantum) {
        ServerOptions options;
        options.machines = 1;
        options.epoch_seconds = epoch_s;
        options.engine = EngineMode::Event;
        options.event.quantum_seconds = quantum;
        std::vector<double> times;
        options.arbitration_probe =
            [&times](const ArbitrationSample &sample) {
                times.push_back(sample.time_s);
            };
        Server server(p.app, p.table, p.model, options);
        const FleetReport report = server.serve(std::vector<std::size_t>{1, 0, 0});
        EXPECT_EQ(report.total_jobs, 1u);
        EXPECT_EQ(report.drained_jobs, 0u);
        // Admission round + completion round, nothing else: quantum
        // ticks without a completion re-price nothing, and the chain
        // stops once the fleet idles.
        EXPECT_EQ(times.size(), 2u);
        return times.back();
    };
    const double coarse = discoveryTime(0.0); // Default: one epoch.
    const double fine = discoveryTime(epoch_s / 8.0);
    EXPECT_DOUBLE_EQ(coarse, epoch_s);
    EXPECT_LT(fine, coarse);
    EXPECT_GT(fine, 0.0);
}

TEST(EventEngine, ValidatesEngineOptions)
{
    auto p = makePipeline();
    ServerOptions options;
    options.event.sample_stride = 0;
    EXPECT_THROW(Server(p.app, p.table, p.model, options),
                 std::invalid_argument);

    options = ServerOptions{};
    options.event.quantum_seconds = -1.0;
    EXPECT_THROW(Server(p.app, p.table, p.model, options),
                 std::invalid_argument);

    // Compat mode *is* the legacy schedule; a custom stride or
    // quantum would contradict it.
    options = ServerOptions{};
    options.event.epoch_compat = true;
    options.event.sample_stride = 2;
    EXPECT_THROW(Server(p.app, p.table, p.model, options),
                 std::invalid_argument);
    options = ServerOptions{};
    options.event.epoch_compat = true;
    options.event.quantum_seconds = 0.5;
    EXPECT_THROW(Server(p.app, p.table, p.model, options),
                 std::invalid_argument);
}

TEST(EventEngine, IdleEpochsScheduleNoArbitration)
{
    // The scale win in one assertion: a trace that goes quiet stops
    // producing arbitration rounds once the last tenant drains, while
    // the epoch loop re-prices every epoch regardless.
    auto p = makePipeline();
    ServerOptions options;
    options.machines = 2;
    options.epoch_seconds = p.model.baselineSeconds() * 2.0;
    options.arbiter.cluster_cap_watts = 400.0;
    std::vector<std::size_t> arrivals(40, 0);
    arrivals[0] = 3; // One early burst, then silence.

    std::size_t event_rounds = 0;
    options.arbitration_probe = [&](const ArbitrationSample &) {
        ++event_rounds;
    };
    options.engine = EngineMode::Event;
    Server event_server(p.app, p.table, p.model, options);
    const FleetReport report = event_server.serve(arrivals);
    EXPECT_EQ(report.total_jobs, 3u);

    std::size_t epoch_rounds = 0;
    options.arbitration_probe = [&](const ArbitrationSample &) {
        ++epoch_rounds;
    };
    options.engine = EngineMode::Epoch;
    Server epoch_server(p.app, p.table, p.model, options);
    epoch_server.serve(arrivals);

    EXPECT_EQ(epoch_rounds, arrivals.size());
    EXPECT_LT(event_rounds, epoch_rounds / 2);
    EXPECT_GT(event_rounds, 0u);
}

} // namespace
} // namespace powerdial::fleet
