/** @file Unit tests for sim::DvfsGovernor. */
#include <gtest/gtest.h>

#include "sim/dvfs_governor.h"

namespace powerdial::sim {
namespace {

TEST(DvfsGovernor, PowerCapScheduleShape)
{
    Machine m;
    auto gov = DvfsGovernor::powerCap(m, 10.0, 30.0);
    EXPECT_EQ(gov.pending(), 2u);
}

TEST(DvfsGovernor, AppliesEventsWhenTimeReached)
{
    Machine m;
    auto gov = DvfsGovernor::powerCap(m, 1.0, 3.0);

    m.idleFor(0.5);
    EXPECT_FALSE(gov.poll(m));
    EXPECT_EQ(m.pstate(), 0u);

    m.idleFor(1.0); // now = 1.5: cap imposed.
    EXPECT_TRUE(gov.poll(m));
    EXPECT_EQ(m.pstate(), m.scale().lowestState());

    m.idleFor(2.0); // now = 3.5: cap lifted.
    EXPECT_TRUE(gov.poll(m));
    EXPECT_EQ(m.pstate(), 0u);
    EXPECT_EQ(gov.pending(), 0u);
}

TEST(DvfsGovernor, PollAppliesAllDueEventsAtOnce)
{
    Machine m;
    auto gov = DvfsGovernor::powerCap(m, 1.0, 2.0);
    m.idleFor(5.0); // Both events already due.
    gov.poll(m);
    EXPECT_EQ(m.pstate(), 0u); // Ends uncapped.
    EXPECT_EQ(gov.pending(), 0u);
}

TEST(DvfsGovernor, NoChangeReturnsFalse)
{
    Machine m;
    DvfsGovernor gov;
    gov.schedule(1.0, 0); // Already at P-state 0.
    m.idleFor(2.0);
    EXPECT_FALSE(gov.poll(m));
}

TEST(DvfsGovernor, OutOfOrderEventsRejected)
{
    DvfsGovernor gov;
    gov.schedule(5.0, 1);
    EXPECT_THROW(gov.schedule(3.0, 0), std::invalid_argument);
}

TEST(DvfsGovernor, LiftBeforeImposeRejected)
{
    Machine m;
    EXPECT_THROW(DvfsGovernor::powerCap(m, 5.0, 5.0),
                 std::invalid_argument);
}

TEST(DvfsGovernor, ResetReplaysSchedule)
{
    // core::Session resets its owned governor at every run start so
    // the same schedule replays against each fresh machine.
    Machine first;
    auto gov = DvfsGovernor::powerCap(first, 1.0, 3.0);
    first.idleFor(5.0);
    gov.poll(first);
    EXPECT_EQ(gov.pending(), 0u);

    gov.reset();
    EXPECT_EQ(gov.pending(), 2u);
    Machine second;
    second.idleFor(1.5);
    EXPECT_TRUE(gov.poll(second));
    EXPECT_EQ(second.pstate(), second.scale().lowestState());
}

TEST(DvfsGovernor, CustomMultiStepSchedule)
{
    Machine m;
    DvfsGovernor gov;
    gov.schedule(1.0, 3);
    gov.schedule(2.0, 6);
    gov.schedule(3.0, 0);
    m.idleFor(1.5);
    gov.poll(m);
    EXPECT_EQ(m.pstate(), 3u);
    m.idleFor(1.0);
    gov.poll(m);
    EXPECT_EQ(m.pstate(), 6u);
}

} // namespace
} // namespace powerdial::sim
