/**
 * @file
 * A synthetic PowerDial application with an exactly known response
 * model, shared by the core-library tests.
 *
 * One knob "k" with values {1, 2, 4, 8}: processing one unit costs
 * base_cycles / k cycles (speedup is exactly k) and the output
 * abstraction is the single component 100 * (1 - loss_rate * (k - 1)),
 * so the QoS loss of setting k is exactly loss_rate * (k - 1).
 */
#ifndef POWERDIAL_TESTS_TOY_APP_H
#define POWERDIAL_TESTS_TOY_APP_H

#include <numeric>

#include "core/app.h"

namespace powerdial::tests {

class ToyApp final : public core::App
{
  public:
    struct Config
    {
        std::vector<double> k_values{1.0, 2.0, 4.0, 8.0};
        double base_cycles = 1.2e6;
        double loss_rate = 0.01; //!< QoS loss per unit of (k - 1).
        std::size_t units = 200;
        std::size_t inputs = 4;
    };

    ToyApp() : ToyApp(Config{}) {}

    explicit ToyApp(const Config &config)
        : config_(config), space_({{"k", config.k_values}})
    {
    }

    std::string name() const override { return "toy"; }

    std::unique_ptr<core::App>
    clone() const override
    {
        return std::make_unique<ToyApp>(*this);
    }

    const core::KnobSpace &knobSpace() const override { return space_; }

    std::size_t defaultCombination() const override { return 0; }

    void
    configure(const std::vector<double> &params) override
    {
        k_ = params.at(0);
    }

    void
    traceRun(influence::TraceRun &trace,
             const std::vector<double> &params) override
    {
        influence::Value<double> k(params.at(0), influence::paramBit(0));
        trace.store("k", k * influence::Value<double>(1.0), "toy:init");
        trace.firstHeartbeat();
        trace.read("k", "toy:loop");
    }

    void
    bindControlVariables(core::KnobTable &table) override
    {
        table.bind({"k", [this](const std::vector<double> &v) {
                        k_ = v.at(0);
                    }});
    }

    std::size_t inputCount() const override { return config_.inputs; }

    std::vector<std::size_t>
    trainingInputs() const override
    {
        std::vector<std::size_t> idx(config_.inputs / 2);
        std::iota(idx.begin(), idx.end(), 0);
        return idx;
    }

    std::vector<std::size_t>
    productionInputs() const override
    {
        std::vector<std::size_t> idx(config_.inputs -
                                     config_.inputs / 2);
        std::iota(idx.begin(), idx.end(), config_.inputs / 2);
        return idx;
    }

    void
    loadInput(std::size_t index) override
    {
        (void)index;
        produced_ = 0.0;
        units_done_ = 0;
    }

    std::size_t unitCount() const override { return config_.units; }

    void
    processUnit(std::size_t unit, sim::Machine &machine) override
    {
        (void)unit;
        machine.execute(config_.base_cycles / k_);
        produced_ += 100.0 * (1.0 - config_.loss_rate * (k_ - 1.0));
        ++units_done_;
    }

    qos::OutputAbstraction
    output() const override
    {
        const double mean = units_done_ > 0
            ? produced_ / static_cast<double>(units_done_)
            : 0.0;
        return {{mean}, {}};
    }

    /** The current knob value (control variable), for assertions. */
    double k() const { return k_; }

  private:
    Config config_;
    core::KnobSpace space_;
    double k_ = 1.0;
    double produced_ = 0.0;
    std::size_t units_done_ = 0;
};

} // namespace powerdial::tests

#endif // POWERDIAL_TESTS_TOY_APP_H
