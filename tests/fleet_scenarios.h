/**
 * @file
 * Shared scenario machinery for the fleet engine tests.
 *
 * The differential harness (test_fleet_event_engine.cc) and the fleet
 * subsystem tests (test_fleet.cc) must agree on three things: how a
 * test pipeline is built, what "identical FleetReports" means (every
 * field, not a summary hash), and how a seeded scenario maps to server
 * options + an arrival trace. Keeping all three here means a
 * differential failure in one suite is reproducible from its seed in
 * the other.
 */
#ifndef POWERDIAL_TESTS_FLEET_SCENARIOS_H
#define POWERDIAL_TESTS_FLEET_SCENARIOS_H

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "core/calibration.h"
#include "core/identify.h"
#include "fleet/server.h"
#include "toy_app.h"
#include "workload/arrivals.h"
#include "workload/load_trace.h"
#include "workload/rng.h"

namespace powerdial::fleet::tests {

struct Pipeline
{
    powerdial::tests::ToyApp app;
    core::KnobTable table;
    core::ResponseModel model;
};

inline Pipeline
makePipeline(const powerdial::tests::ToyApp::Config &config = {})
{
    Pipeline p{powerdial::tests::ToyApp(config), {}, {}};
    auto ident = core::identifyKnobs(p.app);
    EXPECT_TRUE(ident.analysis.accepted);
    p.table = std::move(ident.table);
    p.model = core::calibrate(p.app, p.app.trainingInputs()).model;
    return p;
}

/**
 * Assert two FleetReports are identical field for field — exact
 * (bit-level) equality on every double, no tolerances. Wrap calls in
 * SCOPED_TRACE with the scenario seed so a differential failure
 * prints its reproducer.
 */
inline void
expectReportsIdentical(const FleetReport &a, const FleetReport &b)
{
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (std::size_t e = 0; e < a.epochs.size(); ++e) {
        SCOPED_TRACE(::testing::Message() << "epoch row " << e);
        EXPECT_EQ(a.epochs[e].epoch, b.epochs[e].epoch);
        EXPECT_EQ(a.epochs[e].arrivals, b.epochs[e].arrivals);
        EXPECT_EQ(a.epochs[e].shed, b.epochs[e].shed);
        EXPECT_EQ(a.epochs[e].completed, b.epochs[e].completed);
        EXPECT_EQ(a.epochs[e].active, b.epochs[e].active);
        EXPECT_EQ(a.epochs[e].lease_generation,
                  b.epochs[e].lease_generation);
        EXPECT_EQ(a.epochs[e].watts, b.epochs[e].watts);
        EXPECT_EQ(a.epochs[e].fleet_rate, b.epochs[e].fleet_rate);
        EXPECT_EQ(a.epochs[e].mean_qos_loss,
                  b.epochs[e].mean_qos_loss);
        EXPECT_EQ(a.epochs[e].max_pause_ratio,
                  b.epochs[e].max_pause_ratio);
    }
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "job " << i);
        EXPECT_EQ(a.jobs[i].job, b.jobs[i].job);
        EXPECT_EQ(a.jobs[i].tenant, b.jobs[i].tenant);
        EXPECT_EQ(a.jobs[i].epoch, b.jobs[i].epoch);
        EXPECT_EQ(a.jobs[i].machine, b.jobs[i].machine);
        EXPECT_EQ(a.jobs[i].job_class, b.jobs[i].job_class);
        EXPECT_EQ(a.jobs[i].deadline_s, b.jobs[i].deadline_s);
        EXPECT_EQ(a.jobs[i].predicted_s, b.jobs[i].predicted_s);
        EXPECT_EQ(a.jobs[i].latency_s, b.jobs[i].latency_s);
        EXPECT_EQ(a.jobs[i].mean_rate, b.jobs[i].mean_rate);
        EXPECT_EQ(a.jobs[i].qos_loss, b.jobs[i].qos_loss);
        EXPECT_EQ(a.jobs[i].energy_j, b.jobs[i].energy_j);
        EXPECT_EQ(a.jobs[i].beats, b.jobs[i].beats);
        EXPECT_EQ(a.jobs[i].lease_generation,
                  b.jobs[i].lease_generation);
        EXPECT_EQ(a.jobs[i].lease_updates, b.jobs[i].lease_updates);
        EXPECT_EQ(a.jobs[i].service_s, b.jobs[i].service_s);
        EXPECT_EQ(a.jobs[i].queue_share_s, b.jobs[i].queue_share_s);
        EXPECT_EQ(a.jobs[i].class_deficit_s,
                  b.jobs[i].class_deficit_s);
        EXPECT_EQ(a.jobs[i].pause_s, b.jobs[i].pause_s);
    }
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (std::size_t i = 0; i < a.tenants.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "tenant " << i);
        EXPECT_EQ(a.tenants[i].tenant, b.tenants[i].tenant);
        EXPECT_EQ(a.tenants[i].jobs, b.tenants[i].jobs);
        EXPECT_EQ(a.tenants[i].mean_qos_loss,
                  b.tenants[i].mean_qos_loss);
        EXPECT_EQ(a.tenants[i].mean_latency_s,
                  b.tenants[i].mean_latency_s);
        EXPECT_EQ(a.tenants[i].p50_latency_s,
                  b.tenants[i].p50_latency_s);
        EXPECT_EQ(a.tenants[i].p95_latency_s,
                  b.tenants[i].p95_latency_s);
        EXPECT_EQ(a.tenants[i].p99_latency_s,
                  b.tenants[i].p99_latency_s);
    }
    ASSERT_EQ(a.machines.size(), b.machines.size());
    for (std::size_t i = 0; i < a.machines.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "machine row " << i);
        EXPECT_EQ(a.machines[i].machine, b.machines[i].machine);
        EXPECT_EQ(a.machines[i].machine_class,
                  b.machines[i].machine_class);
        EXPECT_EQ(a.machines[i].jobs, b.machines[i].jobs);
        EXPECT_EQ(a.machines[i].shed, b.machines[i].shed);
        EXPECT_EQ(a.machines[i].p50_latency_s,
                  b.machines[i].p50_latency_s);
        EXPECT_EQ(a.machines[i].p95_latency_s,
                  b.machines[i].p95_latency_s);
        EXPECT_EQ(a.machines[i].p99_latency_s,
                  b.machines[i].p99_latency_s);
    }
    ASSERT_EQ(a.classes.size(), b.classes.size());
    for (std::size_t i = 0; i < a.classes.size(); ++i) {
        SCOPED_TRACE(::testing::Message() << "class row " << i);
        EXPECT_EQ(a.classes[i].job_class, b.classes[i].job_class);
        EXPECT_EQ(a.classes[i].jobs, b.classes[i].jobs);
        EXPECT_EQ(a.classes[i].shed, b.classes[i].shed);
        EXPECT_EQ(a.classes[i].p50_latency_s,
                  b.classes[i].p50_latency_s);
        EXPECT_EQ(a.classes[i].p95_latency_s,
                  b.classes[i].p95_latency_s);
        EXPECT_EQ(a.classes[i].p99_latency_s,
                  b.classes[i].p99_latency_s);
    }
    EXPECT_EQ(a.total_jobs, b.total_jobs);
    EXPECT_EQ(a.total_shed, b.total_shed);
    EXPECT_EQ(a.drained_jobs, b.drained_jobs);
    EXPECT_EQ(a.shed_by_machine, b.shed_by_machine);
    EXPECT_EQ(a.shed_by_class, b.shed_by_class);
    EXPECT_EQ(a.mean_watts, b.mean_watts);
    EXPECT_EQ(a.mean_fleet_rate, b.mean_fleet_rate);
    EXPECT_EQ(a.mean_qos_loss, b.mean_qos_loss);
    EXPECT_EQ(a.p50_latency_s, b.p50_latency_s);
    EXPECT_EQ(a.p95_latency_s, b.p95_latency_s);
    EXPECT_EQ(a.p99_latency_s, b.p99_latency_s);
}

/** One seeded differential scenario: options + an arrival trace. */
struct FleetScenario
{
    ServerOptions options; //!< engine = Epoch; callers flip the mode.
    std::vector<std::size_t> arrivals;
};

/**
 * Deterministically derive a scenario from @p seed, varying machine
 * count, tenant mix, Poisson arrival rate, queue depth, epoch
 * fraction, placement, and all three arbiter policies.
 *
 * @param baseline_s        The pipeline's calibrated baseline job
 *                          duration (epoch lengths scale off it).
 * @param production_inputs The app's production input indices (the
 *                          tenant mix draws a rotation of them).
 */
inline FleetScenario
makeFleetScenario(std::uint64_t seed, double baseline_s,
                  const std::vector<std::size_t> &production_inputs)
{
    workload::Rng rng(seed);
    FleetScenario scenario;
    ServerOptions &o = scenario.options;

    o.machines = 1 + static_cast<std::size_t>(rng.below(4));
    o.threads = 1;

    // Epoch fraction: jobs span several epochs for small fractions.
    const double epoch_fracs[] = {0.3, 0.5, 1.0, 1.6};
    o.epoch_seconds = baseline_s * epoch_fracs[rng.below(4)];

    const ArbiterPolicy policies[] = {
        ArbiterPolicy::Uniform, ArbiterPolicy::UtilizationProportional,
        ArbiterPolicy::QosFeedback};
    o.arbiter.policy = policies[rng.below(3)];
    // Cap: uncapped, or tight enough to force DVFS caps (and
    // sometimes duty-cycle pauses) but never below idle power, where
    // no pause ratio could meet the budget.
    const sim::Machine probe_machine(o.machine);
    const double idle = probe_machine.powerModel().idleWatts();
    const double peak = probe_machine.powerModel().peakWatts();
    if (rng.below(2) == 0)
        o.arbiter.cluster_cap_watts =
            static_cast<double>(o.machines) *
            rng.uniform(idle + 15.0, 1.1 * peak);

    o.placement = rng.below(2) == 0 ? makeLeastLoadedPlacement()
                                    : makePowerAwarePlacement();
    if (rng.below(2) == 0)
        o.queue_depth = 2 + static_cast<std::size_t>(rng.below(10));

    // Tenant mix: a rotation of the production inputs, sometimes a
    // strict subset.
    const std::size_t count = 1 +
        static_cast<std::size_t>(
            rng.below(production_inputs.size()));
    const std::size_t offset = static_cast<std::size_t>(
        rng.below(production_inputs.size()));
    for (std::size_t i = 0; i < count; ++i)
        o.tenants.push_back(
            production_inputs[(offset + i) %
                              production_inputs.size()]);

    // Arrivals: Poisson over a spiky utilisation trace.
    workload::LoadTraceParams trace;
    trace.steps = 8 + static_cast<std::size_t>(rng.below(10));
    trace.seed = seed + 1;
    trace.spike_probability = 0.15;
    workload::PoissonArrivalParams arrival_params;
    arrival_params.peak_rate = 1.0 + rng.uniform(0.0, 5.0);
    arrival_params.seed = seed + 2;
    scenario.arrivals = workload::makePoissonArrivals(
        workload::makeLoadTrace(trace), arrival_params);
    return scenario;
}

} // namespace powerdial::fleet::tests

#endif // POWERDIAL_TESTS_FLEET_SCENARIOS_H
