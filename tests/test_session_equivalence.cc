/**
 * @file
 * Bit-identity regression suite for the Session redesign.
 *
 * Proves that the composable Session — deadbeat ControlPolicy plus the
 * ported MinimalSpeedup/RaceToIdle strategies and the BeatTraceRecorder
 * observer — reproduces the pre-redesign monolithic Runtime::run
 * (kept verbatim in legacy_runtime.h) *bit-identically*: every field
 * of every beat, and the run summary, compared with exact floating-
 * point equality on all four benchmark applications and the toy app,
 * with and without a power cap, for both ported strategies and with
 * knobs disabled.
 */
#include <gtest/gtest.h>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "legacy_runtime.h"
#include "toy_app.h"

namespace powerdial {
namespace {

namespace legacy = tests::legacy;

struct Scenario
{
    legacy::ActuationPolicy policy =
        legacy::ActuationPolicy::MinimalSpeedup;
    bool knobs_enabled = true;
    bool capped = true;
    double gain = 1.0;
};

core::StrategyFactory
strategyFor(legacy::ActuationPolicy policy)
{
    return policy == legacy::ActuationPolicy::RaceToIdle
        ? core::makeRaceToIdleStrategy()
        : core::makeMinimalSpeedupStrategy();
}

/**
 * Run the same scenario through the legacy monolith and the Session
 * and require bit-identical traces. The target is the production
 * input's own observed baseline rate (the section 5.4 protocol).
 */
void
expectBitIdentical(core::App &app, const Scenario &scenario)
{
    auto ident = core::identifyKnobs(app);
    ASSERT_TRUE(ident.analysis.accepted) << ident.report;
    const auto cal = core::calibrate(app, app.trainingInputs());

    const auto input = app.productionInputs().front();
    const auto baseline =
        core::runFixed(app, input, app.defaultCombination());
    app.loadInput(input);
    const double target =
        static_cast<double>(app.unitCount()) / baseline.seconds;

    // Legacy monolith.
    legacy::RuntimeOptions old_options;
    old_options.policy = scenario.policy;
    old_options.knobs_enabled = scenario.knobs_enabled;
    old_options.target_rate = target;
    old_options.gain = scenario.gain;
    sim::Machine old_machine;
    legacy::ControlledRun old_run;
    if (scenario.capped) {
        auto governor = sim::DvfsGovernor::powerCap(
            old_machine, 0.25 * baseline.seconds,
            0.75 * baseline.seconds);
        old_run = legacy::run(app, ident.table, cal.model, old_options,
                              input, old_machine, &governor);
    } else {
        old_run = legacy::run(app, ident.table, cal.model, old_options,
                              input, old_machine);
    }

    // Redesigned Session.
    core::SessionOptions options =
        core::SessionOptions()
            .withTargetRate(target)
            .withKnobsEnabled(scenario.knobs_enabled)
            .withPolicy(core::makeDeadbeatPolicy(scenario.gain))
            .withStrategy(strategyFor(scenario.policy));
    sim::Machine new_machine;
    if (scenario.capped)
        options.withGovernor(sim::DvfsGovernor::powerCap(
            new_machine, 0.25 * baseline.seconds,
            0.75 * baseline.seconds));
    core::Session session(app, ident.table, cal.model, options);
    core::BeatTraceRecorder recorder;
    session.observe(recorder);
    const core::ControlledRun new_run = session.run(input, new_machine);
    const auto &new_beats = recorder.beats();

    // Bit-identical: exact double equality on every field.
    ASSERT_EQ(new_beats.size(), old_run.beats.size());
    ASSERT_EQ(new_run.beat_count, old_run.beats.size());
    for (std::size_t i = 0; i < new_beats.size(); ++i) {
        const auto &a = old_run.beats[i];
        const auto &b = new_beats[i];
        ASSERT_EQ(a.time_s, b.time_s) << "beat " << i;
        ASSERT_EQ(a.window_rate, b.window_rate) << "beat " << i;
        ASSERT_EQ(a.normalized_perf, b.normalized_perf) << "beat " << i;
        ASSERT_EQ(a.commanded_speedup, b.commanded_speedup)
            << "beat " << i;
        ASSERT_EQ(a.knob_gain, b.knob_gain) << "beat " << i;
        ASSERT_EQ(a.combination, b.combination) << "beat " << i;
        ASSERT_EQ(a.pstate, b.pstate) << "beat " << i;
    }
    EXPECT_EQ(old_run.seconds, new_run.seconds);
    EXPECT_EQ(old_run.mean_qos_loss_estimate,
              new_run.mean_qos_loss_estimate);
    ASSERT_EQ(old_run.output.components.size(),
              new_run.output.components.size());
    for (std::size_t i = 0; i < old_run.output.components.size(); ++i)
        EXPECT_EQ(old_run.output.components[i],
                  new_run.output.components[i]);
    // Both machines must have evolved identically too.
    EXPECT_EQ(old_machine.now(), new_machine.now());
    EXPECT_EQ(old_machine.energyJoules(), new_machine.energyJoules());
}

TEST(SessionEquivalence, ToyAllScenarios)
{
    // The toy app is cheap: sweep strategies, knobs-off, non-deadbeat
    // gain, and the uncapped path.
    for (const Scenario &scenario :
         {Scenario{},
          Scenario{legacy::ActuationPolicy::RaceToIdle, true, true, 1.0},
          Scenario{legacy::ActuationPolicy::MinimalSpeedup, false, true,
                   1.0},
          Scenario{legacy::ActuationPolicy::MinimalSpeedup, true, false,
                   1.0},
          Scenario{legacy::ActuationPolicy::MinimalSpeedup, true, true,
                   0.5}}) {
        tests::ToyApp::Config config;
        config.units = 400;
        tests::ToyApp app(config);
        expectBitIdentical(app, scenario);
    }
}

TEST(SessionEquivalence, SwaptionsPowerCap)
{
    apps::swaptions::SwaptionsConfig config;
    config.sim_values =
        apps::swaptions::SwaptionsConfig::makeRange(250, 4000, 250);
    config.inputs = 4;
    config.swaptions_per_input = 400;
    apps::swaptions::SwaptionsApp app(config);
    expectBitIdentical(app, Scenario{});
}

TEST(SessionEquivalence, SwaptionsRaceToIdle)
{
    apps::swaptions::SwaptionsConfig config;
    config.sim_values =
        apps::swaptions::SwaptionsConfig::makeRange(500, 4000, 500);
    config.inputs = 2;
    config.swaptions_per_input = 300;
    apps::swaptions::SwaptionsApp app(config);
    expectBitIdentical(
        app,
        Scenario{legacy::ActuationPolicy::RaceToIdle, true, true, 1.0});
}

TEST(SessionEquivalence, SearchxPowerCap)
{
    apps::searchx::SearchxConfig config;
    config.corpus.documents = 400;
    config.corpus.words_per_doc = 150;
    config.inputs = 4;
    config.queries_per_input = 500;
    apps::searchx::SearchxApp app(config);
    expectBitIdentical(app, Scenario{});
}

TEST(SessionEquivalence, VidencPowerCap)
{
    apps::videnc::VidencConfig config;
    config.subme_values = {1, 3, 5, 7};
    config.merange_values = {1, 4, 16};
    config.ref_values = {1, 3};
    config.inputs = 2;
    config.video.width = 48;
    config.video.height = 32;
    config.video.frames = 300;
    apps::videnc::VidencApp app(config);
    expectBitIdentical(app, Scenario{});
}

TEST(SessionEquivalence, BodytrackPowerCap)
{
    apps::bodytrack::BodytrackConfig config;
    config.particle_values = {100, 200, 400};
    config.layer_values = {1, 2, 3};
    config.inputs = 2;
    config.frames = 300;
    apps::bodytrack::BodytrackApp app(config);
    expectBitIdentical(app, Scenario{});
}

} // namespace
} // namespace powerdial
