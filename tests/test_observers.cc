/** @file Tests for the RunObserver seam: ordering, exception safety,
 *  ownership, and recorder reuse. */
#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "toy_app.h"

namespace powerdial::core {
namespace {

using tests::ToyApp;

struct Pipeline
{
    ToyApp app;
    KnobTable table;
    ResponseModel model;
};

Pipeline
makePipeline()
{
    ToyApp::Config config;
    config.units = 60;
    Pipeline p{ToyApp(config), {}, {}};
    auto ident = identifyKnobs(p.app);
    EXPECT_TRUE(ident.analysis.accepted);
    p.table = std::move(ident.table);
    p.model = calibrate(p.app, p.app.trainingInputs()).model;
    return p;
}

/** Appends "<tag>:<event>" markers to a shared log. */
class LoggingObserver final : public RunObserver
{
  public:
    LoggingObserver(std::string tag, std::vector<std::string> &log)
        : tag_(std::move(tag)), log_(&log)
    {
    }

    void
    onRunStart(const RunStartEvent &) override
    {
        log_->push_back(tag_ + ":start");
    }
    void
    onQuantum(const QuantumEvent &) override
    {
        log_->push_back(tag_ + ":quantum");
    }
    void
    onBeat(const BeatEvent &event) override
    {
        if (event.beat == 0)
            log_->push_back(tag_ + ":beat0");
    }
    void
    onRunEnd(const ControlledRun &) override
    {
        log_->push_back(tag_ + ":end");
    }

  private:
    std::string tag_;
    std::vector<std::string> *log_;
};

/** Throws on the n-th beat. */
class ThrowingObserver final : public RunObserver
{
  public:
    explicit ThrowingObserver(std::size_t throw_at)
        : throw_at_(throw_at)
    {
    }

    void
    onBeat(const BeatEvent &event) override
    {
        ++beats_seen_;
        if (event.beat == throw_at_)
            throw std::runtime_error("observer exploded");
    }

    std::size_t beatsSeen() const { return beats_seen_; }

  private:
    std::size_t throw_at_;
    std::size_t beats_seen_ = 0;
};

TEST(Observers, NotifiedInRegistrationOrder)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    std::vector<std::string> log;
    LoggingObserver first("a", log);
    LoggingObserver second("b", log);
    session.observe(first);
    session.observe(second);
    sim::Machine machine;
    session.run(0, machine);

    ASSERT_GE(log.size(), 6u);
    // Start events in order.
    EXPECT_EQ(log[0], "a:start");
    EXPECT_EQ(log[1], "b:start");
    // First beat events in order.
    EXPECT_EQ(log[2], "a:beat0");
    EXPECT_EQ(log[3], "b:beat0");
    // End events in order.
    EXPECT_EQ(log[log.size() - 2], "a:end");
    EXPECT_EQ(log[log.size() - 1], "b:end");
    // Quantum events arrived (60 units / 20 per quantum -> 2 barriers).
    EXPECT_NE(std::find(log.begin(), log.end(), "a:quantum"),
              log.end());
}

TEST(Observers, ExceptionAbortsRunAndPropagates)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    auto &thrower = session.attach<ThrowingObserver>(5);
    sim::Machine machine;
    EXPECT_THROW(session.run(0, machine), std::runtime_error);
    // The run stopped at the throwing beat, not at the end.
    EXPECT_EQ(thrower.beatsSeen(), 6u); // Beats 0..5 inclusive.
}

TEST(Observers, EarlierObserverSeesEventLaterDoesNot)
{
    // Ordering under exceptions: the observer registered *before* the
    // thrower received the fatal beat; the one registered after it
    // did not.
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    auto &before = session.attach<ThrowingObserver>(1000000); // Never.
    auto &thrower = session.attach<ThrowingObserver>(3);
    auto &after = session.attach<ThrowingObserver>(1000000); // Never.
    sim::Machine machine;
    EXPECT_THROW(session.run(0, machine), std::runtime_error);
    EXPECT_EQ(before.beatsSeen(), 4u); // Beats 0..3.
    EXPECT_EQ(thrower.beatsSeen(), 4u);
    EXPECT_EQ(after.beatsSeen(), 3u); // Beats 0..2 only.
}

TEST(Observers, SessionUsableAfterObserverException)
{
    // An aborted run must not poison the session: with the faulty
    // observer gone (borrowed registration), the next run completes.
    auto p = makePipeline();
    ThrowingObserver thrower(2);
    BeatTraceRecorder recorder;
    {
        Session session(p.app, p.table, p.model);
        session.observe(thrower);
        sim::Machine machine;
        EXPECT_THROW(session.run(0, machine), std::runtime_error);
    }
    Session session(p.app, p.table, p.model);
    session.observe(recorder);
    sim::Machine machine;
    const auto run = session.run(0, machine);
    EXPECT_EQ(run.beat_count, 60u);
    EXPECT_EQ(recorder.beats().size(), 60u);
}

TEST(Observers, RecorderResetsBetweenRuns)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    BeatTraceRecorder recorder;
    session.observe(recorder);
    sim::Machine m1;
    session.run(0, m1);
    const auto first_beats = recorder.beats().size();
    sim::Machine m2;
    session.run(1, m2);
    EXPECT_EQ(recorder.beats().size(), first_beats);
    // The second run's trace starts at the second machine's origin,
    // not appended after the first run's.
    EXPECT_LE(recorder.beats().front().time_s,
              recorder.beats()[1].time_s);
}

TEST(Observers, OwnedObserverLifetimeTiedToSession)
{
    auto p = makePipeline();
    sim::Machine machine;
    std::size_t beats = 0;
    {
        Session session(p.app, p.table, p.model);
        auto &recorder = session.attach<BeatTraceRecorder>();
        session.run(0, machine);
        beats = recorder.beats().size();
    } // Owned recorder destroyed with the session; no leak, no dangle.
    EXPECT_EQ(beats, 60u);
}

TEST(Observers, NullOwnedObserverRejected)
{
    auto p = makePipeline();
    Session session(p.app, p.table, p.model);
    EXPECT_THROW(session.observe(std::unique_ptr<RunObserver>()),
                 std::invalid_argument);
}

TEST(Observers, QuantumEventCarriesPlanAndCommand)
{
    auto p = makePipeline();

    class QuantumChecker final : public RunObserver
    {
      public:
        void
        onQuantum(const QuantumEvent &event) override
        {
            ++quanta;
            EXPECT_GT(event.window_rate, 0.0);
            EXPECT_GE(event.commanded_speedup, 1.0);
            EXPECT_FALSE(event.plan.slices.empty());
            EXPECT_EQ(event.beat % 20, 0u);
        }
        std::size_t quanta = 0;
    };

    Session session(p.app, p.table, p.model);
    auto &checker = session.attach<QuantumChecker>();
    sim::Machine machine;
    session.run(0, machine);
    EXPECT_EQ(checker.quanta, 2u); // 60 units, quanta at beats 20, 40.
}

} // namespace
} // namespace powerdial::core
