/** @file Tests for the video-encoder benchmark. */
#include <cmath>

#include <gtest/gtest.h>

#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "workload/rng.h"

namespace powerdial::apps::videnc {
namespace {

TEST(Dct, RoundTripIsIdentity)
{
    workload::Rng rng(1);
    ResidualBlock block{};
    for (auto &v : block)
        v = rng.uniform(-128.0, 128.0);
    const auto recovered = inverseDct(forwardDct(block));
    for (std::size_t i = 0; i < block.size(); ++i)
        EXPECT_NEAR(recovered[i], block[i], 1e-9);
}

TEST(Dct, Orthonormal)
{
    // Parseval: energy preserved by the transform.
    workload::Rng rng(2);
    ResidualBlock block{};
    double energy = 0.0;
    for (auto &v : block) {
        v = rng.gaussian(0.0, 30.0);
        energy += v * v;
    }
    const auto freq = forwardDct(block);
    double freq_energy = 0.0;
    for (const auto &v : freq)
        freq_energy += v * v;
    EXPECT_NEAR(freq_energy, energy, 1e-6);
}

TEST(Dct, DcCoefficientIsScaledMean)
{
    ResidualBlock flat{};
    flat.fill(10.0);
    const auto freq = forwardDct(flat);
    EXPECT_NEAR(freq[0], 10.0 * kBlock, 1e-9); // sqrt(64) * mean * ...
    for (std::size_t i = 1; i < freq.size(); ++i)
        EXPECT_NEAR(freq[i], 0.0, 1e-9);
}

TEST(Quantize, RoundTripWithinHalfStep)
{
    workload::Rng rng(3);
    ResidualBlock freq{};
    for (auto &v : freq)
        v = rng.uniform(-100.0, 100.0);
    const double qstep = 8.0;
    const auto rec = dequantize(quantize(freq, qstep), qstep);
    for (std::size_t i = 0; i < freq.size(); ++i)
        EXPECT_LE(std::abs(rec[i] - freq[i]), qstep / 2.0 + 1e-9);
    EXPECT_THROW(quantize(freq, 0.0), std::invalid_argument);
}

TEST(BitCost, ZeroBlockCostsOnlyOverhead)
{
    CoeffBlock zero{};
    EXPECT_EQ(bitCost(zero), 4u);
}

TEST(BitCost, MonotoneInMagnitude)
{
    CoeffBlock small{}, large{};
    small[0] = 2;
    large[0] = 200;
    EXPECT_LT(bitCost(small), bitCost(large));
}

/** Property: coarser quantisation costs fewer bits. */
class QuantSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(QuantSweep, CoarserQuantFewerBits)
{
    workload::Rng rng(4);
    ResidualBlock freq{};
    for (auto &v : freq)
        v = rng.gaussian(0.0, 40.0);
    const double qstep = GetParam();
    EXPECT_LE(bitCost(quantize(freq, qstep * 2.0)),
              bitCost(quantize(freq, qstep)));
}

INSTANTIATE_TEST_SUITE_P(QSteps, QuantSweep,
                         ::testing::Values(1.0, 2.0, 4.0, 8.0, 16.0));

workload::Frame
flatFrame(int w, int h, std::uint8_t luma)
{
    workload::Frame f;
    f.width = w;
    f.height = h;
    f.pixels.assign(static_cast<std::size_t>(w) * h, luma);
    return f;
}

TEST(Motion, SadZeroForIdenticalFrames)
{
    const auto f = flatFrame(32, 32, 80);
    EXPECT_EQ(blockSad(f, 0, 0, f, {0, 0}), 0u);
}

TEST(Motion, FindsKnownIntegerTranslation)
{
    // Reference contains a bright square; the current frame has it
    // shifted by (+4, +2). The search must find mv = (-4, -2) qpel
    // units * 4.
    workload::Frame ref = flatFrame(64, 64, 60);
    workload::Frame cur = flatFrame(64, 64, 60);
    for (int y = 20; y < 32; ++y) {
        for (int x = 20; x < 32; ++x) {
            ref.pixels[static_cast<std::size_t>(y) * 64 + x] = 200;
            cur.pixels[static_cast<std::size_t>(y + 2) * 64 + x + 4] =
                200;
        }
    }
    SearchParams effort;
    effort.merange = 8;
    effort.subpel_rounds = 0;
    effort.refs = 1;
    const auto result = searchMotion(cur, 16, 16, {ref}, effort);
    EXPECT_EQ(result.mv.x, -4 * kSubpelScale);
    EXPECT_EQ(result.mv.y, -2 * kSubpelScale);
}

TEST(Motion, MoreEffortMoreWork)
{
    workload::VideoParams vp;
    vp.width = 64;
    vp.height = 48;
    vp.frames = 2;
    const auto clip = workload::VideoSource(vp).frames();
    SearchParams cheap{1, 0, 1};
    SearchParams costly{16, 6, 1};
    const auto a = searchMotion(clip[1], 16, 16, {clip[0]}, cheap);
    const auto b = searchMotion(clip[1], 16, 16, {clip[0]}, costly);
    EXPECT_GT(b.work_ops, a.work_ops);
    EXPECT_LE(b.sad, a.sad); // More effort never worsens the match.
}

TEST(Motion, SubPelRefinementImprovesSad)
{
    workload::VideoParams vp;
    vp.width = 64;
    vp.height = 48;
    vp.frames = 3;
    const auto clip = workload::VideoSource(vp).frames();
    SearchParams integer_only{8, 0, 1};
    SearchParams with_subpel{8, 4, 1};
    std::uint64_t sad_int = 0, sad_sub = 0;
    for (int by = 0; by < 48; by += 16) {
        for (int bx = 0; bx < 64; bx += 16) {
            sad_int +=
                searchMotion(clip[2], bx, by, {clip[1]}, integer_only)
                    .sad;
            sad_sub +=
                searchMotion(clip[2], bx, by, {clip[1]}, with_subpel)
                    .sad;
        }
    }
    EXPECT_LT(sad_sub, sad_int);
}

TEST(Motion, Validation)
{
    const auto f = flatFrame(32, 32, 80);
    SearchParams effort;
    EXPECT_THROW(searchMotion(f, 0, 0, {}, effort),
                 std::invalid_argument);
    effort.merange = 0;
    EXPECT_THROW(searchMotion(f, 0, 0, {f}, effort),
                 std::invalid_argument);
}

TEST(Encoder, IntraFrameProducesBitsAndPsnr)
{
    workload::VideoParams vp;
    vp.width = 32;
    vp.height = 32;
    vp.frames = 1;
    const auto clip = workload::VideoSource(vp).frames();
    Encoder enc;
    const auto stats = enc.encodeFrame(clip[0], {});
    EXPECT_GT(stats.bits, 0u);
    EXPECT_GT(stats.psnr_db, 25.0);
    EXPECT_EQ(enc.references().size(), 1u);
}

TEST(Encoder, InterFramesCheaperThanIntra)
{
    workload::VideoParams vp;
    vp.width = 64;
    vp.height = 48;
    vp.frames = 3;
    const auto clip = workload::VideoSource(vp).frames();
    Encoder enc;
    const auto intra = enc.encodeFrame(clip[0], {});
    const auto inter = enc.encodeFrame(clip[1], {});
    EXPECT_LT(inter.bits, intra.bits);
}

TEST(Encoder, MoreSearchEffortFewerBits)
{
    workload::VideoParams vp;
    vp.width = 64;
    vp.height = 48;
    vp.frames = 4;
    const auto clip = workload::VideoSource(vp).frames();
    auto total_bits = [&](const SearchParams &effort) {
        Encoder enc;
        std::uint64_t bits = 0;
        for (const auto &frame : clip)
            bits += enc.encodeFrame(frame, effort).bits;
        return bits;
    };
    EXPECT_LT(total_bits({16, 6, 3}), total_bits({1, 0, 1}));
}

TEST(Encoder, ReferenceListBounded)
{
    EncoderConfig config;
    config.max_refs = 2;
    Encoder enc(config);
    const auto f = flatFrame(32, 32, 90);
    for (int i = 0; i < 5; ++i)
        enc.encodeFrame(f, {});
    EXPECT_EQ(enc.references().size(), 2u);
}

VidencConfig
smallConfig()
{
    VidencConfig config;
    config.subme_values = {1, 4, 7};
    config.merange_values = {1, 8};
    config.ref_values = {1, 3};
    config.inputs = 2;
    config.video.width = 48;
    config.video.height = 32;
    config.video.frames = 4;
    return config;
}

TEST(VidencApp, DefaultIsMaxEffort)
{
    VidencApp app(smallConfig());
    app.configure(app.knobSpace().valuesOf(app.defaultCombination()));
    EXPECT_EQ(app.effort().subpel_rounds, 6);
    EXPECT_EQ(app.effort().merange, 8);
    EXPECT_EQ(app.effort().refs, 3);
}

TEST(VidencApp, BaselineHasBestQos)
{
    VidencApp app(smallConfig());
    const auto result = core::calibrate(app, app.trainingInputs());
    for (const auto &p : result.model.allPoints()) {
        if (p.combination != app.defaultCombination()) {
            EXPECT_GE(p.qos_loss, 0.0);
        }
    }
    EXPECT_GT(result.model.maxSpeedup(), 1.5);
}

TEST(VidencApp, OutputIsPsnrAndBitrate)
{
    VidencApp app(smallConfig());
    app.configure({7, 8, 3});
    app.loadInput(0);
    sim::Machine machine;
    for (std::size_t u = 0; u < app.unitCount(); ++u)
        app.processUnit(u, machine);
    const auto out = app.output();
    ASSERT_EQ(out.components.size(), 2u);
    EXPECT_GT(out.components[0], 20.0); // PSNR dB.
    EXPECT_GT(out.components[1], 0.0);  // Bits.
}

TEST(VidencApp, Validation)
{
    VidencApp app(smallConfig());
    EXPECT_THROW(app.configure({1.0}), std::invalid_argument);
    EXPECT_THROW(app.loadInput(99), std::out_of_range);
}

} // namespace
} // namespace powerdial::apps::videnc
