/** @file Tests for the search-engine benchmark. */
#include <gtest/gtest.h>

#include "apps/searchx/searchx_app.h"
#include "core/calibration.h"

namespace powerdial::apps::searchx {
namespace {

std::vector<workload::Document>
tinyCorpus()
{
    // Word 1 appears everywhere; word 2 in docs 0/1; word 3 in doc 0
    // (three times).
    return {
        {0, {1, 2, 3, 3, 3}},
        {1, {1, 2}},
        {2, {1}},
        {3, {1}},
    };
}

TEST(Index, PostingsCountDocuments)
{
    InvertedIndex index(tinyCorpus());
    EXPECT_EQ(index.documentCount(), 4u);
    EXPECT_EQ(index.postings(1).size(), 4u);
    EXPECT_EQ(index.postings(2).size(), 2u);
    EXPECT_EQ(index.postings(3).size(), 1u);
    EXPECT_TRUE(index.postings(99).empty());
}

TEST(Index, TermFrequencyRecorded)
{
    InvertedIndex index(tinyCorpus());
    const auto &postings = index.postings(3);
    ASSERT_EQ(postings.size(), 1u);
    EXPECT_EQ(postings[0].doc, 0u);
    EXPECT_EQ(postings[0].tf, 3u);
}

TEST(Index, RareTermsOutrankCommonOnes)
{
    InvertedIndex index(tinyCorpus());
    // Query {3}: only doc 0 matches, with high idf.
    const auto outcome = index.search({{3}}, 10);
    ASSERT_FALSE(outcome.results.empty());
    EXPECT_EQ(outcome.results[0].doc, 0u);
}

TEST(Index, RankedByScoreDescending)
{
    InvertedIndex index(tinyCorpus());
    const auto outcome = index.search({{2, 3}}, 10);
    for (std::size_t i = 1; i < outcome.results.size(); ++i)
        EXPECT_GE(outcome.results[i - 1].score,
                  outcome.results[i].score);
}

TEST(Index, MaxResultsTruncates)
{
    InvertedIndex index(tinyCorpus());
    EXPECT_EQ(index.search({{1}}, 2).results.size(), 2u);
    EXPECT_EQ(index.search({{1}}, 100).results.size(), 4u);
    EXPECT_TRUE(index.search({{1}}, 0).results.empty());
}

TEST(Index, TruncationPreservesTopResults)
{
    // The paper: "top results are generally preserved in order but
    // fewer total results are returned."
    InvertedIndex index(tinyCorpus());
    const auto full = index.search({{1, 2}}, 100);
    const auto cut = index.search({{1, 2}}, 2);
    ASSERT_GE(full.results.size(), 2u);
    for (std::size_t i = 0; i < cut.results.size(); ++i)
        EXPECT_EQ(cut.results[i].doc, full.results[i].doc);
}

TEST(Index, WorkShrinksWithMaxResults)
{
    // The knob's performance mechanism.
    workload::CorpusParams cp;
    cp.documents = 300;
    cp.words_per_doc = 200;
    workload::Corpus corpus(cp);
    InvertedIndex index(corpus.documents());
    const auto queries = corpus.makeQueries(20, 2, 1);
    std::uint64_t work_small = 0, work_large = 0;
    for (const auto &q : queries) {
        work_small += index.search(q, 5).work_ops;
        work_large += index.search(q, 100).work_ops;
    }
    EXPECT_LT(work_small, work_large);
}

SearchxConfig
smallConfig()
{
    SearchxConfig config;
    config.corpus.documents = 200;
    config.corpus.words_per_doc = 150;
    config.inputs = 2;
    config.queries_per_input = 10;
    return config;
}

TEST(SearchxApp, KnobIsMaxResults)
{
    SearchxApp app(smallConfig());
    EXPECT_EQ(app.knobSpace().combinations(), 6u);
    app.configure({25});
    EXPECT_EQ(app.maxResults(), 25u);
    EXPECT_EQ(
        app.knobSpace().valuesOf(app.defaultCombination())[0], 100.0);
}

TEST(SearchxApp, QosLossGrowsAsResultsShrink)
{
    // Figure 5d: QoS loss increases monotonically as the knob drops.
    SearchxApp app(smallConfig());
    const auto result = core::calibrate(app, app.trainingInputs());
    const auto &points = result.model.allPoints();
    for (std::size_t c = 0; c + 1 < points.size(); ++c)
        EXPECT_GE(points[c].qos_loss, points[c + 1].qos_loss - 1e-9);
    EXPECT_DOUBLE_EQ(points.back().qos_loss, 0.0);
}

TEST(SearchxApp, SpeedupModest)
{
    // The paper: approximately 1.5x. The band depends on corpus scale
    // (scoring work amortises the fixed per-result cost), so use the
    // default corpus sizing here.
    SearchxConfig config;
    config.inputs = 2;
    config.queries_per_input = 20;
    SearchxApp app(config);
    const auto result = core::calibrate(app, app.trainingInputs());
    EXPECT_GT(result.model.maxSpeedup(), 1.2);
    EXPECT_LT(result.model.maxSpeedup(), 3.0);
}

TEST(SearchxApp, OutputIsFMeasurePair)
{
    SearchxApp app(smallConfig());
    app.configure({100});
    app.loadInput(0);
    sim::Machine machine;
    for (std::size_t u = 0; u < app.unitCount(); ++u)
        app.processUnit(u, machine);
    const auto out = app.output();
    ASSERT_EQ(out.components.size(), 2u);
    EXPECT_GT(out.components[0], 0.0); // F@10.
    EXPECT_LE(out.components[0], 1.0);
    EXPECT_GT(out.components[1], 0.0); // F@100.
    EXPECT_LE(out.components[1], 1.0);
}

TEST(SearchxApp, PrecisionAtTopFivePreserved)
{
    // "As the lowest knob setting used by PowerDial is five, precision
    // is always perfect for the top 5 results" — truncation must keep
    // the top-5 list identical.
    SearchxApp app(smallConfig());
    const auto &index = app.index();
    workload::CorpusParams cp = smallConfig().corpus;
    workload::Corpus corpus(cp);
    const auto queries = corpus.makeQueries(10, 2, 77);
    for (const auto &q : queries) {
        const auto full = index.search(q, 100).results;
        const auto five = index.search(q, 5).results;
        for (std::size_t i = 0; i < five.size() && i < full.size(); ++i)
            EXPECT_EQ(five[i].doc, full[i].doc);
    }
}

TEST(SearchxApp, Validation)
{
    SearchxApp app(smallConfig());
    EXPECT_THROW(app.configure({1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(app.loadInput(99), std::out_of_range);
}

} // namespace
} // namespace powerdial::apps::searchx
