/** @file Property tests for the fleet engine's typed event queue. */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "fleet/event_queue.h"
#include "workload/rng.h"

namespace powerdial::fleet {
namespace {

/** Drain the queue, returning payloads in pop order. */
template <typename Payload>
std::vector<Payload>
drain(EventQueue<Payload> &queue)
{
    std::vector<Payload> order;
    while (!queue.empty())
        order.push_back(queue.pop().payload);
    return order;
}

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue<int> queue;
    queue.push(3.0, 30);
    queue.push(1.0, 10);
    queue.push(2.0, 20);
    queue.push(0.5, 5);
    EXPECT_EQ(drain(queue), (std::vector<int>{5, 10, 20, 30}));
}

TEST(EventQueue, EqualTimestampsPopInPushOrder)
{
    // The stable-total-order property: ties on time break by sequence
    // id, i.e. FIFO among equals — never by heap internals.
    EventQueue<int> queue;
    for (int i = 0; i < 64; ++i)
        queue.push(1.0, i);
    std::vector<int> expected(64);
    for (int i = 0; i < 64; ++i)
        expected[static_cast<std::size_t>(i)] = i;
    EXPECT_EQ(drain(queue), expected);
}

TEST(EventQueue, EqualTimestampFifoSurvivesInterleavedTimes)
{
    // Same-time events stay FIFO even when pushed interleaved with
    // events at other times (the heap reshuffles; the order must not).
    EventQueue<int> queue;
    queue.push(2.0, 0);
    queue.push(1.0, 100);
    queue.push(2.0, 1);
    queue.push(0.0, 200);
    queue.push(2.0, 2);
    queue.push(3.0, 300);
    queue.push(2.0, 3);
    EXPECT_EQ(drain(queue),
              (std::vector<int>{200, 100, 0, 1, 2, 3, 300}));
}

TEST(EventQueue, NoStarvationUnderContinuousSameTimePushes)
{
    // An event can never be overtaken by a later-pushed event with
    // the same (or later) time: even if a handler keeps pushing new
    // events at the current timestamp, earlier ones pop first, so
    // every event is reached in bounded steps.
    EventQueue<int> queue;
    queue.push(1.0, 0);
    queue.push(1.0, 1);
    int popped = 0;
    int spawned = 2;
    std::vector<int> order;
    while (!queue.empty() && popped < 10) {
        const auto entry = queue.pop();
        order.push_back(entry.payload);
        ++popped;
        // Adversarial handler: two new same-time events per pop.
        queue.push(1.0, spawned++);
        queue.push(1.0, spawned++);
    }
    // Pops happen in spawn order; the original two came first.
    std::vector<int> expected(10);
    for (int i = 0; i < 10; ++i)
        expected[static_cast<std::size_t>(i)] = i;
    EXPECT_EQ(order, expected);
}

TEST(EventQueue, PopOrderIsIndependentOfInsertionOrder)
{
    // Determinism across construction orders: the same set of
    // (time, seq, payload) entries pops identically no matter how the
    // underlying heap was built. Sequence ids are assigned by push,
    // so "the same set" means pushing value/time pairs whose seq
    // assignment is permutation-invariant: use distinct times and
    // compare against the sorted-by-time order.
    struct Stamped
    {
        double time;
        int value;
    };
    std::vector<Stamped> events;
    workload::Rng rng(0xeeee);
    for (int i = 0; i < 200; ++i)
        events.push_back({rng.uniform(0.0, 100.0), i});

    const auto popOrder = [](const std::vector<Stamped> &sequence) {
        EventQueue<int> queue;
        for (const Stamped &event : sequence)
            queue.push(event.time, event.value);
        return drain(queue);
    };

    std::vector<Stamped> sorted = events;
    std::sort(sorted.begin(), sorted.end(),
              [](const Stamped &a, const Stamped &b) {
                  return a.time < b.time;
              });
    std::vector<int> expected;
    for (const Stamped &event : sorted)
        expected.push_back(event.value);

    // Several deterministic shuffles of the same entries.
    std::vector<Stamped> shuffled = events;
    for (int round = 0; round < 5; ++round) {
        for (std::size_t i = shuffled.size() - 1; i > 0; --i)
            std::swap(shuffled[i],
                      shuffled[static_cast<std::size_t>(
                          rng.below(i + 1))]);
        EXPECT_EQ(popOrder(shuffled), expected)
            << "shuffle round " << round;
    }
}

TEST(EventQueue, PeekMatchesPopAndDoesNotRemove)
{
    EventQueue<int> queue;
    queue.push(2.0, 20);
    queue.push(1.0, 10);
    EXPECT_EQ(queue.peek().payload, 10);
    EXPECT_EQ(queue.size(), 2u);
    const auto entry = queue.pop();
    EXPECT_EQ(entry.payload, 10);
    EXPECT_DOUBLE_EQ(entry.time_s, 1.0);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EventQueue, SequenceIdsAreStableAndReported)
{
    EventQueue<int> queue;
    EXPECT_EQ(queue.push(1.0, 0), 0u);
    EXPECT_EQ(queue.push(0.5, 1), 1u);
    EXPECT_EQ(queue.pushed(), 2u);
    // Popping does not recycle sequence ids.
    queue.pop();
    EXPECT_EQ(queue.push(0.25, 2), 2u);
    EXPECT_EQ(queue.pushed(), 3u);
}

TEST(EventQueue, RejectsNegativeAndNanTimes)
{
    EventQueue<int> queue;
    EXPECT_THROW(queue.push(-1.0, 0), std::invalid_argument);
    EXPECT_THROW(
        queue.push(std::numeric_limits<double>::quiet_NaN(), 0),
        std::invalid_argument);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.pushed(), 0u);
    // Infinity is a legitimate "at the horizon" time.
    queue.push(std::numeric_limits<double>::infinity(), 7);
    EXPECT_EQ(queue.pop().payload, 7);
}

TEST(EventQueue, EmptyAccessThrows)
{
    EventQueue<int> queue;
    EXPECT_THROW(queue.peek(), std::logic_error);
    EXPECT_THROW(queue.pop(), std::logic_error);
}

} // namespace
} // namespace powerdial::fleet
