/**
 * @file
 * PowerDial quickstart: the full pipeline on the swaptions benchmark
 * in ~60 lines of user code.
 *
 *   1. Build an application that follows the PowerDial pattern.
 *   2. Identify its dynamic knobs (influence tracing + checks).
 *   3. Calibrate the speedup/QoS response model on training inputs.
 *   4. Run under closed-loop control while a power cap hits.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "apps/swaptions/swaptions_app.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"

using namespace powerdial;

int
main()
{
    // 1. The application: a Monte Carlo swaption pricer whose "-sm"
    //    parameter (simulations per swaption) becomes a dynamic knob.
    apps::swaptions::SwaptionsConfig config;
    config.inputs = 4;
    config.swaptions_per_input = 400;
    apps::swaptions::SwaptionsApp app(config);

    // 2. Dynamic knob identification (paper section 2.1): trace every
    //    parameter combination, run the control-variable checks, and
    //    build the knob table.
    auto ident = core::identifyKnobs(app);
    std::printf("%s\n", ident.report.c_str());
    if (!ident.analysis.accepted)
        return 1;

    // 3. Calibration (section 2.2): explore the trade-off space on the
    //    training inputs and keep the Pareto-optimal settings. The
    //    sweep fans out over all hardware contexts (threads = 0); the
    //    result is bit-identical to a serial sweep.
    core::CalibrationOptions copt;
    copt.threads = 0;
    const auto cal = core::calibrate(app, app.trainingInputs(), copt);
    std::printf("calibrated %zu knob settings; Pareto frontier has %zu "
                "points, max speedup %.1fx at %.2f%% QoS loss\n",
                cal.model.allPoints().size(), cal.model.pareto().size(),
                cal.model.maxSpeedup(),
                100.0 * cal.model.fastest().qos_loss);

    // 4. Closed-loop control (section 2.3) under a power cap: the
    //    machine drops from 2.4 GHz to 1.6 GHz a quarter of the way
    //    in; PowerDial trades a little accuracy to stay responsive.
    //    The session composes the control law (default: the paper's
    //    deadbeat integral law), the actuation strategy (default:
    //    minimal-speedup), and any observers; the governor is an
    //    owned component of the options.
    sim::Machine machine;
    const double duration =
        400.0 / cal.model.baselineRate(); // Expected run time.
    core::Session session(
        app, ident.table, cal.model,
        core::SessionOptions().withGovernor(sim::DvfsGovernor::powerCap(
            machine, 0.25 * duration, 0.75 * duration)));
    auto &trace = session.attach<core::BeatTraceRecorder>();
    const auto run =
        session.run(app.productionInputs().front(), machine);

    const auto &beats = trace.beats();
    const auto &mid = beats[beats.size() / 2];
    std::printf("\nunder the cap (beat %llu): performance %.2f of "
                "target, knob gain %.2fx\n",
                static_cast<unsigned long long>(beats.size() / 2),
                mid.normalized_perf, mid.knob_gain);
    std::printf("run finished in %.2f virtual seconds, estimated QoS "
                "loss %.2f%%, energy %.0f J\n", run.seconds,
                100.0 * run.mean_qos_loss_estimate,
                machine.energyJoules());
    return 0;
}
