/**
 * @file
 * How to put your own application under PowerDial control.
 *
 * Implements core::App for a small image-sharpening service with one
 * quality knob (filter taps), showing each integration point:
 *
 *   - declaring the knob parameter range;
 *   - the init phase deriving a control variable from the parameter;
 *   - the influence-traced mirror of that init phase;
 *   - write bindings for the control variable;
 *   - the unit-structured main loop costing cycles on the machine;
 *   - an output abstraction for the QoS metric.
 *
 * Build & run:  ./build/examples/custom_app
 */
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "workload/rng.h"

using namespace powerdial;

namespace {

/** A toy sharpening service: more filter taps = better, slower. */
class SharpenApp final : public core::App
{
  public:
    SharpenApp() : space_({{"taps", {3, 5, 9, 17, 33}}})
    {
        // Synthesize deterministic "images" (1-D signals here).
        workload::Rng rng(0xcafe);
        for (std::size_t i = 0; i < 6; ++i) {
            std::vector<double> signal(512);
            for (auto &v : signal)
                v = rng.gaussian(128.0, 30.0);
            images_.push_back(std::move(signal));
        }
    }

    std::string name() const override { return "sharpen"; }

    /** Deep copy so parallel calibration can give each worker its own
     *  instance; all members are value-semantic. */
    std::unique_ptr<core::App>
    clone() const override
    {
        return std::make_unique<SharpenApp>(*this);
    }

    const core::KnobSpace &knobSpace() const override { return space_; }

    /** Most taps = highest quality = the baseline. */
    std::size_t defaultCombination() const override { return 4; }

    void
    configure(const std::vector<double> &params) override
    {
        taps_ = static_cast<int>(params.at(0));
    }

    void
    traceRun(influence::TraceRun &trace,
             const std::vector<double> &params) override
    {
        // Init phase under influence tracing: "taps" flows into the
        // control variable; the fixed gain constant does not.
        influence::Value<double> taps(params.at(0),
                                      influence::paramBit(0));
        trace.store("filter_taps", taps, "custom_app.cpp:configure");
        trace.store("gain", influence::Value<double>(1.5),
                    "custom_app.cpp:configure");
        trace.firstHeartbeat();
        trace.read("filter_taps", "custom_app.cpp:processUnit");
        trace.read("gain", "custom_app.cpp:processUnit");
    }

    void
    bindControlVariables(core::KnobTable &table) override
    {
        table.bind({"filter_taps", [this](const std::vector<double> &v) {
                        taps_ = static_cast<int>(v.at(0));
                    }});
    }

    std::size_t inputCount() const override { return images_.size(); }

    std::vector<std::size_t>
    trainingInputs() const override
    {
        return {0, 1, 2};
    }

    std::vector<std::size_t>
    productionInputs() const override
    {
        return {3, 4, 5};
    }

    void
    loadInput(std::size_t index) override
    {
        current_ = index;
        sharpness_.clear();
    }

    std::size_t unitCount() const override { return 64; }

    void
    processUnit(std::size_t unit, sim::Machine &machine) override
    {
        // One unit = sharpen one tile with a windowed filter whose
        // width is the control variable.
        const auto &img = images_[current_];
        const std::size_t tile = unit * 8 % (img.size() - 64);
        double acc = 0.0;
        for (std::size_t i = tile; i < tile + 64; ++i) {
            double local = 0.0;
            for (int t = -taps_ / 2; t <= taps_ / 2; ++t) {
                const std::size_t j = std::min(
                    img.size() - 1,
                    static_cast<std::size_t>(std::max<std::ptrdiff_t>(
                        0, static_cast<std::ptrdiff_t>(i) + t)));
                local += img[j] / static_cast<double>(taps_);
            }
            acc += std::abs(img[i] - local); // Edge energy recovered.
        }
        machine.execute(64.0 * static_cast<double>(taps_) * 40.0);
        sharpness_.push_back(acc);
    }

    qos::OutputAbstraction
    output() const override
    {
        const double mean =
            std::accumulate(sharpness_.begin(), sharpness_.end(), 0.0) /
            static_cast<double>(sharpness_.size());
        return {{mean}, {}};
    }

  private:
    core::KnobSpace space_;
    std::vector<std::vector<double>> images_;
    int taps_ = 33;
    std::size_t current_ = 0;
    std::vector<double> sharpness_;
};

} // namespace

int
main()
{
    SharpenApp app;
    auto ident = core::identifyKnobs(app);
    std::printf("%s\n", ident.report.c_str());
    if (!ident.analysis.accepted)
        return 1;

    core::CalibrationOptions copt;
    copt.threads = 0; // Parallel sweep; bit-identical to serial.
    const auto cal = core::calibrate(app, app.trainingInputs(), copt);
    std::printf("%12s %12s %12s\n", "taps", "speedup", "qos_loss%");
    for (const auto &p : cal.model.allPoints()) {
        std::printf("%12g %12.2f %12.3f\n",
                    app.knobSpace().valuesOf(p.combination)[0],
                    p.speedup, 100.0 * p.qos_loss);
    }

    // Hold the baseline rate on a machine stuck at 1.6 GHz.
    core::Session session(app, ident.table, cal.model);
    auto &trace = session.attach<core::BeatTraceRecorder>();
    sim::Machine machine;
    machine.setPState(machine.scale().lowestState());
    const auto run = session.run(3, machine);
    std::printf("\nat 1.6 GHz: final perf %.2f of target, QoS loss "
                "%.2f%%\n", trace.beats().back().normalized_perf,
                100.0 * run.mean_qos_loss_estimate);
    return 0;
}
