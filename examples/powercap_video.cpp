/**
 * @file
 * Scenario example: a live video encoder rides through a power cap.
 *
 * Models the paper's motivating soft-real-time case (section 4.5): a
 * video-conferencing-style encoder must keep producing frames at a
 * fixed rate. When the datacenter imposes a power cap (2.4 -> 1.6 GHz)
 * PowerDial lowers the motion-estimation effort knobs (subme, merange,
 * ref) just enough to hold the frame rate, then restores full quality
 * when the cap lifts. The example prints a frame-rate/quality
 * timeline and an encoder-setting change log.
 *
 * Build & run:  ./build/examples/powercap_video
 */
#include <cstdio>

#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"

using namespace powerdial;

int
main()
{
    // A fast, small calibration instance and a long "live" instance.
    apps::videnc::VidencConfig small;
    small.inputs = 4;
    small.video.width = 64;
    small.video.height = 48;
    small.video.frames = 10;
    apps::videnc::VidencApp trainer(small);

    apps::videnc::VidencConfig live = small;
    live.video.frames = 240; // The "live" stream to encode.
    apps::videnc::VidencApp encoder(live);

    auto ident = core::identifyKnobs(encoder);
    if (!ident.analysis.accepted) {
        std::fprintf(stderr, "%s", ident.report.c_str());
        return 1;
    }
    core::CalibrationOptions copt;
    copt.threads = 0; // Calibrate on every available core.
    const auto cal =
        core::calibrate(trainer, trainer.trainingInputs(), copt);
    std::printf("encoder knobs calibrated: %zu settings, %zu on the "
                "Pareto frontier\n", cal.model.allPoints().size(),
                cal.model.pareto().size());

    sim::Machine machine;
    const double duration = 240.0 / cal.model.baselineRate();
    core::Session session(
        encoder, ident.table, cal.model,
        core::SessionOptions().withGovernor(sim::DvfsGovernor::powerCap(
            machine, 0.3 * duration, 0.7 * duration)));
    auto &trace = session.attach<core::BeatTraceRecorder>();
    const auto run =
        session.run(encoder.productionInputs().front(), machine);

    std::printf("\n%8s %10s %12s %10s  %s\n", "frame", "fps/target",
                "freq_GHz", "gain", "encoder setting (subme/merange/ref)");
    std::size_t last_combo = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < trace.beats().size(); ++i) {
        const auto &b = trace.beats()[i];
        const bool setting_changed = b.combination != last_combo;
        if (i % 24 == 0 || setting_changed) {
            const auto values =
                encoder.knobSpace().valuesOf(b.combination);
            std::printf("%8zu %10.2f %12.2f %10.2f  %g/%g/%g%s\n", i,
                        b.normalized_perf,
                        machine.scale().frequencyHz(b.pstate) / 1e9,
                        b.knob_gain, values[0], values[1], values[2],
                        setting_changed ? "  <- knob moved" : "");
            last_combo = b.combination;
        }
    }
    std::printf("\nencoded %zu frames in %.2f virtual s; estimated "
                "QoS loss %.2f%%\n", run.beat_count, run.seconds,
                100.0 * run.mean_qos_loss_estimate);
    return 0;
}
