/**
 * @file
 * Scenario example: consolidating a search-engine cluster.
 *
 * The paper's section 5.5 case as an operator would use it: a search
 * service provisioned with three machines for peak load is rebuilt
 * with two, and PowerDial's max-results knob absorbs the load spikes.
 * The example replays a synthetic day of load with intermittent
 * spikes and reports, per time step, the power of both systems and
 * the QoS the consolidated system delivers.
 *
 * Build & run:  ./build/examples/consolidation_search
 */
#include <algorithm>
#include <cstdio>

#include "apps/searchx/searchx_app.h"
#include "core/analytical.h"
#include "core/calibration.h"
#include "core/consolidation.h"
#include "core/identify.h"
#include "sim/cluster.h"
#include "workload/load_trace.h"

using namespace powerdial;

int
main()
{
    apps::searchx::SearchxConfig config;
    config.inputs = 4;
    apps::searchx::SearchxApp app(config);
    auto ident = core::identifyKnobs(app);
    if (!ident.analysis.accepted)
        return 1;
    core::CalibrationOptions copt;
    copt.qos_cap = 0.30; // The paper's swish++ QoS-loss bound.
    copt.threads = 0;    // Calibrate on every available core.
    const auto cal =
        core::calibrate(app, app.trainingInputs(), copt);

    // Size the consolidated cluster with Equation 21.
    const double s_qos = cal.model.bestWithinQoS(0.30).speedup;
    core::analytical::ConsolidationModel cm;
    cm.n_orig = 3;
    cm.work_per_machine = 1.0; // One engine instance per machine.
    cm.speedup = s_qos;
    cm.u_orig = 0.25;
    cm.p_load = 220.0;
    cm.p_idle = 90.0;
    const auto sized = core::analytical::consolidate(cm);
    std::printf("S(QoS<=30%%) = %.2fx: consolidate 3 machines -> %zu\n\n",
                s_qos, sized.n_new);

    sim::Machine::Config mconfig;
    mconfig.cores = 1; // One search instance occupies a machine.
    sim::Cluster original(3, mconfig);
    sim::Cluster consolidated(sized.n_new, mconfig);

    // A day of load: low base utilisation with intermittent spikes.
    workload::LoadTraceParams lt;
    lt.steps = 48; // Half-hour bins.
    lt.base_utilization = 0.25;
    lt.spike_probability = 0.06;
    const auto trace = workload::makeLoadTrace(lt);

    std::printf("%6s %8s %10s %12s %12s %10s\n", "step", "load",
                "instances", "orig_W", "consol_W", "qos_loss%");
    double orig_j = 0.0, cons_j = 0.0;
    for (std::size_t t = 0; t < trace.size(); ++t) {
        const auto instances = workload::instancesAt(trace[t], 3);
        const double orig_watts = original.steadyStateWatts(instances);
        const auto placement = consolidated.balance(instances);
        const double cons_watts =
            consolidated.steadyStateWatts(placement);
        const double required =
            consolidated.maxRequiredSpeedup(placement);
        const double qos = instances == 0
            ? 0.0
            : cal.model.atLeast(required).qos_loss;
        orig_j += orig_watts;
        cons_j += cons_watts;
        if (t % 4 == 0 || trace[t] >= 0.99) {
            std::printf("%6zu %8.2f %10zu %12.1f %12.1f %10.2f%s\n", t,
                        trace[t], instances, orig_watts, cons_watts,
                        100.0 * qos,
                        trace[t] >= 0.99 ? "  <- spike" : "");
        }
    }
    std::printf("\nmean power: original %.0f W, consolidated %.0f W "
                "(%.0f%% saved)\n",
                orig_j / static_cast<double>(trace.size()),
                cons_j / static_cast<double>(trace.size()),
                100.0 * (orig_j - cons_j) / orig_j);

    // Measured check: real closed-loop sessions at the base load and
    // at a full spike, fanned out over the thread pool (each replay
    // is an independent session on a private app clone).
    const auto input = app.productionInputs().front();
    const auto baseline =
        core::runFixed(app, input, app.defaultCombination());
    std::vector<core::ReplayCase> cases;
    for (const std::size_t instances :
         {workload::instancesAt(lt.base_utilization, 3),
          static_cast<std::size_t>(3)}) {
        core::ReplayCase rc;
        rc.share = consolidated.minInstanceShare(
            consolidated.balance(instances));
        cases.push_back(rc);
    }
    core::ConsolidationReplayOptions ropt;
    ropt.input = input;
    ropt.threads = 0; // Replay on every available core.
    ropt.machine = mconfig;
    const auto outcomes = core::replayConsolidation(
        app, ident.table, cal.model, baseline.output, cases, ropt);
    std::printf("\nmeasured sessions: base load perf %.3f of target "
                "(QoS loss %.1f%%), spike perf %.3f (QoS loss %.1f%%)\n",
                outcomes[0].tail_mean_perf,
                100.0 * outcomes[0].qos_loss_measured,
                outcomes[1].tail_mean_perf,
                100.0 * outcomes[1].qos_loss_measured);
    return 0;
}
