/**
 * @file
 * Fleet quickstart: serve an open-loop request stream with many
 * PowerDial-controlled sessions sharing one cluster power budget.
 *
 *   1. Identify + calibrate an application (as in quickstart.cpp).
 *   2. Synthesise a spiky load trace and Poisson job arrivals.
 *   3. Serve it on a consolidated cluster: a scheduler places each
 *      job (shedding overload past the per-machine queue bound), a
 *      power arbiter re-splits the cluster cap into per-machine DVFS
 *      caps every epoch — reaching jobs already in flight through
 *      their arbitration leases, since epochs here are half a job's
 *      duration — and the metrics hub aggregates every tenant
 *      session's observer events into fleet-wide series.
 *
 * Build & run:  ./build/examples/example_fleet_server
 */
#include <algorithm>
#include <cstdio>

#include "apps/swaptions/swaptions_app.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "fleet/server.h"
#include "workload/arrivals.h"
#include "workload/load_trace.h"

using namespace powerdial;

int
main()
{
    // 1. The application and its calibrated response model.
    apps::swaptions::SwaptionsConfig config;
    config.inputs = 4;
    config.swaptions_per_input = 60;
    apps::swaptions::SwaptionsApp app(config);
    auto ident = core::identifyKnobs(app);
    if (!ident.analysis.accepted)
        return 1;
    core::CalibrationOptions copt;
    copt.threads = 0;
    const auto cal = core::calibrate(app, app.trainingInputs(), copt);

    // 2. The offered load: intermittent spikes over ~25% utilisation,
    //    as an open-loop Poisson request stream (jobs per epoch).
    workload::LoadTraceParams trace;
    trace.steps = 24;
    trace.spike_probability = 0.08;
    workload::PoissonArrivalParams poisson;
    poisson.peak_rate = 10.0;
    const auto arrivals = workload::makePoissonArrivals(
        workload::makeLoadTrace(trace), poisson);

    // 3. A consolidated two-machine fleet under a 360 W cluster cap,
    //    split by the QoS-feedback arbiter each epoch. threads = 0
    //    fans tenant sessions over all hardware contexts; the report
    //    is bit-identical at any thread count.
    fleet::ServerOptions options;
    options.machines = 2;
    options.threads = 0;
    options.arbiter.cluster_cap_watts = 360.0;
    options.arbiter.policy = fleet::ArbiterPolicy::QosFeedback;
    // Half-a-job epochs: tenants span epoch boundaries and adopt each
    // re-arbitrated lease mid-run; a 12-deep per-machine run queue
    // sheds (and counts) overload instead of queueing without bound.
    options.epoch_seconds = 0.5 * cal.model.baselineSeconds();
    options.queue_depth = 12;
    fleet::Server server(app, ident.table, cal.model, options);
    const auto report = server.serve(arrivals);

    std::printf("served %zu jobs (%zu shed) over %zu epochs on %zu "
                "machines\n", report.total_jobs, report.total_shed,
                report.epochs.size(), options.machines);
    std::printf("fleet power %.1f W mean; heart rate %.1f beats/s "
                "mean\n", report.mean_watts, report.mean_fleet_rate);
    std::printf("job latency p50 %.3f s, p95 %.3f s, p99 %.3f s; "
                "mean QoS loss %.2f%%\n", report.p50_latency_s,
                report.p95_latency_s, report.p99_latency_s,
                100.0 * report.mean_qos_loss);
    for (const auto &tenant : report.tenants)
        std::printf("  tenant (input %zu): %zu jobs, QoS loss "
                    "%.2f%%, mean latency %.3f s\n", tenant.tenant,
                    tenant.jobs, 100.0 * tenant.mean_qos_loss,
                    tenant.mean_latency_s);
    std::size_t cross_epoch = 0;
    std::size_t max_updates = 0;
    for (const auto &job : report.jobs) {
        if (job.lease_updates > 1)
            ++cross_epoch;
        max_updates = std::max(max_updates, job.lease_updates);
    }
    std::printf("%zu of %zu jobs adopted a re-arbitrated lease "
                "mid-run (max %zu lease updates for one job)\n",
                cross_epoch, report.jobs.size(), max_updates);
    return 0;
}
