/**
 * @file
 * Out-of-tree consumer smoke test: exercises the installed powerdial
 * package end to end — identify, calibrate, and a closed-loop Session
 * with policy/strategy/observer composition — through
 * find_package(powerdial) only.
 */
#include <cstdio>

#include "apps/swaptions/swaptions_app.h"
#include "powerdial.h"

using namespace powerdial;

int
main()
{
    apps::swaptions::SwaptionsConfig config;
    config.sim_values =
        apps::swaptions::SwaptionsConfig::makeRange(500, 2000, 500);
    config.inputs = 2;
    config.swaptions_per_input = 100;
    apps::swaptions::SwaptionsApp app(config);

    auto ident = core::identifyKnobs(app);
    if (!ident.analysis.accepted) {
        std::fprintf(stderr, "knob identification rejected\n%s\n",
                     ident.report.c_str());
        return 1;
    }
    const auto cal = core::calibrate(app, app.trainingInputs());

    core::Session session(
        app, ident.table, cal.model,
        core::SessionOptions()
            .withPolicy(core::makeDeadbeatPolicy())
            .withStrategy(core::makeMinimalSpeedupStrategy()));
    auto &trace = session.attach<core::BeatTraceRecorder>();
    sim::Machine machine;
    machine.setPState(machine.scale().lowestState());
    const auto run = session.run(app.productionInputs().front(),
                                 machine);

    if (trace.beats().empty() || run.beat_count == 0) {
        std::fprintf(stderr, "empty controlled run\n");
        return 1;
    }
    std::printf("powerdial consumer OK: %zu beats, final perf %.2f of "
                "target, est. QoS loss %.2f%%\n", run.beat_count,
                trace.beats().back().normalized_perf,
                100.0 * run.mean_qos_loss_estimate);
    return 0;
}
