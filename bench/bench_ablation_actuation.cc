/**
 * @file
 * Ablation bench for the design choices called out in DESIGN.md:
 *
 *  - actuation policy: minimal-speedup vs race-to-idle (paper section
 *    2.3.3 presents both solutions of the constraint system);
 *  - time quantum: the paper fixes 20 heartbeats "heuristically" — we
 *    sweep it;
 *  - controller gain: the paper's deadbeat k = 1 vs slower gains;
 *  - Pareto restriction: actuating over the Pareto frontier vs the
 *    raw point set (via a QoS cap that mimics a degraded frontier).
 *
 * Scenario: swaptions under the section 5.4 power cap; metrics are
 * capped-region performance error, estimated QoS loss, and energy.
 */
#include <cmath>

#include "bench_common.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

struct Outcome
{
    double perf_err;   //!< Mean |perf - 1| over the capped region.
    double qos_loss;   //!< Work-weighted calibrated QoS loss.
    double energy_j;   //!< Full-run machine energy.
};

Outcome
scenario(core::App &app, const CalibratedApp &cal,
         core::SessionOptions options)
{
    const auto input = app.productionInputs().front();
    const auto baseline =
        core::runFixed(app, input, app.defaultCombination());
    app.loadInput(input);
    options.withTargetRate(static_cast<double>(app.unitCount()) /
                           baseline.seconds);

    sim::Machine machine;
    options.withGovernor(sim::DvfsGovernor::powerCap(
        machine, 0.25 * baseline.seconds, 0.75 * baseline.seconds));
    core::Session session(app, cal.ident.table, cal.training.model,
                          options);
    auto &trace = session.attach<core::BeatTraceRecorder>();
    const auto run = session.run(input, machine);
    const auto &beats = trace.beats();

    Outcome out{};
    const std::size_t lo = beats.size() * 2 / 5;
    const std::size_t hi = beats.size() * 3 / 5;
    for (std::size_t i = lo; i < hi; ++i)
        out.perf_err += std::abs(beats[i].normalized_perf - 1.0);
    out.perf_err /= static_cast<double>(hi - lo);
    out.qos_loss = run.mean_qos_loss_estimate;
    out.energy_j = machine.energyJoules();
    return out;
}

void
report(const char *label, const Outcome &o)
{
    std::printf("%-34s %12.4f %12.3f %12.0f\n", label, o.perf_err,
                100.0 * o.qos_loss, o.energy_j);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto bopts = parseBenchOptions(argc, argv);
    auto sweep = makeSwaptions();
    auto app = makeSwaptions(RunLength::Series);
    auto cal = calibrateTransfer(*sweep, *app, -1.0, bopts.threads);

    std::printf("%-34s %12s %12s %12s\n", "configuration",
                "perf_err", "qos_loss%", "energy_J");
    std::printf("%s\n", std::string(74, '-').c_str());

    banner("Actuation strategy");
    {
        report("minimal-speedup (paper default)",
               scenario(*app, cal,
                        core::SessionOptions().withStrategy(
                            core::makeMinimalSpeedupStrategy())));
        report("race-to-idle",
               scenario(*app, cal,
                        core::SessionOptions().withStrategy(
                            core::makeRaceToIdleStrategy())));
        report("qos-budget (0.5% mean loss cap)",
               scenario(*app, cal,
                        core::SessionOptions().withStrategy(
                            core::makeQosBudgetStrategy(0.005))));
    }

    banner("Time quantum (heartbeats)");
    for (const std::size_t quantum : {5u, 10u, 20u, 40u, 80u}) {
        const std::string label =
            "quantum = " + std::to_string(quantum) +
            (quantum == 20 ? " (paper)" : "");
        report(label.c_str(),
               scenario(*app, cal,
                        core::SessionOptions().withQuantum(quantum)));
    }

    banner("Control law");
    for (const double gain : {0.25, 0.5, 1.0, 1.5}) {
        char label[64];
        std::snprintf(label, sizeof(label), "integral, gain = %.2f%s",
                      gain, gain == 1.0 ? " (paper deadbeat)" : "");
        report(label,
               scenario(*app, cal,
                        core::SessionOptions().withPolicy(
                            core::makeDeadbeatPolicy(gain))));
    }
    report("pid (kp 0.1, ki 0.6, kd 0.05)",
           scenario(*app, cal,
                    core::SessionOptions().withPolicy(
                        core::makePidPolicy())));
    report("gain-scheduled (adaptive)",
           scenario(*app, cal,
                    core::SessionOptions().withPolicy(
                        core::makeGainScheduledPolicy())));

    banner("Frontier restriction (QoS cap during calibration)");
    {
        report("full frontier", scenario(*app, cal, {}));
        auto capped =
            calibrateTransfer(*sweep, *app, 0.01, bopts.threads);
        report("frontier capped at 1% QoS", scenario(*app, capped, {}));
    }
    return 0;
}
