/**
 * @file
 * Ablation bench for the design choices called out in DESIGN.md:
 *
 *  - actuation policy: minimal-speedup vs race-to-idle (paper section
 *    2.3.3 presents both solutions of the constraint system);
 *  - time quantum: the paper fixes 20 heartbeats "heuristically" — we
 *    sweep it;
 *  - controller gain: the paper's deadbeat k = 1 vs slower gains;
 *  - Pareto restriction: actuating over the Pareto frontier vs the
 *    raw point set (via a QoS cap that mimics a degraded frontier).
 *
 * Scenario: swaptions under the section 5.4 power cap; metrics are
 * capped-region performance error, estimated QoS loss, and energy.
 */
#include <cmath>

#include "bench_common.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

struct Outcome
{
    double perf_err;   //!< Mean |perf - 1| over the capped region.
    double qos_loss;   //!< Work-weighted calibrated QoS loss.
    double energy_j;   //!< Full-run machine energy.
};

Outcome
scenario(core::App &app, const CalibratedApp &cal,
         const core::RuntimeOptions &options)
{
    const auto input = app.productionInputs().front();
    const auto baseline =
        core::runFixed(app, input, app.defaultCombination());
    core::RuntimeOptions opt = options;
    app.loadInput(input);
    opt.target_rate = static_cast<double>(app.unitCount()) /
                      baseline.seconds;

    core::Runtime runtime(app, cal.ident.table, cal.training.model,
                          opt);
    sim::Machine machine;
    auto governor = sim::DvfsGovernor::powerCap(
        machine, 0.25 * baseline.seconds, 0.75 * baseline.seconds);
    const auto run = runtime.run(input, machine, &governor);

    Outcome out{};
    const std::size_t lo = run.beats.size() * 2 / 5;
    const std::size_t hi = run.beats.size() * 3 / 5;
    for (std::size_t i = lo; i < hi; ++i)
        out.perf_err += std::abs(run.beats[i].normalized_perf - 1.0);
    out.perf_err /= static_cast<double>(hi - lo);
    out.qos_loss = run.mean_qos_loss_estimate;
    out.energy_j = machine.energyJoules();
    return out;
}

void
report(const char *label, const Outcome &o)
{
    std::printf("%-34s %12.4f %12.3f %12.0f\n", label, o.perf_err,
                100.0 * o.qos_loss, o.energy_j);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto bopts = parseBenchOptions(argc, argv);
    auto sweep = makeSwaptions();
    auto app = makeSwaptions(RunLength::Series);
    auto cal = calibrateTransfer(*sweep, *app, -1.0, bopts.threads);

    std::printf("%-34s %12s %12s %12s\n", "configuration",
                "perf_err", "qos_loss%", "energy_J");
    std::printf("%s\n", std::string(74, '-').c_str());

    banner("Actuation policy");
    {
        core::RuntimeOptions opt;
        opt.policy = core::ActuationPolicy::MinimalSpeedup;
        report("minimal-speedup (paper default)", scenario(*app, cal, opt));
        opt.policy = core::ActuationPolicy::RaceToIdle;
        report("race-to-idle", scenario(*app, cal, opt));
    }

    banner("Time quantum (heartbeats)");
    for (const std::size_t quantum : {5u, 10u, 20u, 40u, 80u}) {
        core::RuntimeOptions opt;
        opt.quantum_beats = quantum;
        const std::string label =
            "quantum = " + std::to_string(quantum) +
            (quantum == 20 ? " (paper)" : "");
        report(label.c_str(), scenario(*app, cal, opt));
    }

    banner("Controller gain");
    for (const double gain : {0.25, 0.5, 1.0, 1.5}) {
        core::RuntimeOptions opt;
        opt.gain = gain;
        char label[64];
        std::snprintf(label, sizeof(label), "gain = %.2f%s", gain,
                      gain == 1.0 ? " (paper deadbeat)" : "");
        report(label, scenario(*app, cal, opt));
    }

    banner("Frontier restriction (QoS cap during calibration)");
    {
        report("full frontier", scenario(*app, cal, {}));
        auto capped =
            calibrateTransfer(*sweep, *app, 0.01, bopts.threads);
        report("frontier capped at 1% QoS", scenario(*app, capped, {}));
    }
    return 0;
}
