/**
 * @file
 * Roofline-style characterization of the five app kernels (PR 10):
 * measured ns/op for the retained naive reference implementation vs
 * the optimized kernel, paired with a manual per-kernel cost model
 * (FLOPs and bytes touched per op — no hardware counters), from which
 * each kernel's arithmetic intensity follows. Low-intensity kernels
 * are the ones where the memory-layout work (SoA flattening, hoisted
 * buffers, transposed bases) must pay off; high-intensity kernels are
 * compute-bound and gain from arithmetic specialisation instead.
 *
 * Timing methodology (vendored-harness idiom, cf. bench_overhead.cc):
 * the reference path is calibrated to a >= 50 ms batch, then reference
 * and optimized batches run interleaved for five rounds sharing
 * thermal conditions, keeping the best round of each. All numbers are
 * per "op", where an op is one natural kernel invocation (one 8x8
 * forward+inverse DCT, one macroblock motion search, one full
 * resample, one query, one pricing run, one full y = Ax).
 *
 * Modes:
 *   (default)      print the characterization table + JSON blob.
 *   --json=FILE    also write the JSON blob to FILE.
 *   --check        enforce per-kernel relative ceilings: opt ns/op
 *                  must be <= ref ns/op * ceiling. Machine-independent
 *                  (both sides measured on the same host), so CI can
 *                  gate on it; exits non-zero on any regression.
 *
 * The checked-in bench/golden/BENCH_kernels.json is a *shape*
 * snapshot: CI validates the kernel-key set and field names against
 * it, never the timing values (which are host-dependent).
 */
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "apps/bodytrack/particle_filter.h"
#include "apps/searchx/index.h"
#include "apps/spmv/spmv_kernel.h"
#include "apps/swaptions/pricer.h"
#include "apps/videnc/dct.h"
#include "apps/videnc/motion.h"
#include "vendor/microbench.h"
#include "workload/corpus.h"
#include "workload/rng.h"
#include "workload/video_source.h"

using namespace powerdial;
using powerdial::microbench::DoNotOptimize;

namespace {

// ---------------------------------------------------------------------------
// Timing core
// ---------------------------------------------------------------------------

using BatchFn = std::function<void(std::size_t)>;

double
timeBatch(const BatchFn &fn, std::size_t batch)
{
    const auto start = std::chrono::steady_clock::now();
    fn(batch);
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Grow the batch geometrically until it takes >= 50 ms (the vendored
 *  harness's calibration rule). */
std::size_t
calibrateBatch(const BatchFn &fn)
{
    constexpr double kMinBatchSeconds = 0.05;
    std::size_t batch = 1;
    for (;;) {
        const double seconds = timeBatch(fn, batch);
        if (seconds >= kMinBatchSeconds || batch >= (1ull << 30))
            return batch;
        std::size_t next = seconds > 0.0
            ? static_cast<std::size_t>(static_cast<double>(batch) *
                                       (1.6 * kMinBatchSeconds / seconds))
            : batch * 10;
        batch = std::max(next, batch * 2);
    }
}

/** Best-of-5 interleaved ns/op for the (reference, optimized) pair. */
void
measurePair(const BatchFn &ref, const BatchFn &opt, double &ref_ns,
            double &opt_ns)
{
    constexpr int kRounds = 5;
    const std::size_t batch = calibrateBatch(ref);
    // Warm both paths before the timed rounds.
    timeBatch(ref, std::max<std::size_t>(batch / 4, 1));
    timeBatch(opt, std::max<std::size_t>(batch / 4, 1));
    double best_ref = 1e300;
    double best_opt = 1e300;
    for (int round = 0; round < kRounds; ++round) {
        best_ref = std::min(best_ref, timeBatch(ref, batch));
        best_opt = std::min(best_opt, timeBatch(opt, batch));
    }
    ref_ns = 1e9 * best_ref / static_cast<double>(batch);
    opt_ns = 1e9 * best_opt / static_cast<double>(batch);
}

struct KernelReport
{
    const char *name;
    double flops_per_op;   //!< Manual count, see each fixture.
    double bytes_per_op;   //!< Manual count of bytes touched.
    double ceiling_ratio;  //!< --check: opt_ns <= ref_ns * this.
    double ref_ns = 0.0;
    double opt_ns = 0.0;
};

// ---------------------------------------------------------------------------
// Fixtures — one per kernel. Each documents its cost model inline.
// ---------------------------------------------------------------------------

/**
 * DCT: op = forward + inverse transform of one 8x8 block.
 * FLOPs: 4 one-dimensional passes x 64 dot products x (8 mul + 8 add)
 * = 4096. Bytes: each pass streams block-in, basis row set, block-out
 * (3 x 512 B), plus the inverse's up-front 64-coefficient transpose
 * (2 x 512 B) => 4 x 1536 + 1024 = 7168 B.
 *
 * Ceiling 1.10 is a parity guard: the bit-exact default path keeps the
 * reference loop nest because every reshaping tried measured slower on
 * the baseline build (see dct.cc); the check pins it from drifting.
 */
KernelReport
benchDct()
{
    KernelReport report{"videnc_dct", 4096.0, 7168.0, 1.10};
    static std::vector<apps::videnc::ResidualBlock> blocks = [] {
        workload::Rng rng(0xDC7);
        std::vector<apps::videnc::ResidualBlock> out(16);
        for (auto &b : out)
            for (auto &v : b)
                v = rng.uniform(-128.0, 128.0);
        return out;
    }();
    const BatchFn ref = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i) {
            const auto &block = blocks[i % blocks.size()];
            DoNotOptimize(apps::videnc::reference::inverseDct(
                apps::videnc::reference::forwardDct(block)));
        }
    };
    const BatchFn opt = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i) {
            const auto &block = blocks[i % blocks.size()];
            DoNotOptimize(apps::videnc::inverseDct(
                apps::videnc::forwardDct(block)));
        }
    };
    measurePair(ref, opt, report.ref_ns, report.opt_ns);
    return report;
}

/**
 * Motion: op = one full macroblock motion search (merange 16, 6
 * sub-pel rounds, 2 reference frames) at rotating block positions.
 * Pixel count per op is taken from the search's own work accounting
 * (work_ops counts every pixel a full SAD visits). Per pixel the
 * naive kernel performs ~11 FLOPs (4-tap bilinear: 4 mul + 3 add,
 * plus difference, abs, accumulate) and touches 5 bytes (1 current +
 * 4 reference uint8 loads).
 */
KernelReport
benchMotion()
{
    static const std::vector<workload::Frame> clip = [] {
        workload::VideoParams params;
        params.width = 128;
        params.height = 96;
        params.frames = 3;
        return workload::VideoSource(params).frames();
    }();
    static const std::vector<workload::Frame> refs(clip.begin() + 1,
                                                   clip.end());
    static const apps::videnc::SearchParams params = [] {
        apps::videnc::SearchParams p;
        p.merange = 16;
        p.subpel_rounds = 6;
        p.refs = 2;
        return p;
    }();
    static constexpr int kPositions[][2] = {
        {0, 0}, {32, 32}, {64, 48}, {112, 80}};
    static constexpr std::size_t kNumPositions = 4;

    double pixels_per_op = 0.0;
    for (const auto &pos : kPositions)
        pixels_per_op += static_cast<double>(
            apps::videnc::reference::searchMotion(clip[0], pos[0], pos[1],
                                                  refs, params)
                .work_ops);
    pixels_per_op /= static_cast<double>(kNumPositions);

    KernelReport report{"videnc_motion", pixels_per_op * 11.0,
                        pixels_per_op * 5.0, 0.50};
    const BatchFn ref = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i) {
            const auto &pos = kPositions[i % kNumPositions];
            DoNotOptimize(apps::videnc::reference::searchMotion(
                clip[0], pos[0], pos[1], refs, params));
        }
    };
    const BatchFn opt = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i) {
            const auto &pos = kPositions[i % kNumPositions];
            DoNotOptimize(apps::videnc::searchMotion(
                clip[0], pos[0], pos[1], refs, params));
        }
    };
    measurePair(ref, opt, report.ref_ns, report.opt_ns);
    return report;
}

/**
 * Resampling: op = one systematic resample of a 4000-particle cloud
 * into 4000 particles. FLOPs: per output ~3 (comb target, compare,
 * amortised accumulator advance) => 3n. Bytes: n x (8 B weight read +
 * 64 B particle read + 64 B particle write) = 136n. The optimization
 * is pure allocation traffic, so intensity is unchanged and the
 * speedup is modest (~1.05-1.10x here, where the allocator is cheap;
 * the win is in the fleet loop, which reuses the scratch across
 * thousands of steps). Ceiling 1.05 guards parity-or-better.
 */
KernelReport
benchResample()
{
    constexpr std::size_t kParticles = 4000;
    KernelReport report{"bodytrack_resample", 3.0 * kParticles,
                        136.0 * kParticles, 1.05};
    static const std::vector<apps::bodytrack::Particle> cloud = [] {
        workload::Rng rng(0xB0D);
        std::vector<apps::bodytrack::Particle> out(kParticles);
        for (auto &p : out) {
            p.pose.root_x = rng.gaussian(0.0, 2.0);
            p.pose.root_y = rng.gaussian(0.0, 2.0);
            for (auto &a : p.pose.angles)
                a = rng.gaussian(0.0, 0.5);
            p.weight = std::exp(rng.gaussian(-2.0, 1.5));
        }
        return out;
    }();
    static const double total = [] {
        double t = 0.0;
        for (const auto &p : cloud)
            t += p.weight;
        return t;
    }();
    const BatchFn ref = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i)
            DoNotOptimize(apps::bodytrack::reference::systematicResample(
                cloud, kParticles, total, 0.37));
    };
    const BatchFn opt = [](std::size_t batch) {
        std::vector<apps::bodytrack::Particle> scratch;
        for (std::size_t i = 0; i < batch; ++i) {
            apps::bodytrack::systematicResampleInto(cloud, kParticles,
                                                    total, 0.37, scratch);
            DoNotOptimize(scratch.data());
        }
    };
    measurePair(ref, opt, report.ref_ns, report.opt_ns);
    return report;
}

/**
 * Search scoring: op = one ranked 3-term query, max_results 10, over
 * a 600-document corpus. Postings per op measured at setup. FLOPs:
 * ~4 per posting (tf log is shared per posting: log, mul, add,
 * compare). Bytes: per posting 8 B (posting) + 16 B (score
 * read-modify-write) = 24 B.
 */
KernelReport
benchSearchScore()
{
    static const workload::Corpus corpus = [] {
        workload::CorpusParams cp;
        cp.documents = 600;
        cp.vocabulary = 2000;
        cp.words_per_doc = 200;
        return workload::Corpus(cp);
    }();
    static const apps::searchx::InvertedIndex index(corpus.documents());
    static const std::vector<workload::Query> queries =
        corpus.makeQueries(32, 3, 0x9E12);
    constexpr std::size_t kMaxResults = 10;

    double postings_per_op = 0.0;
    for (const auto &q : queries)
        for (const auto term : q.terms)
            postings_per_op +=
                static_cast<double>(index.postings(term).size());
    postings_per_op /= static_cast<double>(queries.size());

    KernelReport report{"searchx_score", postings_per_op * 4.0,
                        postings_per_op * 24.0, 0.50};
    const BatchFn ref = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i)
            DoNotOptimize(apps::searchx::reference::search(
                index, queries[i % queries.size()], kMaxResults));
    };
    const BatchFn opt = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i)
            DoNotOptimize(
                index.search(queries[i % queries.size()], kMaxResults));
    };
    measurePair(ref, opt, report.ref_ns, report.opt_ns);
    return report;
}

/**
 * Swaptions: op = one 500-path pricing run. No transformation was
 * mandated for this kernel — reference and optimized are the same
 * function, and the --check ceiling (1.25) acts as a parity guard
 * against accidental regressions in the shared pricer. FLOPs: paths x
 * (16 steps x ~10 + ~20 payoff/accumulate) = 500 x 180. Bytes: the
 * path state lives in registers; traffic is ~2 RNG states + result
 * accumulators per step => paths x 16 x 8.
 */
KernelReport
benchSwaptions()
{
    constexpr std::uint64_t kPaths = 500;
    KernelReport report{"swaptions_price", 180.0 * kPaths,
                        8.0 * 16.0 * kPaths, 1.25};
    static const apps::swaptions::Swaption s = [] {
        apps::swaptions::Swaption sw;
        sw.forward_rate = 0.05;
        sw.strike = 0.045;
        sw.volatility = 0.2;
        sw.maturity = 2.0;
        sw.tenor = 5.0;
        sw.discount_rate = 0.03;
        sw.notional = 100.0;
        return sw;
    }();
    const BatchFn run = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i)
            DoNotOptimize(apps::swaptions::price(s, kPaths, 1));
    };
    measurePair(run, run, report.ref_ns, report.opt_ns);
    return report;
}

/**
 * SpMV: op = one full y = Ax at full precision over all nonzeros
 * (512 rows, half-bandwidth 48, fill 0.5). FLOPs: 2 x nnz. Bytes:
 * nnz x (8 B value + 4 B column + 8 B gathered x) + 8 B result per
 * row — the optimized layout's algorithmic traffic; the naive layout
 * additionally chases the per-row by_magnitude indirection.
 */
KernelReport
benchSpmv()
{
    static const std::vector<apps::spmv::SpmvRow> rows =
        apps::spmv::makeBandedRows(512, 48, 0.5, 0x5937);
    static const apps::spmv::CsrMatrix csr =
        apps::spmv::CsrMatrix::fromRows(rows);
    static const std::vector<double> x = [] {
        workload::Rng rng(0x11AC);
        std::vector<double> out(rows.size());
        for (auto &v : out)
            v = 0.1 + 0.9 * rng.uniform();
        return out;
    }();
    const double nnz = static_cast<double>(csr.values.size());
    KernelReport report{"spmv", 2.0 * nnz,
                        20.0 * nnz + 8.0 * static_cast<double>(rows.size()),
                        0.67};
    const BatchFn ref = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i) {
            double sum = 0.0;
            for (std::size_t r = 0; r < rows.size(); ++r)
                sum += apps::spmv::reference::rowDot(
                    rows[r], x, rows[r].values.size(), 64);
            DoNotOptimize(sum);
        }
    };
    const BatchFn opt = [](std::size_t batch) {
        for (std::size_t i = 0; i < batch; ++i) {
            double sum = 0.0;
            for (std::size_t r = 0; r < csr.rowCount(); ++r)
                sum += apps::spmv::rowDot(csr, r, x, csr.nnzOf(r), 64);
            DoNotOptimize(sum);
        }
    };
    measurePair(ref, opt, report.ref_ns, report.opt_ns);
    return report;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string
jsonBlob(const std::vector<KernelReport> &reports)
{
    std::string json = "{\n  \"benchmark\": \"bench_roofline\",\n"
                       "  \"kernels\": {\n";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const auto &r = reports[i];
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "    \"%s\": {\"ref_ns_per_op\": %.1f, "
            "\"opt_ns_per_op\": %.1f, \"speedup\": %.3f, "
            "\"flops_per_op\": %.0f, \"bytes_per_op\": %.0f, "
            "\"arith_intensity\": %.3f, "
            "\"check_ratio_ceiling\": %.2f}%s\n",
            r.name, r.ref_ns, r.opt_ns, r.ref_ns / r.opt_ns,
            r.flops_per_op, r.bytes_per_op,
            r.flops_per_op / r.bytes_per_op, r.ceiling_ratio,
            i + 1 < reports.size() ? "," : "");
        json += buf;
    }
    json += "  }\n}\n";
    return json;
}

} // namespace

int
main(int argc, char **argv)
{
    bool check = false;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json_path = argv[i] + 7;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--check] [--json=FILE]\n", argv[0]);
            return 2;
        }
    }

    std::vector<KernelReport> reports;
    reports.push_back(benchDct());
    reports.push_back(benchMotion());
    reports.push_back(benchResample());
    reports.push_back(benchSearchScore());
    reports.push_back(benchSwaptions());
    reports.push_back(benchSpmv());

    std::printf("%-20s %12s %12s %9s %11s %11s %8s\n", "kernel",
                "ref ns/op", "opt ns/op", "speedup", "flops/op",
                "bytes/op", "flop/B");
    std::printf("%s\n", std::string(88, '-').c_str());
    for (const auto &r : reports) {
        std::printf("%-20s %12.1f %12.1f %8.2fx %11.0f %11.0f %8.3f\n",
                    r.name, r.ref_ns, r.opt_ns, r.ref_ns / r.opt_ns,
                    r.flops_per_op, r.bytes_per_op,
                    r.flops_per_op / r.bytes_per_op);
    }

    const std::string json = jsonBlob(reports);
    std::printf("\n%s", json.c_str());
    if (!json_path.empty()) {
        if (std::FILE *f = std::fopen(json_path.c_str(), "w")) {
            std::fputs(json.c_str(), f);
            std::fclose(f);
        } else {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 2;
        }
    }

    if (check) {
        int failures = 0;
        for (const auto &r : reports) {
            const double ceiling = r.ref_ns * r.ceiling_ratio;
            const bool ok = r.opt_ns <= ceiling;
            std::printf("check %-20s opt %.1f ns/op vs ceiling %.1f "
                        "(ref x %.2f) -- %s\n",
                        r.name, r.opt_ns, ceiling, r.ceiling_ratio,
                        ok ? "ok" : "REGRESSED");
            failures += ok ? 0 : 1;
        }
        return failures == 0 ? 0 : 1;
    }
    return 0;
}
