/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Each bench binary regenerates one table or figure of the paper
 * (see DESIGN.md section 4). The app configurations here are the
 * "paper-scale, laptop-budget" sizes: every knob range keeps the
 * paper's structure while input sizes are scaled so the full bench
 * suite completes in minutes on one core.
 */
#ifndef POWERDIAL_BENCH_COMMON_H
#define POWERDIAL_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "sim/energy_meter.h"

namespace powerdial::bench {

/** Command-line options shared by every bench driver. */
struct BenchOptions
{
    /**
     * Calibration worker threads: 0 (the default) uses all hardware
     * contexts, 1 forces the serial sweep. Either way the calibration
     * output is bit-identical (see core::CalibrationOptions::threads).
     */
    std::size_t threads = 0;
};

/**
 * Parse the shared bench flags (currently `--threads=N` / `-t N`).
 * Prints usage and exits on an unknown argument or a malformed value
 * so a typo cannot silently run a multi-minute sweep with default
 * settings.
 */
inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions options;
    const auto usage = [argv]() {
        std::fprintf(stderr,
                     "usage: %s [--threads=N | -t N]\n"
                     "  N calibration worker threads "
                     "(0 = all hardware contexts, 1 = serial)\n",
                     argv[0]);
        std::exit(2);
    };
    const auto parseCount = [&usage](const char *text) {
        // Digits only: reject "-4", "abc", "4x", and empty strings
        // rather than letting strtoul misparse them.
        if (*text == '\0')
            usage();
        for (const char *p = text; *p != '\0'; ++p)
            if (*p < '0' || *p > '9')
                usage();
        return static_cast<std::size_t>(
            std::strtoul(text, nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = parseCount(arg + 10);
        } else if (std::strcmp(arg, "-t") == 0 && i + 1 < argc) {
            options.threads = parseCount(argv[++i]);
        } else {
            usage();
        }
    }
    return options;
}

/** Units-per-input profile: short for sweeps, long for time series. */
enum class RunLength
{
    Sweep, //!< Calibration sweeps over many knob combinations.
    Series //!< Long single runs (the Figure 7 time series).
};

inline std::unique_ptr<apps::swaptions::SwaptionsApp>
makeSwaptions(RunLength length = RunLength::Sweep)
{
    apps::swaptions::SwaptionsConfig config;
    config.inputs = 8;
    config.swaptions_per_input =
        length == RunLength::Series ? 800 : 24;
    return std::make_unique<apps::swaptions::SwaptionsApp>(config);
}

inline std::unique_ptr<apps::videnc::VidencApp>
makeVidenc(RunLength length = RunLength::Sweep)
{
    apps::videnc::VidencConfig config;
    config.inputs = 8;
    config.video.width = 64;
    config.video.height = 48;
    config.video.frames = length == RunLength::Series ? 240 : 10;
    return std::make_unique<apps::videnc::VidencApp>(config);
}

inline std::unique_ptr<apps::bodytrack::BodytrackApp>
makeBodytrack(RunLength length = RunLength::Sweep)
{
    apps::bodytrack::BodytrackConfig config;
    config.inputs = 6;
    config.frames = length == RunLength::Series ? 400 : 40;
    return std::make_unique<apps::bodytrack::BodytrackApp>(config);
}

inline std::unique_ptr<apps::searchx::SearchxApp>
makeSearchx(RunLength length = RunLength::Sweep)
{
    apps::searchx::SearchxConfig config;
    config.inputs = 8;
    config.queries_per_input =
        length == RunLength::Series ? 1200 : 50;
    return std::make_unique<apps::searchx::SearchxApp>(config);
}

/** The identification + calibration front half of the pipeline. */
struct CalibratedApp
{
    core::IdentificationResult ident;
    core::CalibrationResult training;
};

inline CalibratedApp
calibrateOnTraining(core::App &app, double qos_cap = -1.0,
                    std::size_t threads = 0)
{
    CalibratedApp out;
    out.ident = core::identifyKnobs(app);
    if (!out.ident.analysis.accepted) {
        std::fprintf(stderr, "%s: knob identification REJECTED\n%s\n",
                     app.name().c_str(), out.ident.report.c_str());
        std::abort();
    }
    core::CalibrationOptions options;
    options.qos_cap = qos_cap;
    options.threads = threads;
    out.training = core::calibrate(app, app.trainingInputs(), options);
    return out;
}

/**
 * Calibrate a response model on the cheap sweep-sized instance of an
 * application while binding the knob table to a long-input (series)
 * instance of the same application. Valid because both instances share
 * the identical knob space and per-unit work; only the number of
 * main-loop iterations differs.
 */
inline CalibratedApp
calibrateTransfer(core::App &sweep, core::App &series,
                  double qos_cap = -1.0, std::size_t threads = 0)
{
    CalibratedApp out;
    out.ident = core::identifyKnobs(series);
    if (!out.ident.analysis.accepted) {
        std::fprintf(stderr, "%s: knob identification REJECTED\n%s\n",
                     series.name().c_str(), out.ident.report.c_str());
        std::abort();
    }
    core::CalibrationOptions options;
    options.qos_cap = qos_cap;
    options.threads = threads;
    out.training =
        core::calibrate(sweep, sweep.trainingInputs(), options);
    return out;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

} // namespace powerdial::bench

#endif // POWERDIAL_BENCH_COMMON_H
