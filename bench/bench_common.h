/**
 * @file
 * Shared helpers for the experiment-reproduction benches.
 *
 * Each bench binary regenerates one table or figure of the paper
 * (see DESIGN.md section 4). The app configurations here are the
 * "paper-scale, laptop-budget" sizes: every knob range keeps the
 * paper's structure while input sizes are scaled so the full bench
 * suite completes in minutes on one core.
 */
#ifndef POWERDIAL_BENCH_COMMON_H
#define POWERDIAL_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "apps/bodytrack/bodytrack_app.h"
#include "apps/searchx/searchx_app.h"
#include "apps/swaptions/swaptions_app.h"
#include "apps/videnc/videnc_app.h"
#include "core/calibration.h"
#include "core/identify.h"
#include "core/session.h"
#include "fleet/observability.h"
#include "obs/metrics.h"
#include "obs/trace_json.h"
#include "obs/trace_sink.h"
#include "sim/energy_meter.h"

namespace powerdial::bench {

/** Command-line options shared by every bench driver. */
struct BenchOptions
{
    /**
     * Calibration worker threads: 0 (the default) uses all hardware
     * contexts, 1 forces the serial sweep. Either way the calibration
     * output is bit-identical (see core::CalibrationOptions::threads).
     */
    std::size_t threads = 0;
};

/**
 * Parse the shared bench flags (currently `--threads=N` / `-t N`).
 * Prints usage and exits on an unknown argument or a malformed value
 * so a typo cannot silently run a multi-minute sweep with default
 * settings.
 */
inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    BenchOptions options;
    const auto usage = [argv]() {
        std::fprintf(stderr,
                     "usage: %s [--threads=N | -t N]\n"
                     "  N calibration worker threads "
                     "(0 = all hardware contexts, 1 = serial)\n",
                     argv[0]);
        std::exit(2);
    };
    const auto parseCount = [&usage](const char *text) {
        // Digits only: reject "-4", "abc", "4x", and empty strings
        // rather than letting strtoul misparse them.
        if (*text == '\0')
            usage();
        for (const char *p = text; *p != '\0'; ++p)
            if (*p < '0' || *p > '9')
                usage();
        return static_cast<std::size_t>(
            std::strtoul(text, nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = parseCount(arg + 10);
        } else if (std::strcmp(arg, "-t") == 0 && i + 1 < argc) {
            options.threads = parseCount(argv[++i]);
        } else {
            usage();
        }
    }
    return options;
}

/** Units-per-input profile: short for sweeps, long for time series. */
enum class RunLength
{
    Sweep, //!< Calibration sweeps over many knob combinations.
    Series //!< Long single runs (the Figure 7 time series).
};

inline std::unique_ptr<apps::swaptions::SwaptionsApp>
makeSwaptions(RunLength length = RunLength::Sweep)
{
    apps::swaptions::SwaptionsConfig config;
    config.inputs = 8;
    config.swaptions_per_input =
        length == RunLength::Series ? 800 : 24;
    return std::make_unique<apps::swaptions::SwaptionsApp>(config);
}

inline std::unique_ptr<apps::videnc::VidencApp>
makeVidenc(RunLength length = RunLength::Sweep)
{
    apps::videnc::VidencConfig config;
    config.inputs = 8;
    config.video.width = 64;
    config.video.height = 48;
    config.video.frames = length == RunLength::Series ? 240 : 10;
    return std::make_unique<apps::videnc::VidencApp>(config);
}

inline std::unique_ptr<apps::bodytrack::BodytrackApp>
makeBodytrack(RunLength length = RunLength::Sweep)
{
    apps::bodytrack::BodytrackConfig config;
    config.inputs = 6;
    config.frames = length == RunLength::Series ? 400 : 40;
    return std::make_unique<apps::bodytrack::BodytrackApp>(config);
}

inline std::unique_ptr<apps::searchx::SearchxApp>
makeSearchx(RunLength length = RunLength::Sweep)
{
    apps::searchx::SearchxConfig config;
    config.inputs = 8;
    config.queries_per_input =
        length == RunLength::Series ? 1200 : 50;
    return std::make_unique<apps::searchx::SearchxApp>(config);
}

/** The identification + calibration front half of the pipeline. */
struct CalibratedApp
{
    core::IdentificationResult ident;
    core::CalibrationResult training;
};

inline CalibratedApp
calibrateOnTraining(core::App &app, double qos_cap = -1.0,
                    std::size_t threads = 0)
{
    CalibratedApp out;
    out.ident = core::identifyKnobs(app);
    if (!out.ident.analysis.accepted) {
        std::fprintf(stderr, "%s: knob identification REJECTED\n%s\n",
                     app.name().c_str(), out.ident.report.c_str());
        std::abort();
    }
    core::CalibrationOptions options;
    options.qos_cap = qos_cap;
    options.threads = threads;
    out.training = core::calibrate(app, app.trainingInputs(), options);
    return out;
}

/**
 * Calibrate a response model on the cheap sweep-sized instance of an
 * application while binding the knob table to a long-input (series)
 * instance of the same application. Valid because both instances share
 * the identical knob space and per-unit work; only the number of
 * main-loop iterations differs.
 */
inline CalibratedApp
calibrateTransfer(core::App &sweep, core::App &series,
                  double qos_cap = -1.0, std::size_t threads = 0)
{
    CalibratedApp out;
    out.ident = core::identifyKnobs(series);
    if (!out.ident.analysis.accepted) {
        std::fprintf(stderr, "%s: knob identification REJECTED\n%s\n",
                     series.name().c_str(), out.ident.report.c_str());
        std::abort();
    }
    core::CalibrationOptions options;
    options.qos_cap = qos_cap;
    options.threads = threads;
    out.training =
        core::calibrate(sweep, sweep.trainingInputs(), options);
    return out;
}

/** Print a section banner. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/**
 * Observability flags shared by the fleet benches. All optional: when
 * none are given the bench runs untraced and its stdout stays
 * byte-identical to the goldens (the sink is simply never created).
 */
struct ObsOptions
{
    std::string trace_path;       //!< --trace=FILE (Chrome trace JSON).
    std::string trace_jsonl_path; //!< --trace-jsonl=FILE (one event/line).
    std::string metrics_path;     //!< --metrics=FILE (Prometheus text).
    /**
     * Default traces every decision plane but skips the per-beat
     * firehose; --trace-categories=all (or beat,...) turns it on.
     */
    unsigned categories = obs::kCatAll & ~obs::kCatBeat;
    std::size_t ring = 0; //!< --trace-ring=N keeps only the last N.

    bool enabled() const
    {
        return !trace_path.empty() || !trace_jsonl_path.empty() ||
               !metrics_path.empty();
    }
};

/**
 * Try to consume one observability argument. Returns false when the
 * argument is not an observability flag (so the caller's own parser
 * handles it); prints and exits on a malformed value.
 */
inline bool
parseObsArg(ObsOptions &options, const char *arg)
{
    if (std::strncmp(arg, "--trace=", 8) == 0) {
        options.trace_path = arg + 8;
        return true;
    }
    if (std::strncmp(arg, "--trace-jsonl=", 14) == 0) {
        options.trace_jsonl_path = arg + 14;
        return true;
    }
    if (std::strncmp(arg, "--metrics=", 10) == 0) {
        options.metrics_path = arg + 10;
        return true;
    }
    if (std::strncmp(arg, "--trace-categories=", 19) == 0) {
        const auto parsed = obs::parseCategories(arg + 19);
        if (!parsed.has_value()) {
            std::fprintf(stderr,
                         "bad --trace-categories value '%s' (names: "
                         "lifecycle,control,beat,admission,placement,"
                         "arbitration,fleet,all,none)\n",
                         arg + 19);
            std::exit(2);
        }
        options.categories = *parsed;
        return true;
    }
    if (std::strncmp(arg, "--trace-ring=", 13) == 0) {
        const char *text = arg + 13;
        if (*text == '\0')
            std::exit(2);
        for (const char *p = text; *p != '\0'; ++p)
            if (*p < '0' || *p > '9') {
                std::fprintf(stderr,
                             "bad --trace-ring value '%s'\n", text);
                std::exit(2);
            }
        options.ring = static_cast<std::size_t>(
            std::strtoul(text, nullptr, 10));
        return true;
    }
    return false;
}

/** Extend a usage string: the observability flags every fleet bench
 *  accepts (kept in one place so the benches stay in sync). */
inline const char *
obsUsage()
{
    return "          [--trace=FILE] [--trace-jsonl=FILE] "
           "[--metrics=FILE]\n"
           "          [--trace-categories=LIST] [--trace-ring=N]\n"
           "  trace       write a Chrome trace-event JSON "
           "(chrome://tracing, Perfetto)\n"
           "  trace-jsonl write the same records as one JSON object "
           "per line\n"
           "  metrics     write Prometheus text-format counters and "
           "histograms\n"
           "  trace-categories  comma list of lifecycle,control,beat,"
           "admission,placement,\n"
           "              arbitration (aliases: fleet, all, none; "
           "default all minus beat)\n"
           "  trace-ring  flight-recorder mode: keep only the last N "
           "records\n";
}

/**
 * Build the trace sink the parsed flags ask for — or nothing, so the
 * untraced path never constructs one. Attach via
 * `server_options.trace = obs_sink ? &*obs_sink : nullptr;`.
 */
inline std::optional<obs::TraceSink>
makeObsSink(const ObsOptions &options)
{
    if (!options.enabled())
        return std::nullopt;
    obs::TraceConfig config;
    config.categories = options.categories;
    config.ring_capacity = options.ring;
    return std::make_optional<obs::TraceSink>(config);
}

/**
 * Drain the sink once and write whichever outputs were requested.
 * The sink holds the records of the *last* serve it was attached to
 * (TraceSink::beginServe resets at each serve), so benches that run a
 * comparison matrix trace their final configuration.
 */
inline void
writeObsOutputs(const ObsOptions &options, obs::TraceSink *sink,
                const fleet::FleetReport &report)
{
    const auto open = [](const std::string &path) {
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            std::exit(1);
        }
        return out;
    };
    if (sink != nullptr && (!options.trace_path.empty() ||
                            !options.trace_jsonl_path.empty())) {
        const std::vector<obs::TraceRecord> records = sink->drain();
        if (!options.trace_path.empty()) {
            auto out = open(options.trace_path);
            obs::writeChromeTrace(out, records);
        }
        if (!options.trace_jsonl_path.empty()) {
            auto out = open(options.trace_jsonl_path);
            obs::writeJsonl(out, records);
        }
    }
    if (!options.metrics_path.empty()) {
        obs::MetricsRegistry registry;
        fleet::recordFleetMetrics(registry, report);
        auto out = open(options.metrics_path);
        registry.writePrometheus(out);
    }
}

} // namespace powerdial::bench

#endif // POWERDIAL_BENCH_COMMON_H
