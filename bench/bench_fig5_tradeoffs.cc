/**
 * @file
 * Reproduces Figure 5 (a-d): QoS loss versus speedup for each
 * benchmark — all knob settings on the training inputs, the Pareto-
 * optimal settings on the training inputs, and the same Pareto
 * settings re-measured on the production inputs.
 *
 * Paper shape: swaptions up to ~100x under 1.5% loss; x264 up to ~4.5x
 * under 7%; bodytrack ~7x (<= 6% below 6x); swish++ ~1.5x with QoS
 * loss linear in the knob.
 */
#include <algorithm>

#include "bench_common.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

void
figurePanel(core::App &app, const BenchOptions &options)
{
    banner("Figure 5: " + app.name());
    core::CalibrationOptions copt;
    copt.threads = options.threads;
    const auto train =
        core::calibrate(app, app.trainingInputs(), copt);
    const auto prod =
        core::calibrate(app, app.productionInputs(), copt);

    // Series 1: every knob setting (training means), decimated for
    // readability on big spaces.
    const auto &all = train.model.allPoints();
    std::printf("-- all knobs (training): %zu settings "
                "(printing <= 20)\n", all.size());
    std::printf("%12s %12s %12s\n", "combination", "speedup",
                "qos_loss%");
    const std::size_t stride = std::max<std::size_t>(1, all.size() / 20);
    for (std::size_t i = 0; i < all.size(); i += stride) {
        std::printf("%12zu %12.3f %12.3f\n", all[i].combination,
                    all[i].speedup, 100.0 * all[i].qos_loss);
    }

    // Series 2: Pareto-optimal settings (training).
    std::printf("-- optimal knobs (training)\n");
    std::printf("%12s %12s %12s\n", "combination", "speedup",
                "qos_loss%");
    for (const auto &p : train.model.pareto()) {
        std::printf("%12zu %12.3f %12.3f\n", p.combination, p.speedup,
                    100.0 * p.qos_loss);
    }

    // Series 3: the same Pareto settings measured on production.
    std::printf("-- optimal knobs (production)\n");
    std::printf("%12s %12s %12s\n", "combination", "speedup",
                "qos_loss%");
    for (const auto &p : train.model.pareto()) {
        const auto &pp = prod.model.allPoints()[p.combination];
        std::printf("%12zu %12.3f %12.3f\n", pp.combination, pp.speedup,
                    100.0 * pp.qos_loss);
    }

    std::printf("-- summary: max speedup %.2fx at %.2f%% loss "
                "(training), %.2fx at %.2f%% (production)\n",
                train.model.maxSpeedup(),
                100.0 * train.model.fastest().qos_loss,
                prod.model.allPoints()[train.model.fastest().combination]
                    .speedup,
                100.0 *
                    prod.model
                        .allPoints()[train.model.fastest().combination]
                        .qos_loss);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = parseBenchOptions(argc, argv);
    {
        auto app = makeSwaptions();
        figurePanel(*app, options);
    }
    {
        auto app = makeVidenc();
        figurePanel(*app, options);
    }
    {
        auto app = makeBodytrack();
        figurePanel(*app, options);
    }
    {
        auto app = makeSearchx();
        figurePanel(*app, options);
    }
    return 0;
}
