/**
 * @file
 * SLO bench: predictive admission control vs blind queue-depth
 * shedding over production-shaped traffic.
 *
 * The admission-control matrix behind the PR-7 seam
 * (fleet/admission.h): a small consolidated fleet of microsim tenants
 * (bench/microsim_app.h) serves two composed traffic shapes
 * (workload::makeTrafficMix) —
 *
 *   - `diurnal`: a day/night swell that crests above the provisioned
 *     capacity at the peak of the cycle;
 *   - `flash`: a flat base with a flash crowd superimposed mid-run,
 *     pushing offered load past 1.0 (open-loop, never clamped);
 *
 * — once under QueueDepthAdmission (the historical blind shedding)
 * and once under PredictiveAdmission (shed only predicted SLO
 * violations, low-priority classes first), on both serve engines
 * (legacy epoch loop and the discrete-event engine). Tenants carry
 * three priority classes with tightening deadlines; the report is the
 * per-class p99 *conditioned on the rejection rate* — lower tail
 * latency is trivial if you reject everything, so each p99 is printed
 * next to the class's rejection rate and the dominance verdict
 * requires the predictive policy to cut top-class p99 without
 * rejecting more top-class traffic.
 *
 * Output is byte-identical for --threads=1 and --threads=N on both
 * engines (the CI slo-smoke job asserts this and diffs the summary
 * against bench/golden/slo_admission.txt). Wall-clock goes to stderr.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "class_mix.h"
#include "fleet/server.h"
#include "microsim_app.h"
#include "workload/traffic_mix.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

struct SloBenchOptions
{
    std::size_t steps = 48;  //!< Traffic-schedule length, epochs.
    std::size_t threads = 0; //!< Tenant-session workers (0 = all).
    /** Heterogeneous fleet spec, e.g. "big:1,little:2" (empty =
     *  the homogeneous two-single-core-machine default). */
    std::string class_mix;
    ObsOptions obs; //!< --trace / --trace-jsonl / --metrics outputs.
};

SloBenchOptions
parseSloOptions(int argc, char **argv)
{
    SloBenchOptions options;
    const auto usage = [argv]() {
        std::fprintf(stderr,
                     "usage: %s [--steps=N] [--threads=N | -t N] "
                     "[--class-mix=SPEC]\n"
                     "  steps      traffic-schedule epochs "
                     "(default 48)\n"
                     "  threads    tenant-session workers "
                     "(0 = all hardware contexts, 1 = serial)\n"
                     "  class-mix  heterogeneous fleet from the "
                     "big.LITTLE catalog, e.g. big:1,little:2\n"
                     "             (absent = homogeneous default)\n%s",
                     argv[0], obsUsage());
        std::exit(2);
    };
    const auto parseCount = [&usage](const char *text) {
        if (*text == '\0')
            usage();
        for (const char *p = text; *p != '\0'; ++p)
            if (*p < '0' || *p > '9')
                usage();
        return static_cast<std::size_t>(
            std::strtoul(text, nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--steps=", 8) == 0) {
            options.steps = parseCount(arg + 8);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = parseCount(arg + 10);
        } else if (std::strcmp(arg, "-t") == 0 && i + 1 < argc) {
            options.threads = parseCount(argv[++i]);
        } else if (std::strncmp(arg, "--class-mix=", 12) == 0) {
            options.class_mix = arg + 12;
        } else if (parseObsArg(options.obs, arg)) {
            // Consumed by the shared observability parser.
        } else {
            usage();
        }
    }
    if (options.steps == 0)
        usage();
    return options;
}

/** The three-class tenant population, deadlines off @p baseline_s. */
std::vector<workload::TenantProfile>
makeProfiles(double baseline_s)
{
    // Popularity (Zipf rank) order. The top class is also the most
    // popular, so protecting it is where admission policy earns its
    // keep; deadlines tighten down the priority ladder.
    return {
        {2, 0, baseline_s * 4.0}, // rank 0: premium traffic.
        {3, 1, baseline_s * 3.0}, // rank 1: standard.
        {2, 2, baseline_s * 2.0}, // rank 2: best-effort...
        {3, 2, baseline_s * 2.0}, // rank 3: ...two tenants of it.
    };
}

/** One traffic shape of the matrix. */
struct TraceShape
{
    const char *label;
    std::vector<std::vector<workload::OfferedJob>> offers;
};

std::vector<TraceShape>
makeShapes(const SloBenchOptions &options, double baseline_s)
{
    const auto profiles = makeProfiles(baseline_s);

    // Diurnal: one full day/night cycle over the schedule, cresting
    // near offered level ~0.95 of peak_rate at midday.
    workload::TrafficMixParams diurnal;
    diurnal.steps = options.steps;
    diurnal.trace.base_utilization = 0.55;
    diurnal.trace.jitter = 0.03;
    diurnal.trace.spike_probability = 0.0;
    diurnal.trace.diurnal_amplitude = 0.4;
    diurnal.trace.diurnal_period = options.steps;
    diurnal.trace.seed = 0x510b001;
    diurnal.peak_rate = 3.5;
    diurnal.seed = 0x510b002;

    // Flash crowd: flat base, one crowd spanning the middle sixth of
    // the schedule that pushes composed load past 1.0.
    workload::TrafficMixParams flash;
    flash.steps = options.steps;
    flash.trace.base_utilization = 0.5;
    flash.trace.jitter = 0.03;
    flash.trace.spike_probability = 0.0;
    flash.trace.seed = 0x510b003;
    flash.flash_crowds = {
        {options.steps / 3, options.steps / 6 + 1, 0.9}};
    flash.peak_rate = 3.5;
    flash.seed = 0x510b004;

    return {
        {"diurnal", workload::makeTrafficMix(diurnal, profiles).offers},
        {"flash", workload::makeTrafficMix(flash, profiles).offers},
    };
}

struct SloCase
{
    const char *trace;
    const char *engine;
    const char *admission;
    fleet::FleetReport report;
};

/** Rejection rate of one class row, percent of its offered jobs. */
double
rejectPct(const fleet::ClassStats &row)
{
    const std::size_t offered = row.jobs + row.shed;
    return offered == 0
        ? 0.0
        : 100.0 * static_cast<double>(row.shed) /
            static_cast<double>(offered);
}

const fleet::ClassStats *
classRow(const fleet::FleetReport &report, std::size_t job_class)
{
    for (const auto &row : report.classes)
        if (row.job_class == job_class)
            return &row;
    return nullptr;
}

void
printClassTable(const fleet::FleetReport &report)
{
    std::printf("%6s %6s %6s %8s %10s %10s %10s\n", "class", "jobs",
                "shed", "reject%", "p50_lat", "p95_lat", "p99_lat");
    for (const auto &row : report.classes)
        std::printf("%6zu %6zu %6zu %8.1f %10.4f %10.4f %10.4f\n",
                    row.job_class, row.jobs, row.shed, rejectPct(row),
                    row.p50_latency_s, row.p95_latency_s,
                    row.p99_latency_s);
    std::printf("total jobs %zu, shed %zu, drained %zu\n",
                report.total_jobs, report.total_shed,
                report.drained_jobs);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = parseSloOptions(argc, argv);
    banner("SLO admission: predictive vs queue-depth over shaped "
           "traffic");

    MicrosimApp app;
    auto cal = calibrateOnTraining(app, -1.0, options.threads);
    const auto &model = cal.training.model;
    const double baseline_s =
        static_cast<double>(MicrosimApp::kUnits) /
        model.baselineRate();

    const auto shapes = makeShapes(options, baseline_s);

    struct EngineCase
    {
        const char *label;
        fleet::EngineMode mode;
    };
    const EngineCase engines[] = {
        {"epoch", fleet::EngineMode::Epoch},
        {"event", fleet::EngineMode::Event},
    };
    struct AdmissionCase
    {
        const char *label;
        fleet::AdmissionFactory factory;
    };
    const AdmissionCase admissions[] = {
        {"queue-depth", fleet::makeQueueDepthAdmission()},
        {"predictive", fleet::makePredictiveAdmission()},
    };

    // One sink across the matrix: beginServe resets it at each serve,
    // so the outputs describe the final cell (flash/event/predictive).
    auto obs_sink = makeObsSink(options.obs);

    std::vector<SloCase> cases;
    for (const auto &shape : shapes) {
        for (const auto &engine : engines) {
            for (const auto &admission : admissions) {
                fleet::ServerOptions server_options;
                // Single-core machines keep the fleet in the regime
                // where occupancy outruns the knob's catch-up range,
                // so predicted latency actually climbs with load (on
                // many-core hosts the model predicts the controller
                // can hide the slowdown, and admission cannot
                // discriminate occupancy).
                server_options.machines = 2;
                server_options.machine.cores = 1;
                server_options.threads = options.threads;
                server_options.epoch_seconds = baseline_s * 0.5;
                server_options.queue_depth = 12;
                server_options.admission = admission.factory;
                server_options.engine = engine.mode;
                if (!applyClassMix(server_options,
                                   options.class_mix))
                    return 2;
                server_options.trace =
                    obs_sink ? &*obs_sink : nullptr;

                std::string label = std::string(shape.label) + " / " +
                    engine.label + " / " + admission.label;
                banner(label);
                fleet::Server server(app, cal.ident.table, model,
                                     server_options);
                const auto start = std::chrono::steady_clock::now();
                auto report = server.serve(shape.offers);
                const double wall_s = std::chrono::duration<double>(
                                          std::chrono::steady_clock::
                                              now() -
                                          start)
                                          .count();
                std::fprintf(stderr,
                             "[bench] %-28s wall-clock %.3f s\n",
                             label.c_str(), wall_s);
                printClassTable(report);
                cases.push_back({shape.label, engine.label,
                                 admission.label, std::move(report)});
            }
        }
    }

    writeObsOutputs(options.obs, obs_sink ? &*obs_sink : nullptr,
                    cases.back().report);

    banner("slo summary");
    std::printf("%-8s %-6s %-12s %6s %6s %8s %10s %10s %8s\n", "trace",
                "engine", "admission", "jobs", "shed", "c0_rej%",
                "c0_p95", "c0_p99", "all_rej%");
    for (const auto &slo_case : cases) {
        const auto *top = classRow(slo_case.report, 0);
        const std::size_t offered =
            slo_case.report.total_jobs + slo_case.report.total_shed;
        std::printf(
            "%-8s %-6s %-12s %6zu %6zu %8.1f %10.4f %10.4f %8.1f\n",
            slo_case.trace, slo_case.engine, slo_case.admission,
            slo_case.report.total_jobs, slo_case.report.total_shed,
            top != nullptr ? rejectPct(*top) : 0.0,
            top != nullptr ? top->p95_latency_s : 0.0,
            top != nullptr ? top->p99_latency_s : 0.0,
            offered == 0
                ? 0.0
                : 100.0 *
                    static_cast<double>(slo_case.report.total_shed) /
                    static_cast<double>(offered));
    }

    // The acceptance verdict: on every (trace, engine) cell the
    // predictive policy must deliver a lower top-class p99 without a
    // higher top-class rejection rate — better tail latency *bought by
    // shedding the right jobs*, not by rejecting more premium traffic.
    bool all_dominate = true;
    std::printf("\n");
    for (std::size_t i = 0; i + 1 < cases.size(); i += 2) {
        const auto &blind = cases[i];
        const auto &slo = cases[i + 1];
        const auto *blind_top = classRow(blind.report, 0);
        const auto *slo_top = classRow(slo.report, 0);
        const bool dominates = blind_top != nullptr &&
            slo_top != nullptr &&
            slo_top->p99_latency_s < blind_top->p99_latency_s &&
            rejectPct(*slo_top) <= rejectPct(*blind_top);
        all_dominate = all_dominate && dominates;
        std::printf("predictive dominates queue-depth on %s/%s "
                    "(c0 p99 %.4f < %.4f, c0 rej %.1f%% <= %.1f%%): "
                    "%s\n",
                    blind.trace, blind.engine,
                    slo_top != nullptr ? slo_top->p99_latency_s : 0.0,
                    blind_top != nullptr ? blind_top->p99_latency_s
                                         : 0.0,
                    slo_top != nullptr ? rejectPct(*slo_top) : 0.0,
                    blind_top != nullptr ? rejectPct(*blind_top) : 0.0,
                    dominates ? "yes" : "NO");
    }
    std::printf("predictive dominates on every trace x engine cell: "
                "%s\n", all_dominate ? "yes" : "NO");
    return all_dominate ? 0 : 1;
}
