/**
 * @file
 * Numerical sweeps of the section 3 analytical models: DVFS energy
 * (Equation 12, Figure 3), DVFS + dynamic knobs (Equations 13-19,
 * Figure 4), and server consolidation (Equations 20-24).
 */
#include "bench_common.h"
#include "core/analytical.h"

using namespace powerdial;
using namespace powerdial::core::analytical;
using powerdial::bench::banner;

int
main()
{
    // A task of 10 s at 2.4 GHz on the paper's platform; the DVFS
    // state stretches it per the frequency ratio (CPU-bound model).
    const DvfsPowers powers{205.0, 165.0, 90.0};
    const double t1 = 10.0;
    const double t2 = stretchedTime(t1, 2.4e9, 1.6e9);
    const TaskTiming timing{t1, t2 - t1};

    banner("Equation 12: DVFS energy accounting");
    std::printf("E_nodvfs = %.0f J, E_dvfs = %.0f J, savings = %.0f J\n",
                energyNoDvfs(powers, timing), energyDvfs(powers, timing),
                dvfsSavings(powers, timing));

    banner("Equations 13-19: energy vs knob speedup S(QoS)");
    std::printf("%10s %14s %14s\n", "S(QoS)", "E_elastic_J",
                "savings_J");
    for (const double s : {1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0}) {
        std::printf("%10.1f %14.0f %14.0f\n", s,
                    energyElasticDvfs(powers, timing, s),
                    elasticSavings(powers, timing, s));
    }

    banner("Race-to-idle vs low-power state as P_idle varies (S = 2)");
    std::printf("%12s %16s\n", "P_idle_W", "E_elastic_J");
    for (const double idle : {10.0, 30.0, 60.0, 90.0, 120.0, 150.0}) {
        const DvfsPowers p{205.0, 165.0, idle};
        std::printf("%12.0f %16.0f\n", idle,
                    energyElasticDvfs(p, timing, 2.0));
    }

    banner("Equations 20-24: consolidation vs speedup");
    std::printf("%10s %8s %8s %14s %14s %12s\n", "S(QoS)", "N_orig",
                "N_new", "P_orig_W", "P_new_W", "saved_W");
    for (const double s : {1.0, 1.34, 1.5, 2.0, 3.0, 4.0, 8.0}) {
        ConsolidationModel m;
        m.n_orig = 4;
        m.work_per_machine = 8.0;
        m.speedup = s;
        m.u_orig = 0.25;
        m.p_load = 220.0;
        m.p_idle = 90.0;
        const auto r = consolidate(m);
        std::printf("%10.2f %8zu %8zu %14.0f %14.0f %12.0f\n", s,
                    m.n_orig, r.n_new, r.p_orig_watts, r.p_new_watts,
                    r.p_save_watts);
    }
    return 0;
}
