/**
 * @file
 * The scale-mode bench tenant: a synthetic application with an exactly
 * known response (one knob k with values {1, 2, 4}, speedup exactly k,
 * QoS loss exactly 1% per unit of k - 1) and deliberately tiny jobs.
 * A swaptions job costs ~2 ms of wall-clock per beat; at 10^5 jobs
 * that is hours, while microsim jobs keep fleet-scale scenarios in
 * seconds so the benches measure the *engine and policies*, not the
 * tenant payload. Shared by bench_fleet_spike (scale mode) and
 * bench_slo (the admission-control matrix).
 */
#ifndef POWERDIAL_BENCH_MICROSIM_APP_H
#define POWERDIAL_BENCH_MICROSIM_APP_H

#include <memory>
#include <string>
#include <vector>

#include "core/app.h"
#include "sim/machine.h"

namespace powerdial::bench {

class MicrosimApp final : public core::App
{
  public:
    /**
     * @param k_values Ascending knob values; speedup is exactly k and
     *        QoS loss exactly 1% per unit of k - 1. The default matches
     *        the historical fixed knob (bench goldens depend on it);
     *        bench_hetero narrows the range so the knob cannot fully
     *        absorb a little-class speed deficit.
     */
    explicit MicrosimApp(std::vector<double> k_values = {1.0, 2.0,
                                                         4.0})
        : space_({{"k", std::move(k_values)}})
    {
    }

    std::string name() const override { return "microsim"; }

    std::unique_ptr<core::App>
    clone() const override
    {
        return std::make_unique<MicrosimApp>(*this);
    }

    const core::KnobSpace &knobSpace() const override { return space_; }

    std::size_t defaultCombination() const override { return 0; }

    void
    configure(const std::vector<double> &params) override
    {
        k_ = params.at(0);
    }

    void
    traceRun(influence::TraceRun &trace,
             const std::vector<double> &params) override
    {
        influence::Value<double> k(params.at(0),
                                   influence::paramBit(0));
        trace.store("k", k * influence::Value<double>(1.0),
                    "microsim:init");
        trace.firstHeartbeat();
        trace.read("k", "microsim:loop");
    }

    void
    bindControlVariables(core::KnobTable &table) override
    {
        table.bind({"k", [this](const std::vector<double> &v) {
                        k_ = v.at(0);
                    }});
    }

    std::size_t inputCount() const override { return 4; }

    std::vector<std::size_t>
    trainingInputs() const override
    {
        return {0, 1};
    }

    std::vector<std::size_t>
    productionInputs() const override
    {
        return {2, 3};
    }

    void
    loadInput(std::size_t index) override
    {
        (void)index;
        produced_ = 0.0;
        units_done_ = 0;
    }

    std::size_t unitCount() const override { return kUnits; }

    void
    processUnit(std::size_t unit, sim::Machine &machine) override
    {
        (void)unit;
        machine.execute(kBaseCycles / k_);
        produced_ += 100.0 * (1.0 - 0.01 * (k_ - 1.0));
        ++units_done_;
    }

    qos::OutputAbstraction
    output() const override
    {
        const double mean = units_done_ > 0
            ? produced_ / static_cast<double>(units_done_)
            : 0.0;
        return {{mean}, {}};
    }

    static constexpr std::size_t kUnits = 40;
    static constexpr double kBaseCycles = 6.0e5;

  private:
    core::KnobSpace space_;
    double k_ = 1.0;
    double produced_ = 0.0;
    std::size_t units_done_ = 0;
};

} // namespace powerdial::bench

#endif // POWERDIAL_BENCH_MICROSIM_APP_H
