/**
 * @file
 * Reproduces Table 2: correlation coefficient of observed values from
 * training with measured values on production inputs, for both the
 * speedup and QoS-loss metrics of every knob combination.
 *
 * Paper values: x264 0.995/0.975, bodytrack 0.999/0.839,
 * swaptions 1.000/0.999, swish++ 0.996/0.999.
 */
#include "bench_common.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

void
tableRow(core::App &app, const BenchOptions &options,
         double paper_speedup_r, double paper_qos_r)
{
    core::CalibrationOptions copt;
    copt.threads = options.threads;
    const auto train =
        core::calibrate(app, app.trainingInputs(), copt);
    const auto prod =
        core::calibrate(app, app.productionInputs(), copt);

    std::vector<double> ts, ps, tq, pq;
    const std::size_t combos = app.knobSpace().combinations();
    for (std::size_t c = 0; c < combos; ++c) {
        ts.push_back(train.model.allPoints()[c].speedup);
        ps.push_back(prod.model.allPoints()[c].speedup);
        tq.push_back(train.model.allPoints()[c].qos_loss);
        pq.push_back(prod.model.allPoints()[c].qos_loss);
    }
    std::printf("%-10s | %10.3f | %10.3f | %10.3f | %10.3f\n",
                app.name().c_str(), core::correlation(ts, ps),
                paper_speedup_r, core::correlation(tq, pq),
                paper_qos_r);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = parseBenchOptions(argc, argv);
    banner("Table 2: Training vs Production Correlation");
    std::printf("%-10s | %10s | %10s | %10s | %10s\n", "benchmark",
                "speedup r", "(paper)", "qos r", "(paper)");
    std::printf("%s\n", std::string(66, '-').c_str());

    {
        auto app = makeVidenc();
        tableRow(*app, options, 0.995, 0.975);
    }
    {
        auto app = makeBodytrack();
        tableRow(*app, options, 0.999, 0.839);
    }
    {
        auto app = makeSwaptions();
        tableRow(*app, options, 1.000, 0.999);
    }
    {
        auto app = makeSearchx();
        tableRow(*app, options, 0.996, 0.999);
    }
    std::printf("\nexpected shape: all correlations close to 1 — "
                "training predicts production.\n");
    return 0;
}
