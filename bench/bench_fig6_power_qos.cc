/**
 * @file
 * Reproduces Figure 6 (a-d): power versus QoS trade-offs across the
 * seven processor power states.
 *
 * Protocol (paper section 5.3): configure the application at its
 * highest-QoS point at 2.4 GHz, observe its performance, then ask
 * PowerDial to maintain that performance while the clock is dropped to
 * each lower state; measure resulting QoS loss and mean power.
 *
 * Paper shape: power falls monotonically with frequency (x264 -21%,
 * bodytrack -17%, swaptions -18%, swish++ -16% at 1.6 GHz) while QoS
 * loss grows but stays small for the PARSEC apps.
 */
#include "bench_common.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

void
figurePanel(core::App &sweep, core::App &app,
            const BenchOptions &bopts)
{
    banner("Figure 6: " + app.name());
    auto cal = calibrateTransfer(sweep, app, -1.0, bopts.threads);
    const auto input = app.productionInputs().front();

    // Baseline output (default knobs, P-state 0) for QoS comparison,
    // and the observed baseline performance that becomes the target
    // (paper: "observe the performance ... then instruct the PowerDial
    // control system to maintain the observed performance").
    const auto baseline = core::runFixed(app, input,
                                         app.defaultCombination());
    app.loadInput(input);
    core::Session session(
        app, cal.ident.table, cal.training.model,
        core::SessionOptions().withTargetRate(
            static_cast<double>(app.unitCount()) / baseline.seconds));
    core::BeatTraceRecorder trace;
    session.observe(trace); // Reset at each run start; reusable.

    std::printf("%10s %12s %12s %12s %12s\n", "freq_GHz", "power_W",
                "qos_loss%", "perf/target", "knob_gain");
    sim::Machine probe;
    double power_at_max = 0.0;
    for (std::size_t pstate = 0; pstate < probe.scale().states();
         ++pstate) {
        sim::Machine machine;
        machine.setPState(pstate);
        machine.setUtilization(1.0); // App keeps the machine busy.
        const auto run = session.run(input, machine);
        const auto &beats = trace.beats();

        const double qos =
            qos::distortion(baseline.output, run.output);
        const double watts = machine.meanWatts();
        if (pstate == 0)
            power_at_max = watts;

        // Tail-mean performance (after convergence), like the paper's
        // "within 5% of the target" verification.
        const std::size_t tail = beats.size() / 2;
        double perf = 0.0, gain = 0.0;
        for (std::size_t i = tail; i < beats.size(); ++i) {
            perf += beats[i].normalized_perf;
            gain += beats[i].knob_gain;
        }
        perf /= static_cast<double>(beats.size() - tail);
        gain /= static_cast<double>(beats.size() - tail);

        std::printf("%10.2f %12.1f %12.3f %12.3f %12.2f\n",
                    machine.scale().frequencyHz(pstate) / 1e9, watts,
                    100.0 * qos, perf, gain);
        if (pstate + 1 == probe.scale().states()) {
            std::printf("-- power reduction at 1.6 GHz: %.1f%%\n",
                        100.0 * (power_at_max - watts) / power_at_max);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const auto bopts = parseBenchOptions(argc, argv);
    {
        auto sweep = makeSwaptions();
        auto app = makeSwaptions(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeVidenc();
        auto app = makeVidenc(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeBodytrack();
        auto app = makeBodytrack(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeSearchx();
        auto app = makeSearchx(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    std::printf("\npaper: x264 -21%% power at <0.5%% QoS; bodytrack "
                "-17%% at <2.3%%; swaptions -18%% at <0.05%%; swish++ "
                "-16%% at <32%%.\n");
    return 0;
}
