/**
 * @file
 * Reproduces Figure 6 (a-d): power versus QoS trade-offs across the
 * seven processor power states.
 *
 * Protocol (paper section 5.3): configure the application at its
 * highest-QoS point at 2.4 GHz, observe its performance, then ask
 * PowerDial to maintain that performance while the clock is dropped to
 * each lower state; measure resulting QoS loss and mean power.
 *
 * Paper shape: power falls monotonically with frequency (x264 -21%,
 * bodytrack -17%, swaptions -18%, swish++ -16% at 1.6 GHz) while QoS
 * loss grows but stays small for the PARSEC apps.
 */
#include <vector>

#include "bench_common.h"
#include "core/fanout.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

/** One P-state's measured row of the figure. */
struct StateRow
{
    double watts = 0.0;
    double qos = 0.0;
    double perf = 0.0;
    double gain = 0.0;
};

void
figurePanel(core::App &sweep, core::App &app,
            const BenchOptions &bopts)
{
    banner("Figure 6: " + app.name());
    auto cal = calibrateTransfer(sweep, app, -1.0, bopts.threads);
    const auto input = app.productionInputs().front();

    // Baseline output (default knobs, P-state 0) for QoS comparison,
    // and the observed baseline performance that becomes the target
    // (paper: "observe the performance ... then instruct the PowerDial
    // control system to maintain the observed performance").
    const auto baseline = core::runFixed(app, input,
                                         app.defaultCombination());
    app.loadInput(input);
    const double target =
        static_cast<double>(app.unitCount()) / baseline.seconds;

    // The per-P-state runs are independent sessions since the Session
    // redesign: the fan-out engine runs each on a private clone with
    // a rebound knob table and merges rows in P-state order, so the
    // table is byte-identical at any thread count.
    const std::size_t states = sim::Machine().scale().states();
    core::FanoutEngine engine(bopts.threads, states);
    auto bound =
        core::FanoutEngine::cloneBound(app, cal.ident.table, states);
    const std::vector<StateRow> rows = engine.map(
        states, [&](std::size_t pstate, std::size_t /*worker*/) {
            core::Session session(
                *bound.apps[pstate], bound.tables[pstate],
                cal.training.model,
                core::SessionOptions().withTargetRate(target));
            auto &trace = session.attach<core::BeatTraceRecorder>();
            sim::Machine machine;
            machine.setPState(pstate);
            machine.setUtilization(1.0); // App keeps the machine busy.
            const auto run = session.run(input, machine);
            const auto &beats = trace.beats();

            StateRow row;
            row.qos = qos::distortion(baseline.output, run.output);
            row.watts = machine.meanWatts();

            // Tail-mean performance (after convergence), like the
            // paper's "within 5% of the target" verification.
            const std::size_t tail = beats.size() / 2;
            for (std::size_t i = tail; i < beats.size(); ++i) {
                row.perf += beats[i].normalized_perf;
                row.gain += beats[i].knob_gain;
            }
            row.perf /= static_cast<double>(beats.size() - tail);
            row.gain /= static_cast<double>(beats.size() - tail);
            return row;
        });

    std::printf("%10s %12s %12s %12s %12s\n", "freq_GHz", "power_W",
                "qos_loss%", "perf/target", "knob_gain");
    sim::Machine probe;
    for (std::size_t pstate = 0; pstate < states; ++pstate) {
        const StateRow &row = rows[pstate];
        std::printf("%10.2f %12.1f %12.3f %12.3f %12.2f\n",
                    probe.scale().frequencyHz(pstate) / 1e9, row.watts,
                    100.0 * row.qos, row.perf, row.gain);
    }
    std::printf("-- power reduction at 1.6 GHz: %.1f%%\n",
                100.0 * (rows.front().watts - rows.back().watts) /
                    rows.front().watts);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto bopts = parseBenchOptions(argc, argv);
    {
        auto sweep = makeSwaptions();
        auto app = makeSwaptions(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeVidenc();
        auto app = makeVidenc(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeBodytrack();
        auto app = makeBodytrack(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeSearchx();
        auto app = makeSearchx(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    std::printf("\npaper: x264 -21%% power at <0.5%% QoS; bodytrack "
                "-17%% at <2.3%%; swaptions -18%% at <0.05%%; swish++ "
                "-16%% at <32%%.\n");
    return 0;
}
