/**
 * @file
 * Reproduces Figure 8 (a-d): using dynamic knobs for system
 * consolidation.
 *
 * Protocol (paper section 5.5): a baseline system provisioned for peak
 * load (PARSEC apps: 32 concurrent instances on four 8-core machines;
 * swish++: three instances on three machines) versus a consolidated
 * system (one machine for the PARSEC apps, two for swish++, chosen by
 * Equation 21 under a QoS-loss bound of 5% / 30%). Sweep utilisation
 * from 0 to the peak and report mean power of both systems plus the
 * consolidated system's QoS loss.
 *
 * Paper shape: at 25% utilisation the consolidated PARSEC systems save
 * ~400 W (66%); at 100% they deliver equal performance at ~75% less
 * power; swish++ saves ~25%.
 */
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/analytical.h"
#include "core/consolidation.h"
#include "sim/cluster.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

struct Provisioning
{
    std::size_t n_orig;        //!< Machines in the original system.
    std::size_t slots;         //!< Instance slots per machine.
    double qos_bound;          //!< QoS-loss cap for consolidation.
};

void
figurePanel(core::App &sweep, core::App &app, const Provisioning &prov,
            const BenchOptions &bopts)
{
    banner("Figure 8: " + app.name());
    auto cal =
        calibrateTransfer(sweep, app, prov.qos_bound, bopts.threads);
    const auto &model = cal.training.model;

    // Consolidation sizing via Equation 21 with S(QoS) = the fastest
    // admissible Pareto speedup under the QoS bound.
    const double s_qos = model.bestWithinQoS(prov.qos_bound).speedup;
    core::analytical::ConsolidationModel cm;
    cm.n_orig = prov.n_orig;
    cm.work_per_machine = static_cast<double>(prov.slots);
    cm.speedup = s_qos;
    cm.u_orig = 0.25;
    cm.p_load = 220.0;
    cm.p_idle = 90.0;
    const auto sized = core::analytical::consolidate(cm);
    std::printf("S(QoS<=%.0f%%) = %.2fx -> consolidate %zu machines "
                "down to %zu\n", 100.0 * prov.qos_bound, s_qos,
                prov.n_orig, sized.n_new);

    sim::Machine::Config mconfig;
    mconfig.cores = prov.slots;
    sim::Cluster original(prov.n_orig, mconfig);
    sim::Cluster consolidated(sized.n_new, mconfig);
    const std::size_t peak = original.peakInstances();

    std::printf("%12s %12s %14s %14s %12s\n", "utilization",
                "instances", "orig_power_W", "cons_power_W",
                "qos_loss%");
    for (int step = 0; step <= 8; ++step) {
        const double u = static_cast<double>(step) / 8.0;
        const auto instances = static_cast<std::size_t>(
            std::round(u * static_cast<double>(peak)));

        const double orig_watts = original.steadyStateWatts(instances);

        // Consolidated: same instances on fewer machines; PowerDial
        // raises each overloaded machine's knob speedup to hold the
        // baseline per-instance performance.
        const auto placement = consolidated.balance(instances);
        const double cons_watts =
            consolidated.steadyStateWatts(placement);
        const double required =
            consolidated.maxRequiredSpeedup(placement);
        const auto &point = model.atLeast(required);
        const double qos = instances == 0 ? 0.0 : point.qos_loss;

        std::printf("%12.3f %12zu %14.1f %14.1f %12.3f\n", u,
                    instances, orig_watts, cons_watts, 100.0 * qos);
    }

    // Measured controlled replays: at each utilisation level, one
    // instance on the consolidated system's most-loaded machine must
    // still hold the baseline rate by trading QoS. Each replay is an
    // independent session on a private app clone, so the batch fans
    // out over the thread pool (--threads=N) with bit-identical
    // output at any thread count.
    const auto input = app.productionInputs().front();
    const auto baseline =
        core::runFixed(app, input, app.defaultCombination());
    std::vector<core::ReplayCase> cases;
    std::vector<double> levels;
    for (const double u : {0.25, 0.5, 0.75, 1.0}) {
        const auto instances = static_cast<std::size_t>(
            std::round(u * static_cast<double>(peak)));
        if (instances == 0)
            continue;
        core::ReplayCase rc;
        rc.share = consolidated.minInstanceShare(
            consolidated.balance(instances));
        rc.utilization = 1.0;
        cases.push_back(rc);
        levels.push_back(u);
    }
    core::ConsolidationReplayOptions ropt;
    ropt.input = input;
    ropt.threads = bopts.threads; // 0 = all hardware contexts.
    ropt.machine = mconfig;
    const auto outcomes = core::replayConsolidation(
        app, cal.ident.table, model, baseline.output, cases, ropt);
    std::printf("-- measured replays (parallel sessions):\n");
    std::printf("%12s %12s %14s %14s\n", "utilization", "share",
                "perf/target", "qos_loss%");
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        std::printf("%12.2f %12.2f %14.3f %14.2f\n", levels[i],
                    cases[i].share, outcomes[i].tail_mean_perf,
                    100.0 * outcomes[i].qos_loss_measured);
    }

    const double save25 =
        original.steadyStateWatts(peak / 4) -
        consolidated.steadyStateWatts(consolidated.balance(peak / 4));
    std::printf("-- power saved at 25%% utilization: %.0f W (%.0f%%)\n",
                save25,
                100.0 * save25 / original.steadyStateWatts(peak / 4));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto bopts = parseBenchOptions(argc, argv);
    {
        auto sweep = makeSwaptions();
        auto app = makeSwaptions(RunLength::Series);
        figurePanel(*sweep, *app, {4, 8, 0.05}, bopts);
    }
    {
        auto sweep = makeVidenc();
        auto app = makeVidenc(RunLength::Series);
        figurePanel(*sweep, *app, {4, 8, 0.05}, bopts);
    }
    {
        auto sweep = makeBodytrack();
        auto app = makeBodytrack(RunLength::Series);
        figurePanel(*sweep, *app, {4, 8, 0.05}, bopts);
    }
    {
        auto sweep = makeSearchx();
        auto app = makeSearchx(RunLength::Series);
        // swish++: three single-instance machines, 30%% QoS bound.
        figurePanel(*sweep, *app, {3, 1, 0.30}, bopts);
    }
    std::printf("\npaper: PARSEC apps consolidate 4 -> 1 machines "
                "(~400 W / 66%% saved at 25%% load, ~75%% at peak); "
                "swish++ 3 -> 2 (~125 W / 25%%).\n");
    return 0;
}
