/**
 * @file
 * Microbenches for the section 5.1 overhead claim: "The overhead of
 * the PowerDial control system is insignificant."
 *
 * Measures the real (host) cost of the control-plane primitives — a
 * heartbeat emission, a controller step, an actuation re-plan, a knob
 * application — against the per-unit work of the cheapest benchmark
 * kernel, which dwarfs them; plus the per-beat cost of the Session's
 * RunObserver seam, which must be negligible when no observer is
 * attached.
 *
 * Links Google Benchmark when libbenchmark-dev is available; falls
 * back to the vendored harness in vendor/microbench.h otherwise, so
 * the binary always builds.
 */
#if defined(POWERDIAL_HAVE_GOOGLE_BENCHMARK)
#include <benchmark/benchmark.h>
#else
#include "vendor/microbench.h"
#endif

#include <algorithm>
#include <chrono>

#include "apps/swaptions/pricer.h"
#include "core/actuation_strategy.h"
#include "core/control_policy.h"
#include "core/controller.h"
#include "core/knob.h"
#include "core/session.h"
#include "heartbeats/heartbeat.h"
#include "obs/trace_sink.h"

using namespace powerdial;

namespace {

static void
BM_HeartbeatEmission(benchmark::State &state)
{
    hb::Monitor monitor(20, {1.0, 1.0});
    double t = 0.0;
    for (auto _ : state) {
        t += 1e-3;
        benchmark::DoNotOptimize(monitor.beat(t));
    }
}
BENCHMARK(BM_HeartbeatEmission);

static void
BM_ControllerStep(benchmark::State &state)
{
    core::ControllerConfig cc;
    cc.baseline_rate = 1000.0;
    cc.target_rate = 1000.0;
    cc.max_speedup = 50.0;
    core::HeartRateController controller(cc);
    double rate = 900.0;
    for (auto _ : state) {
        rate = rate < 1000.0 ? 1100.0 : 900.0;
        benchmark::DoNotOptimize(controller.update(rate));
    }
}
BENCHMARK(BM_ControllerStep);

core::ResponseModel
benchModel()
{
    std::vector<core::OperatingPoint> points;
    for (std::size_t c = 0; c < 40; ++c) {
        points.push_back({c, 1.0 + 0.25 * static_cast<double>(c),
                          0.002 * static_cast<double>(c)});
    }
    return core::ResponseModel(points, 0, 10.0, 100.0);
}

static void
BM_StrategyPlan(benchmark::State &state)
{
    const auto model = benchModel();
    core::MinimalSpeedupStrategy strategy;
    strategy.begin(model, 20);
    double cmd = 1.0;
    for (auto _ : state) {
        cmd = cmd > 9.0 ? 1.0 : cmd + 0.37;
        benchmark::DoNotOptimize(strategy.plan(cmd));
    }
}
BENCHMARK(BM_StrategyPlan);

static void
BM_KnobTableApply(benchmark::State &state)
{
    core::KnobTable table;
    double sink = 0.0;
    table.bind({"a", [&](const std::vector<double> &v) { sink = v[0]; }});
    table.bind({"b", [&](const std::vector<double> &v) { sink += v[0]; }});
    for (std::size_t c = 0; c < 8; ++c) {
        table.record(c, 0, {static_cast<double>(c)});
        table.record(c, 1, {static_cast<double>(c) * 2.0});
    }
    std::size_t combo = 0;
    for (auto _ : state) {
        table.apply(combo);
        combo = (combo + 1) % 8;
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_KnobTableApply);

/** The work one heartbeat governs, at the *cheapest* knob setting. */
static void
BM_AppUnitWork_SwaptionsMinKnob(benchmark::State &state)
{
    apps::swaptions::Swaption s;
    s.forward_rate = 0.05;
    s.strike = 0.045;
    s.volatility = 0.2;
    s.maturity = 2.0;
    s.tenor = 5.0;
    s.discount_rate = 0.03;
    s.notional = 100.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(apps::swaptions::price(s, 250, 1));
}
BENCHMARK(BM_AppUnitWork_SwaptionsMinKnob);

// ---------------------------------------------------------------------------
// Observer-seam overhead: a full Session run per iteration, on an app
// whose per-unit work is nearly free, so the measured time is the
// runtime loop itself. Comparing the three variants isolates the cost
// of observer dispatch per beat — it must be negligible (and exactly
// zero trace-building work) when no observer is attached.
// ---------------------------------------------------------------------------

constexpr std::size_t kSessionUnits = 256;

/** A nearly-free app: the session loop dominates the measurement. */
class NullWorkApp final : public core::App
{
  public:
    NullWorkApp() : space_({{"k", {1.0, 2.0}}}) {}

    std::string name() const override { return "nullwork"; }
    std::unique_ptr<core::App>
    clone() const override
    {
        return std::make_unique<NullWorkApp>(*this);
    }
    const core::KnobSpace &knobSpace() const override { return space_; }
    std::size_t defaultCombination() const override { return 0; }
    void
    configure(const std::vector<double> &params) override
    {
        k_ = params.at(0);
    }
    void
    traceRun(influence::TraceRun &trace,
             const std::vector<double> &params) override
    {
        influence::Value<double> k(params.at(0),
                                   influence::paramBit(0));
        trace.store("k", k, "nullwork:init");
        trace.firstHeartbeat();
        trace.read("k", "nullwork:loop");
    }
    void
    bindControlVariables(core::KnobTable &table) override
    {
        table.bind({"k", [this](const std::vector<double> &v) {
                        k_ = v.at(0);
                    }});
    }
    std::size_t inputCount() const override { return 2; }
    std::vector<std::size_t>
    trainingInputs() const override
    {
        return {0};
    }
    std::vector<std::size_t>
    productionInputs() const override
    {
        return {1};
    }
    void loadInput(std::size_t) override {}
    std::size_t unitCount() const override { return kSessionUnits; }
    void
    processUnit(std::size_t, sim::Machine &machine) override
    {
        machine.execute(100.0 / k_);
    }
    qos::OutputAbstraction
    output() const override
    {
        return {{1.0}, {}};
    }

  private:
    core::KnobSpace space_;
    double k_ = 1.0;
};

struct SessionFixture
{
    NullWorkApp app;
    core::KnobTable table;
    core::ResponseModel model;

    SessionFixture()
    {
        app.bindControlVariables(table);
        table.record(0, 0, {1.0});
        table.record(1, 0, {2.0});
        model = core::ResponseModel({{0, 1.0, 0.0}, {1, 2.0, 0.01}},
                                    0, 1.0, 1000.0);
    }
};

/** No observer attached: the baseline cost of one 256-beat run. */
static void
BM_Session256Beats_NoObserver(benchmark::State &state)
{
    SessionFixture f;
    core::Session session(f.app, f.table, f.model);
    for (auto _ : state) {
        sim::Machine machine;
        benchmark::DoNotOptimize(session.run(1, machine));
    }
}
BENCHMARK(BM_Session256Beats_NoObserver);

/** A no-op observer: pure dispatch cost of the seam. */
static void
BM_Session256Beats_NoopObserver(benchmark::State &state)
{
    SessionFixture f;
    core::Session session(f.app, f.table, f.model);
    class Noop final : public core::RunObserver
    {
    };
    Noop noop;
    session.observe(noop);
    for (auto _ : state) {
        sim::Machine machine;
        benchmark::DoNotOptimize(session.run(1, machine));
    }
}
BENCHMARK(BM_Session256Beats_NoopObserver);

/** The full trace recorder (the pre-redesign always-on behaviour). */
static void
BM_Session256Beats_TraceRecorder(benchmark::State &state)
{
    SessionFixture f;
    core::Session session(f.app, f.table, f.model);
    core::BeatTraceRecorder recorder;
    session.observe(recorder);
    for (auto _ : state) {
        sim::Machine machine;
        benchmark::DoNotOptimize(session.run(1, machine));
    }
}
BENCHMARK(BM_Session256Beats_TraceRecorder);

// ---------------------------------------------------------------------------
// Structured trace sink (obs/trace_sink.h): the per-beat cost of the
// fleet tracing layer in its three modes. With every category masked
// off, each would-be event must cost one branch in TraceSink::wants —
// the ceiling check below (vendored harness only) fails the binary if
// the masked-off probe regresses past a pinned per-beat budget.
// ---------------------------------------------------------------------------

/** Categories all masked off: the tracing-disabled fast path. */
static void
BM_Session256Beats_TraceProbeOff(benchmark::State &state)
{
    SessionFixture f;
    core::Session session(f.app, f.table, f.model);
    obs::TraceConfig config;
    config.categories = 0;
    obs::TraceSink sink(config);
    obs::TraceProbe probe(sink, obs::TraceProbe::Identity{0});
    session.observe(probe);
    for (auto _ : state) {
        sim::Machine machine;
        benchmark::DoNotOptimize(session.run(1, machine));
    }
}
BENCHMARK(BM_Session256Beats_TraceProbeOff);

/** Every category on (including the per-beat firehose), unbounded
 *  shards; beginServe resets the shard per run to bound memory. */
static void
BM_Session256Beats_TraceProbeAll(benchmark::State &state)
{
    SessionFixture f;
    core::Session session(f.app, f.table, f.model);
    obs::TraceSink sink;
    for (auto _ : state) {
        sink.beginServe(1);
        obs::TraceProbe probe(sink, obs::TraceProbe::Identity{0});
        session.observe(probe);
        sim::Machine machine;
        benchmark::DoNotOptimize(session.run(1, machine));
    }
}
BENCHMARK(BM_Session256Beats_TraceProbeAll);

/** Flight-recorder mode: everything on, last 64 records kept. */
static void
BM_Session256Beats_TraceProbeRing(benchmark::State &state)
{
    SessionFixture f;
    core::Session session(f.app, f.table, f.model);
    obs::TraceConfig config;
    config.ring_capacity = 64;
    obs::TraceSink sink(config);
    obs::TraceProbe probe(sink, obs::TraceProbe::Identity{0});
    session.observe(probe);
    for (auto _ : state) {
        sim::Machine machine;
        benchmark::DoNotOptimize(session.run(1, machine));
    }
}
BENCHMARK(BM_Session256Beats_TraceProbeRing);

} // namespace

#if defined(POWERDIAL_HAVE_GOOGLE_BENCHMARK)

BENCHMARK_MAIN();

#else

namespace {

/** Wall-clock seconds for @p batch back-to-back 256-beat runs. */
double
timeSessionBatch(core::Session &session, std::size_t batch)
{
    const auto start = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < batch; ++i) {
        sim::Machine machine;
        benchmark::DoNotOptimize(session.run(1, machine));
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/**
 * The pinned overhead ceiling: a session run with a trace probe whose
 * categories are all masked off may cost at most 25% + 150 ns/beat
 * over the no-observer baseline (best of 5 batches each, interleaved
 * to share thermal conditions). Generous against timer noise on
 * shared CI runners, yet tight enough that any per-beat allocation or
 * record construction sneaking into the disabled path trips it.
 */
int
checkTracingOverheadCeiling()
{
    constexpr std::size_t kBatch = 2000;
    constexpr int kRounds = 5;
    constexpr double kRelativeSlack = 0.25;
    constexpr double kAbsoluteSlackNsPerBeat = 150.0;

    SessionFixture f;
    core::Session plain(f.app, f.table, f.model);
    core::Session probed(f.app, f.table, f.model);
    obs::TraceConfig config;
    config.categories = 0;
    obs::TraceSink sink(config);
    obs::TraceProbe probe(sink, obs::TraceProbe::Identity{0});
    probed.observe(probe);

    // Warm up both paths, then interleave the timed rounds.
    timeSessionBatch(plain, kBatch / 4);
    timeSessionBatch(probed, kBatch / 4);
    double best_plain = 1e300;
    double best_probed = 1e300;
    for (int round = 0; round < kRounds; ++round) {
        best_plain = std::min(best_plain,
                              timeSessionBatch(plain, kBatch));
        best_probed = std::min(best_probed,
                               timeSessionBatch(probed, kBatch));
    }

    const double beats =
        static_cast<double>(kBatch) *
        static_cast<double>(kSessionUnits);
    const double delta_ns_per_beat =
        1e9 * (best_probed - best_plain) / beats;
    const double ceiling = best_plain * (1.0 + kRelativeSlack) +
        kAbsoluteSlackNsPerBeat * 1e-9 * beats;
    const bool ok = best_probed <= ceiling;
    std::printf("\ntracing-disabled overhead: %.1f ns/beat over the "
                "no-observer baseline (ceiling: 25%% + %.0f ns/beat) "
                "-- %s\n",
                delta_ns_per_beat, kAbsoluteSlackNsPerBeat,
                ok ? "ok" : "REGRESSED");
    return ok ? 0 : 1;
}

} // namespace

int
main()
{
    powerdial::microbench::RunAll();
    return checkTracingOverheadCeiling();
}

#endif // POWERDIAL_HAVE_GOOGLE_BENCHMARK
