/**
 * @file
 * Google-benchmark microbenches for the section 5.1 overhead claim:
 * "The overhead of the PowerDial control system is insignificant."
 *
 * Measures the real (host) cost of the control-plane primitives — a
 * heartbeat emission, a controller step, an actuation re-plan, a knob
 * application — against the per-unit work of the cheapest benchmark
 * kernel, which dwarfs them.
 */
#include <benchmark/benchmark.h>

#include "apps/swaptions/pricer.h"
#include "core/actuator.h"
#include "core/controller.h"
#include "core/knob.h"
#include "heartbeats/heartbeat.h"

using namespace powerdial;

namespace {

static void
BM_HeartbeatEmission(benchmark::State &state)
{
    hb::Monitor monitor(20, {1.0, 1.0});
    double t = 0.0;
    for (auto _ : state) {
        t += 1e-3;
        benchmark::DoNotOptimize(monitor.beat(t));
    }
}
BENCHMARK(BM_HeartbeatEmission);

static void
BM_ControllerStep(benchmark::State &state)
{
    core::ControllerConfig cc;
    cc.baseline_rate = 1000.0;
    cc.target_rate = 1000.0;
    cc.max_speedup = 50.0;
    core::HeartRateController controller(cc);
    double rate = 900.0;
    for (auto _ : state) {
        rate = rate < 1000.0 ? 1100.0 : 900.0;
        benchmark::DoNotOptimize(controller.update(rate));
    }
}
BENCHMARK(BM_ControllerStep);

core::ResponseModel
benchModel()
{
    std::vector<core::OperatingPoint> points;
    for (std::size_t c = 0; c < 40; ++c) {
        points.push_back({c, 1.0 + 0.25 * static_cast<double>(c),
                          0.002 * static_cast<double>(c)});
    }
    return core::ResponseModel(points, 0, 10.0, 100.0);
}

static void
BM_ActuatorPlan(benchmark::State &state)
{
    const auto model = benchModel();
    core::Actuator actuator(model,
                            core::ActuationPolicy::MinimalSpeedup);
    double cmd = 1.0;
    for (auto _ : state) {
        cmd = cmd > 9.0 ? 1.0 : cmd + 0.37;
        benchmark::DoNotOptimize(actuator.plan(cmd));
    }
}
BENCHMARK(BM_ActuatorPlan);

static void
BM_KnobTableApply(benchmark::State &state)
{
    core::KnobTable table;
    double sink = 0.0;
    table.bind({"a", [&](const std::vector<double> &v) { sink = v[0]; }});
    table.bind({"b", [&](const std::vector<double> &v) { sink += v[0]; }});
    for (std::size_t c = 0; c < 8; ++c) {
        table.record(c, 0, {static_cast<double>(c)});
        table.record(c, 1, {static_cast<double>(c) * 2.0});
    }
    std::size_t combo = 0;
    for (auto _ : state) {
        table.apply(combo);
        combo = (combo + 1) % 8;
        benchmark::DoNotOptimize(sink);
    }
}
BENCHMARK(BM_KnobTableApply);

/** The work one heartbeat governs, at the *cheapest* knob setting. */
static void
BM_AppUnitWork_SwaptionsMinKnob(benchmark::State &state)
{
    apps::swaptions::Swaption s;
    s.forward_rate = 0.05;
    s.strike = 0.045;
    s.volatility = 0.2;
    s.maturity = 2.0;
    s.tenor = 5.0;
    s.discount_rate = 0.03;
    s.notional = 100.0;
    for (auto _ : state)
        benchmark::DoNotOptimize(apps::swaptions::price(s, 250, 1));
}
BENCHMARK(BM_AppUnitWork_SwaptionsMinKnob);

} // namespace

BENCHMARK_MAIN();
