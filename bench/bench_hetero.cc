/**
 * @file
 * Heterogeneous-fleet bench: class-aware placement vs class-blind
 * least-loaded over mixed big/little fleets.
 *
 * The placement matrix behind the PR-8 heterogeneity subsystem: two
 * tenant applications — the microsim tenant with a deliberately weak
 * knob and a small SpMV kernel (precision/compression knobs) — serve a
 * Poisson arrival trace on three fleets provisioned from the built-in
 * big.LITTLE catalog (all-big, 2 big + 2 little, 1 big + 3 little),
 * once under class-blind least-loaded placement and once under the
 * affinity-aware policy, on both serve engines. Both apps are sized so
 * the calibrated maximum speedup is *below* the little class's
 * effective-speed deficit (reference 2.4 GHz vs 1.6 GHz x 0.6 = 2.5x):
 * jobs placed on a little machine cannot buy the deficit back with
 * knobs alone, so placement is a real decision with observable
 * latency/QoS consequences — exactly the regime the affinity policy's
 * cost function prices.
 *
 * The verdict: on every mixed (app, mix, engine) cell the affinity
 * policy must deliver a lower p95 latency AND a lower mean QoS loss
 * than least-loaded; on the all-big fleet both policies must produce
 * identical numbers (the bit-identity guarantee made visible). The
 * process exits nonzero otherwise.
 *
 * Output is byte-identical for --threads=1 and --threads=N and across
 * the two engines (the event engine runs in epoch-compat mode; the CI
 * hetero-smoke job asserts this and diffs the summary against
 * bench/golden/hetero_placement.txt). Wall-clock goes to stderr.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/spmv/spmv_app.h"
#include "bench_common.h"
#include "fleet/server.h"
#include "microsim_app.h"
#include "workload/arrivals.h"
#include "workload/load_trace.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

struct HeteroBenchOptions
{
    std::size_t steps = 48;  //!< Arrival-trace length, epochs.
    std::size_t threads = 0; //!< Tenant-session workers (0 = all).
    std::string engine = "both"; //!< "epoch", "event", or "both".
    ObsOptions obs; //!< --trace / --trace-jsonl / --metrics outputs.
};

HeteroBenchOptions
parseHeteroOptions(int argc, char **argv)
{
    HeteroBenchOptions options;
    const auto usage = [argv]() {
        std::fprintf(
            stderr,
            "usage: %s [--steps=N] [--threads=N | -t N] "
            "[--engine=epoch|event|both]\n"
            "  steps    arrival-trace epochs (default 48)\n"
            "  threads  tenant-session workers "
            "(0 = all hardware contexts, 1 = serial)\n"
            "  engine   which serve engine(s) to run (default both)\n"
            "%s",
            argv[0], obsUsage());
        std::exit(2);
    };
    const auto parseCount = [&usage](const char *text) {
        if (*text == '\0')
            usage();
        for (const char *p = text; *p != '\0'; ++p)
            if (*p < '0' || *p > '9')
                usage();
        return static_cast<std::size_t>(
            std::strtoul(text, nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--steps=", 8) == 0) {
            options.steps = parseCount(arg + 8);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = parseCount(arg + 10);
        } else if (std::strcmp(arg, "-t") == 0 && i + 1 < argc) {
            options.threads = parseCount(argv[++i]);
        } else if (std::strncmp(arg, "--engine=", 9) == 0) {
            options.engine = arg + 9;
            if (options.engine != "epoch" && options.engine != "event" &&
                options.engine != "both")
                usage();
        } else if (parseObsArg(options.obs, arg)) {
            // Consumed by the shared observability parser.
        } else {
            usage();
        }
    }
    if (options.steps == 0)
        usage();
    return options;
}

/** The SpMV tenant, sized so calibration stays in milliseconds and
 *  max speedup (~2.3x) is below the little-class deficit (2.5x). */
apps::spmv::SpmvConfig
spmvTenantConfig()
{
    apps::spmv::SpmvConfig config;
    config.rows = 48;
    config.band = 8;
    config.inputs = 4;
    config.bits_values = {56, 64};
    config.keep_values = {0.5, 0.75, 1.0};
    return config;
}

struct MixCase
{
    const char *label;
    std::vector<std::size_t> class_mix; //!< {big, little} counts.
    bool mixed;
};

struct HeteroCase
{
    std::string app;
    std::string mix;
    std::string engine;
    std::string placement;
    bool mixed = false;
    fleet::FleetReport report;
};

void
printMachineTable(const fleet::FleetReport &report)
{
    std::printf("%7s %6s %6s %6s %10s %10s %10s\n", "machine", "class",
                "jobs", "shed", "p50_lat", "p95_lat", "p99_lat");
    for (const auto &row : report.machines)
        std::printf("%7zu %6zu %6zu %6zu %10.4f %10.4f %10.4f\n",
                    row.machine, row.machine_class, row.jobs, row.shed,
                    row.p50_latency_s, row.p95_latency_s,
                    row.p99_latency_s);
    std::printf("total jobs %zu, shed %zu, p95 %.4f s, "
                "mean qos loss %.4f%%, mean watts %.1f\n",
                report.total_jobs, report.total_shed,
                report.p95_latency_s, 100.0 * report.mean_qos_loss,
                report.mean_watts);
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = parseHeteroOptions(argc, argv);
    banner("hetero placement: affinity-aware vs least-loaded on "
           "mixed fleets");

    // Arrivals: Poisson over a mildly spiky trace, shared by every
    // cell so the placement policies face identical offered load.
    workload::LoadTraceParams trace;
    trace.steps = options.steps;
    trace.base_utilization = 0.75;
    trace.jitter = 0.05;
    trace.spike_probability = 0.08;
    trace.seed = 0x4e7e0001;
    workload::PoissonArrivalParams arrival_params;
    arrival_params.peak_rate = 10.0;
    arrival_params.seed = 0x4e7e0002;
    const std::vector<std::size_t> arrivals =
        workload::makePoissonArrivals(workload::makeLoadTrace(trace),
                                      arrival_params);

    const std::vector<MixCase> mixes = {
        {"4big", {4, 0}, false},
        {"2big2little", {2, 2}, true},
        {"1big3little", {1, 3}, true},
    };
    struct EngineCase
    {
        const char *label;
        fleet::EngineMode mode;
    };
    std::vector<EngineCase> engines;
    if (options.engine != "event")
        engines.push_back({"epoch", fleet::EngineMode::Epoch});
    if (options.engine != "epoch")
        engines.push_back({"event", fleet::EngineMode::Event});
    struct PlacementCase
    {
        const char *label;
        fleet::PlacementFactory (*factory)();
    };
    const PlacementCase placements[] = {
        {"least-loaded", fleet::makeLeastLoadedPlacement},
        {"affinity-aware", fleet::makeAffinityAwarePlacement},
    };

    struct AppCase
    {
        const char *label;
        std::unique_ptr<core::App> app;
    };
    std::vector<AppCase> apps;
    {
        // Weak knob: max speedup 2x < the 2.5x little-class deficit.
        AppCase microsim{"microsim", std::make_unique<MicrosimApp>(
                                         std::vector<double>{1.0, 1.5,
                                                             2.0})};
        AppCase spmv{"spmv", std::make_unique<apps::spmv::SpmvApp>(
                                 spmvTenantConfig())};
        apps.push_back(std::move(microsim));
        apps.push_back(std::move(spmv));
    }

    // One sink across the matrix: beginServe resets it at each serve,
    // so the outputs describe the final cell (spmv / 1big3little /
    // last engine / affinity-aware).
    auto obs_sink = makeObsSink(options.obs);

    std::vector<HeteroCase> cases;
    for (const auto &app_case : apps) {
        auto cal = calibrateOnTraining(*app_case.app, -1.0,
                                       options.threads);
        const auto &model = cal.training.model;
        const double baseline_s = model.baselineSeconds();
        std::fprintf(stderr,
                     "[bench] %-8s calibrated: baseline %.4f s, max "
                     "speedup %.2fx\n",
                     app_case.label, baseline_s, model.maxSpeedup());

        for (const auto &mix : mixes) {
            for (const auto &engine : engines) {
                for (const auto &placement : placements) {
                    fleet::ServerOptions server_options;
                    server_options.catalog =
                        sim::MachineCatalog::bigLittle();
                    server_options.class_mix = mix.class_mix;
                    server_options.threads = options.threads;
                    server_options.epoch_seconds = baseline_s;
                    server_options.queue_depth = 6;
                    server_options.placement = placement.factory();
                    server_options.engine = engine.mode;
                    // Epoch-compat keeps the two engines' reports
                    // byte-identical, so the golden pins both at once.
                    server_options.event.epoch_compat = true;
                    server_options.trace =
                        obs_sink ? &*obs_sink : nullptr;

                    std::string label = std::string(app_case.label) +
                        " / " + mix.label + " / " + engine.label +
                        " / " + placement.label;
                    banner(label);
                    fleet::Server server(*app_case.app,
                                         cal.ident.table, model,
                                         server_options);
                    const auto start =
                        std::chrono::steady_clock::now();
                    auto report = server.serve(arrivals);
                    const double wall_s =
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
                    std::fprintf(stderr,
                                 "[bench] %-44s wall-clock %.3f s\n",
                                 label.c_str(), wall_s);
                    printMachineTable(report);
                    cases.push_back({app_case.label, mix.label,
                                     engine.label, placement.label,
                                     mix.mixed, std::move(report)});
                }
            }
        }
    }

    writeObsOutputs(options.obs, obs_sink ? &*obs_sink : nullptr,
                    cases.back().report);

    banner("hetero summary");
    std::printf("%-8s %-12s %-6s %-14s %6s %6s %10s %10s %9s %9s\n",
                "app", "mix", "engine", "placement", "jobs", "shed",
                "p95_lat", "p99_lat", "qos_loss%", "watts");
    for (const auto &hetero_case : cases)
        std::printf(
            "%-8s %-12s %-6s %-14s %6zu %6zu %10.4f %10.4f %9.4f "
            "%9.1f\n",
            hetero_case.app.c_str(), hetero_case.mix.c_str(),
            hetero_case.engine.c_str(), hetero_case.placement.c_str(),
            hetero_case.report.total_jobs,
            hetero_case.report.total_shed,
            hetero_case.report.p95_latency_s,
            hetero_case.report.p99_latency_s,
            100.0 * hetero_case.report.mean_qos_loss,
            hetero_case.report.mean_watts);

    // The acceptance verdict. Cases were pushed least-loaded first,
    // affinity-aware second for each (app, mix, engine) cell.
    bool ok = true;
    std::printf("\n");
    for (std::size_t i = 0; i + 1 < cases.size(); i += 2) {
        const auto &blind = cases[i];
        const auto &aware = cases[i + 1];
        if (blind.mixed) {
            const bool dominates =
                aware.report.p95_latency_s <
                    blind.report.p95_latency_s &&
                aware.report.mean_qos_loss <
                    blind.report.mean_qos_loss;
            ok = ok && dominates;
            std::printf(
                "affinity dominates least-loaded on %s/%s/%s "
                "(p95 %.4f < %.4f, qos %.4f%% < %.4f%%): %s\n",
                blind.app.c_str(), blind.mix.c_str(),
                blind.engine.c_str(), aware.report.p95_latency_s,
                blind.report.p95_latency_s,
                100.0 * aware.report.mean_qos_loss,
                100.0 * blind.report.mean_qos_loss,
                dominates ? "yes" : "NO");
        } else {
            // Homogeneous fleet: the affinity policy must be invisible.
            const bool identical =
                aware.report.p95_latency_s ==
                    blind.report.p95_latency_s &&
                aware.report.p99_latency_s ==
                    blind.report.p99_latency_s &&
                aware.report.mean_qos_loss ==
                    blind.report.mean_qos_loss &&
                aware.report.total_jobs == blind.report.total_jobs &&
                aware.report.total_shed == blind.report.total_shed;
            ok = ok && identical;
            std::printf("affinity identical to least-loaded on "
                        "homogeneous %s/%s/%s: %s\n",
                        blind.app.c_str(), blind.mix.c_str(),
                        blind.engine.c_str(),
                        identical ? "yes" : "NO");
        }
    }
    std::printf("affinity-aware placement verdict on every cell: %s\n",
                ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
