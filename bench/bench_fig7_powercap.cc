/**
 * @file
 * Reproduces Figure 7 (a-d): dynamic behaviour under a power cap.
 *
 * Protocol (paper section 5.4): start uncapped at 2.4 GHz with the
 * target set to the observed baseline performance; impose a power cap
 * (drop to 1.6 GHz) a quarter of the way through, lift it at three
 * quarters. Plot normalized performance (sliding mean over the last
 * twenty heartbeats) and knob gain over time for three runs: baseline
 * (no cap), dynamic knobs under the cap, and no-knobs under the cap.
 *
 * Paper shape: the knobs run dips at the cap, recovers to ~1.0 with
 * gain ~1.5 (the 2.4/1.6 capacity ratio), spikes up at the lift, and
 * returns to baseline; the no-knobs run sits at ~0.67 while capped.
 */
#include <vector>

#include "bench_common.h"
#include "core/fanout.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

void
figurePanel(core::App &sweep, core::App &app,
            const BenchOptions &bopts)
{
    banner("Figure 7: " + app.name());
    auto cal = calibrateTransfer(sweep, app, -1.0, bopts.threads);
    const auto input = app.productionInputs().front();

    // Observed baseline performance on this input (the paper's target).
    const auto baseline_fixed =
        core::runFixed(app, input, app.defaultCombination());
    app.loadInput(input);
    const double target = static_cast<double>(app.unitCount()) /
                          baseline_fixed.seconds;
    const double duration = baseline_fixed.seconds;

    // The three runs (uncapped baseline, dynamic knobs under the cap,
    // no knobs under the cap) are independent sessions: fan them out
    // over the pool on private clones, merged in fixed order so the
    // series is byte-identical at any thread count.
    struct RunSpec
    {
        bool knobs;
        bool capped;
    };
    const std::vector<RunSpec> specs{
        {true, false}, {true, true}, {false, true}};
    core::FanoutEngine engine(bopts.threads, specs.size());
    auto bound = core::FanoutEngine::cloneBound(app, cal.ident.table,
                                                specs.size());
    const std::vector<std::vector<core::BeatTrace>> series = engine.map(
        specs.size(), [&](std::size_t i, std::size_t /*worker*/) {
            core::SessionOptions opt =
                core::SessionOptions().withTargetRate(target)
                    .withKnobsEnabled(specs[i].knobs);
            sim::Machine machine;
            if (specs[i].capped)
                opt.withGovernor(sim::DvfsGovernor::powerCap(
                    machine, 0.25 * duration, 0.75 * duration));
            core::Session session(*bound.apps[i], bound.tables[i],
                                  cal.training.model, opt);
            auto &trace = session.attach<core::BeatTraceRecorder>();
            session.run(input, machine);
            return trace.beats();
        });
    const auto &baseline = series[0];
    const auto &knobs = series[1];
    const auto &noknobs = series[2];

    // Print a decimated time series (normalized time in [0, 1]).
    std::printf("%8s %12s %12s %12s %10s %8s\n", "beat", "baseline",
                "dyn_knobs", "no_knobs", "knob_gain", "capped");
    const std::size_t n = knobs.size();
    const std::size_t stride = std::max<std::size_t>(1, n / 32);
    for (std::size_t i = 0; i < n; i += stride) {
        const auto &b = knobs[i];
        std::printf("%8zu %12.3f %12.3f %12.3f %10.2f %8s\n", i,
                    i < baseline.size()
                        ? baseline[i].normalized_perf
                        : 0.0,
                    b.normalized_perf,
                    i < noknobs.size()
                        ? noknobs[i].normalized_perf
                        : 0.0,
                    b.knob_gain,
                    b.pstate == 0 ? "no" : "YES");
    }

    // Summary statistics for the capped middle half.
    auto meanPerf = [](const std::vector<core::BeatTrace> &beats,
                       std::size_t lo, std::size_t hi) {
        double acc = 0.0;
        for (std::size_t i = lo; i < hi && i < beats.size(); ++i)
            acc += beats[i].normalized_perf;
        return acc / static_cast<double>(hi - lo);
    };
    const std::size_t lo = static_cast<std::size_t>(0.35 * n);
    const std::size_t hi = static_cast<std::size_t>(0.65 * n);
    std::printf("-- capped-region mean perf: dyn_knobs %.3f, "
                "no_knobs %.3f (paper: ~1.0 vs ~0.67)\n",
                meanPerf(knobs, lo, hi), meanPerf(noknobs, lo, hi));
}

} // namespace

int
main(int argc, char **argv)
{
    const auto bopts = parseBenchOptions(argc, argv);
    {
        auto sweep = makeSwaptions();
        auto app = makeSwaptions(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeVidenc();
        auto app = makeVidenc(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeBodytrack();
        auto app = makeBodytrack(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    {
        auto sweep = makeSearchx();
        auto app = makeSearchx(RunLength::Series);
        figurePanel(*sweep, *app, bopts);
    }
    return 0;
}
