/**
 * @file
 * Extension bench: a consolidated cluster riding a live load trace.
 *
 * Section 5.5 evaluates steady-state utilisation points; this bench
 * replays the paper's motivating workload shape — predominantly low
 * utilisation with intermittent spikes [Barroso & Holzle] — against
 * the consolidated swaptions cluster, and at three representative
 * load levels runs the *actual* controlled application on an
 * oversubscribed machine to measure delivered performance and QoS.
 */
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/consolidation.h"
#include "sim/cluster.h"
#include "workload/load_trace.h"

using namespace powerdial;
using namespace powerdial::bench;

int
main(int argc, char **argv)
{
    const auto bopts = parseBenchOptions(argc, argv);
    banner("Load-spike replay: consolidated swaptions cluster (4 -> 1)");
    auto sweep = makeSwaptions();
    auto app = makeSwaptions(RunLength::Series);
    auto cal = calibrateTransfer(*sweep, *app, 0.05, bopts.threads);
    const auto &model = cal.training.model;

    sim::Machine::Config mconfig; // 8 cores.
    sim::Cluster original(4, mconfig);
    sim::Cluster consolidated(1, mconfig);
    const std::size_t peak = original.peakInstances(); // 32.

    workload::LoadTraceParams lt;
    lt.steps = 96;
    lt.base_utilization = 0.25;
    lt.spike_probability = 0.05;
    const auto trace = workload::makeLoadTrace(lt);

    std::printf("%6s %8s %10s %12s %12s %10s\n", "step", "load",
                "instances", "orig_W", "consol_W", "qos_loss%");
    double orig_j = 0.0, cons_j = 0.0, qos_acc = 0.0;
    std::size_t spikes = 0;
    for (std::size_t t = 0; t < trace.size(); ++t) {
        const auto instances = workload::instancesAt(trace[t], peak);
        const double ow = original.steadyStateWatts(instances);
        const auto placement = consolidated.balance(instances);
        const double cw = consolidated.steadyStateWatts(placement);
        const double required =
            consolidated.maxRequiredSpeedup(placement);
        const double qos = instances == 0
            ? 0.0
            : model.atLeast(required).qos_loss;
        orig_j += ow;
        cons_j += cw;
        qos_acc += qos;
        if (trace[t] >= 0.99)
            ++spikes;
        if (t % 12 == 0 || trace[t] >= 0.99) {
            std::printf("%6zu %8.2f %10zu %12.1f %12.1f %10.3f%s\n", t,
                        trace[t], instances, ow, cw, 100.0 * qos,
                        trace[t] >= 0.99 ? "  <- spike" : "");
        }
    }
    const double n = static_cast<double>(trace.size());
    std::printf("\nover %zu steps (%zu spike steps): mean power "
                "original %.0f W, consolidated %.0f W (%.0f%% saved); "
                "mean QoS loss %.3f%%\n", trace.size(), spikes,
                orig_j / n, cons_j / n,
                100.0 * (orig_j - cons_j) / orig_j,
                100.0 * qos_acc / n);

    banner("Measured controlled runs at representative shares");
    std::printf("%16s %14s %14s\n", "core share", "perf/target",
                "qos_loss%");
    const auto input = app->productionInputs().front();
    const auto baseline =
        core::runFixed(*app, input, app->defaultCombination());
    // Independent sessions on cloned apps: fan out over the pool.
    std::vector<core::ReplayCase> cases;
    for (const double share : {1.0, 0.5, 0.25})
        cases.push_back({share, 1.0});
    core::ConsolidationReplayOptions ropt;
    ropt.input = input;
    ropt.threads = bopts.threads; // 0 = all hardware contexts.
    const auto outcomes = core::replayConsolidation(
        *app, cal.ident.table, model, baseline.output, cases, ropt);
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        std::printf("%16.2f %14.3f %14.3f\n", cases[i].share,
                    outcomes[i].tail_mean_perf,
                    100.0 * outcomes[i].qos_loss_measured);
    }
    std::printf("\nshape: baseline QoS at low shares' inverse (1.0), "
                "graceful loss as oversubscription rises; performance "
                "held at target throughout.\n");
    return 0;
}
