/**
 * @file
 * A minimal, dependency-free timing harness exposing the subset of the
 * Google Benchmark API that bench_overhead.cc uses (State, the
 * range-for iteration protocol, DoNotOptimize, BENCHMARK,
 * BENCHMARK_MAIN). Used automatically when libbenchmark-dev is absent
 * so the section 5.1 overhead numbers are always buildable; when the
 * real library is available the build links it instead (see
 * bench/CMakeLists.txt), and this header is not compiled.
 *
 * The runner calibrates the iteration count per benchmark: it grows
 * the batch geometrically until a batch takes at least ~50 ms of wall
 * clock, then reports ns/op over the final batch.
 */
#ifndef POWERDIAL_BENCH_VENDOR_MICROBENCH_H
#define POWERDIAL_BENCH_VENDOR_MICROBENCH_H

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace powerdial::microbench {

/** Iteration handle: `for (auto _ : state)` runs the timed batch. */
class State
{
  public:
    explicit State(std::uint64_t iterations)
        : iterations_(iterations)
    {
    }

    /**
     * The loop variable type; its non-trivial destructor keeps
     * `for (auto _ : state)` free of unused-variable warnings under
     * -Wall -Wextra -Werror (mirroring Google Benchmark's iterator
     * value type).
     */
    struct Tick
    {
        ~Tick() {}
    };

    class iterator
    {
      public:
        explicit iterator(std::uint64_t remaining)
            : remaining_(remaining)
        {
        }
        bool
        operator!=(const iterator &other) const
        {
            return remaining_ != other.remaining_;
        }
        iterator &
        operator++()
        {
            --remaining_;
            return *this;
        }
        Tick operator*() const { return Tick{}; }

      private:
        std::uint64_t remaining_;
    };

    iterator begin() const { return iterator(iterations_); }
    iterator end() const { return iterator(0); }

    std::uint64_t iterations() const { return iterations_; }

  private:
    std::uint64_t iterations_;
};

/**
 * Keep @p value alive and observable so the optimiser cannot delete
 * the computation that produced it.
 */
template <typename T>
inline void
DoNotOptimize(T &&value)
{
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" : : "g"(value) : "memory");
#else
    // Portable fallback: escape through a volatile write of the
    // address.
    static volatile const void *sink;
    sink = &value;
    (void)sink;
#endif
}

using BenchFn = void (*)(State &);

struct Registered
{
    const char *name;
    BenchFn fn;
};

/** The registry; function-local so the header needs no .cc file. */
inline std::vector<Registered> &
registry()
{
    static std::vector<Registered> benches;
    return benches;
}

struct Registrar
{
    Registrar(const char *name, BenchFn fn)
    {
        registry().push_back({name, fn});
    }
};

/** Run one benchmark: calibrate the batch size, report ns/op. */
inline void
runOne(const Registered &bench)
{
    using clock = std::chrono::steady_clock;
    constexpr double kMinBatchSeconds = 0.05;
    constexpr std::uint64_t kMaxIterations = 1ull << 30;

    std::uint64_t iterations = 1;
    double seconds = 0.0;
    for (;;) {
        State state(iterations);
        const auto start = clock::now();
        bench.fn(state);
        const auto stop = clock::now();
        seconds =
            std::chrono::duration<double>(stop - start).count();
        if (seconds >= kMinBatchSeconds ||
            iterations >= kMaxIterations)
            break;
        // Aim past the threshold with headroom; at least double.
        std::uint64_t next = seconds > 0.0
            ? static_cast<std::uint64_t>(
                  static_cast<double>(iterations) *
                  (1.6 * kMinBatchSeconds / seconds))
            : iterations * 10;
        if (next < iterations * 2)
            next = iterations * 2;
        iterations = next < kMaxIterations ? next : kMaxIterations;
    }
    const double ns_per_op =
        1e9 * seconds / static_cast<double>(iterations);
    std::printf("%-44s %14.1f ns %14llu iters\n", bench.name,
                ns_per_op,
                static_cast<unsigned long long>(iterations));
}

inline int
RunAll()
{
    std::printf("%-44s %17s %20s\n", "benchmark (vendored harness)",
                "time/op", "iterations");
    std::printf("%s\n", std::string(81, '-').c_str());
    for (const auto &bench : registry())
        runOne(bench);
    return 0;
}

} // namespace powerdial::microbench

// Google-Benchmark-compatible surface for the subset we use.
namespace benchmark {
using State = ::powerdial::microbench::State;
using ::powerdial::microbench::DoNotOptimize;
} // namespace benchmark

#define BENCHMARK(fn)                                                  \
    static ::powerdial::microbench::Registrar                          \
        powerdial_microbench_reg_##fn(#fn, fn)

#define BENCHMARK_MAIN()                                               \
    int main()                                                         \
    {                                                                  \
        return ::powerdial::microbench::RunAll();                      \
    }

#endif // POWERDIAL_BENCH_VENDOR_MICROBENCH_H
