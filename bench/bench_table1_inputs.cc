/**
 * @file
 * Reproduces Table 1: summary of training and production inputs for
 * each benchmark (with this repository's synthetic substitutions).
 */
#include "bench_common.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

void
row(core::App &app, const std::string &training,
    const std::string &production, const std::string &source)
{
    std::printf("%-10s | %-28s | %-28s | %s\n", app.name().c_str(),
                training.c_str(), production.c_str(), source.c_str());
}

std::string
count(std::size_t n, const std::string &what)
{
    return std::to_string(n) + " " + what;
}

} // namespace

int
main()
{
    banner("Table 1: Training and Production Inputs");
    std::printf("%-10s | %-28s | %-28s | %s\n", "benchmark",
                "training inputs", "production inputs", "source");
    std::printf("%s\n", std::string(110, '-').c_str());

    {
        auto app = makeSwaptions();
        row(*app,
            count(app->trainingInputs().size(), "portfolios (24 swaptions)"),
            count(app->productionInputs().size(),
                  "portfolios (24 swaptions)"),
            "randomly generated swaptions (PARSEC-style)");
    }
    {
        auto app = makeVidenc();
        row(*app, count(app->trainingInputs().size(), "synthetic clips"),
            count(app->productionInputs().size(), "synthetic clips"),
            "procedural video source (1080p stand-in)");
    }
    {
        auto app = makeBodytrack();
        row(*app,
            count(app->trainingInputs().size(), "walk sequences"),
            count(app->productionInputs().size(), "walk sequences"),
            "synthetic articulated-body walker");
    }
    {
        auto app = makeSearchx();
        row(*app, count(app->trainingInputs().size(), "query batches"),
            count(app->productionInputs().size(), "query batches"),
            "Zipf corpus + power-law queries (Gutenberg stand-in)");
    }

    std::printf("\npaper: swaptions 64/512 swaptions; x264 4/12 HD "
                "videos; bodytrack 100/261 frames; swish++ 2000/2000 "
                "books\n");
    return 0;
}
