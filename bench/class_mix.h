/**
 * @file
 * The --class-mix flag shared by the fleet benches.
 *
 * A spec like "big:2,little:2" provisions the serve's fleet from the
 * built-in big.LITTLE machine catalog instead of N copies of the
 * default machine: class names resolve against
 * sim::MachineCatalog::bigLittle(), counts accumulate per class, and
 * the resulting (catalog, class_mix) pair replaces the homogeneous
 * machines/machine options. An absent (empty) spec leaves the options
 * untouched, so every pre-heterogeneity golden stays byte-identical.
 */
#ifndef POWERDIAL_BENCH_CLASS_MIX_H
#define POWERDIAL_BENCH_CLASS_MIX_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fleet/server.h"
#include "sim/machine_catalog.h"

namespace powerdial::bench {

/**
 * Apply @p spec ("name:count[,name:count...]") to @p options; an empty
 * spec is a no-op. Returns false after printing a diagnostic when the
 * spec is malformed, names an unknown class, or provisions nothing.
 */
inline bool
applyClassMix(fleet::ServerOptions &options, const std::string &spec)
{
    if (spec.empty())
        return true;
    const sim::MachineCatalog catalog =
        sim::MachineCatalog::bigLittle();
    std::vector<std::size_t> mix(catalog.size(), 0);
    std::size_t total = 0;

    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        const std::string entry = spec.substr(pos, comma - pos);
        const std::size_t colon = entry.find(':');
        if (colon == 0 || colon == std::string::npos ||
            colon + 1 == entry.size()) {
            std::fprintf(stderr,
                         "--class-mix: malformed entry '%s' "
                         "(expected name:count)\n",
                         entry.c_str());
            return false;
        }
        const std::string name = entry.substr(0, colon);
        const std::string count_text = entry.substr(colon + 1);
        for (const char c : count_text)
            if (c < '0' || c > '9') {
                std::fprintf(stderr,
                             "--class-mix: bad count in '%s'\n",
                             entry.c_str());
                return false;
            }
        std::size_t index = 0;
        try {
            index = catalog.indexOf(name);
        } catch (const std::invalid_argument &) {
            std::fprintf(stderr,
                         "--class-mix: unknown class '%s' (catalog: "
                         "big, little)\n",
                         name.c_str());
            return false;
        }
        const auto count = static_cast<std::size_t>(
            std::strtoul(count_text.c_str(), nullptr, 10));
        mix[index] += count;
        total += count;
        pos = comma + 1;
    }
    if (total == 0) {
        std::fprintf(stderr,
                     "--class-mix: must provision at least one "
                     "machine\n");
        return false;
    }
    options.catalog = catalog;
    options.class_mix = mix;
    return true;
}

} // namespace powerdial::bench

#endif // POWERDIAL_BENCH_CLASS_MIX_H
