/**
 * @file
 * Fleet bench: a consolidated swaptions fleet rides a load spike
 * under a cluster-wide power cap.
 *
 * The datacenter scenario behind sections 3 and 5.5, closed into one
 * loop by the fleet subsystem: an open-loop Poisson request stream
 * (workload::makePoissonArrivals over a spiky load trace) is served
 * by a consolidated two-machine fleet whose shared power cap a
 * fleet::PowerArbiter re-splits every epoch, against an
 * over-provisioned four-machine uncapped reference. The consolidated
 * serves use power-aware placement (which packs machines, making the
 * budget split genuinely asymmetric) and compare all three arbiter
 * policies; the expected shape is the QoS-feedback split dominating
 * the load-blind uniform split on tail latency and QoS loss. With
 * one machine hosting every tenant, the two informed policies
 * allocate identically (all headroom to the hot machine) and their
 * rows coincide — the feedback term's distinct budget-shifting
 * behaviour is pinned by the arbiter unit tests instead.
 *
 * Tenants are persistent: with --epoch-frac below 100 every job spans
 * several arbitration epochs and adopts each re-split budget mid-run
 * through its lease (the cross-epoch scenario CI replays against
 * bench/golden/fleet_spike_crossepoch.txt). --queue-depth bounds each
 * machine's run queue; overload arrivals are shed and counted.
 *
 * Output is byte-identical for --threads=1 and --threads=N (the CI
 * fleet-smoke job asserts this, and diffs the summary section against
 * bench/golden/fleet_spike_steps50.txt).
 *
 * --engine selects the serve loop: `epoch` (legacy synchronous round
 * loop), `event` (discrete-event engine, its own golden
 * fleet_spike_event.txt), or `compat` (event engine in epoch-compat
 * mode — stdout is byte-identical to `epoch`, which CI diffs).
 * Wall-clock timings go to stderr only, keeping stdout deterministic
 * for the golden comparisons.
 *
 * --fleet=N switches to the scale scenario: N machines serving a
 * Poisson stream of synthetic microsim tenants (defined below; real
 * swaptions jobs would take hours at this scale). With
 * `--fleet=1000 --steps=100 --peak-rate=4000` the event engine pushes
 * ~10^5 jobs through a 1000-machine cluster; the wall-clock line on
 * stderr is the headline number.
 */
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "bench_common.h"
#include "class_mix.h"
#include "fleet/server.h"
#include "microsim_app.h"
#include "sim/machine.h"
#include "workload/arrivals.h"
#include "workload/load_trace.h"

using namespace powerdial;
using namespace powerdial::bench;

namespace {

struct FleetBenchOptions
{
    std::size_t steps = 96;  //!< Load-trace length, epochs.
    std::size_t threads = 0; //!< Tenant-session workers (0 = all).
    /**
     * Epoch length as a percentage of one job's baseline duration.
     * 100 (default) keeps roughly one job per epoch; lower values
     * make jobs span multiple epochs, exercising the cross-epoch
     * lease path (e.g. 30 means every job crosses >= 3 boundaries).
     */
    std::size_t epoch_frac_pct = 100;
    std::size_t queue_depth = 0; //!< Per-machine bound (0 = unbounded).
    fleet::EngineMode engine = fleet::EngineMode::Epoch;
    bool epoch_compat = false;      //!< --engine=compat.
    std::size_t sample_stride = 1;  //!< Event-engine report stride.
    std::size_t fleet = 0;          //!< 0 = comparison bench; else scale.
    std::size_t peak_rate = 0;      //!< Poisson peak (0 = mode default).
    /** Heterogeneous fleet spec, e.g. "big:2,little:2" (empty =
     *  homogeneous default; overrides the per-case machine counts). */
    std::string class_mix;
    ObsOptions obs; //!< --trace / --trace-jsonl / --metrics outputs.
};

const char *
engineLabel(const FleetBenchOptions &options)
{
    if (options.engine == fleet::EngineMode::Epoch)
        return "epoch";
    return options.epoch_compat ? "compat" : "event";
}

FleetBenchOptions
parseFleetOptions(int argc, char **argv)
{
    FleetBenchOptions options;
    const auto usage = [argv]() {
        std::fprintf(stderr,
                     "usage: %s [--steps=N] [--threads=N | -t N]\n"
                     "          [--epoch-frac=P] [--queue-depth=N]\n"
                     "          [--engine=epoch|event|compat] "
                     "[--sample-stride=N]\n"
                     "          [--fleet=N] [--peak-rate=N]\n"
                     "  steps       load-trace epochs (default 96)\n"
                     "  threads     tenant-session workers "
                     "(0 = all hardware contexts, 1 = serial)\n"
                     "  epoch-frac  epoch length as %% of one job's "
                     "baseline duration (default 100;\n"
                     "              lower => jobs span multiple epochs "
                     "and feel lease updates mid-run)\n"
                     "  queue-depth max in-flight jobs per machine "
                     "(default 0 = unbounded; overload sheds)\n"
                     "  engine      serve loop: epoch (legacy round "
                     "loop), event (discrete-event),\n"
                     "              compat (event engine replaying the "
                     "epoch schedule bit-for-bit)\n"
                     "  sample-stride  epochs per report row "
                     "(event engine only; default 1)\n"
                     "  fleet       scale mode: N machines serving "
                     "synthetic microsim tenants\n"
                     "  peak-rate   Poisson peak arrivals per epoch "
                     "(default 12, or 1000 with --fleet)\n"
                     "  class-mix   heterogeneous fleet from the "
                     "big.LITTLE catalog, e.g. big:2,little:2\n"
                     "              (overrides the machine counts; "
                     "absent = homogeneous default)\n%s",
                     argv[0], obsUsage());
        std::exit(2);
    };
    const auto parseCount = [&usage](const char *text) {
        if (*text == '\0')
            usage();
        for (const char *p = text; *p != '\0'; ++p)
            if (*p < '0' || *p > '9')
                usage();
        return static_cast<std::size_t>(
            std::strtoul(text, nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--steps=", 8) == 0) {
            options.steps = parseCount(arg + 8);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = parseCount(arg + 10);
        } else if (std::strncmp(arg, "--epoch-frac=", 13) == 0) {
            options.epoch_frac_pct = parseCount(arg + 13);
        } else if (std::strncmp(arg, "--queue-depth=", 14) == 0) {
            options.queue_depth = parseCount(arg + 14);
        } else if (std::strncmp(arg, "--engine=", 9) == 0) {
            if (std::strcmp(arg + 9, "epoch") == 0) {
                options.engine = fleet::EngineMode::Epoch;
                options.epoch_compat = false;
            } else if (std::strcmp(arg + 9, "event") == 0) {
                options.engine = fleet::EngineMode::Event;
                options.epoch_compat = false;
            } else if (std::strcmp(arg + 9, "compat") == 0) {
                options.engine = fleet::EngineMode::Event;
                options.epoch_compat = true;
            } else {
                usage();
            }
        } else if (std::strncmp(arg, "--sample-stride=", 16) == 0) {
            options.sample_stride = parseCount(arg + 16);
        } else if (std::strncmp(arg, "--fleet=", 8) == 0) {
            options.fleet = parseCount(arg + 8);
        } else if (std::strncmp(arg, "--peak-rate=", 12) == 0) {
            options.peak_rate = parseCount(arg + 12);
        } else if (std::strncmp(arg, "--class-mix=", 12) == 0) {
            options.class_mix = arg + 12;
        } else if (parseObsArg(options.obs, arg)) {
            // Consumed by the shared observability parser.
        } else if (std::strcmp(arg, "-t") == 0 && i + 1 < argc) {
            options.threads = parseCount(argv[++i]);
        } else {
            usage();
        }
    }
    if (options.steps == 0 || options.epoch_frac_pct == 0 ||
        options.sample_stride == 0)
        usage();
    // Compat mode replays the legacy schedule; a coarser stride would
    // change it (the Server constructor rejects this combination too).
    if (options.epoch_compat && options.sample_stride != 1)
        usage();
    return options;
}

/** Apply the engine selection to one serve's options. */
void
applyEngine(fleet::ServerOptions &server_options,
            const FleetBenchOptions &options)
{
    server_options.engine = options.engine;
    server_options.event.epoch_compat = options.epoch_compat;
    if (options.engine == fleet::EngineMode::Event &&
        !options.epoch_compat)
        server_options.event.sample_stride = options.sample_stride;
}

/**
 * Serve and report the wall-clock on stderr (never stdout: the CI
 * fleet-smoke job diffs stdout byte-for-byte against goldens and
 * across engines, and timings are the one nondeterministic output).
 */
fleet::FleetReport
timedServe(fleet::Server &server,
           const std::vector<std::size_t> &arrivals, const char *label,
           const FleetBenchOptions &options)
{
    const auto start = std::chrono::steady_clock::now();
    auto report = server.serve(arrivals);
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    std::fprintf(stderr, "[bench] %-22s engine=%-6s wall-clock %.3f s\n",
                 label, engineLabel(options), wall_s);
    return report;
}

/** One serve configuration of the comparison table. */
struct FleetCase
{
    const char *label;
    std::size_t machines;
    double cap_watts;
    fleet::ArbiterPolicy policy;
    bool power_aware;
};

void
printEpochs(const fleet::FleetReport &report)
{
    std::printf("%6s %9s %7s %10s %12s %10s %8s\n", "epoch",
                "arrivals", "active", "watts", "fleet_rate",
                "qos_loss%", "pause");
    const std::size_t stride =
        std::max<std::size_t>(1, report.epochs.size() / 12);
    for (std::size_t e = 0; e < report.epochs.size(); e += stride) {
        const auto &epoch = report.epochs[e];
        std::printf("%6zu %9zu %7zu %10.1f %12.1f %10.3f %8.2f\n",
                    epoch.epoch, epoch.arrivals, epoch.active,
                    epoch.watts, epoch.fleet_rate,
                    100.0 * epoch.mean_qos_loss,
                    epoch.max_pause_ratio);
    }
}

/**
 * Scale mode: --fleet=N machines serve a Poisson stream of microsim
 * jobs under a cluster-wide cap at 60% of aggregate peak power. The
 * target scenario is `--fleet=1000 --steps=100 --peak-rate=4000
 * --engine=event`: ~10^5 jobs through 1000 machines, wall-clock on
 * stderr.
 */
int
runScaleFleet(const FleetBenchOptions &options)
{
    banner("Fleet scale: synthetic microsim tenants");
    MicrosimApp app;
    auto cal = calibrateOnTraining(app, -1.0, options.threads);
    const auto &model = cal.training.model;

    workload::LoadTraceParams trace_params;
    trace_params.steps = options.steps;
    trace_params.base_utilization = 0.25;
    trace_params.spike_probability = 0.05;
    workload::PoissonArrivalParams arrival_params;
    arrival_params.peak_rate = static_cast<double>(
        options.peak_rate > 0 ? options.peak_rate : 1000);
    const auto arrivals = workload::makePoissonArrivals(
        workload::makeLoadTrace(trace_params), arrival_params);
    const std::size_t offered =
        std::accumulate(arrivals.begin(), arrivals.end(),
                        std::size_t{0});

    fleet::ServerOptions server_options;
    server_options.machines = options.fleet;
    server_options.threads = options.threads;
    server_options.epoch_seconds =
        static_cast<double>(MicrosimApp::kUnits) /
        model.baselineRate() *
        (static_cast<double>(options.epoch_frac_pct) / 100.0);
    server_options.queue_depth = options.queue_depth;
    const sim::Machine probe(server_options.machine);
    server_options.arbiter.cluster_cap_watts =
        static_cast<double>(options.fleet) * 0.6 *
        probe.powerModel().peakWatts();
    server_options.arbiter.policy = fleet::ArbiterPolicy::QosFeedback;
    applyEngine(server_options, options);
    if (!applyClassMix(server_options, options.class_mix))
        return 2;
    auto obs_sink = makeObsSink(options.obs);
    server_options.trace = obs_sink ? &*obs_sink : nullptr;

    fleet::Server server(app, cal.ident.table, model, server_options);
    const auto report = timedServe(server, arrivals, "scale", options);
    printEpochs(report);
    writeObsOutputs(options.obs, server_options.trace, report);

    banner("scale summary");
    std::printf("machines %zu, epochs %zu, offered %zu jobs\n",
                options.fleet, options.steps, offered);
    std::printf("%6s %6s %8s %10s %12s %10s %10s %10s %10s\n", "jobs",
                "shed", "drained", "watts", "fleet_rate", "p50_lat",
                "p95_lat", "p99_lat", "qos_loss%");
    std::printf("%6zu %6zu %8zu %10.1f %12.1f %10.4f %10.4f %10.4f "
                "%10.3f\n",
                report.total_jobs, report.total_shed,
                report.drained_jobs, report.mean_watts,
                report.mean_fleet_rate, report.p50_latency_s,
                report.p95_latency_s, report.p99_latency_s,
                100.0 * report.mean_qos_loss);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const auto options = parseFleetOptions(argc, argv);
    if (options.fleet > 0)
        return runScaleFleet(options);
    banner("Fleet spike: consolidated swaptions fleet under a "
           "cluster power cap");

    // Serving-sized jobs: long enough for several control quanta,
    // short enough that a few hundred of them replay in seconds.
    apps::swaptions::SwaptionsConfig serving_config;
    serving_config.inputs = 8;
    serving_config.swaptions_per_input = 120;
    apps::swaptions::SwaptionsApp app(serving_config);
    auto sweep = makeSwaptions();
    auto cal = calibrateTransfer(*sweep, app, 0.05, options.threads);
    const auto &model = cal.training.model;

    // The offered load: intermittent spikes atop ~25% utilisation,
    // turned into an open-loop Poisson request stream.
    workload::LoadTraceParams trace_params;
    trace_params.steps = options.steps;
    trace_params.base_utilization = 0.25;
    trace_params.spike_probability = 0.05;
    workload::PoissonArrivalParams arrival_params;
    arrival_params.peak_rate = 12.0;
    const auto arrivals = workload::makePoissonArrivals(
        workload::makeLoadTrace(trace_params), arrival_params);

    const std::vector<FleetCase> cases{
        {"4m uncapped", 4, 0.0, fleet::ArbiterPolicy::Uniform, false},
        {"2m cap340 uniform", 2, 340.0, fleet::ArbiterPolicy::Uniform,
         true},
        {"2m cap340 util-prop", 2, 340.0,
         fleet::ArbiterPolicy::UtilizationProportional, true},
        {"2m cap340 qos-fb", 2, 340.0,
         fleet::ArbiterPolicy::QosFeedback, true},
    };

    // One sink across the matrix: beginServe resets it at each serve,
    // so the outputs describe the final case (2m cap340 qos-fb).
    auto obs_sink = makeObsSink(options.obs);

    std::vector<fleet::FleetReport> reports;
    reports.reserve(cases.size());
    for (const FleetCase &fleet_case : cases) {
        banner(fleet_case.label);
        fleet::ServerOptions server_options;
        server_options.machines = fleet_case.machines;
        server_options.threads = options.threads;
        // One epoch = epoch-frac percent of one serving job's
        // baseline duration (the model was calibrated on sweep-sized
        // inputs, so derive it from the transferable per-beat rate,
        // not baselineSeconds()). Below 100%, jobs span several
        // epochs and feel each re-arbitrated lease mid-run.
        server_options.epoch_seconds =
            static_cast<double>(serving_config.swaptions_per_input) /
            model.baselineRate() *
            (static_cast<double>(options.epoch_frac_pct) / 100.0);
        server_options.queue_depth = options.queue_depth;
        server_options.arbiter.cluster_cap_watts =
            fleet_case.cap_watts;
        server_options.arbiter.policy = fleet_case.policy;
        if (fleet_case.power_aware)
            server_options.placement =
                fleet::makePowerAwarePlacement();
        applyEngine(server_options, options);
        if (!applyClassMix(server_options, options.class_mix))
            return 2;
        server_options.trace = obs_sink ? &*obs_sink : nullptr;
        fleet::Server server(app, cal.ident.table, model,
                             server_options);
        reports.push_back(
            timedServe(server, arrivals, fleet_case.label, options));
        printEpochs(reports.back());
    }
    writeObsOutputs(options.obs, obs_sink ? &*obs_sink : nullptr,
                    reports.back());

    banner("summary");
    std::printf("%-22s %6s %6s %10s %12s %10s %10s %10s\n", "fleet",
                "jobs", "shed", "watts", "fleet_rate", "p50_lat",
                "p95_lat", "qos_loss%");
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &report = reports[i];
        std::printf("%-22s %6zu %6zu %10.1f %12.1f %10.3f %10.3f "
                    "%10.3f\n",
                    cases[i].label, report.total_jobs,
                    report.total_shed, report.mean_watts,
                    report.mean_fleet_rate, report.p50_latency_s,
                    report.p95_latency_s,
                    100.0 * report.mean_qos_loss);
    }

    const auto &uniform = reports[1];
    const auto &feedback = reports[3];
    std::printf("\nqos-feedback vs uniform split: p95 latency %.3f s "
                "vs %.3f s (%+.1f%%), mean QoS loss %.3f%% vs %.3f%% "
                "(%+.1f%%)\n",
                feedback.p95_latency_s, uniform.p95_latency_s,
                uniform.p95_latency_s > 0.0
                    ? 100.0 * (feedback.p95_latency_s -
                               uniform.p95_latency_s) /
                        uniform.p95_latency_s
                    : 0.0,
                100.0 * feedback.mean_qos_loss,
                100.0 * uniform.mean_qos_loss,
                uniform.mean_qos_loss > 0.0
                    ? 100.0 * (feedback.mean_qos_loss -
                               uniform.mean_qos_loss) /
                        uniform.mean_qos_loss
                    : 0.0);
    const bool dominates =
        feedback.p95_latency_s < uniform.p95_latency_s ||
        feedback.mean_qos_loss < uniform.mean_qos_loss;
    std::printf("qos-feedback dominates uniform on at least one "
                "metric: %s\n", dominates ? "yes" : "NO");
    std::printf("consolidation: %zu -> %zu machines at %.0f%% of the "
                "reference power\n", cases.front().machines,
                cases.back().machines,
                100.0 * reports.back().mean_watts /
                    reports.front().mean_watts);
    return 0;
}
