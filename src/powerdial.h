/**
 * @file
 * Umbrella header: the complete public PowerDial API.
 *
 * Include this to use the library end to end:
 *
 *   #include "powerdial.h"
 *
 *   MyApp app;                                   // implements core::App
 *   auto ident = powerdial::core::identifyKnobs(app);
 *   auto cal = powerdial::core::calibrate(app, app.trainingInputs());
 *   powerdial::core::Session session(app, ident.table, cal.model);
 *   auto &trace = session.attach<powerdial::core::BeatTraceRecorder>();
 *   powerdial::sim::Machine machine;
 *   auto run = session.run(input, machine);
 *
 * Individual headers remain includable on their own; this file only
 * aggregates them.
 */
#ifndef POWERDIAL_POWERDIAL_H
#define POWERDIAL_POWERDIAL_H

// The paper's primary contribution.
#include "core/actuation_strategy.h"
#include "core/analytical.h"
#include "core/app.h"
#include "core/calibration.h"
#include "core/consolidation.h"
#include "core/control_policy.h"
#include "core/controller.h"
#include "core/fanout.h"
#include "core/identify.h"
#include "core/knob.h"
#include "core/pareto.h"
#include "core/policy_advisor.h"
#include "core/response_model.h"
#include "core/run_observer.h"
#include "core/session.h"
#include "core/thread_pool.h"
#include "core/trace_export.h"

// Fleet serving: many controlled sessions as tenants of a cluster.
#include "fleet/admission.h"
#include "fleet/metrics_hub.h"
#include "fleet/power_arbiter.h"
#include "fleet/scheduler.h"
#include "fleet/server.h"

// Substrates.
#include "heartbeats/heartbeat.h"
#include "heartbeats/reader.h"
#include "influence/analysis.h"
#include "influence/trace_run.h"
#include "influence/value.h"
#include "qos/distortion.h"
#include "qos/psnr.h"
#include "qos/retrieval.h"
#include "sim/cluster.h"
#include "sim/dvfs_governor.h"
#include "sim/energy_meter.h"
#include "sim/frequency.h"
#include "sim/machine.h"
#include "sim/power_model.h"
#include "sim/virtual_clock.h"
#include "workload/arrivals.h"
#include "workload/load_trace.h"
#include "workload/traffic_mix.h"
#include "workload/zipf.h"

#endif // POWERDIAL_POWERDIAL_H
