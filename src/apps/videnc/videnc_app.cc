#include "apps/videnc/videnc_app.h"

#include <stdexcept>

#include "workload/corpus.h"

namespace powerdial::apps::videnc {
namespace {

core::KnobSpace
makeSpace(const VidencConfig &config)
{
    return core::KnobSpace({{"subme", config.subme_values},
                            {"merange", config.merange_values},
                            {"ref", config.ref_values}});
}

/** Approximate cycles per pixel-level arithmetic operation. */
constexpr double kCyclesPerOp = 1.0;

} // namespace

VidencApp::VidencApp(const VidencConfig &config)
    : config_(config), space_(makeSpace(config)),
      encoder_(config.encoder)
{
    clips_.reserve(config_.inputs);
    for (std::size_t i = 0; i < config_.inputs; ++i) {
        workload::VideoParams vp = config_.video;
        vp.seed = config_.seed + i * 0x9e37ULL;
        clips_.push_back(workload::VideoSource(vp).frames());
    }
}

std::unique_ptr<core::App>
VidencApp::clone() const
{
    // Every member is value-semantic (the clips, the encoder's
    // reference list, the control variables), so the implicit copy is
    // a full deep copy.
    return std::make_unique<VidencApp>(*this);
}

int
VidencApp::submeToRounds(double subme)
{
    // subme 1 = integer-pel only; each level adds a refinement round,
    // mirroring x264's progressively deeper sub-pel search.
    return static_cast<int>(subme) - 1;
}

std::size_t
VidencApp::defaultCombination() const
{
    // PARSEC native defaults: subme 7, merange 16, ref 5 — the last
    // value of each range.
    return space_.findCombination({config_.subme_values.back(),
                                   config_.merange_values.back(),
                                   config_.ref_values.back()});
}

void
VidencApp::configure(const std::vector<double> &params)
{
    if (params.size() != 3)
        throw std::invalid_argument("VidencApp: expected 3 parameters");
    effort_.subpel_rounds = submeToRounds(params[0]);
    effort_.merange = static_cast<int>(params[1]);
    effort_.refs = static_cast<int>(params[2]);
}

void
VidencApp::traceRun(influence::TraceRun &trace,
                    const std::vector<double> &params)
{
    using influence::Value;
    const Value<double> subme(params.at(0), influence::paramBit(0));
    const Value<double> merange(params.at(1), influence::paramBit(1));
    const Value<double> ref(params.at(2), influence::paramBit(2));

    // Init phase: control variables derived from the parameters.
    const Value<double> rounds = subme - Value<double>(1.0);
    trace.store("subpel_rounds", rounds, "videnc_app.cc:configure");
    trace.store("merange", merange * Value<double>(1.0),
                "videnc_app.cc:configure");
    trace.store("ref_frames", ref * Value<double>(1.0),
                "videnc_app.cc:configure");
    // Untainted init variable (the quantisation step): must be excluded.
    trace.store("qstep", Value<double>(config_.encoder.qstep),
                "videnc_app.cc:configure");

    // Main loop: the motion search reads all three every macroblock.
    trace.firstHeartbeat();
    trace.read("subpel_rounds", "motion.cc:searchMotion");
    trace.read("merange", "motion.cc:searchMotion");
    trace.read("ref_frames", "motion.cc:searchMotion");
    trace.read("qstep", "encoder.cc:encodeFrame");
}

void
VidencApp::bindControlVariables(core::KnobTable &table)
{
    table.bind({"subpel_rounds", [this](const std::vector<double> &v) {
                    effort_.subpel_rounds = static_cast<int>(v.at(0));
                }});
    table.bind({"merange", [this](const std::vector<double> &v) {
                    effort_.merange = static_cast<int>(v.at(0));
                }});
    table.bind({"ref_frames", [this](const std::vector<double> &v) {
                    effort_.refs = static_cast<int>(v.at(0));
                }});
}

std::size_t
VidencApp::inputCount() const
{
    return clips_.size();
}

std::vector<std::size_t>
VidencApp::trainingInputs() const
{
    return workload::splitInputs(clips_.size(), config_.seed ^ 0x7e57)
        .training;
}

std::vector<std::size_t>
VidencApp::productionInputs() const
{
    return workload::splitInputs(clips_.size(), config_.seed ^ 0x7e57)
        .production;
}

void
VidencApp::loadInput(std::size_t index)
{
    if (index >= clips_.size())
        throw std::out_of_range("VidencApp: bad input index");
    current_input_ = index;
    encoder_.reset();
    total_bits_ = 0;
    psnr_sum_db_ = 0.0;
    frames_done_ = 0;
}

std::size_t
VidencApp::unitCount() const
{
    return clips_[current_input_].size();
}

void
VidencApp::processUnit(std::size_t unit, sim::Machine &machine)
{
    const auto &frame = clips_[current_input_].at(unit);
    const FrameStats stats = encoder_.encodeFrame(frame, effort_);
    machine.execute(static_cast<double>(stats.work_ops) * kCyclesPerOp);
    total_bits_ += stats.bits;
    psnr_sum_db_ += stats.psnr_db;
    ++frames_done_;
}

qos::OutputAbstraction
VidencApp::output() const
{
    // Paper section 4.2: PSNR and bitrate, weighted equally.
    const double mean_psnr = frames_done_ > 0
        ? psnr_sum_db_ / static_cast<double>(frames_done_)
        : 0.0;
    return {{mean_psnr, static_cast<double>(total_bits_)}, {1.0, 1.0}};
}

} // namespace powerdial::apps::videnc
