/**
 * @file
 * 8x8 block transform, quantisation, and entropy-cost model.
 *
 * The residual-coding half of the from-scratch video encoder that
 * stands in for x264 (paper section 4.2). A floating-point 8x8 DCT-II
 * with uniform quantisation and a bit-cost model (Exp-Golomb-like
 * magnitude cost per non-zero coefficient) gives the encoder a real
 * rate/distortion behaviour: better motion prediction produces smaller
 * residuals, fewer coded bits, and higher reconstruction PSNR.
 */
#ifndef POWERDIAL_APPS_VIDENC_DCT_H
#define POWERDIAL_APPS_VIDENC_DCT_H

#include <array>
#include <cstdint>

namespace powerdial::apps::videnc {

/** Transform block edge length. */
inline constexpr int kBlock = 8;

/** An 8x8 residual block in raster order. */
using ResidualBlock = std::array<double, kBlock * kBlock>;

/** Quantised coefficients. */
using CoeffBlock = std::array<int, kBlock * kBlock>;

/** Forward 8x8 DCT-II (orthonormal). */
ResidualBlock forwardDct(const ResidualBlock &spatial);

/** Inverse 8x8 DCT-II. */
ResidualBlock inverseDct(const ResidualBlock &freq);

/** Uniform quantisation with step @p qstep (> 0). */
CoeffBlock quantize(const ResidualBlock &freq, double qstep);

/** Dequantisation. */
ResidualBlock dequantize(const CoeffBlock &coeffs, double qstep);

/**
 * Entropy-cost estimate in bits for one quantised block: each non-zero
 * coefficient costs ~2*floor(log2(|c|+1))+1 bits (Exp-Golomb shape)
 * plus a per-block significance overhead.
 */
std::uint64_t bitCost(const CoeffBlock &coeffs);

/** Arithmetic-operation estimate of one forward+inverse transform. */
inline constexpr std::uint64_t kDctOps =
    2ULL * kBlock * kBlock * kBlock * 2ULL; // Two 1-D passes, fwd + inv.

} // namespace powerdial::apps::videnc

#endif // POWERDIAL_APPS_VIDENC_DCT_H
