/**
 * @file
 * 8x8 block transform, quantisation, and entropy-cost model.
 *
 * The residual-coding half of the from-scratch video encoder that
 * stands in for x264 (paper section 4.2). A floating-point 8x8 DCT-II
 * with uniform quantisation and a bit-cost model (Exp-Golomb-like
 * magnitude cost per non-zero coefficient) gives the encoder a real
 * rate/distortion behaviour: better motion prediction produces smaller
 * residuals, fewer coded bits, and higher reconstruction PSNR.
 *
 * The transforms are two separable 1-D passes over a precomputed
 * cosine basis. The default path keeps the retained naive nest
 * (namespace reference) verbatim: roofline measurements on the
 * project's baseline build showed the compiler already vectorizes it
 * optimally, and every bit-exact reshaping tried (broadcast-multiply
 * lane accumulators, transposed intermediates) measured slower — see
 * dct.cc and docs/ARCHITECTURE.md. Default results are therefore
 * bit-exact by construction, pinned by
 * tests/test_kernel_equivalence.cc and regression-guarded at parity by
 * bench_roofline. Passing a KernelTuning with fast_math switches to
 * two-accumulator 8-tap dot products, which reassociate the sums and
 * are bounded by the documented relative error instead.
 */
#ifndef POWERDIAL_APPS_VIDENC_DCT_H
#define POWERDIAL_APPS_VIDENC_DCT_H

#include <array>
#include <cstdint>

#include "apps/kernel_tuning.h"

namespace powerdial::apps::videnc {

using apps::KernelTuning;

/** Transform block edge length. */
inline constexpr int kBlock = 8;

/** An 8x8 residual block in raster order. */
using ResidualBlock = std::array<double, kBlock * kBlock>;

/** Quantised coefficients. */
using CoeffBlock = std::array<int, kBlock * kBlock>;

/** Forward 8x8 DCT-II (orthonormal). */
ResidualBlock forwardDct(const ResidualBlock &spatial,
                         const KernelTuning &tuning = {});

/** Inverse 8x8 DCT-II. */
ResidualBlock inverseDct(const ResidualBlock &freq,
                         const KernelTuning &tuning = {});

/** Uniform quantisation with step @p qstep (> 0). */
CoeffBlock quantize(const ResidualBlock &freq, double qstep);

/** Dequantisation. */
ResidualBlock dequantize(const CoeffBlock &coeffs, double qstep);

/**
 * Entropy-cost estimate in bits for one quantised block: each non-zero
 * coefficient costs ~2*floor(log2(|c|+1))+1 bits (Exp-Golomb shape)
 * plus a per-block significance overhead.
 */
std::uint64_t bitCost(const CoeffBlock &coeffs);

/** Arithmetic-operation estimate of one forward+inverse transform. */
inline constexpr std::uint64_t kDctOps =
    2ULL * kBlock * kBlock * kBlock * 2ULL; // Two 1-D passes, fwd + inv.

/**
 * Retained naive transforms (dct_ref.cc): the pre-optimization
 * implementations, kept verbatim as the bit-exactness oracle for the
 * differential tests and the roofline bench's "before" column.
 */
namespace reference {
ResidualBlock forwardDct(const ResidualBlock &spatial);
ResidualBlock inverseDct(const ResidualBlock &freq);
} // namespace reference

} // namespace powerdial::apps::videnc

#endif // POWERDIAL_APPS_VIDENC_DCT_H
