/**
 * @file
 * The video encoder benchmark as a PowerDial application (paper
 * section 4.2, standing in for x264).
 *
 * Knobs: subme (sub-pixel refinement effort, 1-7), merange (motion
 * search range, up to 16), ref (reference frames, 1-5); the PARSEC
 * native defaults — 7, 16, 5 — are the baseline. Inputs: synthetic
 * procedural clips (stand-ins for the 1080p PARSEC/xiph videos). One
 * main-loop iteration encodes one frame. The QoS metric is the
 * distortion of {PSNR, bitrate}, weighted equally.
 */
#ifndef POWERDIAL_APPS_VIDENC_APP_H
#define POWERDIAL_APPS_VIDENC_APP_H

#include <vector>

#include "apps/videnc/encoder.h"
#include "core/app.h"
#include "workload/video_source.h"

namespace powerdial::apps::videnc {

/** Benchmark sizing. */
struct VidencConfig
{
    std::vector<double> subme_values = {1, 2, 3, 4, 5, 6, 7};
    std::vector<double> merange_values = {1, 2, 4, 8, 16};
    std::vector<double> ref_values = {1, 3, 5};
    /** Clip geometry (scaled-down stand-in for 1080p). */
    workload::VideoParams video{};
    /** Number of clips to synthesise. */
    std::size_t inputs = 8;
    EncoderConfig encoder{};
    std::uint64_t seed = 0x26400001;
};

/** PowerDial App implementation for the video encoder. */
class VidencApp final : public core::App
{
  public:
    explicit VidencApp(const VidencConfig &config = {});

    std::string name() const override { return "videnc"; }
    std::unique_ptr<core::App> clone() const override;
    const core::KnobSpace &knobSpace() const override { return space_; }
    std::size_t defaultCombination() const override;
    void configure(const std::vector<double> &params) override;
    void traceRun(influence::TraceRun &trace,
                  const std::vector<double> &params) override;
    void bindControlVariables(core::KnobTable &table) override;
    std::size_t inputCount() const override;
    std::vector<std::size_t> trainingInputs() const override;
    std::vector<std::size_t> productionInputs() const override;
    void loadInput(std::size_t index) override;
    std::size_t unitCount() const override;
    void processUnit(std::size_t unit, sim::Machine &machine) override;
    qos::OutputAbstraction output() const override;

    /** Current search effort (the control variables; for tests). */
    const SearchParams &effort() const { return effort_; }

  private:
    /** Map the subme parameter (1-7) to refinement rounds. */
    static int submeToRounds(double subme);

    VidencConfig config_;
    core::KnobSpace space_;
    std::vector<std::vector<workload::Frame>> clips_;

    // Control variables, derived from {subme, merange, ref} at init.
    SearchParams effort_;

    // Per-run state.
    Encoder encoder_;
    std::size_t current_input_ = 0;
    std::uint64_t total_bits_ = 0;
    double psnr_sum_db_ = 0.0;
    std::size_t frames_done_ = 0;
};

} // namespace powerdial::apps::videnc

#endif // POWERDIAL_APPS_VIDENC_APP_H
