#include "apps/videnc/encoder.h"

#include <algorithm>
#include <cmath>

#include "qos/psnr.h"

namespace powerdial::apps::videnc {
namespace {

std::uint8_t
clampLuma(double v)
{
    return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

} // namespace

Encoder::Encoder(const EncoderConfig &config) : config_(config) {}

void
Encoder::reset()
{
    refs_.clear();
}

FrameStats
Encoder::encodeFrame(const workload::Frame &frame,
                     const SearchParams &effort)
{
    FrameStats stats;
    workload::Frame recon = frame; // Shape only; pixels overwritten.

    const std::vector<workload::Frame> refs(refs_.begin(), refs_.end());
    const bool intra = refs.empty();

    // One prediction buffer for the whole frame; every macroblock
    // overwrites all 256 entries (flat DC for intra, predictBlockInto
    // for inter), so reuse is safe and saves an allocation per block.
    std::vector<double> pred(kMacroblock * kMacroblock);

    for (int by = 0; by < frame.height; by += kMacroblock) {
        for (int bx = 0; bx < frame.width; bx += kMacroblock) {
            // Prediction.
            if (intra) {
                std::fill(pred.begin(), pred.end(), 128.0);
            } else {
                const MotionResult mr =
                    searchMotion(frame, bx, by, refs, effort);
                stats.work_ops += mr.work_ops;
                predictBlockInto(refs[mr.reference], bx, by, mr.mv, pred);
                stats.bits += 12; // MV + reference signalling estimate.
            }

            // Residual coding: four 8x8 transform blocks.
            for (int sy = 0; sy < kMacroblock; sy += kBlock) {
                for (int sx = 0; sx < kMacroblock; sx += kBlock) {
                    ResidualBlock residual{};
                    for (int y = 0; y < kBlock; ++y) {
                        for (int x = 0; x < kBlock; ++x) {
                            const int px =
                                std::min(bx + sx + x, frame.width - 1);
                            const int py =
                                std::min(by + sy + y, frame.height - 1);
                            residual[y * kBlock + x] =
                                static_cast<double>(frame.at(px, py)) -
                                pred[static_cast<std::size_t>(sy + y) *
                                         kMacroblock + sx + x];
                        }
                    }
                    const ResidualBlock freq = forwardDct(residual);
                    const CoeffBlock q = quantize(freq, config_.qstep);
                    stats.bits += bitCost(q);
                    stats.work_ops += kDctOps;

                    const ResidualBlock rec_res =
                        inverseDct(dequantize(q, config_.qstep));
                    for (int y = 0; y < kBlock; ++y) {
                        for (int x = 0; x < kBlock; ++x) {
                            const int px = bx + sx + x;
                            const int py = by + sy + y;
                            if (px >= frame.width || py >= frame.height)
                                continue;
                            const double value =
                                pred[static_cast<std::size_t>(sy + y) *
                                         kMacroblock + sx + x] +
                                rec_res[y * kBlock + x];
                            recon.pixels[static_cast<std::size_t>(py) *
                                             frame.width + px] =
                                clampLuma(value);
                        }
                    }
                }
            }
            stats.work_ops += 64; // Per-macroblock bookkeeping.
        }
    }

    stats.psnr_db = qos::psnr(frame.pixels, recon.pixels);

    refs_.push_front(std::move(recon));
    while (refs_.size() > config_.max_refs)
        refs_.pop_back();
    return stats;
}

} // namespace powerdial::apps::videnc
