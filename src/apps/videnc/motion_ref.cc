/**
 * @file
 * Retained naive motion kernels — the pre-optimization SAD, diamond
 * search, and motion-compensated prediction, kept verbatim as the
 * bit-exactness oracle for the optimized kernels in motion.cc
 * (differential sweep in tests/test_kernel_equivalence.cc) and as the
 * "before" column of bench_roofline.
 */
#include "apps/videnc/motion.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace powerdial::apps::videnc::reference {
namespace {

int
clampi(int v, int lo, int hi)
{
    return std::max(lo, std::min(hi, v));
}

/** Integer-pel plane access with border clamping. */
double
pixelAt(const workload::Frame &ref, int x, int y)
{
    x = clampi(x, 0, ref.width - 1);
    y = clampi(y, 0, ref.height - 1);
    return static_cast<double>(ref.at(x, y));
}

} // namespace

std::uint64_t
blockSad(const workload::Frame &cur, int bx, int by,
         const workload::Frame &ref, MotionVector mv)
{
    double sad = 0.0;
    for (int y = 0; y < kMacroblock; ++y) {
        for (int x = 0; x < kMacroblock; ++x) {
            const double c = pixelAt(cur, bx + x, by + y);
            const double r = samplePlane(
                ref, (bx + x) * kSubpelScale + mv.x,
                (by + y) * kSubpelScale + mv.y);
            sad += std::abs(c - r);
        }
    }
    return static_cast<std::uint64_t>(sad);
}

MotionResult
searchMotion(const workload::Frame &cur, int bx, int by,
             const std::vector<workload::Frame> &references,
             const SearchParams &params)
{
    if (references.empty())
        throw std::invalid_argument("searchMotion: no reference frames");
    if (params.merange < 1 || params.refs < 1)
        throw std::invalid_argument("searchMotion: bad search params");

    constexpr std::uint64_t kSadOps = kMacroblock * kMacroblock;

    MotionResult best{};
    best.sad = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t work = 0;

    const int nrefs =
        std::min<int>(params.refs, static_cast<int>(references.size()));
    for (int r = 0; r < nrefs; ++r) {
        const auto &ref = references[static_cast<std::size_t>(r)];

        // Integer-pel diamond search from (0, 0), radius <= merange.
        MotionVector center{0, 0};
        std::uint64_t center_sad =
            reference::blockSad(cur, bx, by, ref, center);
        work += kSadOps;
        int step = 1;
        int travelled = 0;
        while (travelled < params.merange) {
            static constexpr int dx[] = {1, -1, 0, 0};
            static constexpr int dy[] = {0, 0, 1, -1};
            MotionVector improved = center;
            std::uint64_t improved_sad = center_sad;
            for (int d = 0; d < 4; ++d) {
                MotionVector cand{
                    center.x + dx[d] * step * kSubpelScale,
                    center.y + dy[d] * step * kSubpelScale};
                if (std::abs(cand.x) >
                        params.merange * kSubpelScale ||
                    std::abs(cand.y) >
                        params.merange * kSubpelScale) {
                    continue;
                }
                const std::uint64_t sad =
                    reference::blockSad(cur, bx, by, ref, cand);
                work += kSadOps;
                if (sad < improved_sad) {
                    improved_sad = sad;
                    improved = cand;
                }
            }
            if (improved.x == center.x && improved.y == center.y)
                break; // Local minimum at this step size.
            center = improved;
            center_sad = improved_sad;
            ++travelled;
        }

        // Sub-pixel refinement: half-pel first, then quarter-pel,
        // then iterative quarter-pel polish (subme-like rounds).
        for (int round = 0; round < params.subpel_rounds; ++round) {
            const int delta = round == 0 ? 2 : 1; // Half then quarter.
            static constexpr int dx8[] = {1, -1, 0, 0, 1, 1, -1, -1};
            static constexpr int dy8[] = {0, 0, 1, -1, 1, -1, 1, -1};
            MotionVector improved = center;
            std::uint64_t improved_sad = center_sad;
            for (int d = 0; d < 8; ++d) {
                const MotionVector cand{center.x + dx8[d] * delta,
                                        center.y + dy8[d] * delta};
                const std::uint64_t sad =
                    reference::blockSad(cur, bx, by, ref, cand);
                work += kSadOps;
                if (sad < improved_sad) {
                    improved_sad = sad;
                    improved = cand;
                }
            }
            if (improved.x == center.x && improved.y == center.y &&
                round > 0) {
                break; // Converged at finest precision.
            }
            center = improved;
            center_sad = improved_sad;
        }

        if (center_sad < best.sad) {
            best.sad = center_sad;
            best.mv = center;
            best.reference = static_cast<std::size_t>(r);
        }
    }
    best.work_ops = work;
    return best;
}

std::vector<double>
predictBlock(const workload::Frame &ref, int bx, int by, MotionVector mv)
{
    std::vector<double> pred(kMacroblock * kMacroblock);
    for (int y = 0; y < kMacroblock; ++y) {
        for (int x = 0; x < kMacroblock; ++x) {
            pred[static_cast<std::size_t>(y) * kMacroblock + x] =
                samplePlane(ref, (bx + x) * kSubpelScale + mv.x,
                            (by + y) * kSubpelScale + mv.y);
        }
    }
    return pred;
}

} // namespace powerdial::apps::videnc::reference
