/**
 * @file
 * Motion estimation: diamond search plus sub-pixel refinement.
 *
 * The analysis half of the from-scratch encoder standing in for x264
 * (paper section 4.2). The three x264 knobs map onto it directly:
 *
 *  - merange: bound on the motion search radius (diamond-search steps);
 *  - subme:   number of sub-pixel refinement rounds (half-pel, then
 *             quarter-pel, then iterative quarter-pel polishing);
 *  - ref:     number of reconstructed reference frames searched.
 *
 * x264 itself uses pattern searches rather than exhaustive search, so a
 * diamond search reproduces both the cost growth and the diminishing-
 * returns quality behaviour of the real knobs.
 *
 * The SAD kernel is optimized but bit-exact against the retained naive
 * implementation (namespace reference): integer-pel candidates inside
 * both frames take a pure uint8 path (every partial sum is an integer,
 * exactly representable in the reference's double accumulator), and
 * fractional candidates hoist the four bilinear weights — constant per
 * candidate vector — out of the pixel loop without changing a single
 * floating-point association. blockSadBounded additionally abandons a
 * candidate once its partial SAD can no longer beat the caller's best;
 * searchMotion's accept/reject decisions and all reported fields stay
 * bit-identical because a rejected candidate's exact SAD is never
 * observable. work_ops deliberately keeps counting the pixels a *full*
 * SAD visits — it is the knob-visible cost model every calibration
 * table and golden is built on, not a wall-clock measurement.
 */
#ifndef POWERDIAL_APPS_VIDENC_MOTION_H
#define POWERDIAL_APPS_VIDENC_MOTION_H

#include <cstdint>
#include <vector>

#include "workload/video_source.h"

namespace powerdial::apps::videnc {

/** Macroblock edge length. */
inline constexpr int kMacroblock = 16;

/** Sub-pel precision: motion vectors are in 1/4-pel units. */
inline constexpr int kSubpelScale = 4;

/** A motion vector in quarter-pel units. */
struct MotionVector
{
    int x = 0;
    int y = 0;
};

/** Result of a motion search for one macroblock. */
struct MotionResult
{
    MotionVector mv;          //!< Best vector, quarter-pel units.
    std::size_t reference;    //!< Index of the best reference frame.
    std::uint64_t sad;        //!< SAD at the best vector.
    std::uint64_t work_ops;   //!< Pixel operations spent searching.
};

/**
 * Sample a reference plane at quarter-pel position via bilinear
 * interpolation, clamping at the borders.
 *
 * @param ref Reference frame.
 * @param qx  X in quarter-pel units.
 * @param qy  Y in quarter-pel units.
 */
double samplePlane(const workload::Frame &ref, int qx, int qy);

/**
 * SAD between the macroblock of @p cur at (bx, by) and the reference
 * block at quarter-pel offset @p mv.
 */
std::uint64_t blockSad(const workload::Frame &cur, int bx, int by,
                       const workload::Frame &ref, MotionVector mv);

/**
 * SAD with an early-exit threshold. Contract: when the true SAD is
 * strictly below @p limit the exact value is returned; otherwise some
 * value >= @p limit is returned (the evaluation may stop early). A
 * caller that only keeps candidates with `sad < limit` therefore makes
 * bit-identical decisions to one calling blockSad.
 */
std::uint64_t blockSadBounded(const workload::Frame &cur, int bx, int by,
                              const workload::Frame &ref, MotionVector mv,
                              std::uint64_t limit);

/** Motion-search effort parameters (the encoder's control variables). */
struct SearchParams
{
    int merange = 16;     //!< Max search radius, integer pixels.
    int subpel_rounds = 6;//!< Sub-pel refinement rounds (0 = none).
    int refs = 5;         //!< Reference frames to search.
};

/**
 * Search for the best motion vector for the macroblock at (bx, by) of
 * @p cur over @p references (most recent first), with effort bounded
 * by @p params.
 */
MotionResult searchMotion(const workload::Frame &cur, int bx, int by,
                          const std::vector<workload::Frame> &references,
                          const SearchParams &params);

/**
 * Build the motion-compensated 16x16 prediction for (bx, by) from
 * @p ref at quarter-pel vector @p mv, raster order.
 */
std::vector<double> predictBlock(const workload::Frame &ref, int bx,
                                 int by, MotionVector mv);

/**
 * predictBlock into a caller-owned buffer (resized to 256), so a hot
 * caller — the encoder predicts every macroblock of every frame — can
 * reuse one allocation for a whole run.
 */
void predictBlockInto(const workload::Frame &ref, int bx, int by,
                      MotionVector mv, std::vector<double> &pred);

/**
 * Retained naive kernels (motion_ref.cc): the pre-optimization SAD,
 * search, and prediction, kept verbatim as the bit-exactness oracle
 * for the differential tests and bench_roofline's "before" column.
 */
namespace reference {
std::uint64_t blockSad(const workload::Frame &cur, int bx, int by,
                       const workload::Frame &ref, MotionVector mv);
MotionResult searchMotion(const workload::Frame &cur, int bx, int by,
                          const std::vector<workload::Frame> &references,
                          const SearchParams &params);
std::vector<double> predictBlock(const workload::Frame &ref, int bx,
                                 int by, MotionVector mv);
} // namespace reference

} // namespace powerdial::apps::videnc

#endif // POWERDIAL_APPS_VIDENC_MOTION_H
