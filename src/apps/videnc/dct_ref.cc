/**
 * @file
 * Retained naive 8x8 DCT — the pre-optimization implementation, kept
 * verbatim as the bit-exactness oracle for the optimized transforms in
 * dct.cc (differential sweep in tests/test_kernel_equivalence.cc) and
 * as the "before" column of bench_roofline.
 */
#include "apps/videnc/dct.h"

#include <cmath>

namespace powerdial::apps::videnc::reference {
namespace {

/** Cosine basis, computed once. basis[k][n] = c_k cos((2n+1)k pi / 16). */
const std::array<std::array<double, kBlock>, kBlock> &
dctBasis()
{
    static const auto basis = [] {
        std::array<std::array<double, kBlock>, kBlock> b{};
        for (int k = 0; k < kBlock; ++k) {
            const double ck = k == 0 ? std::sqrt(1.0 / kBlock)
                                     : std::sqrt(2.0 / kBlock);
            for (int n = 0; n < kBlock; ++n) {
                b[k][n] = ck * std::cos((2.0 * n + 1.0) * k * M_PI /
                                        (2.0 * kBlock));
            }
        }
        return b;
    }();
    return basis;
}

} // namespace

ResidualBlock
forwardDct(const ResidualBlock &spatial)
{
    const auto &basis = dctBasis();
    ResidualBlock rows{};
    // 1-D DCT along rows.
    for (int y = 0; y < kBlock; ++y) {
        for (int k = 0; k < kBlock; ++k) {
            double acc = 0.0;
            for (int x = 0; x < kBlock; ++x)
                acc += basis[k][x] * spatial[y * kBlock + x];
            rows[y * kBlock + k] = acc;
        }
    }
    // 1-D DCT along columns.
    ResidualBlock out{};
    for (int k = 0; k < kBlock; ++k) {
        for (int x = 0; x < kBlock; ++x) {
            double acc = 0.0;
            for (int y = 0; y < kBlock; ++y)
                acc += basis[k][y] * rows[y * kBlock + x];
            out[k * kBlock + x] = acc;
        }
    }
    return out;
}

ResidualBlock
inverseDct(const ResidualBlock &freq)
{
    const auto &basis = dctBasis();
    ResidualBlock cols{};
    for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
            double acc = 0.0;
            for (int k = 0; k < kBlock; ++k)
                acc += basis[k][y] * freq[k * kBlock + x];
            cols[y * kBlock + x] = acc;
        }
    }
    ResidualBlock out{};
    for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
            double acc = 0.0;
            for (int k = 0; k < kBlock; ++k)
                acc += basis[k][x] * cols[y * kBlock + k];
            out[y * kBlock + x] = acc;
        }
    }
    return out;
}

} // namespace powerdial::apps::videnc::reference
