#include "apps/videnc/dct.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::apps::videnc {
namespace {

/**
 * Cosine basis, computed once. b[k][n] = c_k cos((2n+1)k pi / 16);
 * bt is the transpose, bt[n][k] = b[k][n], used by the fast_math dot
 * products that want a column of b contiguously.
 */
struct DctBasis
{
    std::array<std::array<double, kBlock>, kBlock> b{};
    std::array<std::array<double, kBlock>, kBlock> bt{};
};

const DctBasis &
dctBasis()
{
    static const DctBasis basis = [] {
        DctBasis out;
        for (int k = 0; k < kBlock; ++k) {
            const double ck = k == 0 ? std::sqrt(1.0 / kBlock)
                                     : std::sqrt(2.0 / kBlock);
            for (int n = 0; n < kBlock; ++n) {
                out.b[k][n] = ck * std::cos((2.0 * n + 1.0) * k * M_PI /
                                            (2.0 * kBlock));
                out.bt[n][k] = out.b[k][n];
            }
        }
        return out;
    }();
    return basis;
}

/**
 * Two-accumulator 8-tap dot product: reassociates the reduction, so it
 * is only reachable through KernelTuning::fast_math.
 */
inline double
dot8Fast(const double *w, const double *v)
{
    double even = 0.0;
    double odd = 0.0;
    for (int i = 0; i < kBlock; i += 2) {
        even += w[i] * v[i];
        odd += w[i + 1] * v[i + 1];
    }
    return even + odd;
}

/**
 * Forward transform, default (bit-exact) path.
 *
 * Deliberately the same separable loop nest as the retained reference:
 * contiguous stores per pass let the compiler auto-vectorize each 1-D
 * pass, and measurements on this project's baseline build (-O3, no
 * -march, so SSE2 doubles only) showed every "hand-optimized" bit-exact
 * reshaping losing to it — an explicit broadcast-multiply form with 8
 * lane accumulators ran ~2x slower, and transposing the intermediate
 * (either fused into pass 1's stores or as a separate 8x8 transpose)
 * cost more than the contiguous pass-2 loads recovered. The transform
 * is kept at parity and regression-guarded by bench_roofline's dct
 * ceiling; the real headroom here needs reassociation, which is what
 * the opt-in fast_math path buys.
 */
ResidualBlock
forwardDctExact(const ResidualBlock &spatial)
{
    const DctBasis &basis = dctBasis();
    ResidualBlock rows{};
    for (int y = 0; y < kBlock; ++y) {
        for (int k = 0; k < kBlock; ++k) {
            double acc = 0.0;
            for (int x = 0; x < kBlock; ++x)
                acc += basis.b[k][x] *
                       spatial[static_cast<std::size_t>(y) * kBlock + x];
            rows[static_cast<std::size_t>(y) * kBlock + k] = acc;
        }
    }
    ResidualBlock out{};
    for (int k = 0; k < kBlock; ++k) {
        for (int x = 0; x < kBlock; ++x) {
            double acc = 0.0;
            for (int y = 0; y < kBlock; ++y)
                acc += basis.b[k][y] *
                       rows[static_cast<std::size_t>(y) * kBlock + x];
            out[static_cast<std::size_t>(k) * kBlock + x] = acc;
        }
    }
    return out;
}

/** Inverse transform, default (bit-exact) path — see forwardDctExact
 *  for why this mirrors the reference nest. */
ResidualBlock
inverseDctExact(const ResidualBlock &freq)
{
    const DctBasis &basis = dctBasis();
    ResidualBlock cols{};
    for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
            double acc = 0.0;
            for (int k = 0; k < kBlock; ++k)
                acc += basis.b[k][y] *
                       freq[static_cast<std::size_t>(k) * kBlock + x];
            cols[static_cast<std::size_t>(y) * kBlock + x] = acc;
        }
    }
    ResidualBlock out{};
    for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
            double acc = 0.0;
            for (int k = 0; k < kBlock; ++k)
                acc += basis.b[k][x] *
                       cols[static_cast<std::size_t>(y) * kBlock + k];
            out[static_cast<std::size_t>(y) * kBlock + x] = acc;
        }
    }
    return out;
}

/** Forward transform, fast_math path: the reference loop nest with a
 *  two-accumulator (reassociating) dot product. */
ResidualBlock
forwardDctFast(const ResidualBlock &spatial)
{
    const DctBasis &basis = dctBasis();
    ResidualBlock rows{};
    for (int y = 0; y < kBlock; ++y) {
        const double *row = &spatial[static_cast<std::size_t>(y) * kBlock];
        for (int k = 0; k < kBlock; ++k)
            rows[static_cast<std::size_t>(y) * kBlock + k] =
                dot8Fast(basis.b[k].data(), row);
    }
    ResidualBlock out{};
    for (int k2 = 0; k2 < kBlock; ++k2) {
        for (int k = 0; k < kBlock; ++k) {
            double col[kBlock];
            for (int y = 0; y < kBlock; ++y)
                col[y] = rows[static_cast<std::size_t>(y) * kBlock + k];
            out[static_cast<std::size_t>(k2) * kBlock + k] =
                dot8Fast(basis.b[k2].data(), col);
        }
    }
    return out;
}

/** Inverse transform, fast_math path. */
ResidualBlock
inverseDctFast(const ResidualBlock &freq)
{
    const DctBasis &basis = dctBasis();
    ResidualBlock cols{};
    for (int y = 0; y < kBlock; ++y) {
        for (int x = 0; x < kBlock; ++x) {
            double col[kBlock];
            for (int k = 0; k < kBlock; ++k)
                col[k] = freq[static_cast<std::size_t>(k) * kBlock + x];
            cols[static_cast<std::size_t>(y) * kBlock + x] =
                dot8Fast(basis.bt[y].data(), col);
        }
    }
    ResidualBlock out{};
    for (int y = 0; y < kBlock; ++y) {
        const double *c = &cols[static_cast<std::size_t>(y) * kBlock];
        for (int x = 0; x < kBlock; ++x)
            out[static_cast<std::size_t>(y) * kBlock + x] =
                dot8Fast(basis.bt[x].data(), c);
    }
    return out;
}

} // namespace

ResidualBlock
forwardDct(const ResidualBlock &spatial, const KernelTuning &tuning)
{
    return tuning.fast_math ? forwardDctFast(spatial)
                            : forwardDctExact(spatial);
}

ResidualBlock
inverseDct(const ResidualBlock &freq, const KernelTuning &tuning)
{
    return tuning.fast_math ? inverseDctFast(freq)
                            : inverseDctExact(freq);
}

CoeffBlock
quantize(const ResidualBlock &freq, double qstep)
{
    if (qstep <= 0.0)
        throw std::invalid_argument("quantize: non-positive step");
    CoeffBlock out{};
    for (std::size_t i = 0; i < freq.size(); ++i)
        out[i] = static_cast<int>(std::lround(freq[i] / qstep));
    return out;
}

ResidualBlock
dequantize(const CoeffBlock &coeffs, double qstep)
{
    ResidualBlock out{};
    for (std::size_t i = 0; i < coeffs.size(); ++i)
        out[i] = coeffs[i] * qstep;
    return out;
}

std::uint64_t
bitCost(const CoeffBlock &coeffs)
{
    std::uint64_t bits = 4; // Per-block significance overhead.
    for (const int c : coeffs) {
        if (c == 0)
            continue;
        const auto mag = static_cast<unsigned>(std::abs(c));
        unsigned lg = 0;
        while ((1u << (lg + 1)) <= mag + 1)
            ++lg;
        bits += 2ULL * lg + 1 + 1; // Exp-Golomb magnitude + sign.
    }
    return bits;
}

} // namespace powerdial::apps::videnc
