#include "apps/videnc/motion.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace powerdial::apps::videnc {
namespace {

int
clampi(int v, int lo, int hi)
{
    return std::max(lo, std::min(hi, v));
}

/** Integer-pel plane access with border clamping. */
double
pixelAt(const workload::Frame &ref, int x, int y)
{
    x = clampi(x, 0, ref.width - 1);
    y = clampi(y, 0, ref.height - 1);
    return static_cast<double>(ref.at(x, y));
}

/** True when the w x h window at (x0, y0) lies entirely inside @p f. */
bool
windowInside(const workload::Frame &f, int x0, int y0, int w, int h)
{
    return x0 >= 0 && y0 >= 0 && x0 + w <= f.width && y0 + h <= f.height;
}

/**
 * The four bilinear weights of a quarter-pel phase (fxq, fyq), each
 * computed with exactly the products reference::blockSad evaluates per
 * pixel — (1-fx)*(1-fy), fx*(1-fy), (1-fx)*fy, fx*fy — so hoisting
 * them out of the pixel loop changes no floating-point operation.
 */
struct BilinearWeights
{
    double w00, w10, w01, w11;

    BilinearWeights(int fxq, int fyq)
    {
        const double fx = static_cast<double>(fxq) / kSubpelScale;
        const double fy = static_cast<double>(fyq) / kSubpelScale;
        w00 = (1.0 - fx) * (1.0 - fy);
        w10 = fx * (1.0 - fy);
        w01 = (1.0 - fx) * fy;
        w11 = fx * fy;
    }
};

} // namespace

double
samplePlane(const workload::Frame &ref, int qx, int qy)
{
    const int ix = qx >> 2;
    const int iy = qy >> 2;
    const double fx = static_cast<double>(qx & 3) / kSubpelScale;
    const double fy = static_cast<double>(qy & 3) / kSubpelScale;
    const double p00 = pixelAt(ref, ix, iy);
    const double p10 = pixelAt(ref, ix + 1, iy);
    const double p01 = pixelAt(ref, ix, iy + 1);
    const double p11 = pixelAt(ref, ix + 1, iy + 1);
    return (1.0 - fx) * (1.0 - fy) * p00 + fx * (1.0 - fy) * p10 +
           (1.0 - fx) * fy * p01 + fx * fy * p11;
}

std::uint64_t
blockSadBounded(const workload::Frame &cur, int bx, int by,
                const workload::Frame &ref, MotionVector mv,
                std::uint64_t limit)
{
    // (bx+x)*4 + mv.x has integer part bx + x + (mv.x >> 2) and
    // constant quarter-pel phase mv.x & 3 (likewise for y), so the
    // reference's per-pixel >>2 / &3 decomposition is hoisted here.
    const int ix0 = bx + (mv.x >> 2);
    const int iy0 = by + (mv.y >> 2);
    const int fxq = mv.x & 3;
    const int fyq = mv.y & 3;
    const bool cur_in = windowInside(cur, bx, by, kMacroblock, kMacroblock);

    if (fxq == 0 && fyq == 0) {
        // Integer-pel: bilinear interpolation degenerates to p00 and
        // every |c - r| is a small integer, so the reference's double
        // accumulator is exact and equal to this integer sum.
        std::uint64_t sad = 0;
        if (cur_in && windowInside(ref, ix0, iy0, kMacroblock, kMacroblock)) {
            for (int y = 0; y < kMacroblock; ++y) {
                const std::uint8_t *c =
                    &cur.pixels[static_cast<std::size_t>(by + y) *
                                    static_cast<std::size_t>(cur.width) +
                                static_cast<std::size_t>(bx)];
                const std::uint8_t *r =
                    &ref.pixels[static_cast<std::size_t>(iy0 + y) *
                                    static_cast<std::size_t>(ref.width) +
                                static_cast<std::size_t>(ix0)];
                unsigned row = 0;
                for (int x = 0; x < kMacroblock; ++x)
                    row += static_cast<unsigned>(
                        std::abs(static_cast<int>(c[x]) -
                                 static_cast<int>(r[x])));
                sad += row;
                if (sad >= limit)
                    return sad;
            }
        } else {
            for (int y = 0; y < kMacroblock; ++y) {
                unsigned row = 0;
                for (int x = 0; x < kMacroblock; ++x) {
                    const int c = static_cast<int>(
                        pixelAt(cur, bx + x, by + y));
                    const int r = static_cast<int>(
                        pixelAt(ref, ix0 + x, iy0 + y));
                    row += static_cast<unsigned>(std::abs(c - r));
                }
                sad += row;
                if (sad >= limit)
                    return sad;
            }
        }
        return sad;
    }

    // Fractional phase: the four bilinear weights are constant across
    // the block; each pixel's interpolation below performs the same
    // multiplies and additions, in the same order, as samplePlane.
    const BilinearWeights w(fxq, fyq);
    double sad = 0.0;
    if (cur_in &&
        windowInside(ref, ix0, iy0, kMacroblock + 1, kMacroblock + 1)) {
        for (int y = 0; y < kMacroblock; ++y) {
            const std::uint8_t *c =
                &cur.pixels[static_cast<std::size_t>(by + y) *
                                static_cast<std::size_t>(cur.width) +
                            static_cast<std::size_t>(bx)];
            const std::uint8_t *r0 =
                &ref.pixels[static_cast<std::size_t>(iy0 + y) *
                                static_cast<std::size_t>(ref.width) +
                            static_cast<std::size_t>(ix0)];
            const std::uint8_t *r1 = r0 + ref.width;
            for (int x = 0; x < kMacroblock; ++x) {
                const double p00 = static_cast<double>(r0[x]);
                const double p10 = static_cast<double>(r0[x + 1]);
                const double p01 = static_cast<double>(r1[x]);
                const double p11 = static_cast<double>(r1[x + 1]);
                const double pr = w.w00 * p00 + w.w10 * p10 +
                                  w.w01 * p01 + w.w11 * p11;
                sad += std::abs(static_cast<double>(c[x]) - pr);
            }
            if (static_cast<std::uint64_t>(sad) >= limit)
                return static_cast<std::uint64_t>(sad);
        }
    } else {
        for (int y = 0; y < kMacroblock; ++y) {
            for (int x = 0; x < kMacroblock; ++x) {
                const double p00 = pixelAt(ref, ix0 + x, iy0 + y);
                const double p10 = pixelAt(ref, ix0 + x + 1, iy0 + y);
                const double p01 = pixelAt(ref, ix0 + x, iy0 + y + 1);
                const double p11 = pixelAt(ref, ix0 + x + 1, iy0 + y + 1);
                const double pr = w.w00 * p00 + w.w10 * p10 +
                                  w.w01 * p01 + w.w11 * p11;
                const double c = pixelAt(cur, bx + x, by + y);
                sad += std::abs(c - pr);
            }
            if (static_cast<std::uint64_t>(sad) >= limit)
                return static_cast<std::uint64_t>(sad);
        }
    }
    return static_cast<std::uint64_t>(sad);
}

std::uint64_t
blockSad(const workload::Frame &cur, int bx, int by,
         const workload::Frame &ref, MotionVector mv)
{
    return blockSadBounded(cur, bx, by, ref, mv,
                           std::numeric_limits<std::uint64_t>::max());
}

MotionResult
searchMotion(const workload::Frame &cur, int bx, int by,
             const std::vector<workload::Frame> &references,
             const SearchParams &params)
{
    if (references.empty())
        throw std::invalid_argument("searchMotion: no reference frames");
    if (params.merange < 1 || params.refs < 1)
        throw std::invalid_argument("searchMotion: bad search params");

    constexpr std::uint64_t kSadOps = kMacroblock * kMacroblock;

    MotionResult best{};
    best.sad = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t work = 0;

    const int nrefs =
        std::min<int>(params.refs, static_cast<int>(references.size()));
    for (int r = 0; r < nrefs; ++r) {
        const auto &ref = references[static_cast<std::size_t>(r)];

        // Integer-pel diamond search from (0, 0), radius <= merange.
        // Candidates are scored with the bounded SAD: a candidate that
        // cannot beat improved_sad may return early, but one that does
        // beat it returns its exact SAD, so accept/reject decisions —
        // and every recorded SAD — match reference::searchMotion.
        // work_ops stays the full-SAD pixel count: it is the cost model
        // the knob calibrations are built on, not a time measurement.
        MotionVector center{0, 0};
        std::uint64_t center_sad = blockSad(cur, bx, by, ref, center);
        work += kSadOps;
        int step = 1;
        int travelled = 0;
        while (travelled < params.merange) {
            static constexpr int dx[] = {1, -1, 0, 0};
            static constexpr int dy[] = {0, 0, 1, -1};
            MotionVector improved = center;
            std::uint64_t improved_sad = center_sad;
            for (int d = 0; d < 4; ++d) {
                MotionVector cand{
                    center.x + dx[d] * step * kSubpelScale,
                    center.y + dy[d] * step * kSubpelScale};
                if (std::abs(cand.x) >
                        params.merange * kSubpelScale ||
                    std::abs(cand.y) >
                        params.merange * kSubpelScale) {
                    continue;
                }
                const std::uint64_t sad = blockSadBounded(
                    cur, bx, by, ref, cand, improved_sad);
                work += kSadOps;
                if (sad < improved_sad) {
                    improved_sad = sad;
                    improved = cand;
                }
            }
            if (improved.x == center.x && improved.y == center.y)
                break; // Local minimum at this step size.
            center = improved;
            center_sad = improved_sad;
            ++travelled;
        }

        // Sub-pixel refinement: half-pel first, then quarter-pel,
        // then iterative quarter-pel polish (subme-like rounds).
        for (int round = 0; round < params.subpel_rounds; ++round) {
            const int delta = round == 0 ? 2 : 1; // Half then quarter.
            static constexpr int dx8[] = {1, -1, 0, 0, 1, 1, -1, -1};
            static constexpr int dy8[] = {0, 0, 1, -1, 1, -1, 1, -1};
            MotionVector improved = center;
            std::uint64_t improved_sad = center_sad;
            for (int d = 0; d < 8; ++d) {
                const MotionVector cand{center.x + dx8[d] * delta,
                                        center.y + dy8[d] * delta};
                const std::uint64_t sad = blockSadBounded(
                    cur, bx, by, ref, cand, improved_sad);
                work += kSadOps;
                if (sad < improved_sad) {
                    improved_sad = sad;
                    improved = cand;
                }
            }
            if (improved.x == center.x && improved.y == center.y &&
                round > 0) {
                break; // Converged at finest precision.
            }
            center = improved;
            center_sad = improved_sad;
        }

        if (center_sad < best.sad) {
            best.sad = center_sad;
            best.mv = center;
            best.reference = static_cast<std::size_t>(r);
        }
    }
    best.work_ops = work;
    return best;
}

void
predictBlockInto(const workload::Frame &ref, int bx, int by,
                 MotionVector mv, std::vector<double> &pred)
{
    pred.resize(kMacroblock * kMacroblock);
    const int ix0 = bx + (mv.x >> 2);
    const int iy0 = by + (mv.y >> 2);
    const int fxq = mv.x & 3;
    const int fyq = mv.y & 3;

    if (fxq == 0 && fyq == 0) {
        if (windowInside(ref, ix0, iy0, kMacroblock, kMacroblock)) {
            for (int y = 0; y < kMacroblock; ++y) {
                const std::uint8_t *r =
                    &ref.pixels[static_cast<std::size_t>(iy0 + y) *
                                    static_cast<std::size_t>(ref.width) +
                                static_cast<std::size_t>(ix0)];
                double *p =
                    &pred[static_cast<std::size_t>(y) * kMacroblock];
                for (int x = 0; x < kMacroblock; ++x)
                    p[x] = static_cast<double>(r[x]);
            }
        } else {
            for (int y = 0; y < kMacroblock; ++y)
                for (int x = 0; x < kMacroblock; ++x)
                    pred[static_cast<std::size_t>(y) * kMacroblock + x] =
                        pixelAt(ref, ix0 + x, iy0 + y);
        }
        return;
    }

    const BilinearWeights w(fxq, fyq);
    if (windowInside(ref, ix0, iy0, kMacroblock + 1, kMacroblock + 1)) {
        for (int y = 0; y < kMacroblock; ++y) {
            const std::uint8_t *r0 =
                &ref.pixels[static_cast<std::size_t>(iy0 + y) *
                                static_cast<std::size_t>(ref.width) +
                            static_cast<std::size_t>(ix0)];
            const std::uint8_t *r1 = r0 + ref.width;
            double *p = &pred[static_cast<std::size_t>(y) * kMacroblock];
            for (int x = 0; x < kMacroblock; ++x) {
                const double p00 = static_cast<double>(r0[x]);
                const double p10 = static_cast<double>(r0[x + 1]);
                const double p01 = static_cast<double>(r1[x]);
                const double p11 = static_cast<double>(r1[x + 1]);
                p[x] = w.w00 * p00 + w.w10 * p10 + w.w01 * p01 +
                       w.w11 * p11;
            }
        }
    } else {
        for (int y = 0; y < kMacroblock; ++y) {
            for (int x = 0; x < kMacroblock; ++x) {
                const double p00 = pixelAt(ref, ix0 + x, iy0 + y);
                const double p10 = pixelAt(ref, ix0 + x + 1, iy0 + y);
                const double p01 = pixelAt(ref, ix0 + x, iy0 + y + 1);
                const double p11 = pixelAt(ref, ix0 + x + 1, iy0 + y + 1);
                pred[static_cast<std::size_t>(y) * kMacroblock + x] =
                    w.w00 * p00 + w.w10 * p10 + w.w01 * p01 + w.w11 * p11;
            }
        }
    }
}

std::vector<double>
predictBlock(const workload::Frame &ref, int bx, int by, MotionVector mv)
{
    std::vector<double> pred;
    predictBlockInto(ref, bx, by, mv, pred);
    return pred;
}

} // namespace powerdial::apps::videnc
