/**
 * @file
 * The block video encoder: motion-compensated prediction + transform
 * residual coding + in-loop reconstruction.
 *
 * Per frame, for each 16x16 macroblock: motion-search the reconstructed
 * reference frames (like any closed-loop encoder), predict, transform
 * and quantise the residual as four 8x8 DCT blocks, estimate the coded
 * bits, reconstruct, and track PSNR. Frame 0 is coded intra against a
 * flat predictor.
 */
#ifndef POWERDIAL_APPS_VIDENC_ENCODER_H
#define POWERDIAL_APPS_VIDENC_ENCODER_H

#include <cstdint>
#include <deque>
#include <vector>

#include "apps/videnc/dct.h"
#include "apps/videnc/motion.h"

namespace powerdial::apps::videnc {

/** Encoder configuration beyond the dynamic knobs. */
struct EncoderConfig
{
    double qstep = 8.0;       //!< Quantisation step (rate/quality point).
    std::size_t max_refs = 5; //!< Reference frames kept in the DPB.
};

/** Result of encoding one frame. */
struct FrameStats
{
    std::uint64_t bits = 0;     //!< Estimated coded bits.
    double psnr_db = 0.0;       //!< Reconstruction PSNR vs the source.
    std::uint64_t work_ops = 0; //!< Arithmetic operations spent.
};

/** A stateful single-pass encoder. */
class Encoder
{
  public:
    explicit Encoder(const EncoderConfig &config = {});

    /** Reset all encoder state (start of a new clip). */
    void reset();

    /**
     * Encode @p frame with the given motion-search effort and return
     * its statistics. Maintains the reconstructed reference list.
     */
    FrameStats encodeFrame(const workload::Frame &frame,
                           const SearchParams &effort);

    /** Reconstructed reference frames, most recent first. */
    const std::deque<workload::Frame> &references() const { return refs_; }

  private:
    EncoderConfig config_;
    std::deque<workload::Frame> refs_;
};

} // namespace powerdial::apps::videnc

#endif // POWERDIAL_APPS_VIDENC_ENCODER_H
