/**
 * @file
 * Retained naive SpMV row kernel — the pre-optimization per-entry
 * implementation (by_magnitude indirection, a quantize call per
 * operand), kept verbatim as the bit-exactness oracle for rowDot
 * (differential sweep in tests/test_kernel_equivalence.cc) and as the
 * "before" column of bench_roofline.
 */
#include "apps/spmv/spmv_kernel.h"

namespace powerdial::apps::spmv::reference {

double
rowDot(const SpmvRow &row, const std::vector<double> &x, std::size_t kept,
       int bits)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < kept; ++i) {
        const std::size_t e = row.by_magnitude[i];
        acc += quantizeValue(row.values[e], bits) *
            quantizeValue(x[row.cols[e]], bits);
    }
    return acc;
}

} // namespace powerdial::apps::spmv::reference
