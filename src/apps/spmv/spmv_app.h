/**
 * @file
 * Sparse matrix-vector multiply as a PowerDial application — the fifth
 * app domain (scientific kernels) through the knob pipeline.
 *
 * The kernel computes y = A x over a synthetic banded sparse matrix,
 * one row per main-loop unit. Knobs: `bits` (arithmetic precision of
 * the multiply-accumulate: 8/16-bit quantised, fp32, fp64) and `keep`
 * (nonzero compression: the fraction of each row's entries retained,
 * smallest magnitudes dropped first). Full precision over all nonzeros
 * — {64, 1.0} — is the baseline; either knob trades result fidelity
 * for proportionally fewer or cheaper multiply-accumulates. The QoS
 * metric is the distortion of block sums of the result vector.
 */
#ifndef POWERDIAL_APPS_SPMV_APP_H
#define POWERDIAL_APPS_SPMV_APP_H

#include <cstdint>
#include <vector>

#include "apps/spmv/spmv_kernel.h"
#include "core/app.h"

namespace powerdial::apps::spmv {

/** Benchmark sizing. */
struct SpmvConfig
{
    /** Precision of the multiply-accumulate, ascending cost. */
    std::vector<double> bits_values = {8, 16, 32, 64};
    /** Fraction of each row's nonzeros retained, ascending cost. */
    std::vector<double> keep_values = {0.25, 0.5, 0.75, 1.0};
    std::size_t rows = 96;       //!< Square matrix dimension.
    std::size_t band = 24;       //!< Half-bandwidth of the sparsity.
    double fill = 0.5;           //!< Nonzero density inside the band.
    std::size_t inputs = 8;      //!< Dense input vectors to synthesise.
    std::size_t blocks = 4;      //!< Output-abstraction block sums.
    std::uint64_t seed = 0x5937C001;
};

/** PowerDial App implementation for the SpMV kernel. */
class SpmvApp final : public core::App
{
  public:
    explicit SpmvApp(const SpmvConfig &config = {});

    std::string name() const override { return "spmv"; }
    std::unique_ptr<core::App> clone() const override;
    const core::KnobSpace &knobSpace() const override { return space_; }
    std::size_t defaultCombination() const override;
    void configure(const std::vector<double> &params) override;
    void traceRun(influence::TraceRun &trace,
                  const std::vector<double> &params) override;
    void bindControlVariables(core::KnobTable &table) override;
    std::size_t inputCount() const override;
    std::vector<std::size_t> trainingInputs() const override;
    std::vector<std::size_t> productionInputs() const override;
    void loadInput(std::size_t index) override;
    std::size_t unitCount() const override;
    void processUnit(std::size_t unit, sim::Machine &machine) override;
    qos::OutputAbstraction output() const override;

    /** Current precision (control variable; for tests). */
    int bits() const { return bits_; }
    /** Current retained-nonzero fraction (control variable). */
    double keepFraction() const { return keep_; }

  private:
    /** Nonzeros of row @p row that survive the current keep knob. */
    std::size_t keptOf(std::size_t row) const;

    SpmvConfig config_;
    core::KnobSpace space_;
    CsrMatrix matrix_; //!< Flattened SoA, rows in magnitude order.
    std::vector<std::vector<double>> vectors_; //!< Input vectors.

    // Control variables, derived from {bits, keep} at init.
    int bits_ = 64;
    double keep_ = 1.0;

    // Per-run state.
    std::size_t current_input_ = 0;
    std::vector<double> result_;
};

} // namespace powerdial::apps::spmv

#endif // POWERDIAL_APPS_SPMV_APP_H
