#include "apps/spmv/spmv_kernel.h"

#include <algorithm>
#include <cmath>

#include "workload/rng.h"

namespace powerdial::apps::spmv {

std::vector<SpmvRow>
makeBandedRows(std::size_t rows, std::size_t band, double fill,
               std::uint64_t seed)
{
    workload::Rng rng(seed);
    std::vector<SpmvRow> matrix(rows);
    for (std::size_t r = 0; r < rows; ++r) {
        SpmvRow &row = matrix[r];
        const std::size_t lo = r >= band ? r - band : 0;
        const std::size_t hi = std::min(rows - 1, r + band);
        for (std::size_t c = lo; c <= hi; ++c) {
            if (c != r && rng.uniform() >= fill)
                continue;
            row.cols.push_back(c);
            row.values.push_back(0.1 + 0.9 * rng.uniform());
        }
        row.by_magnitude.resize(row.values.size());
        for (std::size_t i = 0; i < row.values.size(); ++i)
            row.by_magnitude[i] = i;
        std::sort(row.by_magnitude.begin(), row.by_magnitude.end(),
                  [&row](std::size_t a, std::size_t b) {
                      const double ma = std::abs(row.values[a]);
                      const double mb = std::abs(row.values[b]);
                      if (ma != mb)
                          return ma > mb;
                      return a < b;
                  });
    }
    return matrix;
}

CsrMatrix
CsrMatrix::fromRows(const std::vector<SpmvRow> &rows)
{
    CsrMatrix m;
    std::size_t nnz = 0;
    for (const auto &row : rows)
        nnz += row.values.size();
    m.row_ptr.reserve(rows.size() + 1);
    m.cols.reserve(nnz);
    m.values.reserve(nnz);
    m.row_ptr.push_back(0);
    for (const auto &row : rows) {
        for (const std::size_t e : row.by_magnitude) {
            m.cols.push_back(static_cast<std::uint32_t>(row.cols[e]));
            m.values.push_back(row.values[e]);
        }
        m.row_ptr.push_back(m.values.size());
    }
    return m;
}

double
quantizeValue(double v, int bits)
{
    if (bits >= 64)
        return v;
    if (bits == 32)
        return static_cast<double>(static_cast<float>(v));
    const double scale = std::ldexp(1.0, bits - 1);
    return std::round(v * scale) / scale;
}

double
rowDot(const CsrMatrix &m, std::size_t row, const std::vector<double> &x,
       std::size_t kept, int bits)
{
    const std::size_t begin = m.row_ptr[row];
    const std::size_t end = begin + kept;
    const std::uint32_t *cols = m.cols.data();
    const double *vals = m.values.data();
    const double *xv = x.data();
    double acc = 0.0;
    // Each branch performs exactly the reference's per-entry rounding
    // and the same accumulation order; only the dispatch on the
    // precision class and the fixed-point scale are hoisted.
    if (bits >= 64) {
        for (std::size_t k = begin; k < end; ++k)
            acc += vals[k] * xv[cols[k]];
    } else if (bits == 32) {
        for (std::size_t k = begin; k < end; ++k)
            acc += static_cast<double>(static_cast<float>(vals[k])) *
                static_cast<double>(static_cast<float>(xv[cols[k]]));
    } else {
        const double scale = std::ldexp(1.0, bits - 1);
        for (std::size_t k = begin; k < end; ++k)
            acc += (std::round(vals[k] * scale) / scale) *
                (std::round(xv[cols[k]] * scale) / scale);
    }
    return acc;
}

} // namespace powerdial::apps::spmv
