/**
 * @file
 * SpMV kernel layer: matrix construction, precision quantisation, and
 * the per-row dot product, separated from the App plumbing so the
 * kernel can be benchmarked and differentially tested on its own.
 *
 * The app's compute representation is a single flattened CSR-style
 * structure-of-arrays (CsrMatrix) instead of a vector of per-row
 * AoS rows: one row_ptr array plus contiguous cols/values streams,
 * with each row's entries pre-permuted into the keep knob's magnitude
 * order so compression is a prefix truncation with no per-entry
 * indirection. rowDot specialises its inner loop per precision class
 * (fp64 passthrough / fp32 round-trip / fixed-point grid with the
 * scale hoisted); every specialisation performs the reference's
 * floating-point operations in the reference's order, so results are
 * bit-exact (pinned by tests/test_kernel_equivalence.cc).
 */
#ifndef POWERDIAL_APPS_SPMV_SPMV_KERNEL_H
#define POWERDIAL_APPS_SPMV_SPMV_KERNEL_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace powerdial::apps::spmv {

/** One CSR row: column indices and values, plus the magnitude order
 *  the keep knob truncates along. The build-time representation; the
 *  compute path flattens a row set into a CsrMatrix. */
struct SpmvRow
{
    std::vector<std::size_t> cols;
    std::vector<double> values;
    /** Entry positions ordered by |value| descending (index ascending
     *  on ties) — the first ceil(keep * nnz) survive compression. */
    std::vector<std::size_t> by_magnitude;
};

/**
 * Synthesise the banded sparse matrix rows: diagonal always present,
 * off-band entries kept with probability @p fill, positive values
 * bounded away from zero. Deterministic in @p seed.
 */
std::vector<SpmvRow> makeBandedRows(std::size_t rows, std::size_t band,
                                    double fill, std::uint64_t seed);

/**
 * Flattened structure-of-arrays sparse matrix. Within each row the
 * entries are stored in by_magnitude order, so "the kept prefix" of a
 * row is a contiguous slice of cols/values.
 */
struct CsrMatrix
{
    std::vector<std::size_t> row_ptr;  //!< Size rows+1; row r spans
                                       //!< [row_ptr[r], row_ptr[r+1]).
    std::vector<std::uint32_t> cols;
    std::vector<double> values;

    std::size_t rowCount() const { return row_ptr.size() - 1; }
    std::size_t nnzOf(std::size_t row) const
    {
        return row_ptr[row + 1] - row_ptr[row];
    }

    /** Flatten @p rows, permuting each row into magnitude order. */
    static CsrMatrix fromRows(const std::vector<SpmvRow> &rows);
};

/** Round @p v to @p bits of precision; 64 is exact, 32 is IEEE
 *  single, narrower widths snap to a fixed-point grid. */
double quantizeValue(double v, int bits);

/**
 * Dot product of row @p row's kept prefix (@p kept entries, magnitude
 * order) with @p x, both operands quantised to @p bits.
 */
double rowDot(const CsrMatrix &m, std::size_t row,
              const std::vector<double> &x, std::size_t kept, int bits);

/**
 * Retained naive row kernel (spmv_kernel_ref.cc): per-entry
 * by_magnitude indirection with a quantize call per operand, kept
 * verbatim as the bit-exactness oracle for rowDot and the "before"
 * column of bench_roofline.
 */
namespace reference {
double rowDot(const SpmvRow &row, const std::vector<double> &x,
              std::size_t kept, int bits);
} // namespace reference

} // namespace powerdial::apps::spmv

#endif // POWERDIAL_APPS_SPMV_SPMV_KERNEL_H
