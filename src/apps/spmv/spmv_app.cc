#include "apps/spmv/spmv_app.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/corpus.h"
#include "workload/rng.h"

namespace powerdial::apps::spmv {
namespace {

core::KnobSpace
makeSpace(const SpmvConfig &config)
{
    return core::KnobSpace({{"bits", config.bits_values},
                            {"keep", config.keep_values}});
}

/**
 * Cycles per multiply-accumulate, per precision bit: the wider the
 * arithmetic, the more cycles each retained nonzero costs, so run time
 * is monotone along both knobs (fewer nonzeros, or cheaper ones).
 */
constexpr double kCyclesPerMacBit = 150.0;

} // namespace

SpmvApp::SpmvApp(const SpmvConfig &config)
    : config_(config), space_(makeSpace(config))
{
    if (config_.rows == 0 || config_.band == 0)
        throw std::invalid_argument("SpmvApp: empty matrix");
    if (config_.fill <= 0.0 || config_.fill > 1.0)
        throw std::invalid_argument("SpmvApp: fill must be in (0, 1]");
    if (config_.inputs == 0)
        throw std::invalid_argument("SpmvApp: need at least one input");
    if (config_.blocks == 0 || config_.blocks > config_.rows)
        throw std::invalid_argument(
            "SpmvApp: blocks must be in [1, rows]");

    // Banded sparsity with the diagonal always present, positive
    // values bounded away from zero so block sums (and thus the QoS
    // denominators) stay well conditioned. Built row-by-row, then
    // flattened into the SoA compute representation.
    matrix_ = CsrMatrix::fromRows(makeBandedRows(
        config_.rows, config_.band, config_.fill, config_.seed));

    vectors_.reserve(config_.inputs);
    for (std::size_t i = 0; i < config_.inputs; ++i) {
        workload::Rng vrng(config_.seed + 0x51AB + i * 0x9E37ULL);
        std::vector<double> x(config_.rows);
        for (double &v : x)
            v = 0.1 + 0.9 * vrng.uniform();
        vectors_.push_back(std::move(x));
    }
    result_.assign(config_.rows, 0.0);
}

std::unique_ptr<core::App>
SpmvApp::clone() const
{
    // Every member is value-semantic (the CSR rows, the input
    // vectors, the control variables), so the implicit copy is a full
    // deep copy.
    return std::make_unique<SpmvApp>(*this);
}

std::size_t
SpmvApp::defaultCombination() const
{
    // Full fp64 precision over every nonzero — the exact kernel.
    return space_.findCombination(
        {config_.bits_values.back(), config_.keep_values.back()});
}

void
SpmvApp::configure(const std::vector<double> &params)
{
    if (params.size() != 2)
        throw std::invalid_argument("SpmvApp: expected 2 parameters");
    bits_ = static_cast<int>(params[0]);
    keep_ = params[1];
}

void
SpmvApp::traceRun(influence::TraceRun &trace,
                  const std::vector<double> &params)
{
    using influence::Value;
    const Value<double> bits(params.at(0), influence::paramBit(0));
    const Value<double> keep(params.at(1), influence::paramBit(1));

    // Init phase: control variables derived from the parameters.
    trace.store("mac_bits", bits * Value<double>(1.0),
                "spmv_app.cc:configure");
    trace.store("keep_frac", keep * Value<double>(1.0),
                "spmv_app.cc:configure");
    // Untainted init variable (the matrix geometry): must be excluded.
    trace.store("row_count",
                Value<double>(static_cast<double>(config_.rows)),
                "spmv_app.cc:configure");

    // Main loop: every row's multiply-accumulate reads both knobs.
    trace.firstHeartbeat();
    trace.read("mac_bits", "spmv_app.cc:processUnit");
    trace.read("keep_frac", "spmv_app.cc:processUnit");
    trace.read("row_count", "spmv_app.cc:processUnit");
}

void
SpmvApp::bindControlVariables(core::KnobTable &table)
{
    table.bind({"mac_bits", [this](const std::vector<double> &v) {
                    bits_ = static_cast<int>(v.at(0));
                }});
    table.bind({"keep_frac", [this](const std::vector<double> &v) {
                    keep_ = v.at(0);
                }});
}

std::size_t
SpmvApp::inputCount() const
{
    return vectors_.size();
}

std::vector<std::size_t>
SpmvApp::trainingInputs() const
{
    return workload::splitInputs(vectors_.size(), config_.seed ^ 0x7e57)
        .training;
}

std::vector<std::size_t>
SpmvApp::productionInputs() const
{
    return workload::splitInputs(vectors_.size(), config_.seed ^ 0x7e57)
        .production;
}

void
SpmvApp::loadInput(std::size_t index)
{
    if (index >= vectors_.size())
        throw std::out_of_range("SpmvApp: bad input index");
    current_input_ = index;
    result_.assign(config_.rows, 0.0);
}

std::size_t
SpmvApp::unitCount() const
{
    return matrix_.rowCount();
}

std::size_t
SpmvApp::keptOf(std::size_t row) const
{
    const std::size_t nnz = matrix_.nnzOf(row);
    const auto kept = static_cast<std::size_t>(
        std::ceil(keep_ * static_cast<double>(nnz)));
    return std::min(std::max<std::size_t>(kept, 1), nnz);
}

void
SpmvApp::processUnit(std::size_t unit, sim::Machine &machine)
{
    if (unit >= matrix_.rowCount())
        throw std::out_of_range("SpmvApp: bad unit index");
    const std::size_t kept = keptOf(unit);
    result_[unit] =
        rowDot(matrix_, unit, vectors_[current_input_], kept, bits_);
    machine.execute(static_cast<double>(kept) * kCyclesPerMacBit *
                    static_cast<double>(bits_));
}

qos::OutputAbstraction
SpmvApp::output() const
{
    // Block sums of the result vector: coarse enough to be a stable
    // abstraction, fine enough that dropped or misrounded nonzeros in
    // any region of the matrix show up as distortion.
    qos::OutputAbstraction out;
    out.components.assign(config_.blocks, 0.0);
    out.weights.assign(config_.blocks, 1.0);
    for (std::size_t r = 0; r < result_.size(); ++r)
        out.components[r * config_.blocks / result_.size()] +=
            result_[r];
    return out;
}

} // namespace powerdial::apps::spmv
