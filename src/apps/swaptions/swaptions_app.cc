#include "apps/swaptions/swaptions_app.h"

#include <stdexcept>

#include "workload/corpus.h"

namespace powerdial::apps::swaptions {

std::vector<double>
SwaptionsConfig::makeRange(int lo, int hi, int step)
{
    std::vector<double> v;
    for (int x = lo; x <= hi; x += step)
        v.push_back(static_cast<double>(x));
    return v;
}

namespace {

core::KnobSpace
makeSpace(const SwaptionsConfig &config)
{
    return core::KnobSpace({{"-sm", config.sim_values}});
}

} // namespace

SwaptionsApp::SwaptionsApp(const SwaptionsConfig &config)
    : config_(config), space_(makeSpace(config))
{
    if (config_.sim_values.empty())
        throw std::invalid_argument("SwaptionsApp: no -sm settings");
    workload::Rng rng(config_.seed);
    portfolios_.resize(config_.inputs);
    for (auto &portfolio : portfolios_) {
        portfolio.reserve(config_.swaptions_per_input);
        for (std::size_t i = 0; i < config_.swaptions_per_input; ++i) {
            Swaption s;
            s.forward_rate = rng.uniform(0.02, 0.08);
            // Strikes near the money so payoffs are non-degenerate.
            s.strike = s.forward_rate * rng.uniform(0.75, 1.05);
            s.volatility = rng.uniform(0.10, 0.30);
            s.maturity = rng.uniform(1.0, 5.0);
            s.tenor = 1.0 + static_cast<double>(rng.below(9));
            s.discount_rate = rng.uniform(0.01, 0.05);
            s.notional = 100.0;
            portfolio.push_back(s);
        }
    }
}

std::unique_ptr<core::App>
SwaptionsApp::clone() const
{
    // Every member is value-semantic (portfolios, prices, the control
    // variable), so the implicit copy is a full deep copy.
    return std::make_unique<SwaptionsApp>(*this);
}

std::size_t
SwaptionsApp::defaultCombination() const
{
    // The largest simulation count delivers the highest QoS (PARSEC
    // native default is the top of the range).
    return space_.combinations() - 1;
}

void
SwaptionsApp::configure(const std::vector<double> &params)
{
    if (params.size() != 1)
        throw std::invalid_argument("SwaptionsApp: expected 1 parameter");
    num_trials_ = static_cast<std::uint64_t>(params[0]);
}

void
SwaptionsApp::traceRun(influence::TraceRun &trace,
                       const std::vector<double> &params)
{
    // Initialization phase: -sm flows into the num_trials control
    // variable (an untainted constant is mixed in to mirror realistic
    // parameter processing; influence must still be {bit 0}).
    influence::Value<double> sm(params.at(0), influence::paramBit(0));
    influence::Value<double> trials = sm * influence::Value<double>(1.0);
    trace.store("num_trials", trials, "swaptions_app.cc:configure");

    // An init-phase variable *not* derived from the knob: the RNG seed
    // base. The analysis must leave it out of the control-variable set.
    influence::Value<double> seed_base(
        static_cast<double>(config_.seed));
    trace.store("seed_base", seed_base, "swaptions_app.cc:configure");

    // Main control loop phase: prices each swaption, reading the
    // control variable every iteration.
    trace.firstHeartbeat();
    trace.read("num_trials", "pricer.cc:price");
    trace.read("seed_base", "pricer.cc:price");
}

void
SwaptionsApp::bindControlVariables(core::KnobTable &table)
{
    table.bind({"num_trials", [this](const std::vector<double> &v) {
                    num_trials_ = static_cast<std::uint64_t>(v.at(0));
                }});
}

std::size_t
SwaptionsApp::inputCount() const
{
    return portfolios_.size();
}

std::vector<std::size_t>
SwaptionsApp::trainingInputs() const
{
    return workload::splitInputs(portfolios_.size(), config_.seed ^ 0x7e57)
        .training;
}

std::vector<std::size_t>
SwaptionsApp::productionInputs() const
{
    return workload::splitInputs(portfolios_.size(), config_.seed ^ 0x7e57)
        .production;
}

void
SwaptionsApp::loadInput(std::size_t index)
{
    if (index >= portfolios_.size())
        throw std::out_of_range("SwaptionsApp: bad input index");
    current_input_ = index;
    prices_.clear();
}

std::size_t
SwaptionsApp::unitCount() const
{
    return portfolios_[current_input_].size();
}

void
SwaptionsApp::processUnit(std::size_t unit, sim::Machine &machine)
{
    const auto &s = portfolios_[current_input_].at(unit);
    // Deterministic per-swaption seed: QoS differences across knob
    // settings come from the path count, not from reseeding.
    const std::uint64_t seed =
        config_.seed ^ (current_input_ * 1315423911ULL) ^ (unit * 2654435761ULL);
    const PriceResult r = price(s, num_trials_, seed);
    machine.execute(static_cast<double>(r.work_ops) * kCyclesPerOp);
    prices_.push_back(r.price);
}

qos::OutputAbstraction
SwaptionsApp::output() const
{
    // The output abstraction is the vector of swaption prices, weighted
    // equally (paper section 4.1).
    return {prices_, {}};
}

} // namespace powerdial::apps::swaptions
