#include "apps/swaptions/pricer.h"

#include <array>
#include <cmath>
#include <stdexcept>

namespace powerdial::apps::swaptions {
namespace {

/** Annuity (PV01) of the underlying swap with annual payments. */
double
annuity(const Swaption &s)
{
    double a = 0.0;
    for (int i = 1; i <= static_cast<int>(s.tenor); ++i)
        a += std::exp(-s.discount_rate * (s.maturity + i));
    return a;
}

/** Standard normal CDF. */
double
normCdf(double x)
{
    return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

} // namespace

double
blackPrice(const Swaption &s)
{
    const double sig_sqrt_t = s.volatility * std::sqrt(s.maturity);
    const double d1 =
        (std::log(s.forward_rate / s.strike) +
         0.5 * sig_sqrt_t * sig_sqrt_t) / sig_sqrt_t;
    const double d2 = d1 - sig_sqrt_t;
    return s.notional * annuity(s) *
           (s.forward_rate * normCdf(d1) - s.strike * normCdf(d2));
}

PriceResult
price(const Swaption &s, std::uint64_t paths, std::uint64_t seed)
{
    if (paths == 0)
        throw std::invalid_argument("price: need at least one path");
    if (s.forward_rate <= 0.0 || s.strike <= 0.0 || s.volatility <= 0.0 ||
        s.maturity <= 0.0) {
        throw std::invalid_argument("price: bad swaption parameters");
    }

    workload::Rng rng(seed);
    const double dt = s.maturity / kPathSteps;
    const double drift = -0.5 * s.volatility * s.volatility * dt;
    const double diffusion = s.volatility * std::sqrt(dt);
    const double a = annuity(s);
    const double log_s0 = std::log(s.forward_rate);

    // Antithetic variates: each draw prices a +z path and its mirrored
    // -z path, halving the variance of the estimator at equal work —
    // standard practice in production Monte Carlo pricers.
    double sum = 0.0;
    double sum_sq = 0.0;
    const std::uint64_t pairs = (paths + 1) / 2;
    std::array<double, kPathSteps> z{};
    for (std::uint64_t p = 0; p < pairs; ++p) {
        for (int step = 0; step < kPathSteps; ++step)
            z[step] = rng.gaussian();
        double log_up = log_s0;
        double log_dn = log_s0;
        for (int step = 0; step < kPathSteps; ++step) {
            log_up += drift + diffusion * z[step];
            log_dn += drift - diffusion * z[step];
        }
        const double rate_up = std::exp(log_up);
        const double rate_dn = std::exp(log_dn);
        const double pay_up = rate_up > s.strike
            ? (rate_up - s.strike) * a * s.notional : 0.0;
        const double pay_dn = rate_dn > s.strike
            ? (rate_dn - s.strike) * a * s.notional : 0.0;
        const double payoff = 0.5 * (pay_up + pay_dn);
        sum += payoff;
        sum_sq += payoff * payoff;
    }

    PriceResult r{};
    const double n = static_cast<double>(pairs);
    r.price = sum / n;
    const double var = sum_sq / n - r.price * r.price;
    r.std_error = var > 0.0 ? std::sqrt(var / n) : 0.0;
    // Work model: ~8 ops per step (gaussian + fma) plus payoff handling.
    r.work_ops = paths * (static_cast<std::uint64_t>(kPathSteps) * 8 + 12);
    return r;
}

} // namespace powerdial::apps::swaptions
