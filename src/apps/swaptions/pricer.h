/**
 * @file
 * Monte Carlo European swaption pricer.
 *
 * From-scratch stand-in for the PARSEC swaptions kernel (paper section
 * 4.1), which "uses Monte Carlo simulation to solve a partial
 * differential equation that prices a portfolio of swaptions. Both the
 * accuracy and the execution time increase with the number of
 * simulations."
 *
 * The pricer simulates the forward swap rate under a one-factor
 * lognormal (Black-like) model with per-step evolution, prices the
 * payer swaption payoff at exercise, and discounts with a flat curve.
 * Pricing error shrinks as 1/sqrt(paths); work grows linearly in paths
 * — the same accuracy/time shape as the PARSEC kernel.
 */
#ifndef POWERDIAL_APPS_SWAPTIONS_PRICER_H
#define POWERDIAL_APPS_SWAPTIONS_PRICER_H

#include <cstdint>

#include "workload/rng.h"

namespace powerdial::apps::swaptions {

/** Contract and market parameters of one swaption. */
struct Swaption
{
    double forward_rate;  //!< Forward swap rate S0.
    double strike;        //!< Fixed strike K.
    double volatility;    //!< Lognormal vol sigma.
    double maturity;      //!< Option expiry T, years.
    double tenor;         //!< Underlying swap tenor, years.
    double discount_rate; //!< Flat continuously compounded rate.
    double notional;      //!< Contract notional.
};

/** Result of one pricing run. */
struct PriceResult
{
    double price;      //!< Monte Carlo estimate.
    double std_error;  //!< Standard error of the estimate.
    std::uint64_t work_ops; //!< Arithmetic operations performed (for
                            //!< cycle costing on the simulated machine).
};

/** Per-path time steps used by the simulation (model granularity). */
inline constexpr int kPathSteps = 16;

/** Approximate machine cycles per arithmetic operation of the kernel. */
inline constexpr double kCyclesPerOp = 1.0;

/**
 * Price @p swaption by Monte Carlo with @p paths simulations.
 *
 * @param swaption Contract to price.
 * @param paths    Number of simulated paths (>= 1).
 * @param seed     Deterministic RNG seed.
 */
PriceResult price(const Swaption &swaption, std::uint64_t paths,
                  std::uint64_t seed);

/** Closed-form Black price (used by tests as the convergence target). */
double blackPrice(const Swaption &swaption);

} // namespace powerdial::apps::swaptions

#endif // POWERDIAL_APPS_SWAPTIONS_PRICER_H
