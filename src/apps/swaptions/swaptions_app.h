/**
 * @file
 * The swaptions benchmark as a PowerDial application (paper section 4.1).
 *
 * Knob: the single command line parameter "-sm" controlling the number
 * of Monte Carlo simulations per swaption. Inputs: portfolios of
 * randomly generated swaptions (the paper augments the PARSEC native
 * input, which repeats one contract, with random contracts). The main
 * control loop prices one swaption per iteration. The QoS metric is the
 * distortion of the computed prices, weighted equally.
 */
#ifndef POWERDIAL_APPS_SWAPTIONS_APP_H
#define POWERDIAL_APPS_SWAPTIONS_APP_H

#include <memory>
#include <vector>

#include "apps/swaptions/pricer.h"
#include "core/app.h"

namespace powerdial::apps::swaptions {

/** Benchmark sizing (scaled-down defaults keep experiments fast). */
struct SwaptionsConfig
{
    /** Admissible "-sm" settings, ascending. The largest is the
     *  baseline default, as in PARSEC native. */
    std::vector<double> sim_values =
        makeRange(250, 10000, 250);
    /** Number of portfolio inputs to synthesise. */
    std::size_t inputs = 16;
    /** Swaptions per portfolio (main-loop iterations per input). */
    std::size_t swaptions_per_input = 24;
    std::uint64_t seed = 0x5a5a0001;

    /** Helper: {lo, lo+step, ..., hi}. */
    static std::vector<double> makeRange(int lo, int hi, int step);
};

/** PowerDial App implementation for swaptions. */
class SwaptionsApp final : public core::App
{
  public:
    explicit SwaptionsApp(const SwaptionsConfig &config = {});

    std::string name() const override { return "swaptions"; }
    std::unique_ptr<core::App> clone() const override;
    const core::KnobSpace &knobSpace() const override { return space_; }
    std::size_t defaultCombination() const override;
    void configure(const std::vector<double> &params) override;
    void traceRun(influence::TraceRun &trace,
                  const std::vector<double> &params) override;
    void bindControlVariables(core::KnobTable &table) override;
    std::size_t inputCount() const override;
    std::vector<std::size_t> trainingInputs() const override;
    std::vector<std::size_t> productionInputs() const override;
    void loadInput(std::size_t index) override;
    std::size_t unitCount() const override;
    void processUnit(std::size_t unit, sim::Machine &machine) override;
    qos::OutputAbstraction output() const override;

    /** The control variable (for tests). */
    std::uint64_t numTrials() const { return num_trials_; }

  private:
    SwaptionsConfig config_;
    core::KnobSpace space_;
    /** Inputs: portfolios of swaption contracts. */
    std::vector<std::vector<Swaption>> portfolios_;

    // Control variable: number of Monte Carlo trials per swaption,
    // derived from "-sm" during initialization.
    std::uint64_t num_trials_ = 0;

    // Per-run state.
    std::size_t current_input_ = 0;
    std::vector<double> prices_;
};

} // namespace powerdial::apps::swaptions

#endif // POWERDIAL_APPS_SWAPTIONS_APP_H
