/**
 * @file
 * Annealed particle filter for articulated body tracking.
 *
 * From-scratch stand-in for the PARSEC bodytrack kernel (paper section
 * 4.3), which "uses an annealed particle filter and videos from
 * multiple cameras to track a human's movement" [Deutscher & Reid].
 * Each frame is processed through a sequence of annealing layers: the
 * particle set is diffused, re-weighted against the observation with a
 * progressively sharper likelihood, and resampled, so the posterior
 * concentrates on the true pose. More particles and more layers give
 * better tracking at linearly more work — the two PowerDial knobs.
 */
#ifndef POWERDIAL_APPS_BODYTRACK_PARTICLE_FILTER_H
#define POWERDIAL_APPS_BODYTRACK_PARTICLE_FILTER_H

#include <cstdint>
#include <vector>

#include "workload/body_motion.h"
#include "workload/rng.h"

namespace powerdial::apps::bodytrack {

/** One weighted pose hypothesis. */
struct Particle
{
    workload::BodyPose pose;
    double weight = 1.0;
};

/** Filter configuration (the control variables live here). */
struct FilterParams
{
    std::size_t particles = 4000; //!< Knob: argv[4].
    std::size_t layers = 5;       //!< Knob: argv[5].
    /**
     * Per-layer inverse-temperature (likelihood sharpness) schedule,
     * length == layers, increasing. Derived from the layer count at
     * initialisation — a *vector* control variable, exercising the
     * paper's STL-vector support.
     */
    std::vector<double> betas;
    /** Per-layer diffusion scale, length == layers, decreasing. */
    std::vector<double> sigmas;
};

/** Build the annealing schedules for @p layers (paper-style geometric). */
void makeSchedules(std::size_t layers, std::vector<double> &betas,
                   std::vector<double> &sigmas);

/**
 * Systematic (low-variance) resampling of @p in into @p count
 * uniform-weight particles, written into the caller-owned @p out
 * (cleared, then filled; capacity is reused across calls, which is the
 * point — the filter resamples every annealing layer of every frame
 * and used to reallocate the whole cloud each time).
 *
 * @param total Sum of input weights (must be > 0).
 * @param u01   Uniform draw in [0, 1) seeding the comb offset.
 */
void systematicResampleInto(const std::vector<Particle> &in,
                            std::size_t count, double total, double u01,
                            std::vector<Particle> &out);

/**
 * Retained naive resampling (particle_filter_ref.cc): allocates and
 * returns a fresh cloud per call, kept verbatim as the bit-exactness
 * oracle for systematicResampleInto.
 */
namespace reference {
std::vector<Particle> systematicResample(const std::vector<Particle> &in,
                                         std::size_t count, double total,
                                         double u01);
} // namespace reference

/** Result of tracking one frame. */
struct TrackResult
{
    workload::BodyPose estimate;
    std::uint64_t work_ops = 0;
};

/** The annealed particle filter. */
class AnnealedParticleFilter
{
  public:
    /**
     * @param dims Body-part dimensions (fixed model).
     * @param seed Deterministic RNG seed.
     */
    AnnealedParticleFilter(const workload::BodyDimensions &dims,
                           std::uint64_t seed);

    /**
     * Initialise the particle cloud around @p initial (bodytrack is
     * given the starting pose).
     */
    void initialize(const workload::BodyPose &initial,
                    const FilterParams &params);

    /** Process one observation, returning the pose estimate. */
    TrackResult step(const workload::BodyObservation &observation,
                     const FilterParams &params);

    const std::vector<Particle> &particles() const { return particles_; }

  private:
    /** Negative log-likelihood: squared observation distance. */
    double error(const workload::BodyPose &pose,
                 const workload::BodyObservation &obs) const;

    /** Systematic resampling into @p count particles. */
    void resample(std::size_t count);

    workload::BodyDimensions dims_;
    workload::Rng rng_;
    std::vector<Particle> particles_;
    /** Resampling scratch, swapped with particles_ each resample. */
    std::vector<Particle> resample_scratch_;
};

} // namespace powerdial::apps::bodytrack

#endif // POWERDIAL_APPS_BODYTRACK_PARTICLE_FILTER_H
