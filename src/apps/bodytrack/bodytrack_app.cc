#include "apps/bodytrack/bodytrack_app.h"

#include <cmath>
#include <stdexcept>

#include "workload/corpus.h"

namespace powerdial::apps::bodytrack {

std::vector<double>
BodytrackConfig::makeRange(int lo, int hi, int step)
{
    std::vector<double> v;
    for (int x = lo; x <= hi; x += step)
        v.push_back(static_cast<double>(x));
    return v;
}

namespace {

core::KnobSpace
makeSpace(const BodytrackConfig &config)
{
    return core::KnobSpace({{"argv[4]:particles", config.particle_values},
                            {"argv[5]:layers", config.layer_values}});
}

constexpr double kCyclesPerOp = 1.0;

/**
 * Fixed per-frame work independent of the knobs: the real bodytrack
 * computes edge and foreground maps for every camera image before the
 * particle filter runs. This floor is what bounds the paper's speedup
 * near 7x despite a 200x knob-work range.
 */
constexpr std::uint64_t kFixedOpsPerFrame = 120000;

} // namespace

BodytrackApp::BodytrackApp(const BodytrackConfig &config)
    : config_(config), space_(makeSpace(config))
{
    sequences_.reserve(config_.inputs);
    for (std::size_t i = 0; i < config_.inputs; ++i) {
        workload::BodyMotionParams mp;
        mp.frames = config_.frames;
        mp.seed = config_.seed + i * 0x9e37ULL;
        // Vary gait across inputs so production differs from training.
        mp.swing_period = 18.0 + static_cast<double>(i % 5) * 4.0;
        mp.walk_speed = 0.25 + 0.05 * static_cast<double>(i % 4);
        sequences_.push_back(workload::makeBodySequence(mp, dims_));
    }
}

std::unique_ptr<core::App>
BodytrackApp::clone() const
{
    // Every member is value-semantic (sequences, params, the filter
    // in its optional), so the implicit copy is a full deep copy.
    return std::make_unique<BodytrackApp>(*this);
}

std::size_t
BodytrackApp::defaultCombination() const
{
    // PARSEC native defaults are the maxima: 4000 particles, 5 layers
    // (scaled here to the top of each configured range).
    return space_.findCombination({config_.particle_values.back(),
                                   config_.layer_values.back()});
}

void
BodytrackApp::configure(const std::vector<double> &params)
{
    if (params.size() != 2)
        throw std::invalid_argument("BodytrackApp: expected 2 parameters");
    params_.particles = static_cast<std::size_t>(params[0]);
    params_.layers = static_cast<std::size_t>(params[1]);
    makeSchedules(params_.layers, params_.betas, params_.sigmas);
}

void
BodytrackApp::traceRun(influence::TraceRun &trace,
                       const std::vector<double> &params)
{
    using influence::Value;
    const Value<double> particles(params.at(0), influence::paramBit(0));
    const Value<double> layers(params.at(1), influence::paramBit(1));

    trace.store("num_particles", particles * Value<double>(1.0),
                "bodytrack_app.cc:configure");
    trace.store("num_layers", layers * Value<double>(1.0),
                "bodytrack_app.cc:configure");

    // The annealing schedules are *vector* control variables whose
    // length and content derive from the layer count.
    std::vector<double> betas, sigmas;
    makeSchedules(static_cast<std::size_t>(params.at(1)), betas, sigmas);
    trace.storeVector("anneal_betas", betas, influence::paramBit(1),
                      "particle_filter.cc:makeSchedules");
    trace.storeVector("anneal_sigmas", sigmas, influence::paramBit(1),
                      "particle_filter.cc:makeSchedules");

    trace.firstHeartbeat();
    trace.read("num_particles", "particle_filter.cc:step");
    trace.read("num_layers", "particle_filter.cc:step");
    trace.read("anneal_betas", "particle_filter.cc:step");
    trace.read("anneal_sigmas", "particle_filter.cc:step");
}

void
BodytrackApp::bindControlVariables(core::KnobTable &table)
{
    table.bind({"num_particles", [this](const std::vector<double> &v) {
                    params_.particles = static_cast<std::size_t>(v.at(0));
                }});
    table.bind({"num_layers", [this](const std::vector<double> &v) {
                    params_.layers = static_cast<std::size_t>(v.at(0));
                }});
    table.bind({"anneal_betas", [this](const std::vector<double> &v) {
                    params_.betas = v;
                }});
    table.bind({"anneal_sigmas", [this](const std::vector<double> &v) {
                    params_.sigmas = v;
                }});
}

std::size_t
BodytrackApp::inputCount() const
{
    return sequences_.size();
}

std::vector<std::size_t>
BodytrackApp::trainingInputs() const
{
    return workload::splitInputs(sequences_.size(), config_.seed ^ 0x7e57)
        .training;
}

std::vector<std::size_t>
BodytrackApp::productionInputs() const
{
    return workload::splitInputs(sequences_.size(), config_.seed ^ 0x7e57)
        .production;
}

void
BodytrackApp::loadInput(std::size_t index)
{
    if (index >= sequences_.size())
        throw std::out_of_range("BodytrackApp: bad input index");
    current_input_ = index;
    track_.clear();
    filter_.emplace(dims_, config_.seed ^ (index * 0x517cc1b7ULL));
    filter_->initialize(sequences_[index].front().truth, params_);
}

std::size_t
BodytrackApp::unitCount() const
{
    return sequences_[current_input_].size();
}

void
BodytrackApp::processUnit(std::size_t unit, sim::Machine &machine)
{
    const auto &frame = sequences_[current_input_].at(unit);
    const TrackResult r = filter_->step(frame.observation, params_);
    machine.execute(static_cast<double>(r.work_ops + kFixedOpsPerFrame) *
                    kCyclesPerOp);
    track_.push_back(workload::forwardKinematics(r.estimate, dims_));
}

qos::OutputAbstraction
BodytrackApp::output() const
{
    // Output abstraction: per body part, the time-mean position (the
    // "series of vectors representing the positions of body
    // components") plus the mean frame-to-frame displacement (how
    // smoothly the part tracks). Weights are proportional to component
    // magnitude, as in the paper.
    qos::OutputAbstraction abs;
    if (track_.empty())
        return abs;
    const double n = static_cast<double>(track_.size());
    for (std::size_t p = 0; p < workload::kBodyParts; ++p) {
        double mx = 0.0, my = 0.0, jitter = 0.0;
        for (std::size_t f = 0; f < track_.size(); ++f) {
            mx += track_[f].x[p];
            my += track_[f].y[p];
            if (f > 0) {
                const double dx = track_[f].x[p] - track_[f - 1].x[p];
                const double dy = track_[f].y[p] - track_[f - 1].y[p];
                jitter += std::sqrt(dx * dx + dy * dy);
            }
        }
        abs.components.push_back(mx / n);
        abs.components.push_back(my / n);
        abs.components.push_back(jitter / std::max(1.0, n - 1.0));
    }
    // Magnitude-proportional weights, normalised to mean 1 so QoS-loss
    // scales stay comparable across benchmarks.
    double total = 0.0;
    for (const double c : abs.components)
        total += std::abs(c);
    const double mean =
        total / static_cast<double>(abs.components.size());
    for (const double c : abs.components) {
        abs.weights.push_back(mean > 0.0 ? std::abs(c) / mean : 1.0);
    }
    return abs;
}

} // namespace powerdial::apps::bodytrack
