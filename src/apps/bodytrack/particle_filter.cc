#include "apps/bodytrack/particle_filter.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerdial::apps::bodytrack {

void
makeSchedules(std::size_t layers, std::vector<double> &betas,
              std::vector<double> &sigmas)
{
    if (layers == 0)
        throw std::invalid_argument("makeSchedules: need >= 1 layer");
    betas.resize(layers);
    sigmas.resize(layers);
    // Geometric annealing: soft/broad first, sharp/narrow last.
    for (std::size_t l = 0; l < layers; ++l) {
        const double t = layers == 1
            ? 1.0
            : static_cast<double>(l) / static_cast<double>(layers - 1);
        betas[l] = 0.5 * std::pow(8.0, t);   // 0.5 .. 4.0
        sigmas[l] = 0.25 * std::pow(0.25, t); // 0.25 .. 0.0625
    }
}

AnnealedParticleFilter::AnnealedParticleFilter(
    const workload::BodyDimensions &dims, std::uint64_t seed)
    : dims_(dims), rng_(seed)
{
}

void
AnnealedParticleFilter::initialize(const workload::BodyPose &initial,
                                   const FilterParams &params)
{
    if (params.particles == 0)
        throw std::invalid_argument("initialize: need >= 1 particle");
    particles_.assign(params.particles, Particle{initial, 1.0});
    for (auto &p : particles_) {
        p.pose.root_x += rng_.gaussian(0.0, 0.1);
        p.pose.root_y += rng_.gaussian(0.0, 0.1);
        for (auto &a : p.pose.angles)
            a += rng_.gaussian(0.0, 0.05);
    }
}

double
AnnealedParticleFilter::error(const workload::BodyPose &pose,
                              const workload::BodyObservation &obs) const
{
    const auto predicted = workload::forwardKinematics(pose, dims_);
    double err = 0.0;
    for (std::size_t p = 0; p < workload::kBodyParts; ++p) {
        const double dx = predicted.x[p] - obs.x[p];
        const double dy = predicted.y[p] - obs.y[p];
        err += dx * dx + dy * dy;
    }
    return err;
}

void
systematicResampleInto(const std::vector<Particle> &in, std::size_t count,
                       double total, double u01,
                       std::vector<Particle> &out)
{
    out.clear();
    out.reserve(count);
    const double step = total / static_cast<double>(count);
    const double u = u01 * step;
    double acc = in.front().weight;
    std::size_t i = 0;
    for (std::size_t n = 0; n < count; ++n) {
        const double target = u + step * static_cast<double>(n);
        while (acc < target && i + 1 < in.size()) {
            ++i;
            acc += in[i].weight;
        }
        out.push_back({in[i].pose, 1.0});
    }
}

void
AnnealedParticleFilter::resample(std::size_t count)
{
    double total = 0.0;
    for (const auto &p : particles_)
        total += p.weight;
    if (total <= 0.0) {
        // Degenerate weights: keep the cloud, reset weights.
        for (auto &p : particles_)
            p.weight = 1.0;
        return;
    }
    // Resample into the retained scratch buffer, then swap: after the
    // first frame the filter runs allocation-free, where it previously
    // built (and freed) a fresh `count`-particle vector per layer.
    systematicResampleInto(particles_, count, total, rng_.uniform(),
                           resample_scratch_);
    particles_.swap(resample_scratch_);
}

TrackResult
AnnealedParticleFilter::step(const workload::BodyObservation &observation,
                             const FilterParams &params)
{
    if (params.betas.size() != params.layers ||
        params.sigmas.size() != params.layers) {
        throw std::invalid_argument("step: schedule length != layers");
    }
    if (particles_.empty())
        throw std::logic_error("step: filter not initialised");

    TrackResult result;

    // The particle count knob may have changed since the last frame;
    // adapt the cloud size via resampling.
    if (particles_.size() != params.particles)
        resample(params.particles);

    for (std::size_t layer = 0; layer < params.layers; ++layer) {
        const double sigma = params.sigmas[layer];
        const double beta = params.betas[layer];
        for (auto &p : particles_) {
            // Diffuse.
            p.pose.root_x += rng_.gaussian(0.0, sigma);
            p.pose.root_y += rng_.gaussian(0.0, sigma);
            for (auto &a : p.pose.angles)
                a += rng_.gaussian(0.0, sigma);
            // Weight against the observation.
            p.weight = std::exp(-beta * error(p.pose, observation));
        }
        resample(params.particles);
        // FK (~40 ops) + weighting (~30 ops) + diffusion (~14 ops)
        // per particle per layer.
        result.work_ops += params.particles * 84ULL;
    }

    // Estimate: mean pose of the resampled (uniform-weight) cloud.
    workload::BodyPose mean{};
    for (const auto &p : particles_) {
        mean.root_x += p.pose.root_x;
        mean.root_y += p.pose.root_y;
        for (std::size_t a = 0; a < mean.angles.size(); ++a)
            mean.angles[a] += p.pose.angles[a];
    }
    const double n = static_cast<double>(particles_.size());
    mean.root_x /= n;
    mean.root_y /= n;
    for (auto &a : mean.angles)
        a /= n;
    result.estimate = mean;
    return result;
}

} // namespace powerdial::apps::bodytrack
