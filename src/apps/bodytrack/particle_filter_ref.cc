/**
 * @file
 * Retained naive systematic resampling — the pre-optimization
 * implementation (fresh allocation per call), kept verbatim as the
 * bit-exactness oracle for systematicResampleInto (differential sweep
 * in tests/test_kernel_equivalence.cc) and as the "before" column of
 * bench_roofline.
 */
#include "apps/bodytrack/particle_filter.h"

namespace powerdial::apps::bodytrack::reference {

std::vector<Particle>
systematicResample(const std::vector<Particle> &in, std::size_t count,
                   double total, double u01)
{
    std::vector<Particle> next;
    next.reserve(count);
    const double step = total / static_cast<double>(count);
    double u = u01 * step;
    double acc = in.front().weight;
    std::size_t i = 0;
    for (std::size_t n = 0; n < count; ++n) {
        const double target = u + step * static_cast<double>(n);
        while (acc < target && i + 1 < in.size()) {
            ++i;
            acc += in[i].weight;
        }
        next.push_back({in[i].pose, 1.0});
    }
    return next;
}

} // namespace powerdial::apps::bodytrack::reference
