/**
 * @file
 * The bodytrack benchmark as a PowerDial application (paper section 4.3).
 *
 * Knobs: the positional parameters argv[4] (particles) and argv[5]
 * (annealing layers). The main control loop processes one video frame
 * per iteration. Outputs are the body-part position vectors over time;
 * the QoS metric is their distortion with per-component weights
 * proportional to component magnitude (so the torso counts more than a
 * forearm, as in the paper).
 */
#ifndef POWERDIAL_APPS_BODYTRACK_APP_H
#define POWERDIAL_APPS_BODYTRACK_APP_H

#include <memory>
#include <optional>
#include <vector>

#include "apps/bodytrack/particle_filter.h"
#include "core/app.h"

namespace powerdial::apps::bodytrack {

/** Benchmark sizing. */
struct BodytrackConfig
{
    /** Admissible particle counts (paper: 100..4000 step 100). */
    std::vector<double> particle_values = makeRange(100, 2000, 100);
    /** Admissible annealing layer counts (paper: 1..5). */
    std::vector<double> layer_values = {1, 2, 3, 4, 5};
    /** Frames per sequence input. */
    std::size_t frames = 60;
    /** Number of sequence inputs. */
    std::size_t inputs = 8;
    std::uint64_t seed = 0xb0d70002;

    static std::vector<double> makeRange(int lo, int hi, int step);
};

/** PowerDial App implementation for bodytrack. */
class BodytrackApp final : public core::App
{
  public:
    explicit BodytrackApp(const BodytrackConfig &config = {});

    std::string name() const override { return "bodytrack"; }
    std::unique_ptr<core::App> clone() const override;
    const core::KnobSpace &knobSpace() const override { return space_; }
    std::size_t defaultCombination() const override;
    void configure(const std::vector<double> &params) override;
    void traceRun(influence::TraceRun &trace,
                  const std::vector<double> &params) override;
    void bindControlVariables(core::KnobTable &table) override;
    std::size_t inputCount() const override;
    std::vector<std::size_t> trainingInputs() const override;
    std::vector<std::size_t> productionInputs() const override;
    void loadInput(std::size_t index) override;
    std::size_t unitCount() const override;
    void processUnit(std::size_t unit, sim::Machine &machine) override;
    qos::OutputAbstraction output() const override;

    /** Current filter parameters (the control variables; for tests). */
    const FilterParams &filterParams() const { return params_; }

  private:
    // All members are value-semantic (the filter sits in an optional,
    // not behind a pointer) so the implicit copy constructor is the
    // deep copy clone() needs; a member added later is copied
    // automatically.
    BodytrackConfig config_;
    core::KnobSpace space_;
    workload::BodyDimensions dims_;
    std::vector<std::vector<workload::BodyFrame>> sequences_;

    // Control variables derived from {particles, layers} at init.
    FilterParams params_;

    // Per-run state.
    std::optional<AnnealedParticleFilter> filter_;
    std::size_t current_input_ = 0;
    std::vector<workload::BodyObservation> track_; //!< Estimated parts.
};

} // namespace powerdial::apps::bodytrack

#endif // POWERDIAL_APPS_BODYTRACK_APP_H
