/**
 * @file
 * Opt-in tuning switches for the per-beat application kernels.
 *
 * Every kernel optimization in src/apps/ lands bit-exact by default:
 * the optimized implementations reorder memory traffic and hoist
 * allocations but never reassociate floating-point arithmetic, so
 * every golden, calibration table, and differential test stays
 * byte-identical (pinned by tests/test_kernel_equivalence.cc).
 *
 * Transformations that *do* reassociate — e.g. the two-way unrolled
 * DCT accumulation — are gated behind `KernelTuning::fast_math`. No
 * bench golden and no default code path enables it; callers that opt
 * in accept the documented relative-error bound (see the
 * "Kernel performance & roofline" section of docs/ARCHITECTURE.md and
 * the FastMath property tests).
 */
#ifndef POWERDIAL_APPS_KERNEL_TUNING_H
#define POWERDIAL_APPS_KERNEL_TUNING_H

namespace powerdial::apps {

/** Kernel-transformation policy. Default-constructed = bit-exact. */
struct KernelTuning
{
    /**
     * Allow floating-point reassociation (e.g. multi-accumulator
     * reductions). Off by default: results are then bit-identical to
     * the retained naive reference kernels. When on, results may
     * differ from the reference by at most the per-kernel relative
     * error bound documented in docs/ARCHITECTURE.md (currently
     * 1e-12 of the output's L-infinity norm for the DCT).
     */
    bool fast_math = false;
};

} // namespace powerdial::apps

#endif // POWERDIAL_APPS_KERNEL_TUNING_H
