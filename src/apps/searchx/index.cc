#include "apps/searchx/index.h"

#include <algorithm>
#include <cmath>

namespace powerdial::apps::searchx {

InvertedIndex::InvertedIndex(const std::vector<workload::Document> &docs)
    : doc_count_(docs.size())
{
    std::unordered_map<workload::WordId,
                       std::unordered_map<qos::DocId, std::uint32_t>>
        tf;
    for (const auto &doc : docs)
        for (const auto word : doc.words)
            ++tf[word][doc.id];
    index_.reserve(tf.size());
    for (auto &[word, counts] : tf) {
        std::vector<Posting> postings;
        postings.reserve(counts.size());
        for (const auto &[doc, count] : counts)
            postings.push_back({doc, count});
        std::sort(postings.begin(), postings.end(),
                  [](const Posting &a, const Posting &b) {
                      return a.doc < b.doc;
                  });
        index_.emplace(word, std::move(postings));
    }
    qos::DocId max_doc = 0;
    for (const auto &doc : docs)
        max_doc = std::max(max_doc, doc.id);
    score_of_.assign(docs.empty() ? 0 : static_cast<std::size_t>(max_doc) + 1,
                     0.0);
}

const std::vector<Posting> &
InvertedIndex::postings(workload::WordId word) const
{
    const auto it = index_.find(word);
    return it == index_.end() ? empty_ : it->second;
}

QueryOutcome
InvertedIndex::search(const workload::Query &query,
                      std::size_t max_results) const
{
    QueryOutcome out;
    if (max_results == 0)
        return out;

    // Score accumulation: tf-idf over the query terms, into the dense
    // per-document scratch. idf > 0 (df <= N < N+1) and the tf factor
    // is >= 1, so every contribution is strictly positive and a zero
    // score means "not yet touched" — no separate mark array needed.
    // Per-document accumulation order matches the hash-map reference
    // (terms in query order, postings in doc order), so each final
    // score is bit-identical.
    touched_.clear();
    for (const auto term : query.terms) {
        const auto &plist = postings(term);
        if (plist.empty())
            continue;
        const double idf =
            std::log(static_cast<double>(doc_count_ + 1) /
                     static_cast<double>(plist.size()));
        for (const auto &posting : plist) {
            double &score = score_of_[posting.doc];
            if (score == 0.0)
                touched_.push_back(posting.doc);
            score += (1.0 + std::log(1.0 + posting.tf)) * idf;
            out.work_ops += 6; // Accumulate one posting.
        }
    }

    // Bounded selection of the top max_results (heap of size m, the
    // work swish++'s max-results flag bounds). The comparator is a
    // strict total order (distinct docs always order), so the selected
    // prefix is independent of the candidate traversal order.
    ranked_.clear();
    ranked_.reserve(touched_.size());
    for (const auto doc : touched_) {
        ranked_.push_back({doc, score_of_[doc]});
        score_of_[doc] = 0.0; // Leave the scratch clean for next query.
    }
    const std::size_t m = std::min(max_results, ranked_.size());
    const double logm =
        std::max(1.0, std::log2(static_cast<double>(m + 1)));
    out.work_ops +=
        static_cast<std::uint64_t>(ranked_.size() * logm);
    std::partial_sort(ranked_.begin(), ranked_.begin() + m, ranked_.end(),
                      [](const SearchResult &a, const SearchResult &b) {
                          if (a.score != b.score)
                              return a.score > b.score;
                          return a.doc < b.doc; // Deterministic ties.
                      });

    // Result serialisation (snippet extraction, formatting, I/O) —
    // linear in the returned count.
    out.work_ops += m * kSerializeOpsPerResult;
    out.results.assign(ranked_.begin(),
                       ranked_.begin() + static_cast<std::ptrdiff_t>(m));
    return out;
}

} // namespace powerdial::apps::searchx
