#include "apps/searchx/searchx_app.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace powerdial::apps::searchx {
namespace {

core::KnobSpace
makeSpace(const SearchxConfig &config)
{
    return core::KnobSpace({{"-m:max-results", config.max_results_values}});
}

constexpr double kCyclesPerOp = 1.0;

} // namespace

SearchxApp::SearchxApp(const SearchxConfig &config)
    : config_(config), space_(makeSpace(config)),
      corpus_(config_.corpus), index_(corpus_.documents())
{
    batches_.reserve(config_.inputs);
    relevance_.reserve(config_.inputs);
    for (std::size_t i = 0; i < config_.inputs; ++i) {
        auto queries = corpus_.makeQueries(config_.queries_per_input,
                                           config_.terms_per_query,
                                           config_.seed + i * 0x9e37ULL);
        // Ground-truth relevance: documents containing every query term
        // (boolean AND), independent of any knob setting.
        std::vector<std::vector<qos::DocId>> truth;
        truth.reserve(queries.size());
        for (const auto &q : queries) {
            std::vector<qos::DocId> relevant;
            bool first = true;
            std::unordered_set<qos::DocId> acc;
            for (const auto term : q.terms) {
                std::unordered_set<qos::DocId> has;
                for (const auto &p : index_.postings(term))
                    has.insert(p.doc);
                if (first) {
                    acc = std::move(has);
                    first = false;
                } else {
                    std::unordered_set<qos::DocId> both;
                    for (const auto d : acc)
                        if (has.count(d))
                            both.insert(d);
                    acc = std::move(both);
                }
            }
            relevant.assign(acc.begin(), acc.end());
            std::sort(relevant.begin(), relevant.end());
            truth.push_back(std::move(relevant));
        }
        batches_.push_back(std::move(queries));
        relevance_.push_back(std::move(truth));
    }
}

std::unique_ptr<core::App>
SearchxApp::clone() const
{
    // Every member is value-semantic (corpus, index, batches, ground
    // truth), so the implicit copy is a full deep copy.
    return std::make_unique<SearchxApp>(*this);
}

std::size_t
SearchxApp::defaultCombination() const
{
    // The default (highest QoS) setting is max-results = 100.
    return space_.findCombination({config_.max_results_values.back()});
}

void
SearchxApp::configure(const std::vector<double> &params)
{
    if (params.size() != 1)
        throw std::invalid_argument("SearchxApp: expected 1 parameter");
    max_results_ = static_cast<std::size_t>(params[0]);
}

void
SearchxApp::traceRun(influence::TraceRun &trace,
                     const std::vector<double> &params)
{
    using influence::Value;
    const Value<double> m(params.at(0), influence::paramBit(0));
    trace.store("max_results", m * Value<double>(1.0),
                "searchx_app.cc:configure");
    trace.firstHeartbeat();
    trace.read("max_results", "index.cc:search");
}

void
SearchxApp::bindControlVariables(core::KnobTable &table)
{
    table.bind({"max_results", [this](const std::vector<double> &v) {
                    max_results_ = static_cast<std::size_t>(v.at(0));
                }});
}

std::size_t
SearchxApp::inputCount() const
{
    return batches_.size();
}

std::vector<std::size_t>
SearchxApp::trainingInputs() const
{
    return workload::splitInputs(batches_.size(), config_.seed ^ 0x7e57)
        .training;
}

std::vector<std::size_t>
SearchxApp::productionInputs() const
{
    return workload::splitInputs(batches_.size(), config_.seed ^ 0x7e57)
        .production;
}

void
SearchxApp::loadInput(std::size_t index)
{
    if (index >= batches_.size())
        throw std::out_of_range("SearchxApp: bad input index");
    current_input_ = index;
    f10_sum_ = 0.0;
    f100_sum_ = 0.0;
    answered_ = 0;
}

std::size_t
SearchxApp::unitCount() const
{
    return batches_[current_input_].size();
}

void
SearchxApp::processUnit(std::size_t unit, sim::Machine &machine)
{
    const auto &query = batches_[current_input_].at(unit);
    const auto outcome = index_.search(query, max_results_);
    machine.execute(static_cast<double>(outcome.work_ops) * kCyclesPerOp);

    std::vector<qos::DocId> returned;
    returned.reserve(outcome.results.size());
    for (const auto &r : outcome.results)
        returned.push_back(r.doc);

    const auto &relevant = relevance_[current_input_].at(unit);
    f10_sum_ += qos::score(returned, relevant, 10).f_measure;
    f100_sum_ += qos::score(returned, relevant, 100).f_measure;
    ++answered_;
}

qos::OutputAbstraction
SearchxApp::output() const
{
    const double n = std::max<double>(1.0, static_cast<double>(answered_));
    // F-measure at the two cutoffs the paper reports (P@10, P@100).
    return {{f10_sum_ / n, f100_sum_ / n}, {1.0, 1.0}};
}

} // namespace powerdial::apps::searchx
