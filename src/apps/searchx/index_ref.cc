/**
 * @file
 * Retained naive query scoring — the pre-optimization per-query
 * hash-map implementation, kept verbatim (over the public index API)
 * as the bit-exactness oracle for InvertedIndex::search (differential
 * sweep in tests/test_kernel_equivalence.cc) and as the "before"
 * column of bench_roofline.
 */
#include "apps/searchx/index.h"

#include <algorithm>
#include <cmath>

namespace powerdial::apps::searchx::reference {

QueryOutcome
search(const InvertedIndex &index, const workload::Query &query,
       std::size_t max_results)
{
    QueryOutcome out;
    if (max_results == 0)
        return out;

    // Score accumulation: tf-idf over the query terms.
    std::unordered_map<qos::DocId, double> scores;
    for (const auto term : query.terms) {
        const auto &plist = index.postings(term);
        if (plist.empty())
            continue;
        const double idf =
            std::log(static_cast<double>(index.documentCount() + 1) /
                     static_cast<double>(plist.size()));
        for (const auto &posting : plist) {
            scores[posting.doc] +=
                (1.0 + std::log(1.0 + posting.tf)) * idf;
            out.work_ops += 6; // Accumulate one posting.
        }
    }

    // Bounded selection of the top max_results (heap of size m, the
    // work swish++'s max-results flag bounds).
    std::vector<SearchResult> ranked;
    ranked.reserve(scores.size());
    for (const auto &[doc, score] : scores)
        ranked.push_back({doc, score});
    const std::size_t m = std::min(max_results, ranked.size());
    const double logm =
        std::max(1.0, std::log2(static_cast<double>(m + 1)));
    out.work_ops +=
        static_cast<std::uint64_t>(ranked.size() * logm);
    std::partial_sort(ranked.begin(), ranked.begin() + m, ranked.end(),
                      [](const SearchResult &a, const SearchResult &b) {
                          if (a.score != b.score)
                              return a.score > b.score;
                          return a.doc < b.doc; // Deterministic ties.
                      });
    ranked.resize(m);

    // Result serialisation (snippet extraction, formatting, I/O) —
    // linear in the returned count.
    out.work_ops += m * InvertedIndex::kSerializeOpsPerResult;
    out.results = std::move(ranked);
    return out;
}

} // namespace powerdial::apps::searchx::reference
