/**
 * @file
 * The search-engine benchmark as a PowerDial application (paper
 * section 4.4, standing in for swish++).
 *
 * Knob: max-results ("-m"), the maximum number of returned search
 * results, with the paper's settings {5, 10, 25, 50, 75, 100} (default
 * 100). Inputs: batches of power-law queries over a synthetic corpus;
 * one main-loop iteration services one query (the engine runs as a
 * server). The QoS metric is F-measure at the P@10 and P@100 cutoffs
 * against boolean-AND relevance ground truth.
 */
#ifndef POWERDIAL_APPS_SEARCHX_APP_H
#define POWERDIAL_APPS_SEARCHX_APP_H

#include <memory>
#include <vector>

#include "apps/searchx/index.h"
#include "core/app.h"

namespace powerdial::apps::searchx {

/** Benchmark sizing. */
struct SearchxConfig
{
    /** The paper's max-results settings; 100 is the default. */
    std::vector<double> max_results_values = {5, 10, 25, 50, 75, 100};
    workload::CorpusParams corpus{};
    std::size_t queries_per_input = 50;
    std::size_t terms_per_query = 2;
    /** Number of query-batch inputs. */
    std::size_t inputs = 8;
    std::uint64_t seed = 0x5ea20001;
};

/** PowerDial App implementation for the search engine. */
class SearchxApp final : public core::App
{
  public:
    explicit SearchxApp(const SearchxConfig &config = {});

    std::string name() const override { return "searchx"; }
    std::unique_ptr<core::App> clone() const override;
    const core::KnobSpace &knobSpace() const override { return space_; }
    std::size_t defaultCombination() const override;
    void configure(const std::vector<double> &params) override;
    void traceRun(influence::TraceRun &trace,
                  const std::vector<double> &params) override;
    void bindControlVariables(core::KnobTable &table) override;
    std::size_t inputCount() const override;
    std::vector<std::size_t> trainingInputs() const override;
    std::vector<std::size_t> productionInputs() const override;
    void loadInput(std::size_t index) override;
    std::size_t unitCount() const override;
    void processUnit(std::size_t unit, sim::Machine &machine) override;
    qos::OutputAbstraction output() const override;

    /** The control variable (for tests). */
    std::size_t maxResults() const { return max_results_; }

    /** The underlying index (for tests and examples). */
    const InvertedIndex &index() const { return index_; }

  private:
    // All members (corpus and index included) are held by value so
    // the implicit copy constructor is the deep copy clone() needs;
    // a member added later is copied automatically.
    SearchxConfig config_;
    core::KnobSpace space_;
    workload::Corpus corpus_;
    InvertedIndex index_;
    /** Query batches. */
    std::vector<std::vector<workload::Query>> batches_;
    /** Boolean-AND relevance ground truth per batch per query. */
    std::vector<std::vector<std::vector<qos::DocId>>> relevance_;

    // Control variable derived from "-m" at init.
    std::size_t max_results_ = 0;

    // Per-run state.
    std::size_t current_input_ = 0;
    double f10_sum_ = 0.0;
    double f100_sum_ = 0.0;
    std::size_t answered_ = 0;
};

} // namespace powerdial::apps::searchx

#endif // POWERDIAL_APPS_SEARCHX_APP_H
