/**
 * @file
 * Inverted-index search engine core.
 *
 * From-scratch stand-in for swish++ (paper section 4.4): builds an
 * inverted index over a document corpus and answers ranked queries with
 * tf-idf scoring. The max-results knob truncates the ranked list — the
 * paper's single swish++ dynamic knob — which shrinks both the
 * selection work (a bounded heap) and the result-serialisation work.
 */
#ifndef POWERDIAL_APPS_SEARCHX_INDEX_H
#define POWERDIAL_APPS_SEARCHX_INDEX_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "qos/retrieval.h"
#include "workload/corpus.h"

namespace powerdial::apps::searchx {

/** One posting: a document and the term's frequency within it. */
struct Posting
{
    qos::DocId doc;
    std::uint32_t tf;
};

/** One ranked search result. */
struct SearchResult
{
    qos::DocId doc;
    double score;
};

/** Outcome of one query, with a work estimate for cycle costing. */
struct QueryOutcome
{
    std::vector<SearchResult> results; //!< Ranked, truncated list.
    std::uint64_t work_ops = 0;        //!< Scoring + selection +
                                       //!< serialisation operations.
};

/** An immutable inverted index over a corpus. */
class InvertedIndex
{
  public:
    explicit InvertedIndex(const std::vector<workload::Document> &docs);

    /** Number of indexed documents. */
    std::size_t documentCount() const { return doc_count_; }

    /** Postings for @p word (empty if absent). */
    const std::vector<Posting> &postings(workload::WordId word) const;

    /**
     * Rank documents for @p query by tf-idf sum and return the top
     * @p max_results. Work accounting: one op per posting scored, a
     * log2(max_results) factor per heap update, and a fixed
     * serialisation cost per returned result.
     *
     * Scoring accumulates into a dense per-document scratch array
     * retained across queries (every tf-idf contribution is strictly
     * positive, so "score == 0" doubles as the touched mark), replacing
     * the previous per-query hash map. Results and work_ops are
     * bit-identical: per-document accumulation order is unchanged and
     * the ranking comparator is a strict total order, so the ranked
     * prefix never depended on hash traversal order. The scratch makes
     * search() not safe to call concurrently on one instance; every
     * engine in this repo clones the app per worker (FanoutEngine), so
     * no caller does.
     */
    QueryOutcome search(const workload::Query &query,
                        std::size_t max_results) const;

    /** Per-result serialisation cost, ops (tunes the knob's speedup). */
    static constexpr std::uint64_t kSerializeOpsPerResult = 60;

  private:
    std::unordered_map<workload::WordId, std::vector<Posting>> index_;
    std::vector<Posting> empty_;
    std::size_t doc_count_ = 0;
    // Query-scoring scratch (see search()). score_of_ is zero outside
    // a search() call; touched_/ranked_ keep their capacity warm.
    mutable std::vector<double> score_of_;
    mutable std::vector<qos::DocId> touched_;
    mutable std::vector<SearchResult> ranked_;
};

/**
 * Retained naive query scoring (index_ref.cc): the pre-optimization
 * hash-map implementation over the same public index, kept verbatim as
 * the bit-exactness oracle for InvertedIndex::search.
 */
namespace reference {
QueryOutcome search(const InvertedIndex &index,
                    const workload::Query &query, std::size_t max_results);
} // namespace reference

} // namespace powerdial::apps::searchx

#endif // POWERDIAL_APPS_SEARCHX_INDEX_H
