/**
 * @file
 * External-observer view of a heartbeat Monitor.
 *
 * The real Application Heartbeats library exposes a shared-memory reader
 * so that an external process (the PowerDial control system, an OS
 * service, ...) can observe an application's heart rate without linking
 * against the application. This reader reproduces that read-only API
 * surface in-process.
 */
#ifndef POWERDIAL_HEARTBEATS_READER_H
#define POWERDIAL_HEARTBEATS_READER_H

#include "heartbeats/heartbeat.h"

namespace powerdial::hb {

/** Read-only observer handle onto a Monitor. */
class Reader
{
  public:
    explicit Reader(const Monitor &monitor) : monitor_(&monitor) {}

    /** Sequence number of the most recent beat (count - 1), or -1. */
    std::int64_t
    currentTag() const
    {
        return static_cast<std::int64_t>(monitor_->count()) - 1;
    }

    /** Window heart rate, beats/second. */
    double windowRate() const { return monitor_->windowRate(); }

    /** Global heart rate, beats/second. */
    double globalRate() const { return monitor_->globalRate(); }

    /** Declared minimum target rate. */
    double minTarget() const { return monitor_->target().min_rate; }

    /** Declared maximum target rate. */
    double maxTarget() const { return monitor_->target().max_rate; }

    /** Record of beat @p tag. */
    const HeartbeatRecord &
    record(std::uint64_t tag) const
    {
        return monitor_->record(tag);
    }

  private:
    const Monitor *monitor_;
};

} // namespace powerdial::hb

#endif // POWERDIAL_HEARTBEATS_READER_H
