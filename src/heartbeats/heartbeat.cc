#include <algorithm>
#include <cmath>

#include "heartbeats/heartbeat.h"

namespace powerdial::hb {

Monitor::Monitor(std::size_t window_size, HeartRateTarget target)
    : window_size_(window_size), target_(target)
{
    if (window_size_ == 0)
        throw std::invalid_argument("Monitor: window size must be >= 1");
    if (target_.min_rate < 0.0 || target_.max_rate < target_.min_rate)
        throw std::invalid_argument("Monitor: bad target range");
}

const HeartbeatRecord &
Monitor::beat(double now)
{
    HeartbeatRecord rec{};
    rec.tag = log_.size();
    rec.timestamp = now;
    if (!log_.empty()) {
        const double prev = log_.back().timestamp;
        if (now < prev)
            throw std::invalid_argument("Monitor: time went backwards");
        rec.latency = now - prev;
        rec.instant_rate = rec.latency > 0.0 ? 1.0 / rec.latency : 0.0;

        window_latencies_.push_back(rec.latency);
        window_latency_sum_ += rec.latency;
        if (window_latencies_.size() > window_size_) {
            window_latency_sum_ -= window_latencies_.front();
            window_latencies_.pop_front();
        }
    }
    rec.window_rate = windowRate();
    const double span = log_.empty() ? 0.0 : now - log_.front().timestamp;
    rec.global_rate =
        span > 0.0 ? static_cast<double>(log_.size()) / span : 0.0;
    log_.push_back(rec);
    return log_.back();
}

const HeartbeatRecord &
Monitor::latest() const
{
    if (log_.empty())
        throw std::logic_error("Monitor: no heartbeats yet");
    return log_.back();
}

double
Monitor::windowRate() const
{
    if (window_latencies_.empty() || window_latency_sum_ <= 0.0)
        return 0.0;
    return static_cast<double>(window_latencies_.size()) /
           window_latency_sum_;
}

double
Monitor::globalRate() const
{
    if (log_.size() < 2)
        return 0.0;
    const double span = log_.back().timestamp - log_.front().timestamp;
    return span > 0.0
        ? static_cast<double>(log_.size() - 1) / span
        : 0.0;
}

WindowStats
Monitor::windowStats() const
{
    WindowStats stats;
    if (window_latencies_.empty())
        return stats;
    const double n = static_cast<double>(window_latencies_.size());
    stats.min_latency = window_latencies_.front();
    stats.max_latency = window_latencies_.front();
    double sum = 0.0, sum_sq = 0.0;
    for (const double lat : window_latencies_) {
        stats.min_latency = std::min(stats.min_latency, lat);
        stats.max_latency = std::max(stats.max_latency, lat);
        sum += lat;
        sum_sq += lat * lat;
    }
    stats.mean_latency = sum / n;
    const double var =
        sum_sq / n - stats.mean_latency * stats.mean_latency;
    stats.stddev_latency = var > 0.0 ? std::sqrt(var) : 0.0;
    return stats;
}

void
Monitor::setTarget(HeartRateTarget target)
{
    if (target.min_rate < 0.0 || target.max_rate < target.min_rate)
        throw std::invalid_argument("Monitor: bad target range");
    target_ = target;
}

} // namespace powerdial::hb
