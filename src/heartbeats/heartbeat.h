/**
 * @file
 * Application Heartbeats framework (Hoffmann et al., ICAC 2010).
 *
 * PowerDial's feedback mechanism (paper section 2.3.1): applications emit
 * a heartbeat at the top of their main control loop and declare a target
 * heart-rate range; observers (the PowerDial control system) read the
 * measured rates. This implementation is clock-agnostic — callers supply
 * timestamps, which in this repository come from the simulated machine's
 * virtual clock.
 */
#ifndef POWERDIAL_HEARTBEATS_HEARTBEAT_H
#define POWERDIAL_HEARTBEATS_HEARTBEAT_H

#include <cstddef>
#include <cstdint>
#include <deque>
#include <stdexcept>
#include <vector>

namespace powerdial::hb {

/** One heartbeat, with the rates observable at the time it was emitted. */
struct HeartbeatRecord
{
    std::uint64_t tag;   //!< Sequence number, starting at 0.
    double timestamp;    //!< Emission time, seconds.
    double latency;      //!< Time since the previous beat (0 for the first).
    double instant_rate; //!< 1 / latency (0 for the first beat).
    double window_rate;  //!< Mean rate over the sliding window.
    double global_rate;  //!< Mean rate since the first beat.
};

/** Target heart-rate range declared by the application. */
struct HeartRateTarget
{
    double min_rate; //!< Minimum acceptable heart rate, beats/second.
    double max_rate; //!< Maximum desired heart rate, beats/second.

    /** Midpoint of the target range — the controller's set point. */
    double midpoint() const { return 0.5 * (min_rate + max_rate); }
};

/**
 * Latency statistics over the sliding window — the summary the real
 * Application Heartbeats API exposes to external observers.
 */
struct WindowStats
{
    double min_latency = 0.0;
    double max_latency = 0.0;
    double mean_latency = 0.0;
    double stddev_latency = 0.0;
};

/**
 * The heartbeat registry for one application instance.
 *
 * Maintains the full beat log plus a sliding window of the most recent
 * latencies for window-rate queries (the paper's figures use a sliding
 * mean over the last twenty beats).
 */
class Monitor
{
  public:
    /**
     * @param window_size Beats in the sliding window (must be >= 1).
     * @param target      Declared target heart-rate range.
     */
    Monitor(std::size_t window_size, HeartRateTarget target);

    /**
     * Emit a heartbeat at time @p now (seconds). Timestamps must be
     * non-decreasing.
     * @return The record for this beat.
     */
    const HeartbeatRecord &beat(double now);

    /** Total beats emitted. */
    std::size_t count() const { return log_.size(); }

    /** The i-th heartbeat record. */
    const HeartbeatRecord &record(std::size_t i) const { return log_.at(i); }

    /** The most recent heartbeat. Throws if no beat was emitted. */
    const HeartbeatRecord &latest() const;

    /**
     * Heart rate over the sliding window, beats/second.
     * Returns 0 before the second beat.
     */
    double windowRate() const;

    /** Heart rate since the first beat, beats/second (0 before 2 beats). */
    double globalRate() const;

    /** Latency statistics over the current window (zeros if empty). */
    WindowStats windowStats() const;

    /** The declared target range. */
    const HeartRateTarget &target() const { return target_; }

    /** Replace the target range (used when re-aiming the controller). */
    void setTarget(HeartRateTarget target);

    /** Sliding-window size in beats. */
    std::size_t windowSize() const { return window_size_; }

    /** Full beat log. */
    const std::vector<HeartbeatRecord> &log() const { return log_; }

  private:
    std::size_t window_size_;
    HeartRateTarget target_;
    std::vector<HeartbeatRecord> log_;
    std::deque<double> window_latencies_;
    double window_latency_sum_ = 0.0;
};

} // namespace powerdial::hb

#endif // POWERDIAL_HEARTBEATS_HEARTBEAT_H
