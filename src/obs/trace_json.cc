#include "obs/trace_json.h"

#include <set>
#include <string>

#include "obs/format.h"

namespace powerdial::obs {
namespace {

constexpr const char *
severityName(Severity severity)
{
    switch (severity) {
    case Severity::Debug:
        return "debug";
    case Severity::Info:
        return "info";
    case Severity::Warn:
        return "warn";
    }
    return "?";
}

/** Tiny deterministic JSON object builder: fields render in call
 *  order, numbers through formatDouble, no whitespace. */
class Obj
{
  public:
    Obj &
    raw(const char *key, const std::string &value)
    {
        body_ += first_ ? "\"" : ",\"";
        first_ = false;
        body_ += key;
        body_ += "\":";
        body_ += value;
        return *this;
    }

    Obj &
    num(const char *key, double value)
    {
        return raw(key, formatDouble(value));
    }

    Obj &
    count(const char *key, std::size_t value)
    {
        return raw(key, std::to_string(value));
    }

    /** A size_t identity field; kNoIndex means absent. */
    Obj &
    index(const char *key, std::size_t value)
    {
        if (value != kNoIndex)
            count(key, value);
        return *this;
    }

    /** A static, escape-free string (kind names, shed causes). */
    Obj &
    str(const char *key, const char *value)
    {
        return raw(key, "\"" + std::string(value) + "\"");
    }

    std::string
    done() const
    {
        return body_ + "}";
    }

  private:
    std::string body_ = "{";
    bool first_ = true;
};

/** The kind-specific payload fields, shared by both exporters. */
void
appendPayload(Obj &obj, const TraceRecord &r)
{
    switch (r.kind) {
    case TraceKind::JobStart:
        obj.count("beats", r.beats);
        break;
    case TraceKind::JobEnd:
        obj.num("latency_s", r.latency_s)
            .num("qos_loss", r.qos_loss)
            .num("service_s", r.service_s)
            .num("queue_share_s", r.queue_share_s)
            .num("class_deficit_s", r.class_deficit_s)
            .num("pause_s", r.pause_s)
            .count("beats", r.beats);
        break;
    case TraceKind::Control:
        obj.index("beat", r.beat)
            .num("window_rate", r.window_rate)
            .num("error", r.error)
            .num("commanded", r.commanded)
            .num("knob_gain", r.knob_gain)
            .index("combination", r.combination);
        break;
    case TraceKind::Beat:
        obj.index("beat", r.beat)
            .num("window_rate", r.window_rate)
            .num("error", r.error)
            .num("commanded", r.commanded)
            .num("knob_gain", r.knob_gain)
            .index("combination", r.combination)
            .index("pstate", r.pstate);
        break;
    case TraceKind::Admit:
        obj.num("predicted_s", r.predicted_s)
            .num("deadline_s", r.deadline_s)
            .num("margin", r.margin)
            .num("class_factor", r.class_factor);
        break;
    case TraceKind::Shed:
        obj.str("cause", r.cause != nullptr ? r.cause : "?")
            .num("predicted_s", r.predicted_s)
            .num("deadline_s", r.deadline_s)
            .num("margin", r.margin)
            .num("class_factor", r.class_factor);
        break;
    case TraceKind::Placement:
        obj.num("cost", r.cost);
        break;
    case TraceKind::Arbitration:
        obj.count("generation", r.generation)
            .num("budget_watts", r.budget_watts)
            .count("pstate_cap", r.pstate_cap)
            .num("pause_ratio", r.pause_ratio);
        break;
    case TraceKind::Lease:
        obj.count("generation", r.generation)
            .num("share", r.share)
            .count("pstate_cap", r.pstate_cap)
            .num("pause_ratio", r.pause_ratio);
        break;
    }
}

/** Whether a record renders on the fleet process (pid 1) rather than
 *  the tenants process (pid 2). */
bool
onFleetTrack(const TraceRecord &r)
{
    return (categoryOf(r.kind) &
            (kCatAdmission | kCatPlacement | kCatArbitration)) != 0;
}

std::string
chromeTs(double time_s)
{
    return formatDouble(time_s * 1e6);
}

std::string
chromeEvent(const TraceRecord &r)
{
    Obj obj;
    if (r.kind == TraceKind::JobStart || r.kind == TraceKind::JobEnd) {
        // One nestable async span per job: overlapping jobs of one
        // tenant render as overlapping slices on the tenant track.
        obj.str("name", ("job " + std::to_string(r.job)).c_str())
            .str("ph", r.kind == TraceKind::JobStart ? "b" : "e")
            .str("cat", "job")
            .count("id", r.job)
            .count("pid", 2)
            .count("tid", r.tenant == kNoIndex ? 0 : r.tenant + 1)
            .raw("ts", chromeTs(r.time_s));
    } else {
        const bool fleet = onFleetTrack(r);
        obj.str("name", kindName(r.kind))
            .str("ph", "i")
            .str("s", "t")
            .count("pid", fleet ? 1 : 2)
            .count("tid",
                   fleet ? (r.machine == kNoIndex ? 0 : r.machine + 1)
                         : (r.tenant == kNoIndex ? 0 : r.tenant + 1))
            .raw("ts", chromeTs(r.time_s));
    }
    Obj args;
    args.index("job", r.job)
        .index("offer", r.offer)
        .index("class", r.job_class);
    if (onFleetTrack(r))
        args.index("tenant", r.tenant).index("machine", r.machine);
    appendPayload(args, r);
    obj.raw("args", args.done());
    return obj.done();
}

std::string
chromeMeta(const char *what, std::size_t pid, std::size_t tid,
           const std::string &name)
{
    Obj obj;
    obj.str("name", what).str("ph", "M").count("pid", pid);
    if (tid != kNoIndex)
        obj.count("tid", tid);
    Obj args;
    args.str("name", name.c_str());
    obj.raw("args", args.done());
    return obj.done();
}

} // namespace

void
writeChromeTrace(std::ostream &os,
                 const std::vector<TraceRecord> &records)
{
    // Deterministic track naming: the sorted sets of machine and
    // tenant ids that actually appear.
    std::set<std::size_t> machines;
    std::set<std::size_t> tenants;
    for (const TraceRecord &r : records) {
        if (r.machine != kNoIndex)
            machines.insert(r.machine);
        if (r.tenant != kNoIndex)
            tenants.insert(r.tenant);
    }

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    const char *separator = "\n";
    auto put = [&](const std::string &event) {
        os << separator << event;
        separator = ",\n";
    };
    put(chromeMeta("process_name", 1, kNoIndex, "fleet"));
    put(chromeMeta("process_name", 2, kNoIndex, "tenants"));
    for (std::size_t machine : machines)
        put(chromeMeta("thread_name", 1, machine + 1,
                       "machine " + std::to_string(machine)));
    for (std::size_t tenant : tenants)
        put(chromeMeta("thread_name", 2, tenant + 1,
                       "tenant " + std::to_string(tenant)));
    for (const TraceRecord &record : records)
        put(chromeEvent(record));
    os << "\n]}\n";
}

void
writeJsonl(std::ostream &os, const std::vector<TraceRecord> &records)
{
    for (const TraceRecord &r : records) {
        Obj obj;
        obj.num("t", r.time_s)
            .str("kind", kindName(r.kind))
            .str("sev", severityName(r.severity))
            .count("stream", r.stream)
            .count("seq", r.seq)
            .index("job", r.job)
            .index("offer", r.offer)
            .index("tenant", r.tenant)
            .index("machine", r.machine)
            .index("class", r.job_class);
        appendPayload(obj, r);
        os << obj.done() << "\n";
    }
}

} // namespace powerdial::obs
