/**
 * @file
 * Deterministic metrics registry: named counters and fixed-bucket
 * log-scale histograms with Prometheus text exposition.
 *
 * Everything about the registry is value-deterministic: families and
 * labeled instances live in ordered maps, bucket bounds are a pure
 * function of the spec, and writePrometheus renders through the same
 * shortest-round-trip double formatting as the trace exporters — so
 * two runs that observe the same values emit byte-identical text,
 * which is what lets CI diff a metrics dump like any other golden.
 *
 * Histograms use Prometheus "le" (cumulative, inclusive upper bound)
 * semantics: bucket le=B counts every observation <= B, the implicit
 * +Inf bucket counts everything. Bounds are log-spaced — bounds[i] =
 * min * 10^(i / buckets_per_decade) — because the quantities worth
 * histogramming here (latency, QoS loss, watts, queue depth) span
 * decades.
 */
#ifndef POWERDIAL_OBS_METRICS_H
#define POWERDIAL_OBS_METRICS_H

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace powerdial::obs {

/** A monotone counter (Prometheus "counter" type). */
class Counter
{
  public:
    void
    add(double delta)
    {
        value_ += delta;
    }

    void
    increment()
    {
        value_ += 1.0;
    }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Log-scale bucket layout: bounds span @p decades decades up from
 *  @p min with @p buckets_per_decade bounds per decade. */
struct HistogramSpec
{
    double min = 1e-3;
    std::size_t buckets_per_decade = 3;
    std::size_t decades = 6;
};

/** A fixed-bucket histogram (Prometheus "histogram" type). */
class Histogram
{
  public:
    explicit Histogram(const HistogramSpec &spec);

    void observe(double value);

    /** Finite bucket upper bounds, ascending. */
    const std::vector<double> &bounds() const { return bounds_; }

    /**
     * Per-bucket (non-cumulative) counts; counts()[i] covers
     * (bounds()[i-1], bounds()[i]], counts().back() is the +Inf
     * overflow bucket. Size = bounds().size() + 1.
     */
    const std::vector<std::size_t> &counts() const { return counts_; }

    double sum() const { return sum_; }
    std::size_t total() const { return total_; }

  private:
    std::vector<double> bounds_;
    std::vector<std::size_t> counts_;
    double sum_ = 0.0;
    std::size_t total_ = 0;
};

/**
 * A registry of metric families. A family is one metric name with one
 * help string and one type; instances within a family are
 * distinguished by a pre-rendered Prometheus label string (e.g.
 * `job_class="1"`, empty for the unlabeled instance). Lookup creates
 * on first use and returns a stable reference thereafter; asking for
 * the same name with a different type throws.
 */
class MetricsRegistry
{
  public:
    Counter &counter(const std::string &name, const std::string &help,
                     const std::string &labels = std::string());

    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         const HistogramSpec &spec,
                         const std::string &labels = std::string());

    /** Prometheus text exposition format, deterministically ordered
     *  (families by name, instances by label string). */
    void writePrometheus(std::ostream &os) const;

  private:
    struct Family
    {
        std::string help;
        const char *type = nullptr; // "counter" or "histogram"
        std::map<std::string, Counter> counters;
        std::map<std::string, Histogram> histograms;
    };

    Family &family(const std::string &name, const std::string &help,
                   const char *type);

    std::map<std::string, Family> families_;
};

} // namespace powerdial::obs

#endif // POWERDIAL_OBS_METRICS_H
