/**
 * @file
 * Deterministic number formatting shared by the trace and metrics
 * exporters.
 *
 * Both exporters promise byte-identical output for identical inputs,
 * so every double must render the same way everywhere: the shortest
 * decimal string that round-trips back to the exact bit pattern
 * (tried at increasing precision, the way modern to_chars shortest
 * formatting behaves, but portable to every toolchain the repo
 * supports). Locale-independent by construction — snprintf with "%.*g"
 * on the "C"-locale decimal point only; the validator in the tests
 * rejects anything else.
 */
#ifndef POWERDIAL_OBS_FORMAT_H
#define POWERDIAL_OBS_FORMAT_H

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace powerdial::obs {

/**
 * The shortest "%.*g" rendering of @p value that strtod parses back
 * bit-exactly. Non-finite values render as 0 (JSON has no literal for
 * them; no virtual-clock quantity in this repo is legitimately
 * non-finite by the time it is exported).
 */
inline std::string
formatDouble(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buffer[40];
    // Integers below 2^53 print as plain digits ("10", not the
    // equally round-trippable but unreadable "1e+01").
    if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
        std::snprintf(buffer, sizeof buffer, "%.0f", value);
        return buffer;
    }
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
        if (std::strtod(buffer, nullptr) == value)
            break;
    }
    return buffer;
}

} // namespace powerdial::obs

#endif // POWERDIAL_OBS_FORMAT_H
