/**
 * @file
 * Deterministic fan-in of structured trace events.
 *
 * The TraceSink reuses the MetricsHub shard discipline: one record
 * vector per fan-out worker, each written by exactly one worker (no
 * locks), plus one extra shard for the serial fleet plane (admission,
 * placement, arbitration, leases — all emitted from the engines'
 * serial sections). drain() concatenates the shards and sorts by
 * (time_s, stream, seq) — a total order that never mentions the
 * worker, so the drained sequence (and therefore every exporter's
 * byte stream) is identical at any thread count.
 *
 * Cost discipline: every emission site asks wants(category, severity)
 * first — one mask-and-compare — so a category that is off costs one
 * branch per event and builds no record (bench_overhead pins the
 * ceiling). A non-zero ring_capacity turns each shard into a bounded
 * flight recorder that keeps only the newest records; ring mode is
 * for always-on crash forensics, NOT for byte-identical export
 * (which records survive depends on how many each worker saw).
 */
#ifndef POWERDIAL_OBS_TRACE_SINK_H
#define POWERDIAL_OBS_TRACE_SINK_H

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/run_observer.h"
#include "obs/trace_event.h"

namespace powerdial::obs {

/** Sink configuration: what is recorded, and into how much memory. */
struct TraceConfig
{
    unsigned categories = kCatAll;           //!< Category bitmask.
    Severity min_severity = Severity::Debug; //!< Records below: dropped.
    /** Per-shard flight-recorder bound; 0 = unbounded recording. */
    std::size_t ring_capacity = 0;
};

/**
 * Parse a comma-separated category list ("control,beat,lifecycle,
 * admission,placement,arbitration", plus the aliases "fleet" =
 * admission|placement|arbitration, "all", and "none"). Returns
 * std::nullopt on an unknown name.
 */
std::optional<unsigned> parseCategories(const std::string &text);

/** Lock-free, thread-count-deterministic trace event collector. */
class TraceSink
{
  public:
    explicit TraceSink(TraceConfig config = {});

    const TraceConfig &config() const { return config_; }

    /** The one-branch recording test every emission site runs. */
    bool
    wants(unsigned category, Severity severity) const
    {
        return (config_.categories & category) != 0 &&
            severity >= config_.min_severity;
    }

    /**
     * (Re)size to @p workers parallel shards plus the serial fleet
     * shard, clearing all state — both engines call this at the top
     * of a serve, so one sink attached to several serves in sequence
     * holds the last serve's trace.
     */
    void beginServe(std::size_t workers);

    /** Record @p record into worker @p worker's shard. */
    void emit(std::size_t worker, const TraceRecord &record);

    /**
     * Record a serial-plane (fleet) event: stream and seq are
     * assigned by the sink (stream 0, one monotone sequence). Only
     * the engines' serial sections may call this.
     */
    void emitFleet(TraceRecord record);

    /** Records currently held (across all shards). */
    std::size_t recorded() const;

    /** Records overwritten by ring-mode bounds since beginServe. */
    std::size_t dropped() const { return dropped_; }

    /**
     * Merge and clear all shards, returning the records sorted by
     * (time_s, stream, seq). Call from the coordinating thread only,
     * with no tenant slice in flight.
     */
    std::vector<TraceRecord> drain();

  private:
    struct Shard
    {
        std::vector<TraceRecord> records;
        std::size_t next = 0; //!< Ring overwrite cursor.
    };

    void push(Shard &shard, const TraceRecord &record);

    TraceConfig config_;
    std::vector<Shard> shards_; //!< Last shard = serial fleet plane.
    std::size_t fleet_seq_ = 0;
    std::size_t dropped_ = 0;
};

/**
 * The per-job observer adapter: one TraceProbe per tenant session
 * turns RunObserver callbacks into Control/Beat/Lifecycle records on
 * the job's own stream (job + 1), offset from machine-local to fleet
 * virtual time by the job's admission time. The engines call
 * beginSlice(worker) before every epoch slice so records land in the
 * shard of the worker actually running the slice.
 */
class TraceProbe final : public core::RunObserver
{
  public:
    /** The job identity every record of this stream carries. */
    struct Identity
    {
        std::size_t job = 0;
        std::size_t tenant = kNoIndex;
        std::size_t machine = kNoIndex;
        std::size_t job_class = kNoIndex;
        /** Fleet virtual time at admission: added to machine-local
         *  event times, which start at 0 on a fresh tenant machine. */
        double offset_s = 0.0;
    };

    TraceProbe(TraceSink &sink, const Identity &identity)
        : sink_(&sink), identity_(identity)
    {
    }

    /** Route subsequent records to @p worker's shard. */
    void beginSlice(std::size_t worker) { worker_ = worker; }

    void onRunStart(const core::RunStartEvent &event) override;
    void onQuantum(const core::QuantumEvent &event) override;
    void onBeat(const core::BeatEvent &event) override;
    void onRunEnd(const core::ControlledRun &run) override;

  private:
    TraceRecord base(TraceKind kind, Severity severity,
                     double local_time_s);

    TraceSink *sink_;
    Identity identity_;
    std::size_t worker_ = 0;
    std::size_t seq_ = 0;
    double target_rate_ = 0.0;
    double start_time_s_ = 0.0;
};

} // namespace powerdial::obs

#endif // POWERDIAL_OBS_TRACE_SINK_H
