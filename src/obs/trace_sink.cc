#include "obs/trace_sink.h"

#include <algorithm>
#include <stdexcept>
#include <tuple>

namespace powerdial::obs {

std::optional<unsigned>
parseCategories(const std::string &text)
{
    unsigned mask = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(',', start);
        if (end == std::string::npos)
            end = text.size();
        const std::string name = text.substr(start, end - start);
        if (name == "lifecycle")
            mask |= kCatLifecycle;
        else if (name == "control")
            mask |= kCatControl;
        else if (name == "beat")
            mask |= kCatBeat;
        else if (name == "admission")
            mask |= kCatAdmission;
        else if (name == "placement")
            mask |= kCatPlacement;
        else if (name == "arbitration")
            mask |= kCatArbitration;
        else if (name == "fleet")
            mask |= kCatAdmission | kCatPlacement | kCatArbitration;
        else if (name == "all")
            mask |= kCatAll;
        else if (name != "none")
            return std::nullopt;
        start = end + 1;
    }
    return mask;
}

TraceSink::TraceSink(TraceConfig config) : config_(config)
{
    beginServe(1);
}

void
TraceSink::beginServe(std::size_t workers)
{
    shards_.assign((workers == 0 ? 1 : workers) + 1, Shard{});
    fleet_seq_ = 0;
    dropped_ = 0;
}

void
TraceSink::push(Shard &shard, const TraceRecord &record)
{
    const std::size_t cap = config_.ring_capacity;
    if (cap != 0 && shard.records.size() >= cap) {
        shard.records[shard.next] = record;
        shard.next = (shard.next + 1) % cap;
        ++dropped_;
        return;
    }
    shard.records.push_back(record);
}

void
TraceSink::emit(std::size_t worker, const TraceRecord &record)
{
    if (worker + 1 >= shards_.size())
        throw std::out_of_range("TraceSink: bad worker index");
    push(shards_[worker], record);
}

void
TraceSink::emitFleet(TraceRecord record)
{
    record.stream = 0;
    record.seq = fleet_seq_++;
    push(shards_.back(), record);
}

std::size_t
TraceSink::recorded() const
{
    std::size_t total = 0;
    for (const Shard &shard : shards_)
        total += shard.records.size();
    return total;
}

std::vector<TraceRecord>
TraceSink::drain()
{
    std::vector<TraceRecord> merged;
    merged.reserve(recorded());
    for (Shard &shard : shards_) {
        // Unwrap the ring: oldest surviving record first.
        for (std::size_t i = shard.next; i < shard.records.size(); ++i)
            merged.push_back(shard.records[i]);
        for (std::size_t i = 0; i < shard.next; ++i)
            merged.push_back(shard.records[i]);
        shard.records.clear();
        shard.next = 0;
    }
    std::sort(merged.begin(), merged.end(),
              [](const TraceRecord &a, const TraceRecord &b) {
                  return std::tie(a.time_s, a.stream, a.seq) <
                      std::tie(b.time_s, b.stream, b.seq);
              });
    return merged;
}

TraceRecord
TraceProbe::base(TraceKind kind, Severity severity, double local_time_s)
{
    TraceRecord record;
    record.time_s = identity_.offset_s + local_time_s;
    record.kind = kind;
    record.severity = severity;
    record.stream = identity_.job + 1;
    record.seq = seq_++;
    record.job = identity_.job;
    record.tenant = identity_.tenant;
    record.machine = identity_.machine;
    record.job_class = identity_.job_class;
    return record;
}

void
TraceProbe::onRunStart(const core::RunStartEvent &event)
{
    target_rate_ = event.target_rate;
    start_time_s_ = event.start_time_s;
    if (!sink_->wants(kCatLifecycle, Severity::Info))
        return;
    TraceRecord record =
        base(TraceKind::JobStart, Severity::Info, event.start_time_s);
    record.beats = event.units;
    sink_->emit(worker_, record);
}

void
TraceProbe::onQuantum(const core::QuantumEvent &event)
{
    if (!sink_->wants(kCatControl, Severity::Info))
        return;
    TraceRecord record =
        base(TraceKind::Control, Severity::Info, event.time_s);
    record.beat = event.beat;
    record.window_rate = event.window_rate;
    record.error = target_rate_ - event.window_rate;
    record.commanded = event.commanded_speedup;
    if (!event.plan.slices.empty()) {
        record.combination = event.plan.slices.front().combination;
        record.knob_gain = event.plan.slices.front().speedup;
    }
    sink_->emit(worker_, record);
}

void
TraceProbe::onBeat(const core::BeatEvent &event)
{
    if (!sink_->wants(kCatBeat, Severity::Debug))
        return;
    TraceRecord record =
        base(TraceKind::Beat, Severity::Debug, event.trace.time_s);
    record.beat = event.beat;
    record.window_rate = event.trace.window_rate;
    record.error = target_rate_ - event.trace.window_rate;
    record.commanded = event.trace.commanded_speedup;
    record.knob_gain = event.trace.knob_gain;
    record.combination = event.trace.combination;
    record.pstate = event.trace.pstate;
    sink_->emit(worker_, record);
}

void
TraceProbe::onRunEnd(const core::ControlledRun &run)
{
    if (!sink_->wants(kCatLifecycle, Severity::Info))
        return;
    TraceRecord record = base(TraceKind::JobEnd, Severity::Info,
                              start_time_s_ + run.seconds);
    record.latency_s = run.seconds;
    record.qos_loss = run.mean_qos_loss_estimate;
    record.service_s = run.service_s;
    record.queue_share_s = run.queue_share_s;
    record.class_deficit_s = run.class_deficit_s;
    record.pause_s = run.pause_s;
    record.beats = run.beat_count;
    sink_->emit(worker_, record);
}

} // namespace powerdial::obs
