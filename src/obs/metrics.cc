#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/format.h"

namespace powerdial::obs {

Histogram::Histogram(const HistogramSpec &spec)
{
    if (!(spec.min > 0.0))
        throw std::invalid_argument("Histogram: min must be positive");
    if (spec.buckets_per_decade == 0)
        throw std::invalid_argument(
            "Histogram: need at least one bucket per decade");
    const std::size_t n = spec.buckets_per_decade * spec.decades;
    bounds_.reserve(n + 1);
    for (std::size_t i = 0; i <= n; ++i)
        bounds_.push_back(
            spec.min *
            std::pow(10.0, static_cast<double>(i) /
                               static_cast<double>(
                                   spec.buckets_per_decade)));
    counts_.assign(bounds_.size() + 1, 0);
}

void
Histogram::observe(double value)
{
    // First bound >= value; le semantics make the edge inclusive.
    // Everything past the last bound lands in the +Inf slot.
    const std::size_t index = static_cast<std::size_t>(
        std::lower_bound(bounds_.begin(), bounds_.end(), value) -
        bounds_.begin());
    ++counts_[index];
    sum_ += value;
    ++total_;
}

MetricsRegistry::Family &
MetricsRegistry::family(const std::string &name, const std::string &help,
                        const char *type)
{
    Family &family = families_[name];
    if (family.type == nullptr) {
        family.help = help;
        family.type = type;
    } else if (std::string(family.type) != type) {
        throw std::logic_error("MetricsRegistry: metric '" + name +
                               "' registered as both " + family.type +
                               " and " + type);
    }
    return family;
}

Counter &
MetricsRegistry::counter(const std::string &name,
                         const std::string &help,
                         const std::string &labels)
{
    return family(name, help, "counter").counters[labels];
}

Histogram &
MetricsRegistry::histogram(const std::string &name,
                           const std::string &help,
                           const HistogramSpec &spec,
                           const std::string &labels)
{
    Family &fam = family(name, help, "histogram");
    auto it = fam.histograms.find(labels);
    if (it == fam.histograms.end())
        it = fam.histograms.emplace(labels, Histogram(spec)).first;
    return it->second;
}

namespace {

/** `name{labels,extra}` with empty pieces elided. */
std::string
labeled(const std::string &name, const std::string &labels,
        const std::string &extra = std::string())
{
    std::string joined = labels;
    if (!extra.empty())
        joined += joined.empty() ? extra : "," + extra;
    if (joined.empty())
        return name;
    return name + "{" + joined + "}";
}

} // namespace

void
MetricsRegistry::writePrometheus(std::ostream &os) const
{
    for (const auto &[name, family] : families_) {
        os << "# HELP " << name << " " << family.help << "\n";
        os << "# TYPE " << name << " " << family.type << "\n";
        for (const auto &[labels, counter] : family.counters)
            os << labeled(name, labels) << " "
               << formatDouble(counter.value()) << "\n";
        for (const auto &[labels, histogram] : family.histograms) {
            std::size_t cumulative = 0;
            const auto &bounds = histogram.bounds();
            const auto &counts = histogram.counts();
            for (std::size_t i = 0; i < bounds.size(); ++i) {
                cumulative += counts[i];
                os << labeled(name + "_bucket", labels,
                              "le=\"" + formatDouble(bounds[i]) + "\"")
                   << " " << cumulative << "\n";
            }
            os << labeled(name + "_bucket", labels, "le=\"+Inf\"")
               << " " << histogram.total() << "\n";
            os << labeled(name + "_sum", labels) << " "
               << formatDouble(histogram.sum()) << "\n";
            os << labeled(name + "_count", labels) << " "
               << histogram.total() << "\n";
        }
    }
}

} // namespace powerdial::obs
