/**
 * @file
 * Trace exporters: Chrome trace-event JSON (Perfetto-loadable) and a
 * line-delimited JSON stream.
 *
 * Both exporters are pure functions of a drained record sequence —
 * field order, number formatting (obs/format.h), and track layout are
 * all fixed — so identical records produce byte-identical files. The
 * Chrome export lays the fleet out as two processes: pid 1 ("fleet")
 * with one thread (track) per machine carrying admission, placement,
 * arbitration, and lease instants; pid 2 ("tenants") with one thread
 * per tenant input carrying control/beat instants plus a nestable
 * async span per job (begin at job_start, end at job_end), so
 * overlapping jobs of one tenant render as overlapping slices. Load
 * the file at https://ui.perfetto.dev ("Open trace file") or
 * chrome://tracing.
 */
#ifndef POWERDIAL_OBS_TRACE_JSON_H
#define POWERDIAL_OBS_TRACE_JSON_H

#include <ostream>
#include <vector>

#include "obs/trace_event.h"

namespace powerdial::obs {

/** Write @p records as one Chrome trace-event JSON document. */
void writeChromeTrace(std::ostream &os,
                      const std::vector<TraceRecord> &records);

/** Write @p records as JSONL: one compact JSON object per line. */
void writeJsonl(std::ostream &os,
                const std::vector<TraceRecord> &records);

} // namespace powerdial::obs

#endif // POWERDIAL_OBS_TRACE_JSON_H
