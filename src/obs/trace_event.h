/**
 * @file
 * The structured trace-event vocabulary of the observability layer.
 *
 * Every consequential decision the system makes — a controller
 * re-plan, an admission verdict, a placement costing, an arbitration
 * round, a lease rewrite, a shed — is describable as one TraceRecord:
 * a flat, fixed-layout struct with a common identity header (virtual
 * time, stream, per-stream sequence number, job/tenant/machine/class)
 * plus named payload fields, of which each TraceKind fills the subset
 * it needs. Flat on purpose: records are sortable by value, copyable
 * into per-worker shards without allocation, and exportable to both
 * Chrome trace JSON and JSONL from one switch over the kind.
 *
 * Timestamps are virtual-clock seconds (the simulated platform's
 * time), never host time, so a trace is a pure function of the
 * scenario — bit-identical across thread counts and replayable.
 */
#ifndef POWERDIAL_OBS_TRACE_EVENT_H
#define POWERDIAL_OBS_TRACE_EVENT_H

#include <cstddef>

namespace powerdial::obs {

/** "No index" sentinel for optional identity fields (rendered as
 *  absent by the exporters). */
inline constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

/**
 * Category bitmask: each record belongs to exactly one category;
 * TraceConfig::categories selects which are recorded at all. The
 * check is one mask-and-compare per event, so a category that is off
 * costs one branch.
 */
enum : unsigned {
    kCatLifecycle = 1u << 0,   //!< Job start / job end.
    kCatControl = 1u << 1,     //!< Quantum re-plans (error, command).
    kCatBeat = 1u << 2,        //!< Per-heartbeat actuation state.
    kCatAdmission = 1u << 3,   //!< Admission verdicts and sheds.
    kCatPlacement = 1u << 4,   //!< Per-candidate placement costs.
    kCatArbitration = 1u << 5, //!< Power splits and lease rewrites.
    kCatAll = (1u << 6) - 1,
};

/** Record severity; TraceConfig::min_severity filters below it. */
enum class Severity : unsigned char
{
    Debug = 0, //!< Per-beat firehose detail.
    Info = 1,  //!< Normal decisions (admits, leases, re-plans).
    Warn = 2,  //!< Something was turned away or degraded (sheds).
};

/** What one record describes. */
enum class TraceKind : unsigned char
{
    JobStart,    //!< Lifecycle: an admitted job began executing.
    JobEnd,      //!< Lifecycle: the job completed (latency breakdown).
    Control,     //!< Control: a quantum boundary re-plan.
    Beat,        //!< Beat: one heartbeat's actuation state.
    Admit,       //!< Admission: a job was admitted (with pricing).
    Shed,        //!< Admission: a job was turned away (with cause).
    Placement,   //!< Placement: one candidate machine's cost.
    Arbitration, //!< Arbitration: one machine's terms this round.
    Lease,       //!< Arbitration: one tenant's rewritten lease.
};

/** The category a kind belongs to. */
constexpr unsigned
categoryOf(TraceKind kind)
{
    switch (kind) {
    case TraceKind::JobStart:
    case TraceKind::JobEnd:
        return kCatLifecycle;
    case TraceKind::Control:
        return kCatControl;
    case TraceKind::Beat:
        return kCatBeat;
    case TraceKind::Admit:
    case TraceKind::Shed:
        return kCatAdmission;
    case TraceKind::Placement:
        return kCatPlacement;
    case TraceKind::Arbitration:
    case TraceKind::Lease:
        return kCatArbitration;
    }
    return 0;
}

/** Stable lower-case name of a kind (JSON "kind" field). */
constexpr const char *
kindName(TraceKind kind)
{
    switch (kind) {
    case TraceKind::JobStart:
        return "job_start";
    case TraceKind::JobEnd:
        return "job_end";
    case TraceKind::Control:
        return "control";
    case TraceKind::Beat:
        return "beat";
    case TraceKind::Admit:
        return "admit";
    case TraceKind::Shed:
        return "shed";
    case TraceKind::Placement:
        return "placement";
    case TraceKind::Arbitration:
        return "arbitration";
    case TraceKind::Lease:
        return "lease";
    }
    return "?";
}

/**
 * One trace event. The header (time_s..job_class) is always valid;
 * payload fields are valid per kind (see the exporters for which kind
 * renders which fields). Sorting by (time_s, stream, seq) is total —
 * stream 0 is the serial fleet plane with one sink-owned sequence,
 * every other stream is one job's observer (stream = job + 1) with a
 * probe-owned sequence — and independent of which worker recorded the
 * event, which is the whole determinism argument.
 */
struct TraceRecord
{
    // --- identity header -------------------------------------------------
    double time_s = 0.0;               //!< Virtual-clock timestamp.
    TraceKind kind = TraceKind::Beat;
    Severity severity = Severity::Info;
    std::size_t stream = 0;            //!< 0 = fleet plane, else job+1.
    std::size_t seq = 0;               //!< Per-stream sequence number.
    std::size_t job = kNoIndex;        //!< Fleet job id (if any).
    std::size_t offer = kNoIndex;      //!< Offer id (admission plane).
    std::size_t tenant = kNoIndex;     //!< Tenant input index (if any).
    std::size_t machine = kNoIndex;    //!< Machine index (if any).
    std::size_t job_class = kNoIndex;  //!< Priority class (if any).

    // --- control / beat payload ------------------------------------------
    std::size_t beat = kNoIndex;        //!< Beat index within the run.
    double window_rate = 0.0;           //!< Observed heart rate.
    double error = 0.0;                 //!< target - window_rate.
    double commanded = 0.0;             //!< Commanded speedup.
    double knob_gain = 0.0;             //!< Installed combo's speedup.
    std::size_t combination = kNoIndex; //!< Installed knob combination.
    std::size_t pstate = kNoIndex;      //!< Machine P-state.

    // --- admission / placement payload ------------------------------------
    double predicted_s = 0.0;   //!< Predicted completion latency.
    double deadline_s = 0.0;    //!< Offered deadline (0 = none).
    double margin = 0.0;        //!< Admission margin multiplier.
    double class_factor = 0.0;  //!< 1 + class_headroom * class.
    double cost = 0.0;          //!< Placement candidate cost.
    /** Shed cause ("capacity" / "slo"); static string or null. */
    const char *cause = nullptr;

    // --- arbitration / lease payload ---------------------------------------
    std::size_t generation = 0; //!< Arbitration-round generation.
    double share = 0.0;         //!< Leased core share.
    double budget_watts = 0.0;  //!< Machine's power budget this round.
    std::size_t pstate_cap = 0; //!< Leased DVFS cap (0 = uncapped).
    double pause_ratio = 0.0;   //!< Leased duty-cycle pause.

    // --- completion payload -----------------------------------------------
    double latency_s = 0.0;       //!< Total completion latency.
    double qos_loss = 0.0;        //!< Work-weighted calibrated QoS loss.
    double service_s = 0.0;       //!< Latency breakdown: pure service.
    double queue_share_s = 0.0;   //!< Breakdown: co-tenancy queueing.
    double class_deficit_s = 0.0; //!< Breakdown: sub-nominal speed.
    double pause_s = 0.0;         //!< Breakdown: gate + planned idle.
    std::size_t beats = 0;        //!< Heartbeats the job emitted.
};

} // namespace powerdial::obs

#endif // POWERDIAL_OBS_TRACE_EVENT_H
