/**
 * @file
 * Procedural raw-video source for the video-encoder benchmark.
 *
 * Stands in for the 1080p PARSEC/xiph.org inputs (paper section 4.2).
 * Frames are 8-bit grayscale planes containing a smooth background
 * gradient, several objects translating with constant velocities, and
 * mild sensor noise — enough texture and motion that motion-estimation
 * effort (the x264 knobs) genuinely changes prediction quality.
 */
#ifndef POWERDIAL_WORKLOAD_VIDEO_SOURCE_H
#define POWERDIAL_WORKLOAD_VIDEO_SOURCE_H

#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace powerdial::workload {

/** One 8-bit grayscale frame. */
struct Frame
{
    int width = 0;
    int height = 0;
    std::vector<std::uint8_t> pixels; //!< Row-major, width*height samples.

    std::uint8_t
    at(int x, int y) const
    {
        return pixels[static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(width) +
                      static_cast<std::size_t>(x)];
    }
};

/** Video synthesis parameters. */
struct VideoParams
{
    int width = 128;        //!< Scaled-down stand-in for 1080p.
    int height = 96;
    int frames = 30;
    int objects = 6;        //!< Moving rectangles.
    double max_speed = 3.0; //!< Max object speed, pixels/frame.
    double noise_sigma = 2.0;
    std::uint64_t seed = 0x71de0001;
};

/** Generates a deterministic synthetic clip. */
class VideoSource
{
  public:
    explicit VideoSource(const VideoParams &params);

    /** Generate the whole clip. */
    std::vector<Frame> frames() const;

    const VideoParams &params() const { return params_; }

  private:
    VideoParams params_;
};

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_VIDEO_SOURCE_H
