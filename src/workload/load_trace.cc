#include "workload/load_trace.h"

#include <algorithm>
#include <cmath>

namespace powerdial::workload {

namespace {

/**
 * The substream of step @p t: linear seeds on the SplitMix64
 * golden-ratio stride land on well-separated trajectories, so
 * neighbouring steps are decorrelated even though their seeds differ
 * by a constant. t + 1 keeps step 0 off the bare trace seed. Draw
 * order within a step is fixed: spike-start uniform first, then the
 * jitter gaussian, so spike membership and jitter never perturb each
 * other across parameter changes.
 */
Rng
stepRng(const LoadTraceParams &params, std::size_t t)
{
    return Rng(params.seed + 0x9e3779b97f4a7c15ULL * (t + 1));
}

/** Did the per-step substream start a spike at step @p t? */
bool
spikeStartsAt(const LoadTraceParams &params, std::size_t t)
{
    return stepRng(params, t).uniform() < params.spike_probability;
}

} // namespace

double
loadLevelAt(const LoadTraceParams &params, std::size_t t)
{
    // A spike covers t when a start was drawn at any of the
    // spike_length steps ending at t (overlaps merge). Membership is
    // a pure function of (params, t), which is what makes windows of
    // the trace regenerable independently.
    if (params.spike_length > 0) {
        const std::size_t first =
            t >= params.spike_length - 1 ? t - (params.spike_length - 1)
                                         : 0;
        for (std::size_t s = first; s <= t; ++s)
            if (spikeStartsAt(params, s))
                return std::clamp(params.spike_utilization, 0.0, 1.0);
    }
    Rng rng = stepRng(params, t);
    rng.uniform(); // The spike-start draw, position-stable.
    double level = params.base_utilization +
        rng.gaussian(0.0, params.jitter);
    if (params.diurnal_amplitude != 0.0 && params.diurnal_period > 0) {
        const double phase = 2.0 * M_PI * static_cast<double>(t) /
            static_cast<double>(params.diurnal_period);
        level += params.diurnal_amplitude * std::sin(phase);
    }
    return std::clamp(level, 0.0, 1.0);
}

std::vector<double>
makeLoadTrace(const LoadTraceParams &params)
{
    std::vector<double> trace;
    trace.reserve(params.steps);
    for (std::size_t t = 0; t < params.steps; ++t)
        trace.push_back(loadLevelAt(params, t));
    return trace;
}

std::size_t
instancesAt(double utilization, std::size_t peak_instances)
{
    const double m =
        std::round(utilization * static_cast<double>(peak_instances));
    if (m <= 0.0)
        return 0;
    return std::min(static_cast<std::size_t>(m), peak_instances);
}

} // namespace powerdial::workload
