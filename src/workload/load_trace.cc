#include "workload/load_trace.h"

#include <algorithm>
#include <cmath>

namespace powerdial::workload {

std::vector<double>
makeLoadTrace(const LoadTraceParams &params)
{
    Rng rng(params.seed);
    std::vector<double> trace;
    trace.reserve(params.steps);
    std::size_t spike_left = 0;
    for (std::size_t t = 0; t < params.steps; ++t) {
        if (spike_left == 0 && rng.uniform() < params.spike_probability)
            spike_left = params.spike_length;
        double u;
        if (spike_left > 0) {
            u = params.spike_utilization;
            --spike_left;
        } else {
            u = params.base_utilization +
                rng.gaussian(0.0, params.jitter);
        }
        trace.push_back(std::clamp(u, 0.0, 1.0));
    }
    return trace;
}

std::size_t
instancesAt(double utilization, std::size_t peak_instances)
{
    const double m =
        std::round(utilization * static_cast<double>(peak_instances));
    return static_cast<std::size_t>(std::max(0.0, m));
}

} // namespace powerdial::workload
