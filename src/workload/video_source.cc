#include "workload/video_source.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerdial::workload {
namespace {

/** A moving textured rectangle. */
struct MovingObject
{
    double x, y;     //!< Top-left position at frame 0.
    double vx, vy;   //!< Velocity, pixels/frame.
    int w, h;        //!< Size.
    int base;        //!< Base luma.
    int texture;     //!< Texture amplitude.
};

std::uint8_t
clampLuma(double v)
{
    return static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
}

} // namespace

VideoSource::VideoSource(const VideoParams &params) : params_(params)
{
    if (params_.width <= 0 || params_.height <= 0 || params_.frames <= 0)
        throw std::invalid_argument("VideoSource: bad dimensions");
}

std::vector<Frame>
VideoSource::frames() const
{
    Rng rng(params_.seed);

    std::vector<MovingObject> objects;
    objects.reserve(static_cast<std::size_t>(params_.objects));
    for (int i = 0; i < params_.objects; ++i) {
        MovingObject obj;
        obj.x = rng.uniform(0.0, params_.width);
        obj.y = rng.uniform(0.0, params_.height);
        obj.vx = rng.uniform(-params_.max_speed, params_.max_speed);
        obj.vy = rng.uniform(-params_.max_speed, params_.max_speed);
        obj.w = 8 + static_cast<int>(rng.below(24));
        obj.h = 8 + static_cast<int>(rng.below(24));
        obj.base = 40 + static_cast<int>(rng.below(160));
        obj.texture = 8 + static_cast<int>(rng.below(40));
        objects.push_back(obj);
    }

    std::vector<Frame> clip;
    clip.reserve(static_cast<std::size_t>(params_.frames));
    for (int f = 0; f < params_.frames; ++f) {
        Frame frame;
        frame.width = params_.width;
        frame.height = params_.height;
        frame.pixels.resize(static_cast<std::size_t>(params_.width) *
                            static_cast<std::size_t>(params_.height));
        // Slowly panning background gradient.
        const double pan = 0.7 * f;
        for (int y = 0; y < params_.height; ++y) {
            for (int x = 0; x < params_.width; ++x) {
                const double g =
                    96.0 + 48.0 * std::sin((x + pan) * 0.045) +
                    32.0 * std::cos(y * 0.06);
                frame.pixels[static_cast<std::size_t>(y) * params_.width +
                             x] = clampLuma(g);
            }
        }
        // Objects (wrap around the frame edges).
        for (const auto &obj : objects) {
            const double ox = obj.x + obj.vx * f;
            const double oy = obj.y + obj.vy * f;
            for (int dy = 0; dy < obj.h; ++dy) {
                for (int dx = 0; dx < obj.w; ++dx) {
                    const int px =
                        ((static_cast<int>(ox) + dx) % params_.width +
                         params_.width) % params_.width;
                    const int py =
                        ((static_cast<int>(oy) + dy) % params_.height +
                         params_.height) % params_.height;
                    const double tex =
                        obj.texture * std::sin(dx * 0.9) *
                        std::cos(dy * 0.7);
                    frame.pixels[static_cast<std::size_t>(py) *
                                 params_.width + px] =
                        clampLuma(obj.base + tex);
                }
            }
        }
        // Sensor noise.
        for (auto &p : frame.pixels) {
            p = clampLuma(static_cast<double>(p) +
                          rng.gaussian(0.0, params_.noise_sigma));
        }
        clip.push_back(std::move(frame));
    }
    return clip;
}

} // namespace powerdial::workload
