/**
 * @file
 * Time-varying load traces with intermittent spikes.
 *
 * Models the workload pattern that motivates the peak-load provisioning
 * experiments (paper sections 3, 5.5): "Common workloads often contain
 * intermittent load spikes" atop predominantly low utilisation.
 */
#ifndef POWERDIAL_WORKLOAD_LOAD_TRACE_H
#define POWERDIAL_WORKLOAD_LOAD_TRACE_H

#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace powerdial::workload {

/** Load-trace synthesis parameters. */
struct LoadTraceParams
{
    std::size_t steps = 200;        //!< Trace length, time steps.
    double base_utilization = 0.25; //!< Typical data-center load (20-30%).
    double spike_probability = 0.04;//!< Per-step chance a spike starts.
    std::size_t spike_length = 6;   //!< Steps a spike lasts.
    double spike_utilization = 1.0; //!< Peak load during a spike.
    double jitter = 0.05;           //!< Gaussian noise on the base load.
    std::uint64_t seed = 0x10ad0001;
};

/**
 * A utilisation trace in [0, 1]: fraction of the provisioned peak
 * instance count offered at each time step.
 */
std::vector<double> makeLoadTrace(const LoadTraceParams &params);

/** Convert a utilisation level into a concrete instance count. */
std::size_t instancesAt(double utilization, std::size_t peak_instances);

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_LOAD_TRACE_H
