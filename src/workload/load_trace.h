/**
 * @file
 * Time-varying load traces with intermittent spikes.
 *
 * Models the workload pattern that motivates the peak-load provisioning
 * experiments (paper sections 3, 5.5): "Common workloads often contain
 * intermittent load spikes" atop predominantly low utilisation, with an
 * optional diurnal swell so day/night request curves can be composed
 * with spikes and flash crowds (workload::makeTrafficMix).
 *
 * Every step of a trace is drawn from its own counter-derived RNG
 * substream (the same SplitMix64-stride scheme as poissonArrivalAt), so
 * the level at step t depends only on (params, t): extending the
 * horizon never perturbs earlier steps and any window regenerates
 * independently. A spike covers step t when a spike *start* was drawn
 * at any of the spike_length steps ending at t; overlapping starts
 * simply merge into one longer spike.
 */
#ifndef POWERDIAL_WORKLOAD_LOAD_TRACE_H
#define POWERDIAL_WORKLOAD_LOAD_TRACE_H

#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace powerdial::workload {

/** Load-trace synthesis parameters. */
struct LoadTraceParams
{
    std::size_t steps = 200;        //!< Trace length, time steps.
    double base_utilization = 0.25; //!< Typical data-center load (20-30%).
    double spike_probability = 0.04;//!< Per-step chance a spike starts.
    std::size_t spike_length = 6;   //!< Steps a spike lasts.
    double spike_utilization = 1.0; //!< Peak load during a spike.
    double jitter = 0.05;           //!< Gaussian noise on the base load.
    /**
     * Peak amplitude of an optional diurnal swell added to the base
     * load: level(t) += diurnal_amplitude * sin(2*pi*t/period). 0 (the
     * default) keeps the trace flat outside spikes.
     */
    double diurnal_amplitude = 0.0;
    std::size_t diurnal_period = 96; //!< Steps per diurnal cycle.
    std::uint64_t seed = 0x10ad0001;
};

/**
 * A utilisation trace in [0, 1]: fraction of the provisioned peak
 * instance count offered at each time step. Equivalent to calling
 * loadLevelAt() for t in [0, params.steps).
 */
std::vector<double> makeLoadTrace(const LoadTraceParams &params);

/**
 * The utilisation level of step @p t alone — the per-step substream
 * makeLoadTrace() is built from, exposed for random access (window
 * regeneration, event-driven arrival streams).
 */
double loadLevelAt(const LoadTraceParams &params, std::size_t t);

/**
 * Convert a utilisation level into a concrete instance count, clamped
 * to [0, peak_instances]: a level above 1.0 (flash-crowd superposition
 * in composed traffic) asks for more instances than are provisioned,
 * and the answer is the provisioned peak, not a phantom machine.
 */
std::size_t instancesAt(double utilization, std::size_t peak_instances);

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_LOAD_TRACE_H
