#include "workload/corpus.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace powerdial::workload {

Corpus::Corpus(const CorpusParams &params) : params_(params)
{
    if (params_.vocabulary <= params_.stop_words)
        throw std::invalid_argument("Corpus: vocabulary smaller than "
                                    "stop-word list");
    Rng rng(params_.seed);
    ZipfSampler words(params_.vocabulary, params_.zipf_skew);
    docs_.reserve(params_.documents);
    for (std::size_t d = 0; d < params_.documents; ++d) {
        Document doc;
        doc.id = static_cast<std::uint32_t>(d);
        // Document lengths vary +-25% around the mean, like real books.
        const double jitter = rng.uniform(0.75, 1.25);
        const auto len = static_cast<std::size_t>(
            static_cast<double>(params_.words_per_doc) * jitter);
        doc.words.reserve(len);
        for (std::size_t i = 0; i < len; ++i)
            doc.words.push_back(static_cast<WordId>(words.sample(rng)));
        docs_.push_back(std::move(doc));
    }
}

std::vector<Query>
Corpus::makeQueries(std::size_t count, std::size_t terms_per_query,
                    std::uint64_t seed) const
{
    if (terms_per_query == 0)
        throw std::invalid_argument("Corpus: empty queries requested");
    Rng rng(seed);
    // Power-law selection over the non-stop dictionary, per the paper's
    // query-generation methodology.
    ZipfSampler picker(params_.vocabulary - params_.stop_words,
                       params_.zipf_skew);
    std::vector<Query> queries;
    queries.reserve(count);
    for (std::size_t q = 0; q < count; ++q) {
        Query query;
        query.terms.reserve(terms_per_query);
        while (query.terms.size() < terms_per_query) {
            const auto w = static_cast<WordId>(
                picker.sample(rng) + params_.stop_words);
            if (std::find(query.terms.begin(), query.terms.end(), w) ==
                query.terms.end()) {
                query.terms.push_back(w);
            }
        }
        queries.push_back(std::move(query));
    }
    return queries;
}

InputSplit
splitInputs(std::size_t total, std::uint64_t seed)
{
    std::vector<std::size_t> order(total);
    std::iota(order.begin(), order.end(), 0);
    Rng rng(seed);
    // Fisher-Yates shuffle.
    for (std::size_t i = total; i > 1; --i) {
        const std::size_t j = rng.below(i);
        std::swap(order[i - 1], order[j]);
    }
    InputSplit split;
    const std::size_t half = total / 2;
    split.training.assign(order.begin(), order.begin() + half);
    split.production.assign(order.begin() + half, order.end());
    return split;
}

} // namespace powerdial::workload
