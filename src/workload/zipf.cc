#include "workload/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerdial::workload {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s)
{
    if (n == 0)
        throw std::invalid_argument("ZipfSampler: empty support");
    if (s < 0.0)
        throw std::invalid_argument("ZipfSampler: negative skew");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = acc;
    }
    for (auto &c : cdf_)
        c /= acc;
    cdf_.back() = 1.0; // Guard against floating-point shortfall.
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::pmf(std::size_t k) const
{
    if (k >= cdf_.size())
        throw std::out_of_range("ZipfSampler: rank out of range");
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

} // namespace powerdial::workload
