/**
 * @file
 * Synthetic articulated-body motion for the bodytrack benchmark.
 *
 * Stands in for the paper's four-camera video sequences (section 4.3).
 * A 2-D articulated body (torso, head, two arms, two legs) walks through
 * the scene; each frame provides noisy 2-D observations of the body-part
 * endpoints from which the annealed particle filter infers the pose.
 */
#ifndef POWERDIAL_WORKLOAD_BODY_MOTION_H
#define POWERDIAL_WORKLOAD_BODY_MOTION_H

#include <array>
#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace powerdial::workload {

/** Number of articulated parts (torso, head, 2 arms, 2 legs). */
inline constexpr std::size_t kBodyParts = 6;

/** Pose: root position plus one orientation angle per limb. */
struct BodyPose
{
    double root_x = 0.0;
    double root_y = 0.0;
    /** Limb angles in radians: head, L-arm, R-arm, L-leg, R-leg. */
    std::array<double, 5> angles{};
};

/** Observed 2-D endpoints of each body part (the measurement). */
struct BodyObservation
{
    std::array<double, kBodyParts> x{};
    std::array<double, kBodyParts> y{};
};

/** Lengths of each body part, scene units. */
struct BodyDimensions
{
    double torso = 4.0;
    double head = 1.2;
    double arm = 2.6;
    double leg = 3.2;
};

/** Forward kinematics: part endpoints for a pose. */
BodyObservation forwardKinematics(const BodyPose &pose,
                                  const BodyDimensions &dims);

/** Motion-sequence synthesis parameters. */
struct BodyMotionParams
{
    std::size_t frames = 100;     //!< Paper training input: 100 frames.
    double walk_speed = 0.35;     //!< Root translation per frame.
    double swing_amplitude = 0.6; //!< Limb swing, radians.
    double swing_period = 24.0;   //!< Frames per gait cycle.
    double observation_noise = 0.15;
    std::uint64_t seed = 0xb0d70001;
};

/** One frame of ground truth plus its noisy observation. */
struct BodyFrame
{
    BodyPose truth;
    BodyObservation observation;
};

/** Generate a deterministic walking sequence. */
std::vector<BodyFrame> makeBodySequence(const BodyMotionParams &params,
                                        const BodyDimensions &dims = {});

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_BODY_MOTION_H
