/**
 * @file
 * Open-loop job arrival processes for fleet serving.
 *
 * The load traces in load_trace.h describe *utilisation* — a closed
 * quantity relative to provisioned capacity. A serving fleet instead
 * sees an open-loop request stream: jobs arrive whether or not the
 * cluster has capacity for them. This generator turns a utilisation
 * trace into such a stream by drawing the number of job arrivals in
 * each time step from a Poisson distribution whose mean follows the
 * trace, the standard open-loop model of datacenter request traffic.
 */
#ifndef POWERDIAL_WORKLOAD_ARRIVALS_H
#define POWERDIAL_WORKLOAD_ARRIVALS_H

#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace powerdial::workload {

/** Poisson arrival-process parameters. */
struct PoissonArrivalParams
{
    /**
     * Mean arrivals per step when the driving trace is at full
     * utilisation (1.0); a trace level u yields mean u * peak_rate.
     */
    double peak_rate = 8.0;
    std::uint64_t seed = 0xa2214a10ULL;
};

/**
 * Draw per-step arrival counts N_t ~ Poisson(trace[t] * peak_rate).
 * Fully deterministic in (trace, params); one RNG stream drives the
 * whole trace, so a prefix of the same trace yields a prefix of the
 * same arrivals.
 */
std::vector<std::size_t>
makePoissonArrivals(const std::vector<double> &trace,
                    const PoissonArrivalParams &params);

/** One Poisson deviate with mean @p lambda >= 0 (Knuth's method). */
std::size_t poissonDeviate(Rng &rng, double lambda);

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_ARRIVALS_H
