/**
 * @file
 * Open-loop job arrival processes for fleet serving.
 *
 * The load traces in load_trace.h describe *utilisation* — a closed
 * quantity relative to provisioned capacity. A serving fleet instead
 * sees an open-loop request stream: jobs arrive whether or not the
 * cluster has capacity for them. This generator turns a utilisation
 * trace into such a stream by drawing the number of job arrivals in
 * each time step from a Poisson distribution whose mean follows the
 * trace, the standard open-loop model of datacenter request traffic.
 */
#ifndef POWERDIAL_WORKLOAD_ARRIVALS_H
#define POWERDIAL_WORKLOAD_ARRIVALS_H

#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace powerdial::workload {

/** Poisson arrival-process parameters. */
struct PoissonArrivalParams
{
    /**
     * Mean arrivals per step when the driving trace is at full
     * utilisation (1.0); a trace level u yields mean u * peak_rate.
     */
    double peak_rate = 8.0;
    std::uint64_t seed = 0xa2214a10ULL;
};

/**
 * Draw per-step arrival counts N_t ~ Poisson(trace[t] * peak_rate).
 * Fully deterministic in (trace, params), and *per-step stable*: each
 * step draws from its own counter-derived RNG substream, so the count
 * at step t depends only on (seed, t, trace[t]). Extending the horizon
 * never perturbs earlier arrivals, and a window of the trace generated
 * on its own (via @p first_step) matches the same window of the full
 * generation — the random-access property the event-driven fleet
 * engine's arrival events rely on.
 *
 * @param first_step Global step index of trace[0]; pass w to generate
 *        the window starting at step w of a longer trace.
 */
std::vector<std::size_t>
makePoissonArrivals(const std::vector<double> &trace,
                    const PoissonArrivalParams &params,
                    std::size_t first_step = 0);

/**
 * The arrival count of global step @p step alone, at trace level
 * @p level — the per-step substream makePoissonArrivals() is built
 * from, exposed for random access.
 */
std::size_t poissonArrivalAt(const PoissonArrivalParams &params,
                             std::size_t step, double level);

/**
 * One Poisson deviate with mean @p lambda >= 0: Knuth's exact method
 * up to lambda = 700, the rounded normal approximation N(lambda,
 * lambda) above it (where Knuth's exp(-lambda) underflows and the
 * approximation error is far below the distribution's own spread).
 */
std::size_t poissonDeviate(Rng &rng, double lambda);

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_ARRIVALS_H
