/**
 * @file
 * Zipf (power-law) sampling for corpus and query synthesis.
 *
 * The paper builds swish++ queries by selecting dictionary words "at
 * random following a power law distribution" (section 4.4, after
 * Middleton & Baeza-Yates). Natural-language word frequencies are
 * themselves Zipf-distributed, so the synthetic corpus uses the same
 * sampler.
 */
#ifndef POWERDIAL_WORKLOAD_ZIPF_H
#define POWERDIAL_WORKLOAD_ZIPF_H

#include <cstdint>
#include <vector>

#include "workload/rng.h"

namespace powerdial::workload {

/**
 * Samples ranks in [0, n) with P(rank k) proportional to 1/(k+1)^s,
 * via inverse-CDF lookup on a precomputed table.
 */
class ZipfSampler
{
  public:
    /**
     * @param n Number of ranks (> 0).
     * @param s Skew exponent (>= 0; 1.0 is classic Zipf, 0 degrades
     *          to the uniform distribution over the n ranks).
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw one rank. */
    std::size_t sample(Rng &rng) const;

    /** Probability mass of rank @p k. */
    double pmf(std::size_t k) const;

    std::size_t size() const { return cdf_.size(); }
    double skew() const { return s_; }

  private:
    double s_;
    std::vector<double> cdf_;
};

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_ZIPF_H
