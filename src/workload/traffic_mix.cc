#include "workload/traffic_mix.h"

#include <algorithm>

namespace powerdial::workload {

double
trafficLevelAt(const TrafficMixParams &params, std::size_t t)
{
    double level = loadLevelAt(params.trace, t);
    for (const FlashCrowd &crowd : params.flash_crowds)
        if (t >= crowd.start && t - crowd.start < crowd.length)
            level += crowd.boost;
    return std::max(level, 0.0);
}

TrafficMix
makeTrafficMix(const TrafficMixParams &params,
               const std::vector<TenantProfile> &profiles)
{
    TrafficMix mix;
    mix.levels.reserve(params.steps);
    mix.offers.reserve(params.steps);
    const PoissonArrivalParams arrivals{params.peak_rate, params.seed};
    const ZipfSampler zipf(std::max<std::size_t>(profiles.size(), 1),
                           params.zipf_skew);
    for (std::size_t t = 0; t < params.steps; ++t) {
        const double level = trafficLevelAt(params, t);
        const std::size_t count = poissonArrivalAt(arrivals, t, level);
        // Tenant assignment draws come after the step's arrival-count
        // draws on a distinct substream (seed offset by the stride's
        // complement), so count and assignment never alias.
        Rng rng(params.seed + 0x61c8864680b583ebULL * (t + 1));
        std::vector<OfferedJob> offered;
        offered.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            OfferedJob job;
            if (!profiles.empty()) {
                const TenantProfile &profile = profiles[zipf.sample(rng)];
                job = {profile.input, profile.job_class,
                       profile.deadline_s};
            }
            // Number the offer by schedule-wide arrival order (after
            // the assignment above, which resets the field).
            job.offer = mix.total_offered + offered.size();
            offered.push_back(job);
        }
        mix.total_offered += offered.size();
        mix.levels.push_back(level);
        mix.offers.push_back(std::move(offered));
    }
    return mix;
}

} // namespace powerdial::workload
