#include "workload/arrivals.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::workload {

std::size_t
poissonDeviate(Rng &rng, double lambda)
{
    if (lambda < 0.0)
        throw std::invalid_argument("poissonDeviate: negative mean");
    // Knuth's method needs exp(-lambda) > 0; past ~708, exp
    // underflows to 0 and every draw would silently saturate near
    // 708 instead of following Poisson(lambda). No serving trace
    // gets anywhere close, so reject rather than approximate.
    if (lambda > 700.0)
        throw std::invalid_argument(
            "poissonDeviate: mean too large for Knuth's method");
    if (lambda == 0.0)
        return 0;
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    // Exact and deterministic; fine for the per-step means (tens at
    // most) a serving trace produces.
    const double threshold = std::exp(-lambda);
    std::size_t k = 0;
    double product = rng.uniform();
    while (product > threshold) {
        ++k;
        product *= rng.uniform();
    }
    return k;
}

std::vector<std::size_t>
makePoissonArrivals(const std::vector<double> &trace,
                    const PoissonArrivalParams &params)
{
    if (params.peak_rate < 0.0)
        throw std::invalid_argument(
            "makePoissonArrivals: negative peak rate");
    Rng rng(params.seed);
    std::vector<std::size_t> arrivals;
    arrivals.reserve(trace.size());
    for (const double level : trace)
        arrivals.push_back(poissonDeviate(rng, level * params.peak_rate));
    return arrivals;
}

} // namespace powerdial::workload
