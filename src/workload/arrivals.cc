#include "workload/arrivals.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::workload {

std::size_t
poissonDeviate(Rng &rng, double lambda)
{
    if (lambda < 0.0)
        throw std::invalid_argument("poissonDeviate: negative mean");
    // Knuth's method needs exp(-lambda) > 0; past ~708, exp
    // underflows to 0 and every draw would silently saturate near
    // 708 instead of following Poisson(lambda). At such means the
    // normal approximation N(lambda, lambda) is accurate to far
    // better than the ~4% relative noise of the distribution itself
    // (skewness ~ 1/sqrt(lambda) < 0.04), so scale-bench traces with
    // thousands of arrivals per step draw one Gaussian instead. The
    // threshold keeps every lambda <= 700 sequence bit-identical to
    // the pre-approximation generator.
    if (lambda > 700.0) {
        const double draw =
            std::round(rng.gaussian(lambda, std::sqrt(lambda)));
        return draw > 0.0 ? static_cast<std::size_t>(draw) : 0;
    }
    if (lambda == 0.0)
        return 0;
    // Knuth: multiply uniforms until the product drops below e^-lambda.
    // Exact and deterministic; fine for the per-step means (tens at
    // most) a serving trace produces.
    const double threshold = std::exp(-lambda);
    std::size_t k = 0;
    double product = rng.uniform();
    while (product > threshold) {
        ++k;
        product *= rng.uniform();
    }
    return k;
}

std::size_t
poissonArrivalAt(const PoissonArrivalParams &params, std::size_t step,
                 double level)
{
    if (params.peak_rate < 0.0)
        throw std::invalid_argument(
            "makePoissonArrivals: negative peak rate");
    // One substream per step, derived from (seed, step) alone. The
    // golden-ratio stride is the SplitMix64 increment: linear seeds
    // land on well-separated SplitMix64 trajectories, so neighbouring
    // steps are decorrelated even though their seeds differ by a
    // constant. step + 1 keeps step 0 off the bare trace seed (which
    // other generators may already use for unrelated streams).
    Rng rng(params.seed + 0x9e3779b97f4a7c15ULL * (step + 1));
    return poissonDeviate(rng, level * params.peak_rate);
}

std::vector<std::size_t>
makePoissonArrivals(const std::vector<double> &trace,
                    const PoissonArrivalParams &params,
                    std::size_t first_step)
{
    std::vector<std::size_t> arrivals;
    arrivals.reserve(trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        arrivals.push_back(
            poissonArrivalAt(params, first_step + i, trace[i]));
    return arrivals;
}

} // namespace powerdial::workload
