#include "workload/body_motion.h"

#include <cmath>

namespace powerdial::workload {

BodyObservation
forwardKinematics(const BodyPose &pose, const BodyDimensions &dims)
{
    BodyObservation obs;
    // Part 0: torso top (root is the hip; torso extends straight up).
    obs.x[0] = pose.root_x;
    obs.y[0] = pose.root_y + dims.torso;
    // Part 1: head endpoint, hinged at the torso top.
    obs.x[1] = obs.x[0] + dims.head * std::sin(pose.angles[0]);
    obs.y[1] = obs.y[0] + dims.head * std::cos(pose.angles[0]);
    // Parts 2, 3: arms, hinged at the shoulders (torso top).
    obs.x[2] = obs.x[0] + dims.arm * std::sin(pose.angles[1]);
    obs.y[2] = obs.y[0] - dims.arm * std::cos(pose.angles[1]);
    obs.x[3] = obs.x[0] + dims.arm * std::sin(pose.angles[2]);
    obs.y[3] = obs.y[0] - dims.arm * std::cos(pose.angles[2]);
    // Parts 4, 5: legs, hinged at the hip (root).
    obs.x[4] = pose.root_x + dims.leg * std::sin(pose.angles[3]);
    obs.y[4] = pose.root_y - dims.leg * std::cos(pose.angles[3]);
    obs.x[5] = pose.root_x + dims.leg * std::sin(pose.angles[4]);
    obs.y[5] = pose.root_y - dims.leg * std::cos(pose.angles[4]);
    return obs;
}

std::vector<BodyFrame>
makeBodySequence(const BodyMotionParams &params, const BodyDimensions &dims)
{
    Rng rng(params.seed);
    std::vector<BodyFrame> seq;
    seq.reserve(params.frames);
    for (std::size_t f = 0; f < params.frames; ++f) {
        const double phase =
            2.0 * M_PI * static_cast<double>(f) / params.swing_period;
        BodyFrame frame;
        frame.truth.root_x = params.walk_speed * static_cast<double>(f);
        frame.truth.root_y = 10.0 + 0.1 * std::sin(2.0 * phase);
        frame.truth.angles[0] = 0.08 * std::sin(phase); // Head bob.
        frame.truth.angles[1] = params.swing_amplitude * std::sin(phase);
        frame.truth.angles[2] = -params.swing_amplitude * std::sin(phase);
        frame.truth.angles[3] = -params.swing_amplitude * std::sin(phase);
        frame.truth.angles[4] = params.swing_amplitude * std::sin(phase);

        frame.observation = forwardKinematics(frame.truth, dims);
        for (std::size_t p = 0; p < kBodyParts; ++p) {
            frame.observation.x[p] +=
                rng.gaussian(0.0, params.observation_noise);
            frame.observation.y[p] +=
                rng.gaussian(0.0, params.observation_noise);
        }
        seq.push_back(frame);
    }
    return seq;
}

} // namespace powerdial::workload
