/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * Every input generator in this repository derives from explicit seeds so
 * that training/production input sets, experiments, and tests are fully
 * reproducible across runs and platforms. The generator is xoshiro256**
 * seeded via SplitMix64 (public-domain algorithms by Blackman & Vigna).
 */
#ifndef POWERDIAL_WORKLOAD_RNG_H
#define POWERDIAL_WORKLOAD_RNG_H

#include <cmath>
#include <cstdint>

namespace powerdial::workload {

/** xoshiro256** PRNG with SplitMix64 seeding. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) { reseed(seed); }

    /** Re-seed the generator deterministically. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : s_) {
            // SplitMix64 step.
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
        has_gauss_ = false;
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        const std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

    /**
     * Uniform integer in [0, n). @p n must be > 0.
     *
     * Rejection-sampled against the smallest covering power-of-two
     * mask, so every value is exactly equally likely — `next() % n`
     * would be modulo-biased toward low values whenever n does not
     * divide 2^64 (tests/test_workload.cc pins uniformity).
     */
    std::uint64_t
    below(std::uint64_t n)
    {
        std::uint64_t mask = n - 1;
        mask |= mask >> 1;
        mask |= mask >> 2;
        mask |= mask >> 4;
        mask |= mask >> 8;
        mask |= mask >> 16;
        mask |= mask >> 32;
        std::uint64_t value = next() & mask;
        while (value >= n)
            value = next() & mask;
        return value;
    }

    /** Standard normal deviate (Box-Muller, cached pair). */
    double
    gaussian()
    {
        if (has_gauss_) {
            has_gauss_ = false;
            return gauss_;
        }
        double u1 = uniform();
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 2.0 * M_PI * u2;
        gauss_ = r * std::sin(theta);
        has_gauss_ = true;
        return r * std::cos(theta);
    }

    /** Normal deviate with mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        return mean + stddev * gaussian();
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s_[4] = {};
    double gauss_ = 0.0;
    bool has_gauss_ = false;
};

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_RNG_H
