/**
 * @file
 * Production-shaped traffic composition for fleet serving.
 *
 * A single Poisson stream over a spiky utilisation trace (arrivals.h)
 * exercises a fleet's mean behaviour; production traffic is shaped:
 * tenant popularity is Zipf-skewed (a few tenants dominate), request
 * volume follows a diurnal curve, and flash crowds superimpose sudden
 * demand that can exceed the provisioned peak. The TrafficMix composer
 * builds that stream deterministically: per step it superimposes the
 * diurnal/spiky base level (workload::loadLevelAt) with any flash
 * crowds covering the step — deliberately NOT clamped at 1.0, offered
 * load is open-loop — draws the step's arrival count from the
 * counter-derived Poisson substream (poissonArrivalAt), and assigns
 * each arrival a tenant profile by Zipf popularity rank. Every step
 * uses its own RNG substream, so traffic windows regenerate
 * independently, exactly like the arrival and load-trace generators.
 */
#ifndef POWERDIAL_WORKLOAD_TRAFFIC_MIX_H
#define POWERDIAL_WORKLOAD_TRAFFIC_MIX_H

#include <cstdint>
#include <vector>

#include "workload/arrivals.h"
#include "workload/load_trace.h"
#include "workload/zipf.h"

namespace powerdial::workload {

/**
 * One offered job with its serving metadata: which tenant input it
 * serves, the tenant's priority class (0 = highest; lower-priority
 * classes are shed first under overload), and its completion deadline
 * relative to arrival (0 = no deadline, never shed for SLO reasons).
 */
/** Sentinel OfferedJob::offer: the offer was never numbered (ad-hoc
 *  construction); engines assign a serial id at admission time. */
inline constexpr std::size_t kUnnumberedOffer =
    static_cast<std::size_t>(-1);

struct OfferedJob
{
    std::size_t tenant = 0;    //!< Application input index served.
    std::size_t job_class = 0; //!< Priority class, 0 = highest.
    double deadline_s = 0.0;   //!< Relative deadline (0 = none).
    /**
     * Schedule-wide offer id (arrival order across all steps), the
     * identity a shed job keeps when it never becomes a fleet job —
     * what lets a trace answer "what happened to arrival N". Last
     * member on purpose: existing three-field aggregate initializers
     * keep compiling and leave the offer unnumbered.
     */
    std::size_t offer = kUnnumberedOffer;
};

/**
 * One tenant of the mix, listed in popularity order: profile 0 is the
 * most popular (Zipf rank 0). Jobs minted from a profile carry its
 * class and deadline.
 */
struct TenantProfile
{
    std::size_t input = 0;     //!< Application input index.
    std::size_t job_class = 0; //!< Priority class, 0 = highest.
    double deadline_s = 0.0;   //!< Relative deadline (0 = none).
};

/**
 * A flash crowd: @p boost extra offered-load level across steps
 * [start, start + length). Superimposed on the base curve without
 * clamping, so a crowd atop a busy period pushes the composed level
 * past 1.0 — more demand than the fleet is provisioned for, the
 * overload the admission-control experiments need.
 */
struct FlashCrowd
{
    std::size_t start = 0;
    std::size_t length = 0;
    double boost = 0.0;
};

/** Traffic-mix composition parameters. */
struct TrafficMixParams
{
    std::size_t steps = 200; //!< Schedule length, epochs.
    /**
     * Base offered-load curve: utilisation, jitter, intermittent
     * spikes, and (via diurnal_amplitude) the day/night swell.
     * trace.steps is ignored; the mix uses steps above.
     */
    LoadTraceParams trace{};
    std::vector<FlashCrowd> flash_crowds;
    /** Mean arrivals per step at composed level 1.0. */
    double peak_rate = 8.0;
    /** Zipf skew of tenant popularity (1.0 = classic). */
    double zipf_skew = 1.0;
    /** Seed for the arrival-count and tenant-assignment substreams
     *  (independent of trace.seed). */
    std::uint64_t seed = 0x7af1c0de;
};

/** A composed traffic schedule. */
struct TrafficMix
{
    /** Composed offered-load level per step (may exceed 1.0). */
    std::vector<double> levels;
    /** The jobs offered at each step, in arrival order. */
    std::vector<std::vector<OfferedJob>> offers;
    /** Jobs offered over the whole schedule. */
    std::size_t total_offered = 0;
};

/**
 * The composed offered-load level of step @p t alone: base curve plus
 * every flash crowd covering t, clamped below at 0 but NOT above —
 * offered load is open-loop and may exceed the provisioned peak.
 */
double trafficLevelAt(const TrafficMixParams &params, std::size_t t);

/**
 * Compose the full schedule: per step, the composed level, a Poisson
 * arrival count at mean level * peak_rate, and a Zipf-popularity
 * tenant assignment for each arrival. Deterministic in (params,
 * profiles) and per-step stable: any window of the schedule can be
 * regenerated independently of the horizon.
 *
 * @param profiles Tenant profiles in popularity order (size >= 1).
 */
TrafficMix makeTrafficMix(const TrafficMixParams &params,
                          const std::vector<TenantProfile> &profiles);

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_TRAFFIC_MIX_H
