/**
 * @file
 * Synthetic document corpus and query stream for the search engine.
 *
 * Stands in for the paper's Project Gutenberg corpus and the
 * Middleton/Baeza-Yates query-generation methodology (section 4.4):
 * documents are bags of Zipf-distributed word ids; queries are built by
 * "constructing a dictionary of all words present in the documents,
 * excluding stop words, and selecting words at random following a power
 * law distribution". The corpus splits deterministically into
 * equally-sized training and production halves.
 */
#ifndef POWERDIAL_WORKLOAD_CORPUS_H
#define POWERDIAL_WORKLOAD_CORPUS_H

#include <cstdint>
#include <vector>

#include "workload/rng.h"
#include "workload/zipf.h"

namespace powerdial::workload {

/** Word identifier (rank in the global frequency dictionary). */
using WordId = std::uint32_t;

/** One synthetic document: a multiset of words. */
struct Document
{
    std::uint32_t id;
    std::vector<WordId> words;
};

/** One query: a few non-stop words. */
struct Query
{
    std::vector<WordId> terms;
};

/** Corpus synthesis parameters. */
struct CorpusParams
{
    std::size_t documents = 2000;     //!< Paper: 2000 books per split.
    std::size_t vocabulary = 20000;   //!< Distinct words.
    std::size_t words_per_doc = 800;  //!< Mean document length.
    std::size_t stop_words = 50;      //!< Top-ranked words are stop words.
    double zipf_skew = 1.05;          //!< Word-frequency skew.
    std::uint64_t seed = 0x5eed0001;
};

/** A generated corpus plus its query machinery. */
class Corpus
{
  public:
    explicit Corpus(const CorpusParams &params);

    const std::vector<Document> &documents() const { return docs_; }
    const CorpusParams &params() const { return params_; }

    /**
     * Generate @p count queries of @p terms_per_query words each,
     * following the power-law selection of the paper (stop words are
     * excluded).
     */
    std::vector<Query> makeQueries(std::size_t count,
                                   std::size_t terms_per_query,
                                   std::uint64_t seed) const;

    /** True if @p w is one of the excluded stop words. */
    bool isStopWord(WordId w) const { return w < params_.stop_words; }

  private:
    CorpusParams params_;
    std::vector<Document> docs_;
};

/**
 * Deterministically split @p total items into equally sized training and
 * production index sets (paper: "randomly partition the inputs into
 * training and production sets").
 */
struct InputSplit
{
    std::vector<std::size_t> training;
    std::vector<std::size_t> production;
};

InputSplit splitInputs(std::size_t total, std::uint64_t seed);

} // namespace powerdial::workload

#endif // POWERDIAL_WORKLOAD_CORPUS_H
