/**
 * @file
 * Influence-tracked values for dynamic influence tracing.
 *
 * Stands in for the paper's LLVM-based source instrumentation (section
 * 2.1): "For each value, it computes the configuration parameters that
 * influenced that value." Applications run their initialization phase on
 * influence::Value<T> instead of plain scalars; every arithmetic
 * operation propagates the set of configuration parameters (an influence
 * mask) that flowed into the result.
 *
 * Like the paper's tracer, this analysis is a *data-flow* trace: it does
 * not track indirect control-flow or array-index influence. The
 * control-variable report (influence/analysis.h) exists so a developer
 * can audit for those sources of imprecision, exactly as in the paper.
 */
#ifndef POWERDIAL_INFLUENCE_VALUE_H
#define POWERDIAL_INFLUENCE_VALUE_H

#include <cstdint>

namespace powerdial::influence {

/**
 * A set of configuration-parameter indices, one bit per parameter.
 * Supports up to 64 traced parameters, far beyond any PowerDial use.
 */
using InfluenceMask = std::uint64_t;

/** The mask with only parameter @p index set. */
constexpr InfluenceMask
paramBit(unsigned index)
{
    return InfluenceMask{1} << index;
}

/**
 * A value of type @p T tagged with the set of configuration parameters
 * that influenced it. Arithmetic unions the operand masks.
 */
template <typename T>
class Value
{
  public:
    /** An untainted constant. */
    constexpr Value(T v = T{}) : v_(v), mask_(0) {}

    /** A value with an explicit influence mask. */
    constexpr Value(T v, InfluenceMask mask) : v_(v), mask_(mask) {}

    /** The underlying raw value. */
    constexpr T raw() const { return v_; }

    /** Parameters that influenced this value. */
    constexpr InfluenceMask mask() const { return mask_; }

    /** True if any traced parameter influenced this value. */
    constexpr bool influenced() const { return mask_ != 0; }

    friend constexpr Value
    operator+(Value a, Value b)
    {
        return {static_cast<T>(a.v_ + b.v_), a.mask_ | b.mask_};
    }
    friend constexpr Value
    operator-(Value a, Value b)
    {
        return {static_cast<T>(a.v_ - b.v_), a.mask_ | b.mask_};
    }
    friend constexpr Value
    operator*(Value a, Value b)
    {
        return {static_cast<T>(a.v_ * b.v_), a.mask_ | b.mask_};
    }
    friend constexpr Value
    operator/(Value a, Value b)
    {
        return {static_cast<T>(a.v_ / b.v_), a.mask_ | b.mask_};
    }

    Value &operator+=(Value o) { return *this = *this + o; }
    Value &operator-=(Value o) { return *this = *this - o; }
    Value &operator*=(Value o) { return *this = *this * o; }
    Value &operator/=(Value o) { return *this = *this / o; }

    /**
     * Comparisons yield plain bool: control-flow influence is untracked,
     * matching the paper's analysis.
     */
    friend constexpr bool operator==(Value a, Value b) { return a.v_ == b.v_; }
    friend constexpr bool operator<(Value a, Value b) { return a.v_ < b.v_; }
    friend constexpr bool operator>(Value a, Value b) { return a.v_ > b.v_; }
    friend constexpr bool operator<=(Value a, Value b) { return a.v_ <= b.v_; }
    friend constexpr bool operator>=(Value a, Value b) { return a.v_ >= b.v_; }

  private:
    T v_;
    InfluenceMask mask_;
};

} // namespace powerdial::influence

#endif // POWERDIAL_INFLUENCE_VALUE_H
