/**
 * @file
 * Control-variable identification from influence traces.
 *
 * Implements the checks of paper section 2.1 over a set of TraceRuns
 * (one per combination of configuration-parameter settings):
 *
 *  - Complete and Pure: every variable influenced before the first
 *    heartbeat is a control variable, and its value is influenced *only*
 *    by the specified configuration parameters.
 *  - Relevance: variables the main control loop never reads are dropped.
 *  - Constant: the main control loop must not write a control variable.
 *  - Consistency: every combination of parameter settings must yield the
 *    same set of control variables.
 *
 * On success the analysis yields, for each parameter-settings
 * combination, the recorded control-variable values that the PowerDial
 * runtime later re-installs at knob switches — plus the human-auditable
 * control-variable report the paper describes.
 */
#ifndef POWERDIAL_INFLUENCE_ANALYSIS_H
#define POWERDIAL_INFLUENCE_ANALYSIS_H

#include <map>
#include <string>
#include <vector>

#include "influence/trace_run.h"

namespace powerdial::influence {

/** One identified control variable, with per-combination values. */
struct ControlVariable
{
    std::string name;
    /** Parameters (bit indices) its value derives from. */
    InfluenceMask derived_from = 0;
    /** Recorded value for each traced combination, indexed like runs. */
    std::vector<std::vector<double>> values_per_combination;
    /** Statements that access the variable (union over runs). */
    std::set<std::string> access_sites;
};

/** Why the transformation was rejected (empty reason == accepted). */
struct CheckFailure
{
    std::string check;    //!< "pure", "constant", or "consistent".
    std::string variable; //!< Offending variable.
    std::string detail;   //!< Human-readable explanation.
};

/** Result of control-variable identification. */
struct AnalysisResult
{
    bool accepted = false;
    std::vector<ControlVariable> control_variables;
    std::vector<CheckFailure> failures;

    /** Index of a control variable by name, or -1. */
    int indexOf(const std::string &name) const;
};

/**
 * Runs the paper's four checks over the traces.
 *
 * @param runs            One trace per parameter-settings combination.
 * @param specified_mask  Bits of the user-specified configuration
 *                        parameters (paper: "Parameter Identification").
 */
AnalysisResult identifyControlVariables(const std::vector<TraceRun> &runs,
                                        InfluenceMask specified_mask);

/**
 * Renders the control-variable report of paper section 2.1: variables,
 * the parameters their values derive from, and the statements that
 * access them, so a developer can audit the analysis.
 *
 * @param result      Analysis result (accepted or not).
 * @param param_names Display names, indexed by parameter bit.
 */
std::string renderReport(const AnalysisResult &result,
                         const std::vector<std::string> &param_names);

} // namespace powerdial::influence

#endif // POWERDIAL_INFLUENCE_ANALYSIS_H
