#include "influence/analysis.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace powerdial::influence {
namespace {

/** Render an influence mask as a parameter-name list. */
std::string
maskToNames(InfluenceMask mask, const std::vector<std::string> &names)
{
    std::string out;
    for (unsigned bit = 0; bit < 64; ++bit) {
        if (!(mask & paramBit(bit)))
            continue;
        if (!out.empty())
            out += ", ";
        if (bit < names.size())
            out += names[bit];
        else
            out += "param#" + std::to_string(bit);
    }
    return out.empty() ? "(none)" : out;
}

} // namespace

int
AnalysisResult::indexOf(const std::string &name) const
{
    for (std::size_t i = 0; i < control_variables.size(); ++i)
        if (control_variables[i].name == name)
            return static_cast<int>(i);
    return -1;
}

AnalysisResult
identifyControlVariables(const std::vector<TraceRun> &runs,
                         InfluenceMask specified_mask)
{
    if (runs.empty())
        throw std::invalid_argument("identifyControlVariables: no traces");

    AnalysisResult result;

    // Candidate set from the first run: all variables influenced before
    // the first heartbeat (Complete), and the Relevance filter.
    std::vector<std::string> candidates;
    for (const auto &[name, var] : runs.front().variables()) {
        if (var.mask == 0)
            continue; // Not influenced by traced parameters.
        if (!var.read_in_loop)
            continue; // Relevance: main loop never reads it.
        candidates.push_back(name);
    }

    // Consistency: every run must produce the identical candidate set,
    // and within each run apply the Pure and Constant checks.
    for (std::size_t r = 0; r < runs.size(); ++r) {
        const auto &run = runs[r];
        for (const auto &[name, var] : run.variables()) {
            const bool is_candidate = var.mask != 0 && var.read_in_loop;
            const bool in_set =
                std::find(candidates.begin(), candidates.end(), name) !=
                candidates.end();
            if (is_candidate != in_set) {
                result.failures.push_back(
                    {"consistent", name,
                     "combination " + std::to_string(r) +
                         (is_candidate ? " adds" : " drops") +
                         " this control variable"});
                continue;
            }
            if (!is_candidate)
                continue;
            if (var.mask & ~specified_mask) {
                result.failures.push_back(
                    {"pure", name,
                     "value also influenced by unspecified parameters"});
            }
            if (var.written_in_loop) {
                result.failures.push_back(
                    {"constant", name,
                     "main control loop writes this variable"});
            }
        }
        // A candidate absent from some run is also a consistency failure.
        for (const auto &name : candidates) {
            if (run.variables().find(name) == run.variables().end()) {
                result.failures.push_back(
                    {"consistent", name,
                     "combination " + std::to_string(r) +
                         " never touches this control variable"});
            }
        }
    }

    if (!result.failures.empty()) {
        result.accepted = false;
        return result;
    }

    for (const auto &name : candidates) {
        ControlVariable cv;
        cv.name = name;
        for (const auto &run : runs) {
            const auto &var = run.variable(name);
            cv.derived_from |= var.mask;
            cv.values_per_combination.push_back(var.value);
            cv.access_sites.insert(var.access_sites.begin(),
                                   var.access_sites.end());
        }
        result.control_variables.push_back(std::move(cv));
    }
    result.accepted = true;
    return result;
}

std::string
renderReport(const AnalysisResult &result,
             const std::vector<std::string> &param_names)
{
    std::ostringstream os;
    os << "PowerDial control variable report\n"
       << "=================================\n"
       << "status: " << (result.accepted ? "ACCEPTED" : "REJECTED") << "\n";
    if (!result.failures.empty()) {
        os << "\nfailed checks:\n";
        for (const auto &f : result.failures) {
            os << "  [" << f.check << "] " << f.variable << ": " << f.detail
               << "\n";
        }
    }
    os << "\ncontrol variables: " << result.control_variables.size() << "\n";
    for (const auto &cv : result.control_variables) {
        os << "\n  " << cv.name << "\n"
           << "    derived from: " << maskToNames(cv.derived_from,
                                                  param_names)
           << "\n    accessed at:\n";
        if (cv.access_sites.empty())
            os << "      (no recorded sites)\n";
        for (const auto &site : cv.access_sites)
            os << "      " << site << "\n";
    }
    return os.str();
}

} // namespace powerdial::influence
