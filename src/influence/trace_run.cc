#include "influence/trace_run.h"

#include <stdexcept>

namespace powerdial::influence {

void
TraceRun::storeVector(const std::string &name, std::vector<double> value,
                      InfluenceMask mask, const std::string &site)
{
    auto &var = vars_[name];
    if (in_main_loop_) {
        var.written_in_loop = true;
    } else {
        var.mask |= mask;
        var.value = std::move(value);
    }
    if (!site.empty())
        var.access_sites.insert(site);
}

void
TraceRun::read(const std::string &name, const std::string &site)
{
    auto &var = vars_[name];
    if (in_main_loop_)
        var.read_in_loop = true;
    if (!site.empty())
        var.access_sites.insert(site);
}

void
TraceRun::firstHeartbeat()
{
    in_main_loop_ = true;
}

const VariableTrace &
TraceRun::variable(const std::string &name) const
{
    auto it = vars_.find(name);
    if (it == vars_.end())
        throw std::out_of_range("TraceRun: unknown variable " + name);
    return it->second;
}

} // namespace powerdial::influence
