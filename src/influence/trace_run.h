/**
 * @file
 * Event log of one instrumented execution.
 *
 * One TraceRun corresponds to one execution of the instrumented
 * application under a single combination of configuration-parameter
 * settings (paper section 2.1). The application (or its traced init
 * mirror) reports:
 *   - stores to named variables during initialization (before the first
 *     heartbeat), carrying influence masks and concrete values;
 *   - the first heartbeat, which ends the initialization phase;
 *   - reads and writes of named variables inside the main control loop.
 */
#ifndef POWERDIAL_INFLUENCE_TRACE_RUN_H
#define POWERDIAL_INFLUENCE_TRACE_RUN_H

#include <map>
#include <set>
#include <string>
#include <vector>

#include "influence/value.h"

namespace powerdial::influence {

/** Observed state of one named variable across a traced execution. */
struct VariableTrace
{
    /** Union of influence masks over all init-phase stores. */
    InfluenceMask mask = 0;
    /** Value at the end of initialization (scalars are 1-element). */
    std::vector<double> value;
    /** True if the main control loop read the variable. */
    bool read_in_loop = false;
    /** True if the main control loop wrote the variable. */
    bool written_in_loop = false;
    /** Source locations that accessed the variable (for the report). */
    std::set<std::string> access_sites;
};

/** The event log of one instrumented execution. */
class TraceRun
{
  public:
    TraceRun() = default;

    /** Record an init-phase (or loop-phase) scalar store. */
    template <typename T>
    void
    store(const std::string &name, Value<T> v, const std::string &site = "")
    {
        storeVector(name, {static_cast<double>(v.raw())}, v.mask(), site);
    }

    /** Record a store of a vector value with a single mask. */
    void storeVector(const std::string &name, std::vector<double> value,
                     InfluenceMask mask, const std::string &site = "");

    /** Record a read of a named variable. */
    void read(const std::string &name, const std::string &site = "");

    /** Mark the first heartbeat: ends init, starts the main loop phase. */
    void firstHeartbeat();

    /** True once firstHeartbeat() has been called. */
    bool inMainLoop() const { return in_main_loop_; }

    /** All variables observed, keyed by name. */
    const std::map<std::string, VariableTrace> &
    variables() const
    {
        return vars_;
    }

    /** Trace of one variable; throws if unknown. */
    const VariableTrace &variable(const std::string &name) const;

  private:
    std::map<std::string, VariableTrace> vars_;
    bool in_main_loop_ = false;
};

} // namespace powerdial::influence

#endif // POWERDIAL_INFLUENCE_TRACE_RUN_H
