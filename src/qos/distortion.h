/**
 * @file
 * QoS distortion metric (paper Equation 1).
 *
 * Given an output abstraction o_1..o_m from the baseline execution and
 * o'_1..o'_m from the execution under test, the QoS loss is the weighted
 * mean relative error:
 *
 *     qos = (1/m) * sum_i w_i * | (o_i - o'_i) / o_i |
 *
 * A qos of zero is optimal; larger is worse. Weights default to 1.
 */
#ifndef POWERDIAL_QOS_DISTORTION_H
#define POWERDIAL_QOS_DISTORTION_H

#include <vector>

namespace powerdial::qos {

/**
 * An output abstraction: the numbers a benchmark-specific abstraction
 * function extracts from program output (paper section 2.2), with
 * optional per-component weights.
 */
struct OutputAbstraction
{
    std::vector<double> components;
    /** Optional weights; empty means all 1. Sized like components. */
    std::vector<double> weights;
};

/**
 * Weighted relative distortion between a baseline abstraction and a
 * test abstraction (Equation 1). Weights are taken from @p baseline.
 *
 * Components where the baseline is exactly zero contribute |o - o'|
 * (absolute error) to avoid division by zero; the paper's benchmarks
 * never emit zero baseline components, so this is a defensive extension.
 *
 * @throws std::invalid_argument on size mismatch or empty abstraction.
 */
double distortion(const OutputAbstraction &baseline,
                  const OutputAbstraction &test);

/** Convenience overload for unweighted abstractions. */
double distortion(const std::vector<double> &baseline,
                  const std::vector<double> &test);

} // namespace powerdial::qos

#endif // POWERDIAL_QOS_DISTORTION_H
