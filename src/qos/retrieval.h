/**
 * @file
 * Information-retrieval QoS metrics: precision, recall, F-measure, P@N.
 *
 * The paper's swish++ QoS metric (section 4.4): "F-measure is the
 * harmonic mean of the precision and recall. ... We examine precision
 * and recall at different cutoff values, using typical notation P @N."
 */
#ifndef POWERDIAL_QOS_RETRIEVAL_H
#define POWERDIAL_QOS_RETRIEVAL_H

#include <cstdint>
#include <vector>

namespace powerdial::qos {

/** Document identifier in the search-engine substrate. */
using DocId = std::uint32_t;

/** Precision/recall/F of one ranked result list against relevance truth. */
struct RetrievalScore
{
    double precision = 0.0;
    double recall = 0.0;
    double f_measure = 0.0;
};

/**
 * Score @p returned (ranked) against the full relevant set.
 *
 * @param returned Ranked result list actually returned.
 * @param relevant All relevant documents (returned or not).
 * @param cutoff   Evaluate at top-@p cutoff (P@N); 0 = whole list.
 */
RetrievalScore score(const std::vector<DocId> &returned,
                     const std::vector<DocId> &relevant,
                     std::size_t cutoff = 0);

/** Harmonic mean of precision and recall (0 when both are 0). */
double fMeasure(double precision, double recall);

} // namespace powerdial::qos

#endif // POWERDIAL_QOS_RETRIEVAL_H
