#include "qos/distortion.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::qos {

double
distortion(const OutputAbstraction &baseline, const OutputAbstraction &test)
{
    const auto &o = baseline.components;
    const auto &ohat = test.components;
    if (o.empty())
        throw std::invalid_argument("distortion: empty output abstraction");
    if (o.size() != ohat.size())
        throw std::invalid_argument("distortion: abstraction size mismatch");
    if (!baseline.weights.empty() && baseline.weights.size() != o.size())
        throw std::invalid_argument("distortion: weight size mismatch");

    double sum = 0.0;
    for (std::size_t i = 0; i < o.size(); ++i) {
        const double w =
            baseline.weights.empty() ? 1.0 : baseline.weights[i];
        const double err = o[i] != 0.0
            ? std::abs((o[i] - ohat[i]) / o[i])
            : std::abs(o[i] - ohat[i]);
        sum += w * err;
    }
    return sum / static_cast<double>(o.size());
}

double
distortion(const std::vector<double> &baseline,
           const std::vector<double> &test)
{
    return distortion(OutputAbstraction{baseline, {}},
                      OutputAbstraction{test, {}});
}

} // namespace powerdial::qos
