#include "qos/retrieval.h"

#include <algorithm>
#include <unordered_set>

namespace powerdial::qos {

double
fMeasure(double precision, double recall)
{
    const double denom = precision + recall;
    return denom > 0.0 ? 2.0 * precision * recall / denom : 0.0;
}

RetrievalScore
score(const std::vector<DocId> &returned, const std::vector<DocId> &relevant,
      std::size_t cutoff)
{
    RetrievalScore s;
    if (relevant.empty())
        return s;

    std::unordered_set<DocId> rel(relevant.begin(), relevant.end());
    const std::size_t n =
        cutoff == 0 ? returned.size() : std::min(cutoff, returned.size());
    if (n == 0)
        return s;

    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (rel.count(returned[i]))
            ++hits;

    s.precision = static_cast<double>(hits) / static_cast<double>(n);
    const std::size_t denom =
        cutoff == 0 ? rel.size() : std::min(cutoff, rel.size());
    s.recall = static_cast<double>(hits) / static_cast<double>(denom);
    s.f_measure = fMeasure(s.precision, s.recall);
    return s;
}

} // namespace powerdial::qos
