#include "qos/psnr.h"

#include <cmath>
#include <stdexcept>

namespace powerdial::qos {

double
meanSquaredError(const std::vector<std::uint8_t> &a,
                 const std::vector<std::uint8_t> &b)
{
    if (a.empty() || a.size() != b.size())
        throw std::invalid_argument("meanSquaredError: bad plane sizes");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d =
            static_cast<double>(a[i]) - static_cast<double>(b[i]);
        sum += d * d;
    }
    return sum / static_cast<double>(a.size());
}

double
psnrFromMse(double mse, double cap_db)
{
    if (mse <= 0.0)
        return cap_db;
    const double peak = 255.0;
    const double value = 10.0 * std::log10(peak * peak / mse);
    return std::min(value, cap_db);
}

double
psnr(const std::vector<std::uint8_t> &a, const std::vector<std::uint8_t> &b,
     double cap_db)
{
    return psnrFromMse(meanSquaredError(a, b), cap_db);
}

} // namespace powerdial::qos
