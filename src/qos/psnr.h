/**
 * @file
 * Peak signal-to-noise ratio for the video-encoder QoS metric.
 *
 * The paper measures x264 quality as the distortion of {PSNR, bitrate}
 * (section 4.2). PSNR is computed between the original raw frames and
 * the frames reconstructed by the decoder loop.
 */
#ifndef POWERDIAL_QOS_PSNR_H
#define POWERDIAL_QOS_PSNR_H

#include <cstdint>
#include <vector>

namespace powerdial::qos {

/**
 * Mean squared error between two equally sized 8-bit sample planes.
 * @throws std::invalid_argument on size mismatch or empty planes.
 */
double meanSquaredError(const std::vector<std::uint8_t> &a,
                        const std::vector<std::uint8_t> &b);

/**
 * PSNR in dB between two 8-bit sample planes (peak value 255).
 * Identical planes yield +infinity-capped value @p cap_db (default 99 dB,
 * matching common encoder reporting).
 */
double psnr(const std::vector<std::uint8_t> &a,
            const std::vector<std::uint8_t> &b, double cap_db = 99.0);

/** PSNR from a precomputed MSE. */
double psnrFromMse(double mse, double cap_db = 99.0);

} // namespace powerdial::qos

#endif // POWERDIAL_QOS_PSNR_H
