/**
 * @file
 * Cluster-wide power-budget arbitration for the fleet subsystem.
 *
 * The paper evaluates power caps per machine (section 5.4: a DVFS
 * drop imposed and lifted on one server). A fleet operator instead
 * holds one *cluster-wide* cap and must decide, every control epoch,
 * how to split it across machines. The PowerArbiter closes that loop:
 * it divides the cluster cap into per-machine power budgets (uniform,
 * utilisation-proportional, or QoS-feedback redistribution), then
 * translates each budget into the per-machine DVFS cap
 * (sim::Machine::setPStateCap) the machine's tenants run under for
 * the epoch. Budgets always conserve the cap: their sum never exceeds
 * the cluster cap (pinned by tests/test_fleet.cc).
 */
#ifndef POWERDIAL_FLEET_POWER_ARBITER_H
#define POWERDIAL_FLEET_POWER_ARBITER_H

#include <string>
#include <vector>

#include "sim/cluster.h"

namespace powerdial::fleet {

/** How the cluster cap is split across machines each epoch. */
enum class ArbiterPolicy
{
    /** Equal budget per machine, load-blind (the naive baseline). */
    Uniform,
    /** Idle floor for everyone; the rest proportional to active jobs. */
    UtilizationProportional,
    /**
     * Utilisation-proportional start, then budget shifts toward
     * machines whose tenants reported above-average QoS loss last
     * epoch — the fleet analogue of the paper's feedback law, using
     * delivered QoS instead of heart rate as the error signal.
     */
    QosFeedback,
};

/** Human-readable policy name for reports. */
const char *arbiterPolicyName(ArbiterPolicy policy);

/** Arbitration parameters. */
struct ArbiterOptions
{
    /** Cluster-wide power cap, watts. <= 0 means uncapped. */
    double cluster_cap_watts = 0.0;
    ArbiterPolicy policy = ArbiterPolicy::Uniform;
    /**
     * QosFeedback only: fraction of a machine's budget that may move
     * per epoch in response to the QoS-loss error, in [0, 1].
     */
    double feedback_gain = 0.5;
};

/** Per-machine outcome of one arbitration epoch. */
struct ArbitrationDecision
{
    std::vector<double> budget_watts;   //!< Per-machine budget.
    std::vector<std::size_t> pstate_cap;//!< Installed DVFS cap.
    /**
     * Per-machine duty-cycle pause ratio: > 0 when even the slowest
     * P-state cannot meet the budget at the machine's utilisation.
     * Tenants then idle ratio seconds per busy second of each beat's
     * work (core::BeatGateContext::pause_per_busy, delivered through
     * the session gate), which holds the machine's average power at
     * (W_busy + ratio * W_idle) / (1 + ratio) == budget regardless of
     * the tenants' share, frequency, and knob settings.
     */
    std::vector<double> pause_ratio;
};

/**
 * Splits a cluster power cap into per-machine DVFS caps each epoch.
 */
class PowerArbiter
{
  public:
    explicit PowerArbiter(const ArbiterOptions &options);

    const ArbiterOptions &options() const { return options_; }

    /**
     * Arbitrate one epoch: compute per-machine budgets from the
     * cluster's dynamic occupancy and last epoch's per-machine mean
     * tenant QoS loss, then install the resulting P-state caps on the
     * cluster's machines (settable mid-run). With no cap configured,
     * budgets are unbounded and every machine is uncapped.
     *
     * @param cluster  Live cluster (occupancy read, machine caps written).
     * @param qos_loss Last-known per-machine mean tenant QoS loss
     *                 (the caller retains a machine's previous value
     *                 over epochs in which it hosted no new tenants,
     *                 so the signal persists across idle gaps); empty
     *                 means no feedback yet.
     */
    ArbitrationDecision arbitrate(sim::Cluster &cluster,
                                  const std::vector<double> &qos_loss);

    /**
     * The fastest P-state whose model power at @p utilization fits
     * within @p budget_watts; the slowest state if none fits.
     */
    static std::size_t pstateCapFor(const sim::Machine &machine,
                                    double budget_watts,
                                    double utilization);

  private:
    std::vector<double> splitBudget(const sim::Cluster &cluster,
                                    const std::vector<double> &qos_loss)
        const;

    /**
     * The informed split for mixed fleets: per-class idle floors, and
     * headroom weighted by active instances times the class's dynamic
     * power range (peak - idle). Homogeneous fleets never reach this
     * path, so the legacy split's exact rounding is preserved.
     */
    std::vector<double>
    splitBudgetHeterogeneous(const sim::Cluster &cluster,
                             const std::vector<double> &qos_loss) const;

    ArbiterOptions options_;
};

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_POWER_ARBITER_H
