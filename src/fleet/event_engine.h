/**
 * @file
 * The discrete-event fleet engine.
 *
 * The legacy epoch loop advances every tenant and re-prices every
 * machine once per epoch, whether or not anything changed — wall-clock
 * scales with fleet size x epoch count. This engine replaces the round
 * loop with a deterministic discrete-event core:
 *
 *   - a priority queue of typed events — job arrivals, beat-quantum
 *     expiries, job completions, lease rewrites (arbitration), trace
 *     samples — ordered by (virtual time, stable sequence id), so
 *     execution order is total and independent of thread count;
 *   - tenant advancement *between* events through core::FanoutEngine's
 *     fixed-order merge (the only parallel section);
 *   - arbitration triggered by state changes (admissions, completions)
 *     rather than by the epoch clock; the epoch cadence survives only
 *     as a periodic event source (trace samples, the default quantum).
 *
 * In EventEngineOptions::epoch_compat mode the queue is restricted to
 * epoch-cadence events replaying the legacy schedule exactly, and the
 * resulting FleetReport is bit-identical to Server's epoch loop —
 * tests/test_fleet_event_engine.cc pins this differentially over
 * dozens of randomized scenarios.
 */
#ifndef POWERDIAL_FLEET_EVENT_ENGINE_H
#define POWERDIAL_FLEET_EVENT_ENGINE_H

#include <vector>

#include "fleet/server.h"

namespace powerdial::fleet {

/**
 * Serve @p offers (jobs offered per epoch, with tenant/class/deadline
 * metadata) through the discrete-event engine. Called by Server::serve
 * when ServerOptions::engine == EngineMode::Event; callers normally go
 * through Server rather than this entry point. Same contract as
 * Server::serve: app, table, and model must outlive the call, and the
 * caller's app instance is never run.
 */
FleetReport
serveEventDriven(const core::App &app, const core::KnobTable &table,
                 const core::ResponseModel &model,
                 const ServerOptions &options,
                 const std::vector<std::vector<workload::OfferedJob>>
                     &offers);

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_EVENT_ENGINE_H
