/**
 * @file
 * Fleet-plane decision attribution: the tracer both engines call at
 * their serial decision points, plus the FleetReport-to-metrics
 * bridge.
 *
 * The FleetTracer wraps an optional obs::TraceSink and renders each
 * fleet decision as structured records on the serial fleet stream
 * (TraceSink::emitFleet): per-candidate placement costs, admission
 * verdicts with the full pricing math (predicted latency, margin,
 * class headroom), sheds with their attributed cause, arbitration
 * terms per machine, and every lease rewrite. With no sink attached
 * every method is one null check — the engines call the tracer
 * unconditionally.
 *
 * All methods must be called from the engines' serial sections only
 * (admission, arbitration, and lease writes already are): emitFleet
 * assigns a single monotone sequence, which is what makes the fleet
 * plane's trace order thread-count independent.
 */
#ifndef POWERDIAL_FLEET_OBSERVABILITY_H
#define POWERDIAL_FLEET_OBSERVABILITY_H

#include <cstddef>
#include <vector>

#include "fleet/server.h"
#include "obs/metrics.h"
#include "obs/trace_sink.h"

namespace powerdial::fleet {

class FleetTracer
{
  public:
    FleetTracer() = default;
    explicit FleetTracer(obs::TraceSink *sink) : sink_(sink) {}

    /** Whether any sink is attached at all. */
    bool on() const { return sink_ != nullptr; }

    /** Set the fleet virtual time the next records carry. */
    void at(double now_s) { now_s_ = now_s; }

    /** Whether per-candidate placement records would be kept — the
     *  caller gates the candidateCosts() computation on this. */
    bool
    wantsPlacement() const
    {
        return sink_ != nullptr &&
            sink_->wants(obs::kCatPlacement, obs::Severity::Info);
    }

    /** One Placement record per machine: the cost vector the policy
     *  minimized for offer @p offer (empty = policy has no costs). */
    void placement(std::size_t offer,
                   const std::vector<double> &costs);

    /** Offer @p offer was admitted as fleet job @p job_id under
     *  @p verdict's pricing. */
    void admit(std::size_t offer, const workload::OfferedJob &job,
               const AdmissionVerdict &verdict, std::size_t job_id);

    /** Offer @p offer was turned away; the cause and pricing are in
     *  @p verdict, the charge lands on verdict.policy_pick. */
    void shed(std::size_t offer, const workload::OfferedJob &job,
              const AdmissionVerdict &verdict);

    /** One arbitration round: a record per machine with its budget,
     *  DVFS cap, and duty-cycle pause. */
    void arbitration(std::size_t generation,
                     const ArbitrationDecision &decision);

    /** Job @p job's lease was rewritten to @p lease's terms. */
    void lease(std::size_t job, std::size_t tenant,
               std::size_t machine, const ArbitrationLease &lease);

  private:
    obs::TraceSink *sink_ = nullptr;
    double now_s_ = 0.0;
};

/**
 * Fold one serve's FleetReport into the metrics registry: job/shed/
 * drain counters (sheds also per priority class), log-scale histograms
 * of completion latency, QoS loss, epoch cluster power, and epoch
 * queue depth, and the summed latency breakdown by component.
 * Deterministic: every value comes from the (already thread-count-
 * independent) report, so the Prometheus exposition is byte-identical
 * across runs of the same scenario.
 */
void recordFleetMetrics(obs::MetricsRegistry &registry,
                        const FleetReport &report);

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_OBSERVABILITY_H
