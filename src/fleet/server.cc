#include "fleet/server.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>

#include "core/thread_pool.h"

namespace powerdial::fleet {

namespace {

/** One admitted job with its run parameters frozen at placement. */
struct Launch
{
    std::size_t job = 0;
    std::size_t tenant = 0;
    std::size_t machine = 0;
    double share = 1.0;
    double utilization = 1.0;
    std::size_t pstate_cap = 0;
    double pause_ratio = 0.0;
};

} // namespace

Server::Server(const core::App &app, const core::KnobTable &table,
               const core::ResponseModel &model, ServerOptions options)
    : app_(&app), table_(&table), model_(&model),
      options_(std::move(options))
{
    if (options_.machines == 0)
        throw std::invalid_argument("Server: need at least one machine");
    if (options_.tenants.empty())
        options_.tenants = app.productionInputs();
    if (options_.tenants.empty())
        throw std::invalid_argument("Server: no tenant inputs");
}

FleetReport
Server::serve(const std::vector<std::size_t> &arrivals)
{
    sim::Cluster cluster(options_.machines, options_.machine);
    Scheduler scheduler(cluster, options_.placement);
    PowerArbiter arbiter(options_.arbiter);

    const double epoch_s = options_.epoch_seconds > 0.0
        ? options_.epoch_seconds
        : model_->baselineSeconds();
    if (epoch_s <= 0.0)
        throw std::invalid_argument("Server: epoch duration must be > 0");

    // One pool for the whole serve; tenant sessions are the only
    // parallel section, so the hub shards one-to-one with workers.
    std::optional<core::ThreadPool> pool;
    std::size_t workers = 1;
    if (options_.threads != 1) {
        pool.emplace(options_.threads);
        workers = pool->size();
    }
    MetricsHub hub(workers);

    // Jobs completing at epoch t release their machine slot at the
    // top of epoch t; completions past the horizon simply never
    // release (the serve ends first).
    std::vector<std::vector<std::size_t>> completions(arrivals.size() +
                                                      1);
    std::vector<double> qos_feedback(options_.machines, 0.0);

    FleetReport report;
    report.epochs.reserve(arrivals.size());
    std::size_t next_job = 0;

    for (std::size_t e = 0; e < arrivals.size(); ++e) {
        EpochStats stats;
        stats.epoch = e;

        for (const std::size_t machine : completions[e])
            scheduler.release(machine);
        stats.completed = completions[e].size();

        // Placement: serial and deterministic, one arrival at a time.
        std::vector<Launch> launches;
        launches.reserve(arrivals[e]);
        for (std::size_t k = 0; k < arrivals[e]; ++k) {
            Launch launch;
            launch.job = next_job;
            launch.tenant =
                options_.tenants[next_job % options_.tenants.size()];
            launch.machine = scheduler.admit();
            ++next_job;
            launches.push_back(launch);
        }

        // Arbitration reads the post-placement occupancy and installs
        // this epoch's per-machine caps (and duty-cycle pauses).
        const ArbitrationDecision decision =
            arbiter.arbitrate(cluster, qos_feedback);
        for (auto &launch : launches) {
            const auto load =
                cluster.loadOf(cluster.activeOn(launch.machine));
            launch.share = load.per_instance_share;
            launch.utilization = load.utilization;
            launch.pstate_cap = decision.pstate_cap[launch.machine];
            launch.pause_ratio = decision.pause_ratio[launch.machine];
        }

        // Private clones, made serially: App::clone() of a shared
        // instance is not required to be thread-safe.
        std::vector<std::unique_ptr<core::App>> clones(launches.size());
        std::vector<core::KnobTable> tables;
        tables.reserve(launches.size());
        for (std::size_t i = 0; i < launches.size(); ++i) {
            clones[i] = app_->clone();
            tables.push_back(core::rebindKnobTable(*table_, *clones[i]));
        }

        // Tenant sessions: the only parallel section. Each job runs
        // the full closed loop on a machine modelling its host's core
        // share, frequency cap, and arbitration pauses.
        std::vector<JobRecord> outcomes(launches.size());
        const auto runOne = [&](std::size_t i, std::size_t worker) {
            const Launch &launch = launches[i];
            sim::Machine machine(options_.machine);
            machine.setPStateCap(launch.pstate_cap);
            machine.setShare(launch.share);
            machine.setUtilization(launch.utilization);

            core::SessionOptions session_options = options_.session;
            if (launch.pause_ratio > 0.0) {
                // Compose with any caller-supplied gate rather than
                // replacing it. The per-busy ratio makes the host
                // meet its power budget exactly on average, whatever
                // the tenant's share, frequency, and knob setting.
                const double ratio = launch.pause_ratio;
                core::BeatGate user_gate = session_options.gate;
                session_options.withGate(
                    [ratio, user_gate](core::BeatGateContext &ctx) {
                        if (user_gate)
                            user_gate(ctx);
                        ctx.pause_per_busy += ratio;
                    });
            }

            core::Session session(*clones[i], tables[i], *model_,
                                  session_options);
            JobRecord seed;
            seed.job = launch.job;
            seed.tenant = launch.tenant;
            seed.epoch = e;
            seed.machine = launch.machine;
            MetricsHub::Probe probe = hub.probe(worker, seed);
            session.observe(probe);
            session.run(launch.tenant, machine);
            probe.finish(machine);
            outcomes[i] = probe.record();
        };
        if (pool.has_value() && launches.size() > 1) {
            pool->parallelFor(launches.size(), runOne);
        } else {
            for (std::size_t i = 0; i < launches.size(); ++i)
                runOne(i, 0);
        }

        // Service accounting and per-machine QoS feedback, merged in
        // launch order so the serve stays deterministic.
        std::vector<double> machine_qos(options_.machines, 0.0);
        std::vector<std::size_t> machine_jobs(options_.machines, 0);
        double qos_sum = 0.0;
        for (std::size_t i = 0; i < launches.size(); ++i) {
            const Launch &launch = launches[i];
            const JobRecord &out = outcomes[i];
            const std::size_t held = std::max<std::size_t>(
                1, static_cast<std::size_t>(
                       std::ceil(out.latency_s / epoch_s)));
            const std::size_t done = e + held;
            if (done < completions.size())
                completions[done].push_back(launch.machine);
            machine_qos[launch.machine] += out.qos_loss;
            ++machine_jobs[launch.machine];
            qos_sum += out.qos_loss;
            stats.fleet_rate += out.mean_rate;
        }
        // Machines that hosted no new tenants keep their last-known
        // loss: the feedback signal persists across idle gaps rather
        // than flickering to zero at every quiet epoch.
        for (std::size_t m = 0; m < options_.machines; ++m)
            if (machine_jobs[m] > 0)
                qos_feedback[m] = machine_qos[m] /
                    static_cast<double>(machine_jobs[m]);

        stats.arrivals = launches.size();
        stats.active = cluster.totalActive();
        stats.watts = cluster.dynamicWatts();
        stats.mean_qos_loss = launches.empty()
            ? 0.0
            : qos_sum / static_cast<double>(launches.size());
        stats.max_pause_ratio = *std::max_element(
            decision.pause_ratio.begin(), decision.pause_ratio.end());
        report.epochs.push_back(stats);
    }

    report.jobs = hub.drain();
    report.total_jobs = next_job;

    double watts_sum = 0.0, rate_sum = 0.0;
    for (const EpochStats &stats : report.epochs) {
        watts_sum += stats.watts;
        rate_sum += stats.fleet_rate;
    }
    if (!report.epochs.empty()) {
        const double n = static_cast<double>(report.epochs.size());
        report.mean_watts = watts_sum / n;
        report.mean_fleet_rate = rate_sum / n;
    }

    std::vector<double> latencies;
    latencies.reserve(report.jobs.size());
    double qos_sum = 0.0;
    std::map<std::size_t, TenantStats> tenants;
    for (const JobRecord &job : report.jobs) {
        latencies.push_back(job.latency_s);
        qos_sum += job.qos_loss;
        TenantStats &tenant = tenants[job.tenant];
        tenant.tenant = job.tenant;
        ++tenant.jobs;
        tenant.mean_qos_loss += job.qos_loss;
        tenant.mean_latency_s += job.latency_s;
    }
    if (!report.jobs.empty())
        report.mean_qos_loss =
            qos_sum / static_cast<double>(report.jobs.size());
    std::sort(latencies.begin(), latencies.end());
    report.p50_latency_s = percentileOf(latencies, 50.0);
    report.p95_latency_s = percentileOf(latencies, 95.0);
    report.p99_latency_s = percentileOf(latencies, 99.0);
    for (auto &[id, tenant] : tenants) {
        const double jobs = static_cast<double>(tenant.jobs);
        tenant.mean_qos_loss /= jobs;
        tenant.mean_latency_s /= jobs;
        report.tenants.push_back(tenant);
    }
    return report;
}

} // namespace powerdial::fleet
