#include "fleet/server.h"

#include <algorithm>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/fanout.h"

namespace powerdial::fleet {

namespace {

/**
 * One admitted job, persistent across epochs: its session, private
 * clone, simulated machine, and metrics probe live as long as the job
 * is in flight, and its lease is rewritten by the arbiter at every
 * epoch boundary. Tenants are heap-allocated and never move, so the
 * session's pointers into the clone and table (and the gate's pointer
 * back into the tenant) stay valid for the whole run.
 */
struct Tenant
{
    std::size_t job = 0;
    std::size_t input = 0;
    std::size_t machine_index = 0;
    std::size_t arrival_epoch = 0;

    std::unique_ptr<core::App> app;
    core::KnobTable table;
    sim::Machine machine;
    ArbitrationLease lease;
    std::size_t applied_generation = 0; //!< Gate-side: last applied.
    double slice_deadline_s = 0.0;      //!< Tenant-local epoch end.
    std::size_t beats_reported = 0;     //!< Beats already attributed
                                        //!< to earlier epochs' rates.

    explicit Tenant(const sim::Machine::Config &config)
        : machine(config)
    {
    }

    std::optional<MetricsHub::Probe> probe;
    std::optional<core::Session> session;
    bool started = false;
    bool done = false;
};

} // namespace

Server::Server(const core::App &app, const core::KnobTable &table,
               const core::ResponseModel &model, ServerOptions options)
    : app_(&app), table_(&table), model_(&model),
      options_(std::move(options))
{
    if (options_.machines == 0)
        throw std::invalid_argument("Server: need at least one machine");
    if (options_.tenants.empty())
        options_.tenants = app.productionInputs();
    if (options_.tenants.empty())
        throw std::invalid_argument("Server: no tenant inputs");
}

FleetReport
Server::serve(const std::vector<std::size_t> &arrivals)
{
    sim::Cluster cluster(options_.machines, options_.machine);
    Scheduler scheduler(
        cluster, SchedulerOptions{options_.placement,
                                  options_.queue_depth});
    PowerArbiter arbiter(options_.arbiter);

    const double epoch_s = options_.epoch_seconds > 0.0
        ? options_.epoch_seconds
        : model_->baselineSeconds();
    if (epoch_s <= 0.0)
        throw std::invalid_argument("Server: epoch duration must be > 0");

    // One fan-out engine for the whole serve; tenant epoch slices are
    // the only parallel section, so the hub shards one-to-one with
    // its workers.
    core::FanoutEngine engine(options_.threads);
    MetricsHub hub(engine.workers());

    std::vector<double> qos_feedback(options_.machines, 0.0);
    std::vector<std::unique_ptr<Tenant>> active; // In job order.

    FleetReport report;
    report.epochs.reserve(arrivals.size());
    std::size_t next_job = 0;

    // Advance every active tenant to its current slice deadline
    // (+inf for the final drain); the slice that completes a run
    // commits its record on the worker actually running it.
    const auto runSlices = [&]() {
        engine.run(active.size(),
                   [&](std::size_t i, std::size_t worker) {
                       Tenant &t = *active[i];
                       if (t.done)
                           return; // Awaiting release at the epoch top.
                       if (!t.started) {
                           t.session->observe(*t.probe);
                           t.session->start(t.input, t.machine);
                           t.started = true;
                       }
                       const auto result =
                           t.session->advanceUntil(t.slice_deadline_s);
                       if (result.has_value()) {
                           t.done = true;
                           t.probe->finishOn(worker, t.machine);
                       }
                   });
    };

    for (std::size_t e = 0; e < arrivals.size(); ++e) {
        EpochStats stats;
        stats.epoch = e;

        // Top of epoch: tenants that completed during the previous
        // epoch's slice release their machine slot now.
        std::size_t kept = 0;
        for (auto &tenant : active) {
            if (tenant->done) {
                scheduler.release(tenant->machine_index);
                ++stats.completed;
            } else {
                active[kept++] = std::move(tenant);
            }
        }
        active.resize(kept);

        // Admission: serial and deterministic, one arrival at a time.
        // Jobs past the queue-depth bound are shed, not queued.
        const std::size_t shed_before = scheduler.shedCount();
        std::vector<std::size_t> placements;
        placements.reserve(arrivals[e]);
        for (std::size_t k = 0; k < arrivals[e]; ++k) {
            const auto machine = scheduler.tryAdmit();
            if (machine.has_value())
                placements.push_back(*machine);
        }
        stats.arrivals = placements.size();
        stats.shed = scheduler.shedCount() - shed_before;
        report.total_shed += stats.shed;

        // Private clones with rebound knob tables, created serially
        // by the fan-out engine's preamble helper.
        auto bound = core::FanoutEngine::cloneBound(
            *app_, *table_, placements.size());
        for (std::size_t i = 0; i < placements.size(); ++i) {
            auto tenant = std::make_unique<Tenant>(options_.machine);
            Tenant *t = tenant.get();
            t->job = next_job;
            t->input =
                options_.tenants[next_job % options_.tenants.size()];
            t->machine_index = placements[i];
            t->arrival_epoch = e;
            t->app = std::move(bound.apps[i]);
            t->table = std::move(bound.tables[i]);
            ++next_job;

            JobRecord seed;
            seed.job = t->job;
            seed.tenant = t->input;
            seed.epoch = e;
            seed.machine = t->machine_index;
            t->probe.emplace(hub.probe(0, seed));

            // The tenant's gate: the caller's gate first, then the
            // lease re-read (terms applied within one beat of the
            // rewrite), then the lease-driven duty-cycle pause.
            core::SessionOptions session_options = options_.session;
            session_options.withGate(core::composeGates(
                {options_.session.gate,
                 [t](core::BeatGateContext &ctx) {
                     const ArbitrationLease &lease = t->lease;
                     if (t->applied_generation != lease.generation) {
                         ctx.machine.setPStateCap(lease.pstate_cap);
                         ctx.machine.setShare(lease.share);
                         ctx.machine.setUtilization(lease.utilization);
                         t->applied_generation = lease.generation;
                         t->probe->noteLease(lease.generation);
                     }
                 },
                 core::makeDutyCycleGate(
                     [t]() { return t->lease.pause_ratio; })}));
            t->session.emplace(*t->app, t->table, *model_,
                               std::move(session_options));
            active.push_back(std::move(tenant));
        }

        // Arbitration reads the post-placement occupancy; the new
        // terms land in every in-flight tenant's lease — including
        // tenants admitted epochs ago — and their gates apply them at
        // the next beat.
        const ArbitrationDecision decision =
            arbiter.arbitrate(cluster, qos_feedback);
        const std::size_t generation = e + 1;
        stats.lease_generation = generation;
        for (auto &tenant : active) {
            const auto load = cluster.loadOf(
                cluster.activeOn(tenant->machine_index));
            tenant->lease.generation = generation;
            tenant->lease.epoch = e;
            tenant->lease.share = load.per_instance_share;
            tenant->lease.utilization = load.utilization;
            tenant->lease.pstate_cap =
                decision.pstate_cap[tenant->machine_index];
            tenant->lease.pause_ratio =
                decision.pause_ratio[tenant->machine_index];
            tenant->slice_deadline_s =
                static_cast<double>(e - tenant->arrival_epoch + 1) *
                epoch_s;
        }

        // Tenant epoch slices: the only parallel section.
        runSlices();

        // Serial accounting in job order. QoS feedback to the arbiter
        // comes from jobs that finished this epoch; machines with no
        // finisher keep their last-known loss, so the signal persists
        // across idle gaps rather than flickering to zero.
        std::vector<double> machine_qos(options_.machines, 0.0);
        std::vector<std::size_t> machine_jobs(options_.machines, 0);
        double qos_sum = 0.0;
        std::size_t finished = 0;
        for (const auto &tenant : active) {
            // Fleet heart rate = beats actually delivered during this
            // epoch's slices over the epoch length, so a cross-epoch
            // tenant contributes each beat to exactly one epoch.
            const std::size_t beats = tenant->probe->record().beats;
            stats.fleet_rate +=
                static_cast<double>(beats - tenant->beats_reported) /
                epoch_s;
            tenant->beats_reported = beats;
            if (tenant->done) {
                const JobRecord &record = tenant->probe->record();
                machine_qos[tenant->machine_index] += record.qos_loss;
                ++machine_jobs[tenant->machine_index];
                qos_sum += record.qos_loss;
                ++finished;
            }
        }
        for (std::size_t m = 0; m < options_.machines; ++m)
            if (machine_jobs[m] > 0)
                qos_feedback[m] = machine_qos[m] /
                    static_cast<double>(machine_jobs[m]);

        stats.active = cluster.totalActive();
        stats.watts = cluster.dynamicWatts();
        stats.mean_qos_loss = finished == 0
            ? 0.0
            : qos_sum / static_cast<double>(finished);
        stats.max_pause_ratio = *std::max_element(
            decision.pause_ratio.begin(), decision.pause_ratio.end());
        report.epochs.push_back(stats);
    }

    // Past the horizon: in-flight tenants run to completion under
    // their final lease terms (no further arbitration rounds).
    for (auto &tenant : active)
        tenant->slice_deadline_s =
            std::numeric_limits<double>::infinity();
    runSlices();
    active.clear();

    report.jobs = hub.drain();
    report.total_jobs = next_job;

    double watts_sum = 0.0, rate_sum = 0.0;
    for (const EpochStats &stats : report.epochs) {
        watts_sum += stats.watts;
        rate_sum += stats.fleet_rate;
    }
    if (!report.epochs.empty()) {
        const double n = static_cast<double>(report.epochs.size());
        report.mean_watts = watts_sum / n;
        report.mean_fleet_rate = rate_sum / n;
    }

    std::vector<double> latencies;
    latencies.reserve(report.jobs.size());
    double qos_sum = 0.0;
    std::map<std::size_t, TenantStats> tenants;
    for (const JobRecord &job : report.jobs) {
        latencies.push_back(job.latency_s);
        qos_sum += job.qos_loss;
        TenantStats &tenant = tenants[job.tenant];
        tenant.tenant = job.tenant;
        ++tenant.jobs;
        tenant.mean_qos_loss += job.qos_loss;
        tenant.mean_latency_s += job.latency_s;
    }
    if (!report.jobs.empty())
        report.mean_qos_loss =
            qos_sum / static_cast<double>(report.jobs.size());
    std::sort(latencies.begin(), latencies.end());
    report.p50_latency_s = percentileOf(latencies, 50.0);
    report.p95_latency_s = percentileOf(latencies, 95.0);
    report.p99_latency_s = percentileOf(latencies, 99.0);
    for (auto &[id, tenant] : tenants) {
        const double jobs = static_cast<double>(tenant.jobs);
        tenant.mean_qos_loss /= jobs;
        tenant.mean_latency_s /= jobs;
        report.tenants.push_back(tenant);
    }
    return report;
}

} // namespace powerdial::fleet
