#include "fleet/server.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/fanout.h"
#include "fleet/event_engine.h"
#include "fleet/tenant.h"

namespace powerdial::fleet {

using detail::Tenant;

Server::Server(const core::App &app, const core::KnobTable &table,
               const core::ResponseModel &model, ServerOptions options)
    : app_(&app), table_(&table), model_(&model),
      options_(std::move(options))
{
    if (options_.catalog.empty()) {
        if (options_.machines == 0)
            throw std::invalid_argument(
                "Server: need at least one machine");
        if (!options_.class_mix.empty())
            throw std::invalid_argument(
                "Server: class_mix needs a machine catalog");
    } else {
        if (options_.class_mix.size() != options_.catalog.size())
            throw std::invalid_argument(
                "Server: class_mix must be parallel to the catalog");
        std::size_t provisioned = 0;
        for (const std::size_t count : options_.class_mix)
            provisioned += count;
        if (provisioned == 0)
            throw std::invalid_argument(
                "Server: class_mix provisions no machines");
    }
    if (options_.tenants.empty())
        options_.tenants = app.productionInputs();
    if (options_.tenants.empty())
        throw std::invalid_argument("Server: no tenant inputs");
    if (options_.event.sample_stride == 0)
        throw std::invalid_argument(
            "Server: event sample_stride must be >= 1");
    if (options_.event.quantum_seconds < 0.0)
        throw std::invalid_argument(
            "Server: event quantum must be >= 0");
    if (options_.event.epoch_compat &&
        (options_.event.sample_stride != 1 ||
         options_.event.quantum_seconds != 0.0))
        throw std::invalid_argument(
            "Server: epoch_compat fixes the quantum to one epoch and "
            "the sample stride to 1");
}

FleetReport
Server::serve(const std::vector<std::size_t> &arrivals)
{
    // The legacy count-based schedule: every offered job is
    // metadata-free (round-robin tenant, class 0, no deadline), so
    // the serve below reproduces the historical behaviour exactly.
    std::vector<std::vector<workload::OfferedJob>> offers(
        arrivals.size());
    std::size_t next_offer = 0;
    for (std::size_t e = 0; e < arrivals.size(); ++e) {
        offers[e].assign(arrivals[e],
                         workload::OfferedJob{kRoundRobinTenant, 0, 0.0});
        for (workload::OfferedJob &job : offers[e])
            job.offer = next_offer++;
    }
    return serve(offers);
}

FleetReport
Server::serve(const std::vector<std::vector<workload::OfferedJob>> &offers)
{
    if (options_.engine == EngineMode::Event)
        return serveEventDriven(*app_, *table_, *model_, options_,
                                offers);

    sim::Cluster cluster = detail::makeCluster(options_);
    Scheduler scheduler(
        cluster, SchedulerOptions{options_.placement,
                                  options_.queue_depth,
                                  options_.admission, model_});
    PowerArbiter arbiter(options_.arbiter);

    const double epoch_s = options_.epoch_seconds > 0.0
        ? options_.epoch_seconds
        : model_->baselineSeconds();
    if (epoch_s <= 0.0)
        throw std::invalid_argument("Server: epoch duration must be > 0");

    // One fan-out engine for the whole serve; tenant epoch slices are
    // the only parallel section, so the hub shards one-to-one with
    // its workers.
    core::FanoutEngine engine(options_.threads);
    MetricsHub hub(engine.workers());
    if (options_.trace != nullptr)
        options_.trace->beginServe(engine.workers());
    FleetTracer tracer(options_.trace);

    std::vector<double> qos_feedback(cluster.size(), 0.0);
    std::vector<std::unique_ptr<Tenant>> active; // In job order.

    FleetReport report;
    report.epochs.reserve(offers.size());
    std::size_t next_job = 0;
    std::size_t next_offer = 0;

    // Advance every active tenant to its current slice deadline
    // (+inf for the final drain); the slice that completes a run
    // commits its record on the worker actually running it.
    const auto runSlices = [&]() {
        engine.run(active.size(),
                   [&](std::size_t i, std::size_t worker) {
                       Tenant &t = *active[i];
                       if (t.done)
                           return; // Awaiting release at the epoch top.
                       if (t.trace)
                           t.trace->beginSlice(worker);
                       if (!t.started) {
                           t.session->observe(*t.probe);
                           if (t.trace)
                               t.session->observe(*t.trace);
                           t.session->start(t.input, t.machine);
                           t.started = true;
                       }
                       const auto result =
                           t.session->advanceUntil(t.slice_deadline_s);
                       if (result.has_value()) {
                           t.done = true;
                           t.probe->finishOn(worker, t.machine);
                       }
                   });
    };

    for (std::size_t e = 0; e < offers.size(); ++e) {
        EpochStats stats;
        stats.epoch = e;

        // Top of epoch: tenants that completed during the previous
        // epoch's slice release their machine slot now, feeding their
        // observed-vs-predicted latency to the admission policy.
        std::size_t kept = 0;
        for (auto &tenant : active) {
            if (tenant->done) {
                const JobRecord &record = tenant->probe->record();
                scheduler.noteCompletion(record.latency_s,
                                         record.predicted_s);
                scheduler.release(tenant->machine_index);
                ++stats.completed;
            } else {
                active[kept++] = std::move(tenant);
            }
        }
        active.resize(kept);

        // Admission: serial and deterministic, one arrival at a time.
        // The admission policy decides who runs and who is shed.
        tracer.at(static_cast<double>(e) * epoch_s);
        const std::size_t shed_before = scheduler.shedCount();
        const auto placements = detail::admitOffers(
            scheduler, offers[e], next_job, next_offer, tracer);
        stats.arrivals = placements.size();
        stats.shed = scheduler.shedCount() - shed_before;
        report.total_shed += stats.shed;

        // Private clones with rebound knob tables, created serially
        // by the fan-out engine's preamble helper.
        auto bound = core::FanoutEngine::cloneBound(
            *app_, *table_, placements.size());
        for (std::size_t i = 0; i < placements.size(); ++i) {
            active.push_back(detail::makeTenant(
                options_, *model_, hub,
                cluster.configOf(placements[i].first.machine), next_job,
                placements[i].first.machine, e,
                static_cast<double>(e) * epoch_s,
                *placements[i].second, placements[i].first.predicted_s,
                std::move(bound.apps[i]), std::move(bound.tables[i])));
            ++next_job;
        }

        // Arbitration reads the post-placement occupancy; the new
        // terms land in every in-flight tenant's lease — including
        // tenants admitted epochs ago — and their gates apply them at
        // the next beat. The scheduler sees the round too, as lease
        // context for the next epoch's admission decisions.
        const ArbitrationDecision decision =
            arbiter.arbitrate(cluster, qos_feedback);
        scheduler.noteArbitration(decision);
        const std::size_t generation = e + 1;
        stats.lease_generation = generation;
        if (options_.arbitration_probe)
            options_.arbitration_probe(ArbitrationSample{
                static_cast<double>(e) * epoch_s, generation, decision});
        tracer.arbitration(generation, decision);
        for (auto &tenant : active) {
            detail::writeLease(cluster, *tenant, generation, e,
                               decision, tracer);
            tenant->slice_deadline_s =
                static_cast<double>(e - tenant->arrival_epoch + 1) *
                epoch_s;
        }

        // Tenant epoch slices: the only parallel section.
        runSlices();

        // Serial accounting in job order. QoS feedback to the arbiter
        // comes from jobs that finished this epoch; machines with no
        // finisher keep their last-known loss, so the signal persists
        // across idle gaps rather than flickering to zero.
        std::vector<double> machine_qos(cluster.size(), 0.0);
        std::vector<std::size_t> machine_jobs(cluster.size(), 0);
        double qos_sum = 0.0;
        std::size_t finished = 0;
        for (const auto &tenant : active) {
            // Fleet heart rate = beats actually delivered during this
            // epoch's slices over the epoch length, so a cross-epoch
            // tenant contributes each beat to exactly one epoch.
            const std::size_t beats = tenant->probe->record().beats;
            stats.fleet_rate +=
                static_cast<double>(beats - tenant->beats_reported) /
                epoch_s;
            tenant->beats_reported = beats;
            if (tenant->done) {
                const JobRecord &record = tenant->probe->record();
                machine_qos[tenant->machine_index] += record.qos_loss;
                ++machine_jobs[tenant->machine_index];
                qos_sum += record.qos_loss;
                ++finished;
            }
        }
        for (std::size_t m = 0; m < cluster.size(); ++m)
            if (machine_jobs[m] > 0)
                qos_feedback[m] = machine_qos[m] /
                    static_cast<double>(machine_jobs[m]);

        stats.active = cluster.totalActive();
        stats.watts = cluster.dynamicWatts();
        stats.mean_qos_loss = finished == 0
            ? 0.0
            : qos_sum / static_cast<double>(finished);
        stats.max_pause_ratio = *std::max_element(
            decision.pause_ratio.begin(), decision.pause_ratio.end());
        report.epochs.push_back(stats);
    }

    // Past the horizon: in-flight tenants run to completion under
    // their final lease terms (no further arbitration rounds). Every
    // tenant still held here was never released inside the horizon,
    // so the conservation invariant reads
    //   total_jobs == sum(epochs.completed) + drained_jobs.
    report.drained_jobs = active.size();
    for (auto &tenant : active)
        tenant->slice_deadline_s =
            std::numeric_limits<double>::infinity();
    runSlices();
    active.clear();

    report.total_jobs = next_job;
    report.shed_by_machine = scheduler.shedByMachine();
    report.shed_by_class = scheduler.shedByClass();
    detail::finalizeReport(report, hub.drain(), cluster);
    return report;
}

} // namespace powerdial::fleet
