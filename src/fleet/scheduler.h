/**
 * @file
 * Job placement for the fleet serving subsystem.
 *
 * The analytic sim::Cluster::balance() answers "how would a
 * proportional balancer spread a steady load"; a serving fleet instead
 * places jobs one at a time as they arrive and releases them as they
 * complete. The Scheduler does that incremental placement against the
 * cluster's dynamic occupancy state, with the policy choice behind a
 * seam so least-loaded and power-aware placement are interchangeable
 * (and new policies pluggable, like the control-loop seams of
 * core::Session).
 */
#ifndef POWERDIAL_FLEET_SCHEDULER_H
#define POWERDIAL_FLEET_SCHEDULER_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/cluster.h"

namespace powerdial::fleet {

/**
 * Chooses the machine for the next arriving job. Implementations must
 * be deterministic pure functions of the cluster's observable state;
 * ties break toward the lowest machine index so placements replay
 * identically run to run.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Policy name for reports, e.g. "least-loaded". */
    virtual std::string name() const = 0;

    /** The machine index the next job should be placed on. */
    virtual std::size_t pick(const sim::Cluster &cluster) const = 0;
};

/** Mint a fresh placement policy per scheduler. */
using PlacementFactory =
    std::function<std::unique_ptr<PlacementPolicy>()>;

/**
 * Fewest active instances wins (lowest index on ties) — the
 * incremental form of the proportional balancer the paper's section
 * 5.5 provisioning model assumes.
 */
PlacementFactory makeLeastLoadedPlacement();

/**
 * Smallest increase in cluster power wins: the candidate machine is
 * the one whose steady-state draw (at its own, possibly arbiter-
 * capped, frequency) grows least when it hosts one more instance.
 * Prefers filling slow (capped) and already-busy machines whose
 * marginal watt cost is low, trading per-job speed for fleet power.
 */
PlacementFactory makePowerAwarePlacement();

/** Admission-control parameters. */
struct SchedulerOptions
{
    /** Placement policy; null means least-loaded. */
    PlacementFactory placement;
    /**
     * Bounded per-machine run-queue depth: the most active instances
     * one machine may host (running plus queued behind its cores).
     * Arrivals that find every machine at the bound are shed, not
     * queued without limit. 0 (the default) keeps the historical
     * unbounded behaviour.
     */
    std::size_t queue_depth = 0;
};

/**
 * Incremental job placement against one cluster's dynamic state.
 * The cluster must outlive the scheduler.
 */
class Scheduler
{
  public:
    /** @param policy Null means least-loaded placement. */
    explicit Scheduler(sim::Cluster &cluster,
                       PlacementFactory policy = nullptr);

    Scheduler(sim::Cluster &cluster, SchedulerOptions options);

    /**
     * Place one arriving job; returns the hosting machine index, or
     * std::nullopt when admission control shed the job (every machine
     * already at the queue-depth bound; the shed counter increments).
     * If the policy's pick is full but another machine has room, the
     * job overflows to the least-loaded machine with space (lowest
     * index on ties) so a full machine never sheds work an emptier
     * neighbour could hold.
     */
    std::optional<std::size_t> tryAdmit();

    /**
     * Unbounded admit (pre-admission-control API): always places.
     * With a queue-depth bound configured, throws std::logic_error
     * when the job would have been shed — callers that can shed must
     * use tryAdmit().
     */
    std::size_t admit();

    /** Record completion of a job hosted on machine @p machine. */
    void release(std::size_t machine);

    /** Jobs shed by admission control so far. */
    std::size_t shedCount() const { return shed_; }

    /**
     * Per-machine shed attribution: each shed job is charged to the
     * machine the placement policy picked for it (the host it would
     * have run on had there been room). The counts sum to shedCount(),
     * so overload reports can say *where* demand was turned away, not
     * just how much.
     */
    const std::vector<std::size_t> &shedByMachine() const
    {
        return shed_by_machine_;
    }

    /** The placement policy in use. */
    const PlacementPolicy &policy() const { return *policy_; }

    /** The queue-depth bound (0 = unbounded). */
    std::size_t queueDepth() const { return options_.queue_depth; }

    const sim::Cluster &cluster() const { return *cluster_; }

  private:
    /** A placement attempt: the policy's raw pick plus, when some
     *  machine still has room, the (possibly overflowed) host. */
    struct Pick
    {
        std::size_t policy_pick = 0;
        std::optional<std::size_t> machine;
    };

    /** Policy pick with bound-overflow; machine empty = cluster full. */
    Pick pickWithRoom() const;

    sim::Cluster *cluster_;
    SchedulerOptions options_;
    std::unique_ptr<PlacementPolicy> policy_;
    std::size_t shed_ = 0;
    std::vector<std::size_t> shed_by_machine_;
};

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_SCHEDULER_H
