/**
 * @file
 * Job placement and admission for the fleet serving subsystem.
 *
 * The analytic sim::Cluster::balance() answers "how would a
 * proportional balancer spread a steady load"; a serving fleet instead
 * places jobs one at a time as they arrive and releases them as they
 * complete. The Scheduler does that incremental placement against the
 * cluster's dynamic occupancy state, with two policy seams so the
 * pieces are independently interchangeable (like the control-loop
 * seams of core::Session):
 *
 *   - PlacementPolicy: *where* an admitted job runs (least-loaded or
 *     power-aware, or anything pluggable);
 *   - AdmissionPolicy (fleet/admission.h): *whether* an arriving job
 *     runs at all — blind queue-depth shedding, or SLO-aware
 *     prediction against the job's deadline class.
 */
#ifndef POWERDIAL_FLEET_SCHEDULER_H
#define POWERDIAL_FLEET_SCHEDULER_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fleet/admission.h"
#include "fleet/power_arbiter.h"
#include "sim/cluster.h"

namespace powerdial::core {
class ResponseModel;
}

namespace powerdial::fleet {

/**
 * Chooses the machine for the next arriving job. Implementations must
 * be deterministic pure functions of the cluster's observable state;
 * ties break toward the lowest machine index so placements replay
 * identically run to run.
 */
class PlacementPolicy
{
  public:
    virtual ~PlacementPolicy() = default;

    /** Policy name for reports, e.g. "least-loaded". */
    virtual std::string name() const = 0;

    /** The machine index the next job should be placed on. */
    virtual std::size_t pick(const sim::Cluster &cluster) const = 0;

    /**
     * The policy's preference restricted to @p candidates (non-empty,
     * ascending machine indices) — asked when the unrestricted pick is
     * at the queue-depth bound but other machines still have room, so
     * overflow keeps following the policy's own criterion instead of
     * silently reverting to least-loaded. The default implementation
     * is least-loaded-among-candidates (lowest index on ties), the
     * historical overflow rule; built-in policies with another cost
     * function (power-aware) override it.
     */
    virtual std::size_t
    pickAmong(const sim::Cluster &cluster,
              const std::vector<std::size_t> &candidates) const;

    /**
     * Hand the policy the scheduler's calibrated response model (may
     * be null). Called once at scheduler construction, before any
     * pick. Most policies ignore it; the affinity-aware policy uses
     * its speedup range to price a candidate machine's class tables.
     */
    virtual void bindModel(const core::ResponseModel *model)
    {
        (void)model;
    }

    /**
     * The policy's per-machine cost vector for the next placement —
     * the quantity pick() minimizes, one entry per cluster machine —
     * for decision-attribution tracing. Policies with no numeric cost
     * (the default) return an empty vector and the tracer emits no
     * placement records for them.
     */
    virtual std::vector<double>
    candidateCosts(const sim::Cluster &cluster) const
    {
        (void)cluster;
        return {};
    }
};

/** Mint a fresh placement policy per scheduler. */
using PlacementFactory =
    std::function<std::unique_ptr<PlacementPolicy>()>;

/**
 * Fewest active instances wins (lowest index on ties) — the
 * incremental form of the proportional balancer the paper's section
 * 5.5 provisioning model assumes.
 */
PlacementFactory makeLeastLoadedPlacement();

/**
 * Smallest increase in cluster power wins: the candidate machine is
 * the one whose steady-state draw (at its own, possibly arbiter-
 * capped, frequency) grows least when it hosts one more instance.
 * Prefers filling slow (capped) and already-busy machines whose
 * marginal watt cost is low, trading per-job speed for fleet power.
 */
PlacementFactory makePowerAwarePlacement();

/**
 * Class-aware placement for heterogeneous fleets: each candidate is
 * priced by the slowdown a job would see there — occupancy (inverse
 * per-instance share against the candidate's own core count) times the
 * class speed deficit (fleet reference effective Hz over the machine's
 * current effective Hz), discounted by the bound knob catch-up the
 * scheduler's calibrated model can deliver. Smallest predicted cost
 * wins; ties break to fewer active instances, then the lowest index —
 * so on a homogeneous fleet the ranking degenerates to exactly
 * least-loaded (every machine prices identically at equal load).
 */
PlacementFactory makeAffinityAwarePlacement();

/** Admission-control parameters. */
struct SchedulerOptions
{
    /** Placement policy; null means least-loaded. */
    PlacementFactory placement;
    /**
     * Bounded per-machine run-queue depth: the most active instances
     * one machine may host (running plus queued behind its cores).
     * Arrivals that find every machine at the bound are shed, not
     * queued without limit. 0 (the default) keeps the historical
     * unbounded behaviour.
     */
    std::size_t queue_depth = 0;
    /** Admission policy; null means blind queue-depth shedding. */
    AdmissionFactory admission;
    /**
     * Calibrated response model handed to the admission policy for
     * completion-time prediction; may be null (QueueDepthAdmission
     * never reads it). Must outlive the scheduler when set.
     */
    const core::ResponseModel *model = nullptr;
};

/** One admitted job: its host and the policy's latency prediction. */
struct Admission
{
    std::size_t machine = 0;
    double predicted_s = 0.0; //!< 0 = the policy made no prediction.
};

/**
 * Incremental job admission and placement against one cluster's
 * dynamic state. The cluster must outlive the scheduler.
 */
class Scheduler
{
  public:
    /** @param policy Null means least-loaded placement. */
    explicit Scheduler(sim::Cluster &cluster,
                       PlacementFactory policy = nullptr);

    Scheduler(sim::Cluster &cluster, SchedulerOptions options);

    /**
     * Offer one arriving job to the admission policy; returns the
     * admission (host plus prediction) or std::nullopt when the policy
     * shed the job (the shed counters increment, attributed to the
     * placement pick and the job's priority class).
     */
    std::optional<Admission> tryAdmit(const OfferedJob &job);

    /**
     * Legacy count-based admission: one metadata-free job (round-robin
     * tenant, class 0, no deadline); returns the hosting machine.
     * Under the default QueueDepthAdmission this sheds exactly when
     * every machine is at the queue-depth bound, as it always has.
     */
    std::optional<std::size_t> tryAdmit();

    /**
     * Unbounded admit (pre-admission-control API): always places.
     * Throws std::logic_error when the admission policy would have
     * shed the job — callers that can shed must use tryAdmit().
     */
    std::size_t admit();

    /** Record completion of a job hosted on machine @p machine. */
    void release(std::size_t machine);

    /**
     * Feed one arbitration round to the admission policy and retain
     * the decision as lease context for subsequent tryAdmit calls.
     * Call serially, in virtual-time order.
     */
    void noteArbitration(const ArbitrationDecision &decision);

    /**
     * Feed one completed job's observed-vs-predicted latency to the
     * admission policy's margin feedback. Call serially, in
     * virtual-time order.
     */
    void noteCompletion(double observed_s, double predicted_s);

    /** Jobs shed by admission control so far. */
    std::size_t shedCount() const { return shed_; }

    /**
     * Per-machine shed attribution: each shed job is charged to the
     * machine the placement policy picked for it (the host it would
     * have run on had there been room). The counts sum to shedCount(),
     * so overload reports can say *where* demand was turned away, not
     * just how much.
     */
    const std::vector<std::size_t> &shedByMachine() const
    {
        return shed_by_machine_;
    }

    /**
     * Per-priority-class shed counts, indexed by OfferedJob::job_class
     * (grown on demand; sums to shedCount()). Class 0 is the highest
     * priority, so a healthy SLO-aware fleet sheds from the tail of
     * this vector first.
     */
    const std::vector<std::size_t> &shedByClass() const
    {
        return shed_by_class_;
    }

    /** The placement policy in use. */
    const PlacementPolicy &policy() const { return *policy_; }

    /**
     * The full verdict behind the most recent tryAdmit()/admit() —
     * pricing (prediction, margin, class factor) and, for sheds, the
     * attributed cause. For decision tracing; valid until the next
     * admission call on this scheduler.
     */
    const AdmissionVerdict &lastVerdict() const { return last_verdict_; }

    /** The admission policy in use. */
    const AdmissionPolicy &admissionPolicy() const { return *admission_; }

    /** The queue-depth bound (0 = unbounded). */
    std::size_t queueDepth() const { return options_.queue_depth; }

    const sim::Cluster &cluster() const { return *cluster_; }

  private:
    AdmissionVerdict decideWith(const OfferedJob &job) const;

    sim::Cluster *cluster_;
    SchedulerOptions options_;
    std::unique_ptr<PlacementPolicy> policy_;
    std::unique_ptr<AdmissionPolicy> admission_;
    ArbitrationDecision last_decision_;
    bool have_decision_ = false;
    AdmissionVerdict last_verdict_;
    std::size_t shed_ = 0;
    std::vector<std::size_t> shed_by_machine_;
    std::vector<std::size_t> shed_by_class_;
};

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_SCHEDULER_H
