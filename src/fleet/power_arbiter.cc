#include "fleet/power_arbiter.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace powerdial::fleet {

namespace {

/** Largest duty-cycle pause ratio the arbiter will impose. */
constexpr double kMaxPauseRatio = 10.0;

} // namespace

const char *
arbiterPolicyName(ArbiterPolicy policy)
{
    switch (policy) {
    case ArbiterPolicy::Uniform:
        return "uniform";
    case ArbiterPolicy::UtilizationProportional:
        return "util-proportional";
    case ArbiterPolicy::QosFeedback:
        return "qos-feedback";
    }
    return "unknown";
}

PowerArbiter::PowerArbiter(const ArbiterOptions &options)
    : options_(options)
{
    if (options_.feedback_gain < 0.0 || options_.feedback_gain > 1.0)
        throw std::invalid_argument(
            "PowerArbiter: feedback gain must be in [0, 1]");
}

std::size_t
PowerArbiter::pstateCapFor(const sim::Machine &machine,
                           double budget_watts, double utilization)
{
    const auto &model = machine.powerModel();
    const std::size_t states = machine.scale().states();
    for (std::size_t s = 0; s < states; ++s) {
        const double watts =
            model.watts(machine.scale().frequencyHz(s), utilization);
        if (watts <= budget_watts)
            return s;
    }
    return states - 1;
}

std::vector<double>
PowerArbiter::splitBudget(const sim::Cluster &cluster,
                          const std::vector<double> &qos_loss) const
{
    const std::size_t n = cluster.size();
    const double cap = options_.cluster_cap_watts;
    std::vector<double> budgets(n, cap / static_cast<double>(n));
    if (options_.policy == ArbiterPolicy::Uniform)
        return budgets;
    if (cluster.heterogeneous())
        return splitBudgetHeterogeneous(cluster, qos_loss);

    // Both informed policies start from an idle floor for every
    // machine (idle machines are powered on, not off) and split the
    // remaining headroom by weight. If the cap cannot even cover the
    // idle floors there is no headroom to steer; fall back to uniform.
    const double idle =
        cluster.machine(0).powerModel().idleWatts();
    const double headroom = cap - idle * static_cast<double>(n);
    if (headroom <= 0.0)
        return budgets;

    std::vector<double> weights(n, 0.0);
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        weights[i] = static_cast<double>(cluster.activeOn(i));
        weight_sum += weights[i];
    }
    if (weight_sum == 0.0) {
        std::fill(weights.begin(), weights.end(), 1.0);
        weight_sum = static_cast<double>(n);
    }

    if (options_.policy == ArbiterPolicy::QosFeedback &&
        qos_loss.size() == n) {
        double mean = 0.0;
        for (const double q : qos_loss)
            mean += q;
        mean /= static_cast<double>(n);
        if (mean > 0.0) {
            // Shift weight toward machines whose tenants lost more
            // QoS than the fleet average last epoch. The clamp keeps
            // one epoch's error from starving anyone outright, and —
            // because it keeps every scale positive — preserves
            // weight_sum > 0.
            weight_sum = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double error = (qos_loss[i] - mean) / mean;
                const double scale = std::clamp(
                    1.0 + options_.feedback_gain * error, 0.1, 10.0);
                weights[i] *= scale;
                weight_sum += weights[i];
            }
        }
    }

    for (std::size_t i = 0; i < n; ++i)
        budgets[i] = idle + headroom * weights[i] / weight_sum;
    return budgets;
}

std::vector<double>
PowerArbiter::splitBudgetHeterogeneous(
    const sim::Cluster &cluster,
    const std::vector<double> &qos_loss) const
{
    // The mixed-fleet generalisation of the informed split above: the
    // idle floor and the weight are per-class. Every machine gets its
    // own class's idle draw as a floor; the remaining headroom is
    // split by active instances scaled by the class's dynamic range
    // (peak - idle), so one active instance on a big machine commands
    // more of the cap than one on a low-power node — proportional to
    // the watts that instance can actually turn into speed. Kept as a
    // separate function (not a parameterised merge) so homogeneous
    // fleets keep the legacy arithmetic and its exact rounding.
    const std::size_t n = cluster.size();
    const double cap = options_.cluster_cap_watts;
    std::vector<double> budgets(n, cap / static_cast<double>(n));

    std::vector<double> floors(n, 0.0);
    double floor_sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        floors[i] = cluster.machine(i).powerModel().idleWatts();
        floor_sum += floors[i];
    }
    const double headroom = cap - floor_sum;
    if (headroom <= 0.0)
        return budgets;

    std::vector<double> weights(n, 0.0);
    double weight_sum = 0.0;
    bool any_active = false;
    for (std::size_t i = 0; i < n; ++i)
        any_active = any_active || cluster.activeOn(i) > 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double range =
            cluster.machine(i).powerModel().peakWatts() - floors[i];
        weights[i] = any_active
            ? static_cast<double>(cluster.activeOn(i)) * range
            : range;
        weight_sum += weights[i];
    }
    if (weight_sum <= 0.0)
        return budgets;

    if (options_.policy == ArbiterPolicy::QosFeedback &&
        qos_loss.size() == n) {
        double mean = 0.0;
        for (const double q : qos_loss)
            mean += q;
        mean /= static_cast<double>(n);
        if (mean > 0.0) {
            weight_sum = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double error = (qos_loss[i] - mean) / mean;
                const double scale = std::clamp(
                    1.0 + options_.feedback_gain * error, 0.1, 10.0);
                weights[i] *= scale;
                weight_sum += weights[i];
            }
        }
    }

    for (std::size_t i = 0; i < n; ++i)
        budgets[i] = floors[i] + headroom * weights[i] / weight_sum;
    return budgets;
}

ArbitrationDecision
PowerArbiter::arbitrate(sim::Cluster &cluster,
                        const std::vector<double> &qos_loss)
{
    const std::size_t n = cluster.size();
    ArbitrationDecision decision;
    decision.pstate_cap.assign(n, 0);
    decision.pause_ratio.assign(n, 0.0);

    if (options_.cluster_cap_watts <= 0.0) {
        // Uncapped: every machine runs at full frequency.
        decision.budget_watts.assign(
            n, std::numeric_limits<double>::infinity());
        for (std::size_t i = 0; i < n; ++i) {
            cluster.machine(i).setPStateCap(0);
            cluster.machine(i).setPState(0);
        }
        return decision;
    }

    decision.budget_watts = splitBudget(cluster, qos_loss);
    for (std::size_t i = 0; i < n; ++i) {
        sim::Machine &machine = cluster.machine(i);
        const double budget = decision.budget_watts[i];
        const double util =
            cluster.loadOf(i, cluster.activeOn(i)).utilization;
        const std::size_t cap = pstateCapFor(machine, budget, util);
        machine.setPStateCap(cap);
        machine.setPState(cap); // Run as fast as the cap allows.
        decision.pstate_cap[i] = cap;

        // Even the slowest state may overshoot a tight budget; meet
        // it on average by duty-cycling the machine's tenants between
        // busy and idle (the session gate inserts the pauses).
        const double busy_watts =
            machine.powerModel().watts(machine.frequencyHz(), util);
        if (busy_watts > budget) {
            const double idle_watts =
                machine.powerModel().idleWatts();
            const double ratio = budget > idle_watts
                ? (busy_watts - budget) / (budget - idle_watts)
                : kMaxPauseRatio;
            decision.pause_ratio[i] =
                std::clamp(ratio, 0.0, kMaxPauseRatio);
        }
    }
    return decision;
}

} // namespace powerdial::fleet
