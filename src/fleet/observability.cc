#include "fleet/observability.h"

#include <string>

namespace powerdial::fleet {

namespace {

obs::TraceRecord
fleetRecord(double now_s, obs::TraceKind kind, obs::Severity severity)
{
    obs::TraceRecord record;
    record.time_s = now_s;
    record.kind = kind;
    record.severity = severity;
    return record;
}

} // namespace

void
FleetTracer::placement(std::size_t offer,
                       const std::vector<double> &costs)
{
    if (sink_ == nullptr ||
        !sink_->wants(obs::kCatPlacement, obs::Severity::Info))
        return;
    for (std::size_t machine = 0; machine < costs.size(); ++machine) {
        obs::TraceRecord record = fleetRecord(
            now_s_, obs::TraceKind::Placement, obs::Severity::Info);
        record.offer = offer;
        record.machine = machine;
        record.cost = costs[machine];
        sink_->emitFleet(record);
    }
}

void
FleetTracer::admit(std::size_t offer, const workload::OfferedJob &job,
                   const AdmissionVerdict &verdict, std::size_t job_id)
{
    if (sink_ == nullptr ||
        !sink_->wants(obs::kCatAdmission, obs::Severity::Info))
        return;
    obs::TraceRecord record = fleetRecord(
        now_s_, obs::TraceKind::Admit, obs::Severity::Info);
    record.job = job_id;
    record.offer = offer;
    record.tenant = job.tenant; // kRoundRobinTenant renders as absent.
    record.machine = verdict.machine.value_or(obs::kNoIndex);
    record.job_class = job.job_class;
    record.predicted_s = verdict.predicted_s;
    record.deadline_s = job.deadline_s;
    record.margin = verdict.margin;
    record.class_factor = verdict.class_factor;
    sink_->emitFleet(record);
}

void
FleetTracer::shed(std::size_t offer, const workload::OfferedJob &job,
                  const AdmissionVerdict &verdict)
{
    if (sink_ == nullptr ||
        !sink_->wants(obs::kCatAdmission, obs::Severity::Warn))
        return;
    obs::TraceRecord record = fleetRecord(
        now_s_, obs::TraceKind::Shed, obs::Severity::Warn);
    record.offer = offer;
    record.tenant = job.tenant;
    record.machine = verdict.policy_pick; // Where the shed is charged.
    record.job_class = job.job_class;
    record.predicted_s = verdict.predicted_s;
    record.deadline_s = job.deadline_s;
    record.margin = verdict.margin;
    record.class_factor = verdict.class_factor;
    record.cause = verdict.shed_cause;
    sink_->emitFleet(record);
}

void
FleetTracer::arbitration(std::size_t generation,
                         const ArbitrationDecision &decision)
{
    if (sink_ == nullptr ||
        !sink_->wants(obs::kCatArbitration, obs::Severity::Info))
        return;
    for (std::size_t machine = 0;
         machine < decision.budget_watts.size(); ++machine) {
        obs::TraceRecord record = fleetRecord(
            now_s_, obs::TraceKind::Arbitration, obs::Severity::Info);
        record.machine = machine;
        record.generation = generation;
        record.budget_watts = decision.budget_watts[machine];
        record.pstate_cap = decision.pstate_cap[machine];
        record.pause_ratio = decision.pause_ratio[machine];
        sink_->emitFleet(record);
    }
}

void
FleetTracer::lease(std::size_t job, std::size_t tenant,
                   std::size_t machine, const ArbitrationLease &lease)
{
    if (sink_ == nullptr ||
        !sink_->wants(obs::kCatArbitration, obs::Severity::Info))
        return;
    obs::TraceRecord record = fleetRecord(
        now_s_, obs::TraceKind::Lease, obs::Severity::Info);
    record.job = job;
    record.tenant = tenant;
    record.machine = machine;
    record.generation = lease.generation;
    record.share = lease.share;
    record.pstate_cap = lease.pstate_cap;
    record.pause_ratio = lease.pause_ratio;
    sink_->emitFleet(record);
}

void
recordFleetMetrics(obs::MetricsRegistry &registry,
                   const FleetReport &report)
{
    registry
        .counter("powerdial_jobs_total",
                 "Jobs admitted and served over the serve")
        .add(static_cast<double>(report.total_jobs));
    registry
        .counter("powerdial_jobs_drained_total",
                 "Jobs still in flight at the horizon, finished in "
                 "the drain")
        .add(static_cast<double>(report.drained_jobs));
    registry
        .counter("powerdial_jobs_shed_total",
                 "Jobs turned away by admission control")
        .add(static_cast<double>(report.total_shed));
    for (std::size_t c = 0; c < report.shed_by_class.size(); ++c)
        registry
            .counter("powerdial_jobs_shed_by_class_total",
                     "Jobs shed per priority class (0 = highest)",
                     "job_class=\"" + std::to_string(c) + "\"")
            .add(static_cast<double>(report.shed_by_class[c]));

    obs::Histogram &latency = registry.histogram(
        "powerdial_job_latency_seconds",
        "Completion latency of served jobs",
        obs::HistogramSpec{1e-3, 3, 6});
    obs::Histogram &qos = registry.histogram(
        "powerdial_job_qos_loss",
        "Work-weighted calibrated QoS loss of served jobs",
        obs::HistogramSpec{1e-4, 3, 4});
    obs::Counter &service = registry.counter(
        "powerdial_latency_breakdown_seconds_total",
        "Summed completion latency by component",
        "component=\"service\"");
    obs::Counter &queue_share = registry.counter(
        "powerdial_latency_breakdown_seconds_total",
        "Summed completion latency by component",
        "component=\"queue_share\"");
    obs::Counter &class_deficit = registry.counter(
        "powerdial_latency_breakdown_seconds_total",
        "Summed completion latency by component",
        "component=\"class_deficit\"");
    obs::Counter &pause = registry.counter(
        "powerdial_latency_breakdown_seconds_total",
        "Summed completion latency by component",
        "component=\"pause\"");
    for (const JobRecord &job : report.jobs) {
        latency.observe(job.latency_s);
        qos.observe(job.qos_loss);
        service.add(job.service_s);
        queue_share.add(job.queue_share_s);
        class_deficit.add(job.class_deficit_s);
        pause.add(job.pause_s);
    }

    obs::Histogram &watts = registry.histogram(
        "powerdial_epoch_watts", "Cluster power per epoch sample",
        obs::HistogramSpec{1.0, 3, 5});
    obs::Histogram &depth = registry.histogram(
        "powerdial_epoch_active_jobs",
        "In-flight jobs (cluster queue depth) per epoch sample",
        obs::HistogramSpec{1.0, 3, 4});
    for (const EpochStats &epoch : report.epochs) {
        watts.observe(epoch.watts);
        depth.observe(static_cast<double>(epoch.active));
    }
}

} // namespace powerdial::fleet
