#include "fleet/event_engine.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/fanout.h"
#include "fleet/event_queue.h"
#include "fleet/tenant.h"
#include "sim/virtual_clock.h"

namespace powerdial::fleet {

namespace {

using detail::Tenant;

/**
 * The typed events the engine schedules. Job completions are a hybrid:
 * their *time* cannot be known in advance (only advancing a session
 * discovers it finished), so completions are detected right after each
 * tenant advancement and a Completion event at the current time is the
 * trigger that processes them — unless an earlier same-time handler
 * (an arrival, a sample) already swept them, because releases must
 * settle before admissions and accounting at the same timestamp.
 */
struct Event
{
    enum class Kind {
        EpochTop,   //!< Compat: release + admit + arbitrate, epoch e.
        Sample,     //!< Stats-row close (epoch e / window index).
        Arrivals,   //!< Event mode: the trace offers jobs at epoch e.
        Quantum,    //!< Event mode: beat-quantum expiry.
        Completion, //!< Event mode: completions discovered at now.
        Arbitrate,  //!< Event mode: coalesced lease rewrite at now.
    };
    Kind kind = Kind::Quantum;
    std::size_t index = 0;
};

/**
 * One serve() worth of discrete-event state. Construction mirrors the
 * epoch loop exactly (same cluster, scheduler, arbiter, fan-out
 * engine, and metrics hub); the two run modes differ only in which
 * events they schedule and how tenant slice deadlines are set.
 */
class EventServe
{
  public:
    EventServe(const core::App &app, const core::KnobTable &table,
               const core::ResponseModel &model,
               const ServerOptions &options,
               const std::vector<std::vector<workload::OfferedJob>>
                   &offers)
        : app_(app), table_(table), model_(model), options_(options),
          offers_(offers),
          cluster_(detail::makeCluster(options)),
          scheduler_(cluster_,
                     SchedulerOptions{options.placement,
                                      options.queue_depth,
                                      options.admission, &model}),
          arbiter_(options.arbiter), engine_(options.threads),
          hub_(engine_.workers()), tracer_(options.trace),
          qos_feedback_(cluster_.size(), 0.0)
    {
        epoch_s_ = options_.epoch_seconds > 0.0
            ? options_.epoch_seconds
            : model_.baselineSeconds();
        if (epoch_s_ <= 0.0)
            throw std::invalid_argument(
                "Server: epoch duration must be > 0");
    }

    FleetReport
    run()
    {
        if (options_.trace != nullptr)
            options_.trace->beginServe(engine_.workers());
        if (options_.event.epoch_compat)
            runCompat();
        else
            runEvent();

        // Past the horizon: in-flight tenants run to completion under
        // their final lease terms. Everything still held here was
        // never released inside the horizon, so
        //   total_jobs == sum(completed) + drained_jobs.
        report_.drained_jobs = active_.size();
        for (auto &tenant : active_)
            tenant->slice_deadline_s =
                std::numeric_limits<double>::infinity();
        runSlices();
        active_.clear();

        report_.total_jobs = next_job_;
        report_.shed_by_machine = scheduler_.shedByMachine();
        report_.shed_by_class = scheduler_.shedByClass();
        detail::finalizeReport(report_, hub_.drain(), cluster_);
        return std::move(report_);
    }

  private:
    // ------------------------------------------------------------------
    // Epoch-compat mode: the event machinery replaying the legacy
    // schedule. Per epoch e the setup pushes EpochTop(e) at t(e) and
    // Sample(e) at t(e+1); push order makes Sample(e) dispatch before
    // EpochTop(e+1) at their shared timestamp, so accounting for epoch
    // e lands before epoch e+1 releases finished tenants — exactly the
    // legacy statement order. The clock move from t(e) to t(e+1) runs
    // the epoch's tenant slices in between.
    // ------------------------------------------------------------------
    void
    runCompat()
    {
        report_.epochs.reserve(offers_.size());
        for (std::size_t e = 0; e < offers_.size(); ++e) {
            queue_.push(static_cast<double>(e) * epoch_s_,
                        Event{Event::Kind::EpochTop, e});
            queue_.push(static_cast<double>(e + 1) * epoch_s_,
                        Event{Event::Kind::Sample, e});
        }
        while (!queue_.empty()) {
            const auto entry = queue_.pop();
            if (clock_.advanceTo(entry.time_s))
                runSlices(); // To the deadlines EpochTop installed.
            switch (entry.payload.kind) {
            case Event::Kind::EpochTop:
                epochTop(entry.payload.index);
                break;
            case Event::Kind::Sample:
                sampleCompat();
                break;
            default:
                throw std::logic_error(
                    "event engine: unexpected event in compat mode");
            }
        }
    }

    /** Legacy top-of-epoch: release, admit, arbitrate, write leases. */
    void
    epochTop(std::size_t e)
    {
        pending_ = EpochStats{};
        pending_.epoch = e;

        // Tenants that completed during the previous epoch's slice
        // release their machine slot now, feeding their observed-vs-
        // predicted latency to the admission policy.
        std::size_t kept = 0;
        for (auto &tenant : active_) {
            if (tenant->done) {
                const JobRecord &record = tenant->probe->record();
                scheduler_.noteCompletion(record.latency_s,
                                          record.predicted_s);
                scheduler_.release(tenant->machine_index);
                ++pending_.completed;
            } else {
                active_[kept++] = std::move(tenant);
            }
        }
        active_.resize(kept);

        admit(offers_[e], e, pending_);

        last_decision_ = arbiter_.arbitrate(cluster_, qos_feedback_);
        scheduler_.noteArbitration(last_decision_);
        const std::size_t generation = e + 1;
        pending_.lease_generation = generation;
        if (options_.arbitration_probe)
            options_.arbitration_probe(ArbitrationSample{
                static_cast<double>(e) * epoch_s_, generation,
                last_decision_});
        tracer_.arbitration(generation, last_decision_);
        for (auto &tenant : active_) {
            detail::writeLease(cluster_, *tenant, generation, e,
                               last_decision_, tracer_);
            // The legacy float expression, tenant-local: NOT
            // t(e+1) - arrival_time, which rounds differently.
            tenant->slice_deadline_s =
                static_cast<double>(e - tenant->arrival_epoch + 1) *
                epoch_s_;
        }
    }

    /** Legacy end-of-epoch accounting over the still-held tenants. */
    void
    sampleCompat()
    {
        std::vector<double> machine_qos(cluster_.size(), 0.0);
        std::vector<std::size_t> machine_jobs(cluster_.size(), 0);
        double qos_sum = 0.0;
        std::size_t finished = 0;
        for (const auto &tenant : active_) {
            const std::size_t beats = tenant->probe->record().beats;
            pending_.fleet_rate +=
                static_cast<double>(beats - tenant->beats_reported) /
                epoch_s_;
            tenant->beats_reported = beats;
            if (tenant->done) {
                const JobRecord &record = tenant->probe->record();
                machine_qos[tenant->machine_index] += record.qos_loss;
                ++machine_jobs[tenant->machine_index];
                qos_sum += record.qos_loss;
                ++finished;
            }
        }
        for (std::size_t m = 0; m < cluster_.size(); ++m)
            if (machine_jobs[m] > 0)
                qos_feedback_[m] = machine_qos[m] /
                    static_cast<double>(machine_jobs[m]);

        pending_.active = cluster_.totalActive();
        pending_.watts = cluster_.dynamicWatts();
        pending_.mean_qos_loss = finished == 0
            ? 0.0
            : qos_sum / static_cast<double>(finished);
        pending_.max_pause_ratio = *std::max_element(
            last_decision_.pause_ratio.begin(),
            last_decision_.pause_ratio.end());
        report_.epochs.push_back(pending_);
    }

    // ------------------------------------------------------------------
    // Event mode: arbitration fires on admissions and completions (one
    // coalesced Arbitrate event per timestamp), a Quantum chain bounds
    // how long a completion can go undiscovered while anything is
    // active, and Sample events close one EpochStats row per
    // sample_stride epochs. Epochs with no offered jobs schedule
    // nothing — an idle fleet costs no events at all.
    // ------------------------------------------------------------------
    void
    runEvent()
    {
        const std::size_t n = offers_.size();
        horizon_s_ = static_cast<double>(n) * epoch_s_;
        quantum_s_ = options_.event.quantum_seconds > 0.0
            ? options_.event.quantum_seconds
            : epoch_s_;
        const std::size_t stride = options_.event.sample_stride;

        for (std::size_t e = 0; e < n; ++e)
            if (!offers_[e].empty())
                queue_.push(static_cast<double>(e) * epoch_s_,
                            Event{Event::Kind::Arrivals, e});
        for (std::size_t w = 0; w * stride < n; ++w) {
            const std::size_t end = std::min((w + 1) * stride, n);
            queue_.push(static_cast<double>(end) * epoch_s_,
                        Event{Event::Kind::Sample, w});
        }
        report_.epochs.reserve((n + stride - 1) / stride);
        window_ = EpochStats{};

        while (!queue_.empty()) {
            const auto entry = queue_.pop();
            if (clock_.advanceTo(entry.time_s)) {
                advanceTenantsTo(clock_.now());
                noteCompletions();
            }
            switch (entry.payload.kind) {
            case Event::Kind::Arrivals:
                // Releases settle before admissions at equal times,
                // like the legacy epoch top.
                processCompletions();
                arrivalsAt(entry.payload.index);
                break;
            case Event::Kind::Quantum:
                quantum_pending_ = false;
                processCompletions();
                if (!active_.empty())
                    scheduleQuantum();
                break;
            case Event::Kind::Completion:
                completion_pending_ = false;
                processCompletions();
                break;
            case Event::Kind::Arbitrate:
                arbitrate_pending_ = false;
                processCompletions();
                arbitrateNow();
                break;
            case Event::Kind::Sample:
                processCompletions();
                sampleWindow(entry.payload.index);
                break;
            default:
                throw std::logic_error(
                    "event engine: unexpected event in event mode");
            }
        }
    }

    /** The trace offers offers_[e] at t(e). */
    void
    arrivalsAt(std::size_t e)
    {
        // makeTenant stamps arrival_time_s = t(e), which is bitwise
        // clock_.now() here (advanceTo installs the event time
        // exactly).
        const std::size_t admitted = admit(offers_[e], e, window_);
        if (admitted == 0)
            return;
        requestArbitration();
        scheduleQuantum();
    }

    /**
     * Sweep tenants that finished during the latest advancement:
     * count them into the open stats window, feed their QoS loss back
     * to the arbiter, release their machine slots, and destroy them
     * (their records are already committed in the hub) — then ask for
     * a re-price, since occupancy changed. Idempotent; any same-time
     * handler may call it before the Completion event pops.
     */
    void
    processCompletions()
    {
        std::vector<double> machine_qos(cluster_.size(), 0.0);
        std::vector<std::size_t> machine_jobs(cluster_.size(), 0);
        std::size_t kept = 0;
        for (auto &tenant : active_) {
            if (tenant->done) {
                const JobRecord &record = tenant->probe->record();
                ++window_.completed;
                window_beats_ += record.beats - tenant->beats_reported;
                machine_qos[tenant->machine_index] += record.qos_loss;
                ++machine_jobs[tenant->machine_index];
                window_qos_sum_ += record.qos_loss;
                ++window_finished_;
                scheduler_.noteCompletion(record.latency_s,
                                          record.predicted_s);
                scheduler_.release(tenant->machine_index);
                tenant.reset();
            } else {
                active_[kept++] = std::move(tenant);
            }
        }
        if (kept == active_.size())
            return;
        active_.resize(kept);
        for (std::size_t m = 0; m < cluster_.size(); ++m)
            if (machine_jobs[m] > 0)
                qos_feedback_[m] = machine_qos[m] /
                    static_cast<double>(machine_jobs[m]);
        requestArbitration();
    }

    /** One coalesced lease rewrite at the current virtual time. */
    void
    arbitrateNow()
    {
        last_decision_ = arbiter_.arbitrate(cluster_, qos_feedback_);
        scheduler_.noteArbitration(last_decision_);
        ++generation_;
        if (options_.arbitration_probe)
            options_.arbitration_probe(ArbitrationSample{
                clock_.now(), generation_, last_decision_});
        tracer_.at(clock_.now());
        tracer_.arbitration(generation_, last_decision_);
        const std::size_t epoch = epochOf(clock_.now());
        for (auto &tenant : active_)
            detail::writeLease(cluster_, *tenant, generation_, epoch,
                               last_decision_, tracer_);
    }

    /** Close stats window @p w covering [w*stride, w*stride+stride). */
    void
    sampleWindow(std::size_t w)
    {
        const std::size_t stride = options_.event.sample_stride;
        const std::size_t start = w * stride;
        const std::size_t end =
            std::min(start + stride, offers_.size());

        for (const auto &tenant : active_) {
            const std::size_t beats = tenant->probe->record().beats;
            window_beats_ += beats - tenant->beats_reported;
            tenant->beats_reported = beats;
        }

        EpochStats row = window_;
        row.epoch = start;
        row.lease_generation = generation_;
        row.fleet_rate = static_cast<double>(window_beats_) /
            (static_cast<double>(end - start) * epoch_s_);
        row.active = cluster_.totalActive();
        row.watts = cluster_.dynamicWatts();
        row.mean_qos_loss = window_finished_ == 0
            ? 0.0
            : window_qos_sum_ /
                static_cast<double>(window_finished_);
        row.max_pause_ratio = last_decision_.pause_ratio.empty()
            ? 0.0
            : *std::max_element(last_decision_.pause_ratio.begin(),
                                last_decision_.pause_ratio.end());
        report_.epochs.push_back(row);

        window_ = EpochStats{};
        window_beats_ = 0;
        window_qos_sum_ = 0.0;
        window_finished_ = 0;
    }

    void
    requestArbitration()
    {
        if (arbitrate_pending_)
            return;
        queue_.push(clock_.now(), Event{Event::Kind::Arbitrate, 0});
        arbitrate_pending_ = true;
    }

    void
    scheduleQuantum()
    {
        if (quantum_pending_)
            return;
        const double next = clock_.now() + quantum_s_;
        if (next > horizon_s_)
            return; // The final Sample already lands at the horizon.
        queue_.push(next, Event{Event::Kind::Quantum, 0});
        quantum_pending_ = true;
    }

    /** Flag newly-discovered completions with a same-time trigger. */
    void
    noteCompletions()
    {
        if (completion_pending_)
            return;
        for (const auto &tenant : active_) {
            if (tenant->done) {
                queue_.push(clock_.now(),
                            Event{Event::Kind::Completion, 0});
                completion_pending_ = true;
                return;
            }
        }
    }

    /** Set every tenant's slice deadline to global time @p t. */
    void
    advanceTenantsTo(double t)
    {
        for (auto &tenant : active_)
            tenant->slice_deadline_s = t - tenant->arrival_time_s;
        runSlices();
    }

    std::size_t
    epochOf(double t) const
    {
        const auto e = static_cast<std::size_t>(t / epoch_s_);
        return offers_.empty()
            ? e
            : std::min(e, offers_.size() - 1);
    }

    // ------------------------------------------------------------------
    // Shared with both modes (and bit-identical to the epoch loop).
    // ------------------------------------------------------------------

    /**
     * Serial admission of @p offered jobs arriving at epoch @p e, with
     * shed accounting into @p stats, followed by tenant construction
     * through the shared clone/gate recipe.
     * @return Jobs actually admitted (appended to active_, in order).
     */
    std::size_t
    admit(const std::vector<workload::OfferedJob> &offered,
          std::size_t e, EpochStats &stats)
    {
        tracer_.at(static_cast<double>(e) * epoch_s_);
        const std::size_t shed_before = scheduler_.shedCount();
        const auto placements = detail::admitOffers(
            scheduler_, offered, next_job_, next_offer_, tracer_);
        stats.arrivals += placements.size();
        const std::size_t shed = scheduler_.shedCount() - shed_before;
        stats.shed += shed;
        report_.total_shed += shed;

        auto bound = core::FanoutEngine::cloneBound(
            app_, table_, placements.size());
        for (std::size_t i = 0; i < placements.size(); ++i) {
            active_.push_back(detail::makeTenant(
                options_, model_, hub_,
                cluster_.configOf(placements[i].first.machine),
                next_job_, placements[i].first.machine, e,
                static_cast<double>(e) * epoch_s_,
                *placements[i].second, placements[i].first.predicted_s,
                std::move(bound.apps[i]), std::move(bound.tables[i])));
            ++next_job_;
        }
        return placements.size();
    }

    /**
     * Advance every held tenant to its slice deadline through the
     * fan-out engine's fixed-order merge — the only parallel section;
     * the slice that completes a run commits its record on the worker
     * actually running it.
     */
    void
    runSlices()
    {
        engine_.run(active_.size(),
                    [&](std::size_t i, std::size_t worker) {
                        Tenant &t = *active_[i];
                        if (t.done)
                            return; // Awaiting release.
                        if (t.trace)
                            t.trace->beginSlice(worker);
                        if (!t.started) {
                            t.session->observe(*t.probe);
                            if (t.trace)
                                t.session->observe(*t.trace);
                            t.session->start(t.input, t.machine);
                            t.started = true;
                        }
                        const auto result =
                            t.session->advanceUntil(t.slice_deadline_s);
                        if (result.has_value()) {
                            t.done = true;
                            t.probe->finishOn(worker, t.machine);
                        }
                    });
    }

    const core::App &app_;
    const core::KnobTable &table_;
    const core::ResponseModel &model_;
    const ServerOptions &options_;
    const std::vector<std::vector<workload::OfferedJob>> &offers_;

    sim::Cluster cluster_;
    Scheduler scheduler_;
    PowerArbiter arbiter_;
    core::FanoutEngine engine_;
    MetricsHub hub_;
    FleetTracer tracer_;

    sim::VirtualClock clock_;
    EventQueue<Event> queue_;

    std::vector<double> qos_feedback_;
    std::vector<std::unique_ptr<Tenant>> active_; // In job order.
    FleetReport report_;
    std::size_t next_job_ = 0;
    std::size_t next_offer_ = 0;
    double epoch_s_ = 0.0;

    // Compat-mode state.
    EpochStats pending_{};
    ArbitrationDecision last_decision_{};

    // Event-mode state.
    double horizon_s_ = 0.0;
    double quantum_s_ = 0.0;
    std::size_t generation_ = 0;
    bool quantum_pending_ = false;
    bool arbitrate_pending_ = false;
    bool completion_pending_ = false;
    EpochStats window_{};
    std::size_t window_beats_ = 0;
    double window_qos_sum_ = 0.0;
    std::size_t window_finished_ = 0;
};

} // namespace

FleetReport
serveEventDriven(const core::App &app, const core::KnobTable &table,
                 const core::ResponseModel &model,
                 const ServerOptions &options,
                 const std::vector<std::vector<workload::OfferedJob>>
                     &offers)
{
    return EventServe(app, table, model, options, offers).run();
}

} // namespace powerdial::fleet
