/**
 * @file
 * The fleet server: many PowerDial-controlled sessions as tenants of
 * a simulated cluster.
 *
 * This is the datacenter story of the paper (sections 3 and 5.5)
 * closed into one loop. An open-loop arrival process offers jobs each
 * epoch; the Scheduler places them on machines (dynamic occupancy, not
 * the analytic balance); the PowerArbiter splits the cluster-wide
 * power cap into per-machine DVFS caps (and, under very tight budgets,
 * duty-cycle pauses delivered through the session beat gate); every
 * admitted job runs a full closed-loop core::Session on a private
 * App::clone whose machine models its host's core share and frequency
 * cap; and the MetricsHub fans all tenants' observer events into
 * per-worker shards, feeding per-machine QoS loss back to the arbiter
 * for the next epoch.
 *
 *   arrivals ─▶ Scheduler ─▶ persistent tenant Sessions ─▶ MetricsHub
 *                  ▲               ▲ lease re-read            │
 *                  │ shed /        │ (per-beat gate)          │ per-
 *                  │ release   ArbitrationLease               │ machine
 *                  │               ▲ new terms each epoch     │ QoS
 *                  └────────── PowerArbiter ◀─────────────────┘
 *
 * Tenants are *persistent across epochs*: a job admitted at epoch e
 * holds one core::Session that the server advances one epoch slice at
 * a time (Session::advanceUntil), so a job spanning several epochs is
 * in flight while later arbitration rounds run. Each tenant carries a
 * mutable ArbitrationLease; the arbiter writes new terms (share,
 * P-state cap, duty-cycle pause) into the lease at every epoch
 * boundary and the tenant's beat gate re-reads it, applying changed
 * terms within one beat — mid-run, without the session ever being
 * restarted. Admission control bounds each machine's run queue
 * (ServerOptions::queue_depth); arrivals past the bound are shed and
 * counted.
 *
 * Determinism follows the repo's replay discipline: all placement and
 * arbitration decisions are serial; only the mutually independent
 * tenant epoch slices fan out through core::FanoutEngine, and their
 * records merge in job order — the full report is bit-identical at
 * any thread count (tests/test_fleet.cc pins this).
 */
#ifndef POWERDIAL_FLEET_SERVER_H
#define POWERDIAL_FLEET_SERVER_H

#include <cstddef>
#include <functional>
#include <vector>

#include "core/session.h"
#include "fleet/metrics_hub.h"
#include "fleet/power_arbiter.h"
#include "fleet/scheduler.h"
#include "sim/cluster.h"

namespace powerdial::obs {
class TraceSink;
}

namespace powerdial::fleet {

/**
 * Which engine drives the serve.
 *
 * Epoch is the legacy synchronous round loop: every epoch advances
 * every tenant one slice and runs one arbitration round, whether or
 * not anything changed. Event is the discrete-event engine
 * (src/fleet/event_engine.cc): a priority queue of typed events —
 * arrivals, beat-quantum expiries, completions, lease rewrites, trace
 * samples — ordered by (virtual time, stable sequence id), with
 * arbitration fired by state changes rather than by the epoch clock.
 * The event engine configured with EventEngineOptions::epoch_compat
 * reproduces the epoch loop's FleetReport bit for bit
 * (tests/test_fleet_event_engine.cc pins this differentially).
 */
enum class EngineMode
{
    Epoch,
    Event,
};

/** Tuning for EngineMode::Event. */
struct EventEngineOptions
{
    /**
     * Restrict the event engine to epoch-cadence triggers only: one
     * lease-rewrite and one trace-sample event per epoch, quantum
     * equal to the epoch — the discrete-event machinery replaying the
     * legacy schedule exactly. The resulting FleetReport is
     * bit-identical to EngineMode::Epoch; differential tests run both
     * and compare. Requires the defaults for the fields below.
     */
    bool epoch_compat = false;
    /**
     * Beat-quantum: the longest the engine lets virtual time run
     * between visits to an active tenant, bounding how stale a
     * completion can go unnoticed. <= 0 (default) means one epoch.
     */
    double quantum_seconds = 0.0;
    /**
     * Emit one EpochStats row per this many epochs (trace-sample
     * events). 1 = every epoch, like the legacy loop; larger strides
     * keep the report small for 10^4+-epoch scale runs. Must be >= 1.
     */
    std::size_t sample_stride = 1;
};

/**
 * One arbitration round as observed by ServerOptions::arbitration_probe:
 * when it fired (virtual seconds), the lease generation it installed,
 * and the decision's per-machine terms. The decision reference is only
 * valid during the callback.
 */
struct ArbitrationSample
{
    double time_s = 0.0;
    std::size_t generation = 0;
    const ArbitrationDecision &decision;
};

/**
 * Observer for arbitration rounds (both engines call it, in virtual-
 * time order). Tests use it to assert per-machine budgets sum to the
 * cap after *every* round and that rounds are monotone in time.
 */
using ArbitrationProbe = std::function<void(const ArbitrationSample &)>;

/**
 * The mutable, epoch-indexed contract between the arbiter and one
 * in-flight tenant. The server rewrites the terms at every epoch
 * boundary (serially, between slices); the tenant's per-beat session
 * gate re-reads them and applies any change at its next beat. The
 * generation tags every rewrite so both the gate (did I apply this
 * yet?) and the metrics pipeline (which arbitration round produced
 * this series?) can tell leases apart.
 */
struct ArbitrationLease
{
    std::size_t generation = 0; //!< 0 = no terms written yet.
    std::size_t epoch = 0;      //!< Epoch the current terms took effect.
    double share = 1.0;         //!< Core share of the hosting machine.
    double utilization = 1.0;   //!< Host utilisation for power accounting.
    std::size_t pstate_cap = 0; //!< Arbiter DVFS cap (0 = uncapped).
    double pause_ratio = 0.0;   //!< Duty-cycle idle per busy second.
};

/** Fleet composition options. */
struct ServerOptions
{
    /** Machines in the (possibly consolidated) cluster. Ignored when
     *  a catalog is set — the class mix sizes the fleet instead. */
    std::size_t machines = 1;
    /** Per-machine configuration (all identical; ignored when a
     *  catalog is set). */
    sim::Machine::Config machine{};
    /**
     * Heterogeneous fleet: when non-empty, the cluster is provisioned
     * from this catalog and class_mix (class_mix[c] machines of
     * catalog class c, class order) instead of `machines` copies of
     * `machine`. Empty (default) keeps the homogeneous path — and its
     * outputs — bit for bit.
     */
    sim::MachineCatalog catalog{};
    /** Machines per catalog class; must be parallel to the catalog
     *  (and provision >= 1 machine) when the catalog is set. */
    std::vector<std::size_t> class_mix;
    /**
     * Worker threads for tenant sessions: 1 (default) serial, 0 all
     * hardware contexts, N > 1 exactly N. The report is bit-identical
     * regardless.
     */
    std::size_t threads = 1;
    /**
     * Virtual seconds per scheduling epoch; <= 0 means the calibrated
     * baseline job duration (so an unloaded job spans ~one epoch).
     */
    double epoch_seconds = 0.0;
    /** Cluster power-cap arbitration. */
    ArbiterOptions arbiter{};
    /** Placement policy; null means least-loaded. */
    PlacementFactory placement;
    /**
     * Bounded per-machine run-queue depth (max active instances one
     * machine may host); arrivals that find every machine at the
     * bound are shed and counted. 0 = unbounded (the default).
     */
    std::size_t queue_depth = 0;
    /**
     * Admission policy (fleet/admission.h); null means the historical
     * blind queue-depth shedding. makePredictiveAdmission() sheds by
     * predicted SLO violation instead, using the server's calibrated
     * response model.
     */
    AdmissionFactory admission;
    /** Control-loop composition shared by every tenant session. */
    core::SessionOptions session{};
    /**
     * Tenant input streams: each arriving job serves the next input
     * index in this list (round-robin by job id). Empty means the
     * application's production inputs.
     */
    std::vector<std::size_t> tenants;
    /** Which engine drives serve(); see EngineMode. */
    EngineMode engine = EngineMode::Epoch;
    /** Event-engine tuning (ignored under EngineMode::Epoch). */
    EventEngineOptions event{};
    /** Optional observer invoked after every arbitration round. */
    ArbitrationProbe arbitration_probe;
    /**
     * Structured trace sink (obs/trace_sink.h); null (default) records
     * nothing and costs one branch per would-be event. Borrowed — must
     * outlive the server. Both engines call TraceSink::beginServe at
     * the top of every serve, so a sink attached across several serves
     * holds the last serve's trace.
     */
    obs::TraceSink *trace = nullptr;
};

/** Aggregate fleet state over one epoch. */
struct EpochStats
{
    std::size_t epoch = 0;
    std::size_t arrivals = 0;  //!< Jobs admitted this epoch.
    std::size_t shed = 0;      //!< Jobs shed by admission control.
    std::size_t completed = 0; //!< Jobs released this epoch.
    std::size_t active = 0;    //!< In-flight jobs after placement.
    /** Lease generation the arbiter installed for this epoch. */
    std::size_t lease_generation = 0;
    double watts = 0.0;        //!< Cluster power at the epoch's state.
    /** Heartbeats delivered during this epoch's slices per epoch
     *  second — each beat of a cross-epoch tenant counts once. */
    double fleet_rate = 0.0;
    double mean_qos_loss = 0.0;//!< Mean QoS loss of jobs finishing here.
    double max_pause_ratio = 0.0; //!< Worst arbitration duty-cycle.
};

/** Per-tenant (input stream) aggregate over a whole serve. */
struct TenantStats
{
    std::size_t tenant = 0; //!< Input index identifying the tenant.
    std::size_t jobs = 0;
    double mean_qos_loss = 0.0;
    double mean_latency_s = 0.0;
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
};

/** Per-machine serving quality over a whole serve. */
struct MachineStats
{
    std::size_t machine = 0;       //!< Machine index in the cluster.
    std::size_t machine_class = 0; //!< Catalog class of the machine.
    std::size_t jobs = 0;          //!< Jobs this machine hosted.
    std::size_t shed = 0;          //!< Sheds charged to this machine.
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
};

/** Per-priority-class serving quality over a whole serve. */
struct ClassStats
{
    std::size_t job_class = 0; //!< Priority class (0 = highest).
    std::size_t jobs = 0;      //!< Jobs of this class served.
    std::size_t shed = 0;      //!< Jobs of this class shed.
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
};

/** Everything one serve() call measured. */
struct FleetReport
{
    std::vector<EpochStats> epochs;
    std::vector<JobRecord> jobs;     //!< Sorted by job id.
    std::vector<TenantStats> tenants;//!< Sorted by tenant id.
    std::size_t total_jobs = 0;      //!< Jobs admitted (and served).
    std::size_t total_shed = 0;      //!< Jobs shed by admission control.
    /** Jobs still in flight at the horizon, finished in the drain. */
    std::size_t drained_jobs = 0;
    /** Sheds charged to the machine the placement policy picked. */
    std::vector<std::size_t> shed_by_machine;
    /** Sheds per priority class (indexed by class, grown on demand). */
    std::vector<std::size_t> shed_by_class;
    /** Per-class latency percentiles and shed counts, sorted by
     *  class. Covers every class seen in served or shed jobs. */
    std::vector<ClassStats> classes;
    /** Per-machine latency percentiles, hosted-job and shed counts —
     *  one row per cluster machine, in machine order, each tagged
     *  with its catalog class. */
    std::vector<MachineStats> machines;
    double mean_watts = 0.0;       //!< Mean of per-epoch cluster power.
    double mean_fleet_rate = 0.0;  //!< Mean of per-epoch heart rate.
    double mean_qos_loss = 0.0;    //!< Mean over all jobs.
    double p50_latency_s = 0.0;
    double p95_latency_s = 0.0;
    double p99_latency_s = 0.0;
};

/**
 * Serves an arrival trace with many concurrent controlled sessions.
 * The application, knob table, and response model must outlive the
 * server; the caller's app instance is never run (each tenant job
 * executes on a private clone).
 */
class Server
{
  public:
    Server(const core::App &app, const core::KnobTable &table,
           const core::ResponseModel &model, ServerOptions options);

    const ServerOptions &options() const { return options_; }

    /**
     * Run the fleet through @p arrivals (jobs offered per epoch, e.g.
     * from workload::makePoissonArrivals) and report the aggregate
     * series plus every job's record. Every offered job carries the
     * legacy metadata: round-robin tenant, class 0, no deadline.
     */
    FleetReport serve(const std::vector<std::size_t> &arrivals);

    /**
     * Run the fleet through a composed traffic schedule (jobs offered
     * per epoch with tenant/class/deadline metadata, e.g. from
     * workload::makeTrafficMix) — the SLO-aware serving path: the
     * admission policy sees each job's deadline class, and the report
     * carries per-class percentiles and shed counts.
     */
    FleetReport
    serve(const std::vector<std::vector<workload::OfferedJob>> &offers);

  private:
    const core::App *app_;
    const core::KnobTable *table_;
    const core::ResponseModel *model_;
    ServerOptions options_;
};

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_SERVER_H
