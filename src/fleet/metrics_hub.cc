#include "fleet/metrics_hub.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace powerdial::fleet {

void
MetricsHub::Probe::onRunStart(const core::RunStartEvent &)
{
    rate_sum_ = 0.0;
    record_.beats = 0;
    done_ = false;
}

void
MetricsHub::Probe::onBeat(const core::BeatEvent &event)
{
    rate_sum_ += event.trace.window_rate;
    ++record_.beats;
}

void
MetricsHub::Probe::onRunEnd(const core::ControlledRun &run)
{
    record_.latency_s = run.seconds;
    record_.qos_loss = run.mean_qos_loss_estimate;
    record_.service_s = run.service_s;
    record_.queue_share_s = run.queue_share_s;
    record_.class_deficit_s = run.class_deficit_s;
    record_.pause_s = run.pause_s;
    record_.mean_rate = record_.beats > 0
        ? rate_sum_ / static_cast<double>(record_.beats)
        : 0.0;
    done_ = true;
}

void
MetricsHub::Probe::finish(const sim::Machine &machine)
{
    finishOn(worker_, machine);
}

void
MetricsHub::Probe::finishOn(std::size_t worker,
                            const sim::Machine &machine)
{
    if (!done_)
        throw std::logic_error(
            "MetricsHub::Probe: finish before the run ended");
    record_.energy_j = machine.energyJoules();
    hub_->commit(worker, record_);
    done_ = false;
}

MetricsHub::MetricsHub(std::size_t workers)
    : shards_(workers == 0 ? 1 : workers),
      self_probe_(*this, 0, JobRecord{})
{
}

MetricsHub::Probe
MetricsHub::probe(std::size_t worker, const JobRecord &seed)
{
    if (worker >= shards_.size())
        throw std::out_of_range("MetricsHub: bad worker index");
    return Probe(*this, worker, seed);
}

void
MetricsHub::commit(std::size_t worker, const JobRecord &record)
{
    if (worker >= shards_.size())
        throw std::out_of_range("MetricsHub: bad commit worker index");
    shards_[worker].push_back(record);
}

std::size_t
MetricsHub::committed() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_)
        total += shard.size();
    return total;
}

std::vector<JobRecord>
MetricsHub::drain()
{
    std::vector<JobRecord> merged;
    merged.reserve(committed());
    for (auto &shard : shards_) {
        merged.insert(merged.end(), shard.begin(), shard.end());
        shard.clear();
    }
    std::sort(merged.begin(), merged.end(),
              [](const JobRecord &a, const JobRecord &b) {
                  return a.job < b.job;
              });
    return merged;
}

void
MetricsHub::onRunStart(const core::RunStartEvent &event)
{
    self_probe_.onRunStart(event);
}

void
MetricsHub::onBeat(const core::BeatEvent &event)
{
    self_probe_.onBeat(event);
}

void
MetricsHub::onRunEnd(const core::ControlledRun &run)
{
    // Single-session use: no machine in scope, so energy stays 0.
    self_probe_.onRunEnd(run);
    commit(0, self_probe_.record_);
}

double
percentileOf(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double clamped = std::clamp(p, 0.0, 100.0);
    const double rank =
        std::ceil(clamped / 100.0 * static_cast<double>(sorted.size()));
    const std::size_t index = rank < 1.0
        ? 0
        : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(index, sorted.size() - 1)];
}

LatencyPercentiles
latencyPercentiles(std::vector<double> &values)
{
    std::sort(values.begin(), values.end());
    LatencyPercentiles out;
    out.p50 = percentileOf(values, 50.0);
    out.p95 = percentileOf(values, 95.0);
    out.p99 = percentileOf(values, 99.0);
    return out;
}

} // namespace powerdial::fleet
