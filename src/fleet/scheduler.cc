#include "fleet/scheduler.h"

#include <stdexcept>
#include <utility>

namespace powerdial::fleet {

namespace {

class LeastLoadedPolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "least-loaded"; }

    std::size_t
    pick(const sim::Cluster &cluster) const override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < cluster.size(); ++i)
            if (cluster.activeOn(i) < cluster.activeOn(best))
                best = i;
        return best;
    }
};

class PowerAwarePolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "power-aware"; }

    std::size_t
    pick(const sim::Cluster &cluster) const override
    {
        std::size_t best = 0;
        double best_cost = marginalWatts(cluster, 0);
        for (std::size_t i = 1; i < cluster.size(); ++i) {
            const double cost = marginalWatts(cluster, i);
            if (cost < best_cost) {
                best = i;
                best_cost = cost;
            }
        }
        return best;
    }

  private:
    /** Power increase from hosting one more instance on machine @p i. */
    static double
    marginalWatts(const sim::Cluster &cluster, std::size_t i)
    {
        const sim::Machine &m = cluster.machine(i);
        const double freq = m.frequencyHz();
        const auto &model = m.powerModel();
        const std::size_t active = cluster.activeOn(i);
        const double before =
            model.watts(freq, cluster.loadOf(active).utilization);
        const double after =
            model.watts(freq, cluster.loadOf(active + 1).utilization);
        return after - before;
    }
};

} // namespace

PlacementFactory
makeLeastLoadedPlacement()
{
    return []() { return std::make_unique<LeastLoadedPolicy>(); };
}

PlacementFactory
makePowerAwarePlacement()
{
    return []() { return std::make_unique<PowerAwarePolicy>(); };
}

Scheduler::Scheduler(sim::Cluster &cluster, PlacementFactory policy)
    : Scheduler(cluster, SchedulerOptions{std::move(policy), 0})
{
}

Scheduler::Scheduler(sim::Cluster &cluster, SchedulerOptions options)
    : cluster_(&cluster), options_(std::move(options)),
      shed_by_machine_(cluster.size(), 0)
{
    policy_ = options_.placement ? options_.placement()
                                 : makeLeastLoadedPlacement()();
    if (policy_ == nullptr)
        throw std::invalid_argument(
            "Scheduler: placement factory returned null");
}

Scheduler::Pick
Scheduler::pickWithRoom() const
{
    std::size_t machine = policy_->pick(*cluster_);
    if (machine >= cluster_->size())
        throw std::logic_error("Scheduler: policy picked a bad machine");
    Pick pick;
    pick.policy_pick = machine;
    const std::size_t depth = options_.queue_depth;
    if (depth != 0 && cluster_->activeOn(machine) >= depth) {
        // The policy's pick is full: overflow to the least-loaded
        // machine with room (lowest index on ties), none = shed.
        bool found = false;
        for (std::size_t i = 0; i < cluster_->size(); ++i) {
            if (cluster_->activeOn(i) >= depth)
                continue;
            if (!found || cluster_->activeOn(i) <
                              cluster_->activeOn(machine)) {
                machine = i;
                found = true;
            }
        }
        if (!found)
            return pick;
    }
    pick.machine = machine;
    return pick;
}

std::optional<std::size_t>
Scheduler::tryAdmit()
{
    const Pick pick = pickWithRoom();
    if (!pick.machine.has_value()) {
        // Shed: charge the job to the host the policy chose for it.
        ++shed_;
        ++shed_by_machine_[pick.policy_pick];
        return std::nullopt;
    }
    cluster_->place(*pick.machine);
    return pick.machine;
}

std::size_t
Scheduler::admit()
{
    // A full cluster is a caller bug here, not a shed event: the
    // counter only tracks tryAdmit()-path admission control.
    const Pick pick = pickWithRoom();
    if (!pick.machine.has_value())
        throw std::logic_error(
            "Scheduler: admit() shed a job; use tryAdmit() with a "
            "queue-depth bound");
    cluster_->place(*pick.machine);
    return *pick.machine;
}

void
Scheduler::release(std::size_t machine)
{
    cluster_->release(machine);
}

} // namespace powerdial::fleet
