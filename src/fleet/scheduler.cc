#include "fleet/scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/response_model.h"

namespace powerdial::fleet {

namespace {

class LeastLoadedPolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "least-loaded"; }

    std::size_t
    pick(const sim::Cluster &cluster) const override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < cluster.size(); ++i)
            if (cluster.activeOn(i) < cluster.activeOn(best))
                best = i;
        return best;
    }

    // The base-class pickAmong is already least-loaded-among.

    std::vector<double>
    candidateCosts(const sim::Cluster &cluster) const override
    {
        std::vector<double> costs(cluster.size(), 0.0);
        for (std::size_t i = 0; i < cluster.size(); ++i)
            costs[i] = static_cast<double>(cluster.activeOn(i));
        return costs;
    }
};

class PowerAwarePolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "power-aware"; }

    std::size_t
    pick(const sim::Cluster &cluster) const override
    {
        std::size_t best = 0;
        double best_cost = marginalWatts(cluster, 0);
        for (std::size_t i = 1; i < cluster.size(); ++i) {
            const double cost = marginalWatts(cluster, i);
            if (cost < best_cost) {
                best = i;
                best_cost = cost;
            }
        }
        return best;
    }

    std::size_t
    pickAmong(const sim::Cluster &cluster,
              const std::vector<std::size_t> &candidates) const override
    {
        std::size_t best = candidates.front();
        double best_cost = marginalWatts(cluster, best);
        for (std::size_t i = 1; i < candidates.size(); ++i) {
            const double cost = marginalWatts(cluster, candidates[i]);
            if (cost < best_cost) {
                best = candidates[i];
                best_cost = cost;
            }
        }
        return best;
    }

    std::vector<double>
    candidateCosts(const sim::Cluster &cluster) const override
    {
        std::vector<double> costs(cluster.size(), 0.0);
        for (std::size_t i = 0; i < cluster.size(); ++i)
            costs[i] = marginalWatts(cluster, i);
        return costs;
    }

  private:
    /** Power increase from hosting one more instance on machine @p i. */
    static double
    marginalWatts(const sim::Cluster &cluster, std::size_t i)
    {
        const sim::Machine &m = cluster.machine(i);
        const double freq = m.frequencyHz();
        const auto &model = m.powerModel();
        const std::size_t active = cluster.activeOn(i);
        const double before =
            model.watts(freq, cluster.loadOf(i, active).utilization);
        const double after =
            model.watts(freq, cluster.loadOf(i, active + 1).utilization);
        return after - before;
    }
};

class AffinityAwarePolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "affinity-aware"; }

    void bindModel(const core::ResponseModel *model) override
    {
        model_ = model;
    }

    std::size_t
    pick(const sim::Cluster &cluster) const override
    {
        std::size_t best = 0;
        double best_cost = predictedCost(cluster, 0);
        for (std::size_t i = 1; i < cluster.size(); ++i) {
            const double cost = predictedCost(cluster, i);
            if (better(cluster, i, cost, best, best_cost)) {
                best = i;
                best_cost = cost;
            }
        }
        return best;
    }

    std::size_t
    pickAmong(const sim::Cluster &cluster,
              const std::vector<std::size_t> &candidates) const override
    {
        std::size_t best = candidates.front();
        double best_cost = predictedCost(cluster, best);
        for (std::size_t i = 1; i < candidates.size(); ++i) {
            const std::size_t c = candidates[i];
            const double cost = predictedCost(cluster, c);
            if (better(cluster, c, cost, best, best_cost)) {
                best = c;
                best_cost = cost;
            }
        }
        return best;
    }

    std::vector<double>
    candidateCosts(const sim::Cluster &cluster) const override
    {
        std::vector<double> costs(cluster.size(), 0.0);
        for (std::size_t i = 0; i < cluster.size(); ++i)
            costs[i] = predictedCost(cluster, i);
        return costs;
    }

  private:
    /**
     * Relative completion-cost of hosting the next job on machine
     * @p i: occupancy slowdown (the inverse per-instance share it
     * would get there, against that machine's own core count) times
     * the class speed deficit (fleet reference effective Hz over the
     * machine's current effective Hz, which folds in both a slower
     * clock or arbiter cap and a sub-1.0 speed factor), discounted by
     * the knob catch-up the calibrated model could actuate. On a
     * homogeneous uncapped fleet every machine at equal load prices
     * identically, so the tie-breaks below carry the whole decision.
     */
    double
    predictedCost(const sim::Cluster &cluster, std::size_t i) const
    {
        const sim::Machine &m = cluster.machine(i);
        const auto load = cluster.loadOf(i, cluster.activeOn(i) + 1);
        const double slowdown = (1.0 / load.per_instance_share) *
            (cluster.referenceEffectiveHz() /
             (m.frequencyHz() * m.speedFactor()));
        const double catchup = model_ == nullptr
            ? 1.0
            : std::min(slowdown, std::max(model_->maxSpeedup(), 1.0));
        return slowdown / catchup;
    }

    /** Lexicographic (cost, active instances, index) comparison — the
     *  last two make the homogeneous ranking exactly least-loaded. */
    static bool
    better(const sim::Cluster &cluster, std::size_t i, double cost,
           std::size_t best, double best_cost)
    {
        if (cost != best_cost)
            return cost < best_cost;
        return cluster.activeOn(i) < cluster.activeOn(best);
    }

    const core::ResponseModel *model_ = nullptr;
};

} // namespace

std::size_t
PlacementPolicy::pickAmong(const sim::Cluster &cluster,
                           const std::vector<std::size_t> &candidates)
    const
{
    std::size_t best = candidates.front();
    for (std::size_t i = 1; i < candidates.size(); ++i)
        if (cluster.activeOn(candidates[i]) < cluster.activeOn(best))
            best = candidates[i];
    return best;
}

PlacementFactory
makeLeastLoadedPlacement()
{
    return []() { return std::make_unique<LeastLoadedPolicy>(); };
}

PlacementFactory
makePowerAwarePlacement()
{
    return []() { return std::make_unique<PowerAwarePolicy>(); };
}

PlacementFactory
makeAffinityAwarePlacement()
{
    return []() { return std::make_unique<AffinityAwarePolicy>(); };
}

Scheduler::Scheduler(sim::Cluster &cluster, PlacementFactory policy)
    : Scheduler(cluster, SchedulerOptions{std::move(policy), 0,
                                          nullptr, nullptr})
{
}

Scheduler::Scheduler(sim::Cluster &cluster, SchedulerOptions options)
    : cluster_(&cluster), options_(std::move(options)),
      shed_by_machine_(cluster.size(), 0)
{
    policy_ = options_.placement ? options_.placement()
                                 : makeLeastLoadedPlacement()();
    if (policy_ == nullptr)
        throw std::invalid_argument(
            "Scheduler: placement factory returned null");
    admission_ = options_.admission ? options_.admission()
                                    : makeQueueDepthAdmission()();
    if (admission_ == nullptr)
        throw std::invalid_argument(
            "Scheduler: admission factory returned null");
    policy_->bindModel(options_.model);
}

AdmissionVerdict
Scheduler::decideWith(const OfferedJob &job) const
{
    const AdmissionContext context{
        *cluster_, *policy_, options_.queue_depth, options_.model,
        have_decision_ ? &last_decision_ : nullptr};
    AdmissionVerdict verdict = admission_->decide(job, context);
    if (verdict.policy_pick >= cluster_->size() ||
        (verdict.machine.has_value() &&
         *verdict.machine >= cluster_->size()))
        throw std::logic_error("Scheduler: policy picked a bad machine");
    return verdict;
}

std::optional<Admission>
Scheduler::tryAdmit(const OfferedJob &job)
{
    const AdmissionVerdict verdict = decideWith(job);
    last_verdict_ = verdict;
    if (!verdict.machine.has_value()) {
        // Shed: charge the job to the host the policy chose for it
        // and to its priority class.
        ++shed_;
        ++shed_by_machine_[verdict.policy_pick];
        if (job.job_class >= shed_by_class_.size())
            shed_by_class_.resize(job.job_class + 1, 0);
        ++shed_by_class_[job.job_class];
        return std::nullopt;
    }
    cluster_->place(*verdict.machine);
    return Admission{*verdict.machine, verdict.predicted_s};
}

std::optional<std::size_t>
Scheduler::tryAdmit()
{
    const auto admission =
        tryAdmit(OfferedJob{kRoundRobinTenant, 0, 0.0});
    if (!admission.has_value())
        return std::nullopt;
    return admission->machine;
}

std::size_t
Scheduler::admit()
{
    // A full cluster is a caller bug here, not a shed event: the
    // counters only track tryAdmit()-path admission control.
    const AdmissionVerdict verdict =
        decideWith(OfferedJob{kRoundRobinTenant, 0, 0.0});
    last_verdict_ = verdict;
    if (!verdict.machine.has_value())
        throw std::logic_error(
            "Scheduler: admit() shed a job; use tryAdmit() with a "
            "queue-depth bound");
    cluster_->place(*verdict.machine);
    return *verdict.machine;
}

void
Scheduler::release(std::size_t machine)
{
    cluster_->release(machine);
}

void
Scheduler::noteArbitration(const ArbitrationDecision &decision)
{
    last_decision_ = decision;
    have_decision_ = true;
    admission_->noteArbitration(decision);
}

void
Scheduler::noteCompletion(double observed_s, double predicted_s)
{
    admission_->noteCompletion(observed_s, predicted_s);
}

} // namespace powerdial::fleet
