#include "fleet/scheduler.h"

#include <stdexcept>

namespace powerdial::fleet {

namespace {

class LeastLoadedPolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "least-loaded"; }

    std::size_t
    pick(const sim::Cluster &cluster) const override
    {
        std::size_t best = 0;
        for (std::size_t i = 1; i < cluster.size(); ++i)
            if (cluster.activeOn(i) < cluster.activeOn(best))
                best = i;
        return best;
    }
};

class PowerAwarePolicy final : public PlacementPolicy
{
  public:
    std::string name() const override { return "power-aware"; }

    std::size_t
    pick(const sim::Cluster &cluster) const override
    {
        std::size_t best = 0;
        double best_cost = marginalWatts(cluster, 0);
        for (std::size_t i = 1; i < cluster.size(); ++i) {
            const double cost = marginalWatts(cluster, i);
            if (cost < best_cost) {
                best = i;
                best_cost = cost;
            }
        }
        return best;
    }

  private:
    /** Power increase from hosting one more instance on machine @p i. */
    static double
    marginalWatts(const sim::Cluster &cluster, std::size_t i)
    {
        const sim::Machine &m = cluster.machine(i);
        const double freq = m.frequencyHz();
        const auto &model = m.powerModel();
        const std::size_t active = cluster.activeOn(i);
        const double before =
            model.watts(freq, cluster.loadOf(active).utilization);
        const double after =
            model.watts(freq, cluster.loadOf(active + 1).utilization);
        return after - before;
    }
};

} // namespace

PlacementFactory
makeLeastLoadedPlacement()
{
    return []() { return std::make_unique<LeastLoadedPolicy>(); };
}

PlacementFactory
makePowerAwarePlacement()
{
    return []() { return std::make_unique<PowerAwarePolicy>(); };
}

Scheduler::Scheduler(sim::Cluster &cluster, PlacementFactory policy)
    : cluster_(&cluster)
{
    policy_ = policy ? policy() : makeLeastLoadedPlacement()();
    if (policy_ == nullptr)
        throw std::invalid_argument(
            "Scheduler: placement factory returned null");
}

std::size_t
Scheduler::admit()
{
    const std::size_t machine = policy_->pick(*cluster_);
    if (machine >= cluster_->size())
        throw std::logic_error("Scheduler: policy picked a bad machine");
    cluster_->place(machine);
    return machine;
}

void
Scheduler::release(std::size_t machine)
{
    cluster_->release(machine);
}

} // namespace powerdial::fleet
