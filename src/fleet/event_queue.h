/**
 * @file
 * The deterministic typed event queue under the event-driven fleet
 * engine.
 *
 * A discrete-event simulation is only as reproducible as its event
 * order. This queue makes that order *total and stable*: every push
 * stamps the event with a monotonically increasing sequence id, and
 * pop() always returns the entry with the smallest (time, seq) pair.
 * Two consequences the fleet engine (and its differential tests)
 * depend on:
 *
 *   - ties are impossible: events scheduled for the same virtual time
 *     dispatch in exactly the order they were pushed (FIFO among
 *     equals), so handler side effects replay identically run to run;
 *   - the order is independent of how the heap happened to be built:
 *     any insertion order of the same (time, seq)-stamped entries
 *     pops in the same sequence, so the engine's output never depends
 *     on thread count or incidental construction order.
 *
 * tests/test_event_queue.cc pins both properties, plus the absence of
 * starvation: an event can never be overtaken by a later-pushed event
 * with the same (or a later) time.
 */
#ifndef POWERDIAL_FLEET_EVENT_QUEUE_H
#define POWERDIAL_FLEET_EVENT_QUEUE_H

#include <cmath>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace powerdial::fleet {

/**
 * A priority queue of typed events ordered by (virtual time, stable
 * sequence id). Not thread-safe: the fleet engine pushes and pops only
 * from its serial coordination sections.
 */
template <typename Payload>
class EventQueue
{
  public:
    /** One scheduled event. */
    struct Entry
    {
        double time_s = 0.0;     //!< Virtual dispatch time, seconds.
        std::uint64_t seq = 0;   //!< Push order, unique per queue.
        Payload payload{};
    };

    /**
     * Schedule @p payload at virtual time @p time_s; returns the
     * sequence id assigned to the event.
     * @throws std::invalid_argument for negative or NaN times (the
     *         fleet clock starts at zero and only moves forward).
     */
    std::uint64_t
    push(double time_s, Payload payload)
    {
        if (std::isnan(time_s) || time_s < 0.0)
            throw std::invalid_argument(
                "EventQueue: event time must be a non-negative number");
        const std::uint64_t seq = next_seq_++;
        heap_.push(Entry{time_s, seq, std::move(payload)});
        return seq;
    }

    /** The earliest event without removing it. */
    const Entry &
    peek() const
    {
        if (heap_.empty())
            throw std::logic_error("EventQueue: peek on empty queue");
        return heap_.top();
    }

    /** Remove and return the event with the smallest (time, seq). */
    Entry
    pop()
    {
        if (heap_.empty())
            throw std::logic_error("EventQueue: pop on empty queue");
        Entry entry = heap_.top();
        heap_.pop();
        return entry;
    }

    bool empty() const { return heap_.empty(); }

    std::size_t size() const { return heap_.size(); }

    /** Events pushed over the queue's lifetime (= next sequence id). */
    std::uint64_t pushed() const { return next_seq_; }

  private:
    /** Min-heap on (time, seq); seq is unique, so the order is total. */
    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.time_s != b.time_s)
                return a.time_s > b.time_s;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t next_seq_ = 0;
};

} // namespace powerdial::fleet

#endif // POWERDIAL_FLEET_EVENT_QUEUE_H
